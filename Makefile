# Development entry points. `make check` is the gate CI runs.

GO ?= go

.PHONY: check vet build test race chaos fuzz bench fmt

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The fault-injection suite for the remote transport, on its own for
# quick iteration (it is also part of `race`).
chaos:
	$(GO) test -race -v -run 'TestChaos|TestBreaker|TestDeadline|TestPerAttempt|TestChecksum|TestTruncation|TestRetryRecovers' ./internal/remote/

# Short fuzz pass over every wire decoder (CI-friendly duration).
fuzz:
	$(GO) test ./internal/wire/ -fuzz FuzzUnmarshalDB -fuzztime 20s
	$(GO) test ./internal/wire/ -fuzz FuzzUnmarshalQuery -fuzztime 20s
	$(GO) test ./internal/wire/ -fuzz FuzzUnmarshalAnswer -fuzztime 20s
	$(GO) test ./internal/wire/ -fuzz FuzzUnmarshalUpdate -fuzztime 20s

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

fmt:
	gofmt -l -w .
