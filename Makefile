# Development entry points. `make check` is the gate CI runs.

GO ?= go

.PHONY: check vet build test race chaos tamper fuzz fuzz-smoke difftest bench bench-parallel bench-cache bench-alloc alloc-guard bench-update update-guard bench-load load-guard bench-mvcc mvcc-guard mvcc-race bench-plan plan-guard planner-diff overload-smoke cache-stress powercut soak soak-short soak-stream soak-stream-short soak-update soak-update-short profile fmt

check: vet build race tamper fuzz-smoke cache-stress mvcc-race bench-cache overload-smoke powercut soak-short soak-stream-short soak-update-short

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The fault-injection suite for the remote transport, on its own for
# quick iteration (it is also part of `race`).
chaos:
	$(GO) test -race -v -run 'TestChaos|TestBreaker|TestDeadline|TestPerAttempt|TestChecksum|TestTruncation|TestRetryRecovers' ./internal/remote/

# The active-tampering suite: every integrity attack (dropped block,
# swapped ciphertext, stripped proof, rollback replay, forged
# aggregate, bit-flipped persistence) must be detected, under -race.
tamper:
	$(GO) test -race -run 'Tamper|Integrity|Proof|Verif|Rollback|BitFlip|TruncationQuarantined|PersistFailure' \
		./internal/attack/ ./internal/core/ ./internal/remote/ ./internal/wire/ ./internal/authtree/

# Short fuzz pass over every wire decoder (CI-friendly duration).
fuzz:
	$(GO) test ./internal/wire/ -fuzz FuzzUnmarshalDB -fuzztime 20s
	$(GO) test ./internal/wire/ -fuzz FuzzUnmarshalQuery -fuzztime 20s
	$(GO) test ./internal/wire/ -fuzz FuzzUnmarshalAnswer -fuzztime 20s
	$(GO) test ./internal/wire/ -fuzz FuzzUnmarshalUpdate -fuzztime 20s
	$(GO) test ./internal/wire/ -fuzz FuzzDecodeProof -fuzztime 20s
	$(GO) test ./internal/wire/ -fuzz FuzzDecodeStream -fuzztime 20s

# Quick fuzz pass over the two text parsers (query strings and SC
# specs are operator input) plus the WAL record decoder (crash-torn
# frames are hostile input to recovery); part of `check`.
fuzz-smoke:
	$(GO) test ./internal/xpath/ -fuzz FuzzParseXPath -fuzztime 10s
	$(GO) test ./internal/sc/ -fuzz FuzzParseSC -fuzztime 10s
	$(GO) test ./internal/walog/ -fuzz FuzzDecodeWALRecord -fuzztime 10s

# Open-ended differential fuzzing: encrypted pipeline vs plaintext
# evaluator on randomized documents/SCs/queries under every scheme.
# Override the budget with DIFFTEST_DURATION=10m etc.
DIFFTEST_DURATION ?= 1m
difftest:
	$(GO) test ./internal/difftest/ -run OpenEnded -difftest.duration $(DIFFTEST_DURATION)

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Sequential-vs-parallel pipeline benchmarks; writes BENCH_parallel.json.
bench-parallel:
	SECXML_BENCH_JSON=BENCH_parallel.json \
		$(GO) test -bench 'Parallel|ConcurrentQueries' -benchtime 3x -run '^$$' .

# Cold-vs-hot caching-layer benchmarks; writes BENCH_cache.json.
bench-cache:
	SECXML_BENCH_CACHE_JSON=BENCH_cache.json \
		$(GO) test -bench 'Hot' -benchtime 20x -run '^$$' .

# Allocation benchmarks of the cold query path plus the
# streaming-vs-envelope round-trip comparison; writes BENCH_alloc.json
# (baseline tree recorded in alloc_bench_test.go).
bench-alloc:
	SECXML_BENCH_ALLOC_JSON=BENCH_alloc.json \
		$(GO) test -bench 'Alloc|Stream' -benchtime 1x -run '^$$' .

# Regression gate against the committed BENCH_alloc.json: fails when
# any cold-path benchmark's allocs/op grew more than 20%.
alloc-guard:
	SECXML_BENCH_ALLOC_GUARD=BENCH_alloc.json \
		$(GO) test -bench 'Alloc' -benchtime 1x -run '^$$' .

# Group-commit update-throughput benchmarks (per-update baseline vs
# batched, mixed reader/writer load over the durable remote stack);
# writes BENCH_update.json.
bench-update:
	SECXML_BENCH_UPDATE_JSON=BENCH_update.json \
		$(GO) test -bench UpdateThroughput -benchtime 200x -run '^$$' .

# Regression gate against the committed BENCH_update.json: fails when
# a batched configuration loses half its committed speedup, or the
# batch-16 target drops under 3x over the per-update baseline.
update-guard:
	SECXML_BENCH_UPDATE_GUARD=BENCH_update.json \
		$(GO) test -bench UpdateThroughput -benchtime 100x -run '^$$' .

# MVCC snapshot-read contract under -race (part of `check`): the
# NumBlocks data-race regression, the returned-bytes aliasing
# contract, and the snapshot-isolation linearizability check (every
# concurrent answer verifies against the Merkle root of exactly one
# generation).
mvcc-race:
	$(GO) test -race -count=1 \
		-run 'TestNumBlocksRaceWithUpdates|TestReturnedBytesImmutableUnderUpdates|TestSnapshotIsolationLinearizable' \
		./internal/server/

# Reader-latency-under-write-load benchmarks: MVCC snapshot reads vs
# a coarse-RWMutex baseline at 0/4/16 paced durable writers; writes
# BENCH_mvcc.json with reader p50/p99 per configuration.
bench-mvcc:
	SECXML_BENCH_MVCC_JSON=BENCH_mvcc.json \
		$(GO) test -bench QueryUnderWriteLoad -benchtime 1x -run '^$$' -timeout 600s .

# Regression gate against the committed BENCH_mvcc.json: fails unless
# reader p99 under 16 writers stays at least 5x better than the
# RWMutex baseline (and the committed artifact itself held the bar).
mvcc-guard:
	SECXML_BENCH_MVCC_GUARD=BENCH_mvcc.json \
		$(GO) test -bench QueryUnderWriteLoad -benchtime 1x -run '^$$' -timeout 600s .

# Planner benchmarks: the twig-heavy / selective / worst-case suites
# under forced twig vs forced pairwise strategies (answers asserted
# byte-identical before timing); writes BENCH_plan.json.
bench-plan:
	SECXML_BENCH_PLAN_JSON=BENCH_plan.json \
		$(GO) test -bench 'Plan$$' -benchtime 8x -run '^$$' .

# Regression gate against the committed BENCH_plan.json: fails when
# the twig-heavy speedup drops below half its committed value, or the
# worst-case suite shows twig losing more than 30% to pairwise.
plan-guard:
	SECXML_BENCH_PLAN_GUARD=BENCH_plan.json \
		$(GO) test -bench 'TwigHeavyPlan|WorstCasePlan' -benchtime 5x -run '^$$' .

# Differential planner check: every difftest corpus case under both
# forced strategies — byte-identical answers, identical Merkle proofs.
planner-diff:
	$(GO) test -race -count=1 -run TestDifferentialPlannerStrategies ./internal/difftest/

# Sustained-load overload measurement: calibrates the host's shed-free
# knee, then runs open-loop 1x/2x/4x phases (Zipf mix, mixed priority
# classes, slow background readers) against the full protection stack;
# writes BENCH_load.json with goodput/p50/p99/shed-rate per phase plus
# the brownout level mix and post-overload recovery time.
bench-load:
	SECXML_BENCH_LOAD_JSON=BENCH_load.json \
		$(GO) test -bench SustainedLoad -benchtime 1x -run '^$$' -timeout 600s .

# Regression gate against the committed BENCH_load.json: fails when
# the 1x phase sheds over 1%, 1x p99 regresses more than 25% (plus
# absolute slack) over the committed run, any answer fails
# verification under load, the 4x phase shows no overload pressure,
# overload goodput collapses, or the brownout controller fails to
# return to full service after the load drops.
load-guard:
	SECXML_BENCH_LOAD_GUARD=BENCH_load.json \
		$(GO) test -bench SustainedLoad -benchtime 1x -run '^$$' -timeout 600s .

# Quick overload-protection smoke (part of `check`): deadline
# rejection on arrival, queue shed, brownout degradation ladder and
# recovery, tenant quotas, Retry-After honored by the client.
overload-smoke:
	$(GO) test -race -count=1 -run 'TestOverload|TestDeadline|TestBrownout|TestTenantQuota|TestClientHonorsRetryAfter|TestSlowLoris' ./internal/remote/ ./internal/admission/

# The caching-layer correctness suite under -race: generation
# invalidation, stale-answer isolation, concurrent readers racing an
# updater, and the breaker-flip chaos sequence.
cache-stress:
	$(GO) test -race -run 'Cache|Generation|Stale' \
		./internal/core/ ./internal/server/ ./internal/client/ ./internal/remote/ ./internal/gencache/

# The powercut soak: POWERCUT_CYCLES kill/recover cycles against the
# durable store on a fault-injecting filesystem with torn tails,
# under -race. Every cycle asserts zero acknowledged-update loss and
# zero unverifiable serves; any quarantine fails. The batch-atomicity
# variant cuts power around whole group commits: an un-fsynced batch
# must be wholly replayed or wholly absent, never partial. Part of
# `check`.
POWERCUT_CYCLES ?= 200
powercut:
	POWERCUT_CYCLES=$(POWERCUT_CYCLES) \
		$(GO) test -race -count=1 -run 'TestPowercutSoak|TestPowercutBatchAtomicity' ./internal/remote/

# Long differential soak with caches on and updates interleaved
# between query rounds. SOAK_DURATION=10m reproduces the release
# gate; `check` runs the 1-minute variant.
SOAK_DURATION ?= 10m
soak:
	$(GO) test -race ./internal/difftest/ -run OpenEnded -difftest.duration $(SOAK_DURATION) -timeout 0

soak-short:
	$(GO) test -race ./internal/difftest/ -run OpenEnded -difftest.duration 1m

# Mixed reader/writer soak of the group-commit update pipeline over
# the full remote stack, under -race: writers hammer the batcher while
# readers run verified queries and aggregates; the final quiesced
# state must hold every acked write. Writer share is configurable
# (UPDATE_SOAK_WRITERPCT); `check` runs the 30-second variant.
UPDATE_SOAK_DURATION ?= 10m
UPDATE_SOAK_WORKERS ?= 16
UPDATE_SOAK_WRITERPCT ?= 25
soak-update:
	$(GO) test -race ./internal/difftest/ -run UpdateSoak -timeout 0 \
		-updatesoak.duration $(UPDATE_SOAK_DURATION) \
		-updatesoak.workers $(UPDATE_SOAK_WORKERS) \
		-updatesoak.writerpct $(UPDATE_SOAK_WRITERPCT)

soak-update-short:
	$(GO) test -race ./internal/difftest/ -run UpdateSoak -updatesoak.duration 30s

# Streamed mixed-peer differential soak: every case runs its queries
# through a streaming client and an envelope client against the same
# HTTP service, concurrently, under -race. STREAM_SOAK_DURATION=10m
# reproduces the release gate; `check` runs the 1-minute variant.
STREAM_SOAK_DURATION ?= 10m
soak-stream:
	$(GO) test -race ./internal/difftest/ -run StreamSoak -difftest.duration $(STREAM_SOAK_DURATION) -timeout 0

soak-stream-short:
	$(GO) test -race ./internal/difftest/ -run StreamSoak -difftest.duration 1m

# Profile the server: boots xserve with pprof on, reminds how to grab
# a profile. (Profiles also work against any running xserve.)
profile:
	@echo "xserve serves pprof at /debug/pprof/ by default:"
	@echo "  go tool pprof http://localhost:8080/debug/pprof/profile?seconds=30"
	@echo "  go tool pprof http://localhost:8080/debug/pprof/heap"
	$(GO) run ./cmd/xserve -listen :8080

fmt:
	gofmt -l -w .
