package repro

// Allocation-focused benchmarks of the cold query path — the
// pipeline the §7 experiments measure, with every cross-query cache
// disabled so nothing is amortized away. Each benchmark reports
// ns/op, B/op and allocs/op; TestMain writes the collected rows
// (together with the recorded seed baseline and the streaming
// round-trip comparison from stream_bench_test.go) to
// BENCH_alloc.json when SECXML_BENCH_ALLOC_JSON is set, and — when
// SECXML_BENCH_ALLOC_GUARD points at a committed BENCH_alloc.json —
// fails the run if allocs/op regressed more than 20% against it.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cryptoprim"
	"repro/internal/datagen"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/xpath"
)

// allocRow is one allocation measurement for the JSON report.
type allocRow struct {
	Benchmark   string  `json:"benchmark"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

var (
	allocRowsMu sync.Mutex
	allocRows   []allocRow
)

// recordAllocRow keeps one row per benchmark, last run wins (the
// framework re-invokes benchmarks while calibrating b.N).
func recordAllocRow(row allocRow) {
	allocRowsMu.Lock()
	defer allocRowsMu.Unlock()
	for i := range allocRows {
		if allocRows[i].Benchmark == row.Benchmark {
			allocRows[i] = row
			return
		}
	}
	allocRows = append(allocRows, row)
}

// runAllocBench runs body under the benchmark harness with
// allocation accounting on, then takes one manual measurement pass
// of allocMeasureN iterations bracketed by runtime.ReadMemStats and
// records the per-op deltas for the JSON report. A nested
// testing.Benchmark cannot be used here: it deadlocks on the testing
// package's global benchmark lock, which the outer benchmark holds.
// Mallocs/TotalAlloc are monotonic counters, so an intervening GC
// does not skew them; nothing else in the process allocates while a
// measurement runs (every background worker the op spawns is part of
// the op).
func runAllocBench(b *testing.B, name string, body func(n int)) {
	b.ReportAllocs()
	b.ResetTimer() // exclude each benchmark's setup work above
	body(b.N)      // harness-visible pass, also warms any pools
	b.StopTimer()
	defer b.StartTimer()
	const allocMeasureN = 10
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	body(allocMeasureN)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	recordAllocRow(allocRow{
		Benchmark:   name,
		NsPerOp:     float64(elapsed.Nanoseconds()) / allocMeasureN,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / allocMeasureN,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / allocMeasureN,
	})
}

// allocBaselineCommit is the tree the embedded baseline rows were
// measured on: the seed state before this PR's allocation pass, so
// the committed report documents the before/after delta and the CI
// guard has a fixed reference. Measured with the same harness
// (manual ReadMemStats pass, N=10, 2 MB NASA document, caches off)
// on the same class of runner.
const allocBaselineCommit = "68c9e3e"

// allocBaseline holds the seed-tree measurements (see
// allocBaselineCommit). AllocsPerOp is the guarded metric; ns/op and
// B/op are recorded for context only, since wall time varies across
// runners far more than allocation counts do.
var allocBaseline = []allocRow{
	{Benchmark: "QueryColdAlloc", NsPerOp: 7555790, BytesPerOp: 4179435, AllocsPerOp: 69360},
	{Benchmark: "ServerExecColdAlloc", NsPerOp: 5326450, BytesPerOp: 2160055, AllocsPerOp: 44519},
	{Benchmark: "DecryptColdAlloc", NsPerOp: 73903, BytesPerOp: 61864, AllocsPerOp: 417},
	{Benchmark: "MarshalAnswerAlloc", NsPerOp: 54182, BytesPerOp: 131008, AllocsPerOp: 11},
	{Benchmark: "EncryptBlockAlloc", NsPerOp: 36909, BytesPerOp: 147472, AllocsPerOp: 3},
}

// allocReport is the BENCH_alloc.json document: the frozen seed
// baseline, the rows measured by this run, per-benchmark allocs/op
// reduction, and the streaming-vs-envelope round-trip comparison.
type allocReport struct {
	BaselineCommit string             `json:"baseline_commit"`
	Baseline       []allocRow         `json:"baseline"`
	Current        []allocRow         `json:"current"`
	Reduction      map[string]float64 `json:"allocs_per_op_reduction"`
	Stream         []streamRow        `json:"stream"`
}

// allocReportData assembles the report from whatever rows this run
// produced.
func allocReportData() allocReport {
	allocRowsMu.Lock()
	current := append([]allocRow(nil), allocRows...)
	allocRowsMu.Unlock()
	red := map[string]float64{}
	for _, base := range allocBaseline {
		for _, cur := range current {
			if cur.Benchmark == base.Benchmark && base.AllocsPerOp > 0 {
				red[cur.Benchmark] = 1 - cur.AllocsPerOp/base.AllocsPerOp
			}
		}
	}
	return allocReport{
		BaselineCommit: allocBaselineCommit,
		Baseline:       allocBaseline,
		Current:        current,
		Reduction:      red,
		Stream:         streamRowsSnapshot(),
	}
}

// allocGuard compares this run's allocs/op against the committed
// BENCH_alloc.json at path and errors if any cold-path benchmark
// regressed more than 20%. Allocation counts are near-deterministic,
// so a tight tolerance holds across runners where wall time would
// not.
func allocGuard(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed allocReport
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	allocRowsMu.Lock()
	defer allocRowsMu.Unlock()
	var failures []string
	for _, want := range committed.Current {
		for _, got := range allocRows {
			if got.Benchmark != want.Benchmark || want.AllocsPerOp <= 0 {
				continue
			}
			if got.AllocsPerOp > want.AllocsPerOp*1.2 {
				failures = append(failures, fmt.Sprintf(
					"%s: %.0f allocs/op vs committed %.0f (+%.0f%%)",
					got.Benchmark, got.AllocsPerOp, want.AllocsPerOp,
					100*(got.AllocsPerOp/want.AllocsPerOp-1)))
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocs/op regressed >20%%: %s", strings.Join(failures, "; "))
	}
	return nil
}

var (
	allocOnce    sync.Once
	allocSys     *core.System
	allocSrv     *server.Server
	allocQueries []string
	allocErr     error
)

// allocAnswerLimit bounds the workload to selective queries: wide
// scans measure post-processing of huge result trees, which is
// rebuilt per query by design and drowns the pipeline costs this
// file targets.
const allocAnswerLimit = 256 << 10

// allocSetup hosts one NASA document under the opt scheme with every
// cache off, so each measured query takes the full cold path:
// translate, plan, match, assemble, decrypt, post-process.
func allocSetup(b *testing.B) (*core.System, []string) {
	b.Helper()
	allocOnce.Do(func() {
		cfg := bench.DefaultConfig("nasa", benchSize())
		doc := datagen.NASAToSize(cfg.SizeBytes, cfg.Seed)
		sys, err := core.Host(doc, datagen.NASASCs(), core.SchemeOpt, []byte("bench-alloc"))
		if err != nil {
			allocErr = err
			return
		}
		srv := sys.Server.(core.Local).S
		srv.SetCaching(false)
		var pool []string
		seen := map[string]bool{}
		for _, class := range []datagen.QueryClass{datagen.Qs, datagen.Qm, datagen.Ql} {
			for _, q := range datagen.Queries(doc, class, 5, cfg.Seed+uint64(class)) {
				if !seen[q] {
					seen[q] = true
					pool = append(pool, q)
				}
			}
		}
		for _, q := range pool {
			_, _, tm, err := sys.Query(q)
			if err != nil {
				allocErr = err
				return
			}
			if tm.AnswerBytes <= allocAnswerLimit {
				allocQueries = append(allocQueries, q)
			}
		}
		if len(allocQueries) == 0 {
			allocQueries = pool[:1]
		}
		allocSys, allocSrv = sys, srv
	})
	if allocErr != nil {
		b.Fatal(allocErr)
	}
	return allocSys, allocQueries
}

// BenchmarkQueryColdAlloc measures the full client+server round trip
// with every cache disabled: the per-query allocation footprint of
// the paper's measured pipeline.
func BenchmarkQueryColdAlloc(b *testing.B) {
	sys, queries := allocSetup(b)
	runAllocBench(b, "QueryColdAlloc", func(n int) {
		for i := 0; i < n; i++ {
			if _, _, _, err := sys.Query(queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServerExecColdAlloc isolates the server stage: parse the
// frame, compile, match, assemble — no client work, no caches.
func BenchmarkServerExecColdAlloc(b *testing.B) {
	sys, queries := allocSetup(b)
	frames := make([][]byte, len(queries))
	for i, q := range queries {
		qs, err := translated(sys, q)
		if err != nil {
			b.Fatal(err)
		}
		frame, err := wire.MarshalQuery(qs)
		if err != nil {
			b.Fatal(err)
		}
		frames[i] = frame
	}
	runAllocBench(b, "ServerExecColdAlloc", func(n int) {
		for i := 0; i < n; i++ {
			if _, err := allocSrv.ExecuteFrame(frames[i%len(frames)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDecryptColdAlloc isolates block decryption of a typical
// answer (no block cache).
func BenchmarkDecryptColdAlloc(b *testing.B) {
	sys, queries := allocSetup(b)
	ans := largestAnswer(b, sys, queries)
	b.SetBytes(int64(ans.ByteSize()))
	runAllocBench(b, "DecryptColdAlloc", func(n int) {
		for i := 0; i < n; i++ {
			if _, err := sys.Client.DecryptBlocks(ans); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMarshalAnswerAlloc measures envelope marshaling of the
// largest workload answer — the copy the streaming path eliminates.
func BenchmarkMarshalAnswerAlloc(b *testing.B) {
	sys, queries := allocSetup(b)
	ans := largestAnswer(b, sys, queries)
	b.SetBytes(int64(ans.ByteSize()))
	runAllocBench(b, "MarshalAnswerAlloc", func(n int) {
		for i := 0; i < n; i++ {
			if _, err := wire.MarshalAnswer(ans); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEncryptBlockAlloc measures one 64 KiB AES-GCM block
// encryption — the hot primitive of Host and of owner updates.
func BenchmarkEncryptBlockAlloc(b *testing.B) {
	ks := cryptoprim.MustKeySet("bench-alloc")
	pt := make([]byte, 64<<10)
	for i := range pt {
		pt[i] = byte(i)
	}
	b.SetBytes(int64(len(pt)))
	runAllocBench(b, "EncryptBlockAlloc", func(n int) {
		for i := 0; i < n; i++ {
			if _, err := ks.EncryptBlock(pt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// translated runs the client translation for q.
func translated(sys *core.System, q string) (*wire.Query, error) {
	path, err := xpath.Parse(q)
	if err != nil {
		return nil, err
	}
	return sys.Client.Translate(path)
}

// largestAnswer executes the workload once and keeps the answer with
// the most blocks, so the decrypt/marshal benches measure real work.
func largestAnswer(b *testing.B, sys *core.System, queries []string) *wire.Answer {
	b.Helper()
	var best *wire.Answer
	for _, q := range queries {
		qs, err := translated(sys, q)
		if err != nil {
			b.Fatal(err)
		}
		ans, err := allocSrv.Execute(qs)
		if err != nil {
			b.Fatal(err)
		}
		if best == nil || len(ans.Blocks) > len(best.Blocks) {
			best = ans
		}
	}
	return best
}
