package repro

// One benchmark per table and figure of the paper's evaluation
// section (§7), plus micro-benchmarks of every substrate. The
// experiment benchmarks wrap internal/bench; run the full-size
// reproduction with cmd/xencbench (-size 25000000 for the paper's
// 25 MB NASA document). Benchmark document size defaults to 2 MB and
// is overridable with SECXML_BENCH_BYTES.
//
//	go test -bench=. -benchmem
//
// Custom metrics: experiment benchmarks report the paper's columns
// (server-µs/op, decrypt-µs/op, post-µs/op, answer-KB) per
// scheme/class so the tables can be read straight off the benchmark
// output.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/cryptoprim"
	"repro/internal/datagen"
	"repro/internal/dsi"
	"repro/internal/opess"
	"repro/internal/remote"
	"repro/internal/sc"
	"repro/internal/scheme"
	"repro/internal/wire"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func benchSize() int {
	if v := os.Getenv("SECXML_BENCH_BYTES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 2_000_000
}

var (
	setupOnce sync.Once
	setups    map[string]*bench.Setup
	setupErr  error
)

// sharedSetups hosts each dataset once under all four schemes; the
// hosting cost is excluded from the per-query benchmarks.
func sharedSetups(b *testing.B) map[string]*bench.Setup {
	b.Helper()
	setupOnce.Do(func() {
		setups = map[string]*bench.Setup{}
		for _, ds := range []string{"nasa", "xmark"} {
			cfg := bench.DefaultConfig(ds, benchSize())
			cfg.QueriesPerClass = 5
			cfg.Trials = 1
			s, err := bench.NewSetup(cfg)
			if err != nil {
				setupErr = err
				return
			}
			setups[ds] = s
		}
	})
	if setupErr != nil {
		b.Fatalf("setup: %v", setupErr)
	}
	return setups
}

// BenchmarkFig9 regenerates Figure 9: per scheme and query class,
// the server query time, client decryption time and client query
// (post-processing) time on the NASA dataset.
func BenchmarkFig9(b *testing.B) {
	s := sharedSetups(b)["nasa"]
	for _, schemeName := range bench.Schemes {
		sys := s.Systems[schemeName]
		for _, class := range bench.Classes {
			queries := s.Queries(class)
			b.Run(fmt.Sprintf("%s/%s", schemeName, class), func(b *testing.B) {
				var server, decrypt, post, bytes int64
				n := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					q := queries[i%len(queries)]
					_, _, tm, err := sys.Query(q)
					if err != nil {
						b.Fatalf("query %s: %v", q, err)
					}
					server += tm.ServerExec.Microseconds()
					decrypt += tm.ClientDecrypt.Microseconds()
					post += tm.ClientPost.Microseconds()
					bytes += int64(tm.AnswerBytes)
					n++
				}
				b.ReportMetric(float64(server)/float64(n), "server-µs/op")
				b.ReportMetric(float64(decrypt)/float64(n), "decrypt-µs/op")
				b.ReportMetric(float64(post)/float64(n), "post-µs/op")
				b.ReportMetric(float64(bytes)/float64(n)/1024, "answer-KB")
			})
		}
	}
}

// BenchmarkDivisionOfWork regenerates §7.2's table (E1): the full
// stage breakdown including translation and (simulated) transmission
// on the NASA dataset, one op per query round trip.
func BenchmarkDivisionOfWork(b *testing.B) {
	s := sharedSetups(b)["nasa"]
	for _, schemeName := range bench.Schemes {
		sys := s.Systems[schemeName]
		queries := s.Queries(datagen.Qm)
		b.Run(string(schemeName), func(b *testing.B) {
			var translate, transmit int64
			n := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				_, _, tm, err := sys.Query(q)
				if err != nil {
					b.Fatalf("query %s: %v", q, err)
				}
				translate += tm.ClientTranslate.Microseconds()
				transmit += tm.Transmit.Microseconds()
				n++
			}
			b.ReportMetric(float64(translate)/float64(n), "translate-µs/op")
			b.ReportMetric(float64(transmit)/float64(n), "transmit-µs/op")
		})
	}
}

// BenchmarkOursVsNaive regenerates §7.3 (E2): the selective pipeline
// versus shipping the whole database, per scheme, on NASA Ql
// queries. The ratio column is the paper's headline number.
func BenchmarkOursVsNaive(b *testing.B) {
	s := sharedSetups(b)["nasa"]
	for _, schemeName := range bench.Schemes {
		sys := s.Systems[schemeName]
		queries := s.Queries(datagen.Ql)
		for _, mode := range []string{"ours", "naive"} {
			b.Run(fmt.Sprintf("%s/%s", schemeName, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					q := queries[i%len(queries)]
					var err error
					if mode == "ours" {
						_, _, _, err = sys.Query(q)
					} else {
						_, _, _, err = sys.NaiveQuery(q)
					}
					if err != nil {
						b.Fatalf("%s %s: %v", mode, q, err)
					}
				}
			})
		}
	}
}

// BenchmarkEncryptionSchemes regenerates §7.4's encryption-cost
// measurements (E3): wall time to build blocks + metadata + value
// index per scheme, with the hosted size as a custom metric.
func BenchmarkEncryptionSchemes(b *testing.B) {
	doc := datagen.NASAToSize(benchSize()/4, 7)
	scs := datagen.NASASCs()
	for _, schemeName := range bench.Schemes {
		b.Run(string(schemeName), func(b *testing.B) {
			var hosted int
			for i := 0; i < b.N; i++ {
				sys, err := core.Host(doc, scs, schemeName, []byte("enc-bench"))
				if err != nil {
					b.Fatalf("Host: %v", err)
				}
				hosted = sys.HostedDB.ByteSize()
			}
			b.ReportMetric(float64(hosted)/1024, "hosted-KB")
		})
	}
}

// BenchmarkFig10 regenerates Figure 10 (E5): saving ratios of the
// app/opt schemes over top/sub, reported as custom metrics per
// query class, for both datasets.
func BenchmarkFig10(b *testing.B) {
	for _, ds := range []string{"xmark", "nasa"} {
		s := sharedSetups(b)[ds]
		b.Run(ds, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := s.DivisionOfWork()
				if err != nil {
					b.Fatalf("DivisionOfWork: %v", err)
				}
				if i == b.N-1 {
					for _, r := range bench.SavingRatios(rows) {
						b.ReportMetric(r.SaT, r.Class.String()+"-Sa/t")
						b.ReportMetric(r.SaS, r.Class.String()+"-Sa/s")
						b.ReportMetric(r.SoT, r.Class.String()+"-So/t")
						b.ReportMetric(r.SoS, r.Class.String()+"-So/s")
					}
				}
			}
		})
	}
}

// BenchmarkFig6 regenerates Figure 6 (E6): the OPESS split of the
// paper's skewed distribution.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkXPathEvaluate(b *testing.B) {
	doc := datagen.NASA(2000, 3)
	queries := []*xpath.Path{
		xpath.MustParse("//dataset/title"),
		xpath.MustParse("//dataset[date>=1990]//last"),
		xpath.MustParse("//author[initial='A']/last"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xpath.Evaluate(doc, queries[i%len(queries)])
	}
}

func BenchmarkXMLParse(b *testing.B) {
	data := []byte(datagen.NASA(500, 3).String())
	b.SetBytes(int64(len(data)))
	b.Run("encoding-xml", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := xmltree.ParseString(string(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compact", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := xmltree.ParseCompact(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDSIAssign(b *testing.B) {
	doc := datagen.NASA(2000, 3)
	keys := cryptoprim.MustKeySet("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsi.Assign(doc, keys)
	}
}

func BenchmarkBTree(b *testing.B) {
	b.Run("insert", func(b *testing.B) {
		tr := btree.New(0)
		for i := 0; i < b.N; i++ {
			tr.Insert(uint64(i*2654435761), i)
		}
	})
	b.Run("range", func(b *testing.B) {
		tr := btree.New(0)
		for i := 0; i < 100000; i++ {
			tr.Insert(uint64(i), i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := uint64(i % 90000)
			tr.Range(lo, lo+1000)
		}
	})
}

// BenchmarkStructuralJoin compares the per-context binary-search
// probe against the batched sort-merge structural join (§6.2) on a
// realistic interval family.
func BenchmarkStructuralJoin(b *testing.B) {
	doc := datagen.NASA(3000, 3)
	keys := cryptoprim.MustKeySet("join-bench")
	md := dsi.BuildMetadata(doc, nil, keys)
	ctxs := md.Table.Lookup("dataset")
	cands := md.Table.Lookup("last")
	b.Run("per-context", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			total := 0
			for _, ctx := range ctxs {
				total += len(dsi.Within(cands, ctx))
			}
			if total == 0 {
				b.Fatal("no matches")
			}
		}
	})
	b.Run("merge-join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(dsi.DescendantJoin(ctxs, cands)) == 0 {
				b.Fatal("no matches")
			}
		}
	})
}

func BenchmarkOPE(b *testing.B) {
	ope := cryptoprim.NewOPE(cryptoprim.MustKeySet("bench"), 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ope.Encrypt(float64(i % 100000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOPESSBuild(b *testing.B) {
	keys := cryptoprim.MustKeySet("bench")
	freq := map[string]int{}
	r := datagen.NewRand(5)
	for i := 0; i < 200; i++ {
		freq[fmt.Sprintf("v%03d", i)] = 1 + r.Zipf(50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opess.Build("attr", freq, keys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAESBlock(b *testing.B) {
	keys := cryptoprim.MustKeySet("bench")
	pt := []byte(datagen.NASA(20, 3).String())
	b.SetBytes(int64(len(pt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct, err := keys.EncryptBlock(pt)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := keys.DecryptBlock(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVertexCover(b *testing.B) {
	r := datagen.NewRand(11)
	in := &scheme.VCInstance{Weights: make([]int, 16)}
	for i := range in.Weights {
		in.Weights[i] = 1 + r.Intn(9)
	}
	for u := 0; u < 16; u++ {
		for v := u + 1; v < 16; v++ {
			if r.Intn(4) == 0 {
				in.Edges = append(in.Edges, [2]int{u, v})
			}
		}
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := scheme.ExactCover(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("clarkson", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := scheme.ClarksonCover(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWireMarshal measures the wire-format cost of shipping a
// hosted database (upload path) and answers.
func BenchmarkWireMarshal(b *testing.B) {
	doc := datagen.NASA(500, 3)
	sys, err := core.Host(doc, datagen.NASASCs(), core.SchemeOpt, []byte("wire-bench"))
	if err != nil {
		b.Fatal(err)
	}
	data, err := wire.MarshalDB(sys.HostedDB)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("marshal-db", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := wire.MarshalDB(sys.HostedDB); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unmarshal-db", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := wire.UnmarshalDB(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRemoteRoundTrip measures a full query over the HTTP
// transport (loopback), versus the in-process backend.
func BenchmarkRemoteRoundTrip(b *testing.B) {
	doc := datagen.NASA(300, 3)
	sys, err := core.Host(doc, datagen.NASASCs(), core.SchemeOpt, []byte("remote-bench"))
	if err != nil {
		b.Fatal(err)
	}
	q := "//dataset[date>=1995]/title"
	b.Run("in-process", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := sys.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	ts := httptest.NewServer(remote.NewService())
	defer ts.Close()
	cl := remote.Dial(ts.URL, "bench").WithHTTPClient(ts.Client())
	if err := cl.Upload(context.Background(), sys.HostedDB); err != nil {
		b.Fatal(err)
	}
	sys.UseBackend(cl)
	b.Run("http", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := sys.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkUpdate measures the future-work extension: one leaf-value
// update including block re-encryption and index-band re-issue.
func BenchmarkUpdate(b *testing.B) {
	doc := datagen.NASA(300, 3)
	sys, err := core.Host(doc, datagen.NASASCs(), core.SchemeOpt, []byte("update-bench"))
	if err != nil {
		b.Fatal(err)
	}
	vals := []string{"Zeta", "Yost", "Xu"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.UpdateLeafValues("//dataset[1]/author[1]/last", vals[i%len(vals)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregateMinMax measures the §6.4 single-block path.
func BenchmarkAggregateMinMax(b *testing.B) {
	doc := datagen.NASA(1000, 3)
	sys, err := core.Host(doc, datagen.NASASCs(), core.SchemeOpt, []byte("agg-bench"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.AggregateMinMax("//author/last", i%2 == 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchemeConstruction(b *testing.B) {
	doc := datagen.NASA(500, 3)
	scs, err := sc.ParseAll(datagen.NASASCs())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("optimal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := scheme.Optimal(doc, scs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("approx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := scheme.Approx(doc, scs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
