package repro

// One benchmark per table and figure of the paper's evaluation
// section (§7), plus micro-benchmarks of every substrate. The
// experiment benchmarks wrap internal/bench; run the full-size
// reproduction with cmd/xencbench (-size 25000000 for the paper's
// 25 MB NASA document). Benchmark document size defaults to 2 MB and
// is overridable with SECXML_BENCH_BYTES.
//
//	go test -bench=. -benchmem
//
// Custom metrics: experiment benchmarks report the paper's columns
// (server-µs/op, decrypt-µs/op, post-µs/op, answer-KB) per
// scheme/class so the tables can be read straight off the benchmark
// output.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/cryptoprim"
	"repro/internal/datagen"
	"repro/internal/dsi"
	"repro/internal/opess"
	"repro/internal/remote"
	"repro/internal/sc"
	"repro/internal/scheme"
	"repro/internal/wire"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func benchSize() int {
	if v := os.Getenv("SECXML_BENCH_BYTES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 2_000_000
}

var (
	setupMu sync.Mutex
	setups  = map[string]*bench.Setup{}
)

// datasetSetup hosts one dataset under all four schemes on first use
// and caches it; the hosting cost is excluded from the per-query
// benchmarks. Datasets are built lazily and individually — a 25 MB
// SECXML_BENCH_BYTES run must never pay for (or hold) a dataset no
// selected benchmark touches.
func datasetSetup(b *testing.B, ds string) *bench.Setup {
	b.Helper()
	setupMu.Lock()
	defer setupMu.Unlock()
	if s, ok := setups[ds]; ok {
		return s
	}
	cfg := bench.DefaultConfig(ds, benchSize())
	cfg.QueriesPerClass = 5
	cfg.Trials = 1
	s, err := bench.NewSetup(cfg)
	if err != nil {
		b.Fatalf("setup %s: %v", ds, err)
	}
	setups[ds] = s
	return s
}

// releaseSetup drops a cached dataset so its four hosted systems can
// be collected. Benchmarks that are the sole consumer of a dataset
// release it when done, keeping the peak footprint at one dataset.
func releaseSetup(ds string) {
	setupMu.Lock()
	delete(setups, ds)
	setupMu.Unlock()
}

// BenchmarkFig9 regenerates Figure 9: per scheme and query class,
// the server query time, client decryption time and client query
// (post-processing) time on the NASA dataset.
func BenchmarkFig9(b *testing.B) {
	s := datasetSetup(b, "nasa")
	for _, schemeName := range bench.Schemes {
		sys := s.Systems[schemeName]
		for _, class := range bench.Classes {
			queries := s.Queries(class)
			b.Run(fmt.Sprintf("%s/%s", schemeName, class), func(b *testing.B) {
				var server, decrypt, post, bytes int64
				n := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					q := queries[i%len(queries)]
					_, _, tm, err := sys.Query(q)
					if err != nil {
						b.Fatalf("query %s: %v", q, err)
					}
					server += tm.ServerExec.Microseconds()
					decrypt += tm.ClientDecrypt.Microseconds()
					post += tm.ClientPost.Microseconds()
					bytes += int64(tm.AnswerBytes)
					n++
				}
				b.ReportMetric(float64(server)/float64(n), "server-µs/op")
				b.ReportMetric(float64(decrypt)/float64(n), "decrypt-µs/op")
				b.ReportMetric(float64(post)/float64(n), "post-µs/op")
				b.ReportMetric(float64(bytes)/float64(n)/1024, "answer-KB")
			})
		}
	}
}

// BenchmarkDivisionOfWork regenerates §7.2's table (E1): the full
// stage breakdown including translation and (simulated) transmission
// on the NASA dataset, one op per query round trip.
func BenchmarkDivisionOfWork(b *testing.B) {
	s := datasetSetup(b, "nasa")
	for _, schemeName := range bench.Schemes {
		sys := s.Systems[schemeName]
		queries := s.Queries(datagen.Qm)
		b.Run(string(schemeName), func(b *testing.B) {
			var translate, transmit int64
			n := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				_, _, tm, err := sys.Query(q)
				if err != nil {
					b.Fatalf("query %s: %v", q, err)
				}
				translate += tm.ClientTranslate.Microseconds()
				transmit += tm.Transmit.Microseconds()
				n++
			}
			b.ReportMetric(float64(translate)/float64(n), "translate-µs/op")
			b.ReportMetric(float64(transmit)/float64(n), "transmit-µs/op")
		})
	}
}

// BenchmarkOursVsNaive regenerates §7.3 (E2): the selective pipeline
// versus shipping the whole database, per scheme, on NASA Ql
// queries. The ratio column is the paper's headline number.
func BenchmarkOursVsNaive(b *testing.B) {
	s := datasetSetup(b, "nasa")
	for _, schemeName := range bench.Schemes {
		sys := s.Systems[schemeName]
		queries := s.Queries(datagen.Ql)
		for _, mode := range []string{"ours", "naive"} {
			b.Run(fmt.Sprintf("%s/%s", schemeName, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					q := queries[i%len(queries)]
					var err error
					if mode == "ours" {
						_, _, _, err = sys.Query(q)
					} else {
						_, _, _, err = sys.NaiveQuery(q)
					}
					if err != nil {
						b.Fatalf("%s %s: %v", mode, q, err)
					}
				}
			})
		}
	}
}

// BenchmarkEncryptionSchemes regenerates §7.4's encryption-cost
// measurements (E3): wall time to build blocks + metadata + value
// index per scheme, with the hosted size as a custom metric.
func BenchmarkEncryptionSchemes(b *testing.B) {
	doc := datagen.NASAToSize(benchSize()/4, 7)
	scs := datagen.NASASCs()
	for _, schemeName := range bench.Schemes {
		b.Run(string(schemeName), func(b *testing.B) {
			var hosted int
			for i := 0; i < b.N; i++ {
				sys, err := core.Host(doc, scs, schemeName, []byte("enc-bench"))
				if err != nil {
					b.Fatalf("Host: %v", err)
				}
				hosted = sys.HostedDB.ByteSize()
			}
			b.ReportMetric(float64(hosted)/1024, "hosted-KB")
		})
	}
}

// BenchmarkFig10 regenerates Figure 10 (E5): saving ratios of the
// app/opt schemes over top/sub, reported as custom metrics per
// query class, for both datasets.
func BenchmarkFig10(b *testing.B) {
	for _, ds := range []string{"xmark", "nasa"} {
		// Only one dataset stays resident: xmark runs first and is
		// the only xmark consumer, so it is hosted fresh and released
		// before nasa is (re)built.
		if ds == "xmark" {
			releaseSetup("nasa")
		}
		s := datasetSetup(b, ds)
		b.Run(ds, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := s.DivisionOfWork()
				if err != nil {
					b.Fatalf("DivisionOfWork: %v", err)
				}
				if i == b.N-1 {
					for _, r := range bench.SavingRatios(rows) {
						b.ReportMetric(r.SaT, r.Class.String()+"-Sa/t")
						b.ReportMetric(r.SaS, r.Class.String()+"-Sa/s")
						b.ReportMetric(r.SoT, r.Class.String()+"-So/t")
						b.ReportMetric(r.SoS, r.Class.String()+"-So/s")
					}
				}
			}
		})
		if ds == "xmark" {
			releaseSetup("xmark")
		}
	}
}

// BenchmarkFig6 regenerates Figure 6 (E6): the OPESS split of the
// paper's skewed distribution.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- parallel pipeline benchmarks ---
//
// Each Benchmark*Parallel runs a seq sub-benchmark (worker width 1)
// and a par sub-benchmark (parWorkers width) over the same queries,
// reporting the ratio as a "speedup" metric on the par run. Answers
// are asserted byte-identical across widths first — the pipeline's
// order-preserving merges make parallel output deterministic, so no
// sorting is needed. TestMain writes the collected rows to
// BENCH_parallel.json when SECXML_BENCH_JSON is set.

// parallelRow is one seq/par measurement pair for the JSON report.
type parallelRow struct {
	Benchmark  string  `json:"benchmark"`
	Workers    int     `json:"workers"`
	SeqNsPerOp float64 `json:"seq_ns_per_op"`
	ParNsPerOp float64 `json:"par_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

var (
	parallelRowsMu sync.Mutex
	parallelRows   []parallelRow
)

// recordParallel stores one measurement pair and returns the speedup
// for b.ReportMetric.
func recordParallel(name string, workers int, seqNs, parNs float64) float64 {
	speedup := 0.0
	if parNs > 0 {
		speedup = seqNs / parNs
	}
	parallelRowsMu.Lock()
	parallelRows = append(parallelRows, parallelRow{name, workers, seqNs, parNs, speedup})
	parallelRowsMu.Unlock()
	return speedup
}

// writeBenchJSON marshals rows to dest (envVal "1" picks def) and
// returns false on failure.
func writeBenchJSON(envVal, def string, rows any) bool {
	dest := envVal
	if dest == "1" {
		dest = def
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err == nil {
		err = os.WriteFile(dest, append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench json %s: %v\n", dest, err)
		return false
	}
	return true
}

func TestMain(m *testing.M) {
	code := m.Run()
	if v := os.Getenv("SECXML_BENCH_JSON"); v != "" && len(parallelRows) > 0 {
		if !writeBenchJSON(v, "BENCH_parallel.json", parallelRows) && code == 0 {
			code = 1
		}
	}
	if v := os.Getenv("SECXML_BENCH_CACHE_JSON"); v != "" && len(cacheRows) > 0 {
		if !writeBenchJSON(v, "BENCH_cache.json", cacheRows) && code == 0 {
			code = 1
		}
	}
	if v := os.Getenv("SECXML_BENCH_ALLOC_JSON"); v != "" && (len(allocRows) > 0 || len(streamRowsSnapshot()) > 0) {
		if !writeBenchJSON(v, "BENCH_alloc.json", allocReportData()) && code == 0 {
			code = 1
		}
	}
	if v := os.Getenv("SECXML_BENCH_ALLOC_GUARD"); v != "" && len(allocRows) > 0 {
		if err := allocGuard(v); err != nil {
			fmt.Fprintf(os.Stderr, "alloc regression guard: %v\n", err)
			code = 1
		}
	}
	if v := os.Getenv("SECXML_BENCH_UPDATE_JSON"); v != "" && len(updateRows) > 0 {
		if !writeBenchJSON(v, "BENCH_update.json", updateRows) && code == 0 {
			code = 1
		}
	}
	if v := os.Getenv("SECXML_BENCH_UPDATE_GUARD"); v != "" && len(updateRows) > 0 {
		if err := updateGuard(v); err != nil {
			fmt.Fprintf(os.Stderr, "update throughput regression guard: %v\n", err)
			code = 1
		}
	}
	if v := os.Getenv("SECXML_BENCH_MVCC_JSON"); v != "" && len(mvccRows) > 0 {
		if !writeBenchJSON(v, "BENCH_mvcc.json", mvccRows) && code == 0 {
			code = 1
		}
	}
	if v := os.Getenv("SECXML_BENCH_MVCC_GUARD"); v != "" && len(mvccRows) > 0 {
		if err := mvccGuard(v); err != nil {
			fmt.Fprintf(os.Stderr, "mvcc reader-latency guard: %v\n", err)
			code = 1
		}
	}
	if v := os.Getenv("SECXML_BENCH_PLAN_JSON"); v != "" && len(planRows) > 0 {
		if !writeBenchJSON(v, "BENCH_plan.json", planReportData()) && code == 0 {
			code = 1
		}
	}
	if v := os.Getenv("SECXML_BENCH_PLAN_GUARD"); v != "" && len(planRows) > 0 {
		if err := planGuard(v); err != nil {
			fmt.Fprintf(os.Stderr, "planner speedup guard: %v\n", err)
			code = 1
		}
	}
	if v := os.Getenv("SECXML_BENCH_LOAD_JSON"); v != "" && len(loadRows) > 0 {
		if !writeBenchJSON(v, "BENCH_load.json", loadRows) && code == 0 {
			code = 1
		}
	}
	if v := os.Getenv("SECXML_BENCH_LOAD_GUARD"); v != "" && len(loadRows) > 0 {
		if err := loadGuard(v); err != nil {
			fmt.Fprintf(os.Stderr, "overload protection guard: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// parWorkers is the parallel width for the Benchmark*Parallel pairs:
// every available CPU, but at least 4 so the fan-out code path is
// exercised (not just measured) on small runners too.
func parWorkers() int {
	if w := runtime.GOMAXPROCS(0); w > 4 {
		return w
	}
	return 4
}

// setWidth configures both pipeline halves (server matcher pool,
// client decrypt/splice pool) to one worker width.
func setWidth(sys *core.System, w int) {
	sys.Client.SetParallelism(w)
	if l, ok := sys.Server.(core.Local); ok {
		l.S.SetParallelism(w)
	}
}

// checkSameAnswers fails the benchmark if any query's parallel answer
// differs from its sequential answer, element for element.
func checkSameAnswers(b *testing.B, sys *core.System, queries []string, workers int) {
	b.Helper()
	for _, q := range queries {
		setWidth(sys, 1)
		seq, _, _, err := sys.Query(q)
		if err != nil {
			b.Fatalf("seq %s: %v", q, err)
		}
		setWidth(sys, workers)
		par, _, _, err := sys.Query(q)
		if err != nil {
			b.Fatalf("par %s: %v", q, err)
		}
		ss, ps := core.ResultStrings(seq), core.ResultStrings(par)
		if len(ss) != len(ps) {
			b.Fatalf("%s: %d answers sequential vs %d parallel", q, len(ss), len(ps))
		}
		for i := range ss {
			if ss[i] != ps[i] {
				b.Fatalf("%s: answer %d differs\n  seq: %s\n  par: %s", q, i, ss[i], ps[i])
			}
		}
	}
}

// BenchmarkQueryParallel measures the full client+server round trip
// at width 1 versus full width on NASA Ql queries (the class with the
// most candidate work to shard).
func BenchmarkQueryParallel(b *testing.B) {
	s := datasetSetup(b, "nasa")
	sys := s.Systems[core.SchemeOpt]
	queries := s.Queries(datagen.Ql)
	workers := parWorkers()
	defer setWidth(sys, 1) // bench.Setup default; keeps later E1–E5 runs width-1
	checkSameAnswers(b, sys, queries, workers)

	var seqNs float64
	b.Run("seq", func(b *testing.B) {
		setWidth(sys, 1)
		for i := 0; i < b.N; i++ {
			if _, _, _, err := sys.Query(queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
		}
		seqNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run(fmt.Sprintf("par%d", workers), func(b *testing.B) {
		setWidth(sys, workers)
		for i := 0; i < b.N; i++ {
			if _, _, _, err := sys.Query(queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
		}
		if parNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N); seqNs > 0 {
			b.ReportMetric(recordParallel("QueryParallel", workers, seqNs, parNs), "speedup")
		}
	})
}

// BenchmarkServerExecParallel isolates the server matcher stage: the
// client stays at width 1 while the matcher pool width varies, and
// the stage is timed through Timings.ServerExec rather than wall
// clock so client work does not dilute the ratio.
func BenchmarkServerExecParallel(b *testing.B) {
	s := datasetSetup(b, "nasa")
	sys := s.Systems[core.SchemeOpt]
	queries := s.Queries(datagen.Ql)
	workers := parWorkers()
	defer setWidth(sys, 1) // bench.Setup default; keeps later E1–E5 runs width-1
	checkSameAnswers(b, sys, queries, workers)

	run := func(b *testing.B, width int) float64 {
		sys.Client.SetParallelism(1)
		if l, ok := sys.Server.(core.Local); ok {
			l.S.SetParallelism(width)
		}
		var server int64
		for i := 0; i < b.N; i++ {
			_, _, tm, err := sys.Query(queries[i%len(queries)])
			if err != nil {
				b.Fatal(err)
			}
			server += tm.ServerExec.Nanoseconds()
		}
		ns := float64(server) / float64(b.N)
		b.ReportMetric(ns/1e3, "server-µs/op")
		return ns
	}
	var seqNs float64
	b.Run("seq", func(b *testing.B) { seqNs = run(b, 1) })
	b.Run(fmt.Sprintf("par%d", workers), func(b *testing.B) {
		if parNs := run(b, workers); seqNs > 0 {
			b.ReportMetric(recordParallel("ServerExecParallel", workers, seqNs, parNs), "speedup")
		}
	})
}

// BenchmarkDecryptParallel isolates the client decrypt stage: the
// server stays at width 1 while DecryptBlocks width varies, timed
// through Timings.ClientDecrypt.
func BenchmarkDecryptParallel(b *testing.B) {
	s := datasetSetup(b, "nasa")
	sys := s.Systems[core.SchemeOpt]
	queries := s.Queries(datagen.Ql)
	workers := parWorkers()
	defer setWidth(sys, 1) // bench.Setup default; keeps later E1–E5 runs width-1
	checkSameAnswers(b, sys, queries, workers)

	run := func(b *testing.B, width int) float64 {
		sys.Client.SetParallelism(width)
		if l, ok := sys.Server.(core.Local); ok {
			l.S.SetParallelism(1)
		}
		var decrypt int64
		for i := 0; i < b.N; i++ {
			_, _, tm, err := sys.Query(queries[i%len(queries)])
			if err != nil {
				b.Fatal(err)
			}
			decrypt += tm.ClientDecrypt.Nanoseconds()
		}
		ns := float64(decrypt) / float64(b.N)
		b.ReportMetric(ns/1e3, "decrypt-µs/op")
		return ns
	}
	var seqNs float64
	b.Run("seq", func(b *testing.B) { seqNs = run(b, 1) })
	b.Run(fmt.Sprintf("par%d", workers), func(b *testing.B) {
		if parNs := run(b, workers); seqNs > 0 {
			b.ReportMetric(recordParallel("DecryptParallel", workers, seqNs, parNs), "speedup")
		}
	})
}

// BenchmarkConcurrentQueries measures cross-query concurrency: many
// goroutines sharing one System under its reader lock, each query at
// width 1, versus the same load issued serially. This is the remote
// service's steady state (many clients, bounded in-flight).
func BenchmarkConcurrentQueries(b *testing.B) {
	s := datasetSetup(b, "nasa")
	sys := s.Systems[core.SchemeOpt]
	queries := s.Queries(datagen.Qm)
	setWidth(sys, 1)
	defer setWidth(sys, 1) // bench.Setup default; keeps later E1–E5 runs width-1

	var seqNs float64
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := sys.Query(queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
		}
		seqNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("concurrent", func(b *testing.B) {
		if runtime.GOMAXPROCS(0) < 4 {
			b.SetParallelism(4) // still exercise contention on small runners
		}
		var next atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				q := queries[int(next.Add(1))%len(queries)]
				if _, _, _, err := sys.Query(q); err != nil {
					b.Error(err)
					return
				}
			}
		})
		if parNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N); seqNs > 0 {
			b.ReportMetric(recordParallel("ConcurrentQueries", runtime.GOMAXPROCS(0), seqNs, parNs), "speedup")
		}
	})
}

// --- substrate micro-benchmarks ---

func BenchmarkXPathEvaluate(b *testing.B) {
	doc := datagen.NASA(2000, 3)
	queries := []*xpath.Path{
		xpath.MustParse("//dataset/title"),
		xpath.MustParse("//dataset[date>=1990]//last"),
		xpath.MustParse("//author[initial='A']/last"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xpath.Evaluate(doc, queries[i%len(queries)])
	}
}

func BenchmarkXMLParse(b *testing.B) {
	data := []byte(datagen.NASA(500, 3).String())
	b.SetBytes(int64(len(data)))
	b.Run("encoding-xml", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := xmltree.ParseString(string(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compact", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := xmltree.ParseCompact(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDSIAssign(b *testing.B) {
	doc := datagen.NASA(2000, 3)
	keys := cryptoprim.MustKeySet("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsi.Assign(doc, keys)
	}
}

func BenchmarkBTree(b *testing.B) {
	b.Run("insert", func(b *testing.B) {
		tr := btree.New(0)
		for i := 0; i < b.N; i++ {
			tr.Insert(uint64(i*2654435761), i)
		}
	})
	b.Run("range", func(b *testing.B) {
		tr := btree.New(0)
		for i := 0; i < 100000; i++ {
			tr.Insert(uint64(i), i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := uint64(i % 90000)
			tr.Range(lo, lo+1000)
		}
	})
}

// BenchmarkStructuralJoin compares the per-context binary-search
// probe against the batched sort-merge structural join (§6.2) on a
// realistic interval family.
func BenchmarkStructuralJoin(b *testing.B) {
	doc := datagen.NASA(3000, 3)
	keys := cryptoprim.MustKeySet("join-bench")
	md := dsi.BuildMetadata(doc, nil, keys)
	ctxs := md.Table.Lookup("dataset")
	cands := md.Table.Lookup("last")
	b.Run("per-context", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			total := 0
			for _, ctx := range ctxs {
				total += len(dsi.Within(cands, ctx))
			}
			if total == 0 {
				b.Fatal("no matches")
			}
		}
	})
	b.Run("merge-join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(dsi.DescendantJoin(ctxs, cands)) == 0 {
				b.Fatal("no matches")
			}
		}
	})
}

func BenchmarkOPE(b *testing.B) {
	ope := cryptoprim.NewOPE(cryptoprim.MustKeySet("bench"), 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ope.Encrypt(float64(i % 100000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOPESSBuild(b *testing.B) {
	keys := cryptoprim.MustKeySet("bench")
	freq := map[string]int{}
	r := datagen.NewRand(5)
	for i := 0; i < 200; i++ {
		freq[fmt.Sprintf("v%03d", i)] = 1 + r.Zipf(50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opess.Build("attr", freq, keys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAESBlock(b *testing.B) {
	keys := cryptoprim.MustKeySet("bench")
	pt := []byte(datagen.NASA(20, 3).String())
	b.SetBytes(int64(len(pt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct, err := keys.EncryptBlock(pt)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := keys.DecryptBlock(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVertexCover(b *testing.B) {
	r := datagen.NewRand(11)
	in := &scheme.VCInstance{Weights: make([]int, 16)}
	for i := range in.Weights {
		in.Weights[i] = 1 + r.Intn(9)
	}
	for u := 0; u < 16; u++ {
		for v := u + 1; v < 16; v++ {
			if r.Intn(4) == 0 {
				in.Edges = append(in.Edges, [2]int{u, v})
			}
		}
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := scheme.ExactCover(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("clarkson", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := scheme.ClarksonCover(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWireMarshal measures the wire-format cost of shipping a
// hosted database (upload path) and answers.
func BenchmarkWireMarshal(b *testing.B) {
	doc := datagen.NASA(500, 3)
	sys, err := core.Host(doc, datagen.NASASCs(), core.SchemeOpt, []byte("wire-bench"))
	if err != nil {
		b.Fatal(err)
	}
	data, err := wire.MarshalDB(sys.HostedDB)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("marshal-db", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := wire.MarshalDB(sys.HostedDB); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unmarshal-db", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := wire.UnmarshalDB(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRemoteRoundTrip measures a full query over the HTTP
// transport (loopback), versus the in-process backend.
func BenchmarkRemoteRoundTrip(b *testing.B) {
	doc := datagen.NASA(300, 3)
	sys, err := core.Host(doc, datagen.NASASCs(), core.SchemeOpt, []byte("remote-bench"))
	if err != nil {
		b.Fatal(err)
	}
	q := "//dataset[date>=1995]/title"
	b.Run("in-process", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := sys.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	ts := httptest.NewServer(remote.NewService())
	defer ts.Close()
	cl := remote.Dial(ts.URL, "bench").WithHTTPClient(ts.Client())
	if err := cl.Upload(context.Background(), sys.HostedDB); err != nil {
		b.Fatal(err)
	}
	sys.UseBackend(cl)
	b.Run("http", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := sys.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkUpdate measures the future-work extension: one leaf-value
// update including block re-encryption and index-band re-issue.
func BenchmarkUpdate(b *testing.B) {
	doc := datagen.NASA(300, 3)
	sys, err := core.Host(doc, datagen.NASASCs(), core.SchemeOpt, []byte("update-bench"))
	if err != nil {
		b.Fatal(err)
	}
	vals := []string{"Zeta", "Yost", "Xu"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.UpdateLeafValues("//dataset[1]/author[1]/last", vals[i%len(vals)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregateMinMax measures the §6.4 single-block path.
func BenchmarkAggregateMinMax(b *testing.B) {
	doc := datagen.NASA(1000, 3)
	sys, err := core.Host(doc, datagen.NASASCs(), core.SchemeOpt, []byte("agg-bench"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.AggregateMinMax("//author/last", i%2 == 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchemeConstruction(b *testing.B) {
	doc := datagen.NASA(500, 3)
	scs, err := sc.ParseAll(datagen.NASASCs())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("optimal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := scheme.Optimal(doc, scs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("approx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := scheme.Approx(doc, scs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
