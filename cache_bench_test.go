package repro

// Hot-path benchmarks for the cross-query caching layer. Each
// Benchmark*Hot runs a cold sub-benchmark (every cache dropped before
// each query — the pipeline the §7 experiments measure) and a hot
// sub-benchmark (caches warmed, the same workload repeated),
// reporting the ratio as a "speedup" metric together with the hit
// ratio of each cache during the hot run. TestMain writes the
// collected rows to BENCH_cache.json when SECXML_BENCH_CACHE_JSON is
// set.
//
// The workload is the scenario the caching layer targets: selective
// queries asked over and over against an unchanged database. Wide
// scans are excluded by an answer-size filter — their cost is
// client-side post-processing of the result tree, which is rebuilt
// per query by design (callers own the returned nodes) and which the
// experiment benchmarks already measure.
//
// These benchmarks host their own system: the shared bench.Setup
// systems run with SetCaching(false) so the paper-reproduction
// numbers stay cold-path measurements.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gencache"
)

// cacheRow is one cold/hot measurement for the JSON report.
type cacheRow struct {
	Benchmark    string  `json:"benchmark"`
	ColdNsPerOp  float64 `json:"cold_ns_per_op"`
	HotNsPerOp   float64 `json:"hot_ns_per_op"`
	Speedup      float64 `json:"speedup"`
	PlanHitPct   float64 `json:"plan_hit_pct"`
	RangeHitPct  float64 `json:"range_hit_pct"`
	AnswerHitPct float64 `json:"answer_hit_pct"`
	BlockHitPct  float64 `json:"block_hit_pct"`
}

var (
	cacheRowsMu sync.Mutex
	cacheRows   []cacheRow
)

// recordCacheRow keeps one row per benchmark, last run wins: the
// testing framework invokes sub-benchmarks more than once while
// calibrating b.N.
func recordCacheRow(row cacheRow) {
	cacheRowsMu.Lock()
	defer cacheRowsMu.Unlock()
	for i := range cacheRows {
		if cacheRows[i].Benchmark == row.Benchmark {
			cacheRows[i] = row
			return
		}
	}
	cacheRows = append(cacheRows, row)
}

var (
	hotOnce    sync.Once
	hotSys     *core.System
	hotQueries []string
	hotErr     error
)

// hotAnswerLimit is the answer-size cutoff for the repeated-query
// workload: queries answering more than this are scans, not lookups.
const hotAnswerLimit = 128 << 10

// hotSetup hosts one NASA document under the opt scheme with the full
// caching layer on (server query caches by default, client block
// cache opted in) and picks the selective repeated-query workload: a
// pool of generated Qs/Qm/Ql queries filtered to answers of at most
// hotAnswerLimit bytes.
func hotSetup(b *testing.B) (*core.System, []string) {
	b.Helper()
	hotOnce.Do(func() {
		cfg := bench.DefaultConfig("nasa", benchSize())
		doc := datagen.NASAToSize(cfg.SizeBytes, cfg.Seed)
		sys, err := core.Host(doc, datagen.NASASCs(), core.SchemeOpt, []byte("bench-hot"))
		if err != nil {
			hotErr = err
			return
		}
		sys.EnableBlockCache(1<<16, 512<<20)
		var pool []string
		seen := map[string]bool{}
		for _, class := range []datagen.QueryClass{datagen.Qs, datagen.Qm, datagen.Ql} {
			for _, q := range datagen.Queries(doc, class, 5, cfg.Seed+uint64(class)) {
				if !seen[q] {
					seen[q] = true
					pool = append(pool, q)
				}
			}
		}
		for _, q := range pool {
			_, _, tm, err := sys.Query(q)
			if err != nil {
				hotErr = err
				return
			}
			if tm.AnswerBytes <= hotAnswerLimit {
				hotQueries = append(hotQueries, q)
			}
		}
		if len(hotQueries) == 0 {
			hotQueries = pool[:1]
		}
		sys.ResetCaches()
		hotSys = sys
	})
	if hotErr != nil {
		b.Fatal(hotErr)
	}
	return hotSys, hotQueries
}

func hitPct(after, before gencache.Stats) float64 {
	h := after.Hits - before.Hits
	m := after.Misses - before.Misses
	if h+m == 0 {
		return 0
	}
	return 100 * float64(h) / float64(h+m)
}

// cacheSnapshot captures every cache counter of the system at once.
func cacheSnapshot(sys *core.System) map[string]gencache.Stats {
	stats := sys.Server.(core.Local).S.CacheStats()
	stats["blocks"] = sys.BlockCacheStats()
	return stats
}

// runHotBench is the shared cold/hot harness: cold drops every cache
// before each query, hot warms the workload once and then repeats it.
// cost extracts the timed quantity from one query (wall-clock
// nanoseconds or a Timings stage).
func runHotBench(b *testing.B, name string, cost func(b *testing.B, q string) int64) {
	sys, queries := hotSetup(b)
	var coldNs float64
	b.Run("cold", func(b *testing.B) {
		sys.ResetCaches()
		var total int64
		for i := 0; i < b.N; i++ {
			sys.ResetCaches()
			total += cost(b, queries[i%len(queries)])
		}
		coldNs = float64(total) / float64(b.N)
		b.ReportMetric(coldNs/1e3, "µs/op")
	})
	b.Run("hot", func(b *testing.B) {
		sys.ResetCaches()
		for _, q := range queries {
			cost(b, q) // warm every distinct query once
		}
		before := cacheSnapshot(sys)
		var total int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			total += cost(b, queries[i%len(queries)])
		}
		after := cacheSnapshot(sys)
		hotNs := float64(total) / float64(b.N)
		b.ReportMetric(hotNs/1e3, "µs/op")
		if coldNs == 0 || hotNs == 0 {
			return
		}
		row := cacheRow{
			Benchmark:    name,
			ColdNsPerOp:  coldNs,
			HotNsPerOp:   hotNs,
			Speedup:      coldNs / hotNs,
			PlanHitPct:   hitPct(after["plans"], before["plans"]),
			RangeHitPct:  hitPct(after["ranges"], before["ranges"]),
			AnswerHitPct: hitPct(after["answers"], before["answers"]),
			BlockHitPct:  hitPct(after["blocks"], before["blocks"]),
		}
		recordCacheRow(row)
		b.ReportMetric(row.Speedup, "speedup")
		b.ReportMetric(row.AnswerHitPct, "answer-hit-%")
	})
}

// BenchmarkQueryHot measures the full client+server round trip on the
// repeated selective workload, cold caches versus warm caches.
func BenchmarkQueryHot(b *testing.B) {
	runHotBench(b, "QueryHot", func(b *testing.B, q string) int64 {
		t0 := time.Now()
		if _, _, _, err := hotSys.Query(q); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0).Nanoseconds()
	})
}

// BenchmarkServerExecHot isolates the server stage (plan, resolve,
// match, assemble), timed through Timings.ServerExec so client work
// does not dilute the cache effect. Repeated identical frames are
// served from the answer cache without touching the matcher.
func BenchmarkServerExecHot(b *testing.B) {
	runHotBench(b, "ServerExecHot", func(b *testing.B, q string) int64 {
		_, _, tm, err := hotSys.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		return tm.ServerExec.Nanoseconds()
	})
}

// BenchmarkDecryptHot isolates the client decrypt stage, timed
// through Timings.ClientDecrypt: warm runs serve every block from the
// decrypted-block cache and skip AES-GCM entirely.
func BenchmarkDecryptHot(b *testing.B) {
	runHotBench(b, "DecryptHot", func(b *testing.B, q string) int64 {
		_, _, tm, err := hotSys.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		return tm.ClientDecrypt.Nanoseconds()
	})
}
