// Command xaudit quantifies the security a hosted database achieves
// against the paper's attack model (§3.3): for each protected
// attribute it reports the candidate-database counts of Theorems 4.1
// and 5.2, runs the frequency and adjacent-sum attacks an
// honest-but-curious server could mount, and reports the belief
// bounds of Theorem 6.1.
//
//	xaudit -in db.xml -key secret -sc "//patient:(/pname, //disease)" -scheme opt
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/xmltree"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	in := flag.String("in", "", "input XML file (required)")
	schemeName := flag.String("scheme", "opt", "encryption scheme: opt, app, sub, top, leaf")
	key := flag.String("key", "", "master key (required)")
	var scs multiFlag
	flag.Var(&scs, "sc", "security constraint (repeatable)")
	flag.Parse()
	if *in == "" || *key == "" {
		fmt.Fprintln(os.Stderr, "xaudit: -in and -key are required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	doc, err := xmltree.Parse(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	sys, err := core.Host(doc, scs, core.SchemeName(*schemeName), []byte(*key))
	if err != nil {
		fatal(err)
	}

	fmt.Printf("scheme %s: %d blocks, %d encrypted association endpoints %v\n\n",
		sys.Scheme.Name, sys.Scheme.NumBlocks(), len(sys.Scheme.CoverTags), coverList(sys))

	freqs := doc.LeafValueFrequencies()

	fmt.Println("=== Theorem 4.1: candidate databases from decoyed encryption ===")
	total := big.NewInt(1)
	for _, tag := range xmltree.SortedKeys(freqs) {
		if !tagEncrypted(sys, tag) {
			continue
		}
		var fs []int
		for _, n := range freqs[tag] {
			fs = append(fs, n)
		}
		c := attack.MultinomialCandidates(fs)
		total.Mul(total, c)
		fmt.Printf("  %-14s %3d distinct values -> %s candidates\n", tag, len(fs), sci(c))
	}
	fmt.Printf("  combined: %s indistinguishable candidate databases\n\n", sci(total))

	fmt.Println("=== Theorem 5.2: value-index candidates (order-preserving partitions) ===")
	for _, tag := range xmltree.SortedKeys(freqs) {
		if !tagEncrypted(sys, tag) {
			continue
		}
		k := len(freqs[tag])
		n := 0
		for _, cnt := range freqs[tag] {
			n += chunksFor(cnt)
		}
		if n <= k {
			continue
		}
		fmt.Printf("  %-14s k=%3d plaintexts, n=%4d ciphertexts -> C(n-1,k-1) = %s\n",
			tag, k, n, sci(attack.CompositionCandidates(n, k)))
	}
	fmt.Println()

	fmt.Println("=== Theorem 6.1: belief bounds under query observation ===")
	for _, tag := range xmltree.SortedKeys(freqs) {
		if !tagEncrypted(sys, tag) {
			continue
		}
		k := len(freqs[tag])
		n := 0
		for _, cnt := range freqs[tag] {
			n += chunksFor(cnt)
		}
		if n <= k || k < 1 {
			continue
		}
		b := attack.NewAssociationBelief(k, n)
		prior := b.Belief()
		b.Observe()
		fmt.Printf("  %-14s prior %s -> after observation %s (never increases)\n",
			tag, ratStr(prior), ratStr(b.Belief()))
	}
	fmt.Println()

	fmt.Println("=== frequency attack on the hosted ciphertext (should crack nothing) ===")
	// With randomized AES-GCM every ciphertext class has size 1; the
	// deterministic-model attack is what decoys defend even there.
	view := serverIndexFreqs(sys)
	cracked := 0
	for _, tag := range xmltree.SortedKeys(freqs) {
		if !tagEncrypted(sys, tag) {
			continue
		}
		plain := freqs[tag]
		var plainList []int
		for _, n := range plain {
			plainList = append(plainList, n)
		}
		if g := attack.CountConsistentGroupings(view, plainList); g == 1 {
			cracked++
			fmt.Printf("  %-14s UNIQUE adjacent-sum grouping: review scaling!\n", tag)
		}
	}
	if cracked == 0 {
		fmt.Println("  no attribute admits a unique adjacent-sum grouping: attack defeated")
	}
}

func coverList(sys *core.System) []string {
	var out []string
	for t := range sys.Scheme.CoverTags {
		out = append(out, t)
	}
	return out
}

func tagEncrypted(sys *core.System, tag string) bool {
	if sys.Scheme.Name == "top" {
		return true
	}
	if sys.Scheme.CoverTags[tag] {
		return true
	}
	// Node-type constraints encrypt whole subtrees; approximate by
	// checking whether the tag is absent from the plaintext residue.
	return !strings.Contains(sys.HostedDB.Residue.String(), "<"+strings.TrimPrefix(tag, "@"))
}

// chunksFor mirrors the OPESS chunk count for one frequency (m=3
// lower bound: every n>1 decomposes into chunks of >=2, singletons
// split into 3).
func chunksFor(n int) int {
	if n == 1 {
		return 3
	}
	return (n + 2) / 3
}

func serverIndexFreqs(sys *core.System) []int {
	freq := map[uint64]int{}
	for _, e := range sys.HostedDB.IndexEntries {
		freq[e.Key]++
	}
	return attack.SortedFreqs(freq)
}

func sci(v *big.Int) string {
	s := v.String()
	if len(s) <= 12 {
		return s
	}
	return fmt.Sprintf("%c.%se%d", s[0], s[1:4], len(s)-1)
}

func ratStr(r *big.Rat) string {
	f, _ := r.Float64()
	return fmt.Sprintf("%.3g", f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xaudit:", err)
	os.Exit(1)
}
