// Command xenc encrypts an XML document under a set of security
// constraints and reports what the untrusted server would see: the
// plaintext residue, the DSI table labels, block statistics and the
// value-index frequency distribution.
//
//	xenc -in db.xml -sc "//insurance" -sc "//patient:(/pname, //disease)" \
//	     -scheme opt -key secret [-residue]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/secxml"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	in := flag.String("in", "", "input XML file (required)")
	schemeName := flag.String("scheme", "opt", "encryption scheme: opt, app, sub, top, leaf")
	key := flag.String("key", "", "master key (required)")
	showResidue := flag.Bool("residue", false, "print the full plaintext residue")
	var scs multiFlag
	flag.Var(&scs, "sc", "security constraint (repeatable): \"p\" or \"p:(q1, q2)\"")
	flag.Parse()

	if *in == "" || *key == "" {
		fmt.Fprintln(os.Stderr, "xenc: -in and -key are required")
		flag.Usage()
		os.Exit(2)
	}
	for _, s := range scs {
		if err := secxml.ValidateConstraint(s); err != nil {
			fatal(err)
		}
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	doc, err := secxml.ParseDocument(f)
	if err != nil {
		fatal(err)
	}

	db, err := secxml.Host(doc, scs, secxml.Options{
		MasterKey: []byte(*key),
		Scheme:    *schemeName,
	})
	if err != nil {
		fatal(err)
	}

	st := db.Stats()
	fmt.Printf("document:      %d bytes, %d nodes, depth %d\n", doc.ByteSize(), doc.NumNodes(), doc.Depth())
	fmt.Printf("scheme:        %s (cover tags: %v)\n", st.Scheme, st.CoverTags)
	fmt.Printf("blocks:        %d (scheme size %d nodes)\n", st.NumBlocks, st.SchemeSize)
	fmt.Printf("hosted size:   %d bytes\n", st.HostedBytes)
	fmt.Printf("DSI entries:   %d\n", st.DSITableEntries)
	fmt.Printf("index entries: %d\n", st.IndexEntries)
	fmt.Printf("encrypt time:  %v\n", st.EncryptTime)

	view := db.ServerView()
	fmt.Printf("\nDSI labels the server sees (%d):\n", len(view.DSILabels))
	for i := 0; i < len(view.DSILabels); i += 6 {
		end := i + 6
		if end > len(view.DSILabels) {
			end = len(view.DSILabels)
		}
		fmt.Println("  " + strings.Join(view.DSILabels[i:end], " "))
	}
	if *showResidue {
		fmt.Printf("\nplaintext residue:\n%s\n", view.ResidueXML)
	} else {
		fmt.Printf("\nresidue: %d bytes (pass -residue to print)\n", len(view.ResidueXML))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xenc:", err)
	os.Exit(1)
}
