// Command xencbench regenerates every table and figure of the
// paper's evaluation section (§7) and prints them as text tables.
//
//	go run ./cmd/xencbench -dataset nasa -size 25000000 -exp all
//
// Experiments (see DESIGN.md's index):
//
//	division  §7.2  division of work between client and server (E1)
//	naive     §7.3  our approach vs the naive method (E2)
//	enccost   §7.4  encryption time and hosted size per scheme (E3)
//	fig9      Fig 9 query performance of the four schemes (E4)
//	fig10     Fig 10 saving ratios Sa/t, Sa/s, So/t, So/s (E5)
//	fig6      Fig 6 OPESS distribution flattening (E6)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/datagen"
	"repro/internal/xmltree"
)

func main() {
	dataset := flag.String("dataset", "nasa", "dataset: nasa, xmark or both")
	size := flag.Int("size", 2_000_000, "plaintext document size in bytes (paper: 25000000)")
	exp := flag.String("exp", "all", "experiment: all, division, naive, enccost, fig9, fig10, fig6, ablation")
	queries := flag.Int("queries", 10, "queries per Qs/Qm/Ql class")
	trials := flag.Int("trials", 5, "trials per query (min and max dropped)")
	paperHW := flag.Bool("paperhw", false, "simulate the paper's 2006 client decryption throughput (see EXPERIMENTS.md)")
	flag.Parse()

	if *exp == "fig6" || *exp == "all" {
		runFig6()
		if *exp == "fig6" {
			return
		}
	}

	var datasets []string
	switch *dataset {
	case "both":
		datasets = []string{"nasa", "xmark"}
	default:
		datasets = []string{*dataset}
	}
	for _, ds := range datasets {
		cfg := bench.DefaultConfig(ds, *size)
		cfg.QueriesPerClass = *queries
		cfg.Trials = *trials
		cfg.PaperHW = *paperHW
		fmt.Printf("=== dataset %s, target %d bytes ===\n", ds, *size)
		start := time.Now()
		setup, err := bench.NewSetup(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("generated %d bytes (%d nodes), hosted under %d schemes in %v\n\n",
			setup.Doc.ByteSize(), setup.Doc.Size(), len(setup.Systems), time.Since(start).Round(time.Millisecond))

		switch *exp {
		case "all":
			runEncCost(setup)
			rows := runDivision(setup)
			runFig9(rows)
			runFig10(setup, rows)
			runNaive(setup)
			runAblations(setup)
		case "division":
			runDivision(setup)
		case "naive":
			runNaive(setup)
		case "enccost":
			runEncCost(setup)
		case "fig9":
			runFig9(mustDivision(setup))
		case "fig10":
			runFig10(setup, mustDivision(setup))
		case "ablation":
			runAblations(setup)
		default:
			fatal(fmt.Errorf("unknown experiment %q", *exp))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xencbench:", err)
	os.Exit(1)
}

func mustDivision(s *bench.Setup) []bench.DivisionRow {
	rows, err := s.DivisionOfWork()
	if err != nil {
		fatal(err)
	}
	return rows
}

func runDivision(s *bench.Setup) []bench.DivisionRow {
	rows := mustDivision(s)
	fmt.Println("--- E1 (§7.2): division of work between client and server ---")
	fmt.Printf("%-6s %-4s %12s %12s %12s %12s %12s %10s %7s\n",
		"scheme", "cls", "translate", "server", "transmit", "decrypt", "post", "bytes", "blocks")
	for _, r := range rows {
		fmt.Printf("%-6s %-4s %12v %12v %12v %12v %12v %10d %7d\n",
			r.Scheme, r.Class, rnd(r.ClientTranslate), rnd(r.ServerExec), rnd(r.Transmit),
			rnd(r.ClientDecrypt), rnd(r.ClientPost), r.AnswerBytes, r.BlocksShipped)
	}
	fmt.Println()
	return rows
}

func runNaive(s *bench.Setup) {
	rows, err := s.OursVsNaive()
	if err != nil {
		fatal(err)
	}
	fmt.Println("--- E2 (§7.3): our approach vs naive method (ship everything) ---")
	fmt.Printf("%-6s %-4s %14s %14s %8s\n", "scheme", "cls", "ours", "naive", "ratio")
	for _, r := range rows {
		fmt.Printf("%-6s %-4s %14v %14v %7.0f%%\n",
			r.Scheme, r.Class, rnd(r.Ours), rnd(r.Naive), r.Ratio*100)
	}
	fmt.Println()
}

func runEncCost(s *bench.Setup) {
	rows := s.EncryptionCost()
	fmt.Println("--- E3 (§7.4): encryption cost and hosted size per scheme ---")
	fmt.Printf("%-6s %14s %14s %14s %10s %12s\n", "scheme", "encrypt", "hosted bytes", "cipher bytes", "blocks", "scheme size")
	for _, r := range rows {
		fmt.Printf("%-6s %14v %14d %14d %10d %12d\n",
			r.Scheme, rnd(r.EncryptTime), r.HostedBytes, r.CipherBytes, r.NumBlocks, r.SchemeSize)
	}
	fmt.Println()
}

func runFig9(rows []bench.DivisionRow) {
	fmt.Println("--- E4 (Figure 9): query performance of the four schemes ---")
	for _, class := range bench.Classes {
		fmt.Printf("(%s) query %v\n", panelName(class), class)
		fmt.Printf("  %-6s %14s %14s %14s\n", "scheme", "server query", "client decrypt", "client query")
		for _, scheme := range bench.Schemes {
			for _, r := range rows {
				if r.Scheme == scheme && r.Class == class {
					fmt.Printf("  %-6s %14v %14v %14v\n",
						scheme, rnd(r.ServerExec), rnd(r.ClientDecrypt), rnd(r.ClientPost))
				}
			}
		}
	}
	fmt.Println()
}

func panelName(c datagen.QueryClass) string {
	switch c {
	case datagen.Qs:
		return "1"
	case datagen.Qm:
		return "2"
	default:
		return "3"
	}
}

func runFig10(s *bench.Setup, rows []bench.DivisionRow) {
	savings := bench.SavingRatios(rows)
	fmt.Printf("--- E5 (Figure 10): saving ratios, dataset %s ---\n", s.Config.Dataset)
	fmt.Printf("%-4s %8s %8s %8s %8s\n", "cls", "Sa/t", "Sa/s", "So/t", "So/s")
	for _, r := range savings {
		fmt.Printf("%-4s %8.2f %8.2f %8.2f %8.2f\n", r.Class.String(), r.SaT, r.SaS, r.SoT, r.SoS)
	}
	fmt.Println()
}

func runFig6() {
	input, output, err := bench.Fig6()
	if err != nil {
		fatal(err)
	}
	fmt.Println("--- E6 (Figure 6): OPESS distribution flattening ---")
	fmt.Println("(a) plaintext occurrence frequencies")
	for _, r := range input {
		fmt.Printf("  %-14s %3d %s\n", r.Label, r.Count, strings.Repeat("#", r.Count))
	}
	fmt.Println("(b) ciphertext occurrence frequencies after splitting")
	for _, r := range output {
		fmt.Printf("  %-14s %3d %s\n", r.Label, r.Count, strings.Repeat("#", r.Count))
	}
	fmt.Println()
}

func runAblations(s *bench.Setup) {
	fmt.Println("--- ablations: what each defense buys (and costs) ---")
	// Decoys (§4.1) on a small instance of the same dataset.
	var doc = smallDocLike(s)
	if rows, err := bench.DecoyAblation(doc, s.SCs); err == nil {
		fmt.Println("decoys vs frequency attack (values cracked per tag):")
		for _, r := range rows {
			fmt.Printf("  %-12s distinct=%3d cracked(no decoy)=%3d cracked(decoy)=%3d"+"\n",
				r.Tag, r.DistinctValues, r.CrackedNoDecoy, r.CrackedDecoy)
		}
	} else {
		fmt.Println("decoy ablation:", err)
	}
	// Scaling (§5.2.1).
	if rows, err := bench.ScalingAblation(doc); err == nil {
		fmt.Println("scaling vs adjacent-sum attack (consistent groupings; 0 = defeated):")
		for _, r := range rows {
			fmt.Printf("  %-12s unscaled=%4d scaled=%4d entries %5d -> %5d"+"\n",
				r.Tag, r.GroupingsUnscaled, r.GroupingsScaled, r.IndexEntriesPlain, r.IndexEntriestotal)
		}
	} else {
		fmt.Println("scaling ablation:", err)
	}
	// Grouping (§5.1.1).
	if row, err := bench.GroupingAblation(doc, s.SCs); err == nil {
		fmt.Printf("grouping: DSI entries %d -> %d; structural candidates ~1e%.0f (Thm 5.1)"+"\n",
			row.EntriesUngrouped, row.EntriesGrouped, row.CandidatesLog10)
	} else {
		fmt.Println("grouping ablation:", err)
	}
	// Link sensitivity.
	if rows, err := s.LinkAblation(); err == nil {
		fmt.Println("link sensitivity (Ql workload, top vs opt):")
		for _, r := range rows {
			fmt.Printf("  %-12s top=%12v opt=%12v saving=%.2f"+"\n",
				r.Link, rnd(r.TopTotal), rnd(r.OptTotal), r.Saving)
		}
	} else {
		fmt.Println("link ablation:", err)
	}
	fmt.Println()
}

// smallDocLike builds a small instance of the setup's dataset for
// the combinatorial ablations (attack counting is exponential-ish).
func smallDocLike(s *bench.Setup) *xmltree.Document {
	if s.Config.Dataset == "xmark" {
		return datagen.XMark(60, s.Config.Seed)
	}
	return datagen.NASA(60, s.Config.Seed)
}

func rnd(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
