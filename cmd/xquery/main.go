// Command xquery runs XPath queries through the full secure
// evaluation pipeline of the paper (Figure 1): it hosts the given
// document encrypted under the given security constraints, then
// evaluates each query — client translation, server-side pruning
// over the DSI and value indices, transmission, decryption and
// post-processing — and prints results with the per-stage timing
// breakdown.
//
//	xquery -in db.xml -key secret -sc "//patient:(/pname, //disease)" \
//	       -scheme opt "//patient[.//disease='flu']/pname"
//
// With -remote URL the encrypted database is uploaded to a running
// xserve instance and every query travels over HTTP:
//
//	xquery -in db.xml -key secret -sc "..." -remote http://localhost:8080 "..."
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/xmltree"
	"repro/secxml"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	in := flag.String("in", "", "input XML file (required)")
	schemeName := flag.String("scheme", "opt", "encryption scheme: opt, app, sub, top, leaf")
	key := flag.String("key", "", "master key (required)")
	naive := flag.Bool("naive", false, "also run the naive ship-everything baseline")
	remoteURL := flag.String("remote", "", "upload to a running xserve at this base URL and query over HTTP")
	dbName := flag.String("db", "xquery", "database name on the remote server")
	xmlOut := flag.Bool("xml", false, "print results as XML instead of string values")
	var scs multiFlag
	flag.Var(&scs, "sc", "security constraint (repeatable)")
	flag.Parse()

	if *in == "" || *key == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "xquery: -in, -key and at least one query are required")
		flag.Usage()
		os.Exit(2)
	}
	for _, q := range flag.Args() {
		if err := secxml.Validate(q); err != nil {
			fatal(err)
		}
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if *remoteURL != "" {
		runRemote(f, scs, *key, *schemeName, *remoteURL, *dbName, *xmlOut, flag.Args())
		return
	}
	doc, err := secxml.ParseDocument(f)
	if err != nil {
		fatal(err)
	}
	db, err := secxml.Host(doc, scs, secxml.Options{
		MasterKey: []byte(*key),
		Scheme:    *schemeName,
	})
	if err != nil {
		fatal(err)
	}

	for _, q := range flag.Args() {
		res, err := db.Query(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("query: %s\n", q)
		var lines []string
		if *xmlOut {
			lines = res.XML()
		} else {
			lines = res.Values()
		}
		for _, l := range lines {
			fmt.Printf("  %s\n", l)
		}
		tm := res.Timings
		fmt.Printf("  [%d results | translate %v | server %v | transmit %v | decrypt %v | post %v | %d blocks, %d bytes]\n",
			res.Count(), tm.ClientTranslate, tm.ServerExec, tm.Transmit,
			tm.ClientDecrypt, tm.ClientPost, tm.BlocksShipped, tm.AnswerBytes)
		if *naive {
			nres, err := db.NaiveQuery(q)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  [naive: total %v, %d bytes shipped]\n",
				nres.Timings.Total(), nres.Timings.AnswerBytes)
		}
	}
}

// runRemote encrypts locally, uploads to a running xserve, and
// evaluates every query over HTTP.
func runRemote(f *os.File, scs []string, key, schemeName, baseURL, name string, xmlOut bool, queries []string) {
	doc, err := xmltree.Parse(f)
	if err != nil {
		fatal(err)
	}
	sys, err := core.Host(doc, scs, core.SchemeName(schemeName), []byte(key))
	if err != nil {
		fatal(err)
	}
	cl := remote.Dial(baseURL, name)
	if err := cl.Upload(sys.HostedDB); err != nil {
		fatal(err)
	}
	sys.UseBackend(cl)
	fmt.Printf("uploaded %q to %s (%d blocks)\n", name, baseURL, sys.Scheme.NumBlocks())
	for _, q := range queries {
		nodes, _, tm, err := sys.Query(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("query: %s\n", q)
		for _, line := range resultLines(nodes, xmlOut) {
			fmt.Printf("  %s\n", line)
		}
		fmt.Printf("  [%d results | server+network %v | %d blocks, %d bytes]\n",
			len(nodes), tm.ServerExec, tm.BlocksShipped, tm.AnswerBytes)
	}
}

func resultLines(nodes []*xmltree.Node, xmlOut bool) []string {
	if xmlOut {
		return core.ResultStrings(nodes)
	}
	var out []string
	for _, n := range nodes {
		out = append(out, n.LeafValue())
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xquery:", err)
	os.Exit(1)
}
