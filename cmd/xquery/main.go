// Command xquery runs XPath queries through the full secure
// evaluation pipeline of the paper (Figure 1): it hosts the given
// document encrypted under the given security constraints, then
// evaluates each query — client translation, server-side pruning
// over the DSI and value indices, transmission, decryption and
// post-processing — and prints results with the per-stage timing
// breakdown.
//
//	xquery -in db.xml -key secret -sc "//patient:(/pname, //disease)" \
//	       -scheme opt "//patient[.//disease='flu']/pname"
//
// With -remote URL the encrypted database is uploaded to a running
// xserve instance and every query travels over HTTP:
//
//	xquery -in db.xml -key secret -sc "..." -remote http://localhost:8080 "..."
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/xmltree"
	"repro/secxml"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	in := flag.String("in", "", "input XML file (required)")
	schemeName := flag.String("scheme", "opt", "encryption scheme: opt, app, sub, top, leaf")
	key := flag.String("key", "", "master key (required)")
	naive := flag.Bool("naive", false, "also run the naive ship-everything baseline")
	remoteURL := flag.String("remote", "", "upload to a running xserve at this base URL and query over HTTP")
	dbName := flag.String("db", "xquery", "database name on the remote server")
	timeout := flag.Duration("timeout", 10*time.Second, "per-attempt timeout for remote operations (0 disables)")
	opTimeout := flag.Duration("op-timeout", time.Minute, "overall deadline per remote operation including retries (0 disables)")
	retries := flag.Int("retries", remote.DefaultRetryPolicy.MaxAttempts, "total attempts per remote operation (1 disables retries)")
	retryBase := flag.Duration("retry-base", remote.DefaultRetryPolicy.BaseDelay, "initial retry backoff (doubles per attempt, jittered)")
	stale := flag.Bool("stale", false, "serve cached stale answers when the remote server is unreachable")
	stream := flag.Bool("stream", false, "negotiate chunked answer streaming with the server (requires -remote; large answers only, see xserve -stream-cutoff)")
	integrity := flag.Bool("integrity", false, "verify every remote answer against a local Merkle commitment (requires -remote)")
	xmlOut := flag.Bool("xml", false, "print results as XML instead of string values")
	planner := flag.String("planner", "auto", "force the in-process planner strategy: auto, twig, or pairwise (answers are identical; with -remote, set it on the server instead)")
	var scs multiFlag
	flag.Var(&scs, "sc", "security constraint (repeatable)")
	flag.Parse()

	if *in == "" || *key == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "xquery: -in, -key and at least one query are required")
		flag.Usage()
		os.Exit(2)
	}
	for _, q := range flag.Args() {
		if err := secxml.Validate(q); err != nil {
			fatal(err)
		}
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if *remoteURL != "" {
		rc := remoteConfig{
			baseURL:   *remoteURL,
			name:      *dbName,
			timeout:   *timeout,
			opTimeout: *opTimeout,
			retries:   *retries,
			retryBase: *retryBase,
			stale:     *stale,
			stream:    *stream,
			integrity: *integrity,
			xmlOut:    *xmlOut,
		}
		runRemote(f, scs, *key, *schemeName, rc, flag.Args())
		return
	}
	if *integrity {
		fatal(fmt.Errorf("-integrity requires -remote: the in-process server is inside the trust boundary"))
	}
	doc, err := secxml.ParseDocument(f)
	if err != nil {
		fatal(err)
	}
	db, err := secxml.Host(doc, scs, secxml.Options{
		MasterKey: []byte(*key),
		Scheme:    *schemeName,
	})
	if err != nil {
		fatal(err)
	}
	if err := db.ForcePlannerStrategy(*planner); err != nil {
		fatal(err)
	}

	for _, q := range flag.Args() {
		res, err := db.Query(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("query: %s\n", q)
		var lines []string
		if *xmlOut {
			lines = res.XML()
		} else {
			lines = res.Values()
		}
		for _, l := range lines {
			fmt.Printf("  %s\n", l)
		}
		tm := res.Timings
		strat := tm.PlanStrategy
		if strat == "" {
			strat = "?"
		}
		fmt.Printf("  [%d results | plan %s | translate %v | server %v | transmit %v | decrypt %v | post %v | %d blocks, %d bytes]\n",
			res.Count(), strat, tm.ClientTranslate, tm.ServerExec, tm.Transmit,
			tm.ClientDecrypt, tm.ClientPost, tm.BlocksShipped, tm.AnswerBytes)
		if *naive {
			nres, err := db.NaiveQuery(q)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  [naive: total %v, %d bytes shipped]\n",
				nres.Timings.Total(), nres.Timings.AnswerBytes)
		}
	}
}

// remoteConfig carries the transport knobs of the -remote path.
type remoteConfig struct {
	baseURL, name      string
	timeout, opTimeout time.Duration
	retries            int
	retryBase          time.Duration
	stale              bool
	stream             bool
	integrity          bool
	xmlOut             bool
}

// opCtx bounds one remote operation (including its retries).
func (rc remoteConfig) opCtx() (context.Context, context.CancelFunc) {
	if rc.opTimeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), rc.opTimeout)
}

// runRemote encrypts locally, uploads to a running xserve, and
// evaluates every query over HTTP with the configured timeouts and
// retry policy.
func runRemote(f *os.File, scs []string, key, schemeName string, rc remoteConfig, queries []string) {
	doc, err := xmltree.Parse(f)
	if err != nil {
		fatal(err)
	}
	sys, err := core.Host(doc, scs, core.SchemeName(schemeName), []byte(key))
	if err != nil {
		fatal(err)
	}
	if rc.integrity {
		// Commit to the hosted state before it leaves the trust
		// boundary: the Merkle root is computed over exactly the bytes
		// about to be uploaded.
		if err := sys.EnableIntegrity(); err != nil {
			fatal(err)
		}
	}
	policy := remote.DefaultRetryPolicy
	policy.MaxAttempts = rc.retries
	policy.BaseDelay = rc.retryBase
	cl := remote.Dial(rc.baseURL, rc.name).WithRetry(policy).WithTimeout(rc.timeout)
	if rc.stream {
		cl = cl.WithStreaming(true)
	}
	if rc.integrity {
		cl = cl.WithVerifier(sys.Verifier())
	}
	ctx, cancel := rc.opCtx()
	err = cl.Upload(ctx, sys.HostedDB)
	cancel()
	if err != nil {
		fatal(err)
	}
	sys.UseBackend(cl)
	if rc.stale {
		sys.EnableStaleFallback(0, 0) // package defaults
	}
	fmt.Printf("uploaded %q to %s (%d blocks)\n", rc.name, rc.baseURL, sys.Scheme.NumBlocks())
	if rc.integrity {
		root := sys.Verifier().Root()
		fmt.Printf("integrity on: root %x (answers verified before decryption)\n", root[:8])
	}
	for _, q := range queries {
		ctx, cancel := rc.opCtx()
		nodes, _, tm, err := sys.QueryContext(ctx, q)
		cancel()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("query: %s\n", q)
		for _, line := range resultLines(nodes, rc.xmlOut) {
			fmt.Printf("  %s\n", line)
		}
		staleNote := ""
		if tm.Stale {
			staleNote = " | STALE (served from cache; server unreachable)"
			if tm.Unverified {
				staleNote = " | STALE+UNVERIFIED (served from cache; live answer failed verification)"
			}
		}
		streamNote := ""
		if tm.Streamed {
			streamNote = fmt.Sprintf(" | streamed %d chunks", tm.StreamChunks)
		}
		strat := tm.PlanStrategy
		if strat == "" {
			strat = "?"
		}
		fmt.Printf("  [%d results | plan %s | server+network %v | %d blocks, %d bytes%s%s]\n",
			len(nodes), strat, tm.ServerExec, tm.BlocksShipped, tm.AnswerBytes, streamNote, staleNote)
	}
}

func resultLines(nodes []*xmltree.Node, xmlOut bool) []string {
	if xmlOut {
		return core.ResultStrings(nodes)
	}
	var out []string
	for _, n := range nodes {
		out = append(out, n.LeafValue())
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xquery:", err)
	os.Exit(1)
}
