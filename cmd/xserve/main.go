// Command xserve runs the untrusted server of the paper's DAS
// architecture as a standalone HTTP service. Owners upload encrypted
// databases (with xupload below or the remote client API), then point
// their clients at the service.
//
//	xserve -listen :8080
//
// Optionally pre-host a database at startup: xserve encrypts the
// given document locally — this is for demos; in production the
// owner encrypts on their own machine and uploads the ciphertext.
//
//	xserve -listen :8080 -demo db.xml -key secret \
//	       -sc "//patient:(/pname, //disease)" -name hospital
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/xmltree"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	listen := flag.String("listen", ":8080", "address to listen on")
	dataDir := flag.String("dir", "", "persist hosted databases in this directory (reloaded on restart)")
	readTimeout := flag.Duration("read-timeout", 2*time.Minute, "max duration for reading an entire request")
	writeTimeout := flag.Duration("write-timeout", 2*time.Minute, "max duration for writing a response")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "max keep-alive idle time")
	grace := flag.Duration("shutdown-grace", 15*time.Second, "how long to drain in-flight requests on SIGINT/SIGTERM")
	pprofOn := flag.Bool("pprof", true, "serve net/http/pprof profiles at /debug/pprof/ (CPU profiles longer than -write-timeout are cut off)")
	streamCutoff := flag.Int("stream-cutoff", 0, "min answer bytes before chunked streaming to negotiating clients (0 = 64 KiB default, negative disables)")
	maxCost := flag.Int64("max-cost", 0, "admission gate capacity in cost units (predicted blocks touched; 0 disables the gate)")
	costAware := flag.Bool("cost-aware", false, "price each query by its predicted blocks touched instead of one unit")
	maxQueue := flag.Int("max-queue", 0, "max queued requests before instant shed (0 = 64 default)")
	queueWait := flag.Duration("queue-wait", 0, "max time a request queues for capacity before a 503 (0 = 2s default)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant quota: cost units per second each X-Client-ID may spend (0 disables)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant bucket ceiling (0 = 4x tenant-rate)")
	brownout := flag.Bool("brownout", false, "enable the brownout controller (graceful degradation under sustained overload)")
	brownoutP99 := flag.Duration("brownout-p99", 0, "p99 latency target the brownout controller defends (0 = 250ms default)")
	streamWriteTimeout := flag.Duration("stream-write-timeout", 0, "per-flush write deadline on streamed answers; slow readers are cut off (0 = 30s default, negative disables)")
	walGroupWait := flag.Duration("wal-group-wait", 0, "group-commit window: how long a WAL fsync waits to absorb concurrent updates (0 = sync immediately)")
	updateBatchSize := flag.Int("update-batch-size", 0, "coalesce concurrent single-update frames into batches of up to this many members (0/1 disables)")
	updateMaxWait := flag.Duration("update-max-wait", 0, "how long a filling update batch waits for company before flushing anyway (0 = 2ms default)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "updates between full checkpoints truncating the WAL (0 = default 64)")
	chaosRate := flag.Float64("chaos", 0, "inject faults (latency/5xx/truncation) at this rate per request — testing only")
	chaosSeed := flag.Int64("chaos-seed", 1, "deterministic seed for -chaos")
	planner := flag.String("planner", "auto", "force the query planner strategy: auto, twig, or pairwise (answers are identical; debugging/benchmarking)")
	demo := flag.String("demo", "", "optional XML file to encrypt and pre-host")
	name := flag.String("name", "demo", "database name for the pre-hosted document")
	key := flag.String("key", "", "master key for the pre-hosted document")
	schemeName := flag.String("scheme", "opt", "scheme for the pre-hosted document")
	var scs multiFlag
	flag.Var(&scs, "sc", "security constraint for the pre-hosted document (repeatable)")
	flag.Parse()

	var svc *remote.Service
	if *dataDir != "" {
		var err error
		svc, err = remote.NewPersistentServiceOpts(*dataDir, remote.PersistOptions{
			WALGroupWait:    *walGroupWait,
			CheckpointEvery: *checkpointEvery,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Corrupt databases are set aside, not fatal — but the operator
		// must know: a quarantined database answers 404 until it is
		// re-uploaded or restored.
		for _, q := range svc.Quarantined() {
			log.Printf("xserve: quarantined %s -> %s (%s)", q.File, q.Moved, q.Reason)
		}
		// What recovery did, per database: replayed WAL records mean
		// the previous incarnation died between checkpoints (a crash,
		// not a clean stop); a torn tail is the normal signature of
		// dying mid-append.
		for name, rec := range svc.Recoveries() {
			log.Printf("xserve: recovered %q: gen %d -> %d (%d wal records replayed, tornTail=%v, rootChecked=%v)",
				name, rec.SnapshotGen, rec.RecoveredGen, rec.Replayed, rec.TornTail, rec.RootChecked)
		}
		defer svc.Close()
	} else {
		svc = remote.NewService()
	}
	svc = svc.WithStreamCutoff(*streamCutoff).WithWriteTimeout(*streamWriteTimeout)
	if *maxCost > 0 || *tenantRate > 0 || *brownout {
		svc = svc.WithAdmission(admission.Config{
			MaxCost:        *maxCost,
			MaxQueue:       *maxQueue,
			QueueWait:      *queueWait,
			CostAware:      *costAware,
			TenantRate:     *tenantRate,
			TenantBurst:    *tenantBurst,
			Brownout:       *brownout,
			BrownoutConfig: admission.BrownoutConfig{TargetP99: *brownoutP99},
		})
		fmt.Printf("admission: capacity %d cost units (cost-aware=%v), tenant rate %.1f/s, brownout=%v\n",
			*maxCost, *costAware, *tenantRate, *brownout)
	}
	if *updateBatchSize > 1 {
		svc = svc.WithUpdateBatching(*updateBatchSize, *updateMaxWait)
		fmt.Printf("update batching: up to %d members per group commit (max wait %v)\n",
			*updateBatchSize, *updateMaxWait)
	}
	if _, err := svc.WithPlannerStrategy(*planner); err != nil {
		log.Fatal(err)
	}
	if *planner != "auto" {
		fmt.Printf("planner: strategy forced to %s\n", *planner)
	}

	if *demo != "" {
		if *key == "" {
			log.Fatal("xserve: -demo requires -key")
		}
		f, err := os.Open(*demo)
		if err != nil {
			log.Fatal(err)
		}
		doc, err := xmltree.Parse(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		sys, err := core.Host(doc, scs, core.SchemeName(*schemeName), []byte(*key))
		if err != nil {
			log.Fatal(err)
		}
		// Register through the wire format, so exactly the bytes a
		// remote owner would upload are served.
		if err := remote.RegisterLocal(svc, *name, sys.HostedDB); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pre-hosted %q: %d blocks, %d index entries\n",
			*name, sys.Scheme.NumBlocks(), len(sys.HostedDB.IndexEntries))
	}

	// Cache observability: hit/miss/eviction/invalidation counters of
	// every hosted database's cross-query caches, served as expvar
	// JSON at /debug/vars (mounted outside the chaos wrapper so fault
	// injection never garbles monitoring).
	expvar.Publish("secxml_caches", expvar.Func(func() any { return svc.CacheStats() }))
	// Overload observability: brownout level, queue depth, shed and
	// per-priority admit counters — one snapshot for the whole service.
	expvar.Publish("secxml_overload", expvar.Func(func() any { return svc.Admission().Snapshot() }))

	var handler http.Handler = svc
	if *chaosRate > 0 {
		handler = remote.NewChaosHandler(svc, remote.FaultConfig{
			Seed:         *chaosSeed,
			LatencyRate:  *chaosRate,
			Latency:      200 * time.Millisecond,
			ErrorRate:    *chaosRate,
			TruncateRate: *chaosRate,
		})
		fmt.Printf("CHAOS MODE: injecting faults at rate %.2f (seed %d)\n", *chaosRate, *chaosSeed)
	}

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	if *pprofOn {
		// Mounted explicitly (a custom mux skips net/http/pprof's
		// DefaultServeMux registration), and — like /debug/vars —
		// outside the chaos wrapper so profiling survives fault
		// injection.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.Handle("/", handler)

	srv := &http.Server{
		Addr:              *listen,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests for
	// up to -shutdown-grace before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("xserve listening on %s\n", *listen)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("xserve: shutting down, draining in-flight requests...")
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatalf("xserve: shutdown: %v", err)
	}
	fmt.Println("xserve: stopped")
}
