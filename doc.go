// Package repro is a from-scratch Go reproduction of
//
//	Hui (Wendy) Wang, Laks V.S. Lakshmanan.
//	"Efficient Secure Query Evaluation over Encrypted XML Databases."
//	VLDB 2006.
//
// The public API lives in package repro/secxml; the paper's
// subsystems live under internal/ (see DESIGN.md for the full
// inventory and EXPERIMENTS.md for paper-vs-measured results).
// The benchmarks in bench_test.go regenerate every table and figure
// of the paper's evaluation section; `go run ./cmd/xencbench` prints
// them as text tables.
package repro
