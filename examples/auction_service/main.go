// Auction service: an XMark-style DAS deployment. An auction site
// outsources its user database to a storage provider but must keep
// user identities unlinkable from credit cards, incomes and ages
// (the paper's Figure 8(a) constraint graph). The example generates
// a synthetic auction database, hosts it encrypted, and runs the
// kind of account-service queries the site's backend would issue.
//
// Run with: go run ./examples/auction_service
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/datagen"
	"repro/secxml"
)

func main() {
	// Generate a deterministic ~300 person auction site.
	raw := datagen.XMark(300, 2006)
	doc, err := secxml.ParseDocument(strings.NewReader(raw.String()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auction database: %d KB, %d nodes, depth %d\n",
		doc.ByteSize()/1024, doc.NumNodes(), doc.Depth())

	db, err := secxml.Host(doc, datagen.XMarkSCs(), secxml.Options{
		MasterKey: []byte("auction-service-master"),
		Scheme:    secxml.SchemeOptimal,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("hosted: %d blocks (%s scheme), cover = %v, %d index entries, encrypt %v\n\n",
		st.NumBlocks, st.Scheme, st.CoverTags, st.IndexEntries, st.EncryptTime.Round(1000))

	queries := []string{
		// Account lookups touching protected fields.
		"//person[profile/age>=65]/emailaddress",
		"//person[address/city='Vancouver']",
		"//person[profile/income>100000]/address/country",
		// Marketplace queries over plaintext regions.
		"//item[location='Canada']/name",
		"//open_auction[current>200]/itemref",
		"//closed_auction[price>300]/buyer",
	}
	for _, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		preview := res.Values()
		if len(preview) > 4 {
			preview = preview[:4]
		}
		fmt.Printf("%-50s -> %3d results %v\n", q, res.Count(), preview)
		fmt.Printf("   server %8v | %3d blocks %6d bytes | decrypt %8v | post %8v\n",
			res.Timings.ServerExec.Round(1000), res.Timings.BlocksShipped,
			res.Timings.AnswerBytes, res.Timings.ClientDecrypt.Round(1000),
			res.Timings.ClientPost.Round(1000))
	}

	// Compare one query against the naive ship-everything baseline.
	q := "//person[profile/age>=65]/emailaddress"
	smart, _ := db.Query(q)
	naive, _ := db.NaiveQuery(q)
	fmt.Printf("\nselective vs naive for %s:\n", q)
	fmt.Printf("  selective: %7d bytes shipped, total %v\n", smart.Timings.AnswerBytes, smart.Timings.Total().Round(1000))
	fmt.Printf("  naive:     %7d bytes shipped, total %v\n", naive.Timings.AnswerBytes, naive.Timings.Total().Round(1000))
}
