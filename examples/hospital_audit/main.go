// Hospital audit: what does the untrusted server actually see?
//
// This example hosts the same health-care database under four
// encryption granularities (§7.1: top, sub, app, opt) and prints,
// for each, the attacker-observable server view — the plaintext
// residue, the DSI table labels, and the value-index frequency
// distribution — alongside the cost of a typical query. It makes
// the paper's security/efficiency trade-off tangible: top hides
// everything but ships everything; opt hides exactly what the
// constraints demand and ships almost nothing.
//
// Run with: go run ./examples/hospital_audit
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/secxml"
)

const hospitalXML = `
<hospital>
  <patient>
    <pname>Betty</pname>
    <SSN>763895</SSN>
    <insurance coverage="1000000"><policy>34221</policy></insurance>
    <treat><disease>diarrhea</disease><doctor>Smith</doctor></treat>
    <age>35</age>
  </patient>
  <patient>
    <pname>Matt</pname>
    <SSN>276543</SSN>
    <insurance coverage="10000"><policy>26544</policy></insurance>
    <treat><disease>leukemia</disease><doctor>Walker</doctor></treat>
    <treat><disease>diarrhea</disease><doctor>Brown</doctor></treat>
    <age>40</age>
  </patient>
  <patient>
    <pname>Ann</pname>
    <SSN>555321</SSN>
    <insurance coverage="50000"><policy>77110</policy></insurance>
    <treat><disease>flu</disease><doctor>Smith</doctor></treat>
    <age>29</age>
  </patient>
</hospital>`

var constraints = []string{
	"//insurance",
	"//patient:(/pname, /SSN)",
	"//patient:(/pname, //disease)",
	"//treat:(/disease, /doctor)",
}

const auditQuery = "//patient[.//disease='diarrhea']/SSN"

func main() {
	doc, err := secxml.ParseDocument(strings.NewReader(hospitalXML))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plaintext database: %d bytes, %d nodes\n\n", doc.ByteSize(), doc.NumNodes())

	for _, scheme := range []string{
		secxml.SchemeTop, secxml.SchemeSub, secxml.SchemeApprox, secxml.SchemeOptimal,
	} {
		db, err := secxml.Host(doc, constraints, secxml.Options{
			MasterKey: []byte("audit-key"),
			Scheme:    scheme,
		})
		if err != nil {
			log.Fatal(err)
		}
		st := db.Stats()
		view := db.ServerView()

		fmt.Printf("=== scheme %-4s ===\n", scheme)
		fmt.Printf("blocks: %d  scheme size: %d nodes  upload: %d bytes\n",
			st.NumBlocks, st.SchemeSize, st.HostedBytes)
		fmt.Printf("residue the server reads in plaintext:\n  %s\n", truncate(view.ResidueXML, 120))
		fmt.Printf("DSI labels visible to server: %s\n", truncate(strings.Join(view.DSILabels, " "), 100))
		fmt.Printf("value-index frequencies (flattened by OPESS): %v\n", view.IndexFrequencies)

		res, err := db.Query(auditQuery)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %s\n  -> %v (%d blocks, %d bytes shipped)\n\n",
			auditQuery, res.Values(), res.Timings.BlocksShipped, res.Timings.AnswerBytes)
	}

	fmt.Println("note how every scheme answers identically, while the residue")
	fmt.Println("and shipped volume shrink from top to opt.")
}

func truncate(s string, n int) string {
	s = strings.ReplaceAll(s, "\n", " ")
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
