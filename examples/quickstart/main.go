// Quickstart: the paper's running example (Figure 2). A hospital
// hosts its patient records on an untrusted server. The owner
// protects (1) insurance subtrees, (2) the name-SSN association,
// (3) the name-disease association and (4) the disease-doctor
// association, then queries the hosted data as if it were local.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/secxml"
)

const hospitalXML = `
<hospital>
  <patient>
    <pname>Betty</pname>
    <SSN>763895</SSN>
    <insurance coverage="1000000"><policy>34221</policy></insurance>
    <treat><disease>diarrhea</disease><doctor>Smith</doctor></treat>
    <age>35</age>
  </patient>
  <patient>
    <pname>Matt</pname>
    <SSN>276543</SSN>
    <insurance coverage="10000"><policy>26544</policy></insurance>
    <treat><disease>leukemia</disease><doctor>Walker</doctor></treat>
    <treat><disease>diarrhea</disease><doctor>Brown</doctor></treat>
    <age>40</age>
  </patient>
</hospital>`

func main() {
	doc, err := secxml.ParseDocument(strings.NewReader(hospitalXML))
	if err != nil {
		log.Fatal(err)
	}

	// Example 3.1's security constraints, verbatim.
	constraints := []string{
		"//insurance",                   // SC1: protect insurance elements
		"//patient:(/pname, /SSN)",      // SC2: name <-> SSN
		"//patient:(/pname, //disease)", // SC3: name <-> disease
		"//treat:(/disease, /doctor)",   // SC4: doctor <-> disease
	}

	db, err := secxml.Host(doc, constraints, secxml.Options{
		MasterKey: []byte("the-owner-keeps-this-secret"),
		Scheme:    secxml.SchemeOptimal,
	})
	if err != nil {
		log.Fatal(err)
	}

	st := db.Stats()
	fmt.Printf("hosted with scheme %q: %d encryption blocks, scheme size %d nodes\n",
		st.Scheme, st.NumBlocks, st.SchemeSize)
	fmt.Printf("encrypted association endpoints: %v\n\n", st.CoverTags)

	// The paper's §6 running query: patients with coverage >= 10000,
	// returning their SSNs.
	queries := []string{
		"//patient[.//insurance//@coverage>=10000]//SSN",
		"//patient[.//disease='diarrhea']/pname",
		"//treat[disease='diarrhea']/doctor",
		"//patient[age>36]/pname",
	}
	for _, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-48s -> %v\n", q, res.Values())
		fmt.Printf("  server %v | shipped %d blocks, %d bytes | decrypt %v | post %v\n",
			res.Timings.ServerExec.Round(1000), res.Timings.BlocksShipped,
			res.Timings.AnswerBytes, res.Timings.ClientDecrypt.Round(1000),
			res.Timings.ClientPost.Round(1000))
	}
}
