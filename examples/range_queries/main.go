// Range queries over encrypted values: the OPESS demonstration.
//
// The value index stores order-preserving ciphertexts after
// splitting and scaling (§5.2.1), which lets the server answer
// range predicates over ENCRYPTED values without decrypting — while
// a frequency-counting attacker staring at the index learns nothing
// (Figure 6: the skewed input distribution becomes near-uniform).
//
// This example hosts a NASA-style catalog in which publication
// dates and author names are protected, then runs range and
// equality predicates over the encrypted fields and shows the
// index-frequency view the attacker is left with.
//
// Run with: go run ./examples/range_queries
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/datagen"
	"repro/secxml"
)

func main() {
	raw := datagen.NASA(400, 1965)
	doc, err := secxml.ParseDocument(strings.NewReader(raw.String()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d KB, %d datasets\n", doc.ByteSize()/1024, mustCount(doc, "//dataset"))

	// Protect author identity associations (Figure 8(b)).
	db, err := secxml.Host(doc, datagen.NASASCs(), secxml.Options{
		MasterKey: []byte("nasa-archive-master"),
		Scheme:    secxml.SchemeOptimal,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encrypted endpoints: %v\n\n", db.Stats().CoverTags)

	// Range predicates over ENCRYPTED author fields and plaintext
	// dates: equality, bounded ranges, negation.
	queries := []string{
		"//dataset[date>=1990]/title",
		"//dataset[date>=1980][date<=1985]/publisher",
		"//author[last='Smith']/initial",
		"//dataset[.//last='Wang']/title",
		"//author[initial>='A'][initial<='C']/last",
		"//dataset[not(publisher='NASA')]/altname",
	}
	for _, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-46s -> %4d results, %3d blocks shipped\n",
			q, res.Count(), res.Timings.BlocksShipped)
	}

	// What the frequency attacker sees: the index key distribution.
	view := db.ServerView()
	fmt.Printf("\nvalue-index distribution the attacker observes (%d distinct keys):\n",
		len(view.IndexFrequencies))
	hist := map[int]int{}
	for _, f := range view.IndexFrequencies {
		hist[f]++
	}
	for f, n := range hist {
		if n > 3 {
			fmt.Printf("  frequency %3d: %4d keys\n", f, n)
		}
	}
	fmt.Println("\nsplitting flattened the skew; scaling hid the totals.")
	fmt.Println("compare: the PLAINTEXT distribution of author last names is Zipf.")
}

func mustCount(doc *secxml.Document, q string) int {
	vs, err := doc.Evaluate(q)
	if err != nil {
		log.Fatal(err)
	}
	return len(vs)
}
