// Remote DAS: the paper's architecture deployed over a real network.
//
// This example starts the untrusted server as an HTTP service on a
// loopback port (exactly what `cmd/xserve` runs in production),
// encrypts a hospital database on the owner's side, uploads only the
// ciphertext + metadata, and then queries, aggregates and updates
// through the wire — demonstrating that the full Figure 1 flow works
// with the two roles in genuinely separate trust domains.
//
// Run with: go run ./examples/remote_das
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/xmltree"
)

const hospitalXML = `
<hospital>
  <patient><pname>Betty</pname><SSN>763895</SSN><insurance coverage="1000000"><policy>34221</policy></insurance><treat><disease>diarrhea</disease><doctor>Smith</doctor></treat><age>35</age></patient>
  <patient><pname>Matt</pname><SSN>276543</SSN><insurance coverage="10000"><policy>26544</policy></insurance><treat><disease>leukemia</disease><doctor>Walker</doctor></treat><age>40</age></patient>
  <patient><pname>Ann</pname><SSN>555321</SSN><insurance coverage="50000"><policy>77110</policy></insurance><treat><disease>flu</disease><doctor>Smith</doctor></treat><age>29</age></patient>
</hospital>`

func main() {
	// --- the service provider's machine ---
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	svc := &http.Server{Handler: remote.NewService(), ReadHeaderTimeout: 5 * time.Second}
	go svc.Serve(ln)
	defer svc.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("untrusted server listening at %s\n", base)

	// --- the owner's machine ---
	doc, err := xmltree.ParseString(hospitalXML)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.Host(doc, []string{
		"//insurance",
		"//patient:(/pname, /SSN)",
		"//patient:(/pname, //disease)",
		"//treat:(/disease, /doctor)",
	}, core.SchemeOpt, []byte("owner-only-secret"))
	if err != nil {
		log.Fatal(err)
	}

	// Upload ciphertext + metadata; swap the in-process backend for
	// the HTTP one. From here on every query crosses the network,
	// under a deadline, with retries and a circuit breaker (the
	// Dial defaults; see internal/remote).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl := remote.Dial(base, "hospital").WithTimeout(5 * time.Second)
	if err := cl.Upload(ctx, sys.HostedDB); err != nil {
		log.Fatal(err)
	}
	sys.UseBackend(cl)
	fmt.Printf("uploaded %d blocks + metadata (%d KB total)\n\n",
		sys.Scheme.NumBlocks(), sys.HostedDB.ByteSize()/1024)

	// Queries over the wire.
	for _, q := range []string{
		"//patient[.//disease='diarrhea']/pname",
		"//patient[.//insurance//@coverage>=50000]//SSN",
		"//treat[disease='flu']/doctor",
	} {
		nodes, _, tm, err := sys.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-48s -> %v\n", q, values(nodes))
		fmt.Printf("   round trip %v (%d blocks, %d bytes over HTTP)\n",
			tm.ServerExec.Round(time.Microsecond), tm.BlocksShipped, tm.AnswerBytes)
	}

	// Aggregate over the wire: one index probe, one block shipped.
	mn, tm, err := sys.AggregateMinMax("//insurance/policy", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMIN(//insurance/policy) = %s (%d block shipped)\n", mn, tm.BlocksShipped)

	// Update over the wire: re-encrypted block + re-issued index band.
	n, err := sys.UpdateLeafValues("//patient[pname='Ann']//disease", "measles")
	if err != nil {
		log.Fatal(err)
	}
	nodes, _, _, err := sys.Query("//patient[.//disease='measles']/pname")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("updated %d value(s); measles patients now: %v\n", n, values(nodes))
}

func values(nodes []*xmltree.Node) []string {
	var out []string
	for _, n := range nodes {
		out = append(out, strings.TrimSpace(n.LeafValue()))
	}
	return out
}
