package admission

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestPriorityRoundTrip(t *testing.T) {
	for _, p := range []Priority{Background, Aggregate, Interactive} {
		if got := ParsePriority(p.String(), Background); got != p {
			t.Errorf("ParsePriority(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if got := ParsePriority("", Aggregate); got != Aggregate {
		t.Errorf("empty header fell to %v, want the default", got)
	}
	if got := ParsePriority("garbage", Interactive); got != Interactive {
		t.Errorf("unknown header fell to %v, want the default", got)
	}
}

func TestContextPriority(t *testing.T) {
	ctx := context.Background()
	if _, ok := PriorityFromContext(ctx); ok {
		t.Fatal("fresh context claims a priority")
	}
	ctx = ContextWithDefaultPriority(ctx, Aggregate)
	if p, ok := PriorityFromContext(ctx); !ok || p != Aggregate {
		t.Fatalf("default not applied: %v %v", p, ok)
	}
	// An explicit choice survives a later default.
	ctx = WithPriority(context.Background(), Interactive)
	ctx = ContextWithDefaultPriority(ctx, Background)
	if p, _ := PriorityFromContext(ctx); p != Interactive {
		t.Fatalf("default overrode the explicit priority: %v", p)
	}
}

// TestGateCostCapacity: the gate admits up to its cost capacity and
// queues the rest; releasing frees the queued request.
func TestGateCostCapacity(t *testing.T) {
	g := newGate(4, 16, 5*time.Second)
	rel1, err := g.Acquire(context.Background(), Interactive, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Cost 2 does not fit (3+2 > 4): it must queue.
	got := make(chan struct{})
	go func() {
		rel2, err := g.Acquire(context.Background(), Interactive, 2)
		if err != nil {
			t.Error(err)
			close(got)
			return
		}
		rel2()
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("over-capacity request admitted immediately")
	case <-time.After(50 * time.Millisecond):
	}
	if d := g.QueueDepth(); d != 1 {
		t.Fatalf("QueueDepth = %d, want 1", d)
	}
	rel1()
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("queued request never admitted after release")
	}
}

// TestGateClampsOversizedCost: a request costing more than the whole
// capacity still runs (clamped), alone.
func TestGateClampsOversizedCost(t *testing.T) {
	g := newGate(4, 16, time.Second)
	rel, err := g.Acquire(context.Background(), Interactive, 1000)
	if err != nil {
		t.Fatalf("oversized request unadmittable: %v", err)
	}
	if f := g.InFlightCost(); f != 4 {
		t.Fatalf("InFlightCost = %d, want clamp to capacity 4", f)
	}
	rel()
}

// TestGatePriorityOrder: with capacity for one, a queued interactive
// request is admitted before an earlier-queued background one.
func TestGatePriorityOrder(t *testing.T) {
	g := newGate(1, 16, 5*time.Second)
	rel, err := g.Acquire(context.Background(), Background, 1)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan Priority, 2)
	var wg sync.WaitGroup
	start := func(p Priority) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := g.Acquire(context.Background(), p, 1)
			if err != nil {
				t.Error(err)
				return
			}
			order <- p
			time.Sleep(10 * time.Millisecond)
			r()
		}()
	}
	start(Background)
	time.Sleep(30 * time.Millisecond) // background is queued first
	start(Interactive)
	time.Sleep(30 * time.Millisecond)
	rel()
	wg.Wait()
	first := <-order
	if first != Interactive {
		t.Fatalf("first admitted class = %v, want Interactive despite FIFO age", first)
	}
}

// TestGateShedsWhenQueueFull: a bounded queue sheds instantly with a
// Retry-After of at least the 1s floor.
func TestGateShedsWhenQueueFull(t *testing.T) {
	g := newGate(1, 1, 5*time.Second)
	rel, _ := g.Acquire(context.Background(), Interactive, 1)
	defer rel()
	go g.Acquire(context.Background(), Interactive, 1) // fills the queue
	time.Sleep(20 * time.Millisecond)
	_, err := g.Acquire(context.Background(), Interactive, 1)
	shed, ok := err.(*ShedError)
	if !ok || !shed.Full {
		t.Fatalf("err = %v, want full-queue ShedError", err)
	}
	if shed.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s floor", shed.RetryAfter)
	}
	if g.Rejected() != 1 {
		t.Fatalf("Rejected = %d, want 1", g.Rejected())
	}
}

// TestGateQueueWaitTimeout: a queued request is shed once the queue
// wait passes.
func TestGateQueueWaitTimeout(t *testing.T) {
	g := newGate(1, 16, 30*time.Millisecond)
	rel, _ := g.Acquire(context.Background(), Interactive, 1)
	defer rel()
	_, err := g.Acquire(context.Background(), Interactive, 1)
	shed, ok := err.(*ShedError)
	if !ok || shed.Full {
		t.Fatalf("err = %v, want timeout ShedError", err)
	}
	if d := g.QueueDepth(); d != 0 {
		t.Fatalf("QueueDepth after timeout = %d, want 0", d)
	}
}

// TestGateContextCancelWhileQueued: a caller giving up while queued
// gets its context error and leaves no queue residue.
func TestGateContextCancelWhileQueued(t *testing.T) {
	g := newGate(1, 16, 5*time.Second)
	rel, _ := g.Acquire(context.Background(), Interactive, 1)
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx, Interactive, 1)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := g.QueueDepth(); d != 0 {
		t.Fatalf("QueueDepth after cancel = %d, want 0", d)
	}
}

// TestRetryAfterTracksBacklog: once the gate has observed a drain
// rate, the shed hint scales with the backlog instead of sitting at
// the floor.
func TestRetryAfterTracksBacklog(t *testing.T) {
	g := newGate(10, 64, time.Second)
	g.mu.Lock()
	g.drainRate = 2 // 2 cost units/s, injected: rate estimation itself is timing-dependent
	g.inFlight = 10
	g.queuedCost = 10
	ra := g.retryAfterLocked()
	g.mu.Unlock()
	// 20 units of backlog at 2/s = 10s.
	if ra < 9*time.Second || ra > 11*time.Second {
		t.Fatalf("RetryAfter = %v, want ~10s from backlog/drain-rate", ra)
	}
	// And the ceiling holds.
	g.mu.Lock()
	g.queuedCost = 1000
	ra = g.retryAfterLocked()
	g.mu.Unlock()
	if ra > retryAfterCeil {
		t.Fatalf("RetryAfter = %v, want <= %v ceiling", ra, retryAfterCeil)
	}
}

// TestTenantLimiter: a tenant burns its burst, is refused with a
// computed wait, and refills over time; other tenants are unaffected.
func TestTenantLimiter(t *testing.T) {
	l := newTenantLimiter(10, 20)
	if ok, _ := l.Allow("a", 20); !ok {
		t.Fatal("burst refused")
	}
	ok, wait := l.Allow("a", 10)
	if ok {
		t.Fatal("over-budget request allowed")
	}
	if wait < time.Second {
		t.Fatalf("wait = %v, want >= 1s floor", wait)
	}
	if ok, _ := l.Allow("b", 20); !ok {
		t.Fatal("tenant b throttled by tenant a's spending")
	}
	if l.Rejected() != 1 {
		t.Fatalf("Rejected = %d, want 1", l.Rejected())
	}
	// Anonymous traffic shares one bucket.
	if ok, _ := l.Allow("", 20); !ok {
		t.Fatal("first anonymous burst refused")
	}
	if ok, _ := l.Allow("", 1); ok {
		t.Fatal("anonymous bucket did not share state")
	}
}

// TestTenantEviction: the bucket map stays bounded.
func TestTenantEviction(t *testing.T) {
	l := newTenantLimiter(1, 1)
	for i := 0; i < maxTenantBuckets+10; i++ {
		l.Allow(string(rune('a'+i%26))+string(rune('0'+i/26%10))+string(rune(i)), 1)
	}
	if n := l.Tenants(); n > maxTenantBuckets {
		t.Fatalf("Tenants = %d, want <= %d", n, maxTenantBuckets)
	}
}

// TestBrownoutStepsUpAndBack: pressure walks the level up one step
// per window; deep calm returns straight to L0 in ONE window.
func TestBrownoutStepsUpAndBack(t *testing.T) {
	b := newBrownout(BrownoutConfig{
		TargetP99:      10 * time.Millisecond,
		HighQueueDepth: 8,
		Window:         time.Hour, // ticks are explicit below
		MinSamples:     4,
	})
	slowWindow := func() {
		for i := 0; i < 10; i++ {
			b.Observe(50 * time.Millisecond)
		}
		b.Tick(0)
	}
	slowWindow()
	if b.Level() != LevelLean {
		t.Fatalf("level after one hot window = %d, want L1", b.Level())
	}
	slowWindow()
	slowWindow()
	slowWindow()
	if b.Level() != LevelCritical {
		t.Fatalf("level after four hot windows = %d, want L3", b.Level())
	}
	slowWindow() // already at max: no further step
	if b.Level() != LevelCritical {
		t.Fatalf("level stepped past L3: %d", b.Level())
	}
	// One deeply calm window (fast requests, empty queue) returns to
	// full service — the acceptance criterion's one-window recovery.
	for i := 0; i < 10; i++ {
		b.Observe(time.Millisecond)
	}
	b.Tick(0)
	if b.Level() != LevelFull {
		t.Fatalf("level after deep-calm window = %d, want L0 in one window", b.Level())
	}
	if b.Transitions() != 4 {
		t.Fatalf("Transitions = %d, want 4 (3 up + 1 down)", b.Transitions())
	}
}

// TestBrownoutQueuePressure: a deep queue alone (no latency samples)
// steps the level up, and mild calm steps down one level at a time.
func TestBrownoutQueuePressure(t *testing.T) {
	b := newBrownout(BrownoutConfig{
		TargetP99:      10 * time.Millisecond,
		HighQueueDepth: 8,
		Window:         time.Hour,
		MinSamples:     4,
	})
	b.Tick(20) // queue over threshold
	b.Tick(20)
	if b.Level() != LevelCachedOnly {
		t.Fatalf("level = %d, want L2 from queue pressure", b.Level())
	}
	// Mild calm: small but non-empty queue, p99 under 70% of target
	// but over half of it — steps ONE level.
	for i := 0; i < 10; i++ {
		b.Observe(6 * time.Millisecond)
	}
	b.Tick(2)
	if b.Level() != LevelLean {
		t.Fatalf("level after mild calm = %d, want hysteretic single step to L1", b.Level())
	}
}

// TestBrownoutTransitionCallback: every change invokes OnTransition.
func TestBrownoutTransitionCallback(t *testing.T) {
	var mu sync.Mutex
	var seen [][2]int
	b := newBrownout(BrownoutConfig{
		Window: time.Hour,
		OnTransition: func(from, to int) {
			mu.Lock()
			seen = append(seen, [2]int{from, to})
			mu.Unlock()
		},
	})
	b.Tick(1000)
	b.Tick(0)
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0] != [2]int{0, 1} || seen[1] != [2]int{1, 0} {
		t.Fatalf("transitions = %v, want [[0 1] [1 0]]", seen)
	}
}

// TestControllerDeadlineReject: an expired deadline rejects with 504
// before touching the gate; so does one shorter than the expected
// latency, once the EWMA is warm.
func TestControllerDeadlineReject(t *testing.T) {
	c := New(Config{MaxCost: 4})
	_, rej := c.Admit(context.Background(), Request{
		Priority: Interactive, Cost: 1, Deadline: time.Now().Add(-time.Second),
	})
	if rej == nil || rej.Status != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: rejection = %+v, want 504", rej)
	}
	c.SeedExpectedLatency(500 * time.Millisecond)
	_, rej = c.Admit(context.Background(), Request{
		Priority: Interactive, Cost: 1, Deadline: time.Now().Add(50 * time.Millisecond),
	})
	if rej == nil || rej.Status != http.StatusGatewayTimeout {
		t.Fatalf("unmeetable deadline: rejection = %+v, want 504", rej)
	}
	// A comfortable deadline admits.
	tk, rej := c.Admit(context.Background(), Request{
		Priority: Interactive, Cost: 1, Deadline: time.Now().Add(10 * time.Second),
	})
	if rej != nil {
		t.Fatalf("comfortable deadline rejected: %+v", rej)
	}
	tk.Done()
	if got := c.Snapshot().RejectedDeadline; got != 2 {
		t.Fatalf("RejectedDeadline = %d, want 2", got)
	}
}

// TestControllerL3ClassFilter: at L3 only Interactive is admitted.
func TestControllerL3ClassFilter(t *testing.T) {
	c := New(Config{MaxCost: 4, Brownout: true, BrownoutConfig: BrownoutConfig{Window: time.Hour}})
	for i := 0; i < 3; i++ {
		c.brown.Tick(1000)
	}
	if c.Level() != LevelCritical {
		t.Fatalf("level = %d, want L3", c.Level())
	}
	_, rej := c.Admit(context.Background(), Request{Priority: Aggregate, Cost: 1})
	if rej == nil || rej.Status != http.StatusServiceUnavailable {
		t.Fatalf("aggregate at L3: rejection = %+v, want 503", rej)
	}
	if rej.RetryAfter < time.Second {
		t.Fatalf("L3 shed RetryAfter = %v, want >= 1s", rej.RetryAfter)
	}
	tk, rej := c.Admit(context.Background(), Request{Priority: Interactive, Cost: 1})
	if rej != nil {
		t.Fatalf("interactive at L3 rejected: %+v", rej)
	}
	tk.Done()
}

// TestControllerTenantQuota: the 429 path carries a Retry-After.
func TestControllerTenantQuota(t *testing.T) {
	c := New(Config{TenantRate: 1, TenantBurst: 2})
	tk, rej := c.Admit(context.Background(), Request{Priority: Interactive, Cost: 2, Tenant: "t1"})
	if rej != nil {
		t.Fatalf("first burst rejected: %+v", rej)
	}
	tk.Done()
	_, rej = c.Admit(context.Background(), Request{Priority: Interactive, Cost: 2, Tenant: "t1"})
	if rej == nil || rej.Status != http.StatusTooManyRequests {
		t.Fatalf("quota breach: rejection = %+v, want 429", rej)
	}
	if rej.RetryAfter < time.Second {
		t.Fatalf("429 RetryAfter = %v, want >= 1s", rej.RetryAfter)
	}
}

// TestControllerObserveOnly: the zero config admits everything and
// still snapshots coherent stats (the always-present observer mode
// the remote service boots with).
func TestControllerObserveOnly(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 5; i++ {
		tk, rej := c.Admit(context.Background(), Request{Priority: Background, Cost: 99})
		if rej != nil {
			t.Fatalf("observe-only controller rejected: %+v", rej)
		}
		tk.Done()
	}
	st := c.Snapshot()
	if st.Admitted["background"] != 5 {
		t.Fatalf("Admitted[background] = %d, want 5", st.Admitted["background"])
	}
	if st.Rejected != 0 || st.BrownoutLevel != LevelFull {
		t.Fatalf("unexpected snapshot: %+v", st)
	}
	if st.ExpectedLatencyMs <= 0 {
		t.Fatalf("ExpectedLatencyMs = %v, want > 0 after 5 observations", st.ExpectedLatencyMs)
	}
}

// TestTicketDoneIdempotent: double Done must not underflow capacity.
func TestTicketDoneIdempotent(t *testing.T) {
	c := New(Config{MaxCost: 2})
	tk, rej := c.Admit(context.Background(), Request{Priority: Interactive, Cost: 2})
	if rej != nil {
		t.Fatal(rej)
	}
	tk.Done()
	tk.Done()
	if f := c.gate.InFlightCost(); f != 0 {
		t.Fatalf("InFlightCost after double Done = %d, want 0", f)
	}
}

// TestForceLevel: the test/operator override pins the level, counts a
// transition, fires the callback, and clamps out-of-range values.
func TestForceLevel(t *testing.T) {
	var calls int
	c := New(Config{Brownout: true, BrownoutConfig: BrownoutConfig{
		Window:       time.Hour, // keep evaluations out of the way
		OnTransition: func(from, to int) { calls++ },
	}})
	c.ForceBrownoutLevel(LevelCachedOnly)
	if c.Level() != LevelCachedOnly {
		t.Fatalf("forced level = %d, want %d", c.Level(), LevelCachedOnly)
	}
	c.ForceBrownoutLevel(LevelCachedOnly) // same level: no transition
	c.ForceBrownoutLevel(99)              // clamps to the max level
	if c.Level() != LevelCritical {
		t.Fatalf("clamped level = %d, want %d", c.Level(), LevelCritical)
	}
	c.ForceBrownoutLevel(-3) // clamps to full service
	if c.Level() != LevelFull {
		t.Fatalf("clamped level = %d, want %d", c.Level(), LevelFull)
	}
	if calls != 3 {
		t.Fatalf("OnTransition fired %d times, want 3", calls)
	}
	if got := c.Snapshot().BrownoutTransitions; got != 3 {
		t.Fatalf("transitions = %d, want 3", got)
	}
	// Without brownout the override is a harmless no-op.
	c2 := New(Config{})
	c2.ForceBrownoutLevel(LevelCritical)
	if c2.Level() != LevelFull {
		t.Fatalf("brownout-less controller reports level %d", c2.Level())
	}
}
