package admission

import (
	"sync"
	"sync/atomic"
	"time"
)

// The brownout controller: a feedback loop over windowed p99 latency
// and queue depth that steps the service through explicit degradation
// levels instead of letting every request share the collapse equally.
//
//	L0 full service.
//	L1 shrink the update-batch wait and disable streaming for small
//	   answers (cut per-request overhead, keep semantics).
//	L2 serve generation-tagged cached answers only; shed cold
//	   queries (cached answers carry their proofs — integrity is
//	   untouched, only coverage shrinks).
//	L3 admit only the highest priority class.
//
// Stepping up is one level per control window while the pressure
// signal holds. Stepping down is hysteretic: a mildly calm window
// steps one level, and a deeply calm window (empty queue, p99 well
// under target) returns straight to L0 — which is what makes "back to
// full service within one control window after load drops" hold.

// Degradation levels (see above).
const (
	LevelFull        = 0
	LevelLean        = 1 // L1: shrink batch wait, stream large answers only
	LevelCachedOnly  = 2 // L2: answer cache only, cold queries shed
	LevelCritical    = 3 // L3: highest priority class only
	NumLevels        = 4
	maxBrownoutLevel = NumLevels - 1
)

// LevelName returns a short operator-facing name for a level.
func LevelName(l int) string {
	switch l {
	case LevelFull:
		return "L0-full"
	case LevelLean:
		return "L1-lean"
	case LevelCachedOnly:
		return "L2-cached-only"
	default:
		return "L3-critical"
	}
}

// BrownoutConfig tunes the feedback loop; zero fields select the
// defaults below.
type BrownoutConfig struct {
	// TargetP99 is the latency objective: a window whose p99 exceeds
	// it is overloaded. Default 250ms.
	TargetP99 time.Duration
	// HighQueueDepth is the queue-depth pressure threshold. Default 32.
	HighQueueDepth int
	// Window is the control interval. Default 500ms.
	Window time.Duration
	// MinSamples is how many observations a window needs before its
	// p99 may step the level up (guards against one slow straggler in
	// an idle window). Default 8.
	MinSamples int
	// OnTransition, when set, is called (outside the controller's
	// lock) on every level change — the remote service logs and
	// counts these.
	OnTransition func(from, to int)
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.TargetP99 <= 0 {
		c.TargetP99 = 250 * time.Millisecond
	}
	if c.HighQueueDepth <= 0 {
		c.HighQueueDepth = 32
	}
	if c.Window <= 0 {
		c.Window = 500 * time.Millisecond
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	return c
}

// Brownout is the controller. Ticking is on-demand (driven by request
// traffic plus explicit Tick calls) rather than a background
// goroutine, so an idle embedded service costs nothing and tests stay
// deterministic.
type Brownout struct {
	cfg BrownoutConfig

	level       atomic.Int32
	transitions atomic.Int64
	stepUps     atomic.Int64
	stepDowns   atomic.Int64

	window latWindow

	mu          sync.Mutex
	windowStart time.Time
}

func newBrownout(cfg BrownoutConfig) *Brownout {
	b := &Brownout{cfg: cfg.withDefaults()}
	b.windowStart = time.Now()
	return b
}

// Level returns the current degradation level.
func (b *Brownout) Level() int { return int(b.level.Load()) }

// Observe feeds one request latency (admission queue wait included —
// queue delay is precisely the pressure signal).
func (b *Brownout) Observe(d time.Duration) { b.window.observe(d) }

// MaybeTick evaluates the window if it has elapsed. queueDepth is the
// gate's current backlog.
func (b *Brownout) MaybeTick(queueDepth int) {
	b.mu.Lock()
	if time.Since(b.windowStart) < b.cfg.Window {
		b.mu.Unlock()
		return
	}
	b.windowStart = time.Now()
	b.mu.Unlock()
	b.evaluate(queueDepth)
}

// Tick forces a window evaluation now (tests; quiesce probes).
func (b *Brownout) Tick(queueDepth int) {
	b.mu.Lock()
	b.windowStart = time.Now()
	b.mu.Unlock()
	b.evaluate(queueDepth)
}

func (b *Brownout) evaluate(queueDepth int) {
	n, p99 := b.window.snapshotAndReset()
	lvl := int(b.level.Load())
	overloaded := (n >= b.cfg.MinSamples && p99 > b.cfg.TargetP99) ||
		queueDepth > b.cfg.HighQueueDepth
	// Calm: latency comfortably under target (or nothing ran) and the
	// queue has drained below half the pressure threshold.
	calm := !overloaded && queueDepth <= b.cfg.HighQueueDepth/2 &&
		(n == 0 || p99 <= b.cfg.TargetP99*7/10)
	// Deep calm: an empty queue and p99 at most half the target — the
	// overload is over, return to full service in one step.
	deepCalm := calm && queueDepth == 0 && (n == 0 || p99 <= b.cfg.TargetP99/2)
	switch {
	case overloaded && lvl < maxBrownoutLevel:
		b.setLevel(lvl, lvl+1)
		b.stepUps.Add(1)
	case deepCalm && lvl > LevelFull:
		b.setLevel(lvl, LevelFull)
		b.stepDowns.Add(1)
	case calm && lvl > LevelFull:
		b.setLevel(lvl, lvl-1)
		b.stepDowns.Add(1)
	}
}

func (b *Brownout) setLevel(from, to int) {
	if !b.level.CompareAndSwap(int32(from), int32(to)) {
		return // racing evaluation moved it first
	}
	b.transitions.Add(1)
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(from, to)
	}
}

// ForceLevel pins the controller at the given level (clamped to the
// valid range), counting the change as a normal transition. Meant for
// tests and operator overrides; the next evaluation window may move
// the level again.
func (b *Brownout) ForceLevel(lvl int) {
	if lvl < LevelFull {
		lvl = LevelFull
	}
	if lvl > maxBrownoutLevel {
		lvl = maxBrownoutLevel
	}
	for {
		cur := int(b.level.Load())
		if cur == lvl {
			return
		}
		if b.level.CompareAndSwap(int32(cur), int32(lvl)) {
			b.transitions.Add(1)
			if b.cfg.OnTransition != nil {
				b.cfg.OnTransition(cur, lvl)
			}
			return
		}
	}
}

// Transitions reports how many level changes have happened.
func (b *Brownout) Transitions() int64 { return b.transitions.Load() }

// StepUps / StepDowns split the transitions by direction.
func (b *Brownout) StepUps() int64   { return b.stepUps.Load() }
func (b *Brownout) StepDowns() int64 { return b.stepDowns.Load() }
