package admission

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"
)

// Controller composes the gate, the tenant quotas and the brownout
// loop behind one Admit call. Every feature is individually optional
// (zero config = observe-only: everything admits, stats still work),
// so the remote service always holds a non-nil controller and the
// legacy WithMaxInFlight semantics are just a unit-cost gate.

// Config selects which protections run.
type Config struct {
	// MaxCost is the gate capacity in cost units; 0 disables the
	// gate entirely (no bound, no queue).
	MaxCost int64
	// MaxQueue bounds the number of queued requests; 0 selects 64.
	MaxQueue int
	// QueueWait bounds how long a request queues; 0 selects 2s.
	QueueWait time.Duration
	// CostAware asks the HTTP layer to price each request via the
	// server's cost estimator instead of cost 1. (Carried here so one
	// config object describes the whole admission setup; the
	// controller itself just takes whatever cost Admit is given.)
	CostAware bool
	// TenantRate enables per-tenant token buckets: cost units per
	// second each client ID may spend; 0 disables quotas.
	TenantRate float64
	// TenantBurst is the bucket ceiling; 0 selects 4x TenantRate.
	TenantBurst float64
	// Brownout enables the degradation controller.
	Brownout bool
	// BrownoutConfig tunes it (zero fields = defaults).
	BrownoutConfig BrownoutConfig
}

// Request describes one arrival.
type Request struct {
	Priority Priority
	Cost     int64
	Tenant   string
	// Deadline is the caller's absolute deadline (zero = none): the
	// controller rejects on arrival when the remaining budget cannot
	// cover the expected service latency.
	Deadline time.Time
}

// Rejection says why a request was not admitted and how to answer.
type Rejection struct {
	// Status is the HTTP status to answer with: 429 for tenant
	// quota, 503 for queue/brownout sheds, 504 for a deadline that
	// cannot be met.
	Status int
	// Reason is the response body text.
	Reason string
	// RetryAfter, when positive, goes out as the Retry-After header.
	RetryAfter time.Duration
}

// Ticket is a successful admission; Done releases the capacity and
// feeds the latency observers. Done is idempotent.
type Ticket struct {
	c       *Controller
	release func()
	start   time.Time
	done    atomic.Bool
}

// Done releases the ticket, recording the request's total latency
// (queue wait included) into the EWMA and the brownout window.
func (t *Ticket) Done() {
	if t == nil || !t.done.CompareAndSwap(false, true) {
		return
	}
	if t.release != nil {
		t.release()
	}
	t.c.observe(time.Since(t.start))
}

// Controller is the composed admission layer. The zero-config
// controller admits everything and only keeps counters.
type Controller struct {
	gate    *Gate          // nil = unbounded
	tenants *TenantLimiter // nil = quotas off
	brown   *Brownout      // nil = brownout off

	// costAware mirrors Config.CostAware: immutable after New, so
	// callers holding the controller can consult it without touching
	// the (mutable) config it was built from.
	costAware bool

	// expected is the rolling estimate of one admitted request's
	// total latency, feeding the reject-on-arrival deadline check.
	expected *ewma

	admitted         [numPriorities]atomic.Int64 // gateless admits too
	rejectedDeadline atomic.Int64
	rejectedBrownout atomic.Int64
	degradedServed   atomic.Int64
}

// New builds a controller from cfg.
func New(cfg Config) *Controller {
	c := &Controller{expected: newEWMA(0.2), costAware: cfg.CostAware}
	if cfg.MaxCost > 0 {
		maxQueue := cfg.MaxQueue
		if maxQueue <= 0 {
			maxQueue = 64
		}
		wait := cfg.QueueWait
		if wait <= 0 {
			wait = 2 * time.Second
		}
		c.gate = newGate(cfg.MaxCost, maxQueue, wait)
	}
	if cfg.TenantRate > 0 {
		burst := cfg.TenantBurst
		if burst <= 0 {
			burst = 4 * cfg.TenantRate
		}
		c.tenants = newTenantLimiter(cfg.TenantRate, burst)
	}
	if cfg.Brownout {
		c.brown = newBrownout(cfg.BrownoutConfig)
	}
	return c
}

// Admit runs the arrival checks in cheap-to-expensive order:
// brownout class filter, deadline feasibility, tenant quota, then the
// cost gate (the only one that can block). Exactly one of the returns
// is non-nil.
func (c *Controller) Admit(ctx context.Context, req Request) (*Ticket, *Rejection) {
	c.Pulse()
	start := time.Now()
	if req.Cost < 1 {
		req.Cost = 1
	}

	// L3: only the highest class is admitted at all. (L2's cache-only
	// serving needs the answer cache and is handled by the HTTP layer
	// before it calls Admit.)
	if c.Level() >= LevelCritical && req.Priority < Interactive {
		c.rejectedBrownout.Add(1)
		return nil, &Rejection{
			Status:     http.StatusServiceUnavailable,
			Reason:     "brownout: admitting " + Interactive.String() + " requests only",
			RetryAfter: c.RetryAfter(),
		}
	}

	// Deadline feasibility: a request that cannot finish inside its
	// remaining budget wastes a worker on an answer nobody reads.
	// The expectation is the EWMA of recent total latencies; before
	// any observation it is zero and the check passes (no estimate,
	// no rejection).
	if !req.Deadline.IsZero() {
		remaining := time.Until(req.Deadline)
		if remaining <= 0 || remaining < c.expected.value() {
			c.rejectedDeadline.Add(1)
			return nil, &Rejection{
				Status: http.StatusGatewayTimeout,
				Reason: "deadline cannot be met: " + remaining.String() +
					" remaining, expected latency " + c.expected.value().String(),
			}
		}
	}

	if c.tenants != nil {
		if ok, wait := c.tenants.Allow(req.Tenant, float64(req.Cost)); !ok {
			return nil, &Rejection{
				Status:     http.StatusTooManyRequests,
				Reason:     "tenant quota exhausted",
				RetryAfter: wait,
			}
		}
	}

	tk := &Ticket{c: c, start: start}
	if c.gate != nil {
		release, err := c.gate.Acquire(ctx, req.Priority, req.Cost)
		if err != nil {
			if shed, ok := err.(*ShedError); ok {
				return nil, &Rejection{
					Status:     http.StatusServiceUnavailable,
					Reason:     shed.Error(),
					RetryAfter: shed.RetryAfter,
				}
			}
			// Caller's context died while queued.
			return nil, &Rejection{Status: 499, Reason: "client canceled while queued"}
		}
		tk.release = release
	} else {
		c.admitted[clampPriority(req.Priority)].Add(1)
	}
	return tk, nil
}

func clampPriority(p Priority) Priority {
	if p < 0 {
		return 0
	}
	if p >= numPriorities {
		return numPriorities - 1
	}
	return p
}

// observe feeds one completed request's latency to the estimators.
func (c *Controller) observe(d time.Duration) {
	c.expected.observe(d)
	if c.brown != nil {
		c.brown.Observe(d)
		c.brown.MaybeTick(c.QueueDepth())
	}
}

// Pulse gives the brownout loop a chance to advance its control
// window. The HTTP layer calls it on every arrival — including ones
// served by degraded modes that never reach Admit — so the controller
// keeps stepping (down, in particular) as long as any traffic flows.
func (c *Controller) Pulse() {
	if c.brown != nil {
		c.brown.MaybeTick(c.QueueDepth())
	}
}

// Tick forces a brownout window evaluation (tests, quiesce probes).
func (c *Controller) Tick() {
	if c.brown != nil {
		c.brown.Tick(c.QueueDepth())
	}
}

// ForceBrownoutLevel pins the brownout level (tests, operator
// overrides); a no-op when brownout is disabled.
func (c *Controller) ForceBrownoutLevel(lvl int) {
	if c.brown != nil {
		c.brown.ForceLevel(lvl)
	}
}

// Level reports the current brownout level (LevelFull when the
// controller runs without brownout).
func (c *Controller) Level() int {
	if c.brown == nil {
		return LevelFull
	}
	return c.brown.Level()
}

// CostAware reports whether admitted requests should be priced by
// their predicted work (vs one unit each).
func (c *Controller) CostAware() bool { return c.costAware }

// RetryAfter is the current computed backoff hint: drain-rate based
// when the gate runs, the 1s floor otherwise.
func (c *Controller) RetryAfter() time.Duration {
	if c.gate != nil {
		return c.gate.RetryAfter()
	}
	return time.Second
}

// QueueDepth reports the gate backlog (0 without a gate).
func (c *Controller) QueueDepth() int {
	if c.gate == nil {
		return 0
	}
	return c.gate.QueueDepth()
}

// QueueRejected reports queue sheds — the counter the service's
// legacy Rejected() API exposes.
func (c *Controller) QueueRejected() int64 {
	if c.gate == nil {
		return 0
	}
	return c.gate.Rejected()
}

// NoteDegraded counts an answer served by a degraded mode (brownout
// cache-only serving).
func (c *Controller) NoteDegraded() { c.degradedServed.Add(1) }

// NoteBrownoutShed counts a request the HTTP layer shed because of
// the brownout level before it ever reached Admit (cache-only misses,
// class filtering on endpoints that bypass the gate).
func (c *Controller) NoteBrownoutShed() { c.rejectedBrownout.Add(1) }

// NoteDeadlineShed counts an arrival the HTTP layer turned away on an
// already-expired deadline on endpoints that bypass Admit (updates).
func (c *Controller) NoteDeadlineShed() { c.rejectedDeadline.Add(1) }

// SeedExpectedLatency overwrites the deadline check's latency
// expectation — tests and load harnesses warm the reject-on-arrival
// path without running calibration traffic.
func (c *Controller) SeedExpectedLatency(d time.Duration) { c.expected.seed(d) }

// ExpectedLatency exposes the current EWMA estimate.
func (c *Controller) ExpectedLatency() time.Duration { return c.expected.value() }

// Stats is the JSON-friendly snapshot surfaced by /db/{name}/stats
// and expvar.
type Stats struct {
	BrownoutLevel       int              `json:"brownout_level"`
	BrownoutTransitions int64            `json:"brownout_transitions"`
	QueueDepth          int              `json:"queue_depth"`
	InFlightCost        int64            `json:"in_flight_cost"`
	ExpectedLatencyMs   float64          `json:"expected_latency_ms"`
	Rejected            int64            `json:"rejected"`
	RejectedQueue       int64            `json:"rejected_queue"`
	RejectedDeadline    int64            `json:"rejected_deadline"`
	RejectedTenant      int64            `json:"rejected_tenant"`
	RejectedBrownout    int64            `json:"rejected_brownout"`
	DegradedServed      int64            `json:"degraded_served"`
	Admitted            map[string]int64 `json:"admitted"`
}

// Snapshot collects the counters.
func (c *Controller) Snapshot() Stats {
	st := Stats{
		BrownoutLevel:     c.Level(),
		QueueDepth:        c.QueueDepth(),
		ExpectedLatencyMs: float64(c.expected.value()) / float64(time.Millisecond),
		RejectedDeadline:  c.rejectedDeadline.Load(),
		RejectedBrownout:  c.rejectedBrownout.Load(),
		DegradedServed:    c.degradedServed.Load(),
		Admitted:          map[string]int64{},
	}
	var adm [numPriorities]int64
	if c.gate != nil {
		adm = c.gate.Admitted()
		st.RejectedQueue = c.gate.Rejected()
		st.InFlightCost = c.gate.InFlightCost()
	}
	for p := 0; p < numPriorities; p++ {
		st.Admitted[Priority(p).String()] = adm[p] + c.admitted[p].Load()
	}
	if c.tenants != nil {
		st.RejectedTenant = c.tenants.Rejected()
	}
	if c.brown != nil {
		st.BrownoutTransitions = c.brown.Transitions()
	}
	st.Rejected = st.RejectedQueue + st.RejectedDeadline + st.RejectedTenant + st.RejectedBrownout
	return st
}
