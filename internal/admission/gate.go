package admission

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// gate.go: the cost-weighted admission gate. Replaces the flat
// channel semaphore the remote service used to run: capacity is
// measured in cost units (predicted blocks touched), waiters queue in
// per-priority FIFO lists drained highest class first, the queue
// depth is bounded, and sheds carry a Retry-After computed from the
// observed drain rate instead of a constant.

// ShedError reports a request the gate turned away, with the backoff
// hint the HTTP layer forwards as Retry-After.
type ShedError struct {
	// Full is true when the bounded queue had no room (instant shed);
	// false when the request queued but no capacity freed within the
	// queue-wait bound.
	Full bool
	// RetryAfter is the computed backoff hint (>= 1s floor).
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	if e.Full {
		return fmt.Sprintf("admission: queue full, retry after %s", e.RetryAfter)
	}
	return fmt.Sprintf("admission: no capacity within queue wait, retry after %s", e.RetryAfter)
}

// waiter is one queued request.
type waiter struct {
	cost     int64
	ready    chan struct{}
	admitted bool // set under gate.mu before ready closes
	canceled bool // set under gate.mu; wake passes skip it
}

// drainWindow paces the drain-rate estimate: completed cost is
// accumulated and folded into the EWMA once per window.
const drainWindow = 250 * time.Millisecond

// retryAfterCeil caps the computed Retry-After so a momentarily deep
// queue cannot tell clients to go away for minutes.
const retryAfterCeil = 30 * time.Second

// Gate is the cost-weighted, priority-ordered admission gate.
type Gate struct {
	capacity  int64
	maxQueue  int
	queueWait time.Duration

	mu          sync.Mutex
	inFlight    int64
	queues      [numPriorities][]*waiter
	queuedCount int
	queuedCost  int64

	// Drain-rate bookkeeping (cost units completed per second),
	// folded into an EWMA once per drainWindow.
	drainRate   float64
	windowStart time.Time
	windowCost  int64

	admitted        [numPriorities]int64
	rejectedFull    int64
	rejectedTimeout int64
}

// newGate builds a gate with capacity cost units; maxQueue bounds the
// number of queued requests and queueWait how long any one of them
// may wait.
func newGate(capacity int64, maxQueue int, queueWait time.Duration) *Gate {
	return &Gate{
		capacity:    capacity,
		maxQueue:    maxQueue,
		queueWait:   queueWait,
		windowStart: time.Now(),
	}
}

// Acquire admits a request of the given cost, queueing when the gate
// is at capacity. It returns a release func on success and a
// *ShedError (or the context's error, when the caller gave up while
// queued) otherwise. Cost is clamped to [1, capacity] so one huge
// request can still run alone rather than being unadmittable.
func (g *Gate) Acquire(ctx context.Context, pri Priority, cost int64) (func(), error) {
	if cost < 1 {
		cost = 1
	}
	if cost > g.capacity {
		cost = g.capacity
	}
	if pri < 0 {
		pri = 0
	}
	if pri >= numPriorities {
		pri = numPriorities - 1
	}
	g.mu.Lock()
	// Fast path: capacity available and nobody queued ahead of us.
	if g.queuedCount == 0 && g.inFlight+cost <= g.capacity {
		g.inFlight += cost
		g.admitted[pri]++
		g.mu.Unlock()
		return g.releaseFunc(cost), nil
	}
	if g.queuedCount >= g.maxQueue {
		g.rejectedFull++
		ra := g.retryAfterLocked()
		g.mu.Unlock()
		return nil, &ShedError{Full: true, RetryAfter: ra}
	}
	w := &waiter{cost: cost, ready: make(chan struct{})}
	g.queues[pri] = append(g.queues[pri], w)
	g.queuedCount++
	g.queuedCost += cost
	g.mu.Unlock()

	timer := time.NewTimer(g.queueWait)
	defer timer.Stop()
	select {
	case <-w.ready:
		return g.releaseFunc(cost), nil
	case <-ctx.Done():
		if g.cancelWaiter(w) {
			return nil, ctx.Err()
		}
		// Lost the race: a wake pass admitted us before the cancel
		// registered. Give the capacity straight back.
		<-w.ready
		g.releaseFunc(cost)()
		return nil, ctx.Err()
	case <-timer.C:
		if g.cancelWaiter(w) {
			g.mu.Lock()
			g.rejectedTimeout++
			ra := g.retryAfterLocked()
			g.mu.Unlock()
			return nil, &ShedError{RetryAfter: ra}
		}
		// Admitted at the wire: take the slot rather than wasting the
		// work of the wake pass.
		<-w.ready
		return g.releaseFunc(cost), nil
	}
}

// cancelWaiter removes w from the queue; false means a wake pass
// already admitted it.
func (g *Gate) cancelWaiter(w *waiter) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.admitted {
		return false
	}
	w.canceled = true
	g.queuedCount--
	g.queuedCost -= w.cost
	return true
}

func (g *Gate) releaseFunc(cost int64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.inFlight -= cost
			g.noteDrainLocked(cost)
			g.wakeLocked()
			g.mu.Unlock()
		})
	}
}

// wakeLocked admits queued waiters in priority order (Interactive
// first), stopping at the first live waiter that does not fit — FIFO
// head-of-line within a class, strict ordering across classes.
func (g *Gate) wakeLocked() {
	for p := numPriorities - 1; p >= 0; p-- {
		q := g.queues[p]
		i := 0
		for ; i < len(q); i++ {
			w := q[i]
			if w.canceled {
				continue // removed from the counters already
			}
			if g.inFlight+w.cost > g.capacity {
				// Head of line does not fit; lower classes must wait
				// behind it too (no sneak-past for cheap requests, so
				// an expensive interactive query cannot starve).
				g.queues[p] = compactQueue(q[i:])
				return
			}
			g.inFlight += w.cost
			g.queuedCount--
			g.queuedCost -= w.cost
			g.admitted[p]++
			w.admitted = true
			close(w.ready)
		}
		g.queues[p] = q[:0]
	}
}

// compactQueue drops canceled waiters from the head segment that
// stays queued (allocation-free shift in place).
func compactQueue(q []*waiter) []*waiter {
	out := q[:0]
	for _, w := range q {
		if !w.canceled {
			out = append(out, w)
		}
	}
	return out
}

// noteDrainLocked folds completed cost into the drain-rate EWMA once
// per drainWindow.
func (g *Gate) noteDrainLocked(cost int64) {
	g.windowCost += cost
	now := time.Now()
	el := now.Sub(g.windowStart)
	if el < drainWindow {
		return
	}
	inst := float64(g.windowCost) / el.Seconds()
	if g.drainRate == 0 {
		g.drainRate = inst
	} else {
		g.drainRate += 0.3 * (inst - g.drainRate)
	}
	g.windowCost = 0
	g.windowStart = now
}

// retryAfterLocked computes the backoff hint for a shed: the time the
// current backlog (queued plus in-flight cost) needs to drain at the
// observed rate, floored at one second — the old constant — and
// capped at retryAfterCeil.
func (g *Gate) retryAfterLocked() time.Duration {
	ra := time.Second
	if g.drainRate > 0 {
		secs := float64(g.queuedCost+g.inFlight) / g.drainRate
		if d := time.Duration(secs * float64(time.Second)); d > ra {
			ra = d
		}
	}
	if ra > retryAfterCeil {
		ra = retryAfterCeil
	}
	// Whole seconds: Retry-After is specified in seconds and a
	// fractional hint would round to zero on old clients.
	return ra.Round(time.Second)
}

// QueueDepth reports how many requests are queued right now.
func (g *Gate) QueueDepth() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.queuedCount
}

// InFlightCost reports the cost units currently executing.
func (g *Gate) InFlightCost() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inFlight
}

// Admitted returns per-priority admission counters.
func (g *Gate) Admitted() [numPriorities]int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.admitted
}

// Rejected reports queue sheds (full queue + queue-wait timeouts).
func (g *Gate) Rejected() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rejectedFull + g.rejectedTimeout
}

// RetryAfter computes the current backoff hint (for sheds decided
// outside the gate, e.g. brownout class filtering).
func (g *Gate) RetryAfter() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.retryAfterLocked()
}
