package admission

import (
	"sort"
	"sync"
	"time"
)

// Latency tracking for two consumers: the deadline check needs a
// rolling expectation of how long an admitted request takes (EWMA),
// and the brownout controller needs a windowed p99. Both feed from
// the same Observe call on ticket release.

// ewma is a thread-safe exponentially weighted moving average over
// durations. Zero value = no observations yet.
type ewma struct {
	mu    sync.Mutex
	val   float64 // nanoseconds
	alpha float64
	init  bool
}

func newEWMA(alpha float64) *ewma {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &ewma{alpha: alpha}
}

func (e *ewma) observe(d time.Duration) {
	e.mu.Lock()
	if !e.init {
		e.val, e.init = float64(d), true
	} else {
		e.val += e.alpha * (float64(d) - e.val)
	}
	e.mu.Unlock()
}

// value returns the current expectation; zero before any observation
// (callers treat zero as "no estimate yet", disabling the check).
func (e *ewma) value() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.init {
		return 0
	}
	return time.Duration(e.val)
}

// seed overwrites the expectation (tests and benchmarks warm the
// deadline check without running traffic).
func (e *ewma) seed(d time.Duration) {
	e.mu.Lock()
	e.val, e.init = float64(d), true
	e.mu.Unlock()
}

// latWindow collects latency samples for one brownout control window.
// Bounded: past the cap new samples overwrite a rotating slot, which
// keeps the quantile representative without unbounded growth under
// overload (exactly when samples arrive fastest).
const latWindowCap = 2048

type latWindow struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int // overwrite cursor once full
	total   int // samples observed this window (may exceed cap)
}

func (w *latWindow) observe(d time.Duration) {
	w.mu.Lock()
	if len(w.samples) < latWindowCap {
		w.samples = append(w.samples, d)
	} else {
		w.samples[w.next] = d
		w.next = (w.next + 1) % latWindowCap
	}
	w.total++
	w.mu.Unlock()
}

// snapshotAndReset returns this window's sample count and p99, then
// starts the next window. p99 is zero when the window was empty.
func (w *latWindow) snapshotAndReset() (int, time.Duration) {
	w.mu.Lock()
	n := w.total
	samples := w.samples
	w.samples = nil
	w.next, w.total = 0, 0
	w.mu.Unlock()
	if len(samples) == 0 {
		return n, 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := (len(samples)*99 + 99) / 100
	if idx >= len(samples) {
		idx = len(samples) - 1
	}
	return n, samples[idx]
}
