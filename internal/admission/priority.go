// Package admission is the server's overload-protection layer: a
// cost-weighted admission gate with priority-ordered queuing, per-
// tenant token-bucket quotas, deadline-aware rejection on arrival,
// and a brownout controller that steps through explicit degradation
// levels instead of letting a saturated server collapse.
//
// The DAS model (see the package comment of internal/remote) puts
// every query on a shared untrusted server; at scale the dominant
// failure is overload, not a hostile network. The currency of
// admission here is *cost* — the predicted number of hosted blocks a
// request touches, derived from OPESS band occupancy and DSI
// interval-group counts by internal/server — so one expensive twig
// query pays for what it actually displaces rather than counting the
// same as a point lookup.
//
// Nothing in this package relaxes integrity: degraded modes change
// WHAT is served (cached answers, fewer priority classes), never
// whether an answer is verified-or-marked — that contract lives in
// the layers above and is pinned by their chaos tests.
package admission

import "context"

// Priority is the request's class. Higher values are admitted first
// and survive deeper brownout levels. The ordering follows the
// paper's workload split: a human is waiting on an interactive
// query, aggregates feed dashboards, updates are background
// write-behind the owner retries anyway.
type Priority int

const (
	// Background is the lowest class: owner updates and uploads.
	Background Priority = iota
	// Aggregate covers MIN/MAX index probes and other analytic reads.
	Aggregate
	// Interactive is the highest class: a user-facing query.
	Interactive

	numPriorities = 3
)

// String returns the wire form carried in the X-Priority header.
func (p Priority) String() string {
	switch p {
	case Interactive:
		return "interactive"
	case Aggregate:
		return "aggregate"
	default:
		return "background"
	}
}

// ParsePriority reverses String; unknown or empty input falls back to
// def, so an old client that never stamps the header is classified by
// the endpoint's default rather than rejected.
func ParsePriority(s string, def Priority) Priority {
	switch s {
	case "interactive":
		return Interactive
	case "aggregate":
		return Aggregate
	case "background":
		return Background
	default:
		return def
	}
}

type priorityKey struct{}

// WithPriority stamps an explicit priority class on the context; the
// remote client forwards it in the X-Priority header.
func WithPriority(ctx context.Context, p Priority) context.Context {
	return context.WithValue(ctx, priorityKey{}, p)
}

// PriorityFromContext reads a stamped priority; ok is false when the
// caller never chose one.
func PriorityFromContext(ctx context.Context) (Priority, bool) {
	p, ok := ctx.Value(priorityKey{}).(Priority)
	return p, ok
}

// ContextWithDefaultPriority stamps p only when the context carries no
// explicit class yet — the per-operation defaults (query→Interactive,
// aggregate→Aggregate, update→Background) without overriding a
// caller's choice.
func ContextWithDefaultPriority(ctx context.Context, p Priority) context.Context {
	if _, ok := PriorityFromContext(ctx); ok {
		return ctx
	}
	return WithPriority(ctx, p)
}

// ResponseMeta is an out-parameter the owner stack threads through
// the context: the remote client fills it from the response headers
// of the attempt that produced the answer, so core.Timings can
// surface whether the answer came from a degraded (browned-out)
// server without widening every Backend signature.
type ResponseMeta struct {
	// BrownoutLevel echoes the server's degradation level (0 = full
	// service) at the time it answered.
	BrownoutLevel int
	// Degraded marks an answer served by a degraded mode — today
	// that means the brownout controller answered from the
	// generation-tagged answer cache instead of executing the query.
	Degraded bool
}

type responseMetaKey struct{}

// ContextWithResponseMeta attaches the out-parameter.
func ContextWithResponseMeta(ctx context.Context, m *ResponseMeta) context.Context {
	return context.WithValue(ctx, responseMetaKey{}, m)
}

// ResponseMetaFromContext retrieves it (nil when absent).
func ResponseMetaFromContext(ctx context.Context) *ResponseMeta {
	m, _ := ctx.Value(responseMetaKey{}).(*ResponseMeta)
	return m
}
