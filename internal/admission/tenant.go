package admission

import (
	"sync"
	"time"
)

// Per-tenant quotas: a token bucket per client ID, denominated in the
// same cost units as the gate, so one greedy tenant exhausts its own
// budget instead of the shared capacity. Tenants are identified by
// the X-Client-ID header; requests without one share the anonymous
// bucket (quotas on means unidentified traffic is collectively
// bounded, not unbounded).

// maxTenantBuckets bounds the bucket map against an attacker spinning
// fresh client IDs; past the bound the stalest bucket is evicted —
// which at worst refills an abandoned tenant to full burst, never
// grants more than burst.
const maxTenantBuckets = 4096

// anonTenant is the shared bucket key for requests without an ID.
const anonTenant = "\x00anon"

type tbucket struct {
	tokens float64
	last   time.Time
}

// TenantLimiter hands each tenant rate cost-units per second with a
// burst ceiling.
type TenantLimiter struct {
	rate, burst float64

	mu       sync.Mutex
	buckets  map[string]*tbucket
	rejected int64
}

func newTenantLimiter(rate, burst float64) *TenantLimiter {
	if burst < rate {
		burst = rate
	}
	if burst < 1 {
		burst = 1
	}
	return &TenantLimiter{rate: rate, burst: burst, buckets: map[string]*tbucket{}}
}

// Allow debits cost units from the tenant's bucket. On refusal it
// returns the time until the bucket holds enough tokens (the
// Retry-After hint), floored at one second.
func (l *TenantLimiter) Allow(tenant string, cost float64) (bool, time.Duration) {
	if tenant == "" {
		tenant = anonTenant
	}
	if cost > l.burst {
		cost = l.burst // a single over-burst request must stay servable
	}
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[tenant]
	if b == nil {
		l.evictStalestLocked()
		b = &tbucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	b.tokens += l.rate * now.Sub(b.last).Seconds()
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens >= cost {
		b.tokens -= cost
		return true, 0
	}
	l.rejected++
	wait := time.Duration((cost - b.tokens) / l.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	if wait > retryAfterCeil {
		wait = retryAfterCeil
	}
	return false, wait.Round(time.Second)
}

// evictStalestLocked drops the least-recently-used bucket once the
// map is full.
func (l *TenantLimiter) evictStalestLocked() {
	if len(l.buckets) < maxTenantBuckets {
		return
	}
	var victim string
	var oldest time.Time
	for k, b := range l.buckets {
		if victim == "" || b.last.Before(oldest) {
			victim, oldest = k, b.last
		}
	}
	delete(l.buckets, victim)
}

// Rejected reports how many requests tenant quotas refused.
func (l *TenantLimiter) Rejected() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rejected
}

// Tenants reports how many distinct buckets are live.
func (l *TenantLimiter) Tenants() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
