package attack

import (
	"math/big"
	"testing"

	"repro/internal/cryptoprim"
	"repro/internal/opess"
)

func TestFactorialAndBinomial(t *testing.T) {
	if Factorial(0).Int64() != 1 || Factorial(5).Int64() != 120 {
		t.Errorf("Factorial wrong")
	}
	if Binomial(6, 2).Int64() != 15 {
		t.Errorf("C(6,2) = %v", Binomial(6, 2))
	}
	if Binomial(3, 5).Sign() != 0 || Binomial(3, -1).Sign() != 0 {
		t.Errorf("out-of-range binomial should be 0")
	}
}

func TestMultinomialPaperExample(t *testing.T) {
	// Theorem 4.1's worked example: k1=3, k2=4, k3=5 ->
	// 12!/(3!4!5!) = 27720.
	got := MultinomialCandidates([]int{3, 4, 5})
	if got.Cmp(big.NewInt(27720)) != 0 {
		t.Errorf("MultinomialCandidates(3,4,5) = %v, want 27720", got)
	}
}

func TestCompositionPaperExamples(t *testing.T) {
	// Theorem 5.1 / Figure 5: 7 leaves in 3 intervals -> 15.
	if got := CompositionCandidates(7, 3); got.Cmp(big.NewInt(15)) != 0 {
		t.Errorf("C(6,2) = %v, want 15", got)
	}
	// Theorems 5.1/5.2: n=15, k=5 -> C(14,4) = 1001.
	if got := CompositionCandidates(15, 5); got.Cmp(big.NewInt(1001)) != 0 {
		t.Errorf("C(14,4) = %v, want 1001", got)
	}
}

func TestStructuralCandidatesProduct(t *testing.T) {
	got := StructuralCandidates([][2]int{{7, 3}, {15, 5}})
	want := new(big.Int).Mul(big.NewInt(15), big.NewInt(1001))
	if got.Cmp(want) != 0 {
		t.Errorf("StructuralCandidates = %v, want %v", got, want)
	}
}

func TestCandidateCountGrowsExponentially(t *testing.T) {
	// The "large" requirement of Definitions 3.3/3.4: candidates grow
	// exponentially in the frequencies / interval counts.
	prev := big.NewInt(0)
	for k := 2; k <= 8; k++ {
		freqs := make([]int, k)
		for i := range freqs {
			freqs[i] = 3
		}
		cur := MultinomialCandidates(freqs)
		if cur.Cmp(prev) <= 0 {
			t.Fatalf("candidates not growing at k=%d", k)
		}
		prev = cur
	}
	if prev.Cmp(big.NewInt(1_000_000)) < 0 {
		t.Errorf("k=8 candidates %v not 'large'", prev)
	}
}

func TestCrackByOrder(t *testing.T) {
	// Plain OPE (no splitting): complete break by order alone.
	plain := []string{"12", "23", "77"}
	ciphers := []uint64{100, 200, 300}
	got := CrackByOrder(plain, ciphers)
	if got["12"] != 100 || got["23"] != 200 || got["77"] != 300 {
		t.Errorf("CrackByOrder = %v", got)
	}
	if CrackByOrder(plain, ciphers[:2]) != nil {
		t.Errorf("mismatched lengths should fail")
	}
}

func TestCrackByFrequency(t *testing.T) {
	// §4.1: deterministic encryption of individual values leaks
	// matching frequencies.
	plain := map[string]int{"leukemia": 1, "diarrhea": 2, "flu": 5}
	cipher := map[string]int{"c1": 1, "c2": 2, "c3": 5}
	got := CrackByFrequency(plain, cipher)
	if len(got) != 3 {
		t.Fatalf("cracked %d values, want all 3: %v", len(got), got)
	}
	if got["flu"] != "c3" || got["diarrhea"] != "c2" {
		t.Errorf("wrong mapping: %v", got)
	}
	// With decoys every ciphertext is unique: nothing with frequency
	// > 1 can be matched, and frequency-1 classes are ambiguous.
	decoyed := map[string]int{}
	for i := 0; i < 8; i++ {
		decoyed[string(rune('a'+i))] = 1
	}
	got = CrackByFrequency(plain, decoyed)
	if len(got) != 0 {
		t.Errorf("decoyed classes cracked: %v", got)
	}
}

func TestCountConsistentGroupings(t *testing.T) {
	// Without scaling the true grouping is recoverable.
	if got := CountConsistentGroupings([]int{2, 3, 3, 4}, []int{5, 7}); got != 1 {
		t.Errorf("groupings = %d, want 1", got)
	}
	// Ambiguity: several groupings fit.
	if got := CountConsistentGroupings([]int{2, 2, 2, 2}, []int{4, 4}); got != 1 {
		t.Errorf("uniform groupings = %d", got)
	}
	// Scaling breaks the total-sum invariant: no grouping fits.
	if got := CountConsistentGroupings([]int{6, 9, 9, 12}, []int{5, 7}); got != 0 {
		t.Errorf("scaled groupings = %d, want 0", got)
	}
	// Empty cipher stream only fits empty plaintext.
	if got := CountConsistentGroupings(nil, []int{3}); got != 0 {
		t.Errorf("empty cipher fits: %d", got)
	}
	if got := CountConsistentGroupings(nil, nil); got != 1 {
		t.Errorf("empty/empty = %d, want 1", got)
	}
}

func TestOPESSDefeatsSumMatching(t *testing.T) {
	// End to end: an OPESS-transformed index with scaling applied is
	// inconsistent with the adjacent-sum attack, while the unscaled
	// split would not be.
	keys := cryptoprim.MustKeySet("attack-opess")
	freq := map[string]int{"12": 13, "23": 26, "77": 7, "90": 34, "932": 8, "1001": 21}
	attr, err := opess.Build("val", freq, keys)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// The attacker's knowledge: plaintext frequencies in value order.
	var plainFreqs []int
	for _, v := range attr.Values() {
		plainFreqs = append(plainFreqs, freq[v])
	}
	// Unscaled split (chunk sizes in cipher order): the attack finds
	// at least the true grouping.
	var unscaled []int
	anyScaled := false
	for _, v := range attr.Values() {
		unscaled = append(unscaled, attr.ChunksOf(v)...)
		if attr.ScaleOf(v) > 1 {
			anyScaled = true
		}
	}
	if got := CountConsistentGroupings(unscaled, plainFreqs); got < 1 {
		t.Errorf("unscaled split should be sum-consistent, got %d groupings", got)
	}
	// Scaled frequencies, as observed from the index.
	var scaled []int
	for _, v := range attr.Values() {
		for _, c := range attr.ChunksOf(v) {
			scaled = append(scaled, c*attr.ScaleOf(v))
		}
	}
	if !anyScaled {
		t.Skip("deterministic key produced all-1 scales; pick another key")
	}
	if got := CountConsistentGroupings(scaled, plainFreqs); got != 0 {
		t.Errorf("scaled index still sum-consistent: %d groupings", got)
	}
}

func TestSizeAttackSurvivors(t *testing.T) {
	if got := SizeAttackSurvivors(100, []int{100, 100, 90}); got != 2 {
		t.Errorf("survivors = %d", got)
	}
	if got := SizeAttackSurvivors(100, nil); got != 0 {
		t.Errorf("no candidates = %d", got)
	}
}

func TestAssociationBeliefNonIncreasing(t *testing.T) {
	// Theorem 6.1: Bel goes from 1/k to 1/C(n-1,k-1) <= 1/k and
	// stays there.
	for k := 1; k <= 6; k++ {
		for n := k + 1; n <= k+8; n++ {
			b := NewAssociationBelief(k, n)
			prior := b.Belief()
			var last *big.Rat = prior
			for q := 0; q < 5; q++ {
				b.Observe()
				cur := b.Belief()
				if cur.Cmp(last) > 0 {
					t.Fatalf("k=%d n=%d: belief increased from %v to %v", k, n, last, cur)
				}
				last = cur
			}
			want := new(big.Rat).SetFrac(big.NewInt(1), CompositionCandidates(n, k))
			if last.Cmp(want) != 0 {
				t.Errorf("k=%d n=%d: final belief %v, want %v", k, n, last, want)
			}
		}
	}
}

func TestAssociationBeliefValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("invalid (k, n) accepted")
		}
	}()
	NewAssociationBelief(5, 3)
}

func TestNodeBeliefConstant(t *testing.T) {
	prior := big.NewRat(1, 7)
	b := NewNodeBelief(prior)
	for i := 0; i < 10; i++ {
		b.Observe()
		if b.Belief().Cmp(prior) != 0 {
			t.Fatalf("node belief changed after %d observations", i+1)
		}
	}
}

func TestSortedFreqs(t *testing.T) {
	m := map[uint64]int{30: 3, 10: 1, 20: 2}
	got := SortedFreqs(m)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("SortedFreqs = %v", got)
	}
}
