package attack

import "math/big"

// AssociationBelief tracks the attacker's belief probability
// Bel(B(A)) that a protected association holds in a specific block,
// following the analysis of Theorem 6.1: for an association SC
// //a:(b1, b2) whose protected endpoint has k distinct plaintext
// values split into n > k ciphertext values, the prior belief that a
// particular value pair is associated is 1/k; after the first
// observed query/response the belief becomes 1/C(n-1, k-1) — the
// candidate order-preserving partitions — and further observations
// leave it unchanged. Since C(n-1, k-1) >= k whenever n > k, the
// belief never increases.
type AssociationBelief struct {
	K        int // distinct plaintext values of the protected endpoint
	N        int // distinct ciphertext values after splitting
	observed int
}

// NewAssociationBelief validates n > k >= 1 (splitting always
// enlarges the domain) and returns a tracker.
func NewAssociationBelief(k, n int) *AssociationBelief {
	if k < 1 || n < k {
		panic("attack: need n >= k >= 1")
	}
	return &AssociationBelief{K: k, N: n}
}

// Observe records one observed query/response pair.
func (b *AssociationBelief) Observe() { b.observed++ }

// Observed returns the number of observations so far.
func (b *AssociationBelief) Observed() int { return b.observed }

// Belief returns the current belief probability as an exact
// rational.
func (b *AssociationBelief) Belief() *big.Rat {
	if b.observed == 0 {
		return new(big.Rat).SetFrac(big.NewInt(1), big.NewInt(int64(b.K)))
	}
	return new(big.Rat).SetFrac(big.NewInt(1), CompositionCandidates(b.N, b.K))
}

// NodeBelief models the node-type SC case of Theorem 6.1: tags are
// Vernam-encrypted, so observing translated queries gives the
// attacker no information about whether a block satisfies a query
// captured by //a — the belief is pinned at its prior forever.
type NodeBelief struct {
	prior    *big.Rat
	observed int
}

// NewNodeBelief starts a tracker at the attacker's prior.
func NewNodeBelief(prior *big.Rat) *NodeBelief {
	return &NodeBelief{prior: new(big.Rat).Set(prior)}
}

// Observe records one observed query/response pair.
func (b *NodeBelief) Observe() { b.observed++ }

// Belief returns the (unchanged) belief.
func (b *NodeBelief) Belief() *big.Rat { return new(big.Rat).Set(b.prior) }
