// Package attack implements the paper's attack model (§3.3) — the
// frequency-based and size-based attacks of an honest-but-curious
// server with exact knowledge of domain values and occurrence
// frequencies — together with the candidate-database counting that
// the security theorems (4.1, 5.1, 5.2) rest on and the
// query-observation belief tracking of Theorem 6.1. The test suites
// use this package to validate every security claim computationally.
package attack

import "math/big"

// Factorial returns n!.
func Factorial(n int) *big.Int {
	return new(big.Int).MulRange(1, int64(n))
}

// Binomial returns C(n, k), or 0 when out of range.
func Binomial(n, k int) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// MultinomialCandidates is Theorem 4.1's candidate count: with k
// plaintext values of occurrence frequencies f_1..f_k encrypted into
// Σf_i pairwise-distinct ciphertexts (decoys make every ciphertext
// unique), the attacker faces
//
//	N = (Σ f_i)! / Π f_i!
//
// equally plausible assignments of ciphertexts to plaintexts. The
// paper's example: frequencies 3, 4, 5 give N = 27720.
func MultinomialCandidates(freqs []int) *big.Int {
	total := 0
	for _, f := range freqs {
		total += f
	}
	n := Factorial(total)
	for _, f := range freqs {
		n.Div(n, Factorial(f))
	}
	return n
}

// CompositionCandidates is the count shared by Theorems 5.1 and 5.2:
// the number of ways to partition n ordered items into k non-empty
// consecutive groups, C(n-1, k-1). For the structural index it
// counts the subtree shapes an encryption block's k grouped
// intervals could hide given n leaf nodes (Figure 5: n=7, k=3 gives
// 15); for the value index it counts the order-preserving partitions
// of n ciphertext values into k plaintext values (n=15, k=5 gives
// 1001).
func CompositionCandidates(n, k int) *big.Int {
	return Binomial(n-1, k-1)
}

// StructuralCandidates is Theorem 5.1's total over m encryption
// blocks: Π C(n_i - 1, k_i - 1), for blocks with n_i leaves
// represented by k_i intervals.
func StructuralCandidates(pairs [][2]int) *big.Int {
	total := big.NewInt(1)
	for _, p := range pairs {
		total.Mul(total, CompositionCandidates(p[0], p[1]))
	}
	return total
}
