package attack

import (
	"sort"
)

// The frequency-based attack (§3.3): the attacker knows, for an
// indexed leaf tag, the exact multiset of plaintext occurrence
// frequencies, observes ciphertext frequencies (from a
// deterministically encrypted database or from the value index), and
// tries to align them.

// CrackByOrder models the attack on plain order-preserving
// encryption without splitting: k distinct plaintexts map to k
// distinct ciphertexts in the same order, so the i-th smallest
// ciphertext IS the i-th smallest plaintext — a complete break that
// needs no frequency information at all. It returns the recovered
// plaintext-to-ciphertext mapping. Both inputs must be sorted
// ascending.
func CrackByOrder(plaintexts []string, ciphers []uint64) map[string]uint64 {
	if len(plaintexts) != len(ciphers) {
		return nil
	}
	out := make(map[string]uint64, len(ciphers))
	for i, p := range plaintexts {
		out[p] = ciphers[i]
	}
	return out
}

// CrackByFrequency models the frequency-matching attack on a
// deterministic encryption of individual values (§4.1's cautionary
// example): ciphertext classes whose occurrence frequency is unique
// among the plaintext frequencies are cracked outright. plainFreq
// maps plaintext value -> count; cipherFreq maps an opaque
// ciphertext identifier -> count. It returns the cracked pairs.
func CrackByFrequency(plainFreq map[string]int, cipherFreq map[string]int) map[string]string {
	// Invert both by frequency.
	plainByCount := map[int][]string{}
	for v, n := range plainFreq {
		plainByCount[n] = append(plainByCount[n], v)
	}
	cipherByCount := map[int][]string{}
	for c, n := range cipherFreq {
		cipherByCount[n] = append(cipherByCount[n], c)
	}
	cracked := map[string]string{}
	for n, ps := range plainByCount {
		cs := cipherByCount[n]
		if len(ps) == 1 && len(cs) == 1 {
			cracked[ps[0]] = cs[0]
		}
	}
	return cracked
}

// CountConsistentGroupings implements the adjacent-sum attack the
// scaling step defends against (§5.2.1): knowing the ordered
// plaintext frequencies f_1..f_k, the attacker groups adjacent
// ciphertext frequencies c_1..c_n left to right, trying to make
// group i sum to f_i. It returns the number of complete groupings —
// 0 means the observation is inconsistent with the attacker's
// knowledge (scaling changed the totals), 1 means a unique crack,
// more means ambiguity.
func CountConsistentGroupings(cipherFreqs, plainFreqs []int) int {
	memo := map[[2]int]int{}
	var rec func(ci, pi int) int
	rec = func(ci, pi int) int {
		if pi == len(plainFreqs) {
			if ci == len(cipherFreqs) {
				return 1
			}
			return 0
		}
		key := [2]int{ci, pi}
		if v, ok := memo[key]; ok {
			return v
		}
		total := 0
		sum := 0
		for j := ci; j < len(cipherFreqs); j++ {
			sum += cipherFreqs[j]
			if sum > plainFreqs[pi] {
				break
			}
			if sum == plainFreqs[pi] {
				total += rec(j+1, pi+1)
				break // frequencies are positive; longer groups only grow
			}
		}
		memo[key] = total
		return total
	}
	return rec(0, 0)
}

// SizeAttackSurvivors implements the size-based attack (§3.3): given
// the true encrypted database size and the sizes of candidate
// encrypted databases, it returns how many candidates survive (their
// size matches). Indistinguishability (Definition 3.1) demands that
// all candidates survive.
func SizeAttackSurvivors(trueSize int, candidateSizes []int) int {
	n := 0
	for _, s := range candidateSizes {
		if s == trueSize {
			n++
		}
	}
	return n
}

// SortedFreqs returns the values of a frequency map in ascending
// key order — the view an attacker extracts from an ordered index.
func SortedFreqs[K interface{ ~uint64 | ~int }](m map[K]int) []int {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]int, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}
