package attack

import (
	"testing"

	"repro/internal/core"
	"repro/internal/xmltree"
)

// Two candidate hospital databases that differ exactly in a
// protected association: in D, Betty has diarrhea and Cathy has
// leukemia; in D' the diseases are swapped. All values have matching
// lengths so the size-based attack gains nothing.
const candidateD = `
<hospital>
  <patient><pname>Betty</pname><SSN>763895</SSN><insurance coverage="1000000"><policy>34221</policy></insurance><treat><disease>diarrhea</disease><doctor>Smith</doctor></treat><age>35</age></patient>
  <patient><pname>Cathy</pname><SSN>276543</SSN><insurance coverage="2000000"><policy>26544</policy></insurance><treat><disease>leukemia</disease><doctor>Brown</doctor></treat><age>40</age></patient>
</hospital>`

const candidateDPrime = `
<hospital>
  <patient><pname>Betty</pname><SSN>763895</SSN><insurance coverage="1000000"><policy>34221</policy></insurance><treat><disease>leukemia</disease><doctor>Smith</doctor></treat><age>35</age></patient>
  <patient><pname>Cathy</pname><SSN>276543</SSN><insurance coverage="2000000"><policy>26544</policy></insurance><treat><disease>diarrhea</disease><doctor>Brown</doctor></treat><age>40</age></patient>
</hospital>`

var indSCs = []string{
	"//insurance",
	"//patient:(/pname, /SSN)",
	"//patient:(/pname, //disease)",
	"//treat:(/disease, /doctor)",
}

func hostPair(t *testing.T) (*core.System, *core.System) {
	t.Helper()
	d1, err := xmltree.ParseString(candidateD)
	if err != nil {
		t.Fatalf("parse D: %v", err)
	}
	d2, err := xmltree.ParseString(candidateDPrime)
	if err != nil {
		t.Fatalf("parse D': %v", err)
	}
	s1, err := core.Host(d1, indSCs, core.SchemeOpt, []byte("indist-key"))
	if err != nil {
		t.Fatalf("Host D: %v", err)
	}
	s2, err := core.Host(d2, indSCs, core.SchemeOpt, []byte("indist-key"))
	if err != nil {
		t.Fatalf("Host D': %v", err)
	}
	return s1, s2
}

// TestCandidateDatabasesIndistinguishable validates Definition 3.4
// computationally: two candidate databases differing only in a
// protected association produce (1) identical metadata M = M' up to
// the randomized ciphertexts, (2) equal sizes (size-based attack
// fails), and (3) identical value-index shapes (frequency-based
// attack fails).
func TestCandidateDatabasesIndistinguishable(t *testing.T) {
	s1, s2 := hostPair(t)
	db1, db2 := s1.HostedDB, s2.HostedDB

	// The plaintext residues are literally identical.
	if db1.Residue.String() != db2.Residue.String() {
		t.Errorf("residues differ:\n%s\nvs\n%s", db1.Residue.String(), db2.Residue.String())
	}
	// The DSI index tables are identical: same labels, same intervals.
	if db1.Table.NumEntries() != db2.Table.NumEntries() {
		t.Fatalf("DSI table entry counts differ")
	}
	for label, ivs1 := range db1.Table.ByTag {
		ivs2 := db2.Table.Lookup(label)
		if len(ivs1) != len(ivs2) {
			t.Errorf("label %s: %d vs %d entries", label, len(ivs1), len(ivs2))
			continue
		}
		for i := range ivs1 {
			if !ivs1[i].Equal(ivs2[i]) {
				t.Errorf("label %s entry %d differs", label, i)
			}
		}
	}
	// Block tables are identical.
	if len(db1.BlockReps) != len(db2.BlockReps) {
		t.Fatalf("block counts differ: %d vs %d", len(db1.BlockReps), len(db2.BlockReps))
	}
	for i := range db1.BlockReps {
		if !db1.BlockReps[i].Equal(db2.BlockReps[i]) {
			t.Errorf("block rep %d differs", i)
		}
		if len(db1.Blocks[i]) != len(db2.Blocks[i]) {
			t.Errorf("block %d ciphertext sizes differ: %d vs %d",
				i, len(db1.Blocks[i]), len(db2.Blocks[i]))
		}
	}
	// Size-based attack: total upload sizes are equal.
	if db1.ByteSize() != db2.ByteSize() {
		t.Errorf("sizes differ: %d vs %d", db1.ByteSize(), db2.ByteSize())
	}
	// Value-index shape: same number of entries and same multiset of
	// per-key frequencies per attribute (keys themselves differ when
	// plaintexts differ, but the attacker knows only frequencies).
	if len(db1.IndexEntries) != len(db2.IndexEntries) {
		t.Errorf("index entry counts differ: %d vs %d", len(db1.IndexEntries), len(db2.IndexEntries))
	}
}

// TestQueryObservationIndistinguishable validates Theorem 6.1
// empirically. The attacker observes only the translated (opaque)
// queries and answers, never plaintext queries, so the right
// statement is: the traffic produced by hosting D under workload W
// is shape-identical to hosting D' under the permuted workload W'
// (the permutation that maps D to D'). An observer therefore cannot
// tell which of the two candidate databases is hosted — the query
// stream keeps both hypotheses equally plausible.
func TestQueryObservationIndistinguishable(t *testing.T) {
	s1, s2 := hostPair(t)
	// Pairs (query on D, permuted query on D'): the permutation
	// swaps diarrhea <-> leukemia, exactly the difference between
	// the candidates.
	workload := [][2]string{
		{"//patient", "//patient"},
		{"//patient[pname='Betty']", "//patient[pname='Betty']"},
		{"//patient[pname='Betty'][.//disease='diarrhea']", "//patient[pname='Betty'][.//disease='leukemia']"},
		{"//patient[pname='Cathy'][.//disease='leukemia']", "//patient[pname='Cathy'][.//disease='diarrhea']"},
		{"//treat[disease='diarrhea']/doctor", "//treat[disease='leukemia']/doctor"},
		{"//patient//SSN", "//patient//SSN"},
		{"//patient[age>36]", "//patient[age>36]"},
	}
	for _, pair := range workload {
		_, _, tm1, err := s1.Query(pair[0])
		if err != nil {
			t.Fatalf("D query %s: %v", pair[0], err)
		}
		_, _, tm2, err := s2.Query(pair[1])
		if err != nil {
			t.Fatalf("D' query %s: %v", pair[1], err)
		}
		if tm1.AnswerBytes != tm2.AnswerBytes {
			t.Errorf("pair %v: answer sizes differ (%d vs %d)", pair, tm1.AnswerBytes, tm2.AnswerBytes)
		}
		if tm1.BlocksShipped != tm2.BlocksShipped {
			t.Errorf("pair %v: block counts differ (%d vs %d)", pair, tm1.BlocksShipped, tm2.BlocksShipped)
		}
	}
}

// TestCandidateCountsFromRealSystem computes the Theorem 4.1 and 5.2
// candidate counts for the hosted hospital database and checks they
// meet the "large" requirement.
func TestCandidateCountsFromRealSystem(t *testing.T) {
	d1, _ := xmltree.ParseString(candidateD)
	s1, err := core.Host(d1, indSCs, core.SchemeLeaf, []byte("count-key"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	// Every encrypted leaf tag contributes a multinomial factor.
	freqs := d1.LeafValueFrequencies()
	for tag := range s1.Scheme.CoverTags {
		var fs []int
		for _, n := range freqs[tag] {
			fs = append(fs, n)
		}
		if len(fs) == 0 {
			continue
		}
		c := MultinomialCandidates(fs)
		if c.Sign() <= 0 {
			t.Errorf("tag %s: candidate count %v", tag, c)
		}
	}
	// The value index after splitting has n > k distinct ciphertexts
	// for skewed attributes, giving C(n-1, k-1) > 1 candidates.
	entries := s1.HostedDB.IndexEntries
	if len(entries) == 0 {
		t.Fatalf("no index entries")
	}
}
