package attack

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/wire"
)

// TamperBackend is a byzantine hosting provider: it forwards every
// call to a real backend but can mutate or replay answers on the way
// back. The other files in this package attack confidentiality (what
// a curious server can infer); this one attacks integrity and
// freshness — what an actively malicious server can make the client
// accept. With the owner's Merkle commitment enabled
// (core.System.EnableIntegrity), every mutation modeled here must be
// caught client-side as authtree.ErrTampered before decryption.
type TamperBackend struct {
	Inner core.Backend

	mu sync.Mutex
	// mutate, when set, is applied to every live answer before it is
	// returned — dropping blocks, swapping ciphertexts, stripping
	// proofs.
	mutate func(*wire.Answer)
	// replay, when set, is returned for every Execute instead of the
	// live answer: the rollback attack, serving a stale-but-once-valid
	// answer after the owner has updated.
	replay *wire.Answer
	// record keeps a deep copy of the next live answer for later
	// replay.
	record bool
	// recorded is the snapshot taken while record was set.
	recorded *wire.Answer
}

// SetMutation installs (or, with nil, removes) an answer mutation.
func (t *TamperBackend) SetMutation(f func(*wire.Answer)) {
	t.mu.Lock()
	t.mutate = f
	t.mu.Unlock()
}

// RecordNext snapshots the next live answer for later replay.
func (t *TamperBackend) RecordNext() {
	t.mu.Lock()
	t.record = true
	t.mu.Unlock()
}

// ReplayRecorded switches the backend into rollback mode: every
// subsequent Execute returns the answer captured by RecordNext. It
// reports false when nothing was recorded.
func (t *TamperBackend) ReplayRecorded() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.recorded == nil {
		return false
	}
	t.replay = t.recorded
	return true
}

// StopTampering returns the backend to honest forwarding.
func (t *TamperBackend) StopTampering() {
	t.mu.Lock()
	t.mutate = nil
	t.replay = nil
	t.mu.Unlock()
}

// copyAnswer deep-copies an answer through its wire encoding so the
// stored snapshot can never alias live server state.
func copyAnswer(a *wire.Answer) *wire.Answer {
	enc, err := wire.MarshalAnswer(a)
	if err != nil {
		return nil
	}
	cp, err := wire.UnmarshalAnswer(enc)
	if err != nil {
		return nil
	}
	return cp
}

// Execute implements core.Backend with the configured tampering.
func (t *TamperBackend) Execute(ctx context.Context, q *wire.Query) (*wire.Answer, error) {
	t.mu.Lock()
	replay := t.replay
	t.mu.Unlock()
	if replay != nil {
		return copyAnswer(replay), nil
	}
	ans, err := t.Inner.Execute(ctx, q)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.record {
		t.recorded = copyAnswer(ans)
		t.record = false
	}
	mutate := t.mutate
	t.mu.Unlock()
	if mutate != nil {
		mutate(ans)
	}
	return ans, nil
}

// Extreme implements core.Backend (forwarded honestly; aggregate
// tampering goes through ExtremeProof, the only path a verifying
// client uses).
func (t *TamperBackend) Extreme(ctx context.Context, lo, hi uint64, max bool) (int, []byte, bool, error) {
	return t.Inner.Extreme(ctx, lo, hi, max)
}

// ExtremeProof implements core.ProofBackend when the inner backend
// does.
func (t *TamperBackend) ExtremeProof(ctx context.Context, lo, hi uint64, max bool) (*wire.ExtremeResult, error) {
	pb, ok := t.Inner.(core.ProofBackend)
	if !ok {
		return nil, context.Canceled
	}
	return pb.ExtremeProof(ctx, lo, hi, max)
}

// ApplyUpdate implements core.Backend (forwarded honestly: the
// rollback attack applies the update, then serves pre-update
// answers).
func (t *TamperBackend) ApplyUpdate(ctx context.Context, u *wire.Update) error {
	return t.Inner.ApplyUpdate(ctx, u)
}
