package attack

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/authtree"
	"repro/internal/core"
	"repro/internal/wire"
	"repro/internal/xmltree"
)

const tamperHospitalXML = `
<hospital>
  <patient>
    <pname>Betty</pname><SSN>763895</SSN>
    <insurance coverage="1000000"><policy>34221</policy></insurance>
    <treat><disease>diarrhea</disease><doctor>Smith</doctor></treat>
    <age>35</age>
  </patient>
  <patient>
    <pname>Matt</pname><SSN>276543</SSN>
    <insurance coverage="10000"><policy>26544</policy></insurance>
    <treat><disease>leukemia</disease><doctor>Walker</doctor></treat>
    <age>40</age>
  </patient>
</hospital>`

var tamperSCs = []string{
	"//insurance",
	"//patient:(/pname, /SSN)",
	"//patient:(/pname, //disease)",
	"//treat:(/disease, /doctor)",
}

// tamperedSystem hosts the hospital document with integrity enabled
// and a TamperBackend wrapped around the real in-process server.
func tamperedSystem(t *testing.T) (*core.System, *TamperBackend) {
	t.Helper()
	doc, err := xmltree.ParseString(tamperHospitalXML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sys, err := core.Host(doc, tamperSCs, core.SchemeOpt, []byte("tamper-test"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	if err := sys.EnableIntegrity(); err != nil {
		t.Fatalf("EnableIntegrity: %v", err)
	}
	tb := &TamperBackend{Inner: sys.Server}
	sys.UseBackend(tb)
	return sys, tb
}

const tamperQuery = "//patient[.//disease='leukemia']/pname"

// mustQueryHonest asserts the system answers correctly while the
// backend forwards honestly — every test starts here so a failure
// under tampering provably comes from the tampering.
func mustQueryHonest(t *testing.T, sys *core.System) {
	t.Helper()
	nodes, _, _, err := sys.Query(tamperQuery)
	if err != nil {
		t.Fatalf("honest query: %v", err)
	}
	if len(nodes) != 1 || nodes[0].LeafValue() != "Matt" {
		t.Fatalf("honest query wrong answer: %v", core.ResultStrings(nodes))
	}
}

// mustDetectTampering asserts the query fails with ErrTampered —
// not a wrong answer, not a generic error.
func mustDetectTampering(t *testing.T, sys *core.System, scenario string) {
	t.Helper()
	_, _, _, err := sys.Query(tamperQuery)
	if err == nil {
		t.Fatalf("%s: tampered answer accepted", scenario)
	}
	if !errors.Is(err, authtree.ErrTampered) {
		t.Fatalf("%s: error %v is not ErrTampered", scenario, err)
	}
}

// TestTamperDroppedBlock: the server omits one ciphertext block from
// the answer (and its ID, so the counts stay consistent). The proof
// still authenticates the fragments, which reference the missing
// block — omission must be detected, not silently shrink the answer.
func TestTamperDroppedBlock(t *testing.T) {
	sys, tb := tamperedSystem(t)
	mustQueryHonest(t, sys)

	dropped := false
	tb.SetMutation(func(a *wire.Answer) {
		if len(a.Blocks) == 0 {
			return
		}
		a.Blocks = a.Blocks[:len(a.Blocks)-1]
		a.BlockIDs = a.BlockIDs[:len(a.BlockIDs)-1]
		dropped = true
	})
	mustDetectTampering(t, sys, "dropped block")
	if !dropped {
		t.Fatal("query shipped no blocks; scenario exercised nothing")
	}

	tb.StopTampering()
	mustQueryHonest(t, sys)
}

// TestTamperSwappedCiphertext: the server swaps the ciphertexts of
// two sibling blocks while keeping their IDs. Each ciphertext is
// individually authentic, just bound to the wrong identity — exactly
// the substitution a per-block MAC without position binding misses.
func TestTamperSwappedCiphertext(t *testing.T) {
	sys, tb := tamperedSystem(t)
	mustQueryHonest(t, sys)

	swapped := false
	tb.SetMutation(func(a *wire.Answer) {
		if len(a.Blocks) < 2 {
			return
		}
		a.Blocks[0], a.Blocks[1] = a.Blocks[1], a.Blocks[0]
		swapped = true
	})
	_, _, _, err := sys.Query("//patient/pname")
	if err == nil {
		t.Fatal("swapped ciphertexts accepted")
	}
	if !errors.Is(err, authtree.ErrTampered) {
		t.Fatalf("swap: error %v is not ErrTampered", err)
	}
	if !swapped {
		t.Fatal("query shipped fewer than two blocks; scenario exercised nothing")
	}
}

// TestTamperProofStripped: the server returns the honest answer but
// without its verification object. A client that fell back to
// accepting proofless answers would be trivially bypassed.
func TestTamperProofStripped(t *testing.T) {
	sys, tb := tamperedSystem(t)
	mustQueryHonest(t, sys)
	tb.SetMutation(func(a *wire.Answer) { a.Proof = nil })
	mustDetectTampering(t, sys, "stripped proof")
}

// TestTamperRollbackReplay: the freshness attack. The server records
// a valid answer (with its then-valid proof), lets the owner apply an
// update — advancing the owner's root — and then replays the
// pre-update answer. The stale proof verifies against the OLD root
// only; the client's advanced commitment must reject it.
func TestTamperRollbackReplay(t *testing.T) {
	sys, tb := tamperedSystem(t)
	tb.RecordNext()
	mustQueryHonest(t, sys)

	if _, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", "cholera"); err != nil {
		t.Fatalf("update: %v", err)
	}
	// Honest post-update state answers the new query.
	nodes, _, _, err := sys.Query("//patient[.//disease='cholera']/pname")
	if err != nil {
		t.Fatalf("post-update query: %v", err)
	}
	if len(nodes) != 1 {
		t.Fatalf("update not visible: %v", core.ResultStrings(nodes))
	}

	if !tb.ReplayRecorded() {
		t.Fatal("no answer recorded for replay")
	}
	mustDetectTampering(t, sys, "rollback replay")
}

// TestTamperConcurrentDetection runs tampered queries from many
// goroutines at once: every one must fail with ErrTampered, with no
// data races between the verifier reads and the mutating backend
// (run with -race).
func TestTamperConcurrentDetection(t *testing.T) {
	sys, tb := tamperedSystem(t)
	mustQueryHonest(t, sys)
	tb.SetMutation(func(a *wire.Answer) {
		// Replace (never mutate in place): with an in-process backend
		// the answer's slices alias the server's stored blocks.
		for i, b := range a.Blocks {
			if len(b) == 0 {
				continue
			}
			flipped := append([]byte(nil), b...)
			flipped[0] ^= 0xFF
			a.Blocks[i] = flipped
		}
	})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, _, errs[i] = sys.Query(tamperQuery)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, authtree.ErrTampered) {
			t.Errorf("goroutine %d: error %v is not ErrTampered", i, err)
		}
	}
}
