// Package authtree is the authenticated-data-structure half of the
// DAS trust model: the paper's architecture (§2) protects
// confidentiality against the untrusted server, and this package
// adds integrity and freshness. The client commits to the hosted
// state with a Merkle tree built over a canonical leaf sequence
// (encrypted blocks, residue fragments, value-index buckets — see
// internal/wire's auth layer for the leaf schema), keeps only the
// root digest, and verifies every server response against it with a
// compact sibling-path proof. A response that was modified, spliced
// from another version, or rolled back to a pre-update state fails
// verification and surfaces as ErrTampered.
//
// The tree is built over data the server already sees, so it leaks
// nothing: the server can (and does) rebuild the identical tree from
// the uploaded database and serve proofs without holding any key.
package authtree

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cryptoprim"
)

// DigestSize is the byte width of every node digest (SHA-256).
const DigestSize = cryptoprim.DigestSize

// Digest is one Merkle node hash.
type Digest = cryptoprim.Digest

// ErrTampered reports a server response that failed integrity
// verification: the returned data was modified, a committed piece was
// omitted, or the server served a stale (pre-update) version of the
// database. It is terminal — retrying a byzantine server cannot
// succeed, so the remote retry policy never retries it and the
// circuit breaker trips immediately.
var ErrTampered = errors.New("authtree: response failed integrity verification (modified, omitted, or stale server state)")

// LeafHash hashes canonical leaf data into its leaf digest. The
// domain-separated primitives live in cryptoprim so the prefix
// discipline is defined next to the other crypto.
func LeafHash(data []byte) Digest {
	return cryptoprim.MerkleLeafHash(data)
}

func nodeHash(l, r Digest) Digest {
	return cryptoprim.MerkleNodeHash(l, r)
}

// Tree is a Merkle tree over a fixed leaf sequence. Levels are
// stored bottom-up; an odd node at the end of a level is promoted
// unchanged, so the shape is fully determined by the leaf count.
type Tree struct {
	levels [][]Digest // levels[0] = leaf digests, last level = [root]
}

// New builds a tree over pre-hashed leaf digests.
func New(leaves []Digest) *Tree {
	t := &Tree{}
	level := append([]Digest(nil), leaves...)
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([]Digest, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i]) // odd node promoted
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t
}

// NewFromData hashes raw leaf data and builds the tree.
func NewFromData(leafData [][]byte) *Tree {
	leaves := make([]Digest, len(leafData))
	for i, d := range leafData {
		leaves[i] = LeafHash(d)
	}
	return New(leaves)
}

// NumLeaves reports the leaf count.
func (t *Tree) NumLeaves() int {
	if len(t.levels) == 0 {
		return 0
	}
	return len(t.levels[0])
}

// Leaf returns the digest of leaf i.
func (t *Tree) Leaf(i int) Digest { return t.levels[0][i] }

// Leaves returns a copy of the leaf digest sequence (the compact
// client-side state: 32 bytes per leaf, enough to recompute the root
// after an update without holding any data).
func (t *Tree) Leaves() []Digest {
	return append([]Digest(nil), t.levels[0]...)
}

// Root returns the root digest. The root of an empty tree is the
// hash of empty leaf data, so it is still a binding commitment.
func (t *Tree) Root() Digest {
	if t.NumLeaves() == 0 {
		return LeafHash(nil)
	}
	return t.levels[len(t.levels)-1][0]
}

// Prove produces the multi-leaf membership proof for the given leaf
// indices: the sibling digests a verifier holding exactly those
// leaves needs, in the deterministic bottom-up, left-to-right order
// VerifyMulti consumes them. Duplicate indices are allowed; out of
// range ones are an error.
func (t *Tree) Prove(indices []int) ([]Digest, error) {
	n := t.NumLeaves()
	known := map[int]bool{}
	for _, idx := range indices {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("authtree: leaf index %d out of range [0,%d)", idx, n)
		}
		known[idx] = true
	}
	if len(known) == 0 {
		return nil, nil
	}
	var siblings []Digest
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		width := len(t.levels[lvl])
		idxs := sortedKeys(known)
		next := map[int]bool{}
		for i := 0; i < len(idxs); i++ {
			idx := idxs[i]
			sib := idx ^ 1
			if sib >= width {
				next[idx/2] = true // odd node promoted
				continue
			}
			if known[sib] {
				// Both halves known: handled once, at the left index.
				if idx&1 == 1 && known[idx-1] {
					continue
				}
			} else {
				siblings = append(siblings, t.levels[lvl][sib])
			}
			next[idx/2] = true
		}
		known = next
	}
	return siblings, nil
}

// LeafItem pairs a leaf index with its digest, for verification.
type LeafItem struct {
	Index  int
	Digest Digest
}

// VerifyMulti checks a multi-leaf proof: given the tree's total leaf
// count, the claimed (index, digest) pairs and the sibling sequence
// from Prove, it recomputes the root and compares. The leaf count is
// part of the client's trusted state, so a server cannot shift the
// tree shape. Returns nil on success and ErrTampered (wrapped with
// detail) on any mismatch.
func VerifyMulti(root Digest, numLeaves int, items []LeafItem, siblings []Digest) error {
	if numLeaves <= 0 {
		return fmt.Errorf("%w: empty tree cannot prove membership", ErrTampered)
	}
	known := map[int]Digest{}
	for _, it := range items {
		if it.Index < 0 || it.Index >= numLeaves {
			return fmt.Errorf("%w: leaf index %d out of range [0,%d)", ErrTampered, it.Index, numLeaves)
		}
		if d, dup := known[it.Index]; dup && d != it.Digest {
			return fmt.Errorf("%w: conflicting digests for leaf %d", ErrTampered, it.Index)
		}
		known[it.Index] = it.Digest
	}
	if len(known) == 0 {
		return fmt.Errorf("%w: proof covers no leaves", ErrTampered)
	}
	width := numLeaves
	pos := 0
	for width > 1 {
		idxs := make([]int, 0, len(known))
		for idx := range known {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		next := map[int]Digest{}
		for i := 0; i < len(idxs); i++ {
			idx := idxs[i]
			sib := idx ^ 1
			if sib >= width {
				next[idx/2] = known[idx]
				continue
			}
			var l, r Digest
			if sd, ok := known[sib]; ok {
				if idx&1 == 1 {
					continue // handled at the left index
				}
				l, r = known[idx], sd
			} else {
				if pos >= len(siblings) {
					return fmt.Errorf("%w: proof too short", ErrTampered)
				}
				sd := siblings[pos]
				pos++
				if idx&1 == 0 {
					l, r = known[idx], sd
				} else {
					l, r = sd, known[idx]
				}
			}
			next[idx/2] = nodeHash(l, r)
		}
		known = next
		width = (width + 1) / 2
	}
	if pos != len(siblings) {
		return fmt.Errorf("%w: %d unused sibling digests", ErrTampered, len(siblings)-pos)
	}
	if got := known[0]; got != root {
		return fmt.Errorf("%w: recomputed root %x does not match committed root %x", ErrTampered, got[:8], root[:8])
	}
	return nil
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
