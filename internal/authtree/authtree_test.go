package authtree

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func leafData(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestRootDeterministic(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 13, 256, 257} {
		a := NewFromData(leafData(n))
		b := NewFromData(leafData(n))
		if a.Root() != b.Root() {
			t.Fatalf("n=%d: same leaves, different roots", n)
		}
		if n > 1 {
			other := leafData(n)
			other[n/2] = []byte("changed")
			if NewFromData(other).Root() == a.Root() {
				t.Fatalf("n=%d: changed leaf, same root", n)
			}
		}
	}
}

func TestLeafVsNodeDomainSeparation(t *testing.T) {
	// A single promoted leaf must not equal the leaf hash of the
	// concatenated children (the second-preimage confusion the
	// prefixes exist to prevent).
	l0, l1 := LeafHash([]byte("a")), LeafHash([]byte("b"))
	interior := nodeHash(l0, l1)
	var concat []byte
	concat = append(concat, l0[:]...)
	concat = append(concat, l1[:]...)
	if interior == LeafHash(concat) {
		t.Fatal("interior hash collides with leaf hash of concatenation")
	}
}

func TestProveVerifyAllSubsets(t *testing.T) {
	// Exhaustive index subsets over small trees; every proof must
	// verify, and any altered leaf digest must fail.
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9} {
		tree := NewFromData(leafData(n))
		root := tree.Root()
		for mask := 1; mask < 1<<n; mask++ {
			var idxs []int
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					idxs = append(idxs, i)
				}
			}
			sib, err := tree.Prove(idxs)
			if err != nil {
				t.Fatalf("n=%d mask=%b: prove: %v", n, mask, err)
			}
			items := make([]LeafItem, len(idxs))
			for j, idx := range idxs {
				items[j] = LeafItem{Index: idx, Digest: tree.Leaf(idx)}
			}
			if err := VerifyMulti(root, n, items, sib); err != nil {
				t.Fatalf("n=%d mask=%b: verify: %v", n, mask, err)
			}
			bad := append([]LeafItem(nil), items...)
			bad[0].Digest = LeafHash([]byte("evil"))
			if err := VerifyMulti(root, n, bad, sib); !errors.Is(err, ErrTampered) {
				t.Fatalf("n=%d mask=%b: tampered leaf accepted (err=%v)", n, mask, err)
			}
		}
	}
}

func TestProveVerifyRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tree := NewFromData(leafData(1000))
	root := tree.Root()
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(20)
		idxs := make([]int, k)
		for i := range idxs {
			idxs[i] = rng.Intn(1000)
		}
		sib, err := tree.Prove(idxs)
		if err != nil {
			t.Fatal(err)
		}
		items := make([]LeafItem, k)
		for i, idx := range idxs {
			items[i] = LeafItem{Index: idx, Digest: tree.Leaf(idx)}
		}
		if err := VerifyMulti(root, 1000, items, sib); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Wrong index for a valid digest must fail.
		items[0].Index = (items[0].Index + 1) % 1000
		if err := VerifyMulti(root, 1000, items, sib); !errors.Is(err, ErrTampered) {
			t.Fatalf("trial %d: shifted index accepted", trial)
		}
	}
}

func TestVerifyRejectsMalformedProofs(t *testing.T) {
	tree := NewFromData(leafData(8))
	root := tree.Root()
	items := []LeafItem{{Index: 3, Digest: tree.Leaf(3)}}
	sib, _ := tree.Prove([]int{3})

	if err := VerifyMulti(root, 8, items, sib[:len(sib)-1]); !errors.Is(err, ErrTampered) {
		t.Errorf("short proof accepted: %v", err)
	}
	if err := VerifyMulti(root, 8, items, append(append([]Digest(nil), sib...), Digest{})); !errors.Is(err, ErrTampered) {
		t.Errorf("padded proof accepted: %v", err)
	}
	if err := VerifyMulti(root, 8, nil, sib); !errors.Is(err, ErrTampered) {
		t.Errorf("empty item set accepted: %v", err)
	}
	if err := VerifyMulti(root, 8, []LeafItem{{Index: 9, Digest: tree.Leaf(3)}}, sib); !errors.Is(err, ErrTampered) {
		t.Errorf("out-of-range index accepted: %v", err)
	}
	if err := VerifyMulti(root, 0, items, sib); !errors.Is(err, ErrTampered) {
		t.Errorf("zero leaf count accepted: %v", err)
	}
	conflicting := []LeafItem{
		{Index: 3, Digest: tree.Leaf(3)},
		{Index: 3, Digest: tree.Leaf(4)},
	}
	if err := VerifyMulti(root, 8, conflicting, sib); !errors.Is(err, ErrTampered) {
		t.Errorf("conflicting duplicate digests accepted: %v", err)
	}
	// Wrong tree size shifts the shape and must fail.
	if err := VerifyMulti(root, 9, items, sib); !errors.Is(err, ErrTampered) {
		t.Errorf("wrong leaf count accepted: %v", err)
	}
}

func TestProveOutOfRange(t *testing.T) {
	tree := NewFromData(leafData(4))
	if _, err := tree.Prove([]int{4}); err == nil {
		t.Error("out-of-range prove succeeded")
	}
	if _, err := tree.Prove([]int{-1}); err == nil {
		t.Error("negative prove succeeded")
	}
	sib, err := tree.Prove(nil)
	if err != nil || sib != nil {
		t.Errorf("empty prove = (%v, %v), want (nil, nil)", sib, err)
	}
}

func TestRollbackDetection(t *testing.T) {
	// A proof generated against version 1 must not verify against the
	// root of version 2 — the freshness property updates rely on.
	v1 := NewFromData(leafData(16))
	data := leafData(16)
	data[5] = []byte("updated")
	v2 := NewFromData(data)
	sib, _ := v1.Prove([]int{5})
	items := []LeafItem{{Index: 5, Digest: v1.Leaf(5)}}
	if err := VerifyMulti(v1.Root(), 16, items, sib); err != nil {
		t.Fatalf("proof against own version: %v", err)
	}
	if err := VerifyMulti(v2.Root(), 16, items, sib); !errors.Is(err, ErrTampered) {
		t.Fatalf("replayed pre-update proof accepted: %v", err)
	}
}

func BenchmarkBuildTree10k(b *testing.B) {
	data := leafData(10_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewFromData(data)
	}
}

func BenchmarkProveVerify16of10k(b *testing.B) {
	tree := NewFromData(leafData(10_000))
	root := tree.Root()
	idxs := make([]int, 16)
	items := make([]LeafItem, 16)
	for i := range idxs {
		idxs[i] = i * 601
		items[i] = LeafItem{Index: idxs[i], Digest: tree.Leaf(idxs[i])}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sib, err := tree.Prove(idxs)
		if err != nil {
			b.Fatal(err)
		}
		if err := VerifyMulti(root, 10_000, items, sib); err != nil {
			b.Fatal(err)
		}
	}
}
