package bench

import (
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/cryptoprim"
	"repro/internal/datagen"
	"repro/internal/dsi"
	"repro/internal/netsim"
	"repro/internal/opess"
	"repro/internal/sc"
	"repro/internal/scheme"
	"repro/internal/xmltree"
)

// Ablations quantify each defense the paper introduces by removing
// it and measuring what the attacker gains — and what each defense
// costs.

// DecoyAblationRow compares leaf-granularity encryption with and
// without decoys (§4.1) under the deterministic-encryption model the
// paper's frequency attack assumes: how many protected values the
// attacker cracks outright by matching occurrence frequencies.
type DecoyAblationRow struct {
	Tag            string
	DistinctValues int
	CrackedNoDecoy int
	CrackedDecoy   int
}

// DecoyAblation runs the §4.1 attack against the hospital-style
// dataset hosted with LeafNaive(decoys=false) and LeafNaive(true).
func DecoyAblation(doc *xmltree.Document, scSpecs []string) ([]DecoyAblationRow, error) {
	scs, err := sc.ParseAll(scSpecs)
	if err != nil {
		return nil, err
	}
	noDecoy, err := scheme.LeafNaive(doc, scs, false)
	if err != nil {
		return nil, err
	}
	withDecoy, err := scheme.LeafNaive(doc, scs, true)
	if err != nil {
		return nil, err
	}
	keys := cryptoprim.MustKeySet("ablation-decoy")

	// Deterministic-encryption model: ciphertext classes are the
	// distinct serialized block plaintexts (ECB-style); the attacker
	// matches class frequencies against known value frequencies.
	classes := func(s *scheme.Scheme) map[string]map[string]int {
		perTag := map[string]map[string]int{}
		var decoyCtr uint64
		for _, root := range s.BlockRoots {
			if !root.IsLeaf() {
				continue
			}
			tag := root.Tag
			pt := root.Clone()
			w := xmltree.NewElement("w")
			w.AppendChild(pt)
			if s.Decoy[root] {
				decoyCtr++
				w.AppendValue("_decoy", keys.RandomDecoy(decoyCtr))
			}
			m := perTag[tag]
			if m == nil {
				m = map[string]int{}
				perTag[tag] = m
			}
			m[xmltree.NewDocument(w).String()]++
		}
		return perTag
	}

	plainFreqs := doc.LeafValueFrequencies()
	var rows []DecoyAblationRow
	ndClasses := classes(noDecoy)
	dClasses := classes(withDecoy)
	for _, tag := range xmltree.SortedKeys(ndClasses) {
		pf := plainFreqs[tag]
		rows = append(rows, DecoyAblationRow{
			Tag:            tag,
			DistinctValues: len(pf),
			CrackedNoDecoy: len(attack.CrackByFrequency(pf, ndClasses[tag])),
			CrackedDecoy:   len(attack.CrackByFrequency(pf, dClasses[tag])),
		})
	}
	return rows, nil
}

// ScalingAblationRow compares the value index with and without
// scaling (§5.2.1) under the adjacent-sum attack: the number of
// groupings of adjacent ciphertext frequencies consistent with the
// attacker's exact plaintext knowledge (1 = unique crack, 0 =
// inconsistent, i.e. attack defeated).
type ScalingAblationRow struct {
	Tag               string
	GroupingsUnscaled int
	GroupingsScaled   int
	IndexEntriesPlain int // entries without scaling
	IndexEntriestotal int // entries with scaling (the cost of defense)
}

// ScalingAblation evaluates the adjacent-sum attack against each
// indexed attribute of the document.
func ScalingAblation(doc *xmltree.Document) ([]ScalingAblationRow, error) {
	keys := cryptoprim.MustKeySet("ablation-scaling")
	var rows []ScalingAblationRow
	freqs := doc.LeafValueFrequencies()
	for _, tag := range xmltree.SortedKeys(freqs) {
		freq := freqs[tag]
		if len(freq) < 2 {
			continue
		}
		// Skip attributes with singleton values: the §5.2.1 singleton
		// rule replicates a single occurrence into M index entries,
		// which already breaks the total-count invariant on its own —
		// this ablation isolates what SCALING adds for the attributes
		// where splitting alone preserves the totals.
		hasSingleton := false
		for _, n := range freq {
			if n == 1 {
				hasSingleton = true
				break
			}
		}
		if hasSingleton {
			continue
		}
		attr, err := opess.Build(tag, freq, keys)
		if err != nil {
			return nil, fmt.Errorf("ablation: %s: %w", tag, err)
		}
		var plain []int
		var unscaled, scaled []int
		entPlain, entScaled := 0, 0
		for _, v := range attr.Values() {
			plain = append(plain, freq[v])
			for _, c := range attr.ChunksOf(v) {
				unscaled = append(unscaled, c)
				scaled = append(scaled, c*attr.ScaleOf(v))
				entPlain += c
				entScaled += c * attr.ScaleOf(v)
			}
		}
		rows = append(rows, ScalingAblationRow{
			Tag:               tag,
			GroupingsUnscaled: attack.CountConsistentGroupings(unscaled, plain),
			GroupingsScaled:   attack.CountConsistentGroupings(scaled, plain),
			IndexEntriesPlain: entPlain,
			IndexEntriestotal: entScaled,
		})
	}
	return rows, nil
}

// GroupingAblationRow compares the DSI table with and without the
// §5.1.1 grouping of adjacent same-tag same-block intervals: table
// size (what the server stores) and the structural candidate count
// of Theorem 5.1 (what the attacker faces).
type GroupingAblationRow struct {
	EntriesGrouped   int
	EntriesUngrouped int
	// CandidatesLog10 approximates log10 of the Theorem 5.1
	// candidate product (0 when no grouping happened).
	CandidatesLog10 float64
}

// GroupingAblation measures grouping on a document hosted under the
// top scheme — one whole-document block, where every run of adjacent
// same-tag siblings is groupable.
func GroupingAblation(doc *xmltree.Document, scSpecs []string) (*GroupingAblationRow, error) {
	if _, err := sc.ParseAll(scSpecs); err != nil {
		return nil, err
	}
	s := scheme.Top(doc)
	keys := cryptoprim.MustKeySet("ablation-grouping")
	md := dsi.BuildMetadata(doc, s.BlockRoots, keys)
	grouped := md.Table.NumEntries()

	// Ungrouped size: one entry per element/attribute node.
	ungrouped := 0
	for _, n := range doc.Nodes() {
		if n.Kind != xmltree.Text {
			ungrouped++
		}
	}

	// Theorem 5.1 candidates: per block, C(n-1, k-1) with n leaf
	// nodes represented by k leaf-level intervals (grouped runs
	// collapse several leaves into one interval). A leaf-level
	// interval strictly contains no other table interval; with the
	// sorted laminar order, that is an interval not containing its
	// successor.
	var pairs [][2]int
	all := md.Table.AllIntervals()
	for _, root := range s.BlockRoots {
		leaves := 0
		root.Walk(func(n *xmltree.Node) bool {
			if n.Kind != xmltree.Text && n.IsLeaf() {
				leaves++
			}
			return true
		})
		k := 0
		inside := dsi.Within(all, md.Assignment[root])
		for i, iv := range inside {
			if i+1 == len(inside) || !iv.StrictlyContains(inside[i+1]) {
				k++
			}
		}
		if leaves > 1 && k >= 1 && k < leaves {
			pairs = append(pairs, [2]int{leaves, k})
		}
	}
	log10 := 0.0
	if len(pairs) > 0 {
		c := attack.StructuralCandidates(pairs)
		log10 = float64(c.BitLen()) * 0.30103 // log10(2^bits) upper bound
	}
	return &GroupingAblationRow{
		EntriesGrouped:   grouped,
		EntriesUngrouped: ungrouped,
		CandidatesLog10:  log10,
	}, nil
}

// LinkAblationRow compares total query time for top vs opt over the
// paper's LAN and a WAN: selective shipping matters more as the link
// slows.
type LinkAblationRow struct {
	Link     string
	Class    datagen.QueryClass
	TopTotal time.Duration
	OptTotal time.Duration
	Saving   float64 // (top-opt)/top
}

// LinkAblation runs the Ql workload under both link models.
func (s *Setup) LinkAblation() ([]LinkAblationRow, error) {
	var rows []LinkAblationRow
	links := []struct {
		name string
		link netsim.Link
	}{
		{"LAN-100Mbps", netsim.Paper},
		{"WAN-20Mbps", netsim.WAN},
	}
	for _, l := range links {
		for _, sysName := range []core.SchemeName{core.SchemeTop, core.SchemeOpt} {
			s.Systems[sysName].Link = l.link
		}
		var topT, optT time.Duration
		for _, q := range s.Queries(datagen.Ql) {
			tm, err := s.measure(s.Systems[core.SchemeTop], q)
			if err != nil {
				return nil, err
			}
			topT += tm.Total()
			tm, err = s.measure(s.Systems[core.SchemeOpt], q)
			if err != nil {
				return nil, err
			}
			optT += tm.Total()
		}
		saving := 0.0
		if topT > 0 {
			saving = float64(topT-optT) / float64(topT)
		}
		rows = append(rows, LinkAblationRow{
			Link: l.name, Class: datagen.Ql,
			TopTotal: topT, OptTotal: optT, Saving: saving,
		})
	}
	// Restore the default link.
	for _, sysName := range []core.SchemeName{core.SchemeTop, core.SchemeOpt} {
		s.Systems[sysName].Link = netsim.Paper
	}
	return rows, nil
}
