package bench

import (
	"testing"

	"repro/internal/datagen"
)

func TestDecoyAblation(t *testing.T) {
	doc := datagen.NASA(40, 21)
	rows, err := DecoyAblation(doc, datagen.NASASCs())
	if err != nil {
		t.Fatalf("DecoyAblation: %v", err)
	}
	if len(rows) == 0 {
		t.Fatalf("no rows")
	}
	crackedND, crackedD := 0, 0
	for _, r := range rows {
		crackedND += r.CrackedNoDecoy
		crackedD += r.CrackedDecoy
	}
	// §4.1: without decoys the frequency attack cracks values;
	// with decoys nothing is crackable (every ciphertext unique).
	if crackedND == 0 {
		t.Errorf("no-decoy hosting should be crackable; got 0 cracked")
	}
	if crackedD != 0 {
		t.Errorf("decoys on: %d values cracked, want 0", crackedD)
	}
}

func TestScalingAblation(t *testing.T) {
	doc := datagen.NASA(60, 22)
	rows, err := ScalingAblation(doc)
	if err != nil {
		t.Fatalf("ScalingAblation: %v", err)
	}
	if len(rows) == 0 {
		t.Fatalf("no rows")
	}
	consistentUnscaled, consistentScaled := 0, 0
	for _, r := range rows {
		if r.GroupingsUnscaled >= 1 {
			consistentUnscaled++
		}
		if r.GroupingsScaled >= 1 {
			consistentScaled++
		}
		if r.IndexEntriestotal < r.IndexEntriesPlain {
			t.Errorf("%s: scaling shrank the index", r.Tag)
		}
	}
	// Without scaling the true grouping is always recoverable.
	if consistentUnscaled != len(rows) {
		t.Errorf("unscaled: only %d/%d attributes sum-consistent", consistentUnscaled, len(rows))
	}
	// With scaling most attributes become inconsistent (a scale of
	// exactly 1 on every value can keep one consistent, rarely).
	if consistentScaled > len(rows)/2 {
		t.Errorf("scaled: %d/%d attributes still sum-consistent", consistentScaled, len(rows))
	}
}

func TestGroupingAblation(t *testing.T) {
	doc := datagen.NASA(50, 23)
	row, err := GroupingAblation(doc, datagen.NASASCs())
	if err != nil {
		t.Fatalf("GroupingAblation: %v", err)
	}
	if row.EntriesGrouped >= row.EntriesUngrouped {
		t.Errorf("grouping did not shrink the table: %d vs %d", row.EntriesGrouped, row.EntriesUngrouped)
	}
	if row.CandidatesLog10 <= 0 {
		t.Errorf("no structural candidates from grouping: %f", row.CandidatesLog10)
	}
}

func TestLinkAblation(t *testing.T) {
	s := smallSetup(t, "nasa")
	rows, err := s.LinkAblation()
	if err != nil {
		t.Fatalf("LinkAblation: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Saving <= 0 {
			t.Errorf("%s: saving %f, want > 0 (Ql is selective)", r.Link, r.Saving)
		}
	}
	// The ABSOLUTE gap must grow on the slow link: shipping less
	// saves more wall time when bytes are expensive. (The relative
	// saving can shrink: WAN latency floors even tiny queries.)
	lanGap := rows[0].TopTotal - rows[0].OptTotal
	wanGap := rows[1].TopTotal - rows[1].OptTotal
	if wanGap <= lanGap {
		t.Errorf("WAN gap %v <= LAN gap %v", wanGap, lanGap)
	}
}
