// Package bench is the experiment harness behind §7 of the paper:
// it builds the datasets, hosts them under every encryption scheme,
// runs the Qs/Qm/Ql workloads, and produces the rows of every table
// and figure in the evaluation section. Both cmd/xencbench (which
// prints the tables) and the repository's testing.B benchmarks are
// thin wrappers over this package.
package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/xmltree"
)

// Config selects a dataset and scale.
type Config struct {
	// Dataset is "nasa" or "xmark".
	Dataset string
	// SizeBytes is the target plaintext document size (the paper uses
	// 25 MB for Figure 9).
	SizeBytes int
	// Seed makes the workload deterministic.
	Seed uint64
	// QueriesPerClass is the number of queries per Qs/Qm/Ql class
	// (paper: 10).
	QueriesPerClass int
	// Trials per query; the reported value is the average after
	// dropping the minimum and maximum (paper: 5 trials).
	Trials int
	// PaperHW enables the paper-era client cost model: client
	// decryption time is simulated at PaperDecryptMBps instead of
	// measured, reproducing the 2006 regime where decryption
	// dominates (§7.2). See EXPERIMENTS.md.
	PaperHW bool
}

// PaperDecryptMBps calibrates the paper's 900 MHz Java client: a few
// megabytes per second of authenticated decryption.
const PaperDecryptMBps = 5.0

// DefaultConfig mirrors §7.1 at a configurable size.
func DefaultConfig(dataset string, sizeBytes int) Config {
	return Config{
		Dataset:         dataset,
		SizeBytes:       sizeBytes,
		Seed:            2006,
		QueriesPerClass: 10,
		Trials:          5,
	}
}

// Schemes is the §7.1 scheme lineup, coarse to fine.
var Schemes = []core.SchemeName{core.SchemeTop, core.SchemeSub, core.SchemeApp, core.SchemeOpt}

// Classes is the §7.1 query-class lineup.
var Classes = []datagen.QueryClass{datagen.Qs, datagen.Qm, datagen.Ql}

// Setup holds one dataset hosted under every scheme.
type Setup struct {
	Config  Config
	Doc     *xmltree.Document
	SCs     []string
	Systems map[core.SchemeName]*core.System
}

// NewSetup generates the dataset and hosts it under all four schemes.
func NewSetup(cfg Config) (*Setup, error) {
	var doc *xmltree.Document
	var scs []string
	switch cfg.Dataset {
	case "nasa":
		doc = datagen.NASAToSize(cfg.SizeBytes, cfg.Seed)
		scs = datagen.NASASCs()
	case "xmark":
		doc = datagen.XMarkToSize(cfg.SizeBytes, cfg.Seed)
		scs = datagen.XMarkSCs()
	default:
		return nil, fmt.Errorf("bench: unknown dataset %q", cfg.Dataset)
	}
	s := &Setup{Config: cfg, Doc: doc, SCs: scs, Systems: map[core.SchemeName]*core.System{}}
	for _, name := range Schemes {
		sys, err := core.Host(doc, scs, name, []byte("bench-"+string(name)))
		if err != nil {
			return nil, fmt.Errorf("bench: host %s: %w", name, err)
		}
		if cfg.PaperHW {
			sys.SimDecryptMBps = PaperDecryptMBps
		}
		// The paper's §7 numbers come from single-threaded hardware;
		// pin the reproduction to width 1 so measured columns stay
		// comparable. Benchmark*Parallel widens the pools explicitly.
		sys.Client.SetParallelism(1)
		if l, ok := sys.Server.(core.Local); ok {
			l.S.SetParallelism(1)
			// The §7 experiments measure the cold query pipeline —
			// parse, resolve, match, decrypt — not cache hits. Repeated
			// trials of the same query would otherwise all be served
			// from the answer cache.
			l.S.SetCaching(false)
		}
		s.Systems[name] = sys
	}
	return s, nil
}

// Queries returns the workload of one class.
func (s *Setup) Queries(class datagen.QueryClass) []string {
	return datagen.Queries(s.Doc, class, s.Config.QueriesPerClass, s.Config.Seed+uint64(class))
}

// measure runs one query cfg.Trials times and returns the
// trimmed-mean timings (min and max trials dropped, as in §7.1).
func (s *Setup) measure(sys *core.System, q string) (core.Timings, error) {
	trials := s.Config.Trials
	if trials < 1 {
		trials = 1
	}
	all := make([]core.Timings, 0, trials)
	for t := 0; t < trials; t++ {
		_, _, tm, err := sys.Query(q)
		if err != nil {
			return core.Timings{}, fmt.Errorf("query %s: %w", q, err)
		}
		all = append(all, tm)
	}
	return trimmedMean(all), nil
}

func (s *Setup) measureNaive(sys *core.System, q string) (core.Timings, error) {
	trials := s.Config.Trials
	if trials < 1 {
		trials = 1
	}
	all := make([]core.Timings, 0, trials)
	for t := 0; t < trials; t++ {
		_, _, tm, err := sys.NaiveQuery(q)
		if err != nil {
			return core.Timings{}, fmt.Errorf("naive %s: %w", q, err)
		}
		all = append(all, tm)
	}
	return trimmedMean(all), nil
}

// trimmedMean averages the timings after dropping the trials with
// the smallest and largest totals (when there are at least 3).
func trimmedMean(all []core.Timings) core.Timings {
	if len(all) >= 3 {
		mn, mx := 0, 0
		for i, tm := range all {
			if tm.Total() < all[mn].Total() {
				mn = i
			}
			if tm.Total() > all[mx].Total() {
				mx = i
			}
		}
		var kept []core.Timings
		for i, tm := range all {
			if i != mn && i != mx {
				kept = append(kept, tm)
			}
		}
		if len(kept) > 0 {
			all = kept
		}
	}
	var sum core.Timings
	for _, tm := range all {
		sum.ClientTranslate += tm.ClientTranslate
		sum.ServerExec += tm.ServerExec
		sum.Transmit += tm.Transmit
		sum.ClientDecrypt += tm.ClientDecrypt
		sum.ClientPost += tm.ClientPost
		sum.AnswerBytes += tm.AnswerBytes
		sum.BlocksShipped += tm.BlocksShipped
	}
	n := time.Duration(len(all))
	sum.ClientTranslate /= n
	sum.ServerExec /= n
	sum.Transmit /= n
	sum.ClientDecrypt /= n
	sum.ClientPost /= n
	sum.AnswerBytes /= len(all)
	sum.BlocksShipped /= len(all)
	return sum
}

// average accumulates trimmed means over a workload.
func average(ts []core.Timings) core.Timings {
	if len(ts) == 0 {
		return core.Timings{}
	}
	var sum core.Timings
	for _, tm := range ts {
		sum.ClientTranslate += tm.ClientTranslate
		sum.ServerExec += tm.ServerExec
		sum.Transmit += tm.Transmit
		sum.ClientDecrypt += tm.ClientDecrypt
		sum.ClientPost += tm.ClientPost
		sum.AnswerBytes += tm.AnswerBytes
		sum.BlocksShipped += tm.BlocksShipped
	}
	n := time.Duration(len(ts))
	sum.ClientTranslate /= n
	sum.ServerExec /= n
	sum.Transmit /= n
	sum.ClientDecrypt /= n
	sum.ClientPost /= n
	sum.AnswerBytes /= len(ts)
	sum.BlocksShipped /= len(ts)
	return sum
}
