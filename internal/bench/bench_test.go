package bench

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
)

// smallSetup builds a fast, deterministic setup shared by the tests.
func smallSetup(t *testing.T, dataset string) *Setup {
	t.Helper()
	cfg := DefaultConfig(dataset, 60_000)
	cfg.QueriesPerClass = 4
	cfg.Trials = 1
	s, err := NewSetup(cfg)
	if err != nil {
		t.Fatalf("NewSetup: %v", err)
	}
	return s
}

func TestNewSetupRejectsUnknownDataset(t *testing.T) {
	if _, err := NewSetup(DefaultConfig("bogus", 1000)); err == nil {
		t.Errorf("unknown dataset accepted")
	}
}

func TestDivisionOfWorkShape(t *testing.T) {
	s := smallSetup(t, "nasa")
	rows, err := s.DivisionOfWork()
	if err != nil {
		t.Fatalf("DivisionOfWork: %v", err)
	}
	if len(rows) != len(Schemes)*len(Classes) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Schemes)*len(Classes))
	}
	byKey := map[core.SchemeName]map[datagen.QueryClass]DivisionRow{}
	for _, r := range rows {
		if byKey[r.Scheme] == nil {
			byKey[r.Scheme] = map[datagen.QueryClass]DivisionRow{}
		}
		byKey[r.Scheme][r.Class] = r
		if r.Total() <= 0 {
			t.Errorf("%s/%v: zero total", r.Scheme, r.Class)
		}
	}
	// §7.4's observation holds for the selective classes: leaf-level
	// queries ship far less under opt than under top (Qs full scans
	// ship the whole database under every scheme, so they are
	// excluded — see EXPERIMENTS.md).
	topQl := byKey[core.SchemeTop][datagen.Ql]
	optQl := byKey[core.SchemeOpt][datagen.Ql]
	if optQl.AnswerBytes >= topQl.AnswerBytes {
		t.Errorf("Ql: opt ships %d bytes >= top %d", optQl.AnswerBytes, topQl.AnswerBytes)
	}
}

func TestOursVsNaiveRatios(t *testing.T) {
	s := smallSetup(t, "nasa")
	rows, err := s.OursVsNaive()
	if err != nil {
		t.Fatalf("OursVsNaive: %v", err)
	}
	for _, r := range rows {
		if r.Ratio <= 0 {
			t.Errorf("%s/%v: ratio %f", r.Scheme, r.Class, r.Ratio)
		}
		// §7.3: for opt/app on the selective leaf class, the method
		// must beat naive decisively; on full-scan classes it must at
		// least not be much worse (everything ships either way).
		if (r.Scheme == core.SchemeOpt || r.Scheme == core.SchemeApp) && r.Class == datagen.Ql {
			if r.Ratio >= 1.0 {
				t.Errorf("%s/%v: selective (%v) not faster than naive (%v)",
					r.Scheme, r.Class, r.Ours, r.Naive)
			}
		}
		// Full-scan classes can exceed naive (join work + envelope
		// overhead) at tiny document sizes; bound the damage loosely —
		// wall-clock under instrumentation (e.g. -cover) is noisy.
		if r.Ratio > 3.0 {
			t.Errorf("%s/%v: selective method %.2fx worse than naive", r.Scheme, r.Class, r.Ratio)
		}
	}
}

func TestEncryptionCostShape(t *testing.T) {
	s := smallSetup(t, "xmark")
	rows := s.EncryptionCost()
	byScheme := map[core.SchemeName]EncCostRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
		if r.EncryptTime <= 0 || r.HostedBytes <= 0 {
			t.Errorf("%s: empty cost row %+v", r.Scheme, r)
		}
	}
	// §7.4: sub produces more encrypted bytes than opt (larger
	// blocks, same count order), and opt's scheme size (node count)
	// is minimal among the secure schemes.
	if byScheme[core.SchemeSub].SchemeSize <= byScheme[core.SchemeOpt].SchemeSize {
		t.Errorf("sub scheme size %d <= opt %d", byScheme[core.SchemeSub].SchemeSize, byScheme[core.SchemeOpt].SchemeSize)
	}
	if byScheme[core.SchemeApp].SchemeSize > 2*byScheme[core.SchemeOpt].SchemeSize {
		t.Errorf("app scheme size %d > 2x opt %d", byScheme[core.SchemeApp].SchemeSize, byScheme[core.SchemeOpt].SchemeSize)
	}
	if byScheme[core.SchemeTop].SchemeSize < byScheme[core.SchemeOpt].SchemeSize {
		t.Errorf("top encrypts fewer nodes than opt?")
	}
}

func TestSavingRatiosShape(t *testing.T) {
	s := smallSetup(t, "nasa")
	rows, err := s.DivisionOfWork()
	if err != nil {
		t.Fatalf("DivisionOfWork: %v", err)
	}
	savings := SavingRatios(rows)
	if len(savings) != len(Classes) {
		t.Fatalf("savings rows = %d", len(savings))
	}
	byClass := map[datagen.QueryClass]SavingRow{}
	for _, r := range savings {
		byClass[r.Class] = r
		if r.SoT > 1 || r.SaT > 1 || r.SoS > 1 || r.SaS > 1 {
			t.Errorf("class %v: ratio above 1: %+v", r.Class, r)
		}
	}
	// Figure 10: savings over top grow toward the leaves, and are
	// decisively positive at Ql.
	if byClass[datagen.Ql].SoT <= 0 {
		t.Errorf("Ql: So/t = %f, want > 0", byClass[datagen.Ql].SoT)
	}
	if byClass[datagen.Ql].SoT < byClass[datagen.Qs].SoT {
		t.Errorf("So/t should grow toward leaves: Qs %f vs Ql %f",
			byClass[datagen.Qs].SoT, byClass[datagen.Ql].SoT)
	}
}

func TestFig6Reproduction(t *testing.T) {
	input, output, err := Fig6()
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if len(input) != 6 {
		t.Fatalf("input bars = %d", len(input))
	}
	if len(output) <= len(input) {
		t.Fatalf("splitting should expand the domain: %d -> %d", len(input), len(output))
	}
	// Input skew: max/min >= 4 (34 vs 7). Output: max/min <= 1.5
	// (chunks are m-1..m+1 for m >= 3... up to (m+1)/(m-1)).
	inMax, inMin := 0, 1<<30
	for _, r := range input {
		if r.Count > inMax {
			inMax = r.Count
		}
		if r.Count < inMin {
			inMin = r.Count
		}
	}
	outMax, outMin := 0, 1<<30
	for _, r := range output {
		if r.Count > outMax {
			outMax = r.Count
		}
		if r.Count < outMin {
			outMin = r.Count
		}
	}
	if float64(inMax)/float64(inMin) < 4 {
		t.Errorf("input not skewed: %d/%d", inMax, inMin)
	}
	if float64(outMax)/float64(outMin) > 2 {
		t.Errorf("output not flat: %d/%d", outMax, outMin)
	}
}

func TestTrimmedMean(t *testing.T) {
	mk := func(total time.Duration) core.Timings {
		return core.Timings{ServerExec: total}
	}
	got := trimmedMean([]core.Timings{mk(1), mk(100), mk(10), mk(12), mk(14)})
	// drops 1 and 100; mean of 10, 12, 14 = 12
	if got.ServerExec != 12 {
		t.Errorf("trimmedMean = %v, want 12ns", got.ServerExec)
	}
	// fewer than 3 trials: plain mean
	got = trimmedMean([]core.Timings{mk(10), mk(20)})
	if got.ServerExec != 15 {
		t.Errorf("mean of two = %v", got.ServerExec)
	}
}
