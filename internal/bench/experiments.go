package bench

import (
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/cryptoprim"
	"repro/internal/datagen"
	"repro/internal/opess"
)

// DivisionRow is one row of experiment E1/E4 (§7.2 and Figure 9):
// the per-stage cost of one (scheme, query class) cell, averaged
// over the class's queries.
type DivisionRow struct {
	Scheme core.SchemeName
	Class  datagen.QueryClass

	ClientTranslate time.Duration
	ServerExec      time.Duration
	Transmit        time.Duration
	ClientDecrypt   time.Duration
	ClientPost      time.Duration
	AnswerBytes     int
	BlocksShipped   int
}

// Total is the end-to-end query evaluation time of the row.
func (r DivisionRow) Total() time.Duration {
	return r.ClientTranslate + r.ServerExec + r.Transmit + r.ClientDecrypt + r.ClientPost
}

// DivisionOfWork runs experiment E1/E4: for every scheme and query
// class, the average per-stage cost (Figure 9's three panels are the
// Qs/Qm/Ql slices of this table).
func (s *Setup) DivisionOfWork() ([]DivisionRow, error) {
	var rows []DivisionRow
	for _, scheme := range Schemes {
		sys := s.Systems[scheme]
		for _, class := range Classes {
			var ts []core.Timings
			for _, q := range s.Queries(class) {
				tm, err := s.measure(sys, q)
				if err != nil {
					return nil, err
				}
				ts = append(ts, tm)
			}
			avg := average(ts)
			rows = append(rows, DivisionRow{
				Scheme:          scheme,
				Class:           class,
				ClientTranslate: avg.ClientTranslate,
				ServerExec:      avg.ServerExec,
				Transmit:        avg.Transmit,
				ClientDecrypt:   avg.ClientDecrypt,
				ClientPost:      avg.ClientPost,
				AnswerBytes:     avg.AnswerBytes,
				BlocksShipped:   avg.BlocksShipped,
			})
		}
	}
	return rows, nil
}

// NaiveRow is one row of experiment E2 (§7.3): our method versus the
// ship-everything baseline.
type NaiveRow struct {
	Scheme core.SchemeName
	Class  datagen.QueryClass
	Ours   time.Duration
	Naive  time.Duration
	// Ratio = Ours / Naive; the paper reports 11%–28% for
	// opt/app/sub and ~1.0 for top.
	Ratio float64
}

// OursVsNaive runs experiment E2.
func (s *Setup) OursVsNaive() ([]NaiveRow, error) {
	var rows []NaiveRow
	for _, scheme := range Schemes {
		sys := s.Systems[scheme]
		for _, class := range Classes {
			var ours, naive time.Duration
			qs := s.Queries(class)
			for _, q := range qs {
				tm, err := s.measure(sys, q)
				if err != nil {
					return nil, err
				}
				ours += tm.Total()
				nm, err := s.measureNaive(sys, q)
				if err != nil {
					return nil, err
				}
				naive += nm.Total()
			}
			ours /= time.Duration(len(qs))
			naive /= time.Duration(len(qs))
			ratio := 0.0
			if naive > 0 {
				ratio = float64(ours) / float64(naive)
			}
			rows = append(rows, NaiveRow{Scheme: scheme, Class: class, Ours: ours, Naive: naive, Ratio: ratio})
		}
	}
	return rows, nil
}

// EncCostRow is one row of experiment E3 (§7.4's encryption-cost
// measurements): time to encrypt and resulting hosted size per
// scheme.
type EncCostRow struct {
	Scheme      core.SchemeName
	EncryptTime time.Duration
	// HostedBytes is the full upload: ciphertext + residue + DSI
	// tables + value index.
	HostedBytes int
	// CipherBytes is the encrypted document alone (the paper's §7.4
	// size metric).
	CipherBytes int
	NumBlocks   int
	SchemeSize  int // Definition 4.1 node count
}

// EncryptionCost runs experiment E3 from the already-hosted systems.
func (s *Setup) EncryptionCost() []EncCostRow {
	var rows []EncCostRow
	for _, scheme := range Schemes {
		sys := s.Systems[scheme]
		cipher := 0
		for _, b := range sys.HostedDB.Blocks {
			cipher += len(b)
		}
		rows = append(rows, EncCostRow{
			Scheme:      scheme,
			EncryptTime: sys.EncryptTime,
			HostedBytes: sys.HostedDB.ByteSize(),
			CipherBytes: cipher,
			NumBlocks:   sys.Scheme.NumBlocks(),
			SchemeSize:  sys.Scheme.Size(),
		})
	}
	return rows
}

// SavingRow is one row of experiment E5 (Figure 10): the saving
// ratios of the app and opt schemes over top and sub, per query
// class. S(x/y) = (Ty - Tx) / Ty.
type SavingRow struct {
	Class datagen.QueryClass
	SaT   float64 // app over top
	SaS   float64 // app over sub
	SoT   float64 // opt over top
	SoS   float64 // opt over sub
}

// SavingRatios runs experiment E5 from a DivisionOfWork result.
func SavingRatios(rows []DivisionRow) []SavingRow {
	total := map[core.SchemeName]map[datagen.QueryClass]time.Duration{}
	for _, r := range rows {
		if total[r.Scheme] == nil {
			total[r.Scheme] = map[datagen.QueryClass]time.Duration{}
		}
		total[r.Scheme][r.Class] = r.Total()
	}
	ratio := func(x, y time.Duration) float64 {
		if y <= 0 {
			return 0
		}
		return float64(y-x) / float64(y)
	}
	var out []SavingRow
	for _, class := range Classes {
		out = append(out, SavingRow{
			Class: class,
			SaT:   ratio(total[core.SchemeApp][class], total[core.SchemeTop][class]),
			SaS:   ratio(total[core.SchemeApp][class], total[core.SchemeSub][class]),
			SoT:   ratio(total[core.SchemeOpt][class], total[core.SchemeTop][class]),
			SoS:   ratio(total[core.SchemeOpt][class], total[core.SchemeSub][class]),
		})
	}
	return out
}

// Fig6Row is one bar of experiment E6 (Figure 6): a value and its
// occurrence count, before or after the OPESS transform.
type Fig6Row struct {
	Label string
	Count int
}

// Fig6 reproduces Figure 6: the paper's skewed input distribution
// and the near-flat ciphertext distribution OPESS maps it to.
func Fig6() (input, output []Fig6Row, err error) {
	freq := map[string]int{
		"1001": 21, "932": 8, "23": 26, "77": 7, "90": 34, "12": 13,
	}
	keys := cryptoprim.MustKeySet("fig6")
	attr, err := opess.Build("val", freq, keys)
	if err != nil {
		return nil, nil, err
	}
	for _, v := range attr.Values() {
		input = append(input, Fig6Row{Label: v, Count: freq[v]})
		for i, chunk := range attr.ChunksOf(v) {
			output = append(output, Fig6Row{
				Label: "E(" + v + ",k" + strconv.Itoa(i+1) + ")",
				Count: chunk,
			})
		}
	}
	sort.SliceStable(input, func(i, j int) bool { return input[i].Count > input[j].Count })
	return input, output, nil
}
