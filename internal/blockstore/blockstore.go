// Package blockstore stores ciphertext blocks by ID — the per-block
// half of the durable-storage split (ROADMAP item 3). The hosted
// database's big immutable pieces (residue, DSI tables, index
// metadata) live in the snapshot file; the blocks, which updates
// rewrite piecemeal, live here so a checkpoint rewrites only what
// changed instead of the whole multi-megabyte upload.
//
// The file-backed store keeps one CRC-framed file per block and
// replaces it atomically (tmp + fsync + rename + dir fsync), so a
// crash leaves either the old block or the new one, never a tear —
// and a torn tmp file is swept on open. A flipped bit inside a block
// file fails the CRC on read and surfaces as ErrCorruptBlock, the
// signal the recovery manager turns into a quarantine.
package blockstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/faultfs"
)

// Store is get/put/delete of ciphertext blocks by ID.
type Store interface {
	// Get returns the block's ciphertext; os.ErrNotExist if absent,
	// ErrCorruptBlock if present but damaged.
	Get(id int) ([]byte, error)
	// Put durably replaces one block.
	Put(id int, ct []byte) error
	// PutBatch durably replaces several blocks with one directory
	// fsync amortized over the batch.
	PutBatch(blocks map[int][]byte) error
	// Delete removes a block; deleting an absent block is not an error.
	Delete(id int) error
	// LoadAll reads every stored block. Damage in any block fails the
	// whole load with ErrCorruptBlock (wrapped with the block ID).
	LoadAll() (map[int][]byte, error)
}

// ErrCorruptBlock means a block file's framing or checksum is
// invalid: disk damage, not a crash artifact (atomic replacement
// never leaves a torn committed block).
var ErrCorruptBlock = errors.New("blockstore: block corrupt")

var (
	blkMagic = []byte("SXBK")
	crcTable = crc32.MakeTable(crc32.Castagnoli)
)

const (
	blkExt    = ".sxb"
	tmpSuffix = ".tmp"
	blkHeader = 8 // magic + crc32
)

// Files is the file-backed Store.
type Files struct {
	dir string
	fs  faultfs.FS
}

// Open prepares dir as a block store, creating it if needed and
// sweeping tmp files a crash left behind (they were never renamed
// into place, so they are not part of any committed state).
func Open(dir string, fs faultfs.FS) (*Files, error) {
	if fs == nil {
		fs = faultfs.OS{}
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blockstore: mkdir: %w", err)
	}
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("blockstore: scan: %w", err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), tmpSuffix) {
			if err := fs.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, fmt.Errorf("blockstore: sweep tmp: %w", err)
			}
		}
	}
	return &Files{dir: dir, fs: fs}, nil
}

func blkName(id int) string { return fmt.Sprintf("blk-%08d%s", id, blkExt) }

func parseBlkName(name string) (int, bool) {
	if !strings.HasPrefix(name, "blk-") || !strings.HasSuffix(name, blkExt) {
		return 0, false
	}
	var id int
	if _, err := fmt.Sscanf(name, "blk-%08d.sxb", &id); err != nil || id < 0 {
		return 0, false
	}
	return id, true
}

func frame(ct []byte) []byte {
	out := make([]byte, blkHeader+len(ct))
	copy(out, blkMagic)
	binary.LittleEndian.PutUint32(out[4:], crc32.Checksum(ct, crcTable))
	copy(out[blkHeader:], ct)
	return out
}

func unframe(id int, data []byte) ([]byte, error) {
	if len(data) < blkHeader || string(data[:4]) != string(blkMagic) {
		return nil, fmt.Errorf("%w: block %d: bad framing", ErrCorruptBlock, id)
	}
	ct := data[blkHeader:]
	if crc32.Checksum(ct, crcTable) != binary.LittleEndian.Uint32(data[4:]) {
		return nil, fmt.Errorf("%w: block %d: checksum mismatch", ErrCorruptBlock, id)
	}
	return ct, nil
}

func (s *Files) Get(id int) ([]byte, error) {
	data, err := s.fs.ReadFile(filepath.Join(s.dir, blkName(id)))
	if err != nil {
		return nil, err
	}
	return unframe(id, data)
}

// writeTmp writes and fsyncs the block's tmp file, leaving the
// rename to the caller.
func (s *Files) writeTmp(id int, ct []byte) (string, error) {
	tmp := filepath.Join(s.dir, blkName(id)+tmpSuffix)
	f, err := s.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("blockstore: block %d: %w", id, err)
	}
	if _, err := f.Write(frame(ct)); err != nil {
		f.Close()
		return "", fmt.Errorf("blockstore: block %d: %w", id, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", fmt.Errorf("blockstore: block %d: sync: %w", id, err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("blockstore: block %d: close: %w", id, err)
	}
	return tmp, nil
}

func (s *Files) Put(id int, ct []byte) error {
	return s.PutBatch(map[int][]byte{id: ct})
}

func (s *Files) PutBatch(blocks map[int][]byte) error {
	if len(blocks) == 0 {
		return nil
	}
	ids := make([]int, 0, len(blocks))
	for id := range blocks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	// Stage every block durably, then rename them all, then one
	// directory fsync commits the batch. A crash mid-batch leaves a
	// mix of old and new blocks — safe, because the caller's WAL
	// replay rewrites every block the interrupted checkpoint touched.
	for _, id := range ids {
		tmp, err := s.writeTmp(id, blocks[id])
		if err != nil {
			return err
		}
		if err := s.fs.Rename(tmp, filepath.Join(s.dir, blkName(id))); err != nil {
			return fmt.Errorf("blockstore: block %d: rename: %w", id, err)
		}
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("blockstore: commit batch: %w", err)
	}
	return nil
}

func (s *Files) Delete(id int) error {
	err := s.fs.Remove(filepath.Join(s.dir, blkName(id)))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("blockstore: delete %d: %w", id, err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("blockstore: delete %d: %w", id, err)
	}
	return nil
}

func (s *Files) LoadAll() (map[int][]byte, error) {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("blockstore: scan: %w", err)
	}
	out := map[int][]byte{}
	for _, e := range ents {
		id, ok := parseBlkName(e.Name())
		if !ok {
			continue
		}
		ct, err := s.Get(id)
		if err != nil {
			return nil, err
		}
		out[id] = ct
	}
	return out, nil
}

// Mem is an in-memory Store for tests. Not safe for concurrent use.
type Mem struct {
	blocks map[int][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{blocks: map[int][]byte{}} }

func (m *Mem) Get(id int) ([]byte, error) {
	ct, ok := m.blocks[id]
	if !ok {
		return nil, os.ErrNotExist
	}
	return ct, nil
}

func (m *Mem) Put(id int, ct []byte) error {
	m.blocks[id] = append([]byte(nil), ct...)
	return nil
}

func (m *Mem) PutBatch(blocks map[int][]byte) error {
	for id, ct := range blocks {
		m.Put(id, ct)
	}
	return nil
}

func (m *Mem) Delete(id int) error {
	delete(m.blocks, id)
	return nil
}

func (m *Mem) LoadAll() (map[int][]byte, error) {
	out := make(map[int][]byte, len(m.blocks))
	for id, ct := range m.blocks {
		out[id] = append([]byte(nil), ct...)
	}
	return out, nil
}
