package blockstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultfs"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(3, []byte("ciphertext")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(3)
	if err != nil || string(got) != "ciphertext" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := s.Get(4); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing block err = %v", err)
	}
}

func TestPutBatchAndLoadAll(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, nil)
	want := map[int][]byte{0: []byte("a"), 7: []byte("bb"), 42: []byte("ccc")}
	if err := s.PutBatch(want); err != nil {
		t.Fatal(err)
	}
	// Reopen: LoadAll must see exactly the batch.
	s2, _ := Open(dir, nil)
	got, err := s2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("LoadAll = %d blocks, want %d", len(got), len(want))
	}
	for id, ct := range want {
		if string(got[id]) != string(ct) {
			t.Fatalf("block %d = %q, want %q", id, got[id], ct)
		}
	}
}

func TestOverwriteReplacesBlock(t *testing.T) {
	s, _ := Open(t.TempDir(), nil)
	s.Put(1, []byte("old"))
	s.Put(1, []byte("new"))
	got, _ := s.Get(1)
	if string(got) != "new" {
		t.Fatalf("got %q", got)
	}
}

func TestDelete(t *testing.T) {
	s, _ := Open(t.TempDir(), nil)
	s.Put(1, []byte("x"))
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(1); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("after delete: %v", err)
	}
	// Deleting an absent block is fine.
	if err := s.Delete(99); err != nil {
		t.Fatal(err)
	}
}

func TestBitFlipDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, nil)
	s.Put(5, []byte("precious ciphertext"))
	path := filepath.Join(dir, blkName(5))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0x01
	os.WriteFile(path, data, 0o644)

	if _, err := s.Get(5); !errors.Is(err, ErrCorruptBlock) {
		t.Fatalf("flipped bit not detected: %v", err)
	}
	if _, err := s.LoadAll(); !errors.Is(err, ErrCorruptBlock) {
		t.Fatalf("LoadAll over damage: %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, nil)
	s.Put(5, []byte("precious ciphertext"))
	path := filepath.Join(dir, blkName(5))
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-4], 0o644)
	if _, err := s.Get(5); !errors.Is(err, ErrCorruptBlock) {
		t.Fatalf("truncation not detected: %v", err)
	}
}

func TestOpenSweepsTornTmp(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, nil)
	s.Put(1, []byte("committed"))
	// A crash mid-Put leaves a torn tmp behind.
	tmp := filepath.Join(dir, blkName(2)+tmpSuffix)
	os.WriteFile(tmp, []byte("half a blo"), 0o644)

	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("tmp not swept on open")
	}
	got, err := s2.LoadAll()
	if err != nil || len(got) != 1 || string(got[1]) != "committed" {
		t.Fatalf("LoadAll after sweep = %v, %v", got, err)
	}
}

func TestCrashMidPutKeepsOldBlock(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.NewFaulty(21)
	s, err := Open(filepath.Join(dir, "blocks"), fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, []byte("version one")); err != nil {
		t.Fatal(err)
	}
	// Crash during the replacement, before its directory fsync.
	fs.CrashAfterWrites(10)
	s.Put(1, []byte("version two — never committed"))
	fs.Reopen()

	s2, err := Open(filepath.Join(dir, "blocks"), fs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(1)
	if err != nil {
		t.Fatalf("old block must survive torn replacement: %v", err)
	}
	if string(got) != "version one" {
		t.Fatalf("got %q, want the committed version", got)
	}
}

func TestENOSPCSurfacesTyped(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.NewFaulty(22)
	s, _ := Open(filepath.Join(dir, "blocks"), fs)
	fs.SetWriteBudget(4)
	err := s.Put(1, make([]byte, 1024))
	if err == nil {
		t.Fatal("Put on full disk succeeded")
	}
	fs.SetWriteBudget(-1)
	// The failed Put left no committed block.
	if _, gerr := s.Get(1); !errors.Is(gerr, os.ErrNotExist) {
		t.Fatalf("failed Put left state: %v", gerr)
	}
}

func TestMemMirrorsFiles(t *testing.T) {
	m := NewMem()
	m.PutBatch(map[int][]byte{1: []byte("a"), 2: []byte("b")})
	m.Delete(2)
	got, _ := m.LoadAll()
	if len(got) != 1 || string(got[1]) != "a" {
		t.Fatalf("Mem = %v", got)
	}
	if _, err := m.Get(2); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Mem.Get deleted = %v", err)
	}
}
