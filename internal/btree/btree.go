// Package btree implements the B+-tree the paper places on the
// server as the value index (§5.2): data entries are
// ⟨evalue, Bid⟩ pairs mapping an OPESS ciphertext value to the ID of
// an encryption block containing an occurrence of it. Duplicate keys
// are permitted (scaling replicates entries), leaves are linked for
// range scans, and range lookups serve the translated range queries
// of Figure 7(a).
package btree

import (
	"fmt"
	"sort"
)

// Entry is one data entry of the value index.
type Entry struct {
	Key     uint64 // OPESS ciphertext value
	BlockID int    // encryption block containing an occurrence
}

// Tree is a B+-tree over uint64 keys with duplicates.
type Tree struct {
	order int // max keys per node; nodes split when exceeding it
	root  node
	size  int
}

// DefaultOrder is the fan-out used by New when 0 is passed.
const DefaultOrder = 64

type node interface {
	// insert adds the entry and reports a split: the new right
	// sibling and its separator key, or nil.
	insert(e Entry, order int) (sep uint64, right node)
	// firstGE descends to the leaf that may contain the first key >= k.
	firstGE(k uint64) (*leaf, int)
	height() int
}

type leaf struct {
	entries []Entry
	next    *leaf
}

type internal struct {
	// children[i] holds keys < keys[i]; children[len(keys)] the rest.
	keys     []uint64
	children []node
}

// New returns an empty tree. order is the maximum number of entries
// (or separators) a node holds before splitting; pass 0 for the
// default.
func New(order int) *Tree {
	if order <= 0 {
		order = DefaultOrder
	}
	if order < 3 {
		order = 3
	}
	return &Tree{order: order, root: &leaf{}}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (a lone leaf has height 1).
func (t *Tree) Height() int { return t.root.height() }

// Insert adds an entry; duplicates of Key (and even of the full
// entry) are kept.
func (t *Tree) Insert(key uint64, blockID int) {
	sep, right := t.root.insert(Entry{Key: key, BlockID: blockID}, t.order)
	if right != nil {
		t.root = &internal{keys: []uint64{sep}, children: []node{t.root, right}}
	}
	t.size++
}

// Search returns every entry with exactly the given key.
func (t *Tree) Search(key uint64) []Entry {
	return t.Range(key, key)
}

// Range returns every entry with lo <= Key <= hi in key order.
func (t *Tree) Range(lo, hi uint64) []Entry {
	if lo > hi {
		return nil
	}
	lf, i := t.root.firstGE(lo)
	var out []Entry
	for lf != nil {
		for ; i < len(lf.entries); i++ {
			e := lf.entries[i]
			if e.Key > hi {
				return out
			}
			out = append(out, e)
		}
		lf = lf.next
		i = 0
	}
	return out
}

// Count returns the number of entries with lo <= Key <= hi without
// materializing them — the band-occupancy probe the admission layer
// prices queries with (a Range would allocate the very entries the
// estimate exists to avoid touching).
func (t *Tree) Count(lo, hi uint64) int {
	if lo > hi {
		return 0
	}
	lf, i := t.root.firstGE(lo)
	n := 0
	for lf != nil {
		for ; i < len(lf.entries); i++ {
			if lf.entries[i].Key > hi {
				return n
			}
			n++
		}
		lf = lf.next
		i = 0
	}
	return n
}

// RangeBlocks returns the deduplicated block IDs of entries in
// [lo, hi], in ascending order — the set the server fetches for a
// translated value constraint.
func (t *Tree) RangeBlocks(lo, hi uint64) []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range t.Range(lo, hi) {
		if !seen[e.BlockID] {
			seen[e.BlockID] = true
			out = append(out, e.BlockID)
		}
	}
	sort.Ints(out)
	return out
}

// First returns the smallest entry with lo <= Key <= hi.
func (t *Tree) First(lo, hi uint64) (Entry, bool) {
	lf, i := t.root.firstGE(lo)
	for lf != nil {
		for ; i < len(lf.entries); i++ {
			e := lf.entries[i]
			if e.Key > hi {
				return Entry{}, false
			}
			return e, true
		}
		lf = lf.next
		i = 0
	}
	return Entry{}, false
}

// Last returns the largest entry with lo <= Key <= hi.
func (t *Tree) Last(lo, hi uint64) (Entry, bool) {
	lf, i := t.root.firstGE(lo)
	var best Entry
	found := false
	for lf != nil {
		for ; i < len(lf.entries); i++ {
			e := lf.entries[i]
			if e.Key > hi {
				return best, found
			}
			best, found = e, true
		}
		lf = lf.next
		i = 0
	}
	return best, found
}

// Min returns the smallest entry.
func (t *Tree) Min() (Entry, bool) {
	lf, _ := t.root.firstGE(0)
	for lf != nil {
		if len(lf.entries) > 0 {
			return lf.entries[0], true
		}
		lf = lf.next
	}
	return Entry{}, false
}

// Max returns the largest entry.
func (t *Tree) Max() (Entry, bool) {
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			if len(v.entries) == 0 {
				return Entry{}, false
			}
			return v.entries[len(v.entries)-1], true
		case *internal:
			n = v.children[len(v.children)-1]
		}
	}
}

// Scan visits every entry in key order until fn returns false.
func (t *Tree) Scan(fn func(Entry) bool) {
	lf, _ := t.root.firstGE(0)
	for lf != nil {
		for _, e := range lf.entries {
			if !fn(e) {
				return
			}
		}
		lf = lf.next
	}
}

// KeyFrequencies returns the number of entries per distinct key —
// exactly the ciphertext-value distribution an attacker observes by
// crawling the index (used by the attack simulator).
func (t *Tree) KeyFrequencies() map[uint64]int {
	out := map[uint64]int{}
	t.Scan(func(e Entry) bool {
		out[e.Key]++
		return true
	})
	return out
}

// Check verifies structural invariants (sortedness, separator
// consistency, balanced height); for tests.
func (t *Tree) Check() error {
	_, err := check(t.root, 0, ^uint64(0))
	return err
}

func check(n node, lo, hi uint64) (int, error) {
	switch v := n.(type) {
	case *leaf:
		for i, e := range v.entries {
			if e.Key < lo || e.Key > hi {
				return 0, fmt.Errorf("btree: leaf key %d outside [%d, %d]", e.Key, lo, hi)
			}
			if i > 0 && v.entries[i-1].Key > e.Key {
				return 0, fmt.Errorf("btree: leaf keys out of order")
			}
		}
		return 1, nil
	case *internal:
		if len(v.children) != len(v.keys)+1 {
			return 0, fmt.Errorf("btree: internal node with %d keys, %d children", len(v.keys), len(v.children))
		}
		h := -1
		curLo := lo
		for i, c := range v.children {
			// With duplicates, keys equal to a separator may sit on
			// both sides of it, so child ranges share boundaries.
			curHi := hi
			if i < len(v.keys) {
				curHi = v.keys[i]
			}
			ch, err := check(c, curLo, curHi)
			if err != nil {
				return 0, err
			}
			if h == -1 {
				h = ch
			} else if ch != h {
				return 0, fmt.Errorf("btree: unbalanced: child heights %d vs %d", h, ch)
			}
			if i < len(v.keys) {
				curLo = v.keys[i]
			}
		}
		return h + 1, nil
	}
	return 0, fmt.Errorf("btree: unknown node type")
}

func (l *leaf) insert(e Entry, order int) (uint64, node) {
	// Upper-bound position keeps duplicate keys adjacent and stable.
	i := sort.Search(len(l.entries), func(i int) bool { return l.entries[i].Key > e.Key })
	l.entries = append(l.entries, Entry{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = e
	if len(l.entries) <= order {
		return 0, nil
	}
	mid := len(l.entries) / 2
	right := &leaf{entries: append([]Entry(nil), l.entries[mid:]...), next: l.next}
	l.entries = l.entries[:mid]
	l.next = right
	return right.entries[0].Key, right
}

func (l *leaf) firstGE(k uint64) (*leaf, int) {
	i := sort.Search(len(l.entries), func(i int) bool { return l.entries[i].Key >= k })
	return l, i
}

func (l *leaf) height() int { return 1 }

func (in *internal) insert(e Entry, order int) (uint64, node) {
	// Descend left on equality so lookups (which also descend left)
	// never miss duplicates of a separator key.
	i := sort.Search(len(in.keys), func(i int) bool { return e.Key <= in.keys[i] })
	sep, right := in.children[i].insert(e, order)
	if right == nil {
		return 0, nil
	}
	in.keys = append(in.keys, 0)
	copy(in.keys[i+1:], in.keys[i:])
	in.keys[i] = sep
	in.children = append(in.children, nil)
	copy(in.children[i+2:], in.children[i+1:])
	in.children[i+1] = right
	if len(in.keys) <= order {
		return 0, nil
	}
	mid := len(in.keys) / 2
	upKey := in.keys[mid]
	rightNode := &internal{
		keys:     append([]uint64(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid]
	in.children = in.children[:mid+1]
	return upKey, rightNode
}

func (in *internal) firstGE(k uint64) (*leaf, int) {
	i := sort.Search(len(in.keys), func(i int) bool { return k <= in.keys[i] })
	return in.children[i].firstGE(k)
}

func (in *internal) height() int { return in.children[0].height() + 1 }
