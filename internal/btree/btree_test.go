package btree

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New(0)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("empty tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	if got := tr.Range(0, ^uint64(0)); len(got) != 0 {
		t.Errorf("range on empty = %v", got)
	}
	if _, ok := tr.Min(); ok {
		t.Errorf("Min on empty")
	}
	if _, ok := tr.Max(); ok {
		t.Errorf("Max on empty")
	}
	if err := tr.Check(); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestInsertAndSearch(t *testing.T) {
	tr := New(4) // tiny order to force splits
	keys := []uint64{50, 10, 90, 30, 70, 20, 80, 40, 60, 100, 5, 95}
	for i, k := range keys {
		tr.Insert(k, i)
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	for i, k := range keys {
		es := tr.Search(k)
		if len(es) != 1 || es[0].BlockID != i {
			t.Errorf("Search(%d) = %v, want block %d", k, es, i)
		}
	}
	if es := tr.Search(55); len(es) != 0 {
		t.Errorf("Search(55) = %v, want empty", es)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New(4)
	for i := 0; i < 20; i++ {
		tr.Insert(42, i)
	}
	tr.Insert(41, 100)
	tr.Insert(43, 101)
	es := tr.Search(42)
	if len(es) != 20 {
		t.Fatalf("Search(42) returned %d entries, want 20", len(es))
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check with duplicates: %v", err)
	}
	blocks := tr.RangeBlocks(42, 42)
	if len(blocks) != 20 {
		t.Errorf("RangeBlocks dedup wrong: %d", len(blocks))
	}
}

func TestRange(t *testing.T) {
	tr := New(5)
	for k := uint64(0); k < 100; k += 2 {
		tr.Insert(k, int(k))
	}
	got := tr.Range(10, 20)
	want := []uint64{10, 12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("Range(10,20) = %v", got)
	}
	for i, e := range got {
		if e.Key != want[i] {
			t.Errorf("Range[%d] = %d, want %d", i, e.Key, want[i])
		}
	}
	// Bounds not in the tree.
	if got := tr.Range(11, 13); len(got) != 1 || got[0].Key != 12 {
		t.Errorf("Range(11,13) = %v", got)
	}
	if got := tr.Range(98, 200); len(got) != 1 || got[0].Key != 98 {
		t.Errorf("Range(98,200) = %v", got)
	}
	if got := tr.Range(30, 10); got != nil {
		t.Errorf("inverted range = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	tr := New(4)
	for _, k := range []uint64{55, 3, 99, 12} {
		tr.Insert(k, 0)
	}
	if mn, ok := tr.Min(); !ok || mn.Key != 3 {
		t.Errorf("Min = %v, %v", mn, ok)
	}
	if mx, ok := tr.Max(); !ok || mx.Key != 99 {
		t.Errorf("Max = %v, %v", mx, ok)
	}
}

func TestScanOrderAndStop(t *testing.T) {
	tr := New(4)
	for _, k := range []uint64{9, 1, 8, 2, 7, 3} {
		tr.Insert(k, 0)
	}
	var seen []uint64
	tr.Scan(func(e Entry) bool {
		seen = append(seen, e.Key)
		return len(seen) < 4
	})
	if len(seen) != 4 {
		t.Fatalf("Scan visited %d, want 4 (early stop)", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i-1] > seen[i] {
			t.Errorf("Scan out of order: %v", seen)
		}
	}
}

func TestKeyFrequencies(t *testing.T) {
	tr := New(8)
	tr.Insert(7, 0)
	tr.Insert(7, 1)
	tr.Insert(7, 2)
	tr.Insert(9, 0)
	f := tr.KeyFrequencies()
	if f[7] != 3 || f[9] != 1 {
		t.Errorf("KeyFrequencies = %v", f)
	}
}

func TestHeightGrowth(t *testing.T) {
	tr := New(4)
	h := tr.Height()
	for k := uint64(0); k < 1000; k++ {
		tr.Insert(k, int(k))
		if nh := tr.Height(); nh < h {
			t.Fatalf("height shrank")
		} else {
			h = nh
		}
	}
	if h < 4 {
		t.Errorf("1000 sequential inserts at order 4: height %d, expected >= 4", h)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	// All entries still reachable.
	if got := len(tr.Range(0, 2000)); got != 1000 {
		t.Errorf("full range = %d entries, want 1000", got)
	}
}

// Property: tree contents and range results always match a sorted
// reference slice, under random keys (with duplicates) and random
// range bounds.
func TestQuickMatchesReference(t *testing.T) {
	f := func(seed uint32, loRaw, hiRaw uint16) bool {
		s := seed
		next := func(n uint32) uint32 {
			s = s*1664525 + 1013904223
			return (s >> 16) % n
		}
		tr := New(int(next(12)) + 3)
		var ref []uint64
		n := int(next(300)) + 1
		for i := 0; i < n; i++ {
			k := uint64(next(64)) // small domain: plenty of duplicates
			tr.Insert(k, i)
			ref = append(ref, k)
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		if err := tr.Check(); err != nil {
			t.Logf("Check: %v", err)
			return false
		}
		lo, hi := uint64(loRaw%70), uint64(hiRaw%70)
		if lo > hi {
			lo, hi = hi, lo
		}
		got := tr.Range(lo, hi)
		var want []uint64
		for _, k := range ref {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Key != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCountMatchesRange: Count(lo, hi) must agree with len(Range)
// for every window, across splits and duplicates.
func TestCountMatchesRange(t *testing.T) {
	tr := New(4)
	for i := uint64(0); i < 200; i++ {
		tr.Insert(i%50, int(i))
	}
	windows := [][2]uint64{{0, 0}, {0, 49}, {10, 20}, {25, 25}, {49, 1000}, {60, 70}, {5, 3}}
	for _, w := range windows {
		want := len(tr.Range(w[0], w[1]))
		if got := tr.Count(w[0], w[1]); got != want {
			t.Errorf("Count(%d, %d) = %d, want %d", w[0], w[1], got, want)
		}
	}
	if got := New(0).Count(0, ^uint64(0)); got != 0 {
		t.Errorf("Count on empty tree = %d", got)
	}
}
