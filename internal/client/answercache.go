package client

import (
	"container/list"
	"sync"
)

// AnswerCache is a bounded LRU of encoded query answers, keyed by
// the translated query's wire bytes. core.System uses it for
// graceful degradation: when the remote backend is down, the last
// known answer is served marked stale instead of failing the query.
//
// Values are stored as opaque encoded bytes (wire.MarshalAnswer
// output), never as shared pointers, so cached state cannot alias
// live answers. The cache is safe for concurrent use.
type AnswerCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int
	curBytes   int
	order      *list.List // front = most recently used; holds *cacheEntry
	byKey      map[string]*list.Element
}

type cacheEntry struct {
	key string
	val []byte
}

// NewAnswerCache builds a cache holding at most maxEntries answers
// and maxBytes total encoded bytes. Non-positive limits default to
// 128 entries and 64 MiB.
func NewAnswerCache(maxEntries, maxBytes int) *AnswerCache {
	if maxEntries <= 0 {
		maxEntries = 128
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &AnswerCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		order:      list.New(),
		byKey:      map[string]*list.Element{},
	}
}

// Get returns a copy of the cached value for key.
func (c *AnswerCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	val := el.Value.(*cacheEntry).val
	out := make([]byte, len(val))
	copy(out, val)
	return out, true
}

// Put stores a copy of val under key, evicting least-recently-used
// entries to stay within bounds. Values larger than the byte budget
// are not cached at all.
func (c *AnswerCache) Put(key string, val []byte) {
	if len(val) > c.maxBytes {
		return
	}
	stored := make([]byte, len(val))
	copy(stored, val)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.curBytes += len(stored) - len(ent.val)
		ent.val = stored
		c.order.MoveToFront(el)
	} else {
		el := c.order.PushFront(&cacheEntry{key: key, val: stored})
		c.byKey[key] = el
		c.curBytes += len(stored)
	}
	for c.order.Len() > c.maxEntries || c.curBytes > c.maxBytes {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		ent := oldest.Value.(*cacheEntry)
		c.order.Remove(oldest)
		delete(c.byKey, ent.key)
		c.curBytes -= len(ent.val)
	}
}

// Clear drops every entry (e.g. after an update makes cached answers
// unsalvageably stale).
func (c *AnswerCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.byKey = map[string]*list.Element{}
	c.curBytes = 0
}

// Len returns the number of cached answers.
func (c *AnswerCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes returns the total encoded bytes currently held.
func (c *AnswerCache) Bytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBytes
}
