package client

import (
	"bytes"
	"fmt"
	"testing"
)

func TestAnswerCacheBasics(t *testing.T) {
	c := NewAnswerCache(4, 1<<20)
	if _, ok := c.Get("missing"); ok {
		t.Error("hit on empty cache")
	}
	c.Put("a", []byte("alpha"))
	got, ok := c.Get("a")
	if !ok || string(got) != "alpha" {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
	// Overwrite replaces, not duplicates.
	c.Put("a", []byte("beta"))
	if got, _ := c.Get("a"); string(got) != "beta" {
		t.Errorf("overwrite lost: %q", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d after overwrite", c.Len())
	}
}

func TestAnswerCacheEntryEviction(t *testing.T) {
	c := NewAnswerCache(3, 1<<20)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	c.Get("k0") // refresh k0: k1 becomes LRU
	c.Put("k3", []byte{3})
	if _, ok := c.Get("k1"); ok {
		t.Error("LRU entry k1 survived eviction")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %s wrongly evicted", k)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
}

func TestAnswerCacheByteBound(t *testing.T) {
	c := NewAnswerCache(100, 100)
	c.Put("a", make([]byte, 60))
	c.Put("b", make([]byte, 60)) // over the byte cap: a must go
	if _, ok := c.Get("a"); ok {
		t.Error("byte cap not enforced")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("newest entry evicted instead of oldest")
	}
	if c.Bytes() > 100 {
		t.Errorf("Bytes = %d exceeds cap", c.Bytes())
	}
	// A single value larger than the whole cache is refused outright.
	c.Put("huge", make([]byte, 200))
	if _, ok := c.Get("huge"); ok {
		t.Error("oversized value cached")
	}
}

// TestAnswerCacheCopySemantics: the cache must be immune to callers
// mutating slices after Put or after Get.
func TestAnswerCacheCopySemantics(t *testing.T) {
	c := NewAnswerCache(4, 1<<20)
	v := []byte("original")
	c.Put("k", v)
	v[0] = 'X' // caller scribbles on the slice it handed in
	got, _ := c.Get("k")
	if !bytes.Equal(got, []byte("original")) {
		t.Errorf("Put aliased caller slice: %q", got)
	}
	got[0] = 'Y' // caller scribbles on the slice it got back
	again, _ := c.Get("k")
	if !bytes.Equal(again, []byte("original")) {
		t.Errorf("Get aliased cache storage: %q", again)
	}
}

func TestAnswerCacheClear(t *testing.T) {
	c := NewAnswerCache(4, 1<<20)
	c.Put("a", []byte("x"))
	c.Put("b", []byte("y"))
	c.Clear()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("Clear left Len=%d Bytes=%d", c.Len(), c.Bytes())
	}
	if _, ok := c.Get("a"); ok {
		t.Error("entry survived Clear")
	}
}
