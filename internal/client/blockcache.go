package client

import (
	"fmt"
	"strconv"

	"repro/internal/gencache"
	"repro/internal/wire"
)

// BlockCache is a bounded LRU of decrypted block plaintexts, keyed
// by (epoch, generation, blockID): the server's generation echo pins
// each plaintext to the db state its ciphertext came from, so a
// repeated query skips the AES-GCM work for blocks it already
// decrypted — and an answer arriving under a different (epoch,
// generation) pair (an update, a restarted server, a rollback)
// drops everything rather than ever serving stale plaintext (the
// gencache Adopt policy).
//
// Insertion happens only after the block authenticated: AES-GCM
// decryption is itself an integrity check, and when Merkle
// verification is enabled the whole answer was verified before
// decryption even starts (core.System verifies in
// executeWithFallback, and stale fallback answers bypass this cache
// entirely) — so a cache hit is never an unverified byte.
//
// Cached plaintexts are shared, not copied: post-processing only
// reads them (splice and annotateBlockID write into fresh buffers),
// and every consumer must preserve that read-only discipline.
type BlockCache struct {
	c *gencache.Cache
}

// NewBlockCache builds a cache bounded to maxEntries plaintexts and
// maxBytes total plaintext bytes. Non-positive limits default to
// 4096 entries and 128 MiB.
func NewBlockCache(maxEntries, maxBytes int) *BlockCache {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	if maxBytes <= 0 {
		maxBytes = 128 << 20
	}
	return &BlockCache{c: gencache.New(gencache.Adopt, maxEntries, maxBytes)}
}

// Stats snapshots the hit/miss/eviction counters.
func (b *BlockCache) Stats() gencache.Stats { return b.c.Stats() }

// Len returns the number of cached plaintexts.
func (b *BlockCache) Len() int { return b.c.Stats().Entries }

// Clear drops every cached plaintext (benchmarks use it to
// re-measure the cold path).
func (b *BlockCache) Clear() { b.c.Clear() }

func (b *BlockCache) get(epoch, gen uint64, id int) ([]byte, bool) {
	v, ok := b.c.Get(epoch, gen, strconv.Itoa(id))
	if !ok {
		return nil, false
	}
	return v.([]byte), true
}

func (b *BlockCache) put(epoch, gen uint64, id int, pt []byte) {
	b.c.Put(epoch, gen, strconv.Itoa(id), pt, len(pt))
}

// SeedBlockCache inserts already-decrypted plaintexts into bc under
// the answer's generation echo. This is how the streaming pipeline —
// which decrypts blocks while the answer is still arriving, before
// any cache or verifier has seen it — feeds the cache once the answer
// has been verified and accepted. Callers must only pass plaintexts
// whose decryption (an AES-GCM authentication) succeeded against this
// answer's ciphertexts. A nil cache or an answer without a generation
// echo caches nothing, exactly as DecryptBlocksCached would.
func (c *Client) SeedBlockCache(bc *BlockCache, ans *wire.Answer, blocks map[int][]byte) {
	if bc == nil || ans.Generation == 0 {
		return
	}
	for _, id := range ans.BlockIDs {
		if pt, ok := blocks[id]; ok {
			bc.put(ans.Epoch, ans.Generation, id, pt)
		}
	}
}

// DecryptBlocksCached is DecryptBlocks backed by a BlockCache:
// blocks already decrypted under the answer's (epoch, generation)
// pair are reused, the rest are decrypted across the client's
// worker width and inserted. It reports how many blocks were served
// from the cache. A nil cache, or an answer without a generation
// echo (a legacy server, or a stale-fallback copy whose freshness
// is unknown), falls back to plain decryption and caches nothing.
func (c *Client) DecryptBlocksCached(ans *wire.Answer, bc *BlockCache) (map[int][]byte, int, error) {
	if bc == nil || ans.Generation == 0 {
		out, err := c.DecryptBlocks(ans)
		return out, 0, err
	}
	out := make(map[int][]byte, len(ans.Blocks))
	var missIdx []int
	for i, id := range ans.BlockIDs {
		if pt, ok := bc.get(ans.Epoch, ans.Generation, id); ok {
			out[id] = pt
		} else {
			missIdx = append(missIdx, i)
		}
	}
	hits := len(ans.BlockIDs) - len(missIdx)
	if len(missIdx) == 0 {
		return out, hits, nil
	}
	n := len(missIdx)
	pts := make([][]byte, n)
	errs := make([]error, n)
	c.parallelFor(n, decryptParallelThreshold, func(j int) {
		i := missIdx[j]
		pt, err := c.keys.DecryptBlock(ans.Blocks[i])
		if err != nil {
			errs[j] = fmt.Errorf("client: block %d: %w", ans.BlockIDs[i], err)
			return
		}
		pts[j] = pt
	})
	for j := 0; j < n; j++ {
		if errs[j] != nil {
			return nil, 0, errs[j]
		}
		id := ans.BlockIDs[missIdx[j]]
		out[id] = pts[j]
		// Decryption succeeded, i.e. the AES-GCM tag authenticated:
		// only now may the plaintext enter the cache.
		bc.put(ans.Epoch, ans.Generation, id, pts[j])
	}
	return out, hits, nil
}
