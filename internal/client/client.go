// Package client implements the trusted side of Figure 1: the data
// owner. It encrypts the database under a chosen encryption scheme
// (§4), builds the server metadata (DSI tables §5.1, OPESS value
// index entries §5.2), translates queries (§6.1, Fig. 7a), and
// post-processes answers (§6.4) so that the final result equals the
// original query evaluated on the plaintext database:
// Q(δ(Qs(η(D)))) = Q(D).
package client

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"

	"repro/internal/cryptoprim"
	"repro/internal/dsi"
	"repro/internal/opess"
	"repro/internal/scheme"
	"repro/internal/wire"
	"repro/internal/xmltree"
)

// Client holds the owner's keys and the small translation state that
// remains client-side after upload: which tags are encrypted, the
// OPESS transformer per encrypted leaf tag, and the document's root
// tag for answer reassembly. None of this is ever sent to the
// server.
type Client struct {
	keys    *cryptoprim.KeySet
	rootTag string

	// par is the worker width for answer decryption and fragment
	// splicing (see postprocess.go); 1 = sequential.
	par int

	// encTags / plainTags record, per tag key ("tag" or "@attr"),
	// whether nodes with that tag occur inside encryption blocks /
	// in the plaintext residue. A tag may occur both ways.
	encTags   map[string]bool
	plainTags map[string]bool

	// attrs holds the OPESS transformer table for each encrypted leaf
	// tag, published copy-on-write: the stored map is immutable, and
	// RebuildEntries replaces it wholesale with an edited copy.
	// Queries pin ONE table through Snapshot (see View) so a whole
	// translation sees one consistent set of transformers even while
	// an update is rewriting a band.
	attrs atomic.Pointer[attrTable]
	// occ retains the per-attribute occurrence bookkeeping (value ->
	// containing blocks) that built the value index; update support
	// rebuilds index bands from it (see update.go). Only the
	// (serialized) update path touches it — never queries.
	occ map[string]*tagOccurrences
	// bands fixes each attribute's ciphertext band for the lifetime
	// of the hosted database (immutable after Encrypt).
	bands map[string]uint8

	decoyCounter uint64
}

// attrTable maps a tag key to its OPESS transformer. Published
// tables are immutable: edits copy-and-replace.
type attrTable map[string]*opess.Attribute

// loadAttrs returns the current (immutable) transformer table.
func (c *Client) loadAttrs() attrTable {
	if p := c.attrs.Load(); p != nil {
		return *p
	}
	return nil
}

// setAttrs publishes a new transformer table. The caller must not
// mutate t afterwards.
func (c *Client) setAttrs(t attrTable) { c.attrs.Store(&t) }

// View is a pinned snapshot of the client's translation state: the
// OPESS transformer table as of Snapshot time, plus the immutable
// tag-placement maps. Translating a query through a View guarantees
// every value comparison in it uses one consistent table, no matter
// what updates commit concurrently. The zero/shared Client state it
// references (keys, encTags, plainTags, bands) never changes after
// Encrypt, so a View is safe for concurrent use and costs one
// pointer load to take.
type View struct {
	c     *Client
	attrs attrTable
}

// Snapshot pins the current translation state.
func (c *Client) Snapshot() *View { return &View{c: c, attrs: c.loadAttrs()} }

// New creates a client from a master secret.
func New(masterKey []byte) (*Client, error) {
	keys, err := cryptoprim.NewKeySet(masterKey)
	if err != nil {
		return nil, err
	}
	c := &Client{
		keys:      keys,
		par:       runtime.GOMAXPROCS(0),
		encTags:   map[string]bool{},
		plainTags: map[string]bool{},
		occ:       map[string]*tagOccurrences{},
		bands:     map[string]uint8{},
	}
	c.setAttrs(attrTable{})
	return c, nil
}

// SetParallelism sets the worker width used by DecryptBlocks and the
// splice stage of PostProcess; width <= 1 selects the sequential
// path. Not safe to call concurrently with queries.
func (c *Client) SetParallelism(width int) {
	if width < 1 {
		width = 1
	}
	c.par = width
}

// Parallelism reports the configured worker width.
func (c *Client) Parallelism() int { return c.par }

// Keys exposes the key set for white-box tests; production callers
// never need it.
func (c *Client) Keys() *cryptoprim.KeySet { return c.keys }

// TagOccursPlain reports whether any node with this tag key is
// stored in the plaintext residue; aggregates can only use the
// single-block index path when the answer cannot hide in plaintext.
func (c *Client) TagOccursPlain(tagKey string) bool { return c.plainTags[tagKey] }

// tagKey is the canonical map key for a node's tag.
func tagKey(n *xmltree.Node) string {
	if n.Kind == xmltree.Attribute {
		return "@" + n.Tag
	}
	return n.Tag
}

// Encrypt builds the hosted database for doc under the scheme s:
// every block subtree is serialized (with a decoy appended when the
// scheme says so) and AES-GCM encrypted; the residue keeps the rest
// in plaintext with placeholders; the DSI tables and OPESS value
// index entries are derived. The client's translation state is
// (re)initialized from this document.
func (c *Client) Encrypt(doc *xmltree.Document, s *scheme.Scheme) (*wire.HostedDB, error) {
	if doc.Root == nil {
		return nil, fmt.Errorf("client: empty document")
	}
	c.rootTag = doc.Root.Tag
	c.encTags = map[string]bool{}
	c.plainTags = map[string]bool{}
	c.setAttrs(attrTable{})
	c.occ = map[string]*tagOccurrences{}
	c.bands = map[string]uint8{}

	md := dsi.BuildMetadata(doc, s.BlockRoots, c.keys)

	// Record tag placement for query translation.
	for _, n := range doc.Nodes() {
		if n.Kind == xmltree.Text {
			continue
		}
		if md.NodeBlock[n] >= 0 {
			c.encTags[tagKey(n)] = true
		} else {
			c.plainTags[tagKey(n)] = true
		}
	}

	// Encrypt blocks.
	blocks := make([][]byte, len(s.BlockRoots))
	for id, root := range s.BlockRoots {
		pt, err := c.serializeBlock(root, s.Decoy[root])
		if err != nil {
			return nil, err
		}
		ct, err := c.keys.EncryptBlock(pt)
		if err != nil {
			return nil, err
		}
		blocks[id] = ct
	}

	// Build the plaintext residue with placeholders.
	rootIsBlock := len(s.BlockRoots) == 1 && s.BlockRoots[0] == doc.Root
	ivs := map[*xmltree.Node]dsi.Interval{}
	var residue *xmltree.Document
	if rootIsBlock {
		ph := placeholder(0, false)
		ivs[ph] = md.Assignment[doc.Root]
		residue = xmltree.NewDocument(ph)
	} else {
		rootID := make(map[*xmltree.Node]int, len(s.BlockRoots))
		for id, r := range s.BlockRoots {
			rootID[r] = id
		}
		blockID := func(n *xmltree.Node) (int, bool) {
			id, ok := rootID[n]
			return id, ok
		}
		rr := c.buildResidue(doc.Root, blockID, md, ivs)
		residue = xmltree.NewDocument(rr)
	}

	// OPESS value index over the encrypted leaf values.
	entries, err := c.buildValueIndex(doc, md)
	if err != nil {
		return nil, err
	}

	return &wire.HostedDB{
		Residue:          residue,
		ResidueIntervals: ivs,
		Table:            md.Table,
		BlockReps:        md.Blocks.Reps,
		Blocks:           blocks,
		IndexEntries:     entries,
	}, nil
}

// serializeBlock produces the plaintext bytes of one encryption
// block: a <_blk> envelope holding the subtree's compact XML (an
// attribute root is wrapped in <_attr>), plus a sibling <_decoy>
// child when the scheme calls for one (§4.1). The envelope keeps the
// decoy out of the content's text, since the data model forbids
// mixed content.
func (c *Client) serializeBlock(root *xmltree.Node, decoy bool) ([]byte, error) {
	var content *xmltree.Node
	if root.Kind == xmltree.Attribute {
		content = xmltree.NewElement(wire.AttrWrapTag)
		content.AppendChild(xmltree.NewAttribute("name", root.Tag))
		content.AppendChild(xmltree.NewText(root.Value))
	} else {
		content = root.Clone()
		content.Parent = nil
	}
	top := xmltree.NewElement(wire.BlockWrapTag)
	top.AppendChild(content)
	if decoy {
		c.decoyCounter++
		top.AppendValue(wire.DecoyTag, c.keys.RandomDecoy(c.decoyCounter))
	}
	var buf bytes.Buffer
	if err := xmltree.NewDocument(top).Serialize(&buf, false); err != nil {
		return nil, fmt.Errorf("client: serialize block: %w", err)
	}
	return buf.Bytes(), nil
}

func placeholder(id int, attr bool) *xmltree.Node {
	ph := xmltree.NewElement(wire.PlaceholderTag)
	ph.AppendChild(xmltree.NewAttribute("id", strconv.Itoa(id)))
	if attr {
		ph.AppendChild(xmltree.NewAttribute("attr", "1"))
	}
	return ph
}

// buildResidue clones the document, replacing each block subtree by
// a placeholder carrying the block root's DSI interval.
func (c *Client) buildResidue(n *xmltree.Node, blockID func(*xmltree.Node) (int, bool),
	md *dsi.Metadata, ivs map[*xmltree.Node]dsi.Interval) *xmltree.Node {

	if id, isBlock := blockID(n); isBlock {
		ph := placeholder(id, n.Kind == xmltree.Attribute)
		ivs[ph] = md.Assignment[n]
		return ph
	}
	cp := &xmltree.Node{Kind: n.Kind, Tag: n.Tag, Value: n.Value}
	if n.Kind != xmltree.Text {
		ivs[cp] = md.Assignment[n]
	}
	for _, ch := range n.Children {
		cc := c.buildResidue(ch, blockID, md, ivs)
		cc.Parent = cp
		cp.Children = append(cp.Children, cc)
	}
	return cp
}
