package client

import (
	"strings"
	"testing"

	"repro/internal/sc"
	"repro/internal/scheme"
	"repro/internal/wire"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

const hospitalXML = `
<hospital>
  <patient>
    <pname>Betty</pname>
    <SSN>763895</SSN>
    <insurance coverage="1000000"><policy>34221</policy><policy>9983</policy></insurance>
    <treat><disease>diarrhea</disease><doctor>Smith</doctor></treat>
    <age>35</age>
  </patient>
  <patient>
    <pname>Matt</pname>
    <SSN>276543</SSN>
    <insurance coverage="10000"><policy>26544</policy></insurance>
    <treat><disease>leukemia</disease><doctor>Walker</doctor></treat>
    <treat><disease>diarrhea</disease><doctor>Brown</doctor></treat>
    <age>40</age>
  </patient>
</hospital>`

var paperSCs = []string{
	"//insurance",
	"//patient:(/pname, /SSN)",
	"//patient:(/pname, //disease)",
	"//treat:(/disease, /doctor)",
}

func fixture(t *testing.T) (*Client, *xmltree.Document, *wire.HostedDB) {
	t.Helper()
	doc, err := xmltree.ParseString(hospitalXML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cs, err := sc.ParseAll(paperSCs)
	if err != nil {
		t.Fatalf("scs: %v", err)
	}
	sch, err := scheme.Optimal(doc, cs)
	if err != nil {
		t.Fatalf("scheme: %v", err)
	}
	c, err := New([]byte("client-test"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	db, err := c.Encrypt(doc, sch)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	return c, doc, db
}

func TestNewRejectsEmptyKey(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Errorf("empty key accepted")
	}
}

func TestEncryptBlocksDecryptable(t *testing.T) {
	c, _, db := fixture(t)
	for id, ct := range db.Blocks {
		pt, err := c.keys.DecryptBlock(ct)
		if err != nil {
			t.Fatalf("block %d: %v", id, err)
		}
		doc, err := xmltree.ParseString(string(pt))
		if err != nil {
			t.Fatalf("block %d parse: %v", id, err)
		}
		if doc.Root.Tag != wire.BlockWrapTag {
			t.Errorf("block %d root = %s, want %s", id, doc.Root.Tag, wire.BlockWrapTag)
		}
	}
}

func TestEncryptedLeafBlocksCarryDecoys(t *testing.T) {
	c, _, db := fixture(t)
	decoys := 0
	for _, ct := range db.Blocks {
		pt, _ := c.keys.DecryptBlock(ct)
		if strings.Contains(string(pt), "<"+wire.DecoyTag+">") {
			decoys++
		}
	}
	// Under the optimal scheme, all leaf cover blocks (pname-or-SSN +
	// disease = 5) carry decoys; insurance subtrees do not.
	if decoys != 5 {
		t.Errorf("decoyed blocks = %d, want 5", decoys)
	}
}

func TestDecoysAreDistinct(t *testing.T) {
	c, _, db := fixture(t)
	seen := map[string]bool{}
	for _, ct := range db.Blocks {
		pt, _ := c.keys.DecryptBlock(ct)
		s := string(pt)
		i := strings.Index(s, "<"+wire.DecoyTag+">")
		if i < 0 {
			continue
		}
		j := strings.Index(s[i:], "</")
		d := s[i : i+j]
		if seen[d] {
			t.Fatalf("decoy %q repeats", d)
		}
		seen[d] = true
	}
}

func TestResidueHasPlaceholders(t *testing.T) {
	_, _, db := fixture(t)
	res := db.Residue.String()
	if !strings.Contains(res, wire.PlaceholderTag) {
		t.Fatalf("residue has no placeholders:\n%s", res)
	}
	// Placeholders count equals block count.
	n := strings.Count(res, "<"+wire.PlaceholderTag+" ")
	if n != len(db.Blocks) {
		t.Errorf("placeholders = %d, blocks = %d", n, len(db.Blocks))
	}
	// Residue intervals cover every residue element/attribute.
	for _, node := range db.Residue.Nodes() {
		if node.Kind == xmltree.Text {
			continue
		}
		if node.Tag == "id" || node.Tag == "attr" {
			continue // placeholder bookkeeping attributes
		}
		if _, ok := db.ResidueIntervals[node]; !ok {
			t.Errorf("residue node %s has no interval", node.Path())
		}
	}
}

func TestValueIndexCoversEncryptedLeaves(t *testing.T) {
	c, doc, db := fixture(t)
	if len(db.IndexEntries) == 0 {
		t.Fatalf("no index entries")
	}
	// Every encrypted leaf tag got an OPESS attribute.
	wantTags := map[string]bool{"policy": true, "@coverage": true, "disease": true}
	// plus whichever of pname/SSN the cover chose
	if _, ok := c.loadAttrs()["pname"]; ok {
		wantTags["pname"] = true
	} else {
		wantTags["SSN"] = true
	}
	for tag := range wantTags {
		if _, ok := c.loadAttrs()[tag]; !ok {
			t.Errorf("missing OPESS attribute for %s (have %v)", tag, keysOf(c.loadAttrs()))
		}
	}
	_ = doc
}

func keysOf[V any](m map[string]V) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestTranslateEncryptsTags(t *testing.T) {
	c, _, _ := fixture(t)
	q := xpath.MustParse("//patient[.//insurance//@coverage>=10000]//SSN")
	tq, err := c.Translate(q)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	steps := tq.Steps()
	if len(steps) != 2 {
		t.Fatalf("translated steps = %d", len(steps))
	}
	// patient is plaintext: label is the plaintext tag.
	if steps[0].Labels[0] != "patient" {
		t.Errorf("patient label = %v", steps[0].Labels)
	}
	// The original tag "insurance" must not appear in any label of
	// the predicate (it is encrypted).
	pv, ok := steps[0].Preds[0].(*wire.PredValue)
	if !ok {
		t.Fatalf("predicate is %T", steps[0].Preds[0])
	}
	for st := pv.Path; st != nil; st = st.Next {
		for _, l := range st.Labels {
			if l == "insurance" || l == "@coverage" {
				t.Errorf("encrypted tag %q leaked in translated query", l)
			}
		}
	}
	if len(pv.Ranges) == 0 {
		t.Errorf("coverage comparison not translated to ranges")
	}
	if pv.Plain {
		t.Errorf("coverage is encrypted-only; Plain should be false")
	}
	// The literal must not appear either.
	if pv.Lit != "10000" {
		// Lit is retained for the plaintext half only; with
		// Plain=false the server ignores it, but it must not be
		// needed. (Documented behavior: kept for mixed tags.)
		t.Logf("note: Lit retained = %q", pv.Lit)
	}
}

func TestTranslatePlaintextComparison(t *testing.T) {
	c, _, _ := fixture(t)
	tq, err := c.Translate(xpath.MustParse("//patient[age>35]"))
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	pv := tq.First.Preds[0].(*wire.PredValue)
	if !pv.Plain {
		t.Errorf("age is plaintext; Plain should be true")
	}
	if len(pv.Ranges) != 0 {
		t.Errorf("plaintext tag got ciphertext ranges")
	}
	if pv.Op != xpath.OpGt || pv.Lit != "35" {
		t.Errorf("plain comparison = %v %q", pv.Op, pv.Lit)
	}
}

func TestTranslateUnknownTag(t *testing.T) {
	c, _, _ := fixture(t)
	tq, err := c.Translate(xpath.MustParse("//nosuchtag"))
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if got := tq.First.Labels; len(got) != 1 || got[0] != "nosuchtag" {
		t.Errorf("unknown tag labels = %v", got)
	}
}

func TestTranslateDropsTextStep(t *testing.T) {
	c, _, _ := fixture(t)
	tq, err := c.Translate(xpath.MustParse("//pname/text()"))
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if len(tq.Steps()) != 1 {
		t.Errorf("text() step not dropped: %d steps", len(tq.Steps()))
	}
}

func TestTranslateSchemeAwareness(t *testing.T) {
	// Under the top scheme every tag is encrypted; translation must
	// produce only ciphertext labels.
	doc, _ := xmltree.ParseString(hospitalXML)
	c, _ := New([]byte("top-key"))
	if _, err := c.Encrypt(doc, scheme.Top(doc)); err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	tq, err := c.Translate(xpath.MustParse("//patient/pname"))
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	for _, st := range tq.Steps() {
		for _, l := range st.Labels {
			if l == "patient" || l == "pname" {
				t.Errorf("plaintext label %q under top scheme", l)
			}
		}
	}
}

func TestUnwrapBlockErrors(t *testing.T) {
	c, _, _ := fixture(t)
	if _, err := c.unwrapBlock(xmltree.NewElement("wrong")); err == nil {
		t.Errorf("non-envelope accepted")
	}
	empty := xmltree.NewElement(wire.BlockWrapTag)
	if _, err := c.unwrapBlock(empty); err == nil {
		t.Errorf("empty envelope accepted")
	}
}

func TestAttributeBlockRoundTrip(t *testing.T) {
	// Force an attribute to be a block root via a custom scheme.
	doc, _ := xmltree.ParseString(hospitalXML)
	cs, _ := sc.ParseAll([]string{"//patient:(/insurance/@coverage, /pname)"})
	sch, err := scheme.Secure(doc, cs, map[string]bool{"@coverage": true})
	if err != nil {
		t.Fatalf("Secure: %v", err)
	}
	c, _ := New([]byte("attr-key"))
	db, err := c.Encrypt(doc, sch)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	// The residue's insurance elements should have a placeholder
	// child with attr="1" instead of the coverage attribute.
	res := db.Residue.String()
	if strings.Contains(res, "coverage") {
		t.Errorf("coverage attribute leaked:\n%s", res)
	}
	if !strings.Contains(res, `attr="1"`) {
		t.Errorf("attribute placeholder missing:\n%s", res)
	}
}
