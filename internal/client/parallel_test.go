package client

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

// naiveAnswer builds the "ship everything" answer (every hosted
// block, the full residue as one fragment) — the largest block set a
// client can be asked to decrypt for this database.
func naiveAnswer(db *wire.HostedDB) *wire.Answer {
	ans := &wire.Answer{Fragments: [][]byte{[]byte(db.Residue.String())}}
	for id, b := range db.Blocks {
		ans.BlockIDs = append(ans.BlockIDs, id)
		ans.Blocks = append(ans.Blocks, b)
	}
	return ans
}

// TestDecryptBlocksParallelMatchesSequential pins the parallel
// decrypt fan-out to the sequential result, block for block.
func TestDecryptBlocksParallelMatchesSequential(t *testing.T) {
	c, _, db := fixture(t)
	ans := naiveAnswer(db)
	c.SetParallelism(1)
	want, err := c.DecryptBlocks(ans)
	if err != nil {
		t.Fatalf("sequential decrypt: %v", err)
	}
	for _, width := range []int{2, 8} {
		c.SetParallelism(width)
		got, err := c.DecryptBlocks(ans)
		if err != nil {
			t.Fatalf("width %d decrypt: %v", width, err)
		}
		if len(got) != len(want) {
			t.Fatalf("width %d: %d blocks, want %d", width, len(got), len(want))
		}
		for id, pt := range want {
			if !bytes.Equal(got[id], pt) {
				t.Errorf("width %d: block %d plaintext differs", width, id)
			}
		}
	}
}

// TestDecryptBlocksParallelSurfacesError checks a corrupt block
// still fails the whole decrypt under the fan-out.
func TestDecryptBlocksParallelSurfacesError(t *testing.T) {
	c, _, db := fixture(t)
	ans := naiveAnswer(db)
	if len(ans.Blocks) == 0 {
		t.Skip("no blocks")
	}
	corrupted := append([]byte(nil), ans.Blocks[len(ans.Blocks)-1]...)
	corrupted[len(corrupted)-1] ^= 0xff
	ans.Blocks[len(ans.Blocks)-1] = corrupted
	c.SetParallelism(8)
	if _, err := c.DecryptBlocks(ans); err == nil {
		t.Errorf("corrupt block decrypted without error")
	}
}

// TestClientParallelismClamp checks the knob floors at 1.
func TestClientParallelismClamp(t *testing.T) {
	c, _, _ := fixture(t)
	c.SetParallelism(0)
	if got := c.Parallelism(); got != 1 {
		t.Errorf("Parallelism() = %d, want 1", got)
	}
	c.SetParallelism(6)
	if got := c.Parallelism(); got != 6 {
		t.Errorf("Parallelism() = %d, want 6", got)
	}
}
