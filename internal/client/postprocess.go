package client

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/wire"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// decryptParallelThreshold is the minimum number of blocks before
// DecryptBlocks spends goroutines on the fan-out; below it the
// per-goroutine overhead would exceed the AES work saved.
const decryptParallelThreshold = 4

// DecryptBlocks decrypts the answer's encrypted blocks, keyed by
// block ID. The result is the plaintext <_blk> envelope bytes of
// each block; parsing and decoy-stripping happen in PostProcess.
// This is the pure decryption cost the experiments measure
// separately (§7.2). Blocks are independent AES-GCM ciphertexts, so
// they decrypt across the client's worker width; each worker writes
// only its own slot, and the ID-keyed map is assembled afterwards,
// so the result is identical to the sequential loop.
func (c *Client) DecryptBlocks(ans *wire.Answer) (map[int][]byte, error) {
	n := len(ans.Blocks)
	pts := make([][]byte, n)
	errs := make([]error, n)
	c.parallelFor(n, decryptParallelThreshold, func(i int) {
		pt, err := c.keys.DecryptBlock(ans.Blocks[i])
		if err != nil {
			errs[i] = fmt.Errorf("client: block %d: %w", ans.BlockIDs[i], err)
			return
		}
		pts[i] = pt
	})
	out := make(map[int][]byte, n)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[ans.BlockIDs[i]] = pts[i]
	}
	return out, nil
}

// parallelFor runs fn(i) for i in [0, n) across up to c.par workers
// (inline when n is below threshold or the width is 1). fn must only
// write state owned by index i.
func (c *Client) parallelFor(n, threshold int, fn func(i int)) {
	workers := c.par
	if workers > n/threshold {
		workers = n / threshold
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	for i := 0; i < n/workers; i++ {
		fn(i)
	}
	wg.Wait()
}

// PostResult is the outcome of answer reconstruction: the query's
// result nodes, the reassembled document owning them, and the
// provenance map from each decrypted block's content root back to
// its block ID (the update machinery edits blocks through it).
type PostResult struct {
	Nodes   []*xmltree.Node
	Doc     *xmltree.Document
	BlockOf map[*xmltree.Node]int
}

// PostProcess reconstructs the plaintext answer — splicing decrypted
// block bytes into their placeholders, parsing once, stripping
// decoys and unwrapping envelopes — and applies the original query Q
// to the reassembled document, yielding exactly Q(D)'s matches
// within the answer (§6.4). It returns the result nodes and the
// reconstructed document that owns them.
func (c *Client) PostProcess(q *xpath.Path, ans *wire.Answer, blocks map[int][]byte) ([]*xmltree.Node, *xmltree.Document, error) {
	res, err := c.PostProcessFull(q, ans, blocks)
	if err != nil {
		return nil, nil, err
	}
	return res.Nodes, res.Doc, nil
}

// spliceParallelThreshold is the minimum fragment count before the
// splice stage fans out.
const spliceParallelThreshold = 4

// PostProcessFull is PostProcess with block provenance. Fragments
// are independent byte streams, so the splice stage runs them across
// the client's worker width with per-fragment placeholder
// bookkeeping, merged afterwards; the single combined parse in
// assemble then consumes the parts in their original order.
func (c *Client) PostProcessFull(q *xpath.Path, ans *wire.Answer, blocks map[int][]byte) (*PostResult, error) {
	nf := len(ans.Fragments)
	parts := make([][]byte, nf)
	spliceErrs := make([]error, nf)
	usedPer := make([]map[int]bool, nf)
	c.parallelFor(nf, spliceParallelThreshold, func(i int) {
		used := map[int]bool{}
		spliced, err := c.splice(ans.Fragments[i], blocks, used)
		if err != nil {
			spliceErrs[i] = err
			return
		}
		parts[i], usedPer[i] = spliced, used
	})
	referenced := map[int]bool{}
	for i := 0; i < nf; i++ {
		if spliceErrs[i] != nil {
			return nil, spliceErrs[i]
		}
		for id := range usedPer[i] {
			referenced[id] = true
		}
	}
	// Blocks matched directly (the anchor itself lay inside an
	// encrypted block) become answer parts of their own.
	for _, id := range ans.BlockIDs {
		if referenced[id] {
			continue
		}
		pt, ok := blocks[id]
		if !ok {
			return nil, fmt.Errorf("client: answer references undecrypted block %d", id)
		}
		parts = append(parts, annotateBlockID(pt, id))
	}

	// An empty answer is the server's proof that no anchor can match
	// (its execution keeps every *possible* match). Re-applying Q to
	// a fabricated empty root would resurrect matches for queries the
	// synthetic shell happens to satisfy — e.g. a negated predicate
	// on the document root ("//site[not(x)]": the shell has no x) —
	// so short-circuit instead of evaluating against scaffolding.
	if len(parts) == 0 {
		doc := xmltree.NewDocument(xmltree.NewElement(c.rootTag))
		return &PostResult{Doc: doc, BlockOf: map[*xmltree.Node]int{}}, nil
	}

	prov := map[*xmltree.Node]int{}
	doc, err := c.assemble(parts, prov)
	if err != nil {
		return nil, err
	}
	return &PostResult{Nodes: xpath.Evaluate(doc, q), Doc: doc, BlockOf: prov}, nil
}

// annotateBlockID rewrites a block's <_blk> envelope head to carry
// its block ID, so provenance survives the combined parse.
func annotateBlockID(pt []byte, id int) []byte {
	head := []byte("<" + wire.BlockWrapTag + ">")
	if !bytes.HasPrefix(pt, head) {
		return pt
	}
	out := make([]byte, 0, len(pt)+16)
	out = append(out, []byte("<"+wire.BlockWrapTag+" id=\""+strconv.Itoa(id)+"\">")...)
	return append(out, pt[len(head):]...)
}

// splice replaces every <EncBlock id="N".../> placeholder in a
// fragment with the plaintext bytes of block N, recording which
// blocks were used. Blocks never contain placeholders (blocks are
// not nested), so one pass suffices.
func (c *Client) splice(fragment []byte, blocks map[int][]byte, used map[int]bool) ([]byte, error) {
	marker := []byte("<" + wire.PlaceholderTag + " ")
	if !bytes.Contains(fragment, marker) {
		return fragment, nil
	}
	var out bytes.Buffer
	out.Grow(len(fragment) * 2)
	rest := fragment
	for {
		i := bytes.Index(rest, marker)
		if i < 0 {
			out.Write(rest)
			return out.Bytes(), nil
		}
		out.Write(rest[:i])
		end := bytes.Index(rest[i:], []byte("/>"))
		if end < 0 {
			return nil, fmt.Errorf("client: malformed placeholder in fragment")
		}
		tag := rest[i : i+end]
		id, err := placeholderID(tag)
		if err != nil {
			return nil, err
		}
		pt, ok := blocks[id]
		if !ok {
			return nil, fmt.Errorf("client: fragment references undecrypted block %d", id)
		}
		out.Write(annotateBlockID(pt, id))
		used[id] = true
		rest = rest[i+end+2:]
	}
}

func placeholderID(tag []byte) (int, error) {
	const attr = `id="`
	i := bytes.Index(tag, []byte(attr))
	if i < 0 {
		return 0, fmt.Errorf("client: placeholder without id: %q", tag)
	}
	j := bytes.IndexByte(tag[i+len(attr):], '"')
	if j < 0 {
		return 0, fmt.Errorf("client: malformed placeholder id: %q", tag)
	}
	return strconv.Atoi(string(tag[i+len(attr) : i+len(attr)+j]))
}

// assemble parses the spliced parts (one fast parse over the whole
// answer), resolves envelopes and decoys, and roots the result in a
// document the original query can run against. prov receives the
// block ID of each promoted block content root.
func (c *Client) assemble(parts [][]byte, prov map[*xmltree.Node]int) (*xmltree.Document, error) {
	var combined []byte
	wrapped := false
	if len(parts) == 1 && topTag(parts[0]) == c.rootTag {
		combined = parts[0]
	} else {
		wrapped = true
		var buf bytes.Buffer
		buf.WriteString("<" + c.rootTag + ">")
		for _, p := range parts {
			buf.Write(p)
		}
		buf.WriteString("</" + c.rootTag + ">")
		combined = buf.Bytes()
	}
	doc, err := xmltree.ParseCompact(combined)
	if err != nil {
		return nil, fmt.Errorf("client: reassemble answer: %w", err)
	}
	root, err := c.resolveTree(doc.Root, prov)
	if err != nil {
		return nil, err
	}
	if root.Kind != xmltree.Element {
		// A lone attribute part; re-root it.
		wrapEl := xmltree.NewElement(c.rootTag)
		wrapEl.AppendChild(root)
		root = wrapEl
	}
	// A synthetic wrapper around what resolved to the document root
	// itself (e.g. the top scheme's single whole-document block) must
	// collapse, or absolute paths would see the root twice.
	if wrapped && root.Tag == c.rootTag && len(root.Children) == 1 {
		if ch := root.Children[0]; ch.Kind == xmltree.Element && ch.Tag == c.rootTag {
			ch.Parent = nil
			root = ch
		}
	}
	return xmltree.NewDocument(root), nil
}

func topTag(part []byte) string {
	if len(part) < 2 || part[0] != '<' {
		return ""
	}
	for i := 1; i < len(part); i++ {
		switch part[i] {
		case ' ', '>', '/', '\n', '\t':
			return string(part[1:i])
		}
	}
	return ""
}

// resolveTree rewrites the parsed answer in place: <_blk> envelopes
// are unwrapped (decoys stripped, single content child promoted),
// <_attr> wrappers become attribute nodes, and attributes are
// reordered before element children. It returns the (possibly
// replaced) node.
func (c *Client) resolveTree(n *xmltree.Node, prov map[*xmltree.Node]int) (*xmltree.Node, error) {
	if n.Kind == xmltree.Element && n.Tag == wire.BlockWrapTag {
		idStr, hasID := n.Attr("id")
		content, err := c.unwrapBlock(n)
		if err != nil {
			return nil, err
		}
		if prov != nil && hasID {
			if id, err := strconv.Atoi(idStr); err == nil {
				prov[content] = id
			}
		}
		if content.Kind != xmltree.Element {
			return content, nil
		}
		return c.resolveTree(content, nil) // provenance stops at block roots
	}
	if n.Kind == xmltree.Element && n.Tag == wire.AttrWrapTag {
		name, _ := n.Attr("name")
		return xmltree.NewAttribute(name, n.LeafValue()), nil
	}
	if n.Kind != xmltree.Element {
		return n, nil
	}
	for i, ch := range n.Children {
		r, err := c.resolveTree(ch, prov)
		if err != nil {
			return nil, err
		}
		if r != ch {
			r.Parent = n
			n.Children[i] = r
		}
	}
	reorderAttributes(n)
	return n, nil
}

// unwrapBlock removes a decrypted block's <_blk> envelope: decoys
// are stripped and the single content child is returned, converted
// back to an attribute node when it is an <_attr> wrapper.
func (c *Client) unwrapBlock(blk *xmltree.Node) (*xmltree.Node, error) {
	if blk.Kind != xmltree.Element || blk.Tag != wire.BlockWrapTag {
		return nil, fmt.Errorf("client: decrypted block is not a %s envelope", wire.BlockWrapTag)
	}
	c.stripDecoys(blk)
	elems := blk.ElementChildren()
	if len(elems) != 1 {
		return nil, fmt.Errorf("client: block envelope holds %d elements, want 1", len(elems))
	}
	content := elems[0]
	content.Parent = nil
	if content.Tag == wire.AttrWrapTag {
		name, _ := content.Attr("name")
		return xmltree.NewAttribute(name, content.LeafValue()), nil
	}
	return content, nil
}

// stripDecoys removes direct _decoy children (§4.1).
func (c *Client) stripDecoys(n *xmltree.Node) {
	if n.Kind != xmltree.Element {
		return
	}
	kept := n.Children[:0]
	for _, ch := range n.Children {
		if ch.Kind == xmltree.Element && ch.Tag == wire.DecoyTag {
			continue
		}
		kept = append(kept, ch)
	}
	n.Children = kept
}

func reorderAttributes(n *xmltree.Node) {
	if n.Kind != xmltree.Element {
		return
	}
	var attrs, rest []*xmltree.Node
	for _, ch := range n.Children {
		if ch.Kind == xmltree.Attribute {
			attrs = append(attrs, ch)
		} else {
			rest = append(rest, ch)
		}
	}
	if len(attrs) == 0 {
		return
	}
	n.Children = append(attrs, rest...)
}
