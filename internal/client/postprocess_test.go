package client

import (
	"strings"
	"testing"

	"repro/internal/wire"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func TestSpliceMalformedPlaceholder(t *testing.T) {
	c, _, _ := fixture(t)
	frag := []byte(`<patient><EncBlock id="0"`)
	if _, err := c.splice(frag, map[int][]byte{0: []byte("<_blk/>")}, map[int]bool{}); err == nil {
		t.Errorf("unterminated placeholder accepted")
	}
	frag = []byte(`<patient><EncBlock nothing="1"/></patient>`)
	if _, err := c.splice(frag, map[int][]byte{}, map[int]bool{}); err == nil {
		t.Errorf("placeholder without id accepted")
	}
	frag = []byte(`<patient><EncBlock id="7"/></patient>`)
	if _, err := c.splice(frag, map[int][]byte{}, map[int]bool{}); err == nil {
		t.Errorf("missing block accepted")
	}
}

func TestSpliceNoPlaceholderPassthrough(t *testing.T) {
	c, _, _ := fixture(t)
	frag := []byte(`<patient><age>35</age></patient>`)
	out, err := c.splice(frag, nil, map[int]bool{})
	if err != nil {
		t.Fatalf("splice: %v", err)
	}
	if string(out) != string(frag) {
		t.Errorf("passthrough modified bytes")
	}
}

func TestAnnotateBlockID(t *testing.T) {
	got := annotateBlockID([]byte("<_blk><a>1</a></_blk>"), 42)
	if !strings.HasPrefix(string(got), `<_blk id="42">`) {
		t.Errorf("annotation missing: %s", got)
	}
	// Non-envelope bytes pass through untouched.
	raw := []byte("<other/>")
	if string(annotateBlockID(raw, 1)) != "<other/>" {
		t.Errorf("non-envelope bytes modified")
	}
}

func TestTopTag(t *testing.T) {
	cases := map[string]string{
		"<a>x</a>":      "a",
		"<ab c=\"1\"/>": "ab",
		"<a/>":          "a",
		"":              "",
		"plain":         "",
		"<a\nb=\"1\">x": "a",
	}
	for in, want := range cases {
		if got := topTag([]byte(in)); got != want {
			t.Errorf("topTag(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPostProcessProvenance(t *testing.T) {
	c, doc, db := fixture(t)
	_ = doc
	// Build an answer containing one fragment referencing blocks plus
	// a directly-matched block, then confirm provenance maps content
	// roots to block IDs.
	frag := db.Residue.Root.ElementChildren()[0] // first patient (residue)
	var buf strings.Builder
	if err := xmltree.NewDocument(frag.Clone()).Serialize(&buf, false); err != nil {
		t.Fatal(err)
	}
	ans := &wire.Answer{Fragments: [][]byte{[]byte(buf.String())}}
	// Collect the blocks the fragment references.
	frag.Walk(func(n *xmltree.Node) bool {
		if n.Kind == xmltree.Element && n.Tag == wire.PlaceholderTag {
			if idStr, ok := n.Attr("id"); ok {
				var id int
				if _, err := parseInt(idStr, &id); err == nil {
					ans.BlockIDs = append(ans.BlockIDs, id)
					ans.Blocks = append(ans.Blocks, db.Blocks[id])
				}
			}
		}
		return true
	})
	blocks, err := c.DecryptBlocks(ans)
	if err != nil {
		t.Fatalf("DecryptBlocks: %v", err)
	}
	res, err := c.PostProcessFull(xpath.MustParse("//patient"), ans, blocks)
	if err != nil {
		t.Fatalf("PostProcessFull: %v", err)
	}
	if len(res.BlockOf) != len(ans.BlockIDs) {
		t.Errorf("provenance entries = %d, want %d", len(res.BlockOf), len(ans.BlockIDs))
	}
	seen := map[int]bool{}
	for node, id := range res.BlockOf {
		if node == nil {
			t.Errorf("nil provenance node")
		}
		seen[id] = true
	}
	for _, id := range ans.BlockIDs {
		if !seen[id] {
			t.Errorf("block %d missing from provenance", id)
		}
	}
}

func parseInt(s string, out *int) (int, error) {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, errNotDigit
		}
		n = n*10 + int(r-'0')
	}
	*out = n
	return n, nil
}

var errNotDigit = &parseErr{}

type parseErr struct{}

func (*parseErr) Error() string { return "not a digit" }

func TestApplyValueEditErrors(t *testing.T) {
	c, _, _ := fixture(t)
	if err := c.ApplyValueEdit("nosuchattr", "a", "b", 0); err == nil {
		t.Errorf("unknown attribute accepted")
	}
	// disease is indexed under the optimal scheme (cover includes it).
	tag := "disease"
	if _, ok := c.loadAttrs()[tag]; !ok {
		t.Skipf("cover did not include %s", tag)
	}
	if err := c.ApplyValueEdit(tag, "diarrhea", "flu", 99999); err == nil {
		t.Errorf("wrong block accepted")
	}
	if err := c.ApplyValueEdit(tag, "same", "same", 0); err != nil {
		t.Errorf("no-op edit rejected: %v", err)
	}
}

func TestRebuildEntriesUnknownAttr(t *testing.T) {
	c, _, _ := fixture(t)
	if _, _, err := c.RebuildEntries("ghost"); err == nil {
		t.Errorf("unknown attribute accepted")
	}
}

func TestAttributeDomainRange(t *testing.T) {
	c, _, _ := fixture(t)
	if _, _, _, ok := c.AttributeDomainRange("ghost"); ok {
		t.Errorf("unknown attribute reported indexed")
	}
	lo, hi, _, ok := c.AttributeDomainRange("policy")
	if !ok {
		t.Fatalf("policy should be indexed")
	}
	if lo >= hi {
		t.Errorf("degenerate domain range [%d, %d]", lo, hi)
	}
	if b, ok := c.IndexedBand("policy"); !ok || b == 0 {
		t.Errorf("policy band = %d, %v", b, ok)
	}
}
