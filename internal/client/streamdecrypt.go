package client

import (
	"fmt"
	"sync"

	"repro/internal/wire"
)

// streamBacklog bounds how many undecrypted blocks may queue between
// the stream decoder and the decrypt workers. A full queue blocks the
// receive loop — that backpressure is what keeps a fast sender from
// ballooning client memory with ciphertext the workers haven't
// reached yet.
const streamBacklog = 32

// StreamDecryptor overlaps block decryption with a streamed answer's
// network receive: it implements wire.BlockSink, dispatching each
// ciphertext to a worker pool the moment its frame decodes, so by the
// time the stream trailer verifies, most plaintexts are already done.
//
// The transport may restart the stream (a retry after a torn read);
// each Reset discards everything the previous attempt delivered and
// starts a fresh pool. Collect then releases the results only when
// they provably belong to the answer the transport finally returned —
// each recorded ciphertext must be the very slice the answer carries
// (pointer identity, not byte equality), and coverage must be exact.
// Anything else (an envelope fallback, a stale-cache answer, a
// half-fed attempt) reports ok=false and the caller decrypts the
// answer itself, so a wrong or partial result can never surface.
//
// All methods are called from one goroutine at a time (the transport
// attempt loop, then the query pipeline); only the internal workers
// run concurrently.
type StreamDecryptor struct {
	c   *Client
	cur *streamAttempt
}

type streamAttempt struct {
	tasks chan streamTask
	wg    sync.WaitGroup
	mu    sync.Mutex
	out   map[int]streamBlock
	err   error
}

type streamTask struct {
	id int
	ct []byte
}

type streamBlock struct {
	ct []byte // the ciphertext slice as received (identity-checked in Collect)
	pt []byte
}

// NewStreamDecryptor returns a decryptor feeding this client's key
// set, with the client's configured parallelism as its worker width.
// The caller must Close it (Collect also finalizes), or an unfinished
// attempt's workers leak.
func (c *Client) NewStreamDecryptor() *StreamDecryptor {
	return &StreamDecryptor{c: c}
}

// Reset implements wire.BlockSink: it discards any previous attempt's
// results and starts a fresh worker pool for the stream that is about
// to arrive.
func (sd *StreamDecryptor) Reset() {
	sd.drain()
	at := &streamAttempt{
		tasks: make(chan streamTask, streamBacklog),
		out:   map[int]streamBlock{},
	}
	width := sd.c.par
	if width < 1 {
		width = 1
	}
	at.wg.Add(width)
	for i := 0; i < width; i++ {
		go func() {
			defer at.wg.Done()
			for t := range at.tasks {
				pt, err := sd.c.keys.DecryptBlock(t.ct)
				at.mu.Lock()
				if err != nil {
					if at.err == nil {
						at.err = fmt.Errorf("client: block %d: %w", t.id, err)
					}
				} else {
					at.out[t.id] = streamBlock{ct: t.ct, pt: pt}
				}
				at.mu.Unlock()
			}
		}()
	}
	sd.cur = at
}

// Block implements wire.BlockSink: it hands one received ciphertext
// to the decrypt pool, blocking when the backlog is full. A Block
// without a preceding Reset is dropped (Collect will then report
// ok=false, and the caller's own decryption pass surfaces whatever is
// wrong with the answer).
func (sd *StreamDecryptor) Block(id int, ct []byte) {
	if sd.cur == nil {
		return
	}
	sd.cur.tasks <- streamTask{id: id, ct: ct}
}

// Collect finalizes the last attempt and returns its plaintexts —
// keyed by block ID, exactly as DecryptBlocks would — but only when
// they are precisely the blocks of ans: full coverage, and every
// recorded ciphertext is the same slice ans carries. ok=false means
// the caller must decrypt ans itself; any decryption error the
// workers hit also surfaces that way (the caller's sequential pass
// rediscovers and reports it).
func (sd *StreamDecryptor) Collect(ans *wire.Answer) (map[int][]byte, bool) {
	at := sd.cur
	if at == nil || ans == nil {
		return nil, false
	}
	sd.drain()
	if at.err != nil || len(at.out) != len(ans.BlockIDs) {
		return nil, false
	}
	out := make(map[int][]byte, len(at.out))
	for i, id := range ans.BlockIDs {
		got, ok := at.out[id]
		if !ok || !sameSlice(got.ct, ans.Blocks[i]) {
			return nil, false
		}
		out[id] = got.pt
	}
	return out, true
}

// Close discards any unfinished attempt, stopping its workers. Safe
// to call repeatedly and after Collect.
func (sd *StreamDecryptor) Close() { sd.drain() }

// drain closes the current attempt's task channel and waits for its
// workers to exit.
func (sd *StreamDecryptor) drain() {
	if sd.cur == nil {
		return
	}
	close(sd.cur.tasks)
	sd.cur.wg.Wait()
	sd.cur = nil
}

// sameSlice reports that a and b are the same backing bytes —
// identity, not equality. Within one process this is exactly "this
// plaintext was decrypted from this answer's own ciphertext", which
// is what lets Collect trust work done before the answer was chosen.
func sameSlice(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}
