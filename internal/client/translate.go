package client

import (
	"fmt"

	"repro/internal/wire"
	"repro/internal/xpath"
)

// Translate rewrites a plaintext query Q into the server query Qs
// (§6.1): every tag is replaced by the DSI table label(s) it is
// stored under — the Vernam ciphertext when the tag occurs inside
// encryption blocks, the plaintext tag when it occurs in the residue
// (both when mixed) — and every value comparison whose target tag is
// encrypted is rewritten into OPESS ciphertext ranges per Fig. 7(a).
// The query's structure is preserved; the server learns shape but no
// protected tags or values.
func (c *Client) Translate(q *xpath.Path) (*wire.Query, error) {
	first, err := c.translateSteps(q, true)
	if err != nil {
		return nil, err
	}
	if first == nil {
		return nil, fmt.Errorf("client: query %s translates to an empty path", q)
	}
	return &wire.Query{First: first}, nil
}

// translateSteps converts a path into a linked QStep chain. text()
// steps are dropped: text nodes carry no DSI interval, so the server
// matches their parent element and the client's post-processing
// re-applies the original query. main marks the query's main path
// (kept for symmetry; translation is identical for predicate paths).
func (c *Client) translateSteps(p *xpath.Path, main bool) (*wire.QStep, error) {
	var first, last *wire.QStep
	for i, st := range p.Steps {
		if st.Test.Text {
			// Dropping the step transfers its predicates (rare) to
			// the parent context step, which is the closest sound
			// approximation the server can check.
			if last != nil {
				preds, err := c.translatePreds(st, "")
				if err != nil {
					return nil, err
				}
				last.Preds = append(last.Preds, preds...)
			}
			continue
		}
		qs := &wire.QStep{Axis: st.Axis, Desc: p.Desc[i]}
		if !st.Test.Wildcard {
			qs.Labels = c.labelsFor(st)
		}
		preds, err := c.translatePreds(st, stepTagKey(st))
		if err != nil {
			return nil, err
		}
		qs.Preds = preds
		if first == nil {
			first = qs
		} else {
			last.Next = qs
		}
		last = qs
	}
	return first, nil
}

// stepTagKey returns the tag key a named step binds ("" for
// wildcards), with the attribute prefix applied.
func stepTagKey(st xpath.Step) string {
	if st.Test.Wildcard || st.Test.Text {
		return ""
	}
	if st.Axis == xpath.AxisAttribute {
		return "@" + st.Test.Name
	}
	return st.Test.Name
}

// labelsFor returns the DSI table labels a named step can match.
// Unknown tags fall back to their plaintext name, which matches
// nothing — the server must not learn that the tag is absent versus
// unencrypted, and a plaintext miss reveals neither.
func (c *Client) labelsFor(st xpath.Step) []string {
	key := stepTagKey(st)
	var labels []string
	if c.encTags[key] {
		labels = append(labels, c.keys.EncryptTag(key))
	}
	if c.plainTags[key] || len(labels) == 0 {
		labels = append(labels, key)
	}
	return labels
}

func (c *Client) translatePreds(st xpath.Step, ownerTag string) ([]wire.QPred, error) {
	var out []wire.QPred
	for _, pr := range st.Preds {
		qp, err := c.translateExpr(pr, ownerTag)
		if err != nil {
			return nil, err
		}
		out = append(out, qp)
	}
	return out, nil
}

func (c *Client) translateExpr(e xpath.Expr, ownerTag string) (wire.QPred, error) {
	switch v := e.(type) {
	case *xpath.ExistsExpr:
		path, err := c.translateSteps(v.Path, false)
		if err != nil {
			return nil, err
		}
		return &wire.PredExists{Path: path}, nil
	case *xpath.CmpExpr:
		return c.translateCmp(v, ownerTag)
	case *xpath.AndExpr:
		l, err := c.translateExpr(v.L, ownerTag)
		if err != nil {
			return nil, err
		}
		r, err := c.translateExpr(v.R, ownerTag)
		if err != nil {
			return nil, err
		}
		return &wire.PredAnd{L: l, R: r}, nil
	case *xpath.OrExpr:
		l, err := c.translateExpr(v.L, ownerTag)
		if err != nil {
			return nil, err
		}
		r, err := c.translateExpr(v.R, ownerTag)
		if err != nil {
			return nil, err
		}
		return &wire.PredOr{L: l, R: r}, nil
	case *xpath.NotExpr:
		inner, err := c.translateExpr(v.E, ownerTag)
		if err != nil {
			return nil, err
		}
		return &wire.PredNot{E: inner}, nil
	case *xpath.PosExpr:
		return &wire.PredPos{N: v.N}, nil
	default:
		return nil, fmt.Errorf("client: cannot translate predicate %T", e)
	}
}

// AttributeDomainRange returns the ciphertext window covering every
// possible OPESS ciphertext of an encrypted leaf tag's domain. The
// server can answer MIN/MAX aggregates (§6.4) by picking the
// extreme indexed entry inside this window — no decryption needed on
// its side. Returns false when the tag has no value index.
func (c *Client) AttributeDomainRange(tagKey string) (lo, hi uint64, numeric bool, ok bool) {
	attr, exists := c.attrs[tagKey]
	if !exists {
		return 0, 0, false, false
	}
	vs := attr.Values()
	loR, err := attr.TranslateRange(xpath.OpGe, vs[0])
	if err != nil || len(loR) == 0 {
		return 0, 0, false, false
	}
	hiR, err := attr.TranslateRange(xpath.OpLe, vs[len(vs)-1])
	if err != nil || len(hiR) == 0 {
		return 0, 0, false, false
	}
	return loR[0].Lo, hiR[0].Hi, attr.Numeric, true
}

// translateCmp rewrites a value comparison. The comparison's target
// tag is the last named step of its path (or the owning step's tag
// for a bare "." path); when that tag is encrypted the literal
// becomes OPESS ciphertext ranges, and when it (also) occurs in
// plaintext the original comparison is kept for the residue.
func (c *Client) translateCmp(v *xpath.CmpExpr, ownerTag string) (wire.QPred, error) {
	path, err := c.translateSteps(v.Path, false)
	if err != nil {
		return nil, err
	}
	target := ownerTag
	for _, st := range v.Path.Steps {
		if k := stepTagKey(st); k != "" {
			target = k
		}
	}
	pv := &wire.PredValue{Path: path, Op: v.Op, Lit: v.Literal}
	if c.plainTags[target] || target == "" {
		pv.Plain = true
	}
	if c.encTags[target] {
		attr, ok := c.attrs[target]
		if !ok {
			// Encrypted tag with no indexed values (e.g. an interior
			// node): no ciphertext occurrence can satisfy a value
			// comparison, and the plaintext half (if any) stands.
			return pv, nil
		}
		ranges, err := attr.TranslateRange(v.Op, v.Literal)
		if err != nil {
			return nil, fmt.Errorf("client: translating %s %s %q: %w", target, v.Op, v.Literal, err)
		}
		pv.Ranges = ranges
	}
	return pv, nil
}
