package client

import (
	"fmt"

	"repro/internal/wire"
	"repro/internal/xpath"
)

// Translate rewrites a plaintext query Q into the server query Qs
// (§6.1) against the CURRENT translation state; callers that must
// hold one state across a whole read (concurrent with updates) pin a
// View first and call its Translate.
func (c *Client) Translate(q *xpath.Path) (*wire.Query, error) {
	return c.Snapshot().Translate(q)
}

// AttributeDomainRange is View.AttributeDomainRange against the
// current translation state.
func (c *Client) AttributeDomainRange(tagKey string) (lo, hi uint64, numeric bool, ok bool) {
	return c.Snapshot().AttributeDomainRange(tagKey)
}

// Translate rewrites a plaintext query Q into the server query Qs
// (§6.1): every tag is replaced by the DSI table label(s) it is
// stored under — the Vernam ciphertext when the tag occurs inside
// encryption blocks, the plaintext tag when it occurs in the residue
// (both when mixed) — and every value comparison whose target tag is
// encrypted is rewritten into OPESS ciphertext ranges per Fig. 7(a).
// The query's structure is preserved; the server learns shape but no
// protected tags or values. Every value comparison translates
// through the View's pinned transformer table.
func (v *View) Translate(q *xpath.Path) (*wire.Query, error) {
	first, err := v.translateSteps(q, true)
	if err != nil {
		return nil, err
	}
	if first == nil {
		return nil, fmt.Errorf("client: query %s translates to an empty path", q)
	}
	return &wire.Query{First: first}, nil
}

// translateSteps converts a path into a linked QStep chain. text()
// steps are dropped: text nodes carry no DSI interval, so the server
// matches their parent element and the client's post-processing
// re-applies the original query. main marks the query's main path
// (kept for symmetry; translation is identical for predicate paths).
func (v *View) translateSteps(p *xpath.Path, main bool) (*wire.QStep, error) {
	var first, last *wire.QStep
	for i, st := range p.Steps {
		if st.Test.Text {
			// Dropping the step transfers its predicates (rare) to
			// the parent context step, which is the closest sound
			// approximation the server can check.
			if last != nil {
				preds, err := v.translatePreds(st, "")
				if err != nil {
					return nil, err
				}
				last.Preds = append(last.Preds, preds...)
			}
			continue
		}
		qs := &wire.QStep{Axis: st.Axis, Desc: p.Desc[i]}
		if !st.Test.Wildcard {
			qs.Labels = v.labelsFor(st)
		}
		preds, err := v.translatePreds(st, stepTagKey(st))
		if err != nil {
			return nil, err
		}
		qs.Preds = preds
		if first == nil {
			first = qs
		} else {
			last.Next = qs
		}
		last = qs
	}
	return first, nil
}

// stepTagKey returns the tag key a named step binds ("" for
// wildcards), with the attribute prefix applied.
func stepTagKey(st xpath.Step) string {
	if st.Test.Wildcard || st.Test.Text {
		return ""
	}
	if st.Axis == xpath.AxisAttribute {
		return "@" + st.Test.Name
	}
	return st.Test.Name
}

// labelsFor returns the DSI table labels a named step can match.
// Unknown tags fall back to their plaintext name, which matches
// nothing — the server must not learn that the tag is absent versus
// unencrypted, and a plaintext miss reveals neither.
func (v *View) labelsFor(st xpath.Step) []string {
	key := stepTagKey(st)
	var labels []string
	if v.c.encTags[key] {
		labels = append(labels, v.c.keys.EncryptTag(key))
	}
	if v.c.plainTags[key] || len(labels) == 0 {
		labels = append(labels, key)
	}
	return labels
}

func (v *View) translatePreds(st xpath.Step, ownerTag string) ([]wire.QPred, error) {
	var out []wire.QPred
	for _, pr := range st.Preds {
		qp, err := v.translateExpr(pr, ownerTag)
		if err != nil {
			return nil, err
		}
		out = append(out, qp)
	}
	return out, nil
}

func (v *View) translateExpr(e xpath.Expr, ownerTag string) (wire.QPred, error) {
	switch ex := e.(type) {
	case *xpath.ExistsExpr:
		path, err := v.translateSteps(ex.Path, false)
		if err != nil {
			return nil, err
		}
		return &wire.PredExists{Path: path}, nil
	case *xpath.CmpExpr:
		return v.translateCmp(ex, ownerTag)
	case *xpath.AndExpr:
		l, err := v.translateExpr(ex.L, ownerTag)
		if err != nil {
			return nil, err
		}
		r, err := v.translateExpr(ex.R, ownerTag)
		if err != nil {
			return nil, err
		}
		return &wire.PredAnd{L: l, R: r}, nil
	case *xpath.OrExpr:
		l, err := v.translateExpr(ex.L, ownerTag)
		if err != nil {
			return nil, err
		}
		r, err := v.translateExpr(ex.R, ownerTag)
		if err != nil {
			return nil, err
		}
		return &wire.PredOr{L: l, R: r}, nil
	case *xpath.NotExpr:
		inner, err := v.translateExpr(ex.E, ownerTag)
		if err != nil {
			return nil, err
		}
		return &wire.PredNot{E: inner}, nil
	case *xpath.PosExpr:
		return &wire.PredPos{N: ex.N}, nil
	default:
		return nil, fmt.Errorf("client: cannot translate predicate %T", e)
	}
}

// AttributeDomainRange returns the ciphertext window covering every
// possible OPESS ciphertext of an encrypted leaf tag's domain. The
// server can answer MIN/MAX aggregates (§6.4) by picking the
// extreme indexed entry inside this window — no decryption needed on
// its side. Returns false when the tag has no value index.
func (v *View) AttributeDomainRange(tagKey string) (lo, hi uint64, numeric bool, ok bool) {
	attr, exists := v.attrs[tagKey]
	if !exists {
		return 0, 0, false, false
	}
	vs := attr.Values()
	loR, err := attr.TranslateRange(xpath.OpGe, vs[0])
	if err != nil || len(loR) == 0 {
		return 0, 0, false, false
	}
	hiR, err := attr.TranslateRange(xpath.OpLe, vs[len(vs)-1])
	if err != nil || len(hiR) == 0 {
		return 0, 0, false, false
	}
	return loR[0].Lo, hiR[0].Hi, attr.Numeric, true
}

// translateCmp rewrites a value comparison. The comparison's target
// tag is the last named step of its path (or the owning step's tag
// for a bare "." path); when that tag is encrypted the literal
// becomes OPESS ciphertext ranges, and when it (also) occurs in
// plaintext the original comparison is kept for the residue.
func (v *View) translateCmp(cmp *xpath.CmpExpr, ownerTag string) (wire.QPred, error) {
	path, err := v.translateSteps(cmp.Path, false)
	if err != nil {
		return nil, err
	}
	target := ownerTag
	for _, st := range cmp.Path.Steps {
		if k := stepTagKey(st); k != "" {
			target = k
		}
	}
	pv := &wire.PredValue{Path: path, Op: cmp.Op, Lit: cmp.Literal}
	if v.c.plainTags[target] || target == "" {
		pv.Plain = true
	}
	if v.c.encTags[target] {
		attr, ok := v.attrs[target]
		if !ok {
			// Encrypted tag with no indexed values (e.g. an interior
			// node): no ciphertext occurrence can satisfy a value
			// comparison, and the plaintext half (if any) stands.
			return pv, nil
		}
		ranges, err := attr.TranslateRange(cmp.Op, cmp.Literal)
		if err != nil {
			return nil, fmt.Errorf("client: translating %s %s %q: %w", target, cmp.Op, cmp.Literal, err)
		}
		pv.Ranges = ranges
	}
	return pv, nil
}
