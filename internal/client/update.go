package client

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/opess"
	"repro/internal/wire"
	"repro/internal/xmltree"
)

// Update support — the paper's future work #3 (§8), shipped as an
// extension. The client retains, per indexed attribute, the exact
// occurrence bookkeeping it used to build the value index (value ->
// containing blocks). A leaf-value edit then becomes: re-encrypt the
// touched blocks with fresh decoys and nonces, adjust the
// bookkeeping, rebuild the attribute's OPESS transformer for the new
// frequency distribution, and replace that attribute's index band
// wholesale. Whole-band replacement is deliberate: OPESS parameters
// depend on the full distribution, and replacing everything makes
// every possible edit look the same to the server.

// ApplyValueEdit records that one occurrence of oldValue (stored in
// blockID) became newValue, updating the attribute's occurrence
// bookkeeping. Call RebuildEntries afterwards to regenerate the
// index band.
func (c *Client) ApplyValueEdit(tagKey, oldValue, newValue string, blockID int) error {
	o, ok := c.occ[tagKey]
	if !ok {
		return fmt.Errorf("client: attribute %s is not indexed", tagKey)
	}
	if oldValue == newValue {
		return nil
	}
	list := o.blocks[oldValue]
	idx := -1
	for i, b := range list {
		if b == blockID {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("client: %s=%q has no occurrence in block %d", tagKey, oldValue, blockID)
	}
	o.blocks[oldValue] = append(list[:idx], list[idx+1:]...)
	o.freq[oldValue]--
	if o.freq[oldValue] == 0 {
		delete(o.freq, oldValue)
		delete(o.blocks, oldValue)
		for i, v := range o.order {
			if v == oldValue {
				o.order = append(o.order[:i], o.order[i+1:]...)
				break
			}
		}
	}
	if o.freq[newValue] == 0 {
		o.order = append(o.order, newValue)
	}
	o.freq[newValue]++
	o.blocks[newValue] = append(o.blocks[newValue], blockID)
	return nil
}

// RebuildEntries regenerates an attribute's OPESS transformer (same
// band) and its complete set of index entries from the current
// bookkeeping. The transformer table is replaced copy-on-write, so a
// concurrent query that pinned a View keeps translating through the
// pre-edit table.
func (c *Client) RebuildEntries(tagKey string) ([]btree.Entry, uint8, error) {
	o, ok := c.occ[tagKey]
	if !ok {
		return nil, 0, fmt.Errorf("client: attribute %s is not indexed", tagKey)
	}
	band := c.bands[tagKey]
	attr, err := opess.BuildBand(tagKey, o.freq, c.keys, band)
	if err != nil {
		return nil, 0, fmt.Errorf("client: rebuild %s: %w", tagKey, err)
	}
	next := make(attrTable, len(c.loadAttrs())+1)
	for k, v := range c.loadAttrs() {
		next[k] = v
	}
	next[tagKey] = attr
	c.setAttrs(next)
	var entries []btree.Entry
	for _, v := range o.order {
		es, err := attr.IndexEntries(v, o.blocks[v])
		if err != nil {
			return nil, 0, fmt.Errorf("client: rebuild %s=%q: %w", tagKey, v, err)
		}
		entries = append(entries, es...)
	}
	return entries, band, nil
}

// ReencryptBlock rebuilds an encryption block from its (edited)
// plaintext content node: fresh envelope, fresh decoy, fresh nonce.
func (c *Client) ReencryptBlock(content *xmltree.Node) ([]byte, error) {
	var root *xmltree.Node
	if content.Kind == xmltree.Attribute {
		root = content
	} else {
		root = content.Clone()
		root.Parent = nil
	}
	pt, err := c.serializeBlock(root, true)
	if err != nil {
		return nil, err
	}
	return c.keys.EncryptBlock(pt)
}

// IndexedBand exposes an attribute's band (for tests and audits).
func (c *Client) IndexedBand(tagKey string) (uint8, bool) {
	b, ok := c.bands[tagKey]
	return b, ok
}

var _ = wire.Update{} // the update flow is orchestrated by core
