package client

import (
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/dsi"
	"repro/internal/opess"
	"repro/internal/xmltree"
)

// tagOccurrences accumulates, for one leaf tag, the exact value
// frequency distribution and the containing block of each occurrence
// in document order.
type tagOccurrences struct {
	freq   map[string]int
	blocks map[string][]int
	order  []string // distinct values in first-seen order
}

// buildValueIndex constructs the OPESS transformer for every
// encrypted leaf tag and emits the value-index entries the server
// bulk-loads into its B-tree (§5.2.1). Each occurrence contributes
// its containing block's ID; the transformer splits occurrences into
// chunk ciphertexts and replicates entries by the secret scale
// factor. Decoys are added later, at block serialization, and are
// never indexed.
func (c *Client) buildValueIndex(doc *xmltree.Document, md *dsi.Metadata) ([]btree.Entry, error) {
	byTag := map[string]*tagOccurrences{}
	for _, n := range doc.Nodes() {
		if n.Kind == xmltree.Text || !n.IsLeaf() {
			continue
		}
		bid := md.NodeBlock[n]
		if bid < 0 {
			continue // plaintext values live in the residue
		}
		v := n.LeafValue()
		if v == "" {
			continue
		}
		key := tagKey(n)
		o := byTag[key]
		if o == nil {
			o = &tagOccurrences{freq: map[string]int{}, blocks: map[string][]int{}}
			byTag[key] = o
		}
		if o.freq[v] == 0 {
			o.order = append(o.order, v)
		}
		o.freq[v]++
		o.blocks[v] = append(o.blocks[v], bid)
	}

	keys := make([]string, 0, len(byTag))
	for k := range byTag {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	if len(keys) > 255 {
		return nil, fmt.Errorf("client: %d indexed attributes exceed the 255 band limit", len(keys))
	}
	var entries []btree.Entry
	attrs := attrTable{}
	for i, key := range keys {
		o := byTag[key]
		attr, err := opess.BuildBand(key, o.freq, c.keys, uint8(i+1))
		if err != nil {
			return nil, fmt.Errorf("client: value index for %s: %w", key, err)
		}
		attrs[key] = attr
		c.occ[key] = o
		c.bands[key] = uint8(i + 1)
		for _, v := range o.order {
			es, err := attr.IndexEntries(v, o.blocks[v])
			if err != nil {
				return nil, fmt.Errorf("client: value index for %s=%q: %w", key, v, err)
			}
			entries = append(entries, es...)
		}
	}
	// One atomic publish: no partially-built table is ever visible.
	c.setAttrs(attrs)
	return entries, nil
}
