package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/admission"
	"repro/internal/wire"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// AggregateMinMax evaluates MIN(path) or MAX(path) over the leaf
// values the path selects. Per §6.4, when the target tag is
// encrypted and indexed, the order-preserving value index lets the
// server locate the extreme value's block with a single probe and
// ship exactly one block — no decryption happens server-side and the
// client decrypts one block instead of the whole answer. Paths with
// predicates, or targets with plaintext occurrences, fall back to a
// full query with client-side aggregation (still correct, just not
// single-block). COUNT is intentionally unsupported: splitting
// destroys multiplicities, the paper's stated trade-off (§5.2.1).
func (s *System) AggregateMinMax(pathStr string, max bool) (string, Timings, error) {
	return s.AggregateMinMaxContext(context.Background(), pathStr, max)
}

// AggregateMinMaxContext is AggregateMinMax with a caller-supplied
// context bounding the backend round trips.
func (s *System) AggregateMinMaxContext(ctx context.Context, pathStr string, max bool) (string, Timings, error) {
	// Aggregates ride the middle priority class: below a waiting
	// user's query, above background updates.
	ctx = admission.ContextWithDefaultPriority(ctx, admission.Aggregate)
	path, err := xpath.Parse(pathStr)
	if err != nil {
		return "", Timings{}, err
	}
	skew := 0
	for {
		var (
			v   string
			tm  Timings
			err error
		)
		if skew < maxSkewRetries {
			v, tm, err = s.aggregateOnce(ctx, s.pin(), path, pathStr, max)
		} else {
			// Escalate like QueryPathContext: under the read lock no
			// flush can race, so the attempt cannot skew again.
			s.pin()
			s.mu.RLock()
			v, tm, err = s.aggregateOnce(ctx, s.snap.Load(), path, pathStr, max)
			s.mu.RUnlock()
		}
		if errors.Is(err, errUpdateConflict) {
			// A queued update touched the band this aggregate probes
			// (or a band its predicates compare through); push the
			// group commit out and retry against the settled state.
			s.FlushUpdates(ctx)
			continue
		}
		if errors.Is(err, errSnapshotSkew) {
			skew++
			continue
		}
		return v, tm, err
	}
}

// aggregateOnce is one attempt of the aggregate pipeline against a
// pinned readSnap; errUpdateConflict asks the entry point to flush
// queued updates and retry, errSnapshotSkew to re-pin and retry.
func (s *System) aggregateOnce(ctx context.Context, sn *readSnap, path *xpath.Path, pathStr string, max bool) (string, Timings, error) {
	// One pin covers both the index probe and the query fallback, so
	// both halves translate through the same transformer table.
	if sn.pending && sn.ring != nil {
		return "", Timings{}, ErrUpdatePending
	}
	tagKey := lastNamedTag(path)
	keys, unknown := cmpKeys(path)
	if tagKey != "" {
		keys = append(keys, tagKey)
	} else {
		unknown = true
	}
	if sn.bandConflict(s.Client, keys, unknown) {
		return "", Timings{}, errUpdateConflict
	}
	fastPath := tagKey != "" && !hasPredicates(path)
	if fastPath {
		if v, tm, ok, err := s.aggregateViaIndex(ctx, sn, tagKey, max); err != nil || ok {
			return v, tm, err
		}
	}
	// Fallback: full secure query, aggregate at the client.
	nodes, _, tm, err := s.queryAttempt(ctx, sn, path)
	if err != nil {
		return "", tm, err
	}
	if len(nodes) == 0 {
		return "", tm, fmt.Errorf("core: %s selects no values", pathStr)
	}
	var values []string
	for _, n := range nodes {
		values = append(values, xpath.StringValue(n))
	}
	return extremeOf(values, max), tm, nil
}

// aggregateViaIndex is the §6.4 single-block path. ok=false means
// the tag is not exclusively encrypted-and-indexed and the caller
// must fall back.
func (s *System) aggregateViaIndex(ctx context.Context, sn *readSnap, tagKey string, max bool) (string, Timings, bool, error) {
	var tm Timings
	start := time.Now()
	lo, hi, _, indexed := sn.view.AttributeDomainRange(tagKey)
	tm.ClientTranslate = time.Since(start)
	if !indexed || s.Client.TagOccursPlain(tagKey) {
		return "", tm, false, nil
	}

	start = time.Now()
	var (
		bid   int
		ct    []byte
		found bool
	)
	if pb, ok := sn.backend.(ProofBackend); ok && sn.ring != nil {
		// Verified probe: the proof carries the full authenticated
		// buckets of the probed range, so both the extreme and
		// emptiness are checked against the Merkle root.
		res, err := pb.ExtremeProof(ctx, lo, hi, max)
		if err != nil {
			tm.ServerExec = time.Since(start)
			return "", tm, false, err
		}
		if vErr := sn.ring.verifyExtremeSince(sn.verSeq, lo, hi, max, res.Found, res.BlockID, res.Block, res.Proof); vErr != nil {
			tm.ServerExec = time.Since(start)
			return "", tm, false, vErr
		}
		bid, ct, found = res.BlockID, res.Block, res.Found
	} else {
		var err error
		bid, ct, found, err = sn.backend.Extreme(ctx, lo, hi, max)
		if err != nil {
			tm.ServerExec = time.Since(start)
			return "", tm, false, err
		}
	}
	tm.ServerExec = time.Since(start)
	if s.updSeq.Load() != sn.updSeq {
		// The probe window came from the pinned transformer table; a
		// flush that raced the probe may have re-banded it. Re-pin.
		return "", tm, false, errSnapshotSkew
	}
	if !found {
		return "", tm, false, fmt.Errorf("core: no indexed values for %s", tagKey)
	}
	ans := &wire.Answer{BlockIDs: []int{bid}, Blocks: [][]byte{ct}}
	tm.AnswerBytes = ans.ByteSize()
	tm.BlocksShipped = 1
	tm.Transmit = s.Link.TransferTime(tm.AnswerBytes)

	start = time.Now()
	blocks, err := s.Client.DecryptBlocks(ans)
	tm.ClientDecrypt = time.Since(start)
	if err != nil {
		return "", tm, false, err
	}
	s.applySimDecrypt(&tm, ans)

	start = time.Now()
	doc, err := xmltree.ParseCompact(blocks[bid])
	if err != nil {
		return "", tm, false, fmt.Errorf("core: aggregate block: %w", err)
	}
	values := valuesOfTag(doc.Root, tagKey)
	tm.ClientPost = time.Since(start)
	if len(values) == 0 {
		return "", tm, false, fmt.Errorf("core: block %d holds no %s values", bid, tagKey)
	}
	return extremeOf(values, max), tm, true, nil
}

// lastNamedTag returns the tag key of the path's last named step, or
// "" for wildcard/text endings.
func lastNamedTag(p *xpath.Path) string {
	for i := len(p.Steps) - 1; i >= 0; i-- {
		st := p.Steps[i]
		if st.Test.Text {
			continue
		}
		if st.Test.Wildcard {
			return ""
		}
		if st.Axis == xpath.AxisAttribute {
			return "@" + st.Test.Name
		}
		return st.Test.Name
	}
	return ""
}

func hasPredicates(p *xpath.Path) bool {
	for _, st := range p.Steps {
		if len(st.Preds) > 0 {
			return true
		}
	}
	return false
}

// valuesOfTag collects the leaf values of the given tag inside a
// decrypted block envelope (decoys excluded).
func valuesOfTag(n *xmltree.Node, tagKey string) []string {
	var out []string
	attr := false
	name := tagKey
	if len(tagKey) > 0 && tagKey[0] == '@' {
		attr = true
		name = tagKey[1:]
	}
	n.Walk(func(m *xmltree.Node) bool {
		if m.Kind == xmltree.Element && m.Tag == wire.DecoyTag {
			return false
		}
		switch {
		case attr && m.Kind == xmltree.Attribute && m.Tag == name:
			out = append(out, m.Value)
		case !attr && m.Kind == xmltree.Element && m.Tag == name && m.IsLeaf():
			out = append(out, m.LeafValue())
		}
		return true
	})
	return out
}

// extremeOf picks the min or max of values, numerically when every
// value parses as a number and lexicographically otherwise.
func extremeOf(values []string, max bool) string {
	numeric := true
	for _, v := range values {
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			numeric = false
			break
		}
	}
	best := values[0]
	for _, v := range values[1:] {
		var less bool
		if numeric {
			a, _ := strconv.ParseFloat(v, 64)
			b, _ := strconv.ParseFloat(best, 64)
			less = a < b
		} else {
			less = bytes.Compare([]byte(v), []byte(best)) < 0
		}
		if less != max && v != best {
			best = v
		}
	}
	return best
}
