package core

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// plaintext extreme for reference.
func refExtreme(t *testing.T, doc *xmltree.Document, q string, max bool) string {
	t.Helper()
	nodes := xpath.Evaluate(doc, xpath.MustParse(q))
	if len(nodes) == 0 {
		t.Fatalf("reference query %s empty", q)
	}
	var vals []string
	for _, n := range nodes {
		vals = append(vals, xpath.StringValue(n))
	}
	return extremeOf(vals, max)
}

// pathForTag maps NASA tags to the path selecting all their
// occurrences.
var pathForTag = map[string]string{
	"initial": "//author/initial", "last": "//author/last",
	"age": "//dataset/age", "city": "//dataset/city",
	"date": "//dataset/date", "publisher": "//dataset/publisher",
	"title": "//dataset/title",
}

func TestAggregateMinMaxEncryptedSingleBlock(t *testing.T) {
	doc := datagen.NASA(60, 5)
	sys, err := Host(doc, datagen.NASASCs(), SchemeOpt, []byte("agg"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	// Pick any tag the optimal cover actually encrypted (the minimum
	// vertex cover is not unique; which side wins is instance
	// dependent, §4.2).
	var tag, q string
	for candidate := range sys.Scheme.CoverTags {
		if p, ok := pathForTag[candidate]; ok && !sys.Client.TagOccursPlain(candidate) {
			tag, q = candidate, p
			break
		}
	}
	if tag == "" {
		t.Fatalf("no coverable tag in %v", sys.Scheme.CoverTags)
	}
	for _, max := range []bool{false, true} {
		got, tm, err := sys.AggregateMinMax(q, max)
		if err != nil {
			t.Fatalf("AggregateMinMax(%s, max=%v): %v", tag, max, err)
		}
		want := refExtreme(t, doc, q, max)
		if got != want {
			t.Errorf("%s max=%v: got %q, want %q", tag, max, got, want)
		}
		// §6.4: exactly one block ships on the index path.
		if tm.BlocksShipped != 1 {
			t.Errorf("%s max=%v: shipped %d blocks, want 1", tag, max, tm.BlocksShipped)
		}
	}
}

func TestAggregateMinMaxNumericEncrypted(t *testing.T) {
	// Force a numeric attribute ("date") into the encrypted side.
	doc := datagen.NASA(50, 6)
	scs := append(datagen.NASASCs(), "//dataset:(/date, /altname)")
	sys, err := Host(doc, scs, SchemeOpt, []byte("agg2"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	if !sys.Scheme.CoverTags["date"] {
		t.Skip("optimal cover did not pick date; nothing to test on the index path")
	}
	got, tm, err := sys.AggregateMinMax("//dataset/date", false)
	if err != nil {
		t.Fatalf("MIN(date): %v", err)
	}
	if want := refExtreme(t, doc, "//dataset/date", false); got != want {
		t.Errorf("MIN(date) = %q, want %q", got, want)
	}
	if tm.BlocksShipped != 1 {
		t.Errorf("MIN(date) shipped %d blocks", tm.BlocksShipped)
	}
	gotMax, _, err := sys.AggregateMinMax("//dataset/date", true)
	if err != nil {
		t.Fatalf("MAX(date): %v", err)
	}
	if want := refExtreme(t, doc, "//dataset/date", true); gotMax != want {
		t.Errorf("MAX(date) = %q, want %q", gotMax, want)
	}
}

func TestAggregateMinMaxPlaintextFallback(t *testing.T) {
	doc := datagen.NASA(40, 7)
	sys, err := Host(doc, datagen.NASASCs(), SchemeOpt, []byte("agg3"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	// "publisher" is plaintext under the optimal cover: fallback path.
	got, _, err := sys.AggregateMinMax("//dataset/publisher", false)
	if err != nil {
		t.Fatalf("MIN(publisher): %v", err)
	}
	if want := refExtreme(t, doc, "//dataset/publisher", false); got != want {
		t.Errorf("MIN(publisher) = %q, want %q", got, want)
	}
}

func TestAggregateWithPredicateFallsBack(t *testing.T) {
	doc := datagen.NASA(40, 8)
	sys, err := Host(doc, datagen.NASASCs(), SchemeOpt, []byte("agg4"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	q := "//dataset[publisher='NASA']//last"
	got, _, err := sys.AggregateMinMax(q, true)
	if err != nil {
		t.Fatalf("MAX with predicate: %v", err)
	}
	if want := refExtreme(t, doc, q, true); got != want {
		t.Errorf("predicated MAX = %q, want %q", got, want)
	}
}

func TestAggregateErrors(t *testing.T) {
	doc := datagen.NASA(20, 9)
	sys, _ := Host(doc, datagen.NASASCs(), SchemeOpt, []byte("agg5"))
	if _, _, err := sys.AggregateMinMax("//nosuchtag", false); err == nil {
		t.Errorf("aggregate over empty selection should fail")
	}
	if _, _, err := sys.AggregateMinMax("//dataset[", false); err == nil {
		t.Errorf("bad path accepted")
	}
}

func TestExtremeOf(t *testing.T) {
	if got := extremeOf([]string{"9", "10", "2"}, false); got != "2" {
		t.Errorf("numeric min = %q", got)
	}
	if got := extremeOf([]string{"9", "10", "2"}, true); got != "10" {
		t.Errorf("numeric max = %q", got)
	}
	if got := extremeOf([]string{"pear", "apple", "plum"}, false); got != "apple" {
		t.Errorf("string min = %q", got)
	}
	if got := extremeOf([]string{"pear", "apple", "plum"}, true); got != "plum" {
		t.Errorf("string max = %q", got)
	}
	if got := extremeOf([]string{"7"}, true); got != "7" {
		t.Errorf("singleton = %q", got)
	}
}

func TestLastNamedTagAndPredicates(t *testing.T) {
	cases := map[string]string{
		"//author/last":              "last",
		"//insurance/@coverage":      "@coverage",
		"//pname/text()":             "pname",
		"//patient/*":                "",
		"//a/b/following-sibling::c": "c",
	}
	for q, want := range cases {
		if got := lastNamedTag(xpath.MustParse(q)); got != want {
			t.Errorf("lastNamedTag(%s) = %q, want %q", q, got, want)
		}
	}
	if hasPredicates(xpath.MustParse("//a/b")) {
		t.Errorf("no predicates expected")
	}
	if !hasPredicates(xpath.MustParse("//a[b=1]/c")) {
		t.Errorf("predicate not detected")
	}
}
