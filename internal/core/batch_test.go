package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

func hostBatched(t *testing.T, size int, maxWait time.Duration) *System {
	t.Helper()
	sys, _ := hostForUpdate(t)
	if err := sys.EnableIntegrity(); err != nil {
		t.Fatal(err)
	}
	sys.EnableUpdateBatching(size, maxWait)
	return sys
}

func (s *System) queuedLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.updBatch == nil {
		return 0
	}
	return len(s.updBatch.queue)
}

// waitQueued blocks until at least n updates sit in the batch queue.
func waitQueued(t *testing.T, sys *System, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if sys.queuedLen() >= n {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("queue never reached %d entries", n)
}

func localGen(t *testing.T, sys *System) uint64 {
	t.Helper()
	l, ok := sys.Server.(Local)
	if !ok {
		t.Fatal("backend is not Local")
	}
	return l.S.Generation()
}

// Three concurrent updates on disjoint targets — selected through
// pname predicates, whose band none of them rewrites — coalesce into
// one group commit: one generation bump, one chained root advance,
// and every caller's Timings report the shared batch.
func TestBatchedUpdatesShareOneCommit(t *testing.T) {
	sys := hostBatched(t, 3, 2*time.Second)
	gen0 := localGen(t, sys)

	// The three members are chosen so no member's READ ships a block
	// another member re-encrypts (which would — correctly — trip the
	// block barrier and split the batch): each selects by its own
	// target's value band (server-side filtered to one block) or, for
	// the pname rename, writes a block family nobody else reads.
	type upd struct{ q, v string }
	us := []upd{
		{"//insurance[policy=77110]/policy", "88888"},
		{"//treat[disease='leukemia']/disease", "cholera"},
		{"//patient[SSN='763895']/pname", "Liz"},
	}
	tms := make([]Timings, len(us))
	errs := make([]error, len(us))
	ns := make([]int, len(us))
	var wg sync.WaitGroup
	for i, u := range us {
		wg.Add(1)
		go func(i int, u upd) {
			defer wg.Done()
			ns[i], tms[i], errs[i] = sys.UpdateLeafValuesTimed(context.Background(), u.q, u.v)
		}(i, u)
	}
	wg.Wait()

	maxBatch := 0
	for i := range us {
		if errs[i] != nil {
			t.Fatalf("update %d: %v", i, errs[i])
		}
		if ns[i] != 1 {
			t.Fatalf("update %d edited %d values, want 1", i, ns[i])
		}
		if !tms[i].UpdateBatched {
			t.Fatalf("update %d did not report batching", i)
		}
		if tms[i].UpdateFlushWait <= 0 {
			t.Fatalf("update %d: zero flush wait", i)
		}
		if tms[i].UpdateBatchSize > maxBatch {
			maxBatch = tms[i].UpdateBatchSize
		}
	}
	if maxBatch != 3 {
		t.Fatalf("max batch size %d, want 3 (one shared flush)", maxBatch)
	}
	if got := localGen(t, sys); got != gen0+1 {
		t.Fatalf("3 batched updates bumped the generation %d times, want 1", got-gen0)
	}

	// Verified queries reflect every member against the batch root.
	for q, want := range map[string]string{
		"//patient[.//policy>80000]/pname":      "Ann",
		"//patient[.//disease='cholera']/pname": "Matt",
		"//patient[pname='Liz']/SSN":            "763895",
	} {
		got := queryValues(t, sys, q)
		if len(got) != 1 || got[0] != want {
			t.Errorf("after batch, %s = %v, want [%s]", q, got, want)
		}
	}
	if got := queryValues(t, sys, "//patient[.//disease='leukemia']/pname"); len(got) != 0 {
		t.Errorf("leukemia still found on %v", got)
	}
}

// A reader whose value comparisons translate through a band a queued
// update rewrote must flush the queue first (the rewritten client
// table is ahead of the server); readers over untouched bands sail
// past the queue against the pre-batch snapshot.
func TestReaderBarrierFlushesConflictingQueue(t *testing.T) {
	sys := hostBatched(t, 8, 3*time.Second)

	var (
		wg   sync.WaitGroup
		tm   Timings
		uerr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, tm, uerr = sys.UpdateLeafValuesTimed(context.Background(), "//patient[pname='Matt']/treat[1]/disease", "cholera")
	}()
	waitQueued(t, sys, 1)

	// Non-conflicting read (pname band untouched): no flush.
	if got := queryValues(t, sys, "//patient[pname='Ann']/pname"); len(got) != 1 {
		t.Fatalf("non-conflicting query = %v", got)
	}
	if n := sys.queuedLen(); n != 1 {
		t.Fatalf("non-conflicting query drained the queue (len %d)", n)
	}

	// Conflicting read (disease comparison): flushes, sees the update.
	got := queryValues(t, sys, "//patient[.//disease='cholera']/pname")
	if len(got) != 1 || got[0] != "Matt" {
		t.Fatalf("conflicting query = %v, want [Matt]", got)
	}
	if n := sys.queuedLen(); n != 0 {
		t.Fatalf("queue not drained by conflicting query (len %d)", n)
	}
	wg.Wait()
	if uerr != nil {
		t.Fatalf("queued update: %v", uerr)
	}
	if !tm.UpdateBatched || tm.UpdateBatchSize != 1 {
		t.Fatalf("queued update settled oddly: batched=%v size=%d", tm.UpdateBatched, tm.UpdateBatchSize)
	}
}

// A writer whose read touches a block a queued member re-encrypted
// must flush and redo its read-modify-write, or it would rebuild the
// block from the pre-batch ciphertext and silently drop the queued
// edit. Here both writers hit the same disease leaf: the second must
// observe (and overwrite) the first, not resurrect leukemia.
func TestWriterBlockBarrierPreservesQueuedEdit(t *testing.T) {
	sys := hostBatched(t, 8, 250*time.Millisecond)

	var wg sync.WaitGroup
	var aerr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, aerr = sys.UpdateLeafValuesTimed(context.Background(), "//patient[pname='Matt']/treat[1]/disease", "cholera")
	}()
	waitQueued(t, sys, 1)

	n, err := sys.UpdateLeafValues("//patient[pname='Matt']/treat[1]/disease", "measles")
	if err != nil {
		t.Fatalf("second writer: %v", err)
	}
	if n != 1 {
		t.Fatalf("second writer edited %d values, want 1", n)
	}
	wg.Wait()
	if aerr != nil {
		t.Fatalf("first writer: %v", aerr)
	}

	if got := queryValues(t, sys, "//patient[pname='Matt']/treat[1]/disease"); len(got) != 1 || got[0] != "measles" {
		t.Fatalf("final disease = %v, want [measles]", got)
	}
	for _, gone := range []string{"cholera", "leukemia"} {
		if got := queryValues(t, sys, "//patient[.//disease='"+gone+"']/pname"); len(got) != 0 {
			t.Fatalf("%s still queryable on %v", gone, got)
		}
	}
}

// Aggregates barrier like queries: a MIN over a band with a queued
// rewrite flushes first and reports the post-batch extreme.
func TestAggregateBarrierFlushesQueue(t *testing.T) {
	sys := hostBatched(t, 8, 3*time.Second)

	var wg sync.WaitGroup
	var uerr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, uerr = sys.UpdateLeafValuesTimed(context.Background(), "//patient[pname='Betty']/insurance/policy", "1")
	}()
	waitQueued(t, sys, 1)

	got, _, err := sys.AggregateMinMax("//insurance/policy", false)
	if err != nil {
		t.Fatalf("MIN(policy): %v", err)
	}
	if got != "1" {
		t.Fatalf("MIN(policy) = %q, want 1 (queued update must flush first)", got)
	}
	wg.Wait()
	if uerr != nil {
		t.Fatalf("queued update: %v", uerr)
	}
}

// FlushUpdates is the explicit durability point: it drains the queue
// without waiting for size or timer.
func TestFlushUpdatesDrainsQueue(t *testing.T) {
	sys := hostBatched(t, 8, 3*time.Second)

	var wg sync.WaitGroup
	var tm Timings
	var uerr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, tm, uerr = sys.UpdateLeafValuesTimed(context.Background(), "//patient[pname='Matt']/treat[1]/disease", "cholera")
	}()
	waitQueued(t, sys, 1)
	if err := sys.FlushUpdates(context.Background()); err != nil {
		t.Fatalf("FlushUpdates: %v", err)
	}
	wg.Wait()
	if uerr != nil {
		t.Fatalf("queued update: %v", uerr)
	}
	if !tm.UpdateBatched || tm.UpdateBatchSize != 1 {
		t.Fatalf("flushed update: batched=%v size=%d", tm.UpdateBatched, tm.UpdateBatchSize)
	}
	if got := queryValues(t, sys, "//patient[.//disease='cholera']/pname"); len(got) != 1 || got[0] != "Matt" {
		t.Fatalf("after flush, cholera on %v", got)
	}
}

// With batching off (or size 1) the Timings stay in the legacy shape:
// no batch fields, and updates go out as single frames.
func TestBatchingOffKeepsLegacyTimings(t *testing.T) {
	sys, _ := hostForUpdate(t)
	sys.EnableUpdateBatching(1, 0) // size <= 1: off
	n, tm, err := sys.UpdateLeafValuesTimed(context.Background(), "//patient[pname='Matt']/treat[1]/disease", "cholera")
	if err != nil || n != 1 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	if tm.UpdateBatched || tm.UpdateBatchSize != 0 || tm.UpdateEnqueue != 0 || tm.UpdateFlushWait != 0 {
		t.Fatalf("legacy update leaked batch fields: %+v", tm)
	}
	if tm.UpdateApply <= 0 {
		t.Fatal("apply time not recorded")
	}
}

// lossyBatchBackend fails the next batch send AFTER the inner backend
// applied it — an acknowledgment lost in flight. Embedding Local in a
// distinct type makes the failure classify as ambiguous (only a bare
// Local is known to fail atomically).
type lossyBatchBackend struct {
	Local
	mu        sync.Mutex
	failNext  bool
	batchSent int
}

func (f *lossyBatchBackend) ApplyUpdateBatch(ctx context.Context, b *wire.UpdateBatch) error {
	f.mu.Lock()
	fail := f.failNext
	f.failNext = false
	f.batchSent++
	f.mu.Unlock()
	if err := f.Local.ApplyUpdateBatch(ctx, b); err != nil {
		return err
	}
	if fail {
		return errors.New("connection reset")
	}
	return nil
}

// An ambiguous batch failure stashes the WHOLE batch: every member's
// caller gets ErrUpdatePending, verified queries refuse, and one
// Reconcile resends the frame under its original IDs and commits all
// members together.
func TestBatchAmbiguousFailureStashesAndReconciles(t *testing.T) {
	sys, _ := hostForUpdate(t)
	if err := sys.EnableIntegrity(); err != nil {
		t.Fatal(err)
	}
	fb := &lossyBatchBackend{Local: sys.Server.(Local), failNext: true}
	sys.UseBackend(fb)
	sys.EnableUpdateBatching(2, 3*time.Second)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, u := range []struct{ q, v string }{
		{"//patient[pname='Ann']/insurance/policy", "55555"},
		{"//patient[pname='Matt']/treat[1]/disease", "cholera"},
	} {
		wg.Add(1)
		go func(i int, q, v string) {
			defer wg.Done()
			_, errs[i] = sys.UpdateLeafValuesContext(context.Background(), q, v)
		}(i, u.q, u.v)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrUpdatePending) {
			t.Fatalf("member %d got %v, want ErrUpdatePending", i, err)
		}
	}
	if !sys.UpdatePending() {
		t.Fatal("no pending batch after ambiguous failure")
	}
	if _, _, _, err := sys.Query("//patient/pname"); !errors.Is(err, ErrUpdatePending) {
		t.Fatalf("verified query during pending batch = %v", err)
	}

	n, err := sys.Reconcile(context.Background())
	if err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	if n != 2 {
		t.Fatalf("Reconcile reported %d edits, want 2 (both members)", n)
	}
	if sys.UpdatePending() {
		t.Fatal("still pending after Reconcile")
	}
	fb.mu.Lock()
	sent := fb.batchSent
	fb.mu.Unlock()
	if sent != 2 {
		t.Fatalf("backend saw %d batch sends, want 2 (original + resend)", sent)
	}
	for q, want := range map[string]string{
		"//patient[.//policy>50000]/pname":      "Ann",
		"//patient[.//disease='cholera']/pname": "Matt",
	} {
		got := queryValues(t, sys, q)
		if len(got) != 1 || got[0] != want {
			t.Errorf("reconciled batch: %s = %v, want [%s]", q, got, want)
		}
	}
}

// plainBackend strips the BatchBackend extension off Local: flushes
// must fall back to sequential member sends and still commit the
// whole queue coherently (tail root included).
type plainBackend struct{ l Local }

func (p plainBackend) Execute(ctx context.Context, q *wire.Query) (*wire.Answer, error) {
	return p.l.Execute(ctx, q)
}
func (p plainBackend) Extreme(ctx context.Context, lo, hi uint64, max bool) (int, []byte, bool, error) {
	return p.l.Extreme(ctx, lo, hi, max)
}
func (p plainBackend) ApplyUpdate(ctx context.Context, u *wire.Update) error {
	return p.l.ApplyUpdate(ctx, u)
}

func TestSequentialFallbackWithoutBatchBackend(t *testing.T) {
	sys, _ := hostForUpdate(t)
	if err := sys.EnableIntegrity(); err != nil {
		t.Fatal(err)
	}
	sys.UseBackend(plainBackend{l: sys.Server.(Local)})
	sys.EnableUpdateBatching(2, 3*time.Second)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, u := range []struct{ q, v string }{
		{"//patient[pname='Ann']/insurance/policy", "77777"},
		{"//patient[pname='Matt']/treat[1]/disease", "cholera"},
	} {
		wg.Add(1)
		go func(i int, q, v string) {
			defer wg.Done()
			_, errs[i] = sys.UpdateLeafValuesContext(context.Background(), q, v)
		}(i, u.q, u.v)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}
	for q, want := range map[string]string{
		"//patient[.//policy>70000]/pname":      "Ann",
		"//patient[.//disease='cholera']/pname": "Matt",
	} {
		got := queryValues(t, sys, q)
		if len(got) != 1 || got[0] != want {
			t.Errorf("sequential fallback: %s = %v, want [%s]", q, got, want)
		}
	}
}
