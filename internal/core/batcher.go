package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/wire"
	"repro/internal/xpath"
)

// Owner-side group commit. With EnableUpdateBatching on, concurrent
// UpdateLeafValues callers still serialize their read-modify-write
// PREPARATION under the exclusive lock (the client's occurrence
// tables and OPESS transformers mutate, so there is no way around
// that), but the expensive tail — the backend round trip, the
// server's Merkle advance and generation bump, the WAL fsync — is
// shared: prepared updates enqueue, and the caller that fills the
// queue (or a timer) flushes them as ONE wire.UpdateBatch.
//
// Consistency between the queue and readers: a prepared-but-unflushed
// update has already rewritten the client's value tables, while the
// server still serves the pre-batch state. A read that translates a
// value comparison through a rewritten OPESS band would therefore ask
// the server for ciphertexts it doesn't index yet and silently miss.
// The conflict barriers below force the flush out first in exactly
// those cases — reads over untouched bands keep running against the
// (serializable) pre-batch snapshot, which is what keeps batching a
// win under mixed reader/writer load.

// errUpdateConflict is the internal retry signal: a queued update
// conflicts with the read being attempted; flush, then try again.
// It never escapes the package's public entry points.
var errUpdateConflict = errors.New("core: queued update conflicts with this read")

// BatchBackend is the optional backend extension for group-committed
// updates: a whole wire.UpdateBatch applied atomically (one
// generation, one root advance, one durability barrier). Local and
// the remote client both implement it; a backend without it gets the
// members sequentially.
type BatchBackend interface {
	ApplyUpdateBatch(ctx context.Context, b *wire.UpdateBatch) error
}

// ApplyUpdateBatch implements BatchBackend.
func (l Local) ApplyUpdateBatch(ctx context.Context, b *wire.UpdateBatch) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.S.ApplyUpdateBatch(b.Updates)
}

// defaultUpdateMaxWait bounds how long the first queued update waits
// for company before flushing anyway.
const defaultUpdateMaxWait = 2 * time.Millisecond

// updateBatcher is the queue of prepared updates awaiting one group
// commit. All fields are guarded by the System's exclusive lock
// (reads under either lock half are safe: mutation requires the
// writer side).
type updateBatcher struct {
	size    int
	maxWait time.Duration
	queue   []*queuedEdit
	timer   *time.Timer
}

// preparedUpdate is the output of the locked read-modify-write
// preparation: the wire frame, the chained verifier clone holding
// the commitment AFTER this member (nil without integrity), and how
// many leaf values it edits.
type preparedUpdate struct {
	upd   *wire.Update
	next  *wire.AuthVerifier
	edits int
}

// queuedEdit is one caller waiting for its batch to commit.
type queuedEdit struct {
	prep *preparedUpdate
	done chan batchOutcome // buffered(1)
}

// batchOutcome is what a queued caller learns when its batch settles.
type batchOutcome struct {
	err        error
	batchSize  int
	flushStart time.Time
	applyDur   time.Duration
}

// EnableUpdateBatching opts this system into owner-side group commit:
// concurrent updates coalesce into batches of up to size members,
// flushed when full or after maxWait (whichever first; maxWait <= 0
// selects a small default). size <= 1 turns batching off.
func (s *System) EnableUpdateBatching(size int, maxWait time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if size <= 1 {
		s.updBatch = nil
		s.publishLocked()
		return
	}
	if maxWait <= 0 {
		maxWait = defaultUpdateMaxWait
	}
	s.updBatch = &updateBatcher{size: size, maxWait: maxWait}
	s.publishLocked()
}

// FlushUpdates forces any queued updates out as a group commit now.
// Reads that hit a conflict barrier call this; it is also the hook
// for a caller that wants a durability point ("everything I was told
// committed is on the server") without waiting out maxWait. The
// returned error is the batch's outcome (also delivered to each
// waiting caller); nil when the queue was empty.
func (s *System) FlushUpdates(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushBatchLocked(ctx)
}

// cmpKeys collects the tag keys of every value comparison in the
// path — the OPESS translation inputs a queued band rewrite would
// invalidate. unknown reports a comparison whose target tag could
// not be resolved (wildcard): the caller must assume it conflicts
// with everything.
func cmpKeys(p *xpath.Path) (keys []string, unknown bool) {
	cp := p.Clone()
	cp.RewriteCmps(func(e *xpath.CmpExpr) {
		key := lastNamedTag(e.Path)
		if key == "" {
			unknown = true
			return
		}
		keys = append(keys, key)
	})
	return keys, unknown
}

// queuedBandConflictLocked reports whether a read depending on the
// given tag keys must wait for the queue to flush: true when a queued
// member rewrote one of their OPESS bands (or the key set is unknown
// and anything at all is queued). Caller holds either half of s.mu.
func (s *System) queuedBandConflictLocked(keys []string, unknown bool) bool {
	b := s.updBatch
	if b == nil || len(b.queue) == 0 {
		return false
	}
	if unknown {
		return true
	}
	var pending map[uint8]bool
	for _, qe := range b.queue {
		for _, band := range qe.prep.upd.DropBands {
			if pending == nil {
				pending = map[uint8]bool{}
			}
			pending[band] = true
		}
	}
	if pending == nil {
		return false
	}
	for _, k := range keys {
		if band, ok := s.Client.IndexedBand(k); ok && pending[band] {
			return true
		}
	}
	return false
}

// queuedBlockConflictLocked reports whether any of the given block
// IDs was re-encrypted by a queued member: the server would ship the
// pre-batch ciphertext, so a writer reading its target out of such a
// block would lose the queued edit. Caller holds s.mu exclusively.
func (s *System) queuedBlockConflictLocked(blockIDs []int) bool {
	b := s.updBatch
	if b == nil || len(b.queue) == 0 {
		return false
	}
	touched := map[int]bool{}
	for _, qe := range b.queue {
		for _, bu := range qe.prep.upd.Blocks {
			touched[bu.ID] = true
		}
	}
	for _, id := range blockIDs {
		if touched[id] {
			return true
		}
	}
	return false
}

// totalEdits sums the member edit counts of a batch.
func totalEdits(batch []*queuedEdit) int {
	n := 0
	for _, qe := range batch {
		n += qe.prep.edits
	}
	return n
}

// deliverBatch hands one shared outcome to every waiting caller.
func deliverBatch(batch []*queuedEdit, out batchOutcome) {
	for _, qe := range batch {
		qe.done <- out
	}
}

// flushBatchLocked sends the queued updates as one group commit and
// settles every waiting caller. The verifier chain was built at
// enqueue time (each member's clone extends its predecessor's), so
// only the TAIL member carries a NewRoot — the post-batch root the
// server cross-checks after applying the whole group. Caller holds
// s.mu exclusively. Uses ctx (the triggering caller's, or Background
// from the timer) for the backend round trip.
func (s *System) flushBatchLocked(ctx context.Context) error {
	b := s.updBatch
	if b == nil || len(b.queue) == 0 {
		return nil
	}
	// However this flush ends, the queue and sequence changed:
	// republish so readers pin the settled state (and the published
	// updSeq catches up with the live counter).
	defer s.publishLocked()
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	batch := b.queue
	b.queue = nil
	us := make([]*wire.Update, len(batch))
	for i, qe := range batch {
		us[i] = qe.prep.upd
	}
	tail := batch[len(batch)-1].prep
	if tail.next != nil {
		root := tail.next.Root()
		us[len(us)-1].NewRoot = root[:]
	}
	// Flush starts: bump BEFORE any send (including the sequential
	// fallback below), so a reader whose answer reflects this batch
	// is guaranteed to observe the moved counter afterwards. The
	// batch applies atomically, so only the tail's root can become
	// visible; stage it so answers produced between the server-side
	// commit and the ack verify without waiting. The sequential
	// fallback stages member by member instead.
	s.updSeq.Add(1)
	staged := false
	if tail.next != nil && s.ring != nil {
		if _, seq := s.Server.(BatchBackend); seq || len(us) == 1 {
			s.ring.Stage(tail.next)
			staged = true
		}
	}

	flushStart := time.Now()
	var err error
	var wb *wire.UpdateBatch
	if len(us) == 1 {
		// A lone member goes out as the legacy single-update frame:
		// byte-identical to the batching-off path, so old peers see
		// nothing new.
		err = s.Server.ApplyUpdate(ctx, us[0])
	} else if bb, ok := s.Server.(BatchBackend); ok {
		wb = &wire.UpdateBatch{RequestID: wire.NewRequestID(), Updates: us}
		err = bb.ApplyUpdateBatch(ctx, wb)
	} else {
		return s.flushSequentiallyLocked(ctx, batch, us, flushStart)
	}
	applyDur := time.Since(flushStart)

	if err == nil {
		for _, qe := range batch {
			s.mirrorUpdate(qe.prep.upd)
		}
		s.applyMirrorExec(us)
		if tail.next != nil && s.ring != nil {
			s.ring.Advance(tail.next)
		}
		if s.staleCache != nil {
			s.staleCache.Clear()
		}
		deliverBatch(batch, batchOutcome{batchSize: len(batch), flushStart: flushStart, applyDur: applyDur})
		return nil
	}
	if !ambiguousUpdateFailure(s.Server, err) {
		// Definite rejection: the tail root never existed server-side.
		if staged {
			s.ring.Unstage(tail.next)
		}
	} else {
		// The server may durably hold the whole batch (atomic apply,
		// lost ack) or none of it. Stash the exact frame — same batch
		// and member request IDs — for Reconcile, which is correct in
		// both worlds through the server's dedup table.
		p := &pendingUpdate{nextVerifier: tail.next, edits: totalEdits(batch)}
		if wb != nil {
			p.batch = wb
		} else {
			p.upd = us[0]
		}
		s.pending = p
		err = errors.Join(err, ErrUpdatePending)
	}
	deliverBatch(batch, batchOutcome{err: err, batchSize: len(batch), flushStart: flushStart, applyDur: applyDur})
	return err
}

// flushSequentiallyLocked is the fallback for backends without
// BatchBackend: members go out one at a time, in order. The prefix
// the server acknowledged commits (mirror + verifier advance to the
// last acknowledged member's chain point); the failing member and
// everything after it fail together — on an ambiguous failure the
// unsettled remainder is stashed as a pending batch for Reconcile.
func (s *System) flushSequentiallyLocked(ctx context.Context, batch []*queuedEdit, us []*wire.Update, flushStart time.Time) error {
	var firstErr error
	failed := len(batch)
	for i, qe := range batch {
		if v := qe.prep.next; v != nil && s.ring != nil {
			// Each member's root becomes visible individually here;
			// stage it for the send, settle below.
			s.ring.Stage(v)
		}
		if err := s.Server.ApplyUpdate(ctx, qe.prep.upd); err != nil {
			firstErr, failed = err, i
			break
		}
	}
	applyDur := time.Since(flushStart)
	for i := 0; i < failed; i++ {
		s.mirrorUpdate(batch[i].prep.upd)
	}
	s.applyMirrorExec(us[:failed])
	if failed > 0 {
		if v := batch[failed-1].prep.next; v != nil && s.ring != nil {
			// Advance finalizes the mid-chain clone's deferred root
			// before it is shared with concurrent verifiers. The
			// acknowledged prefix's intermediate roots stay staged —
			// harmless (they were real server states) — until the
			// failed member settles them below.
			s.ring.Advance(v)
		}
		if s.staleCache != nil {
			s.staleCache.Clear()
		}
	}
	if s.ring != nil && firstErr != nil && !ambiguousUpdateFailure(s.Server, firstErr) {
		// The failed member's rejection was definite: the server never
		// held its root, so withdraw it if the prefix Advance (which
		// sweeps the window's staged roots into the retired tail) did
		// not already settle it. Ambiguous failures stay staged for
		// Reconcile — the server may hold that root.
		if v := batch[failed].prep.next; v != nil {
			s.ring.Unstage(v)
		}
	}
	memberErr := firstErr
	if firstErr != nil && ambiguousUpdateFailure(s.Server, firstErr) {
		rest := batch[failed:]
		s.pending = &pendingUpdate{
			batch:        &wire.UpdateBatch{RequestID: wire.NewRequestID(), Updates: us[failed:]},
			nextVerifier: batch[len(batch)-1].prep.next,
			edits:        totalEdits(rest),
		}
		memberErr = errors.Join(firstErr, ErrUpdatePending)
	}
	for i, qe := range batch {
		out := batchOutcome{batchSize: len(batch), flushStart: flushStart, applyDur: applyDur}
		if i >= failed {
			out.err = memberErr
		}
		qe.done <- out
	}
	return memberErr
}
