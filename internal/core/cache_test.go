package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/server"
)

func srvOf(t *testing.T, sys *System) *server.Server {
	t.Helper()
	l, ok := sys.Server.(Local)
	if !ok {
		t.Fatalf("backend is %T, want Local", sys.Server)
	}
	return l.S
}

// TestCachedRangeNotAnsweredAfterUpdate is satellite regression #1:
// a range resolution (and the answer built from it) cached at
// generation N must not answer at generation N+1 once an update has
// moved an indexed value. "cholera" matches nobody at gen 1 — the
// empty answer is cached — then an update renames a disease to
// cholera; the same query must now find the patient, not replay the
// cached emptiness.
func TestCachedRangeNotAnsweredAfterUpdate(t *testing.T) {
	sys, _ := hostForUpdate(t)
	sys.EnableBlockCache(0, 0)

	const q = "//patient[.//disease='cholera']/pname"
	for i := 0; i < 2; i++ { // second run lands in every cache
		if got := queryValues(t, sys, q); len(got) != 0 {
			t.Fatalf("pre-update cholera patients = %v, want none", got)
		}
	}
	nodes, _, tm, err := sys.Query(q)
	if err != nil || len(nodes) != 0 {
		t.Fatalf("warm query: nodes=%d err=%v", len(nodes), err)
	}
	if tm.Generation != 1 {
		t.Fatalf("pre-update generation echo = %d, want 1", tm.Generation)
	}

	if _, err := sys.UpdateLeafValues("//patient[pname='Matt']/treat[1]/disease", "cholera"); err != nil {
		t.Fatalf("update: %v", err)
	}

	nodes, _, tm, err = sys.Query(q)
	if err != nil {
		t.Fatalf("post-update query: %v", err)
	}
	got := make([]string, len(nodes))
	for i, n := range nodes {
		got[i] = n.LeafValue()
	}
	if len(got) != 1 || got[0] != "Matt" {
		t.Errorf("post-update cholera patients = %v, want [Matt] (stale cached answer?)", got)
	}
	if tm.Generation != 2 {
		t.Errorf("post-update generation echo = %d, want 2", tm.Generation)
	}
	// And the value that moved away is gone — the old range resolution
	// for 'diarrhea'-band keys was not reused either.
	if got := queryValues(t, sys, "//patient[.//disease='leukemia']/pname"); len(got) != 0 {
		t.Errorf("leukemia still answered by %v after rename", got)
	}
}

// TestBlockCacheHitsAndInvalidation: a repeated query decrypts zero
// blocks the second time; an update drops every cached plaintext.
func TestBlockCacheHitsAndInvalidation(t *testing.T) {
	sys, _ := hostForUpdate(t)
	sys.EnableBlockCache(0, 0)

	const q = "//patient[.//disease='diarrhea']/pname"
	_, _, cold, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.BlockCacheHits != 0 || cold.BlockCacheMisses == 0 {
		t.Fatalf("cold query hits=%d misses=%d, want 0/>0", cold.BlockCacheHits, cold.BlockCacheMisses)
	}
	_, _, warm, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if warm.BlockCacheMisses != 0 || warm.BlockCacheHits != cold.BlockCacheMisses {
		t.Errorf("warm query hits=%d misses=%d, want %d/0",
			warm.BlockCacheHits, warm.BlockCacheMisses, cold.BlockCacheMisses)
	}

	if _, err := sys.UpdateLeafValues("//patient[pname='Betty']//disease", "gout"); err != nil {
		t.Fatal(err)
	}
	_, _, after, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.BlockCacheHits != 0 {
		t.Errorf("query after update served %d blocks from the cache, want 0 (generation should have dropped them)",
			after.BlockCacheHits)
	}
	if st := sys.BlockCacheStats(); st.Invalidations == 0 {
		t.Errorf("block cache reports no invalidation after update")
	}
}

// TestCacheConcurrentStress hammers the full pipeline from parallel
// readers while an updater flips both diarrhea occurrences back and
// forth, bumping the generation each time. Invariants (checked under
// -race): a reader sees 0 or 2 matching patients — never a torn 1 —
// and the generation echo observed by any single reader is
// monotonic.
func TestCacheConcurrentStress(t *testing.T) {
	sys, _ := hostForUpdate(t)
	sys.EnableBlockCache(0, 0)
	srv := srvOf(t, sys)

	const (
		readers = 6
		rounds  = 40
	)
	queries := []string{
		"//patient[.//disease='diarrhea']/pname",
		"//patient[.//disease='colditis']/pname",
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, readers+1)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastGen uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				nodes, _, tm, err := sys.Query(queries[(r+i)%len(queries)])
				if err != nil {
					errc <- err
					return
				}
				// Both occurrences flip in one update: any count but
				// 0 or 2 is a torn read across the generation bump.
				if len(nodes) != 0 && len(nodes) != 2 {
					errc <- fmt.Errorf("torn read: %d patients at generation %d, want 0 or 2", len(nodes), tm.Generation)
					return
				}
				if tm.Generation < lastGen {
					errc <- fmt.Errorf("generation went backwards: observed %d after %d", tm.Generation, lastGen)
					return
				}
				lastGen = tm.Generation
			}
		}(r)
	}

	values := []string{"colditis", "diarrhea"}
	for i := 0; i < rounds; i++ {
		from, to := values[(i+1)%2], values[i%2]
		if _, err := sys.UpdateLeafValues("//treat[disease='"+from+"']/disease", to); err != nil {
			errc <- err
			break
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if got, want := srv.Generation(), uint64(1+rounds); got != want {
		t.Errorf("final generation = %d, want %d (every committed update must bump exactly once)", got, want)
	}
	st := srv.CacheStats()
	if st["answers"].Hits+st["ranges"].Hits == 0 {
		t.Logf("note: stress run produced no cache hits (hits are timing-dependent, not required)")
	}
}

// TestBlockCacheOffByDefault: a System without EnableBlockCache
// reports zero counters and caches nothing — the layer is strictly
// opt-in.
func TestBlockCacheOffByDefault(t *testing.T) {
	sys, _ := hostForUpdate(t)
	for i := 0; i < 2; i++ {
		if _, _, tm, err := sys.Query("//patient/pname"); err != nil {
			t.Fatal(err)
		} else if tm.BlockCacheHits != 0 || tm.BlockCacheMisses != 0 {
			t.Fatalf("cache counters non-zero with cache disabled: %d/%d",
				tm.BlockCacheHits, tm.BlockCacheMisses)
		}
	}
	if st := sys.BlockCacheStats(); st.Hits != 0 || st.Entries != 0 {
		t.Errorf("disabled cache has state: %+v", st)
	}
}
