// Package core wires the client, server and link into the hosted
// XML database system of Figure 1, and is the engine behind the
// public secxml API. It owns the end-to-end query path — translate
// at the client, execute at the server, transmit, decrypt,
// post-process — and the per-stage timing breakdown the experiments
// of §7 report.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/client"
	"repro/internal/gencache"
	"repro/internal/netsim"
	"repro/internal/sc"
	"repro/internal/scheme"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// SchemeName selects one of the paper's encryption schemes (§7.1).
type SchemeName string

const (
	SchemeOpt  SchemeName = "opt"  // optimal secure scheme (exact vertex cover)
	SchemeApp  SchemeName = "app"  // Clarkson 2-approximation
	SchemeSub  SchemeName = "sub"  // parents of the opt blocks
	SchemeTop  SchemeName = "top"  // whole document, one block
	SchemeLeaf SchemeName = "leaf" // per-leaf blocks with decoys
)

// BuildScheme constructs the named scheme for a document and SCs.
func BuildScheme(name SchemeName, doc *xmltree.Document, scs []*sc.Constraint) (*scheme.Scheme, error) {
	switch name {
	case SchemeOpt:
		return scheme.Optimal(doc, scs)
	case SchemeApp:
		return scheme.Approx(doc, scs)
	case SchemeSub:
		return scheme.Sub(doc, scs)
	case SchemeTop:
		return scheme.Top(doc), nil
	case SchemeLeaf:
		return scheme.LeafNaive(doc, scs, true)
	default:
		return nil, fmt.Errorf("core: unknown scheme %q", name)
	}
}

// Backend is the untrusted server's query interface: Local wraps the
// in-process server.Server, and internal/remote provides an
// HTTP-transported implementation for out-of-process deployments.
// Every call carries a context so remote operations are cancellable
// and carry deadlines; the in-process adapter honors cancellation
// between stages.
type Backend interface {
	// Execute answers a translated query (§6.2).
	Execute(ctx context.Context, q *wire.Query) (*wire.Answer, error)
	// Extreme serves MIN/MAX aggregates (§6.4): the ciphertext block
	// holding the extreme indexed value within [lo, hi].
	Extreme(ctx context.Context, lo, hi uint64, max bool) (blockID int, block []byte, found bool, err error)
	// ApplyUpdate applies an owner-issued mutation (see wire.Update).
	ApplyUpdate(ctx context.Context, u *wire.Update) error
}

// Local adapts the in-process server.Server to the context-aware
// Backend interface. The server's calls are synchronous and local,
// so cancellation is only observed at call boundaries.
type Local struct{ S *server.Server }

// Execute implements Backend.
func (l Local) Execute(ctx context.Context, q *wire.Query) (*wire.Answer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.S.Execute(q)
}

// Extreme implements Backend.
func (l Local) Extreme(ctx context.Context, lo, hi uint64, max bool) (int, []byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, false, err
	}
	return l.S.Extreme(lo, hi, max)
}

// ApplyUpdate implements Backend.
func (l Local) ApplyUpdate(ctx context.Context, u *wire.Update) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.S.ApplyUpdate(u)
}

// System is one hosted database: the owner's client state, the
// untrusted server, and the link between them.
//
// A System is safe for concurrent use, and queries never block
// behind updates. Reads are MVCC-style: every query and aggregate
// pins a readSnap — an immutable view of the translation state
// (OPESS transformer table), backend, verifier ring, caches and
// queued-batch fingerprint, published through one atomic pointer —
// and runs its whole pipeline against that pin without touching mu.
// Updates still serialize under the exclusive lock (the occurrence
// tables genuinely mutate), republish the readSnap at every commit
// point, and bump updSeq when a flush starts so an in-flight read
// whose value translation the flush may have invalidated can detect
// the skew and retry against a fresh pin (see QueryPathContext).
// The server applies the same pattern independently
// (internal/server): each committed batch becomes an immutable
// snapshot readers pin lock-free.
type System struct {
	Client *client.Client
	Server Backend
	Link   netsim.Link

	// mu serializes mutations: updates, Enable* configuration, and
	// readSnap publication. Queries do NOT take it — they pin the
	// published readSnap — except for the bounded-retry fallback and
	// NaiveQuery (which reads the HostedDB mirror updates rewrite).
	// The exported fields above are set before first use and never
	// reassigned mid-flight.
	mu sync.RWMutex

	// snap is the published read view; see readSnap. Written only
	// under mu (publishLocked), read lock-free by every query.
	snap atomic.Pointer[readSnap]

	// updSeq counts update flushes, bumped BEFORE the backend send of
	// every commit path (inline, batched, sequential, reconcile). A
	// reader whose answer arrives after the sequence moved past its
	// pinned snapshot cannot tell whether the server executed it
	// before or after the commit — for value queries (whose OPESS
	// translation the commit may have re-banded) the reader retries
	// on a fresh pin instead of risking a silent miss.
	updSeq atomic.Uint64

	// SimDecryptMBps, when positive, REPLACES the measured client
	// decryption time with bytes/throughput. It models the paper's
	// 2006 experimental client (900 MHz single processor, Java
	// crypto, ~5 MB/s), where decryption dominated every other cost
	// (§7.2). On modern AES-NI hardware measured decryption is about
	// three orders of magnitude faster, which moves the crossovers;
	// this knob reproduces the paper's cost regime and is reported
	// as a simulated column (see EXPERIMENTS.md).
	SimDecryptMBps float64

	// Scheme and HostedDB are retained for inspection and the
	// experiments' size accounting.
	Scheme   *scheme.Scheme
	HostedDB *wire.HostedDB
	// EncryptTime is the wall time Host spent building blocks,
	// metadata and the value index (§7.4's encryption-cost metric).
	EncryptTime time.Duration

	// staleCache, when installed via EnableStaleFallback, holds the
	// encoded answers of recent successful queries; when the backend
	// is unreachable, queries are served from it with Timings.Stale
	// set instead of failing.
	staleCache *client.AnswerCache

	// blockCache, when installed via EnableBlockCache, holds
	// decrypted block plaintexts keyed by the server's (epoch,
	// generation) echo, so repeated queries skip AES-GCM work.
	// Verified-live answers only: the stale-fallback path neither
	// reads nor feeds it (see queryPathLocked).
	blockCache *client.BlockCache

	// ring, when installed via EnableIntegrity, holds the owner's
	// Merkle commitment to the hosted state — the current verifier
	// plus a short tail of retired ones (see verifierRing); every
	// answer and aggregate is verified against it before decryption,
	// and updates advance it so freshness survives ApplyUpdate.
	ring *verifierRing

	// pending, when non-nil, is an update whose outcome is ambiguous:
	// the send failed in a way that leaves the server possibly having
	// applied it durably (lost acknowledgment) and possibly not. The
	// client-side state is already rewritten, so the System refuses
	// verified queries (the commitment may trail the server by one
	// update) until Reconcile resends it under the same request ID —
	// the server's dedup table makes the resend exact-once either way.
	pending *pendingUpdate

	// updBatch, when installed via EnableUpdateBatching, is the queue
	// of prepared-but-unsent updates awaiting one group commit (see
	// batcher.go). Guarded by mu like everything else here.
	updBatch *updateBatcher

	// mirrorExec, when installed via EnableMirrorReads, is an
	// owner-side replica server built over the HostedDB mirror. The
	// update pipeline's read half executes against it instead of the
	// remote backend: the mirror IS the state the owner's commitment
	// was built from and advances with, so the read needs neither a
	// proof nor a round trip. Committed frames are replayed onto it
	// (applyMirrorExec) so its value index tracks the server's.
	mirrorExec *server.Server
}

// pendingUpdate is the stashed tail of an ambiguous update: the wire
// frame to resend — a single update or a whole batch, exactly one of
// upd/batch is set — and the verifier state to promote once it lands.
type pendingUpdate struct {
	upd          *wire.Update
	batch        *wire.UpdateBatch
	nextVerifier *wire.AuthVerifier
	edits        int
}

// readSnap is the immutable view one query runs against, published
// through System.snap. Everything a read consults that an update can
// change is captured here at publish time — most importantly the
// client's pinned OPESS transformer table (view) together with the
// queued-batch band fingerprint, so "which bands are ahead of the
// server" and "which transformers translate my comparisons" are the
// SAME moment's answer. The structs it points to (caches, ring,
// backend) are themselves safe for concurrent use; the snapshot pins
// which instances this read talks to.
type readSnap struct {
	view    *client.View
	backend Backend
	ring    *verifierRing
	stale   *client.AnswerCache
	blocks  *client.BlockCache

	// pending mirrors System.pending != nil at publish time.
	pending bool

	// queuedAny / queuedBands fingerprint the update batcher's queue:
	// a prepared-but-unflushed member has already rewritten the
	// client tables for these OPESS bands, so a read pinned AFTER
	// that rewrite would translate through tables the server hasn't
	// caught up to. Reads pinned BEFORE it keep the old table and
	// stay consistent with the server — that is the point of the
	// per-snapshot view.
	queuedAny   bool
	queuedBands map[uint8]bool

	// updSeq is System.updSeq at publish time.
	updSeq uint64

	// verSeq is the verifier ring's sequence at publish time: the
	// oldest commitment this read may accept an answer against
	// (zero when integrity is off).
	verSeq uint64
}

// bandConflict reports whether a read translating value comparisons
// through the given tag keys must flush the queued batch first: its
// pinned transformer table already includes a queued band rewrite the
// server hasn't seen. unknown (an unresolvable comparison target)
// conflicts with anything queued.
func (sn *readSnap) bandConflict(c *client.Client, keys []string, unknown bool) bool {
	if !sn.queuedAny {
		return false
	}
	if unknown {
		return true
	}
	for _, k := range keys {
		if band, ok := c.IndexedBand(k); ok && sn.queuedBands[band] {
			return true
		}
	}
	return false
}

// publishLocked rebuilds and publishes the readSnap from the current
// state. Called under mu (exclusive) at the end of every mutation:
// Enable* configuration, enqueue, every flush path, commit,
// reconcile — success or failure, so the published updSeq always
// catches up with the live counter once the mutation settles.
func (s *System) publishLocked() *readSnap {
	sn := &readSnap{
		view:    s.Client.Snapshot(),
		backend: s.Server,
		ring:    s.ring,
		stale:   s.staleCache,
		blocks:  s.blockCache,
		pending: s.pending != nil,
		updSeq:  s.updSeq.Load(),
	}
	if s.ring != nil {
		sn.verSeq = s.ring.pinSeq()
	}
	if b := s.updBatch; b != nil && len(b.queue) > 0 {
		sn.queuedAny = true
		sn.queuedBands = map[uint8]bool{}
		for _, qe := range b.queue {
			for _, band := range qe.prep.upd.DropBands {
				sn.queuedBands[band] = true
			}
		}
	}
	s.snap.Store(sn)
	return sn
}

// pin returns the published readSnap, lazily publishing the first
// one. Lock-free on every call after the first.
func (s *System) pin() *readSnap {
	if sn := s.snap.Load(); sn != nil {
		return sn
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sn := s.snap.Load(); sn != nil {
		return sn
	}
	return s.publishLocked()
}

// ProofBackend is the optional backend extension for verified
// aggregates: an extreme probe whose result carries a Merkle
// verification object (including provable emptiness). Local and the
// remote client both implement it.
type ProofBackend interface {
	ExtremeProof(ctx context.Context, lo, hi uint64, max bool) (*wire.ExtremeResult, error)
}

// StreamBackend is the optional backend extension for chunked
// answers: Execute, but with every block ciphertext handed to sink as
// it arrives, so the client can decrypt while later chunks are still
// on the wire. Backends fall back to the envelope freely (a small
// answer, a legacy server); nil stats mean the sink was never fed and
// the caller should treat the result exactly like Execute's. The
// in-process Local backend deliberately does not implement it — with
// no network to overlap, streaming is pure overhead.
type StreamBackend interface {
	ExecuteStream(ctx context.Context, q *wire.Query, sink wire.BlockSink) (*wire.Answer, *wire.StreamStats, error)
}

// ExtremeProof implements ProofBackend.
func (l Local) ExtremeProof(ctx context.Context, lo, hi uint64, max bool) (*wire.ExtremeResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.S.ExtremeProof(lo, hi, max)
}

// EnableIntegrity opts this system into answer verification: the
// client builds the Merkle tree over its (pre-upload) hosted state,
// keeps the compact verifier (root + leaf digests), and from then on
// every query requests and checks a proof before anything is
// decrypted. Verification failures surface as authtree.ErrTampered.
func (s *System) EnableIntegrity() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := wire.BuildAuthState(s.HostedDB)
	if err != nil {
		return err
	}
	s.ring = newVerifierRing(st.Verifier())
	s.publishLocked()
	return nil
}

// Verifier returns the integrity verifier, or nil when
// EnableIntegrity was not called. The remote client shares it (via
// remote.WithVerifier) so tampering is detected per-attempt, before
// the retry policy sees the error. The returned value is the live
// verifier ring: updates advance it in place, and an answer produced
// just before a concurrent commit still verifies against the ring's
// retired tail.
func (s *System) Verifier() wire.Verifier {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.ring == nil {
		return nil
	}
	return s.ring
}

// EnableBlockCache opts this system into cross-query reuse of
// decrypted blocks: plaintexts are kept in a bounded LRU keyed by
// (blockID, server generation), so a repeated query decrypts only
// blocks it has not seen at the current db generation. Entries are
// inserted only after the block authenticated (AES-GCM tag, plus
// Merkle verification when EnableIntegrity is on), and any change
// of the server's generation echo — update, restart, rollback —
// drops the whole cache. Non-positive limits pick defaults (see
// client.NewBlockCache).
func (s *System) EnableBlockCache(maxEntries, maxBytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blockCache = client.NewBlockCache(maxEntries, maxBytes)
	s.publishLocked()
}

// BlockCacheStats snapshots the block cache's counters (zero value
// when EnableBlockCache was not called).
func (s *System) BlockCacheStats() gencache.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.blockCache == nil {
		return gencache.Stats{}
	}
	return s.blockCache.Stats()
}

// ResetCaches drops everything the caching layer holds — the
// client's decrypted-block cache and, when the server is in-process,
// its plan/range/answer caches — without touching the db generation.
// Benchmarks use it to re-measure the cold path; production code
// never needs it.
func (s *System) ResetCaches() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.blockCache != nil {
		s.blockCache.Clear()
	}
	if l, ok := s.Server.(Local); ok {
		l.S.ResetCaches()
	}
}

// EnableStaleFallback opts this system into graceful degradation:
// answers of successful queries are kept in a bounded cache
// (maxEntries entries, maxBytes total encoded bytes), and when the
// backend fails, a cached answer for the same translated query is
// served with Timings.Stale set — possibly out of date, clearly
// marked. Cached entries are invalidated on update.
func (s *System) EnableStaleFallback(maxEntries, maxBytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.staleCache = client.NewAnswerCache(maxEntries, maxBytes)
	s.publishLocked()
}

// Host encrypts doc under the named scheme with the given SCs and
// boots a server on the upload. The SCs are validated against the
// scheme before anything is hosted.
func Host(doc *xmltree.Document, scSpecs []string, name SchemeName, masterKey []byte) (*System, error) {
	scs, err := sc.ParseAll(scSpecs)
	if err != nil {
		return nil, err
	}
	sch, err := BuildScheme(name, doc, scs)
	if err != nil {
		return nil, err
	}
	if err := sch.Enforces(doc, scs); err != nil {
		return nil, fmt.Errorf("core: scheme %s: %w", name, err)
	}
	cl, err := client.New(masterKey)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	db, err := cl.Encrypt(doc, sch)
	if err != nil {
		return nil, err
	}
	encTime := time.Since(start)
	return &System{
		Client:      cl,
		Server:      Local{S: server.New(db)},
		Link:        netsim.Paper,
		Scheme:      sch,
		HostedDB:    db,
		EncryptTime: encTime,
	}, nil
}

// UseBackend swaps the query-execution backend — e.g. a remote
// server reached over HTTP (internal/remote) — in place of the
// in-process one built by Host. The client state and keys are
// untouched; only where translated queries go changes.
func (s *System) UseBackend(b Backend) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Server = b
	s.publishLocked()
}

// ForcePlannerStrategy pins the in-process server's twig-vs-pairwise
// planner choice ("auto", "twig" or "pairwise") — the xquery -planner
// debug control. Answers are byte-identical under every mode. Only
// meaningful with the in-process backend; a remote server's planner
// is controlled by its own -planner flag (xserve).
func (s *System) ForcePlannerStrategy(mode string) error {
	l, ok := s.Server.(Local)
	if !ok {
		return fmt.Errorf("core: planner strategy is server-side; set it on the remote server (xserve -planner)")
	}
	return l.S.ForceStrategy(mode)
}

// EnableMirrorReads opts the update pipeline into serving its read
// half from an owner-side replica instead of the backend. The owner
// already holds a byte-exact mirror of the hosted state (HostedDB,
// kept fresh by mirrorUpdate), so an update's read-modify-write can
// read from a local server booted over that mirror: no HTTP round
// trip, no proof (the owner trusts its own mirror — it is exactly the
// state its Merkle commitment describes). The server stays untrusted
// and root-checked on every write; if replica and server ever
// diverged, the batch root cross-check at the next flush would
// reject. Call it after UseBackend: with an in-process backend the
// read is already local and this is a no-op. All replica access runs
// under the System's exclusive lock, so its internal locking is never
// contended.
func (s *System) EnableMirrorReads() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.Server.(Local); ok {
		return
	}
	s.mirrorExec = server.New(s.HostedDB)
	s.publishLocked()
}

// Timings is the per-stage cost breakdown of one query (§7.2).
type Timings struct {
	ClientTranslate time.Duration
	ServerExec      time.Duration
	Transmit        time.Duration // simulated: answer bytes over Link
	ClientDecrypt   time.Duration
	ClientPost      time.Duration

	QueryBytes    int // translated query size (up-link, negligible)
	AnswerBytes   int
	BlocksShipped int

	// Stale marks an answer served from the stale-fallback cache
	// because the backend was unreachable (see EnableStaleFallback).
	Stale bool
	// Unverified marks a stale answer that could NOT be checked
	// against the integrity root — it is set when integrity is
	// enabled and the live answer failed verification (or the backend
	// failed outright), so the cached copy's freshness is unknown.
	// Callers surfacing such an answer must label it.
	Unverified bool

	// Degraded marks an answer a browned-out server produced in a
	// degraded mode (today: served from its generation-tagged answer
	// cache without executing). The answer verified exactly like a
	// full-service one; BrownoutLevel echoes the server's degradation
	// level (0 = full service) at answer time.
	Degraded      bool
	BrownoutLevel int

	// PlanStrategy and PlanEstimate echo the server planner's report
	// for this query: which execution strategy produced the answer
	// ("twig" = holistic twig match over the structure synopsis,
	// "pairwise" = classic per-step interval joins) and the plan's
	// admission-cost estimate. Empty/zero when the backend predates
	// the planner or the answer came from the stale cache.
	PlanStrategy string
	PlanEstimate int64

	// Generation and Epoch echo the server's db generation counter
	// and boot nonce as carried by this query's answer (zero when the
	// backend predates the echo or the answer came from the stale
	// cache). Readers can assert monotonicity: under one epoch, a
	// later query must never observe a smaller generation.
	Generation uint64
	Epoch      uint64

	// BlockCacheHits / BlockCacheMisses count how many of this
	// query's blocks were served from the decrypted-block cache vs
	// decrypted fresh (both zero when EnableBlockCache is off or the
	// answer was stale).
	BlockCacheHits   int
	BlockCacheMisses int

	// Streamed marks an answer that arrived as a chunked SXS1 stream
	// (see StreamBackend), with decryption overlapping the receive;
	// StreamChunks and StreamBytes describe that transfer. All zero
	// when the answer came as a monolithic envelope.
	Streamed     bool
	StreamChunks int
	StreamBytes  int

	// UpdateBatched marks an update that went through the group-commit
	// queue (EnableUpdateBatching); UpdateBatchSize is how many
	// members its batch carried. UpdateEnqueue is the time this update
	// sat queued before its flush began, UpdateApply the shared
	// backend round trip, and UpdateFlushWait the caller's total wall
	// time from enqueue to settled outcome. All zero when batching is
	// off (legacy callers see exactly the old Timings shape).
	UpdateBatched   bool
	UpdateBatchSize int
	UpdateEnqueue   time.Duration
	UpdateFlushWait time.Duration
	UpdateApply     time.Duration

	// ServerWorkers / ClientWorkers report the parallel fan-out width
	// each side was configured with for this query: the server's
	// matcher worker budget (0 when the backend is remote and its
	// width is not visible from here) and the client's decrypt/splice
	// width. They contextualize the per-stage times above — the §7
	// cost columns were measured sequentially, so a width above 1
	// means ServerExec/ClientDecrypt are wall times of a parallel
	// stage, not CPU times.
	ServerWorkers int
	ClientWorkers int
}

// Total sums every stage.
func (t Timings) Total() time.Duration {
	return t.ClientTranslate + t.ServerExec + t.Transmit + t.ClientDecrypt + t.ClientPost
}

// Query runs the full Figure 1 round trip for an XPath query string
// and returns the result nodes (owned by the returned document),
// with the per-stage timing breakdown.
func (s *System) Query(q string) ([]*xmltree.Node, *xmltree.Document, Timings, error) {
	return s.QueryContext(context.Background(), q)
}

// QueryContext is Query with a caller-supplied context bounding the
// backend round trip.
func (s *System) QueryContext(ctx context.Context, q string) ([]*xmltree.Node, *xmltree.Document, Timings, error) {
	path, err := xpath.Parse(q)
	if err != nil {
		return nil, nil, Timings{}, err
	}
	return s.QueryPathContext(ctx, path)
}

// QueryPath is Query for a pre-parsed path.
func (s *System) QueryPath(path *xpath.Path) ([]*xmltree.Node, *xmltree.Document, Timings, error) {
	return s.QueryPathContext(context.Background(), path)
}

// QueryPathContext is QueryPath with a caller-supplied context.
// Each attempt pins the published readSnap and runs lock-free; three
// outcomes loop:
//
//   - errUpdateConflict: the pinned translation state is ahead of the
//     server by a queued batch; flush it out and re-pin.
//   - errSnapshotSkew: a commit raced the round trip and this query's
//     value translation may predate it; re-pin and retry. Bounded —
//     after maxSkewRetries the attempt runs under the read lock,
//     where flushes are excluded and skew is impossible, so progress
//     is guaranteed even under a continuous write load.
//   - anything else is the result. A verification failure needs no
//     retry here: an answer produced after a server-side commit but
//     before its ack verifies against the root the ring STAGED at
//     send time (see verifierRing), so an ErrTampered that survives
//     the ring is genuine and must not cost extra round trips.
func (s *System) QueryPathContext(ctx context.Context, path *xpath.Path) ([]*xmltree.Node, *xmltree.Document, Timings, error) {
	skew := 0
	for {
		var (
			nodes []*xmltree.Node
			doc   *xmltree.Document
			tm    Timings
			err   error
		)
		if skew < maxSkewRetries {
			nodes, doc, tm, err = s.queryAttempt(ctx, s.pin(), path)
		} else {
			s.pin() // force the lazy first publish outside the lock
			s.mu.RLock()
			nodes, doc, tm, err = s.queryAttempt(ctx, s.snap.Load(), path)
			s.mu.RUnlock()
		}
		if errors.Is(err, errUpdateConflict) {
			// A queued update rewrote an OPESS band this query's value
			// comparisons translate through; push the group commit out
			// and retry against the settled state. (Any flush error was
			// already delivered to the waiting updaters; this reader
			// just needs the queue gone.)
			s.FlushUpdates(ctx)
			continue
		}
		if errors.Is(err, errSnapshotSkew) {
			skew++
			continue
		}
		return nodes, doc, tm, err
	}
}

// maxSkewRetries bounds how often a read re-pins after losing a race
// with a concurrent flush before it escalates to the read lock.
const maxSkewRetries = 3

// errSnapshotSkew is the internal retry signal of the lock-free read
// path: the update sequence moved during the round trip and this
// query's value translation may predate the commit the server
// answered from. Never escapes the public entry points.
var errSnapshotSkew = errors.New("core: update committed during read; retry on a fresh snapshot")

// queryAttempt is the query pipeline body, run entirely against the
// pinned readSnap — no System lock is held (or needed) unless the
// caller chose to hold one for skew-free execution.
func (s *System) queryAttempt(ctx context.Context, sn *readSnap, path *xpath.Path) ([]*xmltree.Node, *xmltree.Document, Timings, error) {
	var tm Timings
	// Overload protocol: queries default to the interactive class (a
	// caller can stamp another via admission.WithPriority), and the
	// response-meta carrier lets the remote transport report degraded
	// (browned-out) service back into the Timings.
	ctx = admission.ContextWithDefaultPriority(ctx, admission.Interactive)
	respMeta := &admission.ResponseMeta{}
	ctx = admission.ContextWithResponseMeta(ctx, respMeta)
	if sn.pending && sn.ring != nil {
		// An ambiguous update is outstanding: the live verifier may be
		// one root behind the server, so any verified answer could be
		// rejected as tampered when it is merely fresher. Refuse until
		// Reconcile settles which side of the update the server is on.
		return nil, nil, tm, ErrUpdatePending
	}
	keys, unknown := cmpKeys(path)
	if sn.bandConflict(s.Client, keys, unknown) {
		// The pinned client tables are ahead of the server by the
		// queued batch; the entry points flush and retry on this
		// signal.
		return nil, nil, tm, errUpdateConflict
	}
	// Only value comparisons that translate through an OPESS band can
	// be invalidated by a commit (a flush re-bands exactly those
	// transformer tables); purely structural queries and plaintext
	// comparisons are immune to commit races — the server answers
	// each query from one of ITS snapshots — and skip the skew check
	// below. Unknown targets (wildcard tails) stay sensitive.
	cmpSensitive := unknown
	for _, k := range keys {
		if _, indexed := s.Client.IndexedBand(k); indexed {
			cmpSensitive = true
			break
		}
	}
	tm.ClientWorkers = s.Client.Parallelism()
	if l, ok := sn.backend.(Local); ok {
		tm.ServerWorkers = l.S.Parallelism()
	}

	start := time.Now()
	qs, err := sn.view.Translate(path)
	tm.ClientTranslate = time.Since(start)
	if err != nil {
		return nil, nil, tm, err
	}
	qs.WantProof = sn.ring != nil

	// A streaming-capable backend gets a decrypt pipeline to feed:
	// blocks decrypt while the rest of the answer is still on the
	// wire. Collect (below) releases that work only if it matches the
	// answer the transport finally settled on.
	var sd *client.StreamDecryptor
	var sink wire.BlockSink
	if _, ok := sn.backend.(StreamBackend); ok {
		sd = s.Client.NewStreamDecryptor()
		defer sd.Close()
		sink = sd
	}

	start = time.Now()
	ans, err := s.executeWithFallback(ctx, sn, qs, sink, &tm)
	tm.ServerExec = time.Since(start)
	if err != nil {
		return nil, nil, tm, err
	}
	if cmpSensitive && !tm.Stale && s.updSeq.Load() != sn.updSeq {
		// A flush started (or finished) during the round trip: the
		// server may have answered from a generation whose OPESS bands
		// this query's pinned translation predates — a silent miss,
		// not an error the verifier could catch. Retry on a fresh pin.
		return nil, nil, tm, errSnapshotSkew
	}
	tm.AnswerBytes = ans.ByteSize()
	tm.BlocksShipped = len(ans.Blocks)
	tm.Transmit = s.Link.TransferTime(tm.AnswerBytes)
	if !tm.Stale {
		tm.Generation, tm.Epoch = ans.Generation, ans.Epoch
		tm.PlanStrategy, tm.PlanEstimate = ans.PlanStrategy, ans.PlanCost
	}
	tm.Degraded, tm.BrownoutLevel = respMeta.Degraded, respMeta.BrownoutLevel

	// The block cache serves verified-live answers only: a stale
	// fallback copy's freshness is unknown, so it must neither be
	// served from the cache nor seed it.
	bc := sn.blocks
	if tm.Stale {
		bc = nil
	}
	start = time.Now()
	var blocks map[int][]byte
	var cacheHits int
	if sd != nil {
		// Streamed decryption ran before verification; the results
		// surface (and the cache is seeded) only now, after the
		// answer passed the verifier and was accepted. A mismatch —
		// envelope fallback, stale answer, torn attempt — falls
		// through to the normal decrypt path below.
		if m, ok := sd.Collect(ans); ok {
			blocks = m
			s.Client.SeedBlockCache(bc, ans, m)
		}
	}
	if blocks == nil {
		blocks, cacheHits, err = s.Client.DecryptBlocksCached(ans, bc)
	}
	tm.ClientDecrypt = time.Since(start)
	if err != nil {
		return nil, nil, tm, err
	}
	if bc != nil {
		tm.BlockCacheHits = cacheHits
		tm.BlockCacheMisses = len(ans.Blocks) - cacheHits
	}
	s.applySimDecrypt(&tm, ans)

	start = time.Now()
	nodes, doc, err := s.Client.PostProcess(path, ans, blocks)
	tm.ClientPost = time.Since(start)
	if err != nil {
		return nil, nil, tm, err
	}
	return nodes, doc, tm, nil
}

// executeWithFallback runs the translated query against the backend,
// feeding the stale cache on success and serving from it on failure
// when EnableStaleFallback opted in. Cached answers are stored and
// re-read as wire bytes, so a served copy can never alias (or be
// mutated by) a previous caller.
//
// With integrity enabled, a live answer is verified against the
// Merkle root before it is accepted or cached; a verification
// failure is treated like a backend failure, except the stale copy
// is additionally marked Unverified — it was checked when cached,
// but its freshness can no longer be established against a server
// that just proved itself byzantine.
func (s *System) executeWithFallback(ctx context.Context, sn *readSnap, qs *wire.Query, sink wire.BlockSink, tm *Timings) (*wire.Answer, error) {
	var key string
	if sn.stale != nil {
		if k, err := wire.MarshalQuery(qs); err == nil {
			key = string(k)
		}
	}
	var ans *wire.Answer
	var err error
	if sink != nil {
		// The caller only passes a sink when the backend implements
		// StreamBackend (see queryAttempt).
		var st *wire.StreamStats
		ans, st, err = sn.backend.(StreamBackend).ExecuteStream(ctx, qs, sink)
		if st != nil {
			tm.Streamed = true
			tm.StreamChunks = st.Chunks
			tm.StreamBytes = st.Bytes
		}
	} else {
		ans, err = sn.backend.Execute(ctx, qs)
	}
	if err == nil && sn.ring != nil {
		// The floor is the commitment current at this read's pin:
		// answers from either side of a commit that raced the round
		// trip verify, a replayed pre-pin answer does not.
		if vErr := sn.ring.verifyAnswerSince(sn.verSeq, ans); vErr != nil {
			ans, err = nil, vErr
		}
	}
	if err == nil {
		// Feed the stale cache only when no flush raced the round
		// trip: a skewed answer may describe a state a commit just
		// replaced, and while stale fallbacks are marked as such,
		// there is no reason to seed the cache with one. Best-effort —
		// an update committing right after this check still clears
		// the cache itself.
		if key != "" && s.updSeq.Load() == sn.updSeq {
			if enc, mErr := wire.MarshalAnswer(ans); mErr == nil {
				sn.stale.Put(key, enc)
			}
		}
		return ans, nil
	}
	if key != "" {
		if enc, ok := sn.stale.Get(key); ok {
			if cached, uErr := wire.UnmarshalAnswer(enc); uErr == nil {
				tm.Stale = true
				tm.Unverified = sn.ring != nil
				return cached, nil
			}
		}
	}
	return nil, err
}

// applySimDecrypt substitutes the paper-era decryption cost model
// when SimDecryptMBps is set.
func (s *System) applySimDecrypt(tm *Timings, ans *wire.Answer) {
	if s.SimDecryptMBps <= 0 {
		return
	}
	bytes := 0
	for _, b := range ans.Blocks {
		bytes += len(b)
	}
	tm.ClientDecrypt = time.Duration(float64(bytes) / (s.SimDecryptMBps * 1e6) * float64(time.Second))
}

// NaiveQuery evaluates the query with the naive method of §7.3: the
// server ships the entire hosted database; the client decrypts
// everything and runs the query locally.
func (s *System) NaiveQuery(q string) ([]*xmltree.Node, *xmltree.Document, Timings, error) {
	path, err := xpath.Parse(q)
	if err != nil {
		return nil, nil, Timings{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var tm Timings
	tm.ClientWorkers = s.Client.Parallelism()

	// Server side: serialize the full residue, ship every block.
	start := time.Now()
	ans := &wire.Answer{Fragments: [][]byte{[]byte(s.HostedDB.Residue.String())}}
	for id, b := range s.HostedDB.Blocks {
		ans.BlockIDs = append(ans.BlockIDs, id)
		ans.Blocks = append(ans.Blocks, b)
	}
	tm.ServerExec = time.Since(start)
	tm.AnswerBytes = ans.ByteSize()
	tm.BlocksShipped = len(ans.Blocks)
	tm.Transmit = s.Link.TransferTime(tm.AnswerBytes)

	start = time.Now()
	blocks, err := s.Client.DecryptBlocks(ans)
	tm.ClientDecrypt = time.Since(start)
	if err != nil {
		return nil, nil, tm, err
	}
	s.applySimDecrypt(&tm, ans)

	start = time.Now()
	nodes, doc, err := s.Client.PostProcess(path, ans, blocks)
	tm.ClientPost = time.Since(start)
	if err != nil {
		return nil, nil, tm, err
	}
	return nodes, doc, tm, nil
}

// ResultStrings serializes result nodes compactly, for comparisons
// and display.
func ResultStrings(nodes []*xmltree.Node) []string {
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, resultString(n))
	}
	return out
}

func resultString(n *xmltree.Node) string {
	switch n.Kind {
	case xmltree.Attribute:
		return n.Tag + "=" + n.Value
	case xmltree.Text:
		return n.Value
	default:
		return xmltree.NewDocument(n.Clone()).String()
	}
}
