// Package core wires the client, server and link into the hosted
// XML database system of Figure 1, and is the engine behind the
// public secxml API. It owns the end-to-end query path — translate
// at the client, execute at the server, transmit, decrypt,
// post-process — and the per-stage timing breakdown the experiments
// of §7 report.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/client"
	"repro/internal/gencache"
	"repro/internal/netsim"
	"repro/internal/sc"
	"repro/internal/scheme"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// SchemeName selects one of the paper's encryption schemes (§7.1).
type SchemeName string

const (
	SchemeOpt  SchemeName = "opt"  // optimal secure scheme (exact vertex cover)
	SchemeApp  SchemeName = "app"  // Clarkson 2-approximation
	SchemeSub  SchemeName = "sub"  // parents of the opt blocks
	SchemeTop  SchemeName = "top"  // whole document, one block
	SchemeLeaf SchemeName = "leaf" // per-leaf blocks with decoys
)

// BuildScheme constructs the named scheme for a document and SCs.
func BuildScheme(name SchemeName, doc *xmltree.Document, scs []*sc.Constraint) (*scheme.Scheme, error) {
	switch name {
	case SchemeOpt:
		return scheme.Optimal(doc, scs)
	case SchemeApp:
		return scheme.Approx(doc, scs)
	case SchemeSub:
		return scheme.Sub(doc, scs)
	case SchemeTop:
		return scheme.Top(doc), nil
	case SchemeLeaf:
		return scheme.LeafNaive(doc, scs, true)
	default:
		return nil, fmt.Errorf("core: unknown scheme %q", name)
	}
}

// Backend is the untrusted server's query interface: Local wraps the
// in-process server.Server, and internal/remote provides an
// HTTP-transported implementation for out-of-process deployments.
// Every call carries a context so remote operations are cancellable
// and carry deadlines; the in-process adapter honors cancellation
// between stages.
type Backend interface {
	// Execute answers a translated query (§6.2).
	Execute(ctx context.Context, q *wire.Query) (*wire.Answer, error)
	// Extreme serves MIN/MAX aggregates (§6.4): the ciphertext block
	// holding the extreme indexed value within [lo, hi].
	Extreme(ctx context.Context, lo, hi uint64, max bool) (blockID int, block []byte, found bool, err error)
	// ApplyUpdate applies an owner-issued mutation (see wire.Update).
	ApplyUpdate(ctx context.Context, u *wire.Update) error
}

// Local adapts the in-process server.Server to the context-aware
// Backend interface. The server's calls are synchronous and local,
// so cancellation is only observed at call boundaries.
type Local struct{ S *server.Server }

// Execute implements Backend.
func (l Local) Execute(ctx context.Context, q *wire.Query) (*wire.Answer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.S.Execute(q)
}

// Extreme implements Backend.
func (l Local) Extreme(ctx context.Context, lo, hi uint64, max bool) (int, []byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, false, err
	}
	return l.S.Extreme(lo, hi, max)
}

// ApplyUpdate implements Backend.
func (l Local) ApplyUpdate(ctx context.Context, u *wire.Update) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.S.ApplyUpdate(u)
}

// System is one hosted database: the owner's client state, the
// untrusted server, and the link between them.
//
// A System is safe for concurrent use: queries and aggregates run
// under a shared (read) lock, so any number may be in flight at
// once, while updates take the exclusive (write) lock — the client's
// translation state (occurrence tables, OPESS transformers) and the
// HostedDB mirror mutate during an update, and a query must never
// observe them half-rewritten. The server keeps its own
// reader/writer lock internally (internal/server), so a remote
// backend shared by several Systems stays consistent too.
type System struct {
	Client *client.Client
	Server Backend
	Link   netsim.Link

	// mu orders queries (readers) against updates (writer). The
	// exported fields above are set before first use and never
	// reassigned mid-flight.
	mu sync.RWMutex

	// SimDecryptMBps, when positive, REPLACES the measured client
	// decryption time with bytes/throughput. It models the paper's
	// 2006 experimental client (900 MHz single processor, Java
	// crypto, ~5 MB/s), where decryption dominated every other cost
	// (§7.2). On modern AES-NI hardware measured decryption is about
	// three orders of magnitude faster, which moves the crossovers;
	// this knob reproduces the paper's cost regime and is reported
	// as a simulated column (see EXPERIMENTS.md).
	SimDecryptMBps float64

	// Scheme and HostedDB are retained for inspection and the
	// experiments' size accounting.
	Scheme   *scheme.Scheme
	HostedDB *wire.HostedDB
	// EncryptTime is the wall time Host spent building blocks,
	// metadata and the value index (§7.4's encryption-cost metric).
	EncryptTime time.Duration

	// staleCache, when installed via EnableStaleFallback, holds the
	// encoded answers of recent successful queries; when the backend
	// is unreachable, queries are served from it with Timings.Stale
	// set instead of failing.
	staleCache *client.AnswerCache

	// blockCache, when installed via EnableBlockCache, holds
	// decrypted block plaintexts keyed by the server's (epoch,
	// generation) echo, so repeated queries skip AES-GCM work.
	// Verified-live answers only: the stale-fallback path neither
	// reads nor feeds it (see queryPathLocked).
	blockCache *client.BlockCache

	// verifier, when installed via EnableIntegrity, holds the owner's
	// Merkle commitment to the hosted state; every answer and
	// aggregate is verified against it before decryption, and updates
	// advance it so freshness survives ApplyUpdate.
	verifier *wire.AuthVerifier

	// pending, when non-nil, is an update whose outcome is ambiguous:
	// the send failed in a way that leaves the server possibly having
	// applied it durably (lost acknowledgment) and possibly not. The
	// client-side state is already rewritten, so the System refuses
	// verified queries (the commitment may trail the server by one
	// update) until Reconcile resends it under the same request ID —
	// the server's dedup table makes the resend exact-once either way.
	pending *pendingUpdate

	// updBatch, when installed via EnableUpdateBatching, is the queue
	// of prepared-but-unsent updates awaiting one group commit (see
	// batcher.go). Guarded by mu like everything else here.
	updBatch *updateBatcher

	// mirrorExec, when installed via EnableMirrorReads, is an
	// owner-side replica server built over the HostedDB mirror. The
	// update pipeline's read half executes against it instead of the
	// remote backend: the mirror IS the state the owner's commitment
	// was built from and advances with, so the read needs neither a
	// proof nor a round trip. Committed frames are replayed onto it
	// (applyMirrorExec) so its value index tracks the server's.
	mirrorExec *server.Server
}

// pendingUpdate is the stashed tail of an ambiguous update: the wire
// frame to resend — a single update or a whole batch, exactly one of
// upd/batch is set — and the verifier state to promote once it lands.
type pendingUpdate struct {
	upd          *wire.Update
	batch        *wire.UpdateBatch
	nextVerifier *wire.AuthVerifier
	edits        int
}

// ProofBackend is the optional backend extension for verified
// aggregates: an extreme probe whose result carries a Merkle
// verification object (including provable emptiness). Local and the
// remote client both implement it.
type ProofBackend interface {
	ExtremeProof(ctx context.Context, lo, hi uint64, max bool) (*wire.ExtremeResult, error)
}

// StreamBackend is the optional backend extension for chunked
// answers: Execute, but with every block ciphertext handed to sink as
// it arrives, so the client can decrypt while later chunks are still
// on the wire. Backends fall back to the envelope freely (a small
// answer, a legacy server); nil stats mean the sink was never fed and
// the caller should treat the result exactly like Execute's. The
// in-process Local backend deliberately does not implement it — with
// no network to overlap, streaming is pure overhead.
type StreamBackend interface {
	ExecuteStream(ctx context.Context, q *wire.Query, sink wire.BlockSink) (*wire.Answer, *wire.StreamStats, error)
}

// ExtremeProof implements ProofBackend.
func (l Local) ExtremeProof(ctx context.Context, lo, hi uint64, max bool) (*wire.ExtremeResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.S.ExtremeProof(lo, hi, max)
}

// EnableIntegrity opts this system into answer verification: the
// client builds the Merkle tree over its (pre-upload) hosted state,
// keeps the compact verifier (root + leaf digests), and from then on
// every query requests and checks a proof before anything is
// decrypted. Verification failures surface as authtree.ErrTampered.
func (s *System) EnableIntegrity() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := wire.BuildAuthState(s.HostedDB)
	if err != nil {
		return err
	}
	s.verifier = st.Verifier()
	return nil
}

// Verifier returns the integrity verifier, or nil when
// EnableIntegrity was not called. The remote client shares it (via
// remote.WithVerifier) so tampering is detected per-attempt, before
// the retry policy sees the error.
func (s *System) Verifier() *wire.AuthVerifier {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.verifier
}

// EnableBlockCache opts this system into cross-query reuse of
// decrypted blocks: plaintexts are kept in a bounded LRU keyed by
// (blockID, server generation), so a repeated query decrypts only
// blocks it has not seen at the current db generation. Entries are
// inserted only after the block authenticated (AES-GCM tag, plus
// Merkle verification when EnableIntegrity is on), and any change
// of the server's generation echo — update, restart, rollback —
// drops the whole cache. Non-positive limits pick defaults (see
// client.NewBlockCache).
func (s *System) EnableBlockCache(maxEntries, maxBytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blockCache = client.NewBlockCache(maxEntries, maxBytes)
}

// BlockCacheStats snapshots the block cache's counters (zero value
// when EnableBlockCache was not called).
func (s *System) BlockCacheStats() gencache.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.blockCache == nil {
		return gencache.Stats{}
	}
	return s.blockCache.Stats()
}

// ResetCaches drops everything the caching layer holds — the
// client's decrypted-block cache and, when the server is in-process,
// its plan/range/answer caches — without touching the db generation.
// Benchmarks use it to re-measure the cold path; production code
// never needs it.
func (s *System) ResetCaches() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.blockCache != nil {
		s.blockCache.Clear()
	}
	if l, ok := s.Server.(Local); ok {
		l.S.ResetCaches()
	}
}

// EnableStaleFallback opts this system into graceful degradation:
// answers of successful queries are kept in a bounded cache
// (maxEntries entries, maxBytes total encoded bytes), and when the
// backend fails, a cached answer for the same translated query is
// served with Timings.Stale set — possibly out of date, clearly
// marked. Cached entries are invalidated on update.
func (s *System) EnableStaleFallback(maxEntries, maxBytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.staleCache = client.NewAnswerCache(maxEntries, maxBytes)
}

// Host encrypts doc under the named scheme with the given SCs and
// boots a server on the upload. The SCs are validated against the
// scheme before anything is hosted.
func Host(doc *xmltree.Document, scSpecs []string, name SchemeName, masterKey []byte) (*System, error) {
	scs, err := sc.ParseAll(scSpecs)
	if err != nil {
		return nil, err
	}
	sch, err := BuildScheme(name, doc, scs)
	if err != nil {
		return nil, err
	}
	if err := sch.Enforces(doc, scs); err != nil {
		return nil, fmt.Errorf("core: scheme %s: %w", name, err)
	}
	cl, err := client.New(masterKey)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	db, err := cl.Encrypt(doc, sch)
	if err != nil {
		return nil, err
	}
	encTime := time.Since(start)
	return &System{
		Client:      cl,
		Server:      Local{S: server.New(db)},
		Link:        netsim.Paper,
		Scheme:      sch,
		HostedDB:    db,
		EncryptTime: encTime,
	}, nil
}

// UseBackend swaps the query-execution backend — e.g. a remote
// server reached over HTTP (internal/remote) — in place of the
// in-process one built by Host. The client state and keys are
// untouched; only where translated queries go changes.
func (s *System) UseBackend(b Backend) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Server = b
}

// EnableMirrorReads opts the update pipeline into serving its read
// half from an owner-side replica instead of the backend. The owner
// already holds a byte-exact mirror of the hosted state (HostedDB,
// kept fresh by mirrorUpdate), so an update's read-modify-write can
// read from a local server booted over that mirror: no HTTP round
// trip, no proof (the owner trusts its own mirror — it is exactly the
// state its Merkle commitment describes). The server stays untrusted
// and root-checked on every write; if replica and server ever
// diverged, the batch root cross-check at the next flush would
// reject. Call it after UseBackend: with an in-process backend the
// read is already local and this is a no-op. All replica access runs
// under the System's exclusive lock, so its internal locking is never
// contended.
func (s *System) EnableMirrorReads() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.Server.(Local); ok {
		return
	}
	s.mirrorExec = server.New(s.HostedDB)
}

// Timings is the per-stage cost breakdown of one query (§7.2).
type Timings struct {
	ClientTranslate time.Duration
	ServerExec      time.Duration
	Transmit        time.Duration // simulated: answer bytes over Link
	ClientDecrypt   time.Duration
	ClientPost      time.Duration

	QueryBytes    int // translated query size (up-link, negligible)
	AnswerBytes   int
	BlocksShipped int

	// Stale marks an answer served from the stale-fallback cache
	// because the backend was unreachable (see EnableStaleFallback).
	Stale bool
	// Unverified marks a stale answer that could NOT be checked
	// against the integrity root — it is set when integrity is
	// enabled and the live answer failed verification (or the backend
	// failed outright), so the cached copy's freshness is unknown.
	// Callers surfacing such an answer must label it.
	Unverified bool

	// Degraded marks an answer a browned-out server produced in a
	// degraded mode (today: served from its generation-tagged answer
	// cache without executing). The answer verified exactly like a
	// full-service one; BrownoutLevel echoes the server's degradation
	// level (0 = full service) at answer time.
	Degraded      bool
	BrownoutLevel int

	// Generation and Epoch echo the server's db generation counter
	// and boot nonce as carried by this query's answer (zero when the
	// backend predates the echo or the answer came from the stale
	// cache). Readers can assert monotonicity: under one epoch, a
	// later query must never observe a smaller generation.
	Generation uint64
	Epoch      uint64

	// BlockCacheHits / BlockCacheMisses count how many of this
	// query's blocks were served from the decrypted-block cache vs
	// decrypted fresh (both zero when EnableBlockCache is off or the
	// answer was stale).
	BlockCacheHits   int
	BlockCacheMisses int

	// Streamed marks an answer that arrived as a chunked SXS1 stream
	// (see StreamBackend), with decryption overlapping the receive;
	// StreamChunks and StreamBytes describe that transfer. All zero
	// when the answer came as a monolithic envelope.
	Streamed     bool
	StreamChunks int
	StreamBytes  int

	// UpdateBatched marks an update that went through the group-commit
	// queue (EnableUpdateBatching); UpdateBatchSize is how many
	// members its batch carried. UpdateEnqueue is the time this update
	// sat queued before its flush began, UpdateApply the shared
	// backend round trip, and UpdateFlushWait the caller's total wall
	// time from enqueue to settled outcome. All zero when batching is
	// off (legacy callers see exactly the old Timings shape).
	UpdateBatched   bool
	UpdateBatchSize int
	UpdateEnqueue   time.Duration
	UpdateFlushWait time.Duration
	UpdateApply     time.Duration

	// ServerWorkers / ClientWorkers report the parallel fan-out width
	// each side was configured with for this query: the server's
	// matcher worker budget (0 when the backend is remote and its
	// width is not visible from here) and the client's decrypt/splice
	// width. They contextualize the per-stage times above — the §7
	// cost columns were measured sequentially, so a width above 1
	// means ServerExec/ClientDecrypt are wall times of a parallel
	// stage, not CPU times.
	ServerWorkers int
	ClientWorkers int
}

// Total sums every stage.
func (t Timings) Total() time.Duration {
	return t.ClientTranslate + t.ServerExec + t.Transmit + t.ClientDecrypt + t.ClientPost
}

// Query runs the full Figure 1 round trip for an XPath query string
// and returns the result nodes (owned by the returned document),
// with the per-stage timing breakdown.
func (s *System) Query(q string) ([]*xmltree.Node, *xmltree.Document, Timings, error) {
	return s.QueryContext(context.Background(), q)
}

// QueryContext is Query with a caller-supplied context bounding the
// backend round trip.
func (s *System) QueryContext(ctx context.Context, q string) ([]*xmltree.Node, *xmltree.Document, Timings, error) {
	path, err := xpath.Parse(q)
	if err != nil {
		return nil, nil, Timings{}, err
	}
	return s.QueryPathContext(ctx, path)
}

// QueryPath is Query for a pre-parsed path.
func (s *System) QueryPath(path *xpath.Path) ([]*xmltree.Node, *xmltree.Document, Timings, error) {
	return s.QueryPathContext(context.Background(), path)
}

// QueryPathContext is QueryPath with a caller-supplied context.
func (s *System) QueryPathContext(ctx context.Context, path *xpath.Path) ([]*xmltree.Node, *xmltree.Document, Timings, error) {
	for {
		s.mu.RLock()
		nodes, doc, tm, err := s.queryPathLocked(ctx, path)
		s.mu.RUnlock()
		if errors.Is(err, errUpdateConflict) {
			// A queued update rewrote an OPESS band this query's value
			// comparisons translate through; push the group commit out
			// and retry against the settled state. (Any flush error was
			// already delivered to the waiting updaters; this reader
			// just needs the queue gone.)
			s.FlushUpdates(ctx)
			continue
		}
		return nodes, doc, tm, err
	}
}

// queryPathLocked is the query pipeline body; the caller holds the
// read half of s.mu (directly or via an aggregate entry point — kept
// unexported so the lock is never taken recursively).
func (s *System) queryPathLocked(ctx context.Context, path *xpath.Path) ([]*xmltree.Node, *xmltree.Document, Timings, error) {
	var tm Timings
	// Overload protocol: queries default to the interactive class (a
	// caller can stamp another via admission.WithPriority), and the
	// response-meta carrier lets the remote transport report degraded
	// (browned-out) service back into the Timings.
	ctx = admission.ContextWithDefaultPriority(ctx, admission.Interactive)
	respMeta := &admission.ResponseMeta{}
	ctx = admission.ContextWithResponseMeta(ctx, respMeta)
	if s.pending != nil && s.verifier != nil {
		// An ambiguous update is outstanding: the live verifier may be
		// one root behind the server, so any verified answer could be
		// rejected as tampered when it is merely fresher. Refuse until
		// Reconcile settles which side of the update the server is on.
		return nil, nil, tm, ErrUpdatePending
	}
	if keys, unknown := cmpKeys(path); s.queuedBandConflictLocked(keys, unknown) {
		// The client tables this query would translate through are
		// ahead of the server by the queued batch; the entry points
		// flush and retry on this signal.
		return nil, nil, tm, errUpdateConflict
	}
	tm.ClientWorkers = s.Client.Parallelism()
	if l, ok := s.Server.(Local); ok {
		tm.ServerWorkers = l.S.Parallelism()
	}

	start := time.Now()
	qs, err := s.Client.Translate(path)
	tm.ClientTranslate = time.Since(start)
	if err != nil {
		return nil, nil, tm, err
	}
	qs.WantProof = s.verifier != nil

	// A streaming-capable backend gets a decrypt pipeline to feed:
	// blocks decrypt while the rest of the answer is still on the
	// wire. Collect (below) releases that work only if it matches the
	// answer the transport finally settled on.
	var sd *client.StreamDecryptor
	var sink wire.BlockSink
	if _, ok := s.Server.(StreamBackend); ok {
		sd = s.Client.NewStreamDecryptor()
		defer sd.Close()
		sink = sd
	}

	start = time.Now()
	ans, err := s.executeWithFallback(ctx, qs, sink, &tm)
	tm.ServerExec = time.Since(start)
	if err != nil {
		return nil, nil, tm, err
	}
	tm.AnswerBytes = ans.ByteSize()
	tm.BlocksShipped = len(ans.Blocks)
	tm.Transmit = s.Link.TransferTime(tm.AnswerBytes)
	if !tm.Stale {
		tm.Generation, tm.Epoch = ans.Generation, ans.Epoch
	}
	tm.Degraded, tm.BrownoutLevel = respMeta.Degraded, respMeta.BrownoutLevel

	// The block cache serves verified-live answers only: a stale
	// fallback copy's freshness is unknown, so it must neither be
	// served from the cache nor seed it.
	bc := s.blockCache
	if tm.Stale {
		bc = nil
	}
	start = time.Now()
	var blocks map[int][]byte
	var cacheHits int
	if sd != nil {
		// Streamed decryption ran before verification; the results
		// surface (and the cache is seeded) only now, after the
		// answer passed the verifier and was accepted. A mismatch —
		// envelope fallback, stale answer, torn attempt — falls
		// through to the normal decrypt path below.
		if m, ok := sd.Collect(ans); ok {
			blocks = m
			s.Client.SeedBlockCache(bc, ans, m)
		}
	}
	if blocks == nil {
		blocks, cacheHits, err = s.Client.DecryptBlocksCached(ans, bc)
	}
	tm.ClientDecrypt = time.Since(start)
	if err != nil {
		return nil, nil, tm, err
	}
	if bc != nil {
		tm.BlockCacheHits = cacheHits
		tm.BlockCacheMisses = len(ans.Blocks) - cacheHits
	}
	s.applySimDecrypt(&tm, ans)

	start = time.Now()
	nodes, doc, err := s.Client.PostProcess(path, ans, blocks)
	tm.ClientPost = time.Since(start)
	if err != nil {
		return nil, nil, tm, err
	}
	return nodes, doc, tm, nil
}

// executeWithFallback runs the translated query against the backend,
// feeding the stale cache on success and serving from it on failure
// when EnableStaleFallback opted in. Cached answers are stored and
// re-read as wire bytes, so a served copy can never alias (or be
// mutated by) a previous caller.
//
// With integrity enabled, a live answer is verified against the
// Merkle root before it is accepted or cached; a verification
// failure is treated like a backend failure, except the stale copy
// is additionally marked Unverified — it was checked when cached,
// but its freshness can no longer be established against a server
// that just proved itself byzantine.
func (s *System) executeWithFallback(ctx context.Context, qs *wire.Query, sink wire.BlockSink, tm *Timings) (*wire.Answer, error) {
	var key string
	if s.staleCache != nil {
		if k, err := wire.MarshalQuery(qs); err == nil {
			key = string(k)
		}
	}
	var ans *wire.Answer
	var err error
	if sink != nil {
		// The caller only passes a sink when the backend implements
		// StreamBackend (see queryPathLocked).
		var st *wire.StreamStats
		ans, st, err = s.Server.(StreamBackend).ExecuteStream(ctx, qs, sink)
		if st != nil {
			tm.Streamed = true
			tm.StreamChunks = st.Chunks
			tm.StreamBytes = st.Bytes
		}
	} else {
		ans, err = s.Server.Execute(ctx, qs)
	}
	if err == nil && s.verifier != nil {
		if vErr := s.verifier.VerifyAnswer(ans); vErr != nil {
			ans, err = nil, vErr
		}
	}
	if err == nil {
		if key != "" {
			if enc, mErr := wire.MarshalAnswer(ans); mErr == nil {
				s.staleCache.Put(key, enc)
			}
		}
		return ans, nil
	}
	if key != "" {
		if enc, ok := s.staleCache.Get(key); ok {
			if cached, uErr := wire.UnmarshalAnswer(enc); uErr == nil {
				tm.Stale = true
				tm.Unverified = s.verifier != nil
				return cached, nil
			}
		}
	}
	return nil, err
}

// applySimDecrypt substitutes the paper-era decryption cost model
// when SimDecryptMBps is set.
func (s *System) applySimDecrypt(tm *Timings, ans *wire.Answer) {
	if s.SimDecryptMBps <= 0 {
		return
	}
	bytes := 0
	for _, b := range ans.Blocks {
		bytes += len(b)
	}
	tm.ClientDecrypt = time.Duration(float64(bytes) / (s.SimDecryptMBps * 1e6) * float64(time.Second))
}

// NaiveQuery evaluates the query with the naive method of §7.3: the
// server ships the entire hosted database; the client decrypts
// everything and runs the query locally.
func (s *System) NaiveQuery(q string) ([]*xmltree.Node, *xmltree.Document, Timings, error) {
	path, err := xpath.Parse(q)
	if err != nil {
		return nil, nil, Timings{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var tm Timings
	tm.ClientWorkers = s.Client.Parallelism()

	// Server side: serialize the full residue, ship every block.
	start := time.Now()
	ans := &wire.Answer{Fragments: [][]byte{[]byte(s.HostedDB.Residue.String())}}
	for id, b := range s.HostedDB.Blocks {
		ans.BlockIDs = append(ans.BlockIDs, id)
		ans.Blocks = append(ans.Blocks, b)
	}
	tm.ServerExec = time.Since(start)
	tm.AnswerBytes = ans.ByteSize()
	tm.BlocksShipped = len(ans.Blocks)
	tm.Transmit = s.Link.TransferTime(tm.AnswerBytes)

	start = time.Now()
	blocks, err := s.Client.DecryptBlocks(ans)
	tm.ClientDecrypt = time.Since(start)
	if err != nil {
		return nil, nil, tm, err
	}
	s.applySimDecrypt(&tm, ans)

	start = time.Now()
	nodes, doc, err := s.Client.PostProcess(path, ans, blocks)
	tm.ClientPost = time.Since(start)
	if err != nil {
		return nil, nil, tm, err
	}
	return nodes, doc, tm, nil
}

// ResultStrings serializes result nodes compactly, for comparisons
// and display.
func ResultStrings(nodes []*xmltree.Node) []string {
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, resultString(n))
	}
	return out
}

func resultString(n *xmltree.Node) string {
	switch n.Kind {
	case xmltree.Attribute:
		return n.Tag + "=" + n.Value
	case xmltree.Text:
		return n.Value
	default:
		return xmltree.NewDocument(n.Clone()).String()
	}
}
