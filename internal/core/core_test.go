package core

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

const hospitalXML = `
<hospital>
  <patient>
    <pname>Betty</pname>
    <SSN>763895</SSN>
    <insurance coverage="1000000"><policy>34221</policy><policy>9983</policy></insurance>
    <treat><disease>diarrhea</disease><doctor>Smith</doctor></treat>
    <age>35</age>
  </patient>
  <patient>
    <pname>Matt</pname>
    <SSN>276543</SSN>
    <insurance coverage="10000"><policy>26544</policy></insurance>
    <treat><disease>leukemia</disease><doctor>Walker</doctor></treat>
    <treat><disease>diarrhea</disease><doctor>Brown</doctor></treat>
    <age>40</age>
  </patient>
  <patient>
    <pname>Ann</pname>
    <SSN>555321</SSN>
    <insurance coverage="50000"><policy>77110</policy></insurance>
    <treat><disease>flu</disease><doctor>Smith</doctor></treat>
    <age>29</age>
  </patient>
</hospital>`

var paperSCs = []string{
	"//insurance",
	"//patient:(/pname, /SSN)",
	"//patient:(/pname, //disease)",
	"//treat:(/disease, /doctor)",
}

// queries covers the paper's query classes: root children (Qs),
// mid-level (Qm), leaves (Ql), the §6 running example, value ranges
// on encrypted and plaintext targets, and structural predicates.
var queries = []string{
	"/hospital/patient",
	"//patient",
	"//patient/pname",
	"//patient/SSN",
	"//treat",
	"//treat/disease",
	"//disease",
	"//doctor",
	"//insurance",
	"//insurance/policy",
	"//insurance/@coverage",
	"//patient/age",
	"//patient[pname='Betty']",
	"//patient[pname='Betty']/SSN",
	"//patient[.//disease='diarrhea']/pname",
	"//patient[.//disease='leukemia']",
	"//treat[disease='diarrhea']/doctor",
	"//patient[.//insurance//@coverage>=10000]//SSN",
	"//patient[.//insurance//@coverage>10000]//SSN",
	"//patient[age>30]/pname",
	"//patient[age>=29][age<=35]/pname",
	"//patient[age!=35]/pname",
	"//patient[pname='Betty' or pname='Ann']/age",
	"//patient[not(pname='Betty')]/pname",
	"//patient[insurance]/pname",
	"//patient[treat[disease='flu']]/pname",
	"//patient/*",
	"//patient//*",
	"//pname/text()",
	"//patient[2]/pname",
	"//treat[following-sibling::treat]/doctor",
	"//disease/..",
	"//nosuchtag",
	"//patient[pname='Nobody']",
	"//patient[age>100]",
	"//disease[.='leukemia']/ancestor::patient/pname",
	"//treat[ancestor::patient[age>36]]/doctor",
	"//policy/ancestor-or-self::insurance",
}

func plaintextResults(t *testing.T, doc *xmltree.Document, q string) []string {
	t.Helper()
	nodes := xpath.Evaluate(doc, xpath.MustParse(q))
	out := ResultStrings(nodes)
	sort.Strings(out)
	return out
}

func systemResults(t *testing.T, s *System, q string, naive bool) []string {
	t.Helper()
	var nodes []*xmltree.Node
	var err error
	if naive {
		nodes, _, _, err = s.NaiveQuery(q)
	} else {
		nodes, _, _, err = s.Query(q)
	}
	if err != nil {
		t.Fatalf("query %s: %v", q, err)
	}
	out := ResultStrings(nodes)
	sort.Strings(out)
	return out
}

func TestEndToEndEquivalenceAllSchemes(t *testing.T) {
	doc, err := xmltree.ParseString(hospitalXML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, name := range []SchemeName{SchemeOpt, SchemeApp, SchemeSub, SchemeTop, SchemeLeaf} {
		t.Run(string(name), func(t *testing.T) {
			sys, err := Host(doc, paperSCs, name, []byte("e2e-master"))
			if err != nil {
				t.Fatalf("Host(%s): %v", name, err)
			}
			for _, q := range queries {
				want := plaintextResults(t, doc, q)
				got := systemResults(t, sys, q, false)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("scheme %s query %s:\n got  %v\n want %v", name, q, got, want)
				}
			}
		})
	}
}

func TestNaiveMethodEquivalence(t *testing.T) {
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := Host(doc, paperSCs, SchemeOpt, []byte("naive-master"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	for _, q := range queries {
		want := plaintextResults(t, doc, q)
		got := systemResults(t, sys, q, true)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("naive query %s:\n got  %v\n want %v", q, got, want)
		}
	}
}

func TestAnswerSizeOptSmallerThanNaive(t *testing.T) {
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := Host(doc, paperSCs, SchemeOpt, []byte("size-master"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	_, _, smart, err := sys.Query("//patient[pname='Betty']/SSN")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	_, _, naive, err := sys.NaiveQuery("//patient[pname='Betty']/SSN")
	if err != nil {
		t.Fatalf("NaiveQuery: %v", err)
	}
	if smart.AnswerBytes >= naive.AnswerBytes {
		t.Errorf("selective answer %d bytes >= naive %d bytes", smart.AnswerBytes, naive.AnswerBytes)
	}
	if smart.BlocksShipped >= naive.BlocksShipped {
		t.Errorf("selective shipped %d blocks >= naive %d", smart.BlocksShipped, naive.BlocksShipped)
	}
}

func TestTopSchemeShipsEverything(t *testing.T) {
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := Host(doc, paperSCs, SchemeTop, []byte("top-master"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	_, _, tm, err := sys.Query("//patient[pname='Betty']/SSN")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if tm.BlocksShipped != 1 {
		t.Errorf("top scheme shipped %d blocks, want the single whole-document block", tm.BlocksShipped)
	}
}

func TestHostRejectsUnknownScheme(t *testing.T) {
	doc, _ := xmltree.ParseString(hospitalXML)
	if _, err := Host(doc, paperSCs, SchemeName("bogus"), []byte("k")); err == nil {
		t.Errorf("unknown scheme accepted")
	}
}

func TestHostRejectsBadSC(t *testing.T) {
	doc, _ := xmltree.ParseString(hospitalXML)
	if _, err := Host(doc, []string{"//patient:(/pname"}, SchemeOpt, []byte("k")); err == nil {
		t.Errorf("malformed SC accepted")
	}
}

func TestTimingsPopulated(t *testing.T) {
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, _ := Host(doc, paperSCs, SchemeOpt, []byte("tm-master"))
	_, _, tm, err := sys.Query("//patient[.//disease='diarrhea']/pname")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if tm.AnswerBytes <= 0 {
		t.Errorf("AnswerBytes = %d", tm.AnswerBytes)
	}
	if tm.Total() <= 0 {
		t.Errorf("Total = %v", tm.Total())
	}
	if tm.Transmit <= 0 {
		t.Errorf("Transmit = %v", tm.Transmit)
	}
	if tm.ClientWorkers < 1 {
		t.Errorf("ClientWorkers = %d, want >= 1", tm.ClientWorkers)
	}
	// The backend is in-process here, so the server's width is
	// visible and must be reported.
	if tm.ServerWorkers < 1 {
		t.Errorf("ServerWorkers = %d, want >= 1", tm.ServerWorkers)
	}
	sys.Client.SetParallelism(3)
	if l, ok := sys.Server.(Local); ok {
		l.S.SetParallelism(5)
	}
	_, _, tm, err = sys.Query("//patient/pname")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if tm.ClientWorkers != 3 || tm.ServerWorkers != 5 {
		t.Errorf("worker widths = (%d server, %d client), want (5, 3)",
			tm.ServerWorkers, tm.ClientWorkers)
	}
}

// TestNegatedPredicateEmptyAnswer pins the empty-answer semantics: a
// query the server proves unsatisfiable must yield zero nodes, even
// when the query would match the client's synthetic reassembly root
// (a negated predicate on the document root is exactly that shape).
func TestNegatedPredicateEmptyAnswer(t *testing.T) {
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := Host(doc, paperSCs, SchemeOpt, []byte("neg-master"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	nodes, _, _, err := sys.Query("//hospital[not(patient)]")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(nodes) != 0 {
		t.Errorf("got %d nodes for unsatisfiable query, want 0: %v",
			len(nodes), ResultStrings(nodes))
	}
}

func TestServerSeesNoPlaintextSecrets(t *testing.T) {
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, _ := Host(doc, paperSCs, SchemeOpt, []byte("leak-master"))
	db := sys.HostedDB
	res := db.Residue.String()

	// The insurance subtrees (node-type SC) must always be hidden.
	secrets := []string{"insurance", "policy", "coverage", "34221", "9983", "26544", "77110", "1000000"}
	// Every tag the optimal cover chose to encrypt must be hidden,
	// along with its values.
	valuesByTag := map[string][]string{
		"pname":   {"Betty", "Matt", "Ann", "pname"},
		"SSN":     {"763895", "276543", "555321", "SSN"},
		"disease": {"diarrhea", "leukemia", "flu", "disease"},
		"doctor":  {"Smith", "Walker", "Brown", "doctor"},
	}
	for tag := range sys.Scheme.CoverTags {
		secrets = append(secrets, valuesByTag[tag]...)
	}
	for _, secret := range secrets {
		if contains(res, secret) {
			t.Errorf("residue leaks %q:\n%s", secret, res)
		}
	}
	// The DSI table must not contain encrypted tags in plaintext.
	encrypted := []string{"insurance", "policy", "@coverage"}
	for tag := range sys.Scheme.CoverTags {
		encrypted = append(encrypted, tag)
	}
	for _, tag := range encrypted {
		if len(db.Table.Lookup(tag)) != 0 {
			t.Errorf("DSI table leaks plaintext tag %q", tag)
		}
	}
	// Every association SC must have at least one endpoint hidden.
	for _, pair := range [][2]string{{"pname", "SSN"}, {"pname", "disease"}, {"disease", "doctor"}} {
		if !sys.Scheme.CoverTags[pair[0]] && !sys.Scheme.CoverTags[pair[1]] {
			t.Errorf("association (%s, %s) has no encrypted endpoint", pair[0], pair[1])
		}
	}
}

func contains(haystack, needle string) bool {
	return len(haystack) >= len(needle) && indexOf(haystack, needle) >= 0
}

func indexOf(h, n string) int {
	for i := 0; i+len(n) <= len(h); i++ {
		if h[i:i+len(n)] == n {
			return i
		}
	}
	return -1
}
