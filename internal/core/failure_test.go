package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/wire"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Failure injection: the client must detect — never silently accept —
// a server that tampers with blocks, drops blocks, or swaps answers.

func hostHospital(t *testing.T) *System {
	t.Helper()
	doc, err := xmltree.ParseString(hospitalXML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sys, err := Host(doc, paperSCs, SchemeOpt, []byte("failure-test"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	return sys
}

func TestTamperedBlockRejected(t *testing.T) {
	sys := hostHospital(t)
	// Flip one bit in every hosted block: AES-GCM authentication must
	// fail during post-query decryption.
	for i := range sys.HostedDB.Blocks {
		sys.HostedDB.Blocks[i][len(sys.HostedDB.Blocks[i])-1] ^= 1
	}
	_, _, _, err := sys.Query("//patient/pname")
	if err == nil {
		t.Fatalf("tampered blocks accepted")
	}
	if !strings.Contains(err.Error(), "decrypt") {
		t.Errorf("unexpected error: %v", err)
	}
}

// servedDB reaches into the local backend's committed snapshot — the
// block table queries are actually answered from. Hostile-server
// tests mutate it directly: under MVCC the server holds its own
// slice headers, so replacing headers on the upload object
// (sys.HostedDB) no longer reaches what the server serves.
func servedDB(t *testing.T, sys *System) *wire.HostedDB {
	t.Helper()
	local, ok := sys.Server.(Local)
	if !ok {
		t.Fatalf("backend is %T, want Local", sys.Server)
	}
	return local.S.CurrentDB()
}

func TestTruncatedBlockRejected(t *testing.T) {
	sys := hostHospital(t)
	db := servedDB(t, sys)
	for i := range db.Blocks {
		db.Blocks[i] = db.Blocks[i][:4]
	}
	if _, _, _, err := sys.Query("//patient/pname"); err == nil {
		t.Fatalf("truncated blocks accepted")
	}
}

func TestSwappedBlocksStillAuthenticatedButDetectable(t *testing.T) {
	sys := hostHospital(t)
	db := servedDB(t, sys)
	if len(db.Blocks) < 2 {
		t.Skip("need at least two blocks")
	}
	// A malicious server swaps two ciphertext blocks. Both decrypt
	// (same key), so the client sees syntactically valid but WRONG
	// content. The paper's model assumes an honest-but-curious server
	// (§3.3) — this test documents the boundary: swapping is not
	// detected cryptographically, but the client's post-processing
	// still never returns values that fail the original query.
	db.Blocks[0], db.Blocks[1] = db.Blocks[1], db.Blocks[0]
	nodes, _, _, err := sys.Query("//patient[pname='Betty']/pname")
	if err != nil {
		// Structural mismatch detected during reassembly: acceptable.
		return
	}
	for _, n := range nodes {
		if got := n.LeafValue(); got != "Betty" {
			t.Errorf("post-processing returned non-matching value %q", got)
		}
	}
}

func TestMissingBlockRejected(t *testing.T) {
	sys := hostHospital(t)
	// Translate + execute, then drop a block from the answer before
	// post-processing — the client must notice the dangling
	// placeholder.
	qs, err := sys.Client.Translate(mustPath(t, "//patient[age=35]"))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := sys.Server.Execute(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Blocks) == 0 {
		t.Skip("no blocks in answer")
	}
	ans.Blocks = ans.Blocks[:len(ans.Blocks)-1]
	ans.BlockIDs = ans.BlockIDs[:len(ans.BlockIDs)-1]
	blocks, err := sys.Client.DecryptBlocks(ans)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Client.PostProcess(mustPath(t, "//patient[age=35]"), ans, blocks); err == nil {
		t.Errorf("missing block not detected")
	}
}

func TestGarbageFragmentRejected(t *testing.T) {
	sys := hostHospital(t)
	ans := &wire.Answer{Fragments: [][]byte{[]byte("<broken")}}
	blocks, _ := sys.Client.DecryptBlocks(ans)
	if _, _, err := sys.Client.PostProcess(mustPath(t, "//patient"), ans, blocks); err == nil {
		t.Errorf("garbage fragment accepted")
	}
}

func TestWrongKeyCannotDecrypt(t *testing.T) {
	sys := hostHospital(t)
	doc, _ := xmltree.ParseString(hospitalXML)
	other, err := Host(doc, paperSCs, SchemeOpt, []byte("different-key"))
	if err != nil {
		t.Fatal(err)
	}
	// Serve sys's blocks to other's client.
	qs, _ := other.Client.Translate(mustPath(t, "//patient"))
	_ = qs
	ans := &wire.Answer{BlockIDs: []int{0}, Blocks: [][]byte{sys.HostedDB.Blocks[0]}}
	if _, err := other.Client.DecryptBlocks(ans); err == nil {
		t.Errorf("foreign key decrypted block")
	}
}

func mustPath(t *testing.T, q string) *xpath.Path {
	t.Helper()
	p, err := xpath.Parse(q)
	if err != nil {
		t.Fatalf("parse %s: %v", q, err)
	}
	return p
}
