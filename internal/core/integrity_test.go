package core

import (
	"errors"
	"testing"

	"repro/internal/authtree"
	"repro/internal/xmltree"
)

// TestIntegrityEndToEnd walks the whole verified lifecycle against
// the in-process backend: host, enable integrity, run verified
// queries and aggregates, update (advancing the root), and verify
// again — the owner's commitment stays in lockstep with the hosted
// state through every mutation.
func TestIntegrityEndToEnd(t *testing.T) {
	doc, err := xmltree.ParseString(hospitalXML)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Host(doc, paperSCs, SchemeOpt, []byte("integrity-e2e"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	if err := sys.EnableIntegrity(); err != nil {
		t.Fatalf("EnableIntegrity: %v", err)
	}
	rootBefore := sys.Verifier().Root()

	// Every corpus query (including empty-answer ones) verifies.
	for _, q := range queries {
		if _, _, _, err := sys.Query(q); err != nil {
			t.Fatalf("verified query %q: %v", q, err)
		}
	}

	// Verified single-block aggregate.
	min, tm, err := sys.AggregateMinMax("//insurance/policy", false)
	if err != nil {
		t.Fatalf("verified MIN: %v", err)
	}
	if min != "9983" {
		t.Errorf("MIN(policy) = %q, want 9983", min)
	}
	if tm.BlocksShipped != 1 {
		t.Errorf("verified aggregate shipped %d blocks, want 1", tm.BlocksShipped)
	}

	// An update must advance the commitment...
	if _, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", "cholera"); err != nil {
		t.Fatalf("verified update: %v", err)
	}
	rootAfter := sys.Verifier().Root()
	if rootBefore == rootAfter {
		t.Fatal("update did not advance the Merkle root")
	}

	// ...and post-update queries verify against the NEW root.
	nodes, _, _, err := sys.Query("//patient[.//disease='cholera']/pname")
	if err != nil {
		t.Fatalf("post-update verified query: %v", err)
	}
	if len(nodes) != 1 || nodes[0].LeafValue() != "Matt" {
		t.Errorf("post-update answer: %v", ResultStrings(nodes))
	}
	if _, _, err := sys.AggregateMinMax("//insurance/policy", false); err != nil {
		t.Fatalf("post-update verified aggregate: %v", err)
	}
}

// TestIntegrityEmptyAnswerVerifies: emptiness is a claim too. An
// honest empty answer carries a liveness anchor (the structure leaf)
// and must verify, not be waved through unproven.
func TestIntegrityEmptyAnswerVerifies(t *testing.T) {
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := Host(doc, paperSCs, SchemeOpt, []byte("integrity-empty"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	if err := sys.EnableIntegrity(); err != nil {
		t.Fatalf("EnableIntegrity: %v", err)
	}
	nodes, _, _, err := sys.Query("//patient[.//disease='plague']/pname")
	if err != nil {
		t.Fatalf("verified empty query: %v", err)
	}
	if len(nodes) != 0 {
		t.Errorf("expected empty answer, got %v", ResultStrings(nodes))
	}
}

// TestIntegrityDisabledIdentical: without EnableIntegrity no proof
// is requested, no proof is attached, and answers are byte-identical
// to the pre-integrity wire format — the layer is pay-for-what-you-
// use.
func TestIntegrityDisabledIdentical(t *testing.T) {
	host := func(key string) *System {
		d, _ := xmltree.ParseString(hospitalXML)
		s, err := Host(d, paperSCs, SchemeOpt, []byte(key))
		if err != nil {
			t.Fatalf("Host: %v", err)
		}
		return s
	}
	plain := host("same-key")
	verified := host("same-key")
	if err := verified.EnableIntegrity(); err != nil {
		t.Fatalf("EnableIntegrity: %v", err)
	}
	for _, q := range queries {
		a, _, _, err := plain.Query(q)
		if err != nil {
			t.Fatalf("plain %q: %v", q, err)
		}
		b, _, _, err := verified.Query(q)
		if err != nil {
			t.Fatalf("verified %q: %v", q, err)
		}
		got, want := ResultStrings(b), ResultStrings(a)
		if len(got) != len(want) {
			t.Fatalf("query %q: verified answer differs: %v vs %v", q, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %q: verified answer differs at %d: %q vs %q", q, i, got[i], want[i])
			}
		}
	}
}

// TestIntegrityRejectsForeignVerifier: a verifier built over a
// different database must reject every answer — the check is against
// this owner's commitment, not any well-formed proof.
func TestIntegrityRejectsForeignVerifier(t *testing.T) {
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := Host(doc, paperSCs, SchemeOpt, []byte("key-one"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	other, _ := xmltree.ParseString(hospitalXML)
	sysOther, err := Host(other, paperSCs, SchemeOpt, []byte("key-two"))
	if err != nil {
		t.Fatalf("Host other: %v", err)
	}
	if err := sysOther.EnableIntegrity(); err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Point sys at the OTHER system's verifier state by swapping in a
	// ring built from it (no retired tail, so nothing of the original
	// commitment survives) — simulating a mismatched commitment.
	sys.mu.Lock()
	sys.ring = newVerifierRing(sysOther.ring.Current().Clone())
	sys.publishLocked()
	sys.mu.Unlock()
	_, _, _, err = sys.Query("//patient/pname")
	if !errors.Is(err, authtree.ErrTampered) {
		t.Fatalf("mismatched commitment accepted: err=%v", err)
	}
}
