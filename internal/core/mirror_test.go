package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// countingBackend wraps Local behind a non-Local type (so
// EnableMirrorReads installs a replica) and counts what reaches the
// "remote" side.
type countingBackend struct {
	l  Local
	mu sync.Mutex

	executes int
	batches  int
	applies  int
}

func (c *countingBackend) Execute(ctx context.Context, q *wire.Query) (*wire.Answer, error) {
	c.mu.Lock()
	c.executes++
	c.mu.Unlock()
	return c.l.Execute(ctx, q)
}

func (c *countingBackend) Extreme(ctx context.Context, lo, hi uint64, max bool) (int, []byte, bool, error) {
	return c.l.Extreme(ctx, lo, hi, max)
}

func (c *countingBackend) ExtremeProof(ctx context.Context, lo, hi uint64, max bool) (*wire.ExtremeResult, error) {
	return c.l.ExtremeProof(ctx, lo, hi, max)
}

func (c *countingBackend) ApplyUpdate(ctx context.Context, u *wire.Update) error {
	c.mu.Lock()
	c.applies++
	c.mu.Unlock()
	return c.l.ApplyUpdate(ctx, u)
}

func (c *countingBackend) ApplyUpdateBatch(ctx context.Context, b *wire.UpdateBatch) error {
	c.mu.Lock()
	c.batches++
	c.mu.Unlock()
	return c.l.ApplyUpdateBatch(ctx, b)
}

func (c *countingBackend) counts() (executes, batches, applies int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.executes, c.batches, c.applies
}

// With mirror reads on, the update pipeline's read half never reaches
// the backend: a whole batch commits with zero backend Executes, one
// batch frame, and the post-state answers verified queries correctly.
func TestMirrorReadsServeUpdateReadsLocally(t *testing.T) {
	sys, _ := hostForUpdate(t)
	if err := sys.EnableIntegrity(); err != nil {
		t.Fatal(err)
	}
	cb := &countingBackend{l: sys.Server.(Local)}
	sys.UseBackend(cb)
	sys.EnableMirrorReads()
	if sys.mirrorExec == nil {
		t.Fatal("EnableMirrorReads left no replica behind a non-Local backend")
	}
	sys.EnableUpdateBatching(2, 3*time.Second)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	tms := make([]Timings, 2)
	for i, u := range []struct{ q, v string }{
		{"//patient[pname='Ann']/insurance/policy", "88888"},
		{"//patient[pname='Matt']/treat[1]/disease", "measles"},
	} {
		wg.Add(1)
		go func(i int, q, v string) {
			defer wg.Done()
			_, tms[i], errs[i] = sys.UpdateLeafValuesTimed(context.Background(), q, v)
		}(i, u.q, u.v)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if !tms[i].UpdateBatched || tms[i].UpdateBatchSize != 2 {
			t.Fatalf("member %d: batched=%v size=%d, want a 2-member batch",
				i, tms[i].UpdateBatched, tms[i].UpdateBatchSize)
		}
	}

	executes, batches, applies := cb.counts()
	if executes != 0 {
		t.Errorf("update reads reached the backend %d times, want 0 (mirror reads)", executes)
	}
	if batches != 1 || applies != 0 {
		t.Errorf("backend saw %d batch frames and %d single frames, want 1 and 0", batches, applies)
	}

	// The replica consumed the committed frames: its generation moved
	// off the boot value, in lockstep with the backend server's.
	if got, want := sys.mirrorExec.Generation(), cb.l.S.Generation(); got != want {
		t.Errorf("replica generation %d, backend generation %d", got, want)
	}

	// Verified queries (which DO go to the backend) serve the batch.
	for q, want := range map[string]string{
		"//patient[.//policy>80000]/pname":      "Ann",
		"//patient[.//disease='measles']/pname": "Matt",
	} {
		got := queryValues(t, sys, q)
		if len(got) != 1 || got[0] != want {
			t.Errorf("after mirror-read batch: %s = %v, want [%s]", q, got, want)
		}
	}
}

// Mirror reads also back the inline (batching-off) path, where each
// commit replays its lone frame onto the replica.
func TestMirrorReadsInlineUpdates(t *testing.T) {
	sys, _ := hostForUpdate(t)
	if err := sys.EnableIntegrity(); err != nil {
		t.Fatal(err)
	}
	cb := &countingBackend{l: sys.Server.(Local)}
	sys.UseBackend(cb)
	sys.EnableMirrorReads()

	for _, v := range []string{"91111", "92222"} {
		n, err := sys.UpdateLeafValues("//patient[pname='Ann']/insurance/policy", v)
		if err != nil {
			t.Fatalf("update to %s: %v", v, err)
		}
		if n != 1 {
			t.Fatalf("update to %s touched %d values, want 1", v, n)
		}
	}
	executes, _, applies := cb.counts()
	if executes != 0 {
		t.Errorf("update reads reached the backend %d times, want 0", executes)
	}
	if applies != 2 {
		t.Errorf("backend saw %d single-update frames, want 2", applies)
	}
	got := queryValues(t, sys, "//patient[.//policy>90000]/pname")
	if len(got) != 1 || got[0] != "Ann" {
		t.Errorf("after inline mirror-read updates: got %v, want [Ann]", got)
	}
}

// Behind an in-process backend the read is already local:
// EnableMirrorReads must be a no-op rather than boot a second server.
func TestMirrorReadsNoopWithLocalBackend(t *testing.T) {
	sys, _ := hostForUpdate(t)
	sys.EnableMirrorReads()
	if sys.mirrorExec != nil {
		t.Fatal("EnableMirrorReads built a replica although the backend is Local")
	}
	if n, err := sys.UpdateLeafValues("//patient[pname='Ann']/insurance/policy", "33333"); err != nil || n != 1 {
		t.Fatalf("update after no-op enable: n=%d err=%v", n, err)
	}
}
