package core

import (
	"reflect"
	"testing"

	"repro/internal/client"
	"repro/internal/datagen"
	"repro/internal/netsim"
	"repro/internal/sc"
	"repro/internal/scheme"
	"repro/internal/server"
	"repro/internal/xmltree"
)

// mixedXML places "code" nodes both inside a protected context
// (under record, where the association SC forces encryption) and
// outside it (under archive, plaintext). Query translation must then
// match BOTH the encrypted and the plaintext label for "code".
const mixedXML = `
<library>
  <record>
    <code>alpha</code>
    <owner>Ann</owner>
  </record>
  <record>
    <code>beta</code>
    <owner>Bob</owner>
  </record>
  <archive>
    <code>alpha</code>
    <code>gamma</code>
  </archive>
</library>`

var mixedSCs = []string{"//record:(/code, /owner)"}

func TestMixedTagPlacement(t *testing.T) {
	doc, err := xmltree.ParseString(mixedXML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sys, err := Host(doc, mixedSCs, SchemeOpt, []byte("mixed"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	// Whichever endpoint the cover chose, "code" may be mixed; test
	// the case explicitly by forcing the code cover.
	sysCode, err := hostWithCover(t, doc, "code")
	if err != nil {
		t.Fatalf("host with code cover: %v", err)
	}
	for _, s := range []*System{sys, sysCode} {
		for _, q := range []string{
			"//code",                       // must find all four
			"//archive/code",               // plaintext side only
			"//record/code",                // encrypted side only
			"//record[code='alpha']/owner", // value predicate on the encrypted side
			"//archive[code='gamma']",      // value predicate on the plaintext side
			"//library[.//code='gamma']",   // mixed search from the root
		} {
			want := plaintextResults(t, doc, q)
			got := systemResults(t, s, q, false)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("scheme %s query %s:\n got  %v\n want %v", s.Scheme.Name, q, got, want)
			}
		}
	}
}

// hostWithCover hosts mixedXML with an explicit cover tag choice.
func hostWithCover(t *testing.T, doc *xmltree.Document, coverTag string) (*System, error) {
	t.Helper()
	scs, err := sc.ParseAll(mixedSCs)
	if err != nil {
		return nil, err
	}
	sch, err := scheme.Secure(doc, scs, map[string]bool{coverTag: true})
	if err != nil {
		return nil, err
	}
	cl, err := client.New([]byte("mixed-cover"))
	if err != nil {
		return nil, err
	}
	db, err := cl.Encrypt(doc, sch)
	if err != nil {
		return nil, err
	}
	return &System{
		Client:   cl,
		Server:   Local{S: server.New(db)},
		Link:     netsim.Paper,
		Scheme:   sch,
		HostedDB: db,
	}, nil
}

// TestRandomizedSoak exercises the full pipeline against randomly
// generated documents, constraints and queries, comparing every
// result with direct plaintext evaluation.
func TestRandomizedSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is slow; run without -short")
	}
	r := datagen.NewRand(2026)
	tags := []string{"a", "b", "c", "d", "e"}
	values := []string{"red", "green", "blue", "10", "20", "30", "444"}

	for trial := 0; trial < 60; trial++ {
		doc := randomSoakDoc(r, tags, values)
		scSpecs := randomSoakSCs(r, doc)
		if len(scSpecs) == 0 {
			continue
		}
		for _, schemeName := range []SchemeName{SchemeOpt, SchemeTop} {
			sys, err := Host(doc, scSpecs, schemeName, []byte("soak"))
			if err != nil {
				// A constraint can be unsatisfiable on this instance
				// (e.g. self-association after tag collisions): skip.
				t.Logf("trial %d %s: host: %v", trial, schemeName, err)
				continue
			}
			for _, q := range randomSoakQueries(r, doc) {
				want := plaintextResults(t, doc, q)
				got := systemResults(t, sys, q, false)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("trial %d scheme %s query %s:\n got  %v\n want %v\ndoc: %s",
						trial, schemeName, q, got, want, doc.String())
				}
			}
		}
	}
}

func randomSoakDoc(r *datagen.Rand, tags, values []string) *xmltree.Document {
	root := xmltree.NewElement("root")
	var build func(parent *xmltree.Node, depth int)
	build = func(parent *xmltree.Node, depth int) {
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			tag := tags[r.Intn(len(tags))]
			child := parent.AppendChild(xmltree.NewElement(tag))
			if depth >= 2 || r.Intn(3) == 0 {
				child.AppendChild(xmltree.NewText(values[r.Intn(len(values))]))
			} else {
				build(child, depth+1)
			}
		}
	}
	build(root, 0)
	return xmltree.NewDocument(root)
}

// randomSoakSCs picks association constraints between leaf tags that
// actually co-occur under a shared parent tag.
func randomSoakSCs(r *datagen.Rand, doc *xmltree.Document) []string {
	type pair struct{ p, q1, q2 string }
	var candidates []pair
	seen := map[string]bool{}
	for _, n := range doc.Nodes() {
		if n.Kind != xmltree.Element || n.IsLeaf() {
			continue
		}
		kids := n.ElementChildren()
		for i := 0; i < len(kids); i++ {
			for j := i + 1; j < len(kids); j++ {
				if !kids[i].IsLeaf() || !kids[j].IsLeaf() || kids[i].Tag == kids[j].Tag {
					continue
				}
				key := n.Tag + "|" + kids[i].Tag + "|" + kids[j].Tag
				if !seen[key] {
					seen[key] = true
					candidates = append(candidates, pair{n.Tag, kids[i].Tag, kids[j].Tag})
				}
			}
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	n := 1 + r.Intn(2)
	var out []string
	for i := 0; i < n && i < len(candidates); i++ {
		c := candidates[r.Intn(len(candidates))]
		out = append(out, "//"+c.p+":(/"+c.q1+", /"+c.q2+")")
	}
	return out
}

func randomSoakQueries(r *datagen.Rand, doc *xmltree.Document) []string {
	var leaves []*xmltree.Node
	for _, n := range doc.Nodes() {
		if n.Kind == xmltree.Element && n.IsLeaf() && n.LeafValue() != "" {
			leaves = append(leaves, n)
		}
	}
	var out []string
	for i := 0; i < 10 && len(leaves) > 0; i++ {
		l := leaves[r.Intn(len(leaves))]
		switch r.Intn(8) {
		case 0:
			out = append(out, "//"+l.Tag)
		case 1:
			out = append(out, "//"+l.Tag+"[.='"+l.LeafValue()+"']")
		case 2:
			if l.Parent != nil && l.Parent.Tag != "" {
				out = append(out, "//"+l.Parent.Tag+"["+l.Tag+"='"+l.LeafValue()+"']")
			}
		case 3:
			out = append(out, "//"+l.Tag+"[not(.='"+l.LeafValue()+"')]")
		case 4:
			out = append(out, "//"+l.Tag+"[.>='"+l.LeafValue()+"']")
		case 5:
			out = append(out, "//"+l.Tag+"[.<'"+l.LeafValue()+"']")
		case 6:
			if l.Parent != nil {
				out = append(out, "//"+l.Parent.Tag+"//"+l.Tag)
			}
		case 7:
			out = append(out, "//"+l.Tag+"[following-sibling::"+l.Tag+"]")
		}
	}
	out = append(out, "//root/*", "//*")
	return out
}
