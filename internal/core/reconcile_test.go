package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/wire"
)

// lossyUpdateBackend wraps another Backend and fails the next ApplyUpdate
// with failErr; when applyFirst is set the update still reaches the
// inner backend before the error — modelling an acknowledgment lost
// after the server durably applied.
type lossyUpdateBackend struct {
	Backend
	failErr    error
	applyFirst bool
	sent       int
}

func (f *lossyUpdateBackend) ApplyUpdate(ctx context.Context, u *wire.Update) error {
	f.sent++
	if f.failErr != nil {
		err := f.failErr
		f.failErr = nil
		if f.applyFirst {
			if aerr := f.Backend.ApplyUpdate(ctx, u); aerr != nil {
				return aerr
			}
		}
		return err
	}
	return f.Backend.ApplyUpdate(ctx, u)
}

// definiteErr mimics a remote 4xx: Temporary() == false, so the
// failure is a definite rejection, not an ambiguous one.
type definiteErr struct{}

func (definiteErr) Error() string   { return "update rejected" }
func (definiteErr) Temporary() bool { return false }

// TestAmbiguousUpdateStashesAndReconciles: a transport failure after
// the server (possibly) applied leaves the update pending; verified
// queries refuse until Reconcile resends it under the same request
// ID, after which owner and server agree on the post-update state.
func TestAmbiguousUpdateStashesAndReconciles(t *testing.T) {
	sys, _ := hostForUpdate(t)
	if err := sys.EnableIntegrity(); err != nil {
		t.Fatal(err)
	}
	fb := &lossyUpdateBackend{Backend: sys.Server, failErr: errors.New("connection reset"), applyFirst: true}
	sys.UseBackend(fb)

	_, err := sys.UpdateLeafValues("//patient[pname='Matt']/treat[1]/disease", "cholera")
	if !errors.Is(err, ErrUpdatePending) {
		t.Fatalf("ambiguous failure returned %v; want ErrUpdatePending", err)
	}
	if !sys.UpdatePending() {
		t.Fatal("no pending update after ambiguous failure")
	}
	// Verified queries refuse while the commitment may trail the
	// server.
	if _, _, _, err := sys.Query("//patient/pname"); !errors.Is(err, ErrUpdatePending) {
		t.Fatalf("verified query during pending = %v; want ErrUpdatePending", err)
	}
	// So do further updates.
	if _, err := sys.UpdateLeafValues("//patient[pname='Betty']/treat[1]/disease", "flu"); !errors.Is(err, ErrUpdatePending) {
		t.Fatalf("second update during pending = %v; want ErrUpdatePending", err)
	}

	n, err := sys.Reconcile(context.Background())
	if err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	if n != 1 {
		t.Fatalf("Reconcile reported %d edits, want 1", n)
	}
	if sys.UpdatePending() {
		t.Fatal("still pending after successful Reconcile")
	}
	if fb.sent != 2 {
		t.Fatalf("backend saw %d sends, want 2 (original + resend)", fb.sent)
	}
	got := queryValues(t, sys, "//patient[.//disease='cholera']/pname")
	if len(got) != 1 || got[0] != "Matt" {
		t.Errorf("reconciled update not visible: %v", got)
	}
}

// TestDefiniteRejectionDoesNotStash: a failure the backend reports as
// final (4xx-style) keeps the old behavior — the error surfaces, no
// pending state, queries keep working.
func TestDefiniteRejectionDoesNotStash(t *testing.T) {
	sys, _ := hostForUpdate(t)
	fb := &lossyUpdateBackend{Backend: sys.Server, failErr: definiteErr{}}
	sys.UseBackend(fb)

	_, err := sys.UpdateLeafValues("//patient[pname='Matt']/treat[1]/disease", "cholera")
	if err == nil || errors.Is(err, ErrUpdatePending) {
		t.Fatalf("definite rejection returned %v", err)
	}
	if sys.UpdatePending() {
		t.Fatal("definite rejection left a pending update")
	}
	if _, _, _, err := sys.Query("//patient/pname"); err != nil {
		t.Fatalf("query after definite rejection: %v", err)
	}
	// Reconcile with nothing pending is a no-op.
	if n, err := sys.Reconcile(context.Background()); n != 0 || err != nil {
		t.Fatalf("Reconcile with nothing pending = (%d, %v)", n, err)
	}
}

// TestLocalBackendFailsAtomically: the in-process backend reverts on
// failure, so its errors are never ambiguous and nothing is stashed.
func TestLocalBackendFailsAtomically(t *testing.T) {
	sys, _ := hostForUpdate(t)
	if ambiguousUpdateFailure(sys.Server, errors.New("anything")) {
		t.Fatal("Local backend failure classified ambiguous")
	}
}
