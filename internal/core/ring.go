package core

import (
	"sync"
	"time"

	"repro/internal/authtree"
	"repro/internal/wire"
)

// verifierRing is the owner's integrity commitment, shaped for
// lock-free readers. The old design shared ONE *wire.AuthVerifier and
// advanced it in place under the System's exclusive lock; that only
// worked because readers were excluded for the whole round trip. With
// snapshot reads, an answer can arrive AFTER a concurrent commit
// advanced the root — produced honestly against the generation that
// was current when the server executed it — so the ring keeps the
// current verifier plus a short tail of retired ones and accepts an
// answer that verifies against any of them, newest first.
//
// Freshness is preserved by sequence pinning: every Advance stamps a
// monotonically increasing sequence, and a read records the sequence
// current at its pin. Core accepts an answer only against verifiers
// AT LEAST AS NEW as the read's pin (verifyAnswerSince) — so a read
// that pinned before a commit legitimately accepts either side of
// it, while a read that pinned after rejects a replayed pre-commit
// answer outright: the rollback-replay attack stays detected (see
// internal/attack). The tail additionally bounds the window to
// ringRetain commits. Readers that need the exact current root — the
// update pipeline's own read half, Reconcile — run under the
// System's exclusive lock where the ring cannot advance
// concurrently.
//
// Every verifier inside the ring is finalized (Root() called) before
// it is published, and never mutated afterwards, so Verify* calls
// need no per-verifier locking — the ring's RWMutex only guards the
// slot pointers.
type verifierRing struct {
	mu      sync.RWMutex
	cur     *wire.AuthVerifier
	curSeq  uint64
	retired []ringEntry // oldest first
	// staged holds roots the owner computed at prepare time for
	// commits whose frames are SENT but not yet acknowledged. The
	// server applies a commit before its response travels back, so an
	// answer can honestly carry the next root an entire round trip
	// before Advance installs it; staging closes that window without
	// waiting. Sound because a staged root is the owner's OWN
	// commitment for an update it chose to send — a server cannot
	// forge an answer into it, only apply the owner's update.
	staged []*wire.AuthVerifier
	// advanced is closed and replaced whenever the verifier set grows
	// (Advance, Stage); verifySince waits on it as the last resort
	// when an answer matches nothing yet.
	advanced chan struct{}
}

// ringEntry is a retired verifier with the sequence it was current
// at.
type ringEntry struct {
	seq uint64
	v   *wire.AuthVerifier
}

// ringRetain bounds the retired tail: how many superseded roots an
// in-flight answer may still verify against.
const ringRetain = 8

// newVerifierRing wraps the initial commitment. Finalizes v's root;
// v must not be mutated by the caller afterwards.
func newVerifierRing(v *wire.AuthVerifier) *verifierRing {
	v.Root()
	return &verifierRing{cur: v, advanced: make(chan struct{})}
}

// Current returns the verifier of the latest commit, for chaining the
// next update's clone from. Callers mutate the ring only through
// Advance, never the returned verifier.
func (r *verifierRing) Current() *wire.AuthVerifier {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cur
}

// Advance installs next as the current commitment and retires the
// previous one into the tail. next's root is finalized here, before
// any concurrent Verify* can reach it; next must not be mutated by
// the caller afterwards.
func (r *verifierRing) Advance(next *wire.AuthVerifier) {
	next.Root()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur != nil {
		r.retired = append(r.retired, ringEntry{seq: r.curSeq, v: r.cur})
	}
	// Commits serialize under the System's write lock, so everything
	// staged belongs to the window this Advance settles. Any staged
	// root other than next (a sequential flush's mid-chain states)
	// was a real, now superseded, server state: retire it at the
	// outgoing verifier's floor so pins from before the window still
	// accept it and pins after reject it.
	for _, sv := range r.staged {
		if sv != next {
			r.retired = append(r.retired, ringEntry{seq: r.curSeq, v: sv})
		}
	}
	r.staged = nil
	if len(r.retired) > ringRetain {
		r.retired = r.retired[len(r.retired)-ringRetain:]
	}
	r.cur = next
	r.curSeq++
	close(r.advanced)
	r.advanced = make(chan struct{})
}

// Stage publishes an in-flight commit's root for verification before
// the server's acknowledgment arrives. Call it after the frame is
// handed to the transport; pair with Advance (acknowledged) or
// Unstage (definitely rejected — the server never held the root).
// v's root is finalized here; v must not be mutated afterwards.
func (r *verifierRing) Stage(v *wire.AuthVerifier) {
	v.Root()
	r.mu.Lock()
	defer r.mu.Unlock()
	// Copy-on-write: readers iterate the slice they captured under
	// RLock after releasing it.
	next := make([]*wire.AuthVerifier, len(r.staged)+1)
	copy(next, r.staged)
	next[len(r.staged)] = v
	r.staged = next
	close(r.advanced)
	r.advanced = make(chan struct{})
}

// Unstage withdraws a staged root after a definite rejection.
func (r *verifierRing) Unstage(v *wire.AuthVerifier) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.unstageLocked(v)
}

func (r *verifierRing) unstageLocked(v *wire.AuthVerifier) {
	for i, sv := range r.staged {
		if sv == v {
			// Copy-on-write, like Stage: never shift under a reader.
			next := make([]*wire.AuthVerifier, 0, len(r.staged)-1)
			next = append(next, r.staged[:i]...)
			r.staged = append(next, r.staged[i+1:]...)
			return
		}
	}
}

// pinSeq returns the sequence of the current commitment; a read
// records it at pin time and verifies with it as the floor.
func (r *verifierRing) pinSeq() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.curSeq
}

// ringVerifyWait bounds how long a failing verification waits for
// in-flight commits to advance the ring before the failure is final.
// Commit responses arrive well inside this on any healthy link; a
// genuinely tampered answer only delays its own rejection.
const ringVerifyWait = 250 * time.Millisecond

// verifySince runs check against the current verifier and then the
// retired tail, newest first, skipping entries older than minSeq —
// roots the reader's pin already superseded must not resurrect a
// replayed answer. The first acceptance wins. On total failure the
// answer may be from a commit the server already applied but whose
// response has not yet advanced this ring; verifySince waits
// (bounded) for the next Advance and re-checks before declaring the
// CURRENT verifier's error — that is the commitment the answer
// should have matched. Callers that exclude concurrent commits (the
// update pipeline under the System's write lock, readers under the
// read-lock fallback) never wait: no Advance can occur, so the first
// failure stands after the timeout, and with no writer racing there
// is no failure to begin with on honest answers.
func (r *verifierRing) verifySince(minSeq uint64, check func(*wire.AuthVerifier) error) error {
	deadline := time.NewTimer(ringVerifyWait)
	defer deadline.Stop()
	for {
		r.mu.RLock()
		cur := r.cur
		staged := r.staged
		tail := r.retired
		advanced := r.advanced
		r.mu.RUnlock()
		curErr := check(cur)
		if curErr == nil {
			return nil
		}
		// Staged roots are strictly newer than cur, so they satisfy
		// any pin floor; newest first, like the tail.
		for i := len(staged) - 1; i >= 0; i-- {
			if check(staged[i]) == nil {
				return nil
			}
		}
		for i := len(tail) - 1; i >= 0; i-- {
			if tail[i].seq < minSeq {
				break
			}
			if check(tail[i].v) == nil {
				return nil
			}
		}
		select {
		case <-advanced:
			// A commit landed; the answer may verify against the new
			// root. Loop and re-check.
		case <-deadline.C:
			return curErr
		}
	}
}

// verifyAnswerSince checks an answer with the reader's pinned
// sequence as the acceptance floor.
func (r *verifierRing) verifyAnswerSince(minSeq uint64, ans *wire.Answer) error {
	return r.verifySince(minSeq, func(v *wire.AuthVerifier) error { return v.VerifyAnswer(ans) })
}

// verifyExtremeSince checks an extreme probe with the reader's pinned
// sequence as the acceptance floor.
func (r *verifierRing) verifyExtremeSince(minSeq uint64, lo, hi uint64, max bool, found bool, blockID int, block, proof []byte) error {
	return r.verifySince(minSeq, func(v *wire.AuthVerifier) error {
		return v.VerifyExtreme(lo, hi, max, found, blockID, block, proof)
	})
}

// VerifyAnswer implements wire.Verifier (used by the shared remote
// transport, which has no pin — core re-checks with the reader's
// pinned floor).
func (r *verifierRing) VerifyAnswer(ans *wire.Answer) error {
	return r.verifyAnswerSince(0, ans)
}

// VerifyExtreme implements wire.Verifier.
func (r *verifierRing) VerifyExtreme(lo, hi uint64, max bool, found bool, blockID int, block, proof []byte) error {
	return r.verifyExtremeSince(0, lo, hi, max, found, blockID, block, proof)
}

// Root implements wire.Verifier: the latest committed root.
func (r *verifierRing) Root() authtree.Digest { return r.Current().Root() }

var _ wire.Verifier = (*verifierRing)(nil)
