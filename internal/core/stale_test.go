package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/wire"
	"repro/internal/xmltree"
)

// flakyBackend wraps a working Backend and can be switched into a
// hard-down state where every call fails.
type flakyBackend struct {
	real Backend
	down bool
}

var errBackendDown = errors.New("backend down")

// staleSCs mirror the remote suite's constraints: disease values end
// up inside encryption blocks, so UpdateLeafValues can reach them.
var staleSCs = []string{
	"//insurance",
	"//patient:(/pname, /SSN)",
	"//patient:(/pname, //disease)",
	"//treat:(/disease, /doctor)",
}

func (f *flakyBackend) Execute(ctx context.Context, q *wire.Query) (*wire.Answer, error) {
	if f.down {
		return nil, errBackendDown
	}
	return f.real.Execute(ctx, q)
}

func (f *flakyBackend) Extreme(ctx context.Context, lo, hi uint64, max bool) (int, []byte, bool, error) {
	if f.down {
		return 0, nil, false, errBackendDown
	}
	return f.real.Extreme(ctx, lo, hi, max)
}

func (f *flakyBackend) ApplyUpdate(ctx context.Context, u *wire.Update) error {
	if f.down {
		return errBackendDown
	}
	return f.real.ApplyUpdate(ctx, u)
}

// TestStaleFallback: with the fallback enabled, a query that
// succeeded once is re-served from the answer cache when the backend
// goes down — marked stale — and identical to the live answer.
func TestStaleFallback(t *testing.T) {
	doc, err := xmltree.ParseString(hospitalXML)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Host(doc, staleSCs, SchemeOpt, []byte("stale-test"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	fb := &flakyBackend{real: sys.Server}
	sys.UseBackend(fb)
	sys.EnableStaleFallback(0, 0)

	const q = "//patient[.//disease='diarrhea']/pname"
	nodes, _, tm, err := sys.Query(q)
	if err != nil {
		t.Fatalf("live query: %v", err)
	}
	if tm.Stale {
		t.Error("live answer marked stale")
	}
	live := ResultStrings(nodes)

	fb.down = true
	nodes, _, tm, err = sys.Query(q)
	if err != nil {
		t.Fatalf("query with backend down (cache populated): %v", err)
	}
	if !tm.Stale {
		t.Error("cached answer not marked stale")
	}
	if got := ResultStrings(nodes); len(got) != len(live) || got[0] != live[0] {
		t.Errorf("stale answer diverged: %v vs %v", got, live)
	}

	// A query never seen live has nothing to fall back to.
	if _, _, _, err := sys.Query("//patient/SSN"); !errors.Is(err, errBackendDown) {
		t.Errorf("uncached query: want backend error, got %v", err)
	}
}

// TestStaleFallbackDisabledByDefault: without opting in, a dead
// backend is a hard error even for previously answered queries.
func TestStaleFallbackDisabledByDefault(t *testing.T) {
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := Host(doc, nil, SchemeOpt, []byte("no-stale"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	fb := &flakyBackend{real: sys.Server}
	sys.UseBackend(fb)
	const q = "//patient/pname"
	if _, _, _, err := sys.Query(q); err != nil {
		t.Fatalf("live query: %v", err)
	}
	fb.down = true
	if _, _, _, err := sys.Query(q); !errors.Is(err, errBackendDown) {
		t.Errorf("want hard failure without fallback, got %v", err)
	}
}

// TestStaleCacheInvalidatedByUpdate: an applied update clears the
// cache, so the fallback can never serve a pre-update answer.
func TestStaleCacheInvalidatedByUpdate(t *testing.T) {
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := Host(doc, staleSCs, SchemeOpt, []byte("inval"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	fb := &flakyBackend{real: sys.Server}
	sys.UseBackend(fb)
	sys.EnableStaleFallback(0, 0)

	const q = "//patient[.//disease='diarrhea']/pname"
	if _, _, _, err := sys.Query(q); err != nil {
		t.Fatalf("live query: %v", err)
	}
	if _, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", "cholera"); err != nil {
		t.Fatalf("update: %v", err)
	}
	fb.down = true
	// The cached pre-update answer must be gone: hard error, not a
	// stale lie.
	if _, _, _, err := sys.Query(q); !errors.Is(err, errBackendDown) {
		t.Errorf("want hard failure after invalidation, got %v", err)
	}
}
