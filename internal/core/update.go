package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/admission"
	"repro/internal/btree"
	"repro/internal/wire"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// ErrUpdatePending reports that an earlier update's outcome is
// ambiguous — the backend failed in a way that may have lost only the
// acknowledgment, not the update. The client state is already
// rewritten, so further updates (and, with integrity enabled,
// verified queries) are refused until Reconcile resolves it.
var ErrUpdatePending = errors.New("core: an update with ambiguous outcome is pending; call Reconcile")

// UpdateLeafValues sets the value of every leaf node selected by q
// to newValue, re-encrypting the affected blocks and re-issuing the
// value-index bands of every touched attribute (the paper's future
// work #3, §8 — see wire.Update for the design). Only encrypted
// targets are supported: plaintext residue values would require
// residue rewriting, which this extension does not cover. It returns
// the number of values changed.
func (s *System) UpdateLeafValues(q string, newValue string) (int, error) {
	return s.UpdateLeafValuesContext(context.Background(), q, newValue)
}

// UpdateLeafValuesContext is UpdateLeafValues with a caller-supplied
// context bounding the backend round trips. It holds the System's
// exclusive lock for the whole read-modify-write cycle: the client's
// occurrence tables and OPESS bands, the HostedDB mirror and the
// hosted blocks all change together, and concurrent queries (which
// hold the shared lock) must see either the pre-update or the
// post-update state, never a mix.
func (s *System) UpdateLeafValuesContext(ctx context.Context, q string, newValue string) (int, error) {
	n, _, err := s.UpdateLeafValuesTimed(ctx, q, newValue)
	return n, err
}

// UpdateLeafValuesTimed is UpdateLeafValuesContext with the update
// pipeline's timing breakdown. With batching off the lock is held
// end to end as before; with EnableUpdateBatching on, the prepared
// update enqueues under the lock and the caller then waits (off the
// lock) for its batch's shared group commit.
func (s *System) UpdateLeafValuesTimed(ctx context.Context, q string, newValue string) (int, Timings, error) {
	// Updates are write-behind the owner retries anyway: the lowest
	// class, shed first under brownout.
	ctx = admission.ContextWithDefaultPriority(ctx, admission.Background)
	path, err := xpath.Parse(q)
	if err != nil {
		return 0, Timings{}, err
	}
	for {
		n, tm, retry, err := s.updateOnce(ctx, path, q, newValue)
		if retry {
			continue
		}
		return n, tm, err
	}
}

// updateOnce runs one attempt of the update pipeline. retry=true
// means the read half raced a queued batch that touched its target
// blocks; the batch was flushed and the whole read-modify-write must
// redo against the settled state.
func (s *System) updateOnce(ctx context.Context, path *xpath.Path, q, newValue string) (int, Timings, bool, error) {
	var tm Timings
	s.mu.Lock()
	if s.pending != nil {
		s.mu.Unlock()
		return 0, tm, false, ErrUpdatePending
	}

	// Writer pre-read barrier: if a queued member rewrote an OPESS
	// band this update's own value comparisons translate through, the
	// read below would be built from tables the server hasn't caught
	// up to yet. Flush first (we hold the exclusive lock, so the queue
	// is empty afterwards and the prepare sees settled state).
	if keys, unknown := cmpKeys(path); s.queuedBandConflictLocked(keys, unknown) {
		if err := s.flushBatchLocked(ctx); err != nil {
			s.mu.Unlock()
			return 0, tm, false, err
		}
	}

	prep, conflict, err := s.prepareUpdateLocked(ctx, path, q, newValue)
	if conflict {
		// Writer post-read barrier: the answer's blocks intersect a
		// queued member's re-encryptions — reading the pre-batch
		// ciphertext would lose the queued edit. Flush and redo.
		ferr := s.flushBatchLocked(ctx)
		s.mu.Unlock()
		if ferr != nil {
			return 0, tm, false, ferr
		}
		return 0, tm, true, nil
	}
	if err != nil || prep == nil {
		// The prepare may have partially rewritten client tables
		// before failing; republish so readers pin the live state.
		s.publishLocked()
		s.mu.Unlock()
		return 0, tm, false, err
	}

	if s.updBatch == nil {
		// Inline path (batching off): the update carries its own
		// post-state root and commits alone — the pre-batching wire
		// behavior, byte for byte.
		if prep.next != nil {
			root := prep.next.Root()
			prep.upd.NewRoot = root[:]
		}
		// Flush starts: bump the sequence BEFORE the send, so a reader
		// whose answer reflects this update is guaranteed to observe
		// the moved counter afterwards (the server cannot apply before
		// the frame is sent). Stage the post-update root alongside, so
		// an answer the server produces after applying — but before
		// the ack returns — verifies without waiting on the ack.
		s.updSeq.Add(1)
		if prep.next != nil && s.ring != nil {
			s.ring.Stage(prep.next)
		}
		start := time.Now()
		err := s.Server.ApplyUpdate(ctx, prep.upd)
		tm.UpdateApply = time.Since(start)
		if err != nil {
			if ambiguousUpdateFailure(s.Server, err) {
				// The server may hold (durably, or about to recover to)
				// either side of this update, and the client tables are
				// already rewritten. Stash the frame: Reconcile resends
				// it under the same request ID, which is correct in both
				// worlds — a dedup ack if it landed, a fresh idempotent
				// apply if it didn't.
				s.pending = &pendingUpdate{upd: prep.upd, nextVerifier: prep.next, edits: prep.edits}
				s.publishLocked()
				s.mu.Unlock()
				return 0, tm, false, errors.Join(err, ErrUpdatePending)
			}
			// Definite rejection: the server's state did not change,
			// so the staged root never existed server-side.
			if prep.next != nil && s.ring != nil {
				s.ring.Unstage(prep.next)
			}
			s.publishLocked()
			s.mu.Unlock()
			return 0, tm, false, err
		}
		s.commitUpdateLocked(prep.upd, prep.next)
		s.publishLocked()
		s.mu.Unlock()
		return prep.edits, tm, false, nil
	}

	// Group-commit path: enqueue and wait off the lock. The filling
	// caller flushes inline; the first caller of a batch arms the
	// timer that flushes a batch that never fills.
	b := s.updBatch
	qe := &queuedEdit{prep: prep, done: make(chan batchOutcome, 1)}
	b.queue = append(b.queue, qe)
	// Publish the enqueue: readers pinned from here on see this
	// member's bands in the conflict fingerprint (and the rewritten
	// transformer table that goes with them).
	s.publishLocked()
	enqueuedAt := time.Now()
	if len(b.queue) >= b.size {
		s.flushBatchLocked(ctx)
	} else if len(b.queue) == 1 {
		b.timer = time.AfterFunc(b.maxWait, func() {
			s.FlushUpdates(context.Background())
		})
	}
	s.mu.Unlock()

	out := <-qe.done
	tm.UpdateBatched = true
	tm.UpdateBatchSize = out.batchSize
	if d := out.flushStart.Sub(enqueuedAt); d > 0 {
		tm.UpdateEnqueue = d
	}
	tm.UpdateApply = out.applyDur
	tm.UpdateFlushWait = time.Since(enqueuedAt)
	if out.err != nil {
		return 0, tm, false, out.err
	}
	return prep.edits, tm, false, nil
}

// prepareUpdateLocked is the read-modify-write half of an update: the
// verified read, the in-memory edits, the client table rewrite, the
// band and block re-issue, and the chained verifier advance. It does
// NOT set the frame's NewRoot (the send path decides which member of
// a batch carries it) and does NOT contact the backend beyond the
// read. (nil, false, nil) means no values changed; conflict=true
// means the read's blocks collide with the queued batch and the
// caller must flush and redo. Caller holds s.mu exclusively.
func (s *System) prepareUpdateLocked(ctx context.Context, path *xpath.Path, q, newValue string) (*preparedUpdate, bool, error) {
	qs, err := s.Client.Translate(path)
	if err != nil {
		return nil, false, err
	}
	// The read half of the read-modify-write is verified like any
	// query: a verifying transport (remote.WithVerifier) rejects
	// proofless answers, and an update must not be computed from an
	// answer the server could have forged. With EnableMirrorReads on,
	// the read is served by the owner's own replica instead — trusted
	// by construction, so proofless and round-trip-free; this takes
	// the serialized backend RTT out from under the exclusive lock,
	// which is the batched pipeline's floor.
	backend := s.Server
	if s.mirrorExec != nil {
		backend = Local{S: s.mirrorExec}
	} else {
		qs.WantProof = s.ring != nil
	}
	ans, err := backend.Execute(ctx, qs)
	if err != nil {
		return nil, false, err
	}
	if s.queuedBlockConflictLocked(ans.BlockIDs) {
		return nil, true, nil
	}
	blocks, err := s.Client.DecryptBlocks(ans)
	if err != nil {
		return nil, false, err
	}
	res, err := s.Client.PostProcessFull(path, ans, blocks)
	if err != nil {
		return nil, false, err
	}
	if len(res.Nodes) == 0 {
		return nil, false, nil
	}

	type edit struct {
		tagKey   string
		oldValue string
		blockID  int
	}
	touchedBlocks := map[int]*xmltree.Node{} // block id -> content root
	touchedAttrs := map[string]bool{}
	var edits []edit
	for _, n := range res.Nodes {
		if !n.IsLeaf() || n.Kind == xmltree.Text {
			return nil, false, fmt.Errorf("core: update target %s is not a leaf", q)
		}
		bid, content, ok := blockOf(n, res.BlockOf)
		if !ok {
			return nil, false, fmt.Errorf("core: update target %s is stored in plaintext; only encrypted values can be updated", q)
		}
		old := n.LeafValue()
		if old == newValue {
			continue
		}
		key := n.Tag
		if n.Kind == xmltree.Attribute {
			key = "@" + n.Tag
		}
		n.SetLeafValue(newValue)
		touchedBlocks[bid] = content
		touchedAttrs[key] = true
		edits = append(edits, edit{tagKey: key, oldValue: old, blockID: bid})
	}
	if len(edits) == 0 {
		return nil, false, nil
	}

	for _, e := range edits {
		if err := s.Client.ApplyValueEdit(e.tagKey, e.oldValue, newValue, e.blockID); err != nil {
			return nil, false, err
		}
	}

	upd := &wire.Update{}
	for key := range touchedAttrs {
		entries, band, err := s.Client.RebuildEntries(key)
		if err != nil {
			return nil, false, err
		}
		upd.DropBands = append(upd.DropBands, band)
		upd.AddEntries = append(upd.AddEntries, entries...)
	}
	for bid, content := range touchedBlocks {
		ct, err := s.Client.ReencryptBlock(content)
		if err != nil {
			return nil, false, err
		}
		upd.Blocks = append(upd.Blocks, wire.BlockUpdate{ID: bid, Ciphertext: ct})
	}

	// With integrity enabled, precompute this member's post-state on
	// a clone chained from its predecessor — the batch tail when
	// anything is queued, the ring's current verifier otherwise. The
	// clone only advances the ring once the server acks; a failed
	// update leaves the commitment at the pre-update state.
	var base *wire.AuthVerifier
	if s.ring != nil {
		base = s.ring.Current()
	}
	if b := s.updBatch; b != nil && len(b.queue) > 0 {
		base = b.queue[len(b.queue)-1].prep.next
	}
	var nextVerifier *wire.AuthVerifier
	if base != nil {
		nextVerifier = base.Clone()
		if err := nextVerifier.ApplyUpdate(upd); err != nil {
			return nil, false, err
		}
	}

	// A zero request ID is assigned here (not left to the transport)
	// so that if the send fails ambiguously, the stashed update and
	// its eventual resend carry the same ID and the server's dedup
	// table collapses them to one application.
	if upd.RequestID == 0 {
		upd.RequestID = wire.NewRequestID()
	}
	return &preparedUpdate{upd: upd, next: nextVerifier, edits: len(edits)}, false, nil
}

// commitUpdateLocked finishes an acknowledged update: promote the
// verifier clone, apply the mirror, drop stale answers. Caller holds
// the exclusive lock.
func (s *System) commitUpdateLocked(upd *wire.Update, nextVerifier *wire.AuthVerifier) {
	if nextVerifier != nil && s.ring != nil {
		// Advance the ring: remote.WithVerifier shares the RING, so
		// the transport sees the new root without re-wiring, while an
		// answer produced against the pre-update root (a reader whose
		// round trip this commit raced) still verifies against the
		// retired tail. Advance finalizes the (possibly deferred)
		// root before publication.
		s.ring.Advance(nextVerifier)
	}
	s.mirrorUpdate(upd)
	s.applyMirrorExec([]*wire.Update{upd})
	// Cached answers may now reference replaced blocks; drop them
	// rather than serve a provably outdated fallback.
	if s.staleCache != nil {
		s.staleCache.Clear()
	}
}

// applyMirrorExec replays committed frames onto the mirror-read
// replica (no-op when EnableMirrorReads is off) so its value index
// and generation track the server's. The replica shares the HostedDB
// object, so mirrorUpdate has already written the blocks and folded
// the index entries; replaying the band drop-and-re-add is idempotent
// over that, and the replay is what rebuilds the replica's B-tree.
// NewRoot is stripped: the replica keeps no Merkle state (the root
// cross-check already ran on the real server), and carrying it would
// make the replica build one lazily. A replica that rejects a frame
// is dropped — reads fall back to the backend rather than run against
// a replica that missed a commit. Caller holds s.mu exclusively.
func (s *System) applyMirrorExec(us []*wire.Update) {
	if s.mirrorExec == nil || len(us) == 0 {
		return
	}
	stripped := make([]*wire.Update, len(us))
	for i, u := range us {
		if len(u.NewRoot) == 0 {
			stripped[i] = u
			continue
		}
		cp := *u
		cp.NewRoot = nil
		stripped[i] = &cp
	}
	if err := s.mirrorExec.ApplyUpdateBatch(stripped); err != nil {
		s.mirrorExec = nil
	}
}

// ambiguousUpdateFailure reports whether an ApplyUpdate error leaves
// the server's state in doubt. An in-process backend fails
// atomically (the server reverts before returning), and a definitive
// HTTP rejection (4xx: the update never applied) is equally final.
// Everything else — transport failures, timeouts, 5xx (the server
// applied in memory but could not make it durable) — may have lost
// only the acknowledgment.
func ambiguousUpdateFailure(b Backend, err error) bool {
	if _, ok := b.(Local); ok {
		return false
	}
	var t interface{ Temporary() bool }
	if errors.As(err, &t) {
		return t.Temporary()
	}
	return true
}

// Reconcile resolves a pending ambiguous update by resending it under
// its original request ID: the server either acknowledges from its
// dedup table (the update had landed; the ack was lost) or applies it
// fresh (idempotently). On success the client commitment and mirror
// advance and the System serves verified queries again; on another
// ambiguous failure the update stays pending and Reconcile can be
// called again. It reports the number of values the reconciled update
// had changed. With nothing pending it returns (0, nil).
func (s *System) Reconcile(ctx context.Context) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == nil {
		return 0, nil
	}
	p := s.pending
	// The resend may land server-side whatever happens to the ack;
	// readers in flight across it must re-pin (same rule as a flush).
	s.updSeq.Add(1)
	if p.nextVerifier != nil && s.ring != nil {
		s.ring.Stage(p.nextVerifier)
	}
	defer s.publishLocked()
	var err error
	if p.batch != nil {
		err = s.resendBatchLocked(ctx, p.batch)
	} else {
		err = s.Server.ApplyUpdate(ctx, p.upd)
	}
	if err != nil {
		if ambiguousUpdateFailure(s.Server, err) {
			return 0, errors.Join(err, ErrUpdatePending)
		}
		// A definite rejection of the resend: the server never held
		// the update (a dedup ack would have been a 200). The pending
		// state is unwound as far as possible — commitment and mirror
		// stay at the pre-update state — and the caller decides
		// whether to re-issue the whole edit.
		if p.nextVerifier != nil && s.ring != nil {
			s.ring.Unstage(p.nextVerifier)
		}
		s.pending = nil
		return 0, err
	}
	if p.batch != nil {
		for _, u := range p.batch.Updates {
			s.mirrorUpdate(u)
		}
		s.applyMirrorExec(p.batch.Updates)
		if p.nextVerifier != nil && s.ring != nil {
			s.ring.Advance(p.nextVerifier)
		}
		if s.staleCache != nil {
			s.staleCache.Clear()
		}
	} else {
		s.commitUpdateLocked(p.upd, p.nextVerifier)
	}
	s.pending = nil
	return p.edits, nil
}

// resendBatchLocked re-issues a stashed batch under its original
// request IDs: as one frame when the backend can take it, member by
// member otherwise (each member dedups or re-applies idempotently on
// its own ID, so partial prior applications converge too).
func (s *System) resendBatchLocked(ctx context.Context, b *wire.UpdateBatch) error {
	if bb, ok := s.Server.(BatchBackend); ok {
		return bb.ApplyUpdateBatch(ctx, b)
	}
	for _, u := range b.Updates {
		if err := s.Server.ApplyUpdate(ctx, u); err != nil {
			return err
		}
	}
	return nil
}

// UpdatePending reports whether an ambiguous update awaits Reconcile.
func (s *System) UpdatePending() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pending != nil
}

// blockOf walks the ancestor chain to the nearest decrypted block
// content root.
func blockOf(n *xmltree.Node, prov map[*xmltree.Node]int) (int, *xmltree.Node, bool) {
	for cur := n; cur != nil; cur = cur.Parent {
		if id, ok := prov[cur]; ok {
			return id, cur, true
		}
	}
	return 0, nil, false
}

// mirrorUpdate applies an update to the client-side HostedDB copy so
// NaiveQuery and size accounting stay coherent. Dropping a band and
// re-adding its entries is idempotent, so this is safe whether the
// backend shares the HostedDB (in-process) or not (remote).
func (s *System) mirrorUpdate(u *wire.Update) {
	for _, b := range u.Blocks {
		if b.ID >= 0 && b.ID < len(s.HostedDB.Blocks) {
			s.HostedDB.Blocks[b.ID] = b.Ciphertext
		}
	}
	if len(u.DropBands) == 0 && len(u.AddEntries) == 0 {
		return
	}
	drop := map[uint8]bool{}
	for _, b := range u.DropBands {
		drop[b] = true
	}
	var kept []btree.Entry
	for _, e := range s.HostedDB.IndexEntries {
		if !drop[uint8(e.Key>>56)] {
			kept = append(kept, e)
		}
	}
	s.HostedDB.IndexEntries = append(kept, u.AddEntries...)
}
