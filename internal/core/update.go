package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/btree"
	"repro/internal/wire"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// ErrUpdatePending reports that an earlier update's outcome is
// ambiguous — the backend failed in a way that may have lost only the
// acknowledgment, not the update. The client state is already
// rewritten, so further updates (and, with integrity enabled,
// verified queries) are refused until Reconcile resolves it.
var ErrUpdatePending = errors.New("core: an update with ambiguous outcome is pending; call Reconcile")

// UpdateLeafValues sets the value of every leaf node selected by q
// to newValue, re-encrypting the affected blocks and re-issuing the
// value-index bands of every touched attribute (the paper's future
// work #3, §8 — see wire.Update for the design). Only encrypted
// targets are supported: plaintext residue values would require
// residue rewriting, which this extension does not cover. It returns
// the number of values changed.
func (s *System) UpdateLeafValues(q string, newValue string) (int, error) {
	return s.UpdateLeafValuesContext(context.Background(), q, newValue)
}

// UpdateLeafValuesContext is UpdateLeafValues with a caller-supplied
// context bounding the backend round trips. It holds the System's
// exclusive lock for the whole read-modify-write cycle: the client's
// occurrence tables and OPESS bands, the HostedDB mirror and the
// hosted blocks all change together, and concurrent queries (which
// hold the shared lock) must see either the pre-update or the
// post-update state, never a mix.
func (s *System) UpdateLeafValuesContext(ctx context.Context, q string, newValue string) (int, error) {
	path, err := xpath.Parse(q)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending != nil {
		return 0, ErrUpdatePending
	}
	qs, err := s.Client.Translate(path)
	if err != nil {
		return 0, err
	}
	// The read half of the read-modify-write is verified like any
	// query: a verifying transport (remote.WithVerifier) rejects
	// proofless answers, and an update must not be computed from an
	// answer the server could have forged.
	qs.WantProof = s.verifier != nil
	ans, err := s.Server.Execute(ctx, qs)
	if err != nil {
		return 0, err
	}
	blocks, err := s.Client.DecryptBlocks(ans)
	if err != nil {
		return 0, err
	}
	res, err := s.Client.PostProcessFull(path, ans, blocks)
	if err != nil {
		return 0, err
	}
	if len(res.Nodes) == 0 {
		return 0, nil
	}

	type edit struct {
		tagKey   string
		oldValue string
		blockID  int
	}
	touchedBlocks := map[int]*xmltree.Node{} // block id -> content root
	touchedAttrs := map[string]bool{}
	var edits []edit
	for _, n := range res.Nodes {
		if !n.IsLeaf() || n.Kind == xmltree.Text {
			return 0, fmt.Errorf("core: update target %s is not a leaf", q)
		}
		bid, content, ok := blockOf(n, res.BlockOf)
		if !ok {
			return 0, fmt.Errorf("core: update target %s is stored in plaintext; only encrypted values can be updated", q)
		}
		old := n.LeafValue()
		if old == newValue {
			continue
		}
		key := n.Tag
		if n.Kind == xmltree.Attribute {
			key = "@" + n.Tag
		}
		n.SetLeafValue(newValue)
		touchedBlocks[bid] = content
		touchedAttrs[key] = true
		edits = append(edits, edit{tagKey: key, oldValue: old, blockID: bid})
	}
	if len(edits) == 0 {
		return 0, nil
	}

	for _, e := range edits {
		if err := s.Client.ApplyValueEdit(e.tagKey, e.oldValue, newValue, e.blockID); err != nil {
			return 0, err
		}
	}

	upd := &wire.Update{}
	for key := range touchedAttrs {
		entries, band, err := s.Client.RebuildEntries(key)
		if err != nil {
			return 0, err
		}
		upd.DropBands = append(upd.DropBands, band)
		upd.AddEntries = append(upd.AddEntries, entries...)
	}
	for bid, content := range touchedBlocks {
		ct, err := s.Client.ReencryptBlock(content)
		if err != nil {
			return 0, err
		}
		upd.Blocks = append(upd.Blocks, wire.BlockUpdate{ID: bid, Ciphertext: ct})
	}

	// With integrity enabled, precompute the post-update root on a
	// clone of the verifier: the root travels with the update (SXU3)
	// so the server can cross-check its own recomputation, and the
	// clone only replaces the live verifier once the server acks — a
	// failed update leaves the commitment at the pre-update state.
	var nextVerifier *wire.AuthVerifier
	if s.verifier != nil {
		nextVerifier = s.verifier.Clone()
		if err := nextVerifier.ApplyUpdate(upd); err != nil {
			return 0, err
		}
		root := nextVerifier.Root()
		upd.NewRoot = root[:]
	}

	// A zero request ID is assigned here (not left to the transport)
	// so that if the send fails ambiguously, the stashed update and
	// its eventual resend carry the same ID and the server's dedup
	// table collapses them to one application.
	if upd.RequestID == 0 {
		upd.RequestID = wire.NewRequestID()
	}

	if err := s.Server.ApplyUpdate(ctx, upd); err != nil {
		if ambiguousUpdateFailure(s.Server, err) {
			// The server may hold (durably, or about to recover to)
			// either side of this update, and the client tables above
			// are already rewritten. Stash the frame: Reconcile resends
			// it under the same request ID, which is correct in both
			// worlds — a dedup ack if it landed, a fresh idempotent
			// apply if it didn't.
			s.pending = &pendingUpdate{upd: upd, nextVerifier: nextVerifier, edits: len(edits)}
			return 0, errors.Join(err, ErrUpdatePending)
		}
		// Definite rejection: the server's state did not change.
		return 0, err
	}
	s.commitUpdateLocked(upd, nextVerifier)
	return len(edits), nil
}

// commitUpdateLocked finishes an acknowledged update: promote the
// verifier clone, apply the mirror, drop stale answers. Caller holds
// the exclusive lock.
func (s *System) commitUpdateLocked(upd *wire.Update, nextVerifier *wire.AuthVerifier) {
	if nextVerifier != nil {
		// Advance in place: remote.WithVerifier shares this instance,
		// so the transport sees the new root without re-wiring. Safe
		// under the exclusive lock held for the whole update.
		*s.verifier = *nextVerifier
	}
	s.mirrorUpdate(upd)
	// Cached answers may now reference replaced blocks; drop them
	// rather than serve a provably outdated fallback.
	if s.staleCache != nil {
		s.staleCache.Clear()
	}
}

// ambiguousUpdateFailure reports whether an ApplyUpdate error leaves
// the server's state in doubt. An in-process backend fails
// atomically (the server reverts before returning), and a definitive
// HTTP rejection (4xx: the update never applied) is equally final.
// Everything else — transport failures, timeouts, 5xx (the server
// applied in memory but could not make it durable) — may have lost
// only the acknowledgment.
func ambiguousUpdateFailure(b Backend, err error) bool {
	if _, ok := b.(Local); ok {
		return false
	}
	var t interface{ Temporary() bool }
	if errors.As(err, &t) {
		return t.Temporary()
	}
	return true
}

// Reconcile resolves a pending ambiguous update by resending it under
// its original request ID: the server either acknowledges from its
// dedup table (the update had landed; the ack was lost) or applies it
// fresh (idempotently). On success the client commitment and mirror
// advance and the System serves verified queries again; on another
// ambiguous failure the update stays pending and Reconcile can be
// called again. It reports the number of values the reconciled update
// had changed. With nothing pending it returns (0, nil).
func (s *System) Reconcile(ctx context.Context) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == nil {
		return 0, nil
	}
	p := s.pending
	if err := s.Server.ApplyUpdate(ctx, p.upd); err != nil {
		if ambiguousUpdateFailure(s.Server, err) {
			return 0, errors.Join(err, ErrUpdatePending)
		}
		// A definite rejection of the resend: the server never held
		// the update (a dedup ack would have been a 200). The pending
		// state is unwound as far as possible — commitment and mirror
		// stay at the pre-update state — and the caller decides
		// whether to re-issue the whole edit.
		s.pending = nil
		return 0, err
	}
	s.commitUpdateLocked(p.upd, p.nextVerifier)
	s.pending = nil
	return p.edits, nil
}

// UpdatePending reports whether an ambiguous update awaits Reconcile.
func (s *System) UpdatePending() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pending != nil
}

// blockOf walks the ancestor chain to the nearest decrypted block
// content root.
func blockOf(n *xmltree.Node, prov map[*xmltree.Node]int) (int, *xmltree.Node, bool) {
	for cur := n; cur != nil; cur = cur.Parent {
		if id, ok := prov[cur]; ok {
			return id, cur, true
		}
	}
	return 0, nil, false
}

// mirrorUpdate applies an update to the client-side HostedDB copy so
// NaiveQuery and size accounting stay coherent. Dropping a band and
// re-adding its entries is idempotent, so this is safe whether the
// backend shares the HostedDB (in-process) or not (remote).
func (s *System) mirrorUpdate(u *wire.Update) {
	for _, b := range u.Blocks {
		if b.ID >= 0 && b.ID < len(s.HostedDB.Blocks) {
			s.HostedDB.Blocks[b.ID] = b.Ciphertext
		}
	}
	if len(u.DropBands) == 0 && len(u.AddEntries) == 0 {
		return
	}
	drop := map[uint8]bool{}
	for _, b := range u.DropBands {
		drop[b] = true
	}
	var kept []btree.Entry
	for _, e := range s.HostedDB.IndexEntries {
		if !drop[uint8(e.Key>>56)] {
			kept = append(kept, e)
		}
	}
	s.HostedDB.IndexEntries = append(kept, u.AddEntries...)
}
