package core

import (
	"context"
	"fmt"

	"repro/internal/btree"
	"repro/internal/wire"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// UpdateLeafValues sets the value of every leaf node selected by q
// to newValue, re-encrypting the affected blocks and re-issuing the
// value-index bands of every touched attribute (the paper's future
// work #3, §8 — see wire.Update for the design). Only encrypted
// targets are supported: plaintext residue values would require
// residue rewriting, which this extension does not cover. It returns
// the number of values changed.
func (s *System) UpdateLeafValues(q string, newValue string) (int, error) {
	return s.UpdateLeafValuesContext(context.Background(), q, newValue)
}

// UpdateLeafValuesContext is UpdateLeafValues with a caller-supplied
// context bounding the backend round trips. It holds the System's
// exclusive lock for the whole read-modify-write cycle: the client's
// occurrence tables and OPESS bands, the HostedDB mirror and the
// hosted blocks all change together, and concurrent queries (which
// hold the shared lock) must see either the pre-update or the
// post-update state, never a mix.
func (s *System) UpdateLeafValuesContext(ctx context.Context, q string, newValue string) (int, error) {
	path, err := xpath.Parse(q)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	qs, err := s.Client.Translate(path)
	if err != nil {
		return 0, err
	}
	ans, err := s.Server.Execute(ctx, qs)
	if err != nil {
		return 0, err
	}
	blocks, err := s.Client.DecryptBlocks(ans)
	if err != nil {
		return 0, err
	}
	res, err := s.Client.PostProcessFull(path, ans, blocks)
	if err != nil {
		return 0, err
	}
	if len(res.Nodes) == 0 {
		return 0, nil
	}

	type edit struct {
		tagKey   string
		oldValue string
		blockID  int
	}
	touchedBlocks := map[int]*xmltree.Node{} // block id -> content root
	touchedAttrs := map[string]bool{}
	var edits []edit
	for _, n := range res.Nodes {
		if !n.IsLeaf() || n.Kind == xmltree.Text {
			return 0, fmt.Errorf("core: update target %s is not a leaf", q)
		}
		bid, content, ok := blockOf(n, res.BlockOf)
		if !ok {
			return 0, fmt.Errorf("core: update target %s is stored in plaintext; only encrypted values can be updated", q)
		}
		old := n.LeafValue()
		if old == newValue {
			continue
		}
		key := n.Tag
		if n.Kind == xmltree.Attribute {
			key = "@" + n.Tag
		}
		n.SetLeafValue(newValue)
		touchedBlocks[bid] = content
		touchedAttrs[key] = true
		edits = append(edits, edit{tagKey: key, oldValue: old, blockID: bid})
	}
	if len(edits) == 0 {
		return 0, nil
	}

	for _, e := range edits {
		if err := s.Client.ApplyValueEdit(e.tagKey, e.oldValue, newValue, e.blockID); err != nil {
			return 0, err
		}
	}

	upd := &wire.Update{}
	for key := range touchedAttrs {
		entries, band, err := s.Client.RebuildEntries(key)
		if err != nil {
			return 0, err
		}
		upd.DropBands = append(upd.DropBands, band)
		upd.AddEntries = append(upd.AddEntries, entries...)
	}
	for bid, content := range touchedBlocks {
		ct, err := s.Client.ReencryptBlock(content)
		if err != nil {
			return 0, err
		}
		upd.Blocks = append(upd.Blocks, wire.BlockUpdate{ID: bid, Ciphertext: ct})
	}

	// With integrity enabled, precompute the post-update root on a
	// clone of the verifier: the root travels with the update (SXU3)
	// so the server can cross-check its own recomputation, and the
	// clone only replaces the live verifier once the server acks — a
	// failed update leaves the commitment at the pre-update state.
	var nextVerifier *wire.AuthVerifier
	if s.verifier != nil {
		nextVerifier = s.verifier.Clone()
		if err := nextVerifier.ApplyUpdate(upd); err != nil {
			return 0, err
		}
		root := nextVerifier.Root()
		upd.NewRoot = root[:]
	}

	if err := s.Server.ApplyUpdate(ctx, upd); err != nil {
		return 0, err
	}
	if nextVerifier != nil {
		// Advance in place: remote.WithVerifier shares this instance,
		// so the transport sees the new root without re-wiring. Safe
		// under the exclusive lock held for the whole update.
		*s.verifier = *nextVerifier
	}
	s.mirrorUpdate(upd)
	// Cached answers may now reference replaced blocks; drop them
	// rather than serve a provably outdated fallback.
	if s.staleCache != nil {
		s.staleCache.Clear()
	}
	return len(edits), nil
}

// blockOf walks the ancestor chain to the nearest decrypted block
// content root.
func blockOf(n *xmltree.Node, prov map[*xmltree.Node]int) (int, *xmltree.Node, bool) {
	for cur := n; cur != nil; cur = cur.Parent {
		if id, ok := prov[cur]; ok {
			return id, cur, true
		}
	}
	return 0, nil, false
}

// mirrorUpdate applies an update to the client-side HostedDB copy so
// NaiveQuery and size accounting stay coherent. Dropping a band and
// re-adding its entries is idempotent, so this is safe whether the
// backend shares the HostedDB (in-process) or not (remote).
func (s *System) mirrorUpdate(u *wire.Update) {
	for _, b := range u.Blocks {
		if b.ID >= 0 && b.ID < len(s.HostedDB.Blocks) {
			s.HostedDB.Blocks[b.ID] = b.Ciphertext
		}
	}
	if len(u.DropBands) == 0 && len(u.AddEntries) == 0 {
		return
	}
	drop := map[uint8]bool{}
	for _, b := range u.DropBands {
		drop[b] = true
	}
	var kept []btree.Entry
	for _, e := range s.HostedDB.IndexEntries {
		if !drop[uint8(e.Key>>56)] {
			kept = append(kept, e)
		}
	}
	s.HostedDB.IndexEntries = append(kept, u.AddEntries...)
}
