package core

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func hostForUpdate(t *testing.T) (*System, *xmltree.Document) {
	t.Helper()
	doc, err := xmltree.ParseString(hospitalXML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sys, err := Host(doc, paperSCs, SchemeOpt, []byte("update-test"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	return sys, doc
}

func queryValues(t *testing.T, sys *System, q string) []string {
	t.Helper()
	nodes, _, _, err := sys.Query(q)
	if err != nil {
		t.Fatalf("query %s: %v", q, err)
	}
	var out []string
	for _, n := range nodes {
		out = append(out, n.LeafValue())
	}
	sort.Strings(out)
	return out
}

func TestUpdateEncryptedLeaf(t *testing.T) {
	sys, _ := hostForUpdate(t)
	// disease is in the optimal cover: encrypted + indexed.
	n, err := sys.UpdateLeafValues("//patient[pname='Matt']/treat[1]/disease", "cholera")
	if err != nil {
		t.Fatalf("UpdateLeafValues: %v", err)
	}
	if n != 1 {
		t.Fatalf("updated %d values, want 1", n)
	}
	// The new value is queryable (by equality, through the rebuilt
	// OPESS index) and the old one is gone from that patient.
	got := queryValues(t, sys, "//patient[.//disease='cholera']/pname")
	if len(got) != 1 || got[0] != "Matt" {
		t.Errorf("cholera patients = %v, want [Matt]", got)
	}
	got = queryValues(t, sys, "//patient[.//disease='leukemia']/pname")
	if len(got) != 0 {
		t.Errorf("leukemia still found on %v", got)
	}
	// Unrelated values survive.
	got = queryValues(t, sys, "//patient[.//disease='diarrhea']/pname")
	if len(got) != 2 {
		t.Errorf("diarrhea patients = %v, want both", got)
	}
}

func TestUpdateEquivalenceWithPlaintext(t *testing.T) {
	sys, doc := hostForUpdate(t)
	if _, err := sys.UpdateLeafValues("//patient[pname='Betty']//disease", "gout"); err != nil {
		t.Fatalf("update: %v", err)
	}
	// Reference: apply the same edit to the plaintext document.
	ref := doc.Clone()
	for _, n := range refNodes(t, ref, "//patient[pname='Betty']//disease") {
		n.SetLeafValue("gout")
	}
	for _, q := range []string{
		"//patient", "//disease", "//patient[.//disease='gout']/SSN",
		"//treat[disease='gout']/doctor", "//patient[not(.//disease='gout')]/pname",
	} {
		want := plaintextResults(t, ref, q)
		got := systemResults(t, sys, q, false)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("after update, query %s:\n got  %v\n want %v", q, got, want)
		}
	}
}

func refNodes(t *testing.T, doc *xmltree.Document, q string) []*xmltree.Node {
	t.Helper()
	return xpath.Evaluate(doc, mustPath(t, q))
}

func TestUpdateMultipleOccurrences(t *testing.T) {
	sys, _ := hostForUpdate(t)
	// Both diarrhea occurrences at once: frequency 2 -> 0, cholera 0 -> 2.
	n, err := sys.UpdateLeafValues("//treat[disease='diarrhea']/disease", "cholera")
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if n != 2 {
		t.Fatalf("updated %d, want 2", n)
	}
	got := queryValues(t, sys, "//patient[.//disease='cholera']/pname")
	if len(got) != 2 {
		t.Errorf("cholera patients = %v", got)
	}
}

func TestUpdateRange(t *testing.T) {
	sys, _ := hostForUpdate(t)
	// policy is encrypted under //insurance: numeric range after update.
	if _, err := sys.UpdateLeafValues("//patient[pname='Betty']/insurance/policy", "99999"); err != nil {
		t.Fatalf("update: %v", err)
	}
	got := queryValues(t, sys, "//patient[.//policy>90000]/pname")
	if len(got) != 1 || got[0] != "Betty" {
		t.Errorf("policy>90000 = %v", got)
	}
}

func TestUpdatePlaintextTargetRejected(t *testing.T) {
	sys, _ := hostForUpdate(t)
	// age is plaintext under the optimal scheme.
	if _, err := sys.UpdateLeafValues("//patient[pname='Matt']/age", "41"); err == nil {
		t.Errorf("plaintext update accepted")
	}
}

func TestUpdateNoMatches(t *testing.T) {
	sys, _ := hostForUpdate(t)
	n, err := sys.UpdateLeafValues("//patient[pname='Nobody']//disease", "x")
	if err != nil || n != 0 {
		t.Errorf("no-match update: n=%d err=%v", n, err)
	}
	// Same-value update is a no-op.
	n, err = sys.UpdateLeafValues("//patient[pname='Betty']//disease", "diarrhea")
	if err != nil || n != 0 {
		t.Errorf("same-value update: n=%d err=%v", n, err)
	}
}

func TestUpdateNonLeafRejected(t *testing.T) {
	sys, _ := hostForUpdate(t)
	if _, err := sys.UpdateLeafValues("//insurance", "x"); err == nil {
		t.Errorf("non-leaf update accepted")
	}
}

func TestUpdateAggregatesReflectChange(t *testing.T) {
	sys, _ := hostForUpdate(t)
	if _, err := sys.UpdateLeafValues("//patient[pname='Betty']/insurance/policy", "1"); err != nil {
		t.Fatalf("update: %v", err)
	}
	got, _, err := sys.AggregateMinMax("//insurance/policy", false)
	if err != nil {
		t.Fatalf("MIN(policy): %v", err)
	}
	if got != "1" {
		t.Errorf("MIN(policy) = %q, want 1", got)
	}
}
