package core

import (
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/xmltree"
)

// TestWorkloadEquivalence runs the paper's generated workloads —
// both datasets, all four schemes, all three query classes — through
// the full hosted pipeline and checks exact equivalence with direct
// plaintext evaluation.
func TestWorkloadEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("workload equivalence is slow; run without -short")
	}
	type ds struct {
		name string
		doc  *xmltree.Document
		scs  []string
	}
	datasets := []ds{
		{"xmark", datagen.XMark(40, 101), datagen.XMarkSCs()},
		{"nasa", datagen.NASA(40, 102), datagen.NASASCs()},
	}
	for _, d := range datasets {
		for _, sn := range []SchemeName{SchemeOpt, SchemeApp, SchemeSub, SchemeTop} {
			sys, err := Host(d.doc, d.scs, sn, []byte("workload-"+d.name))
			if err != nil {
				t.Fatalf("%s/%s: Host: %v", d.name, sn, err)
			}
			for _, class := range []datagen.QueryClass{datagen.Qs, datagen.Qm, datagen.Ql} {
				for _, q := range datagen.Queries(d.doc, class, 6, 7) {
					want := plaintextResults(t, d.doc, q)
					got := systemResults(t, sys, q, false)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s/%s/%v query %s:\n got  %d results\n want %d results",
							d.name, sn, class, q, len(got), len(want))
					}
				}
			}
		}
	}
}
