package cryptoprim

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewKeySetRejectsEmpty(t *testing.T) {
	if _, err := NewKeySet(nil); err == nil {
		t.Errorf("empty master key accepted")
	}
}

func TestBlockRoundTrip(t *testing.T) {
	ks := MustKeySet("master")
	for _, pt := range [][]byte{
		[]byte(""),
		[]byte("x"),
		[]byte("<patient><pname>Betty</pname></patient>"),
		bytes.Repeat([]byte("abc123"), 10000),
	} {
		ct, err := ks.EncryptBlock(pt)
		if err != nil {
			t.Fatalf("encrypt: %v", err)
		}
		got, err := ks.DecryptBlock(ct)
		if err != nil {
			t.Fatalf("decrypt: %v", err)
		}
		if !bytes.Equal(got, pt) {
			t.Errorf("round trip mismatch for %d bytes", len(pt))
		}
		if len(ct) != len(pt)+ks.CiphertextOverhead() {
			t.Errorf("ciphertext length %d, want %d", len(ct), len(pt)+ks.CiphertextOverhead())
		}
	}
}

func TestBlockEncryptionIsRandomized(t *testing.T) {
	ks := MustKeySet("master")
	pt := []byte("same plaintext")
	c1, _ := ks.EncryptBlock(pt)
	c2, _ := ks.EncryptBlock(pt)
	if bytes.Equal(c1, c2) {
		t.Errorf("two encryptions of the same block are identical")
	}
}

func TestBlockDecryptAuthenticates(t *testing.T) {
	ks := MustKeySet("master")
	ct, _ := ks.EncryptBlock([]byte("data"))
	ct[len(ct)-1] ^= 1
	if _, err := ks.DecryptBlock(ct); err == nil {
		t.Errorf("tampered ciphertext decrypted")
	}
	if _, err := ks.DecryptBlock(ct[:4]); err == nil {
		t.Errorf("truncated ciphertext decrypted")
	}
}

func TestBlockKeysDiffer(t *testing.T) {
	k1 := MustKeySet("k1")
	k2 := MustKeySet("k2")
	ct, _ := k1.EncryptBlock([]byte("secret"))
	if _, err := k2.DecryptBlock(ct); err == nil {
		t.Errorf("wrong key decrypted ciphertext")
	}
}

func TestTagCipherDeterministic(t *testing.T) {
	ks := MustKeySet("master")
	a := ks.EncryptTag("SSN")
	b := ks.EncryptTag("SSN")
	if a != b {
		t.Errorf("tag cipher not deterministic: %s vs %s", a, b)
	}
	if a == "SSN" {
		t.Errorf("tag not encrypted")
	}
	if ks.EncryptTag("pname") == a {
		t.Errorf("distinct tags collide")
	}
	other := MustKeySet("other")
	if other.EncryptTag("SSN") == a {
		t.Errorf("tag ciphertext independent of key")
	}
}

func TestTagCipherYieldsLegalXMLName(t *testing.T) {
	ks := MustKeySet("master")
	for _, tag := range []string{"SSN", "patient", "@coverage", "treat", "a b c"} {
		e := ks.EncryptTag(tag)
		if len(e) == 0 || !(e[0] == 'T') {
			t.Errorf("encrypted tag %q does not start with letter", e)
		}
		if strings.ContainsAny(e, " <>&\"'=/") {
			t.Errorf("encrypted tag %q contains illegal characters", e)
		}
	}
}

func TestRandomDecoyDistinct(t *testing.T) {
	ks := MustKeySet("master")
	seen := map[string]bool{}
	for i := uint64(0); i < 1000; i++ {
		d := ks.RandomDecoy(i)
		if seen[d] {
			t.Fatalf("decoy %d repeats", i)
		}
		seen[d] = true
	}
}

func TestDSIWeightRange(t *testing.T) {
	ks := MustKeySet("master")
	for i := 0; i < 200; i++ {
		for side := 1; side <= 2; side++ {
			w := ks.DSIWeight("sig", i, side)
			if w <= 0 || w >= 0.5 {
				t.Fatalf("weight %f out of (0, 0.5)", w)
			}
		}
	}
	if ks.DSIWeight("a", 0, 1) == ks.DSIWeight("b", 0, 1) {
		t.Errorf("weights identical across signatures")
	}
}

func TestOPESSRandRange(t *testing.T) {
	ks := MustKeySet("master")
	for i := 0; i < 100; i++ {
		r := ks.OPESSRand("age", "w", i)
		if r < 0 || r >= 1 {
			t.Fatalf("OPESSRand out of [0,1): %f", r)
		}
	}
}

func TestOPEOrderPreserving(t *testing.T) {
	ks := MustKeySet("master")
	ope := NewOPE(ks, 6)
	vals := []float64{-1000.5, -1, -0.000001, 0, 0.000001, 1, 23, 23.45, 24.35, 90, 1001, 1e7}
	var prev uint64
	for i, v := range vals {
		c, err := ope.Encrypt(v)
		if err != nil {
			t.Fatalf("Encrypt(%v): %v", v, err)
		}
		if i > 0 && c <= prev {
			t.Errorf("order violated: E(%v)=%d <= E(%v)=%d", v, c, vals[i-1], prev)
		}
		prev = c
	}
}

func TestOPEDeterministic(t *testing.T) {
	ks := MustKeySet("master")
	ope := NewOPE(ks, 2)
	a, _ := ope.Encrypt(42.5)
	b, _ := ope.Encrypt(42.5)
	if a != b {
		t.Errorf("OPE not deterministic")
	}
	ope2 := NewOPE(MustKeySet("other"), 2)
	c, _ := ope2.Encrypt(42.5)
	if c == a {
		t.Errorf("OPE key-independent")
	}
}

func TestOPERangeBounds(t *testing.T) {
	ks := MustKeySet("master")
	ope := NewOPE(ks, 3)
	v := 123.456
	c, _ := ope.Encrypt(v)
	lo, _ := ope.MinCipherFor(v)
	hi, _ := ope.MaxCipherFor(v)
	if c < lo || c > hi {
		t.Errorf("ciphertext %d outside [MinCipherFor, MaxCipherFor] = [%d, %d]", c, lo, hi)
	}
	// Anything strictly below v encrypts strictly below MinCipherFor(v).
	cb, _ := ope.Encrypt(v - 0.001)
	if cb >= lo {
		t.Errorf("E(v-eps)=%d >= MinCipherFor(v)=%d", cb, lo)
	}
	ca, _ := ope.Encrypt(v + 0.001)
	if ca <= hi {
		t.Errorf("E(v+eps)=%d <= MaxCipherFor(v)=%d", ca, hi)
	}
}

func TestOPERejectsOutOfRange(t *testing.T) {
	ks := MustKeySet("master")
	ope := NewOPE(ks, 6)
	for _, v := range []float64{1e40, -1e40} {
		if _, err := ope.Encrypt(v); err == nil {
			t.Errorf("Encrypt(%v) should fail", v)
		}
	}
}

// Property: OPE preserves order on arbitrary pairs within range.
func TestQuickOPEMonotone(t *testing.T) {
	ks := MustKeySet("quick")
	ope := NewOPE(ks, 3)
	f := func(a, b int32) bool {
		va, vb := float64(a)/7.0, float64(b)/7.0
		ca, err1 := ope.Encrypt(va)
		cb, err2 := ope.Encrypt(vb)
		if err1 != nil || err2 != nil {
			return false
		}
		xa, _ := ope.ToFixed(va)
		xb, _ := ope.ToFixed(vb)
		switch {
		case xa < xb:
			return ca < cb
		case xa > xb:
			return ca > cb
		default:
			return ca == cb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPRFStable(t *testing.T) {
	ks := MustKeySet("master")
	a := ks.PRFUint64("x", []byte("data"))
	b := ks.PRFUint64("x", []byte("data"))
	if a != b {
		t.Errorf("PRF not deterministic")
	}
	if ks.PRFUint64("y", []byte("data")) == a {
		t.Errorf("PRF label ignored")
	}
}
