package cryptoprim

import "crypto/sha256"

// Unkeyed digest primitives for the answer-integrity layer
// (internal/authtree). They live here with the other crypto
// primitives so the domain-separation discipline is defined in one
// place: a Merkle leaf hash can never collide with an interior-node
// hash (the classic second-preimage defence), because the two are
// computed over disjoint prefix domains.

// DigestSize is the byte width of every integrity digest (SHA-256).
const DigestSize = sha256.Size

// Digest is one SHA-256 output.
type Digest = [DigestSize]byte

// Domain-separation prefixes for Merkle hashing.
const (
	merkleLeafPrefix = 0x00
	merkleNodePrefix = 0x01
)

// MerkleLeafHash hashes canonical leaf data into its leaf digest:
// SHA-256(0x00 || data).
func MerkleLeafHash(data []byte) Digest {
	h := sha256.New()
	h.Write([]byte{merkleLeafPrefix})
	h.Write(data)
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// MerkleNodeHash combines two child digests into their parent:
// SHA-256(0x01 || left || right).
func MerkleNodeHash(l, r Digest) Digest {
	h := sha256.New()
	h.Write([]byte{merkleNodePrefix})
	h.Write(l[:])
	h.Write(r[:])
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}
