// Package cryptoprim provides the cryptographic primitives the paper
// builds on: symmetric block encryption for XML subtrees (AES-GCM),
// a Vernam-style deterministic tag cipher for the DSI index table
// (§5.1.1), a keyed PRF, order-preserving encryption for the value
// index (§5.2), and decoy generation (§4.1).
//
// All key material is derived from a single client master key with
// an HMAC-SHA256 KDF, so the client stores one secret.
package cryptoprim

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base32"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// KeySet holds every derived key the client needs. The server never
// sees a KeySet.
type KeySet struct {
	master   []byte
	aead     cipher.AEAD
	tagKey   []byte
	opeKey   []byte
	decoyKey []byte
	dsiKey   []byte // seeds the DSI gap weights w1, w2
	opessKey []byte // seeds OPESS split displacements and scale factors

	// prfKeys caches PRF subkeys by label (label -> []byte). Labels
	// come from a small fixed set in this codebase, so the map only
	// ever holds a handful of entries; caching removes two SHA-256
	// constructions and three allocations from every PRF call.
	prfKeys sync.Map
}

// NewKeySet derives a key set from a master secret of any length.
// An empty master key is rejected.
func NewKeySet(master []byte) (*KeySet, error) {
	if len(master) == 0 {
		return nil, errors.New("cryptoprim: empty master key")
	}
	ks := &KeySet{master: append([]byte(nil), master...)}
	blockKey := derive(master, "block")
	blk, err := aes.NewCipher(blockKey[:32])
	if err != nil {
		return nil, fmt.Errorf("cryptoprim: aes: %w", err)
	}
	ks.aead, err = cipher.NewGCM(blk)
	if err != nil {
		return nil, fmt.Errorf("cryptoprim: gcm: %w", err)
	}
	ks.tagKey = derive(master, "tag")
	ks.opeKey = derive(master, "ope")
	ks.decoyKey = derive(master, "decoy")
	ks.dsiKey = derive(master, "dsi")
	ks.opessKey = derive(master, "opess")
	return ks, nil
}

// MustKeySet derives a key set and panics on error; for tests.
func MustKeySet(master string) *KeySet {
	ks, err := NewKeySet([]byte(master))
	if err != nil {
		panic(err)
	}
	return ks
}

// derive computes HMAC-SHA256(master, label): a 32-byte subkey.
func derive(master []byte, label string) []byte {
	m := hmac.New(sha256.New, master)
	m.Write([]byte("secxml/v1/" + label))
	return m.Sum(nil)
}

// PRF computes the keyed pseudo-random function used throughout:
// HMAC-SHA256 over the concatenated byte arguments, under a subkey
// selected by label. Subkeys are derived once per label and cached —
// the derivation is deterministic, so this changes no output.
func (k *KeySet) PRF(label string, data ...[]byte) []byte {
	var sub []byte
	if v, ok := k.prfKeys.Load(label); ok {
		sub = v.([]byte)
	} else {
		sub = derive(k.master, "prf/"+label)
		k.prfKeys.Store(label, sub)
	}
	m := hmac.New(sha256.New, sub)
	for _, d := range data {
		m.Write(d)
	}
	return m.Sum(nil)
}

// PRFUint64 returns the first 8 bytes of PRF as a uint64.
func (k *KeySet) PRFUint64(label string, data ...[]byte) uint64 {
	return binary.BigEndian.Uint64(k.PRF(label, data...)[:8])
}

// EncryptBlock encrypts a serialized XML block with AES-256-GCM
// under a fresh random nonce. The nonce is prepended to the output.
// The whole ciphertext — nonce, sealed bytes, tag — is produced in
// one exactly-sized allocation: Seal appends in place when given a
// buffer with enough capacity.
func (k *KeySet) EncryptBlock(plaintext []byte) ([]byte, error) {
	ns := k.aead.NonceSize()
	out := make([]byte, ns, ns+len(plaintext)+k.aead.Overhead())
	if _, err := rand.Read(out[:ns]); err != nil {
		return nil, fmt.Errorf("cryptoprim: nonce: %w", err)
	}
	return k.aead.Seal(out, out[:ns], plaintext, nil), nil
}

// DecryptBlock reverses EncryptBlock, authenticating the ciphertext.
func (k *KeySet) DecryptBlock(ct []byte) ([]byte, error) {
	ns := k.aead.NonceSize()
	if len(ct) < ns {
		return nil, errors.New("cryptoprim: ciphertext shorter than nonce")
	}
	pt, err := k.aead.Open(nil, ct[:ns], ct[ns:], nil)
	if err != nil {
		return nil, fmt.Errorf("cryptoprim: decrypt: %w", err)
	}
	return pt, nil
}

// CiphertextOverhead is the fixed per-block size overhead of
// EncryptBlock (nonce + GCM tag), used by the size accounting in the
// scheme cost model.
func (k *KeySet) CiphertextOverhead() int {
	return k.aead.NonceSize() + k.aead.Overhead()
}

// EncryptTag deterministically encrypts an element or attribute tag
// for the DSI index table and translated queries. The paper uses a
// Vernam (one-time-pad) cipher with pads known only to the client;
// we realize the per-distinct-tag pad as PRF(tagKey, tag) so the
// client needs no codebook, and encode the result in base32 so it is
// a legal XML name (e.g. "SSN" -> "U84573"-style opaque token).
// Identical tags map to identical ciphertexts, which is exactly what
// lets the server match translated query nodes against the DSI
// table; distinct tags collide with negligible probability.
func (k *KeySet) EncryptTag(tag string) string {
	m := hmac.New(sha256.New, k.tagKey)
	m.Write([]byte(tag))
	sum := m.Sum(nil)
	return "T" + base32.StdEncoding.WithPadding(base32.NoPadding).EncodeToString(sum[:10])
}

// RandomDecoy returns a pseudo-random decoy value (§4.1) for the
// n-th decoy generated. Decoys only need to be unpredictable to the
// attacker and unique with high probability; they are stripped by
// the client after decryption.
func (k *KeySet) RandomDecoy(n uint64) string {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], n)
	sum := k.PRF("decoy", k.decoyKey, buf[:])
	return base32.StdEncoding.WithPadding(base32.NoPadding).EncodeToString(sum[:8])
}

// DSIWeight returns a deterministic pseudo-random weight in
// (lo, hi) ⊂ (0, 0.5) for the DSI index gap of child i of the node
// with the given path signature (§5.1, Figure 3). side selects w1 or
// w2.
func (k *KeySet) DSIWeight(sig string, i int, side int) float64 {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(i))
	binary.BigEndian.PutUint64(buf[8:], uint64(side))
	u := k.PRFUint64("dsi", k.dsiKey, []byte(sig), buf[:])
	// Map to (0.05, 0.45): strictly inside (0, 0.5) with margin so
	// gaps never collapse to zero by floating-point truncation.
	return 0.05 + 0.4*float64(u%1_000_000)/1_000_000.0
}

// OPESSRand returns a deterministic pseudo-random float in [0,1)
// for OPESS parameter generation (split displacements, scale
// factors), keyed per attribute and index.
func (k *KeySet) OPESSRand(attr string, kind string, i int) float64 {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(i))
	u := k.PRFUint64("opess/"+kind, k.opessKey, []byte(attr), buf[:])
	return float64(u%1_000_000_000) / 1_000_000_000.0
}
