package cryptoprim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// OPE is a deterministic keyed order-preserving encryption function
// over a fixed-point numeric domain, playing the role of the
// black-box "enc" of Agrawal et al. [3] that the paper's OPESS
// construction (§5.2.1) is built on.
//
// Construction: plaintexts are scaled to int64 fixed-point with
// Precision fractional decimal digits, shifted to the non-negative
// range, and mapped by
//
//	E(x) = x*Spread + r(x),  r(x) = PRF(key, x) mod Spread
//
// which is strictly increasing in x: consecutive plaintexts are
// Spread apart before the perturbation and r(x) < Spread. The
// perturbation hides the exact plaintext spacing while preserving
// order. OPE is not frequency-hiding on its own — that is exactly
// why the paper adds splitting and scaling on top (package opess).
type OPE struct {
	keys *KeySet
	// Precision is the number of decimal fraction digits preserved
	// when scaling plaintext reals to the integer domain.
	Precision int
	// Band places this instance's ciphertexts in a disjoint window
	// of the uint64 space (the top byte). The client assigns one
	// band per indexed attribute so that different attributes'
	// entries never interleave in the shared value index — range
	// windows and MIN/MAX probes then select only the intended
	// attribute's entries.
	Band uint8
}

// opeSpread separates consecutive fixed-point plaintexts in the
// ciphertext domain; the random perturbation r(x) is drawn below it.
const opeSpread = 1 << 10

// opeOffset shifts signed fixed-point plaintexts to non-negative.
// (2*opeOffset)*opeSpread = 2^56 fits under the band byte.
const opeOffset = int64(1) << 45

// NewOPE returns an OPE instance with the given fractional decimal
// precision (digits preserved after the decimal point), in band 0.
func NewOPE(keys *KeySet, precision int) *OPE {
	return NewOPEBand(keys, precision, 0)
}

// NewOPEBand returns an OPE instance confined to the given band.
func NewOPEBand(keys *KeySet, precision int, band uint8) *OPE {
	if precision < 0 {
		precision = 0
	}
	return &OPE{keys: keys, Precision: precision, Band: band}
}

// scale is 10^Precision.
func (o *OPE) scale() float64 { return math.Pow(10, float64(o.Precision)) }

// ErrOPERange is returned for plaintexts outside the encodable range.
var ErrOPERange = errors.New("cryptoprim: plaintext outside OPE range")

// ToFixed converts a real plaintext to the fixed-point int64 domain.
func (o *OPE) ToFixed(v float64) (int64, error) {
	s := v * o.scale()
	if math.IsNaN(s) || s >= float64(opeOffset) || s <= -float64(opeOffset) {
		return 0, fmt.Errorf("%w: %v", ErrOPERange, v)
	}
	return int64(math.Round(s)), nil
}

// FromFixed converts a fixed-point plaintext back to a real value.
func (o *OPE) FromFixed(x int64) float64 { return float64(x) / o.scale() }

// EncryptFixed maps a fixed-point plaintext to its ciphertext code.
func (o *OPE) EncryptFixed(x int64) uint64 {
	u := uint64(x + opeOffset)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], u)
	r := o.keys.PRFUint64("ope", buf[:]) % opeSpread
	return uint64(o.Band)<<56 | (u*opeSpread + r)
}

// Encrypt maps a real plaintext to its order-preserving ciphertext.
func (o *OPE) Encrypt(v float64) (uint64, error) {
	x, err := o.ToFixed(v)
	if err != nil {
		return 0, err
	}
	return o.EncryptFixed(x), nil
}

// MaxCipherFor returns the largest ciphertext that any plaintext
// ≤ v can map to; used to translate "≤ v" range bounds.
func (o *OPE) MaxCipherFor(v float64) (uint64, error) {
	x, err := o.ToFixed(v)
	if err != nil {
		return 0, err
	}
	return uint64(o.Band)<<56 | (uint64(x+opeOffset)*opeSpread + (opeSpread - 1)), nil
}

// MinCipherFor returns the smallest ciphertext that any plaintext
// ≥ v can map to; used to translate "≥ v" range bounds.
func (o *OPE) MinCipherFor(v float64) (uint64, error) {
	x, err := o.ToFixed(v)
	if err != nil {
		return 0, err
	}
	return uint64(o.Band)<<56 | (uint64(x+opeOffset) * opeSpread), nil
}

// BandRange returns the full ciphertext window of this instance's
// band; range translations for <, >, != clamp to it so they never
// leak into another attribute's band.
func (o *OPE) BandRange() (lo, hi uint64) {
	lo = uint64(o.Band) << 56
	return lo, lo | (1<<56 - 1)
}
