package datagen

import (
	"testing"

	"repro/internal/sc"
	"repro/internal/scheme"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Intn(1000) != b.Intn(1000) {
			t.Fatalf("PRNG not deterministic at step %d", i)
		}
	}
	c := NewRand(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRand(42).Intn(1<<30) != c.Intn(1<<30) {
			same = false
		}
	}
	if same {
		t.Errorf("different seeds produced identical streams")
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(7)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Zipf(10)]++
	}
	if counts[0] <= counts[9] {
		t.Errorf("Zipf not skewed: first %d, last %d", counts[0], counts[9])
	}
	if counts[0] < 2*counts[4] {
		t.Errorf("Zipf skew too weak: %v", counts)
	}
}

func TestXMarkShape(t *testing.T) {
	doc := XMark(50, 1)
	if doc.Root.Tag != "site" {
		t.Fatalf("root = %s", doc.Root.Tag)
	}
	if n := len(xpath.Evaluate(doc, xpath.MustParse("//person"))); n != 50 {
		t.Errorf("persons = %d, want 50", n)
	}
	for _, q := range []string{"//person/name", "//person/creditcard", "//profile/income",
		"//profile/age", "//item", "//open_auction", "//closed_auction"} {
		if n := len(xpath.Evaluate(doc, xpath.MustParse(q))); n == 0 {
			t.Errorf("%s matched nothing", q)
		}
	}
	// Every person has exactly one name and one creditcard.
	names := xpath.Evaluate(doc, xpath.MustParse("//person/name"))
	if len(names) != 50 {
		t.Errorf("names = %d", len(names))
	}
}

func TestXMarkDeterministic(t *testing.T) {
	a := XMark(20, 5)
	b := XMark(20, 5)
	if a.String() != b.String() {
		t.Errorf("XMark not deterministic")
	}
	c := XMark(20, 6)
	if a.String() == c.String() {
		t.Errorf("XMark ignores seed")
	}
}

func TestXMarkSCsBuildGraph(t *testing.T) {
	doc := XMark(30, 2)
	cs, err := sc.ParseAll(XMarkSCs())
	if err != nil {
		t.Fatalf("ParseAll: %v", err)
	}
	g, err := sc.BuildGraph(cs, doc)
	if err != nil {
		t.Fatalf("BuildGraph: %v", err)
	}
	// Vertices: name, emailaddress, creditcard, income, age.
	if len(g.Vertices) != 5 {
		t.Errorf("vertices = %d: %v", len(g.Vertices), g.Vertices)
	}
	if len(g.Edges) != 4 {
		t.Errorf("edges = %d", len(g.Edges))
	}
	opt, err := scheme.Optimal(doc, cs)
	if err != nil {
		t.Fatalf("Optimal: %v", err)
	}
	// {name, creditcard} covers all four edges with two vertices.
	if !opt.CoverTags["name"] || !opt.CoverTags["creditcard"] {
		t.Errorf("optimal XMark cover = %v, expected name+creditcard", opt.CoverTags)
	}
	if err := opt.Enforces(doc, cs); err != nil {
		t.Errorf("Enforces: %v", err)
	}
}

func TestNASAShape(t *testing.T) {
	doc := NASA(40, 3)
	if doc.Root.Tag != "datasets" {
		t.Fatalf("root = %s", doc.Root.Tag)
	}
	if n := len(xpath.Evaluate(doc, xpath.MustParse("//dataset"))); n != 40 {
		t.Errorf("datasets = %d", n)
	}
	for _, q := range []string{"//author/initial", "//author/last", "//dataset/title",
		"//dataset/publisher", "//dataset/date", "//keywords/keyword"} {
		if n := len(xpath.Evaluate(doc, xpath.MustParse(q))); n == 0 {
			t.Errorf("%s matched nothing", q)
		}
	}
}

func TestNASASCsOptimalCover(t *testing.T) {
	doc := NASA(40, 4)
	cs, err := sc.ParseAll(NASASCs())
	if err != nil {
		t.Fatalf("ParseAll: %v", err)
	}
	opt, err := scheme.Optimal(doc, cs)
	if err != nil {
		t.Fatalf("Optimal: %v", err)
	}
	// The paper: opt encrypts initial and last on NASA.
	if !opt.CoverTags["initial"] || !opt.CoverTags["last"] {
		t.Errorf("optimal NASA cover = %v, expected initial+last", opt.CoverTags)
	}
	app, err := scheme.Approx(doc, cs)
	if err != nil {
		t.Fatalf("Approx: %v", err)
	}
	if err := app.Enforces(doc, cs); err != nil {
		t.Errorf("app Enforces: %v", err)
	}
	if app.Size() > 2*opt.Size() {
		t.Errorf("app size %d > 2x opt %d", app.Size(), opt.Size())
	}
}

func TestToSizeTargets(t *testing.T) {
	for _, target := range []int{50_000, 200_000} {
		x := XMarkToSize(target, 9)
		if got := x.ByteSize(); got < target || got > 3*target {
			t.Errorf("XMarkToSize(%d) = %d bytes", target, got)
		}
		n := NASAToSize(target, 9)
		if got := n.ByteSize(); got < target || got > 3*target {
			t.Errorf("NASAToSize(%d) = %d bytes", target, got)
		}
	}
}

func TestQueriesClasses(t *testing.T) {
	doc := NASA(30, 11)
	for _, class := range []QueryClass{Qs, Qm, Ql} {
		qs := Queries(doc, class, 10, 17)
		if len(qs) != 10 {
			t.Fatalf("%v: got %d queries", class, len(qs))
		}
		nonEmpty := 0
		for _, q := range qs {
			p, err := xpath.Parse(q)
			if err != nil {
				t.Fatalf("%v: query %q does not parse: %v", class, q, err)
			}
			res := xpath.Evaluate(doc, p)
			if len(res) > 0 {
				nonEmpty++
			}
			// Check output level matches the class.
			for _, n := range res {
				switch class {
				case Qs:
					if n.Level() != 2 {
						t.Errorf("Qs query %q output at level %d", q, n.Level())
					}
				case Ql:
					if !n.IsLeaf() {
						t.Errorf("Ql query %q output non-leaf %s", q, n.Path())
					}
				}
			}
		}
		if nonEmpty < 8 {
			t.Errorf("%v: only %d/10 queries non-empty", class, nonEmpty)
		}
	}
}

func TestQueriesDeterministic(t *testing.T) {
	doc := XMark(20, 1)
	a := Queries(doc, Qm, 10, 3)
	b := Queries(doc, Qm, 10, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("queries not deterministic")
		}
	}
}

func TestGeneratedDocsRoundTrip(t *testing.T) {
	for _, doc := range []*xmltree.Document{XMark(10, 1), NASA(10, 1)} {
		s := doc.String()
		d2, err := xmltree.ParseString(s)
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if d2.String() != s {
			t.Errorf("generated document does not round-trip")
		}
	}
}
