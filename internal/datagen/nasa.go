package datagen

import (
	"fmt"

	"repro/internal/xmltree"
)

var (
	subjects = []string{
		"astronomy", "astrophysics", "planetary", "solar", "stellar",
		"galactic", "cosmology",
	}
	publishers = []string{
		"NASA", "ESA", "CDS", "ADC", "JPL", "STScI", "NOAO", "CfA",
	}
	journals = []string{
		"ApJ", "AJ", "MNRAS", "AandA", "PASP", "Icarus",
	}
	initials = []string{
		"A", "B", "C", "D", "E", "F", "G", "H", "J", "K", "L", "M",
		"N", "P", "R", "S", "T", "W",
	}
	titleWords = []string{
		"catalog", "survey", "photometry", "spectra", "positions",
		"proper", "motions", "variable", "stars", "galaxies",
		"clusters", "radio", "sources", "infrared", "ultraviolet",
	}
	keywords = []string{
		"stars", "galaxies", "quasars", "nebulae", "clusters",
		"photometry", "astrometry", "spectroscopy", "radio", "xray",
	}
)

// NASASCs are the security constraints inducing the NASA constraint
// graph of Figure 8(b): author identities (initial, last) are
// associated with date, publisher, title, city and age. The optimal
// cover encrypts {initial, last}; coarser covers pick the other
// side, as the paper's app scheme does.
func NASASCs() []string {
	return []string{
		"//author:(/initial, /last)",
		"//dataset:(//initial, /date)",
		"//dataset:(//initial, /publisher)",
		"//dataset:(//initial, /title)",
		"//dataset:(//last, /age)",
		"//dataset:(//last, /city)",
	}
}

// NASA generates a NASA-ADC-style dataset catalog with the given
// number of dataset records.
func NASA(datasets int, seed uint64) *xmltree.Document {
	r := NewRand(seed)
	root := xmltree.NewElement("datasets")
	for i := 0; i < datasets; i++ {
		ds := root.AppendChild(xmltree.NewElement("dataset"))
		ds.AppendChild(xmltree.NewAttribute("subject", subjects[r.Zipf(len(subjects))]))
		title := titleWords[r.Zipf(len(titleWords))] + " of " +
			titleWords[r.Zipf(len(titleWords))] + " " + fmt.Sprintf("%d", r.Intn(3000))
		ds.AppendValue("title", title)
		ds.AppendValue("altname", fmt.Sprintf("ADC-%04d", r.Intn(10000)))
		// Average ~1.33 authors per dataset keeps the combined weight
		// of {initial, last} strictly below any alternative cover, so
		// the optimal scheme is the paper's {initial, last} (§7.1).
		authors := 1
		if r.Intn(3) == 0 {
			authors = 2
		}
		for a := 0; a < authors; a++ {
			au := ds.AppendChild(xmltree.NewElement("author"))
			au.AppendValue("initial", initials[r.Zipf(len(initials))])
			au.AppendValue("last", lastNames[r.Zipf(len(lastNames))])
		}
		ds.AppendValue("date", fmt.Sprintf("%d", 1965+r.Zipf(40)))
		ds.AppendValue("publisher", publishers[r.Zipf(len(publishers))])
		ds.AppendValue("city", cities[r.Zipf(len(cities))])
		ds.AppendValue("age", fmt.Sprintf("%d", 1+r.Zipf(40)))
		ref := ds.AppendChild(xmltree.NewElement("reference"))
		ref.AppendValue("source", fmt.Sprintf("J/%s/%d", journals[r.Zipf(len(journals))], r.Intn(500)))
		ref.AppendValue("journal", journals[r.Zipf(len(journals))])
		kw := ds.AppendChild(xmltree.NewElement("keywords"))
		nk := 1 + r.Intn(4)
		for k := 0; k < nk; k++ {
			kw.AppendValue("keyword", keywords[r.Zipf(len(keywords))])
		}
	}
	return xmltree.NewDocument(root)
}

// NASAToSize generates a NASA document of at least targetBytes
// serialized size (compact form).
func NASAToSize(targetBytes int, seed uint64) *xmltree.Document {
	datasets := targetBytes / 450
	if datasets < 4 {
		datasets = 4
	}
	doc := NASA(datasets, seed)
	got := doc.ByteSize()
	if got >= targetBytes {
		return doc
	}
	datasets = int(float64(datasets) * float64(targetBytes) / float64(got) * 1.05)
	return NASA(datasets, seed)
}
