package datagen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xmltree"
)

// QueryClass selects one of the paper's three query shapes (§7.1).
type QueryClass int

const (
	// Qs queries output the children of the document root.
	Qs QueryClass = iota
	// Qm queries output nodes at level h/2 of the document tree.
	Qm
	// Ql queries output leaf nodes.
	Ql
)

func (c QueryClass) String() string {
	switch c {
	case Qs:
		return "Qs"
	case Qm:
		return "Qm"
	case Ql:
		return "Ql"
	default:
		return fmt.Sprintf("QueryClass(%d)", int(c))
	}
}

// Queries generates n XPath queries of the given class against doc,
// per §7.1: the output node's level is fixed by the class, and
// queries alternate between pure structural paths and paths with a
// value predicate drawn from an actual document value (so results
// are non-empty). Deterministic per seed.
func Queries(doc *xmltree.Document, class QueryClass, n int, seed uint64) []string {
	r := NewRand(seed)
	targetLevel := 2
	switch class {
	case Qm:
		targetLevel = (doc.Depth() + 1) / 2
		if targetLevel < 2 {
			targetLevel = 2
		}
	case Ql:
		targetLevel = 0 // any leaf
	}

	// Collect candidate output tags with a sample instance each.
	type cand struct {
		tag      string
		instance *xmltree.Node
	}
	seen := map[string]bool{}
	var cands []cand
	for _, node := range doc.Nodes() {
		if node.Kind != xmltree.Element {
			continue
		}
		ok := false
		if class == Ql {
			ok = node.IsLeaf()
		} else {
			ok = node.Level() == targetLevel && !node.IsLeaf()
			if class == Qs {
				ok = node.Level() == 2
			}
		}
		if !ok || seen[node.Tag] {
			continue
		}
		seen[node.Tag] = true
		cands = append(cands, cand{tag: node.Tag, instance: node})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].tag < cands[j].tag })
	if len(cands) == 0 {
		return nil
	}

	var out []string
	for i := 0; i < n; i++ {
		c := cands[r.Intn(len(cands))]
		q := "//" + c.tag
		switch r.Intn(3) {
		case 0:
			// Pure structural.
		case 1:
			// Existence predicate on a child (or self for leaves).
			if ch := pickElementChild(r, c.instance); ch != "" {
				q += "[" + ch + "]"
			}
		case 2:
			// Value predicate drawn from the document.
			if pred := pickValuePredicate(r, c.instance); pred != "" {
				q += "[" + pred + "]"
			}
		}
		out = append(out, q)
	}
	return out
}

func pickElementChild(r *Rand, n *xmltree.Node) string {
	kids := n.ElementChildren()
	if len(kids) == 0 {
		return ""
	}
	return kids[r.Intn(len(kids))].Tag
}

// pickValuePredicate builds "[child='v']" (or "[.='v']" for leaves)
// from an actual value under n, quoting safely.
func pickValuePredicate(r *Rand, n *xmltree.Node) string {
	if n.IsLeaf() {
		v := n.LeafValue()
		if v == "" || strings.ContainsAny(v, "'\"") {
			return ""
		}
		return ".='" + v + "'"
	}
	var leaves []*xmltree.Node
	n.Walk(func(d *xmltree.Node) bool {
		if d != n && d.Kind == xmltree.Element && d.IsLeaf() && d.LeafValue() != "" {
			leaves = append(leaves, d)
		}
		return true
	})
	if len(leaves) == 0 {
		return ""
	}
	leaf := leaves[r.Intn(len(leaves))]
	v := leaf.LeafValue()
	if strings.ContainsAny(v, "'\"") {
		return ""
	}
	rel := ".//" + leaf.Tag
	if leaf.Parent == n {
		rel = leaf.Tag
	}
	return rel + "='" + v + "'"
}
