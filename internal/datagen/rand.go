// Package datagen generates the experimental workloads of §7.1:
// a synthetic XMark-style auction database, a NASA-style astronomy
// dataset catalog, their security constraints (the constraint graphs
// of Figure 8), and the three query classes Qs / Qm / Ql. Generation
// is fully deterministic per seed, so experiments are reproducible.
//
// Substitution note (see DESIGN.md): the paper uses the official
// XMark C generator and the UW NASA corpus; we generate documents
// with the same element vocabulary, fan-out and value skew, which is
// what the experiments exercise.
package datagen

// Rand is a small deterministic PRNG (splitmix64); the standard
// library's math/rand would also do, but an explicit state makes the
// generators trivially reproducible and allocation-free.
type Rand struct{ state uint64 }

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

func (r *Rand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Pick returns a uniform element of xs.
func (r *Rand) Pick(xs []string) string { return xs[r.Intn(len(xs))] }

// Zipf returns an index in [0, n) with a Zipf-like skew (rank 0 most
// frequent), matching the skewed value distributions the paper's
// frequency-attack model assumes the attacker knows exactly.
func (r *Rand) Zipf(n int) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF sampling of p(k) ∝ 1/(k+1).
	h := harmonic(n)
	u := r.Float64() * h
	acc := 0.0
	for k := 0; k < n; k++ {
		acc += 1.0 / float64(k+1)
		if u <= acc {
			return k
		}
	}
	return n - 1
}

func harmonic(n int) float64 {
	h := 0.0
	for k := 1; k <= n; k++ {
		h += 1.0 / float64(k)
	}
	return h
}
