package datagen

import (
	"fmt"

	"repro/internal/xmltree"
)

var (
	firstNames = []string{
		"Betty", "Matt", "Ann", "John", "Maria", "Wei", "Laks", "Hui",
		"Carlos", "Yuki", "Priya", "Olaf", "Fatima", "Igor", "Chen",
		"Sara", "Tom", "Nadia", "Pierre", "Aisha",
	}
	lastNames = []string{
		"Smith", "Walker", "Brown", "Wang", "Chen", "Kumar", "Garcia",
		"Mueller", "Tanaka", "Ivanov", "Rossi", "Dubois", "Kim",
		"Johnson", "Lee", "Novak", "Silva", "Haddad",
	}
	cities = []string{
		"Vancouver", "Seoul", "Seattle", "Toronto", "Tokyo", "Berlin",
		"Paris", "Mumbai", "Lagos", "Lima",
	}
	countries  = []string{"Canada", "Korea", "USA", "Japan", "Germany", "France", "India"}
	interests  = []string{"auctions", "antiques", "books", "coins", "stamps", "art", "wine"}
	educations = []string{"HighSchool", "College", "Graduate", "Other"}
	itemNames  = []string{
		"clock", "vase", "lamp", "painting", "ring", "table", "chair",
		"book", "coin", "stamp", "guitar", "camera",
	}
	regions = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
)

// XMarkSCs are the security constraints inducing the XMark
// constraint graph of Figure 8(a): associations around a person's
// name, credit card, income and age. Protecting them forces a
// vertex-cover choice among {name, emailaddress, creditcard,
// income, age}.
func XMarkSCs() []string {
	return []string{
		"//person:(/name, /emailaddress)",
		"//person:(/name, /creditcard)",
		"//person:(/creditcard, /profile/income)",
		"//person:(/name, /profile/age)",
	}
}

// XMark generates an XMark-like auction site document with the given
// number of persons (items and auctions scale along). Values follow
// Zipf-like skew so exact-frequency attacks are meaningful.
func XMark(persons int, seed uint64) *xmltree.Document {
	r := NewRand(seed)
	site := xmltree.NewElement("site")

	people := site.AppendChild(xmltree.NewElement("people"))
	for i := 0; i < persons; i++ {
		p := people.AppendChild(xmltree.NewElement("person"))
		p.AppendChild(xmltree.NewAttribute("id", fmt.Sprintf("person%d", i)))
		name := firstNames[r.Zipf(len(firstNames))] + " " + lastNames[r.Zipf(len(lastNames))]
		p.AppendValue("name", name)
		p.AppendValue("emailaddress", fmt.Sprintf("mailto:u%d@example.com", r.Intn(persons*2)))
		p.AppendValue("creditcard", fmt.Sprintf("%04d %04d %04d %04d",
			r.Intn(10000), r.Intn(10000), r.Intn(10000), r.Intn(10000)))
		addr := p.AppendChild(xmltree.NewElement("address"))
		addr.AppendValue("street", fmt.Sprintf("%d Main St", 1+r.Intn(999)))
		addr.AppendValue("city", cities[r.Zipf(len(cities))])
		addr.AppendValue("country", countries[r.Zipf(len(countries))])
		addr.AppendValue("zipcode", fmt.Sprintf("%05d", r.Intn(100000)))
		prof := p.AppendChild(xmltree.NewElement("profile"))
		prof.AppendValue("income", fmt.Sprintf("%d", 20000+1000*r.Zipf(120)))
		prof.AppendValue("age", fmt.Sprintf("%d", 18+r.Zipf(60)))
		prof.AppendValue("education", educations[r.Zipf(len(educations))])
		prof.AppendValue("interest", interests[r.Zipf(len(interests))])
	}

	items := persons / 2
	if items < 1 {
		items = 1
	}
	regionsEl := site.AppendChild(xmltree.NewElement("regions"))
	regionEls := map[string]*xmltree.Node{}
	for i := 0; i < items; i++ {
		rg := regions[r.Zipf(len(regions))]
		re, ok := regionEls[rg]
		if !ok {
			re = regionsEl.AppendChild(xmltree.NewElement(rg))
			regionEls[rg] = re
		}
		it := re.AppendChild(xmltree.NewElement("item"))
		it.AppendChild(xmltree.NewAttribute("id", fmt.Sprintf("item%d", i)))
		it.AppendValue("name", itemNames[r.Zipf(len(itemNames))])
		it.AppendValue("payment", "Creditcard")
		it.AppendValue("quantity", fmt.Sprintf("%d", 1+r.Intn(5)))
		it.AppendValue("location", countries[r.Zipf(len(countries))])
		it.AppendValue("description", "antique "+itemNames[r.Zipf(len(itemNames))]+" in good condition")
	}

	auctions := persons / 2
	open := site.AppendChild(xmltree.NewElement("open_auctions"))
	for i := 0; i < auctions; i++ {
		a := open.AppendChild(xmltree.NewElement("open_auction"))
		a.AppendChild(xmltree.NewAttribute("id", fmt.Sprintf("auction%d", i)))
		initial := 10 + r.Zipf(200)
		a.AppendValue("initial", fmt.Sprintf("%d.%02d", initial, r.Intn(100)))
		a.AppendValue("current", fmt.Sprintf("%d.%02d", initial+r.Intn(500), r.Intn(100)))
		bidders := r.Intn(3)
		for b := 0; b < bidders; b++ {
			bd := a.AppendChild(xmltree.NewElement("bidder"))
			bd.AppendValue("date", fmt.Sprintf("%02d/%02d/2005", 1+r.Intn(12), 1+r.Intn(28)))
			bd.AppendValue("increase", fmt.Sprintf("%d.00", 1+r.Intn(50)))
		}
		a.AppendValue("itemref", fmt.Sprintf("item%d", r.Intn(items)))
		a.AppendValue("seller", fmt.Sprintf("person%d", r.Intn(persons)))
	}

	closed := site.AppendChild(xmltree.NewElement("closed_auctions"))
	for i := 0; i < auctions/2; i++ {
		a := closed.AppendChild(xmltree.NewElement("closed_auction"))
		a.AppendValue("price", fmt.Sprintf("%d.%02d", 20+r.Zipf(400), r.Intn(100)))
		a.AppendValue("date", fmt.Sprintf("%02d/%02d/2005", 1+r.Intn(12), 1+r.Intn(28)))
		a.AppendValue("buyer", fmt.Sprintf("person%d", r.Intn(persons)))
		a.AppendValue("seller", fmt.Sprintf("person%d", r.Intn(persons)))
		a.AppendValue("itemref", fmt.Sprintf("item%d", r.Intn(items)))
	}

	return xmltree.NewDocument(site)
}

// XMarkToSize generates an XMark document of at least targetBytes
// serialized size (compact form).
func XMarkToSize(targetBytes int, seed uint64) *xmltree.Document {
	// One person plus its share of items/auctions serializes to
	// roughly 700 bytes; refine with one probe.
	persons := targetBytes / 700
	if persons < 4 {
		persons = 4
	}
	doc := XMark(persons, seed)
	got := doc.ByteSize()
	if got >= targetBytes {
		return doc
	}
	persons = int(float64(persons) * float64(targetBytes) / float64(got) * 1.05)
	return XMark(persons, seed)
}
