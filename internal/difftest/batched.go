package difftest

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// batchEdit is one member of a concurrent update round: a leaf-value
// rename targeting every occurrence of a (tag, value) pair, plus the
// per-caller outcome filled in by its goroutine.
type batchEdit struct {
	q      string
	tag    string
	oldVal string
	newVal string

	n   int
	tm  core.Timings
	err error
}

// RunCaseWithBatchedUpdates is RunCase with the group-commit update
// pipeline engaged: between query passes, several concurrent callers
// update disjoint (tag, value) targets through one System with
// EnableUpdateBatching on, so the batcher coalesces them into shared
// flushes (conflicting members are serialized by the barriers, which
// is part of the coverage). Every caller then runs verified queries
// of its own target — with integrity enabled, each answer's Merkle
// proof is checked against the root the caller's batch advanced the
// shared verifier to, so each member's individual edit is proven
// against the batch root, not just the batch as a whole. Finally the
// edits are mirrored onto the plaintext reference and the full query
// list re-runs differentially.
func RunCaseWithBatchedUpdates(c *Case) error {
	const (
		batchRounds = 2
		membersMax  = 3
	)
	r := datagen.NewRand(c.Seed ^ 0x6274_6368) // "btch"
	for _, name := range Schemes {
		hostDoc := c.Doc.Clone()
		ref := c.Doc.Clone()
		sys, err := hostScheme(c, name, hostDoc)
		if err != nil {
			return err
		}
		// Batch fills at the round's member count; the timer flush
		// covers rounds where barrier conflicts split the batch.
		sys.EnableUpdateBatching(membersMax, 20*time.Millisecond)
		if err := runQueries(c, name, sys, ref); err != nil {
			return err
		}
		for round := 0; round < batchRounds; round++ {
			edits := pickBatchEdits(r, ref, sys, membersMax)
			if len(edits) == 0 {
				break // no batchable update set under this scheme
			}
			var wg sync.WaitGroup
			for _, e := range edits {
				wg.Add(1)
				go func(e *batchEdit) {
					defer wg.Done()
					e.n, e.tm, e.err = sys.UpdateLeafValuesTimed(context.Background(), e.q, e.newVal)
					if e.err != nil || e.n == 0 {
						return
					}
					// Per-caller proof check against the batch root: both
					// probes request and verify Merkle proofs, and the
					// shared verifier already sits at (or past) the root
					// of the batch that carried this member.
					e.err = probeOwnTarget(sys, e)
				}(e)
			}
			wg.Wait()
			for _, e := range edits {
				if e.err != nil {
					return fmt.Errorf("seed %d (%s): scheme %s round %d: batched update %q -> %q: %w",
						c.Seed, c.DocName, name, round, e.q, e.newVal, e.err)
				}
				if e.n == 0 {
					return fmt.Errorf("seed %d (%s): scheme %s round %d: batched update %q -> %q edited nothing",
						c.Seed, c.DocName, name, round, e.q, e.newVal)
				}
				if !e.tm.UpdateBatched {
					return fmt.Errorf("seed %d (%s): scheme %s round %d: update %q bypassed the batcher",
						c.Seed, c.DocName, name, round, e.q)
				}
				if e.tm.UpdateBatchSize < 1 || e.tm.UpdateBatchSize > membersMax {
					return fmt.Errorf("seed %d (%s): scheme %s round %d: update %q reported batch size %d",
						c.Seed, c.DocName, name, round, e.q, e.tm.UpdateBatchSize)
				}
				// Mirror onto the plaintext reference; the encrypted and
				// plaintext sides must have renamed the same occurrences.
				path, err := xpath.Parse(e.q)
				if err != nil {
					return fmt.Errorf("seed %d (%s): update query %q: %w", c.Seed, c.DocName, e.q, err)
				}
				mirrored := 0
				for _, target := range xpath.Evaluate(ref, path) {
					target.SetLeafValue(e.newVal)
					mirrored++
				}
				if e.n != mirrored {
					return fmt.Errorf("seed %d (%s): scheme %s round %d: update %q touched %d encrypted leaves but %d plaintext leaves",
						c.Seed, c.DocName, name, round, e.q, e.n, mirrored)
				}
			}
			if err := runQueries(c, name, sys, ref); err != nil {
				return fmt.Errorf("after batched round %d: %w", round, err)
			}
		}
	}
	return nil
}

// probeOwnTarget runs the caller's own verified probes right after its
// ack, possibly while other members are still queued: the old value
// must be gone and the new value present at least n times. Targets
// have pairwise-distinct tags, so no concurrent member can disturb
// either probe, and the snapshot isolation of queued batches keeps
// other members' pending edits invisible.
func probeOwnTarget(sys *core.System, e *batchEdit) error {
	gone, _, _, err := sys.Query("//" + e.tag + "[.='" + e.oldVal + "']")
	if err != nil {
		return fmt.Errorf("old-value probe: %w", err)
	}
	if len(gone) != 0 {
		return fmt.Errorf("old-value probe: %d stale %q leaves survive the ack", len(gone), e.oldVal)
	}
	now, _, _, err := sys.Query("//" + e.tag + "[.='" + e.newVal + "']")
	if err != nil {
		return fmt.Errorf("new-value probe: %w", err)
	}
	if len(now) < e.n {
		return fmt.Errorf("new-value probe: %d %q leaves, want at least %d", len(now), e.newVal, e.n)
	}
	return nil
}

// pickBatchEdits draws up to k updatable targets with pairwise
// distinct tags (disjoint targets can commit in one batch in any
// order, and the per-caller probes stay independent). Each candidate
// is dry-run probed like pickUpdate; schemes that leave fewer than
// one updatable tag yield a short or empty round.
func pickBatchEdits(r *datagen.Rand, ref *xmltree.Document, sys *core.System, k int) []*batchEdit {
	sh := shapeOf(ref)
	usedTag := map[string]bool{}
	var out []*batchEdit
	for attempt := 0; attempt < 8*k && len(out) < k; attempt++ {
		leaf := pickLeaf(r, sh)
		if leaf == nil {
			break
		}
		if usedTag[leaf.Tag] {
			continue
		}
		val := leaf.LeafValue()
		newVal := renameValue(val)
		if !safeValue(newVal) || newVal == val {
			continue
		}
		q := "//" + leaf.Tag + "[.='" + val + "']"
		// Dry run (same-value update must be a 0-count no-op): rejects
		// plaintext and otherwise non-updatable leaves under the scheme.
		if n, err := sys.UpdateLeafValues(q, val); err != nil || n != 0 {
			continue
		}
		usedTag[leaf.Tag] = true
		out = append(out, &batchEdit{q: q, tag: leaf.Tag, oldVal: val, newVal: newVal})
	}
	return out
}
