// Package difftest is a differential correctness harness for the
// encrypted query pipeline: it generates randomized documents,
// security constraints and XPath queries, runs every query through
// the full encrypted round trip (translate → execute → decrypt →
// post-process) under each encryption scheme, and checks the answer
// node-for-node against a plaintext evaluation of the same query on
// the original document — the paper's correctness contract
// Q(δ(Qs(η(D)))) = Q(D), tested mechanically instead of by example.
//
// Two modes share the generator: the checked-in corpus of fixed
// seeds runs on every `go test`, and `-difftest.duration=30s` keeps
// drawing fresh seeds until the clock runs out (see difftest_test.go).
// Every failure message leads with the seed, so any discovered
// counterexample replays with a one-line test.
package difftest

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Schemes is every encryption scheme the harness checks; a
// differential case passes only when all of them agree with the
// plaintext evaluation.
var Schemes = []core.SchemeName{
	core.SchemeOpt, core.SchemeApp, core.SchemeSub, core.SchemeTop, core.SchemeLeaf,
}

// Case is one generated differential test case: a document, the
// security constraints to enforce on it, and the queries to compare.
type Case struct {
	Seed    uint64
	DocName string // "nasa" or "xmark"
	Doc     *xmltree.Document
	SCs     []string
	Queries []string
}

// GenCase derives a full case from one seed, deterministically: the
// document family and size, a random subset of the family's
// association constraints plus random node-type constraints, and a
// query mix drawn from the paper's three classes (§7.1) and from
// structural templates covering the query language (descendant
// steps, wildcards, parent steps, value/existence/negated
// predicates, attributes, text(), and/or).
func GenCase(seed uint64) *Case {
	r := datagen.NewRand(seed)
	c := &Case{Seed: seed}
	if seed%2 == 0 {
		c.DocName = "nasa"
		c.Doc = datagen.NASA(6+r.Intn(18), seed)
		c.SCs = subsetSCs(r, datagen.NASASCs())
	} else {
		c.DocName = "xmark"
		c.Doc = datagen.XMark(3+r.Intn(8), seed)
		c.SCs = subsetSCs(r, datagen.XMarkSCs())
	}
	c.SCs = append(c.SCs, nodeTypeSCs(r, c.Doc)...)

	for _, class := range []datagen.QueryClass{datagen.Qs, datagen.Qm, datagen.Ql} {
		c.Queries = append(c.Queries, datagen.Queries(c.Doc, class, 3, seed)...)
	}
	c.Queries = append(c.Queries, templateQueries(r, c.Doc, 12)...)
	return c
}

// subsetSCs keeps a random non-empty subset of the family's
// association constraints, so scheme construction sees varied
// constraint graphs instead of always the paper's full set.
func subsetSCs(r *datagen.Rand, all []string) []string {
	var out []string
	for _, s := range all {
		if r.Intn(4) != 0 { // keep with p = 3/4
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = append(out, all[r.Intn(len(all))])
	}
	return out
}

// nodeTypeSCs adds up to two random node-type constraints ("//tag"):
// the chosen tags must be encrypted wherever they occur, which
// shifts block boundaries in ways the association set alone never
// exercises.
func nodeTypeSCs(r *datagen.Rand, doc *xmltree.Document) []string {
	var tags []string
	seen := map[string]bool{}
	for _, n := range doc.Nodes() {
		if n.Kind == xmltree.Element && n.Parent != nil && !seen[n.Tag] {
			seen[n.Tag] = true
			tags = append(tags, n.Tag)
		}
	}
	sort.Strings(tags)
	var out []string
	for i := 0; i < 2 && len(tags) > 0; i++ {
		if r.Intn(2) == 0 {
			out = append(out, "//"+tags[r.Intn(len(tags))])
		}
	}
	return out
}

// docShape indexes the document for the query templates: element
// parent→child pairs, ancestor→descendant pairs, leaves with safe
// values, and attributes.
type docShape struct {
	pairs  [][2]string // parent tag, child element tag
	deep   [][2]string // proper ancestor tag, descendant element tag
	leaves []*xmltree.Node
	attrs  [][2]string // owner tag, attribute name
}

func shapeOf(doc *xmltree.Document) *docShape {
	sh := &docShape{}
	seenPair := map[[2]string]bool{}
	seenDeep := map[[2]string]bool{}
	seenAttr := map[[2]string]bool{}
	for _, n := range doc.Nodes() {
		switch n.Kind {
		case xmltree.Attribute:
			k := [2]string{n.Parent.Tag, n.Tag}
			if !seenAttr[k] {
				seenAttr[k] = true
				sh.attrs = append(sh.attrs, k)
			}
		case xmltree.Element:
			if n.Parent != nil {
				k := [2]string{n.Parent.Tag, n.Tag}
				if !seenPair[k] {
					seenPair[k] = true
					sh.pairs = append(sh.pairs, k)
				}
				for a := n.Parent.Parent; a != nil; a = a.Parent {
					k := [2]string{a.Tag, n.Tag}
					if !seenDeep[k] {
						seenDeep[k] = true
						sh.deep = append(sh.deep, k)
					}
				}
			}
			if n.IsLeaf() && safeValue(n.LeafValue()) {
				sh.leaves = append(sh.leaves, n)
			}
		}
	}
	// doc.Nodes() is a deterministic pre-order walk, so the slices
	// are already reproducible; no extra sorting needed.
	return sh
}

func safeValue(v string) bool {
	return v != "" && !strings.ContainsAny(v, `'"`)
}

// templateQueries draws n queries from structural templates keyed to
// the indexed document shape, so every query is satisfiable by
// construction (empty results still occur via negation and unlucky
// value picks, which is part of the coverage).
func templateQueries(r *datagen.Rand, doc *xmltree.Document, n int) []string {
	sh := shapeOf(doc)
	var out []string
	for len(out) < n {
		var q string
		switch r.Intn(10) {
		case 0: // descendant pair with // step
			if len(sh.deep) == 0 {
				continue
			}
			p := sh.deep[r.Intn(len(sh.deep))]
			q = "//" + p[0] + "//" + p[1]
		case 1: // child step
			if len(sh.pairs) == 0 {
				continue
			}
			p := sh.pairs[r.Intn(len(sh.pairs))]
			q = "//" + p[0] + "/" + p[1]
		case 2: // wildcard child
			if len(sh.pairs) == 0 {
				continue
			}
			q = "//" + sh.pairs[r.Intn(len(sh.pairs))][0] + "/*"
		case 3: // parent step
			if len(sh.pairs) == 0 {
				continue
			}
			q = "//" + sh.pairs[r.Intn(len(sh.pairs))][1] + "/.."
		case 4: // existence predicate, possibly negated
			if len(sh.pairs) == 0 {
				continue
			}
			p := sh.pairs[r.Intn(len(sh.pairs))]
			if r.Intn(2) == 0 {
				q = "//" + p[0] + "[" + p[1] + "]"
			} else {
				q = "//" + p[0] + "[not(" + p[1] + ")]"
			}
		case 5: // value predicate on a leaf child, = or !=
			leaf := pickLeaf(r, sh)
			if leaf == nil || leaf.Parent == nil {
				continue
			}
			op := "="
			if r.Intn(3) == 0 {
				op = "!="
			}
			q = "//" + leaf.Parent.Tag + "[" + leaf.Tag + op + "'" + leaf.LeafValue() + "']"
		case 6: // self value predicate on the leaf itself
			leaf := pickLeaf(r, sh)
			if leaf == nil {
				continue
			}
			q = "//" + leaf.Tag + "[.='" + leaf.LeafValue() + "']"
		case 7: // attribute step or attribute predicate
			if len(sh.attrs) == 0 {
				continue
			}
			a := sh.attrs[r.Intn(len(sh.attrs))]
			if r.Intn(2) == 0 {
				q = "//" + a[0] + "/@" + a[1]
			} else {
				q = "//" + a[0] + "[@" + a[1] + "]"
			}
		case 8: // text() of a leaf
			leaf := pickLeaf(r, sh)
			if leaf == nil {
				continue
			}
			q = "//" + leaf.Tag + "/text()"
		case 9: // and / or of two existence predicates
			if len(sh.pairs) < 2 {
				continue
			}
			p1 := sh.pairs[r.Intn(len(sh.pairs))]
			p2 := sh.pairs[r.Intn(len(sh.pairs))]
			if p2[0] != p1[0] {
				continue // both predicates must hang off the same tag
			}
			conj := " or "
			if r.Intn(2) == 0 {
				conj = " and "
			}
			q = "//" + p1[0] + "[" + p1[1] + conj + p2[1] + "]"
		}
		if q != "" {
			out = append(out, q)
		}
	}
	return out
}

func pickLeaf(r *datagen.Rand, sh *docShape) *xmltree.Node {
	if len(sh.leaves) == 0 {
		return nil
	}
	return sh.leaves[r.Intn(len(sh.leaves))]
}

// RunCase hosts the case's document under every scheme and compares
// each query's encrypted answer against the plaintext evaluation,
// node-for-node (order-insensitive: both sides sorted). The widths
// force the parallel code paths even on a single-core runner. A
// non-nil error pinpoints the first mismatch and leads with the seed
// so the case replays exactly.
//
// Integrity is enabled on every system: each query additionally
// requests and verifies a Merkle proof, so the differential corpus
// doubles as a prover/verifier agreement test — an honest server's
// proof must verify on every generated document, SC set, and query
// shape.
//
// The client block cache is enabled and every query runs twice, so
// the hot path — answer envelope and decrypted blocks served from
// the generation-keyed caches — must agree with the plaintext
// evaluation exactly as the cold path does.
func RunCase(c *Case) error {
	for _, name := range Schemes {
		sys, err := hostScheme(c, name, c.Doc)
		if err != nil {
			return err
		}
		if err := runQueries(c, name, sys, c.Doc); err != nil {
			return err
		}
	}
	return nil
}

// hostScheme boots one scheme's system for a case: integrity on,
// block cache on, both sides forced to the parallel code paths.
func hostScheme(c *Case, name core.SchemeName, doc *xmltree.Document) (*core.System, error) {
	sys, err := core.Host(doc, c.SCs, name, []byte(fmt.Sprintf("difftest-%d", c.Seed)))
	if err != nil {
		return nil, fmt.Errorf("seed %d (%s): host scheme %s (SCs %v): %w",
			c.Seed, c.DocName, name, c.SCs, err)
	}
	if err := sys.EnableIntegrity(); err != nil {
		return nil, fmt.Errorf("seed %d (%s): scheme %s: EnableIntegrity: %w",
			c.Seed, c.DocName, name, err)
	}
	sys.EnableBlockCache(0, 0)
	// Exercise the parallel matcher and decrypt paths regardless
	// of GOMAXPROCS.
	sys.Client.SetParallelism(4)
	if l, ok := sys.Server.(core.Local); ok {
		l.S.SetParallelism(4)
	}
	return sys, nil
}

// runQueries compares every case query, cold then hot, against the
// plaintext evaluation over ref (the document state the system is
// supposed to reflect).
func runQueries(c *Case, name core.SchemeName, sys *core.System, ref *xmltree.Document) error {
	for _, q := range c.Queries {
		want, err := plaintext(ref, q)
		if err != nil {
			return fmt.Errorf("seed %d (%s): query %q: plaintext: %w", c.Seed, c.DocName, q, err)
		}
		for _, pass := range []string{"cold", "hot"} {
			nodes, _, _, err := sys.Query(q)
			if err != nil {
				return fmt.Errorf("seed %d (%s): scheme %s query %q (%s): %w",
					c.Seed, c.DocName, name, q, pass, err)
			}
			got := core.ResultStrings(nodes)
			sort.Strings(got)
			if !equal(got, want) {
				return fmt.Errorf("seed %d (%s): scheme %s query %q (%s):\n  plaintext (%d): %v\n  encrypted (%d): %v",
					c.Seed, c.DocName, name, q, pass, len(want), want, len(got), got)
			}
		}
	}
	return nil
}

// RunCaseWithUpdates is RunCase with owner updates interleaved: after
// each full (cold + hot) query pass, a deterministic seed-derived
// edit renames every occurrence of some encrypted leaf value, the
// same edit is mirrored onto a plaintext reference clone, and the
// whole query list runs again. Every post-update pass therefore
// checks that the generation bump really invalidated the answer,
// range, plan and block caches — a stale cache serving the pre-update
// state diverges from the mirrored plaintext immediately.
func RunCaseWithUpdates(c *Case) error {
	const updateRounds = 2
	r := datagen.NewRand(c.Seed ^ 0x7570_6474) // "updt"
	for _, name := range Schemes {
		hostDoc := c.Doc.Clone()
		ref := c.Doc.Clone()
		sys, err := hostScheme(c, name, hostDoc)
		if err != nil {
			return err
		}
		if err := runQueries(c, name, sys, ref); err != nil {
			return err
		}
		for round := 0; round < updateRounds; round++ {
			q, newVal, ok := pickUpdate(r, ref, sys)
			if !ok {
				break // no encrypted updatable leaf under this scheme
			}
			n, err := sys.UpdateLeafValues(q, newVal)
			if err != nil {
				return fmt.Errorf("seed %d (%s): scheme %s round %d: update %q -> %q: %w",
					c.Seed, c.DocName, name, round, q, newVal, err)
			}
			mirrored := 0
			path, err := xpath.Parse(q)
			if err != nil {
				return fmt.Errorf("seed %d (%s): update query %q: %w", c.Seed, c.DocName, q, err)
			}
			for _, target := range xpath.Evaluate(ref, path) {
				target.SetLeafValue(newVal)
				mirrored++
			}
			if n != mirrored {
				return fmt.Errorf("seed %d (%s): scheme %s round %d: update %q touched %d encrypted leaves but %d plaintext leaves",
					c.Seed, c.DocName, name, round, q, n, mirrored)
			}
			if err := runQueries(c, name, sys, ref); err != nil {
				return fmt.Errorf("after update %q -> %q (round %d): %w", q, newVal, round, err)
			}
		}
	}
	return nil
}

// pickUpdate draws an update the current scheme accepts: a leaf value
// rename targeting every occurrence of one (tag, value) pair. Leaves
// outside the encryption cover are rejected by the client
// (plaintext values can't be rewritten through the encrypted update
// path), so candidates are probed with a dry run until one succeeds.
// The replacement preserves the value's band class — numeric stays
// numeric, string stays string — so the rename moves entries within
// the OPESS index rather than switching encodings.
func pickUpdate(r *datagen.Rand, ref *xmltree.Document, sys *core.System) (q, newVal string, ok bool) {
	sh := shapeOf(ref)
	for attempt := 0; attempt < 8; attempt++ {
		leaf := pickLeaf(r, sh)
		if leaf == nil {
			return "", "", false
		}
		val := leaf.LeafValue()
		q = "//" + leaf.Tag + "[.='" + val + "']"
		newVal = renameValue(val)
		if !safeValue(newVal) || newVal == val {
			continue
		}
		// Dry run: a zero-count or rejected update means this leaf is
		// not updatable under the scheme (plaintext, non-leaf after
		// grouping, …) — try another.
		if n, err := sys.UpdateLeafValues(q, val); err != nil || n != 0 {
			continue // same-value update must be a 0-count no-op
		}
		return q, newVal, true
	}
	return "", "", false
}

// renameValue derives a different value in the same band class.
func renameValue(v string) string {
	allDigits := v != ""
	for i := 0; i < len(v); i++ {
		if v[i] < '0' || v[i] > '9' {
			allDigits = false
			break
		}
	}
	if allDigits && len(v) < 18 {
		var n uint64
		fmt.Sscanf(v, "%d", &n)
		return fmt.Sprintf("%d", n+1)
	}
	return v + "u"
}

func plaintext(doc *xmltree.Document, q string) ([]string, error) {
	path, err := xpath.Parse(q)
	if err != nil {
		return nil, err
	}
	out := core.ResultStrings(xpath.Evaluate(doc, path))
	sort.Strings(out)
	return out, nil
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
