package difftest

import (
	"flag"
	"testing"
	"time"
)

// difftestDuration opts into the open-ended mode: keep generating
// fresh random cases until the budget is spent, e.g.
//
//	go test ./internal/difftest -run OpenEnded -difftest.duration=1m
var difftestDuration = flag.Duration("difftest.duration", 0,
	"run randomized differential cases for this long (0 = fixed corpus only)")

// corpusSeeds is the checked-in corpus: a fixed spread of seeds (odd
// = XMark, even = NASA) that runs on every `go test`. When the
// open-ended mode finds a counterexample, its seed belongs here.
// The two large seeds were found by the open-ended mode:
// 1785901620815951921 — an empty server answer let the client's
// synthetic reassembly root satisfy "//site[not(closed_auctions)]"
// (fixed in client.PostProcessFull); 1785901796407847193 — the
// matcher claimed certain existence at a grouped in-block context,
// so "not(bidder)" under the top scheme dropped every grouped
// open_auction (fixed in exec.evalPred).
var corpusSeeds = []uint64{
	1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
	1785901620815951921,
	1785901796407847193,
}

func TestDifferentialCorpus(t *testing.T) {
	seeds := corpusSeeds
	if testing.Short() {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		c := GenCase(seed)
		t.Run(c.DocName+"/"+itoa(seed), func(t *testing.T) {
			t.Parallel()
			if err := RunCase(c); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDifferentialCorpusWithUpdates runs the fixed corpus through
// the update-interleaved mode: queries run cold and hot, owner
// updates land between passes, and every post-update pass must match
// the mirrored plaintext — the caching layer's end-to-end contract.
func TestDifferentialCorpusWithUpdates(t *testing.T) {
	seeds := corpusSeeds
	if testing.Short() {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		c := GenCase(seed)
		t.Run(c.DocName+"/"+itoa(seed), func(t *testing.T) {
			t.Parallel()
			if err := RunCaseWithUpdates(c); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDifferentialCorpusBatchedUpdates runs the fixed corpus through
// the group-commit mode: concurrent callers update disjoint targets
// through the batcher between query passes, each caller's edit is
// individually proven against the batch root, and every pass must
// match the mirrored plaintext. Each case spins up five systems and
// waits on batch timers, so the every-`go test` run uses a subset;
// the full corpus runs from the soak targets.
func TestDifferentialCorpusBatchedUpdates(t *testing.T) {
	seeds := corpusSeeds
	if testing.Short() {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		c := GenCase(seed)
		t.Run(c.DocName+"/"+itoa(seed), func(t *testing.T) {
			t.Parallel()
			if err := RunCaseWithBatchedUpdates(c); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDifferentialOpenEnded draws fresh seeds for the configured
// duration. The starting seed is the wall clock, so successive runs
// explore different cases; the failure message carries the seed for
// replay (add it to corpusSeeds to pin the regression). Every case
// runs in the update-interleaved mode — with the caches enabled and
// queries repeated hot, the soak exercises exactly the invalidation
// story the generation counter is supposed to guarantee.
func TestDifferentialOpenEnded(t *testing.T) {
	if *difftestDuration <= 0 {
		t.Skip("enable with -difftest.duration=<d>")
	}
	deadline := time.Now().Add(*difftestDuration)
	seed := uint64(time.Now().UnixNano())
	cases := 0
	for time.Now().Before(deadline) {
		if err := RunCaseWithUpdates(GenCase(seed)); err != nil {
			t.Fatal(err)
		}
		seed++
		cases++
	}
	t.Logf("differential: %d randomized update-interleaved cases passed in %v", cases, *difftestDuration)
}

// TestGenCaseDeterministic pins the generator: the same seed must
// yield the same case, or corpus seeds stop being replayable.
func TestGenCaseDeterministic(t *testing.T) {
	a, b := GenCase(42), GenCase(42)
	if a.DocName != b.DocName || len(a.Queries) != len(b.Queries) || len(a.SCs) != len(b.SCs) {
		t.Fatalf("GenCase(42) not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Fatalf("query %d differs: %q vs %q", i, a.Queries[i], b.Queries[i])
		}
	}
	for i := range a.SCs {
		if a.SCs[i] != b.SCs[i] {
			t.Fatalf("SC %d differs: %q vs %q", i, a.SCs[i], b.SCs[i])
		}
	}
	if a.Doc.String() != b.Doc.String() {
		t.Fatalf("document differs between identical seeds")
	}
}

func itoa(u uint64) string {
	if u == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	return string(buf[i:])
}
