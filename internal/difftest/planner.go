package difftest

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/xpath"
)

// RunCasePlanner is the planner's differential harness: every case
// query runs twice against the same hosted system — once with the
// planner forced to the holistic twig strategy, once forced to the
// classic pairwise interval joins — and the two answers must be
// byte-identical on the wire. MarshalAnswer includes the Merkle
// proof, so byte-equality covers the proofs too; both are also
// independently verified against the committed root. Caching is off
// so both runs really execute the matcher instead of replaying an
// envelope.
//
// This is the twig matcher's soundness contract tested mechanically:
// the synopsis pass may only prune interval lists, never change what
// the surviving anchors assemble to.
func RunCasePlanner(c *Case) error {
	for _, name := range Schemes {
		sys, err := hostScheme(c, name, c.Doc)
		if err != nil {
			return err
		}
		l, ok := sys.Server.(core.Local)
		if !ok {
			return fmt.Errorf("seed %d (%s): scheme %s: backend is not in-process", c.Seed, c.DocName, name)
		}
		srv := l.S
		srv.SetCaching(false)
		ver := sys.Verifier()
		for _, q := range c.Queries {
			path, err := xpath.Parse(q)
			if err != nil {
				return fmt.Errorf("seed %d (%s): parse %q: %w", c.Seed, c.DocName, q, err)
			}
			qs, err := sys.Client.Translate(path)
			if err != nil {
				return fmt.Errorf("seed %d (%s): scheme %s: translate %q: %w", c.Seed, c.DocName, name, q, err)
			}
			qs.WantProof = true
			frame, err := wire.MarshalQuery(qs)
			if err != nil {
				return fmt.Errorf("seed %d (%s): scheme %s: marshal %q: %w", c.Seed, c.DocName, name, q, err)
			}
			modes := []string{server.StrategyTwig, server.StrategyPairwise}
			wires := make([][]byte, len(modes))
			for i, mode := range modes {
				if err := srv.ForceStrategy(mode); err != nil {
					return fmt.Errorf("seed %d (%s): force %s: %w", c.Seed, c.DocName, mode, err)
				}
				ans, err := srv.ExecuteFrame(frame)
				if err != nil {
					return fmt.Errorf("seed %d (%s): scheme %s query %q (%s): %w",
						c.Seed, c.DocName, name, q, mode, err)
				}
				if err := ver.VerifyAnswer(ans); err != nil {
					return fmt.Errorf("seed %d (%s): scheme %s query %q (%s): proof rejected: %w",
						c.Seed, c.DocName, name, q, mode, err)
				}
				if wires[i], err = wire.MarshalAnswer(ans); err != nil {
					return fmt.Errorf("seed %d (%s): scheme %s query %q (%s): marshal answer: %w",
						c.Seed, c.DocName, name, q, mode, err)
				}
			}
			if !bytes.Equal(wires[0], wires[1]) {
				return fmt.Errorf("seed %d (%s): scheme %s query %q: twig and pairwise answers differ on the wire (%d vs %d bytes)",
					c.Seed, c.DocName, name, q, len(wires[0]), len(wires[1]))
			}
		}
	}
	return nil
}
