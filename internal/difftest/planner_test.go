package difftest

import "testing"

// TestDifferentialPlannerStrategies runs the fixed corpus through the
// planner's differential mode: every query of every case, under every
// scheme, executed with the planner forced to twig and then forced to
// pairwise, asserting the two wire answers (Merkle proof included)
// are byte-identical and that both proofs verify.
func TestDifferentialPlannerStrategies(t *testing.T) {
	seeds := corpusSeeds
	if testing.Short() {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		c := GenCase(seed)
		t.Run(c.DocName+"/"+itoa(seed), func(t *testing.T) {
			t.Parallel()
			if err := RunCasePlanner(c); err != nil {
				t.Error(err)
			}
		})
	}
}
