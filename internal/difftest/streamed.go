package difftest

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/xmltree"
)

// RunCaseStreamed runs the case's queries through a real HTTP round
// trip with chunked-answer streaming negotiated, interleaving a
// streaming peer and a legacy envelope peer against the same hosted
// service. The streamed and envelope encodings of every answer must
// decode to the same result as the plaintext evaluation, and the
// block cache seeded by one peer's pass must keep serving the other
// correctly — the mixed-fleet deployment the negotiation is for.
// Queries within a pass run concurrently, so under -race this doubles
// as a data-race probe of the stream decode + overlapped-decrypt
// pipeline.
func RunCaseStreamed(c *Case) error {
	for _, name := range Schemes {
		if err := runStreamedScheme(c, name); err != nil {
			return err
		}
	}
	return nil
}

// streamWorkers is the per-pass query concurrency: enough to overlap
// several streams (and their decrypt pools) without drowning the
// race detector.
const streamWorkers = 4

func runStreamedScheme(c *Case, name core.SchemeName) error {
	sys, err := hostScheme(c, name, c.Doc)
	if err != nil {
		return err
	}
	svc := remote.NewService().WithStreamCutoff(1) // stream every non-trivial answer
	if err := remote.RegisterLocal(svc, "d", sys.HostedDB); err != nil {
		return fmt.Errorf("seed %d (%s): scheme %s: register: %w", c.Seed, c.DocName, name, err)
	}
	ts := httptest.NewServer(svc)
	defer ts.Close()

	streaming := remote.Dial(ts.URL, "d").WithHTTPClient(ts.Client()).
		WithStreaming(true).WithVerifier(sys.Verifier())
	envelope := remote.Dial(ts.URL, "d").WithHTTPClient(ts.Client()).
		WithVerifier(sys.Verifier())

	// Cold pass streamed, hot pass through the envelope peer (served
	// partly from the cache the stream seeded), then streamed again:
	// every transition between the two formats is covered.
	passes := []struct {
		label string
		cl    *remote.Client
	}{
		{"stream-cold", streaming},
		{"envelope-hot", envelope},
		{"stream-hot", streaming},
	}
	for _, p := range passes {
		sys.UseBackend(p.cl)
		if err := runQueriesConcurrent(c, name, sys, c.Doc, p.label); err != nil {
			return err
		}
	}
	return nil
}

// runQueriesConcurrent is runQueries with the case's queries spread
// across streamWorkers goroutines (single pass; the caller sequences
// cold/hot passes explicitly).
func runQueriesConcurrent(c *Case, name core.SchemeName, sys *core.System, ref *xmltree.Document, label string) error {
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	record := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	jobs := make(chan string)
	for w := 0; w < streamWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range jobs {
				want, err := plaintext(ref, q)
				if err != nil {
					record(fmt.Errorf("seed %d (%s): query %q: plaintext: %w", c.Seed, c.DocName, q, err))
					continue
				}
				nodes, _, _, err := sys.Query(q)
				if err != nil {
					record(fmt.Errorf("seed %d (%s): scheme %s query %q (%s): %w",
						c.Seed, c.DocName, name, q, label, err))
					continue
				}
				got := core.ResultStrings(nodes)
				sort.Strings(got)
				if !equal(got, want) {
					record(fmt.Errorf("seed %d (%s): scheme %s query %q (%s):\n  plaintext (%d): %v\n  encrypted (%d): %v",
						c.Seed, c.DocName, name, q, label, len(want), want, len(got), got))
				}
			}
		}()
	}
	for _, q := range c.Queries {
		jobs <- q
	}
	close(jobs)
	wg.Wait()
	return firstErr
}
