package difftest

import (
	"testing"
	"time"
)

// streamedCorpusSeeds is the subset of the fixed corpus the streamed
// harness runs on every `go test`: each case spins up five HTTP
// servers (one per scheme) and runs three full passes, so the whole
// corpus would dominate the package's runtime for little extra
// coverage — the protocol is the same for every seed.
var streamedCorpusSeeds = []uint64{1, 2, 1785901620815951921, 1785901796407847193}

// TestStreamedDifferentialCorpus runs the streamed-peer differential
// harness on the fixed seed subset: streamed answers, envelope
// answers, and plaintext evaluation must all agree, across the cache
// one peer seeds for the other.
func TestStreamedDifferentialCorpus(t *testing.T) {
	seeds := streamedCorpusSeeds
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		c := GenCase(seed)
		t.Run(c.DocName+"/"+itoa(seed), func(t *testing.T) {
			t.Parallel()
			if err := RunCaseStreamed(c); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestStreamSoak draws fresh seeds through the streamed mixed-peer
// harness for the configured duration (same flag as the open-ended
// differential soak, but a distinct name so `-run OpenEnded` budgets
// are not silently doubled):
//
//	go test ./internal/difftest -race -run StreamSoak -difftest.duration=10m
func TestStreamSoak(t *testing.T) {
	if *difftestDuration <= 0 {
		t.Skip("enable with -difftest.duration=<d>")
	}
	deadline := time.Now().Add(*difftestDuration)
	seed := uint64(time.Now().UnixNano())
	cases := 0
	for time.Now().Before(deadline) {
		if err := RunCaseStreamed(GenCase(seed)); err != nil {
			t.Fatal(err)
		}
		seed++
		cases++
	}
	t.Logf("stream soak: %d randomized mixed-peer cases passed in %v", cases, *difftestDuration)
}
