package difftest

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
)

// TestConcurrentQueryUpdateStress drives one hosted system with
// mixed readers and writers, meant to run under -race: writers
// rotate every //author/last value through a known set (each update
// rewrites all of them to one value), while readers query and
// aggregate concurrently. The System's reader/writer lock promises
// each answer is a clean pre- or post-update snapshot, so every read
// must see all lasts equal to each other and drawn from the written
// set — a torn read (mid-update mix) or a stale-map read (client
// translation state mid-rewrite) fails the assertion or trips the
// race detector.
func TestConcurrentQueryUpdateStress(t *testing.T) {
	doc := datagen.NASA(40, 7)
	sys, err := core.Host(doc, datagen.NASASCs(), core.SchemeOpt, []byte("stress-master"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	sys.Client.SetParallelism(4)
	if l, ok := sys.Server.(core.Local); ok {
		l.S.SetParallelism(4)
	}

	// Settle every target leaf to a known value so the first reads
	// already have a single-valued snapshot to assert against.
	values := map[string]bool{"w0": true}
	if n, err := sys.UpdateLeafValues("//author/last", "w0"); err != nil || n == 0 {
		t.Fatalf("settle update: n=%d err=%v", n, err)
	}

	const (
		writers          = 2
		readers          = 6
		writesPerWriter  = 5
		queriesPerReader = 15
	)
	for w := 0; w < writers; w++ {
		for i := 0; i < writesPerWriter; i++ {
			values[fmt.Sprintf("w%d-%d", w, i)] = true
		}
	}

	var wg sync.WaitGroup
	fail := make(chan string, readers*queriesPerReader+writers*writesPerWriter)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writesPerWriter; i++ {
				v := fmt.Sprintf("w%d-%d", w, i)
				if _, err := sys.UpdateLeafValues("//author/last", v); err != nil {
					fail <- fmt.Sprintf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < queriesPerReader; i++ {
				if i%5 == 4 {
					// Aggregate path: with all lasts equal at any
					// snapshot, MIN must itself be a written value.
					v, _, err := sys.AggregateMinMax("//author/last", false)
					if err != nil {
						fail <- fmt.Sprintf("reader %d aggregate: %v", g, err)
						return
					}
					if !values[v] {
						fail <- fmt.Sprintf("reader %d aggregate: %q not a written value", g, v)
						return
					}
					continue
				}
				nodes, _, _, err := sys.Query("//author/last")
				if err != nil {
					fail <- fmt.Sprintf("reader %d: %v", g, err)
					return
				}
				if len(nodes) == 0 {
					fail <- fmt.Sprintf("reader %d: no author lasts", g)
					return
				}
				got := make([]string, len(nodes))
				for j, n := range nodes {
					got[j] = n.LeafValue()
				}
				first := got[0]
				if !values[first] {
					fail <- fmt.Sprintf("reader %d: %q is not a written value", g, first)
					return
				}
				for _, v := range got[1:] {
					if v != first {
						fail <- fmt.Sprintf("reader %d: torn snapshot: saw both %q and %q", g, first, v)
						return
					}
				}
			}
		}(g)
	}

	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
}
