package difftest

import (
	"context"
	"flag"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/xmltree"
)

// The mixed reader/writer soak for the group-commit update pipeline:
//
//	go test ./internal/difftest -race -run UpdateSoak \
//	    -updatesoak.duration=30s -updatesoak.workers=16 -updatesoak.writerpct=25
//
// Writers hammer the batcher continuously while readers run verified
// queries and aggregates against the same System, so the soak
// exercises every barrier (band, block, aggregate) and the chained
// verifier under real concurrency. The writer ratio is configurable;
// `make soak-update-short` runs the 30-second variant inside `check`.
var (
	updateSoakDuration = flag.Duration("updatesoak.duration", 0,
		"run the mixed reader/writer update soak for this long (0 = skip)")
	updateSoakWorkers = flag.Int("updatesoak.workers", 16,
		"total concurrent workers in the update soak")
	updateSoakWriterPct = flag.Int("updatesoak.writerpct", 25,
		"percent of update-soak workers that write (the rest read)")
)

// soakDoc builds a document with one leaf family per writer —
// `<grp><name>gW</name><vW>…</vW>×L</grp>` — so each writer owns a
// tag whose blocks and OPESS band no other writer touches, and the
// batcher can genuinely coalesce their flushes.
func soakDoc(writers, leavesPerFamily int) (*xmltree.Document, []string) {
	var b strings.Builder
	var scs []string
	b.WriteString("<db>")
	for w := 0; w < writers; w++ {
		fmt.Fprintf(&b, "<grp><name>g%d</name>", w)
		for i := 0; i < leavesPerFamily; i++ {
			fmt.Fprintf(&b, "<v%d>init</v%d>", w, w)
		}
		b.WriteString("</grp>")
		scs = append(scs, fmt.Sprintf("//v%d", w))
	}
	b.WriteString("</db>")
	return xmltree.MustParse(b.String()), scs
}

func TestUpdateSoak(t *testing.T) {
	if *updateSoakDuration <= 0 {
		t.Skip("enable with -updatesoak.duration=<d>")
	}
	writers := *updateSoakWorkers * *updateSoakWriterPct / 100
	if writers < 1 {
		writers = 1
	}
	readers := *updateSoakWorkers - writers
	if readers < 1 {
		readers = 1
	}
	const leavesPerFamily = 3

	doc, scs := soakDoc(writers, leavesPerFamily)
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("update-soak"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	if err := sys.EnableIntegrity(); err != nil {
		t.Fatalf("EnableIntegrity: %v", err)
	}
	sys.EnableBlockCache(0, 0)
	sys.Client.SetParallelism(4)

	// The full remote stack: SXB1 batch frames over HTTP, verified
	// answers, and the service-side group-commit machinery behind it.
	svc := remote.NewService().WithUpdateBatching(writers, 2*time.Millisecond)
	if err := remote.RegisterLocal(svc, "soak", sys.HostedDB); err != nil {
		t.Fatalf("register: %v", err)
	}
	ts := httptest.NewServer(svc)
	defer ts.Close()
	sys.UseBackend(remote.Dial(ts.URL, "soak").WithHTTPClient(ts.Client()).
		WithVerifier(sys.Verifier()))
	sys.EnableMirrorReads()
	sys.EnableUpdateBatching(writers, 2*time.Millisecond)

	// Every value any writer will ever commit, precomputed so readers
	// assert membership without synchronizing with the writers.
	const maxWrites = 1 << 20
	allowed := make([]func(string) bool, writers)
	for w := 0; w < writers; w++ {
		prefix := fmt.Sprintf("w%d-", w)
		allowed[w] = func(v string) bool {
			return v == "init" || strings.HasPrefix(v, prefix)
		}
	}

	var (
		wg         sync.WaitGroup
		fail       = make(chan string, *updateSoakWorkers)
		stop       = make(chan struct{})
		maxBatch   atomic.Int64
		writeCount atomic.Int64
		readCount  atomic.Int64
		finalVal   = make([]string, writers)
	)
	record := func(format string, args ...any) {
		select {
		case fail <- fmt.Sprintf(format, args...):
		default:
		}
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := fmt.Sprintf("//v%d", w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i >= maxWrites {
					return
				}
				v := fmt.Sprintf("w%d-%d", w, i)
				n, tm, err := sys.UpdateLeafValuesTimed(context.Background(), q, v)
				if err != nil {
					record("writer %d: %v", w, err)
					return
				}
				if n != leavesPerFamily {
					record("writer %d: update touched %d leaves, want %d", w, n, leavesPerFamily)
					return
				}
				if !tm.UpdateBatched {
					record("writer %d: update bypassed the batcher", w)
					return
				}
				for {
					cur := maxBatch.Load()
					if int64(tm.UpdateBatchSize) <= cur || maxBatch.CompareAndSwap(cur, int64(tm.UpdateBatchSize)) {
						break
					}
				}
				finalVal[w] = v
				writeCount.Add(1)
			}
		}(w)
	}

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				w := (g + i) % writers
				q := fmt.Sprintf("//v%d", w)
				if i%7 == 6 {
					// Aggregate path: all of a family's leaves are equal
					// at every committed snapshot, so MIN is a written
					// value too.
					v, _, err := sys.AggregateMinMax(q, false)
					if err != nil {
						record("reader %d aggregate: %v", g, err)
						return
					}
					if !allowed[w](v) {
						record("reader %d aggregate: %q not a value writer %d writes", g, v, w)
						return
					}
					readCount.Add(1)
					continue
				}
				nodes, _, _, err := sys.Query(q)
				if err != nil {
					record("reader %d: %v", g, err)
					return
				}
				if len(nodes) != leavesPerFamily {
					record("reader %d: %d leaves for %s, want %d", g, len(nodes), q, leavesPerFamily)
					return
				}
				first := nodes[0].LeafValue()
				if !allowed[w](first) {
					record("reader %d: %q is not a value writer %d writes", g, first, w)
					return
				}
				for _, n := range nodes[1:] {
					if n.LeafValue() != first {
						record("reader %d: torn snapshot of %s: %q and %q", g, q, first, n.LeafValue())
						return
					}
				}
				readCount.Add(1)
			}
		}(g)
	}

	time.Sleep(*updateSoakDuration)
	close(stop)
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
	if t.Failed() {
		return
	}

	// Quiesce and check the end state: the last acked write of every
	// family must be what a verified query reads back — zero acked
	// loss across however many group commits the soak pushed through.
	if err := sys.FlushUpdates(context.Background()); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	for w := 0; w < writers; w++ {
		want := finalVal[w]
		if want == "" {
			want = "init"
		}
		nodes, _, _, err := sys.Query(fmt.Sprintf("//v%d", w))
		if err != nil {
			t.Fatalf("final read of family %d: %v", w, err)
		}
		if len(nodes) != leavesPerFamily {
			t.Fatalf("final read of family %d: %d leaves, want %d", w, len(nodes), leavesPerFamily)
		}
		for _, n := range nodes {
			if n.LeafValue() != want {
				t.Fatalf("family %d: acked write lost: leaf holds %q, last acked %q", w, n.LeafValue(), want)
			}
		}
	}
	if writers >= 2 && maxBatch.Load() < 2 {
		t.Errorf("soak never coalesced a batch (max batch size %d with %d writers)", maxBatch.Load(), writers)
	}
	t.Logf("update soak: %d writes, %d reads, %d writers / %d readers, max batch %d in %v",
		writeCount.Load(), readCount.Load(), writers, readers, maxBatch.Load(), *updateSoakDuration)
}
