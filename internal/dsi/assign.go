package dsi

import (
	"fmt"
	"strconv"

	"repro/internal/cryptoprim"
	"repro/internal/xmltree"
)

// Assignment maps every element and attribute node of a document to
// its DSI interval. Text nodes carry no interval (values are indexed
// by the value index instead).
type Assignment map[*xmltree.Node]Interval

// Assign computes the DSI index of a document with the algorithm of
// Figure 3: the root receives [0, 1]; the i-th of N children of a
// node with interval [min, max] receives
//
//	d      = (max-min) / (2N+1)
//	min_i  = min + (2i-1)·d - w1_i·d
//	max_i  = min + 2i·d     + w2_i·d
//
// with weights w1_i, w2_i ∈ (0, 0.5) drawn pseudo-randomly per node
// from the client's key set, so gaps between adjacent children — and
// between each child and its parent's bounds — are positive but
// unpredictable to the server.
func Assign(doc *xmltree.Document, keys *cryptoprim.KeySet) Assignment {
	asg := make(Assignment, doc.Size())
	if doc.Root == nil {
		return asg
	}
	asg[doc.Root] = Interval{0, 1}
	assignChildren(doc.Root, Interval{0, 1}, keys, asg)
	return asg
}

func assignChildren(p *xmltree.Node, iv Interval, keys *cryptoprim.KeySet, asg Assignment) {
	children := indexableChildren(p)
	n := len(children)
	if n == 0 {
		return
	}
	d := (iv.Hi - iv.Lo) / float64(2*n+1)
	sig := strconv.Itoa(p.ID)
	for i, c := range children {
		w1 := keys.DSIWeight(sig, i, 1)
		w2 := keys.DSIWeight(sig, i, 2)
		ci := Interval{
			Lo: iv.Lo + float64(2*(i+1)-1)*d - w1*d,
			Hi: iv.Lo + float64(2*(i+1))*d + w2*d,
		}
		asg[c] = ci
		assignChildren(c, ci, keys, asg)
	}
}

// indexableChildren returns the children that receive intervals:
// attributes and elements, in document order.
func indexableChildren(p *xmltree.Node) []*xmltree.Node {
	var out []*xmltree.Node
	for _, c := range p.Children {
		if c.Kind != xmltree.Text {
			out = append(out, c)
		}
	}
	return out
}

// Check verifies the two structural invariants the security and
// correctness arguments rest on: (1) every child interval is
// strictly inside its parent's, (2) sibling intervals are pairwise
// disjoint with positive gaps, in document order. It returns the
// first violation found, or nil.
func (asg Assignment) Check(doc *xmltree.Document) error {
	var visit func(n *xmltree.Node) error
	visit = func(n *xmltree.Node) error {
		piv, ok := asg[n]
		if !ok {
			return fmt.Errorf("dsi: node %s has no interval", n.Path())
		}
		if !piv.Valid() {
			return fmt.Errorf("dsi: node %s has invalid interval %v", n.Path(), piv)
		}
		children := indexableChildren(n)
		var prev *Interval
		for _, c := range children {
			civ, ok := asg[c]
			if !ok {
				return fmt.Errorf("dsi: child %s has no interval", c.Path())
			}
			if !piv.StrictlyContains(civ) {
				return fmt.Errorf("dsi: child %s interval %v not strictly inside parent %v", c.Path(), civ, piv)
			}
			if prev != nil && !prev.Before(civ) {
				return fmt.Errorf("dsi: sibling gap violated at %s: %v then %v", c.Path(), *prev, civ)
			}
			iv := civ
			prev = &iv
			if err := visit(c); err != nil {
				return err
			}
		}
		return nil
	}
	return visit(doc.Root)
}
