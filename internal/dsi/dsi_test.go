package dsi

import (
	"testing"
	"testing/quick"

	"repro/internal/cryptoprim"
	"repro/internal/sc"
	"repro/internal/scheme"
	"repro/internal/xmltree"
)

const hospitalXML = `
<hospital>
  <patient>
    <pname>Betty</pname>
    <SSN>763895</SSN>
    <insurance coverage="1000000"><policy>34221</policy><policy>9983</policy></insurance>
    <treat><disease>diarrhea</disease><doctor>Smith</doctor></treat>
    <age>35</age>
  </patient>
  <patient>
    <pname>Matt</pname>
    <SSN>276543</SSN>
    <insurance coverage="10000"><policy>26544</policy></insurance>
    <treat><disease>leukemia</disease><doctor>Walker</doctor></treat>
    <treat><disease>diarrhea</disease><doctor>Brown</doctor></treat>
    <age>40</age>
  </patient>
</hospital>`

var paperSCs = []string{
	"//insurance",
	"//patient:(/pname, /SSN)",
	"//patient:(/pname, //disease)",
	"//treat:(/disease, /doctor)",
}

func fixture(t *testing.T) (*xmltree.Document, *scheme.Scheme, *cryptoprim.KeySet) {
	t.Helper()
	d, err := xmltree.ParseString(hospitalXML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cs, err := sc.ParseAll(paperSCs)
	if err != nil {
		t.Fatalf("scs: %v", err)
	}
	s, err := scheme.Optimal(d, cs)
	if err != nil {
		t.Fatalf("scheme: %v", err)
	}
	return d, s, cryptoprim.MustKeySet("test-master")
}

func TestIntervalOps(t *testing.T) {
	a := Interval{0.1, 0.9}
	b := Interval{0.2, 0.3}
	c := Interval{0.5, 0.6}
	if !a.StrictlyContains(b) || a.StrictlyContains(a) {
		t.Errorf("StrictlyContains wrong")
	}
	if !a.Contains(a) {
		t.Errorf("Contains should allow equality")
	}
	if !b.Before(c) || c.Before(b) {
		t.Errorf("Before wrong")
	}
	if !a.Related(b) || b.Related(c) {
		t.Errorf("Related wrong")
	}
	m := Merge([]Interval{b, c})
	if m.Lo != 0.2 || m.Hi != 0.6 {
		t.Errorf("Merge = %v", m)
	}
	if !a.Valid() || (Interval{0.5, 0.5}).Valid() || (Interval{-0.1, 0.5}).Valid() {
		t.Errorf("Valid wrong")
	}
}

func TestAssignInvariants(t *testing.T) {
	d, _, ks := fixture(t)
	asg := Assign(d, ks)
	if err := asg.Check(d); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if got := asg[d.Root]; got != (Interval{0, 1}) {
		t.Errorf("root interval = %v", got)
	}
	// Text nodes must have no interval; attributes must have one.
	for _, n := range d.Nodes() {
		_, ok := asg[n]
		if n.Kind == xmltree.Text && ok {
			t.Errorf("text node has interval")
		}
		if n.Kind != xmltree.Text && !ok {
			t.Errorf("node %s missing interval", n.Path())
		}
	}
}

func TestAssignGapProperties(t *testing.T) {
	// Figure 3's key property: first child's lower bound exceeds the
	// parent's, last child's upper bound is below the parent's, and
	// gaps between adjacent children are positive.
	d, _, ks := fixture(t)
	asg := Assign(d, ks)
	var check func(n *xmltree.Node)
	check = func(n *xmltree.Node) {
		children := indexableChildren(n)
		if len(children) == 0 {
			return
		}
		piv := asg[n]
		first, last := asg[children[0]], asg[children[len(children)-1]]
		if first.Lo <= piv.Lo {
			t.Errorf("%s: min1 <= parent min", n.Path())
		}
		if last.Hi >= piv.Hi {
			t.Errorf("%s: maxN >= parent max", n.Path())
		}
		for i := 1; i < len(children); i++ {
			if asg[children[i-1]].Hi >= asg[children[i]].Lo {
				t.Errorf("%s: no gap between children %d,%d", n.Path(), i-1, i)
			}
		}
		for _, c := range children {
			check(c)
		}
	}
	check(d.Root)
}

func TestAssignDeterministicPerKey(t *testing.T) {
	d, _, _ := fixture(t)
	k1 := cryptoprim.MustKeySet("k1")
	a1 := Assign(d, k1)
	a2 := Assign(d, k1)
	for n, iv := range a1 {
		if a2[n] != iv {
			t.Fatalf("assignment not deterministic at %s", n.Path())
		}
	}
	k2 := cryptoprim.MustKeySet("k2")
	a3 := Assign(d, k2)
	diff := false
	for n, iv := range a1 {
		if a3[n] != iv {
			diff = true
			break
		}
	}
	if !diff {
		t.Errorf("assignments identical under different keys")
	}
}

func TestBuildMetadataBlocks(t *testing.T) {
	d, s, ks := fixture(t)
	md := BuildMetadata(d, s.BlockRoots, ks)
	if len(md.Blocks.Reps) != s.NumBlocks() {
		t.Fatalf("block table has %d entries, want %d", len(md.Blocks.Reps), s.NumBlocks())
	}
	for id, root := range s.BlockRoots {
		if md.Blocks.Reps[id] != md.Assignment[root] {
			t.Errorf("rep interval of block %d mismatch", id)
		}
		if md.NodeBlock[root] != id {
			t.Errorf("root of block %d not assigned to it", id)
		}
		for _, desc := range root.Descendants() {
			if md.NodeBlock[desc] != id {
				t.Errorf("descendant %s not in block %d", desc.Path(), id)
			}
		}
	}
	// Plaintext nodes: -1.
	if md.NodeBlock[d.Root] != -1 {
		t.Errorf("root should be plaintext under opt scheme")
	}
}

func TestTagLabelEncryption(t *testing.T) {
	d, s, ks := fixture(t)
	md := BuildMetadata(d, s.BlockRoots, ks)
	// Unencrypted tags appear in plaintext.
	if len(md.Table.Lookup("patient")) != 2 {
		t.Errorf("patient intervals = %v", md.Table.Lookup("patient"))
	}
	if len(md.Table.Lookup("hospital")) != 1 {
		t.Errorf("hospital missing from table")
	}
	// Encrypted tags never appear in plaintext.
	for _, tag := range []string{"insurance", "policy", "@coverage"} {
		if len(md.Table.Lookup(tag)) != 0 {
			t.Errorf("encrypted tag %q leaked in plaintext", tag)
		}
	}
	if got := len(md.Table.Lookup(ks.EncryptTag("insurance"))); got != 2 {
		t.Errorf("encrypted insurance entries = %d, want 2", got)
	}
	// disease is in the optimal cover: encrypted.
	if got := len(md.Table.Lookup(ks.EncryptTag("disease"))); got != 3 {
		t.Errorf("encrypted disease entries = %d, want 3", got)
	}
}

func TestGroupingAdjacentSameBlock(t *testing.T) {
	d, s, ks := fixture(t)
	md := BuildMetadata(d, s.BlockRoots, ks)
	// Betty's insurance block contains two adjacent policy elements:
	// they must be grouped into ONE interval (§5.1.1).
	entries := md.Table.Lookup(ks.EncryptTag("policy"))
	// 2 policies grouped in block of patient 1 + 1 policy of patient 2 = 2 entries.
	if len(entries) != 2 {
		t.Fatalf("policy entries = %d (%v), want 2 after grouping", len(entries), entries)
	}
	// The grouped interval spans both originals.
	ins1 := d.Root.ElementChildren()[0].ElementChildren()[2]
	p1 := md.Assignment[ins1.ElementChildren()[0]]
	p2 := md.Assignment[ins1.ElementChildren()[1]]
	want := Merge([]Interval{p1, p2})
	found := false
	for _, e := range entries {
		if e.Equal(want) {
			found = true
		}
	}
	if !found {
		t.Errorf("grouped interval %v not found in %v", want, entries)
	}
}

func TestNoGroupingAcrossBlocks(t *testing.T) {
	d, s, ks := fixture(t)
	md := BuildMetadata(d, s.BlockRoots, ks)
	// Matt has two adjacent treat elements, each containing a
	// disease block — the two disease nodes are in DIFFERENT blocks
	// and not siblings, so they are never grouped.
	if got := len(md.Table.Lookup(ks.EncryptTag("disease"))); got != 3 {
		t.Errorf("disease entries = %d, want 3 (no cross-block grouping)", got)
	}
	// The two plaintext patient siblings are unencrypted: not grouped.
	if got := len(md.Table.Lookup("patient")); got != 2 {
		t.Errorf("patient entries = %d, want 2 (plaintext, ungrouped)", got)
	}
}

func TestBlockIDFor(t *testing.T) {
	d, s, ks := fixture(t)
	md := BuildMetadata(d, s.BlockRoots, ks)
	for id, root := range s.BlockRoots {
		// The rep interval itself maps to its block.
		if got := md.Blocks.BlockIDFor(md.Assignment[root]); got != id {
			t.Errorf("BlockIDFor(rep %d) = %d", id, got)
		}
		// Any interval inside the block maps to it too.
		for _, desc := range root.Descendants() {
			if desc.Kind == xmltree.Text {
				continue
			}
			if got := md.Blocks.BlockIDFor(md.Assignment[desc]); got != id {
				t.Errorf("BlockIDFor(desc of %d) = %d", id, got)
			}
		}
	}
	// Plaintext node intervals map to no block.
	if got := md.Blocks.BlockIDFor(md.Assignment[d.Root]); got != -1 {
		t.Errorf("BlockIDFor(root) = %d, want -1", got)
	}
}

func TestForestStructure(t *testing.T) {
	d, s, ks := fixture(t)
	md := BuildMetadata(d, s.BlockRoots, ks)
	f := BuildForest(md.Table)
	if f.Size() != md.Table.NumEntries() {
		t.Errorf("forest size %d != table entries %d", f.Size(), md.Table.NumEntries())
	}
	rootIv := md.Assignment[d.Root]
	if _, ok := f.ParentOf(rootIv); ok {
		t.Errorf("root interval has a parent")
	}
	pat1 := md.Assignment[d.Root.ElementChildren()[0]]
	if p, ok := f.ParentOf(pat1); !ok || !p.Equal(rootIv) {
		t.Errorf("parent of patient = %v, %v", p, ok)
	}
	if !f.IsChild(rootIv, pat1) {
		t.Errorf("IsChild(root, patient) false")
	}
	if !f.IsDesc(rootIv, pat1) {
		t.Errorf("IsDesc(root, patient) false")
	}
	// Grandchild is desc but not child.
	pname1 := md.Assignment[d.Root.ElementChildren()[0].ElementChildren()[0]]
	if f.IsChild(rootIv, pname1) {
		t.Errorf("IsChild(root, pname) should be false")
	}
	if !f.IsDesc(rootIv, pname1) {
		t.Errorf("IsDesc(root, pname) should be true")
	}
}

func TestForestSiblings(t *testing.T) {
	d, s, ks := fixture(t)
	md := BuildMetadata(d, s.BlockRoots, ks)
	f := BuildForest(md.Table)
	p1 := md.Assignment[d.Root.ElementChildren()[0]]
	p2 := md.Assignment[d.Root.ElementChildren()[1]]
	if !f.AreSiblings(p1, p2) {
		t.Errorf("patients should be siblings")
	}
	if !f.FollowingSibling(p1, p2) || f.FollowingSibling(p2, p1) {
		t.Errorf("FollowingSibling direction wrong")
	}
	pname1 := md.Assignment[d.Root.ElementChildren()[0].ElementChildren()[0]]
	if f.AreSiblings(p1, pname1) {
		t.Errorf("parent/child are not siblings")
	}
}

// Property: for random small documents, the DSI assignment always
// satisfies the structural invariants and the forest reconstructs
// exactly the parent relation at table granularity when no grouping
// occurs (all blocks absent).
func TestQuickAssignInvariant(t *testing.T) {
	ks := cryptoprim.MustKeySet("quick")
	f := func(seed uint32) bool {
		d := genDoc(seed)
		asg := Assign(d, ks)
		if err := asg.Check(d); err != nil {
			t.Logf("Check: %v", err)
			return false
		}
		md := BuildMetadata(d, nil, ks)
		forest := BuildForest(md.Table)
		ok := true
		d.Root.Walk(func(n *xmltree.Node) bool {
			if n.Kind == xmltree.Text || n.Parent == nil {
				return true
			}
			p, has := forest.ParentOf(asg[n])
			if !has || !p.Equal(asg[n.Parent]) {
				ok = false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func genDoc(seed uint32) *xmltree.Document {
	s := seed
	next := func(n uint32) uint32 {
		s = s*1664525 + 1013904223
		return (s >> 16) % n
	}
	tags := []string{"a", "b", "c", "d"}
	var build func(depth int) *xmltree.Node
	build = func(depth int) *xmltree.Node {
		e := xmltree.NewElement(tags[next(uint32(len(tags)))])
		if depth >= 3 || next(4) == 0 {
			e.AppendChild(xmltree.NewText("v"))
			return e
		}
		n := int(next(4)) + 1
		for i := 0; i < n; i++ {
			e.AppendChild(build(depth + 1))
		}
		return e
	}
	return xmltree.NewDocument(build(0))
}
