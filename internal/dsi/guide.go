package dsi

// The guide is a strong-DataGuide-style structure synopsis over the
// DSI table: every table interval is assigned to exactly one *path
// class* — the equivalence class of intervals reached from a forest
// root through the same sequence of table labels. Two properties make
// it useful to the server's query planner:
//
//   - It is exact at class granularity: an interval's forest parent
//     always lies in the class's parent class, so label-path
//     reachability questions ("can anything under this class have a
//     'reference/source' descendant?") are decidable from the guide
//     alone, without touching a single interval.
//   - It is small: its size is the number of *distinct label paths*
//     of the hosted document, which for real documents is orders of
//     magnitude below the interval count. Walking the whole guide per
//     query is cheap; walking the whole interval table is not.
//
// Grouping does not disturb the guide: a grouped interval carries the
// run's (single) tag label and sits at the run's position in the
// forest, so it lands in the same class its members would have.
//
// The guide is built once per hosted structure. Updates in this
// extension are value-level and structure-preserving, so the guide is
// immutable for the lifetime of the hosted database and can be shared
// by every MVCC snapshot; the per-generation half of the synopsis
// (value-index band occupancy) lives with the snapshot instead.
type Guide struct {
	nodes []GuideNode
	roots []int32
	// classOf maps each table interval to its (single) class.
	classOf map[Interval]int32
}

// GuideNode is one path class of the guide.
type GuideNode struct {
	// Label is the DSI table label every interval of the class is
	// filed under (encrypted for encrypted tags — the guide sees only
	// what the server sees).
	Label string
	// Parent is the parent class index, -1 for root classes.
	Parent int32
	// Children are the classes whose intervals are forest children of
	// this class's intervals.
	Children []int32
	// Intervals are the class members, Lo-sorted (a subsequence of the
	// table's sorted order, so Within's binary-search contract holds).
	Intervals []Interval
}

// BuildGuide derives the path-class synopsis from a DSI table and its
// interval forest. It returns nil when some interval is filed under
// more than one table label — then the single-class-per-interval
// invariant the planner's pruning relies on does not hold and callers
// must treat the structure as having no synopsis. (The builder never
// produces such tables: each node contributes its one tag label.)
func BuildGuide(t *Table, f *Forest) *Guide {
	labelOf := make(map[Interval]string, f.Size())
	for label, ivs := range t.ByTag {
		for _, iv := range ivs {
			if prev, ok := labelOf[iv]; ok && prev != label {
				return nil
			}
			labelOf[iv] = label
		}
	}
	g := &Guide{classOf: make(map[Interval]int32, f.Size())}
	type classKey struct {
		parent int32
		label  string
	}
	classIdx := map[classKey]int32{}
	// Forest items are ordered containers-first, so a parent's class
	// exists before any of its children are classified.
	for _, it := range f.items {
		iv := it.iv
		label, ok := labelOf[iv]
		if !ok {
			return nil // table and forest disagree; no synopsis
		}
		parent := int32(-1)
		if it.parent >= 0 {
			parent = g.classOf[f.items[it.parent].iv]
		}
		key := classKey{parent: parent, label: label}
		ci, ok := classIdx[key]
		if !ok {
			ci = int32(len(g.nodes))
			g.nodes = append(g.nodes, GuideNode{Label: label, Parent: parent})
			classIdx[key] = ci
			if parent < 0 {
				g.roots = append(g.roots, ci)
			} else {
				g.nodes[parent].Children = append(g.nodes[parent].Children, ci)
			}
		}
		g.nodes[ci].Intervals = append(g.nodes[ci].Intervals, iv)
		g.classOf[iv] = ci
	}
	// Forest iteration is (Lo asc, Hi desc)-ordered, so each class's
	// member list is already Lo-sorted.
	return g
}

// NumClasses returns the number of path classes (distinct label
// paths) in the guide.
func (g *Guide) NumClasses() int { return len(g.nodes) }

// Node returns the class with index ci.
func (g *Guide) Node(ci int32) *GuideNode { return &g.nodes[ci] }

// Roots returns the root class indexes.
func (g *Guide) Roots() []int32 { return g.roots }

// ClassOf returns the class index of a table interval, -1 when the
// interval is not in the table.
func (g *Guide) ClassOf(iv Interval) int32 {
	if ci, ok := g.classOf[iv]; ok {
		return ci
	}
	return -1
}

// Count returns the number of intervals in class ci — the planner's
// DSI interval-group cardinality for the class's label path. Grouping
// makes this a lower bound on the node count, which is exactly the
// granularity the server is allowed to see.
func (g *Guide) Count(ci int32) int { return len(g.nodes[ci].Intervals) }
