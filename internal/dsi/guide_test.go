package dsi

import "testing"

// TestBuildGuideClasses pins the path-class semantics on a hand-built
// laminar family: same (parent class, label) pairs merge into one
// class, the same label under different parents splits, and the
// parent pointers mirror the forest.
func TestBuildGuideClasses(t *testing.T) {
	a := Interval{Lo: 0, Hi: 1}
	b1 := Interval{Lo: 0.1, Hi: 0.2}
	b2 := Interval{Lo: 0.3, Hi: 0.4}
	c1 := Interval{Lo: 0.12, Hi: 0.15} // c under first b
	c2 := Interval{Lo: 0.32, Hi: 0.35} // c under second b — same class as c1 (same parent CLASS)
	d := Interval{Lo: 0.5, Hi: 0.6}    // c directly under a — different parent class, own class
	tb := &Table{ByTag: map[string][]Interval{
		"a": {a},
		"b": {b1, b2},
		"c": {c1, c2, d},
	}}
	f := BuildForest(tb)
	g := BuildGuide(tb, f)
	if g == nil {
		t.Fatal("BuildGuide returned nil for a clean table")
	}
	if g.NumClasses() != 4 {
		t.Fatalf("NumClasses = %d, want 4 (a, a/b, a/b/c, a/c)", g.NumClasses())
	}
	if len(g.Roots()) != 1 || g.Node(g.Roots()[0]).Label != "a" {
		t.Fatalf("roots = %v", g.Roots())
	}
	root := g.Roots()[0]
	if g.ClassOf(b1) != g.ClassOf(b2) {
		t.Fatal("same label under the same parent class split into two classes")
	}
	bClass := g.ClassOf(b1)
	if g.Count(bClass) != 2 {
		t.Fatalf("b class counts %d intervals, want 2", g.Count(bClass))
	}
	if g.Node(bClass).Parent != root {
		t.Fatalf("b class parent = %d, want root %d", g.Node(bClass).Parent, root)
	}
	if g.ClassOf(c1) != g.ClassOf(c2) {
		t.Fatal("c under the two b's must share one class (same parent class)")
	}
	if g.ClassOf(d) == g.ClassOf(c1) {
		t.Fatal("c under a and c under b must be distinct classes")
	}
	if g.Node(g.ClassOf(c1)).Parent != bClass {
		t.Fatal("a/b/c class must hang off the b class")
	}
	if g.Node(g.ClassOf(d)).Parent != root {
		t.Fatal("a/c class must hang off the root class")
	}
}

// TestBuildGuideRejectsMultiLabel: an interval filed under two table
// labels breaks the single-class invariant; the builder must refuse
// (callers then run pairwise, never over a wrong synopsis).
func TestBuildGuideRejectsMultiLabel(t *testing.T) {
	iv := Interval{Lo: 0.2, Hi: 0.4}
	tb := &Table{ByTag: map[string][]Interval{"x": {iv}, "y": {iv}}}
	if g := BuildGuide(tb, BuildForest(tb)); g != nil {
		t.Fatal("multi-label interval must disable the synopsis")
	}
}
