package dsi

import (
	"fmt"
	"strconv"

	"repro/internal/cryptoprim"
	"repro/internal/xmltree"
)

// Incremental maintenance of a DSI assignment under node insertion
// and deletion. The w1,w2 weight scheme of Figure 3 leaves a strictly
// positive random gap on both sides of every child interval; an
// insertion can therefore usually be served by carving the new
// interval out of the gap at its position — no existing node moves,
// so no index-table entry for a surviving node needs re-issuing. Only
// when repeated insertions have squeezed a gap below floating-point
// resolution does the parent's subtree fall back to full
// re-derivation (assignChildren), which redistributes the parent
// interval evenly again.

// InsertChild assigns an interval to child, which the caller has
// already linked under parent (any position among its indexable
// children), and recursively to child's own descendants. It returns
// true when the gap headroom sufficed — every pre-existing interval
// is untouched — and false when headroom was exhausted and the whole
// subtree under parent was re-derived.
func (asg Assignment) InsertChild(parent, child *xmltree.Node, keys *cryptoprim.KeySet) (bool, error) {
	piv, ok := asg[parent]
	if !ok {
		return false, fmt.Errorf("dsi: insert under %s: parent has no interval", parent.Path())
	}
	siblings := indexableChildren(parent)
	pos := -1
	for i, c := range siblings {
		if c == child {
			pos = i
			break
		}
	}
	if pos < 0 {
		return false, fmt.Errorf("dsi: insert: child not linked under %s", parent.Path())
	}

	// The free gap at the insertion point: from the previous indexable
	// sibling's upper bound (or the parent's lower bound) to the next
	// sibling's lower bound (or the parent's upper bound). The child
	// itself is already linked, so its neighbors sit at pos-1 / pos+1.
	gap := Interval{Lo: piv.Lo, Hi: piv.Hi}
	if pos > 0 {
		prev, ok := asg[siblings[pos-1]]
		if !ok {
			return false, fmt.Errorf("dsi: insert: sibling %s has no interval", siblings[pos-1].Path())
		}
		gap.Lo = prev.Hi
	}
	if pos+1 < len(siblings) {
		next, ok := asg[siblings[pos+1]]
		if !ok {
			return false, fmt.Errorf("dsi: insert: sibling %s has no interval", siblings[pos+1].Path())
		}
		gap.Hi = next.Lo
	}

	// Mini-assignment with N=1 inside the gap: the same d/w1/w2 shape
	// as Figure 3, so the server cannot distinguish a carved-in child
	// from an original one.
	d := (gap.Hi - gap.Lo) / 3
	sig := "ins:" + strconv.Itoa(parent.ID) + ":" + strconv.Itoa(child.ID)
	w1 := keys.DSIWeight(sig, pos, 1)
	w2 := keys.DSIWeight(sig, pos, 2)
	civ := Interval{
		Lo: gap.Lo + d - w1*d,
		Hi: gap.Lo + 2*d + w2*d,
	}
	if civ.Valid() && piv.StrictlyContains(civ) && gap.Lo < civ.Lo && civ.Hi < gap.Hi {
		asg[child] = civ
		assignChildren(child, civ, keys, asg)
		return true, nil
	}

	// Headroom exhausted (the gap collapsed below float64 resolution):
	// re-derive every interval under parent from its own interval.
	asg.reassignSubtree(parent, keys)
	return false, nil
}

// RemoveNode drops n and its whole subtree from the assignment; the
// caller unlinks n from the tree. Removal never disturbs neighbors —
// the freed interval simply widens the gap headroom later insertions
// consume.
func (asg Assignment) RemoveNode(n *xmltree.Node) {
	delete(asg, n)
	for _, c := range n.Children {
		asg.RemoveNode(c)
	}
}

// reassignSubtree re-derives every interval strictly below parent
// from parent's (unchanged) interval.
func (asg Assignment) reassignSubtree(parent *xmltree.Node, keys *cryptoprim.KeySet) {
	for _, c := range parent.Children {
		asg.RemoveNode(c)
	}
	assignChildren(parent, asg[parent], keys, asg)
}
