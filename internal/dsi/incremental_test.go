package dsi

import (
	"testing"
	"testing/quick"

	"repro/internal/cryptoprim"
	"repro/internal/xmltree"
)

// indexableNodes collects every element and attribute node in
// document (preorder) order.
func indexableNodes(doc *xmltree.Document) []*xmltree.Node {
	var out []*xmltree.Node
	doc.Root.Walk(func(n *xmltree.Node) bool {
		if n.Kind != xmltree.Text {
			out = append(out, n)
		}
		return true
	})
	return out
}

// insertAt splices c under parent at child position idx and sets the
// parent link (the raw form of AppendChild, for arbitrary positions).
func insertAt(parent, c *xmltree.Node, idx int) {
	c.Parent = parent
	parent.Children = append(parent.Children[:idx],
		append([]*xmltree.Node{c}, parent.Children[idx:]...)...)
}

// equivalentToFresh verifies that the incrementally maintained
// assignment induces the same structure as a from-scratch Assign of
// the mutated document: preorder document order by Lo, and the same
// pairwise containment/before relations (which is what Within and the
// structural joins consume).
func equivalentToFresh(t *testing.T, doc *xmltree.Document, asg Assignment, ks *cryptoprim.KeySet) bool {
	t.Helper()
	nodes := indexableNodes(doc)
	fresh := Assign(doc, ks)
	prev := -1.0
	for _, n := range nodes {
		iv, ok := asg[n]
		if !ok {
			t.Logf("node %s missing from incremental assignment", n.Path())
			return false
		}
		if iv.Lo <= prev {
			t.Logf("preorder Lo not increasing at %s", n.Path())
			return false
		}
		prev = iv.Lo
	}
	if len(asg) != len(fresh) {
		t.Logf("incremental has %d intervals, fresh %d", len(asg), len(fresh))
		return false
	}
	for i, a := range nodes {
		for j, b := range nodes {
			if i == j {
				continue
			}
			if asg[a].StrictlyContains(asg[b]) != fresh[a].StrictlyContains(fresh[b]) {
				t.Logf("containment of (%s, %s) disagrees with fresh derivation", a.Path(), b.Path())
				return false
			}
			if asg[a].Before(asg[b]) != fresh[a].Before(fresh[b]) {
				t.Logf("order of (%s, %s) disagrees with fresh derivation", a.Path(), b.Path())
				return false
			}
		}
	}
	return true
}

// Property: a randomized sequence of incremental insertions and
// deletions preserves the Figure 3 invariants (Check) and stays
// structurally equivalent — order, laminarity, Within semantics — to
// re-deriving the whole document from scratch after every operation.
func TestQuickIncrementalInsertDelete(t *testing.T) {
	ks := cryptoprim.MustKeySet("quick-incremental")
	f := func(seed uint32) bool {
		s := seed
		next := func(n uint32) uint32 {
			s = s*1664525 + 1013904223
			return (s >> 16) % n
		}
		doc := genDoc(seed)
		asg := Assign(doc, ks)
		for op := 0; op < 25; op++ {
			nodes := indexableNodes(doc)
			if next(3) != 0 || len(nodes) < 3 {
				// Insert a small subtree at a random position under a
				// random element.
				var parents []*xmltree.Node
				for _, n := range nodes {
					if n.Kind == xmltree.Element {
						parents = append(parents, n)
					}
				}
				p := parents[next(uint32(len(parents)))]
				c := xmltree.NewElement("z")
				if next(2) == 0 {
					c.AppendChild(xmltree.NewElement("y"))
				}
				insertAt(p, c, int(next(uint32(len(p.Children)+1))))
				if _, err := asg.InsertChild(p, c, ks); err != nil {
					t.Logf("insert: %v", err)
					return false
				}
			} else {
				// Delete a random non-root element subtree.
				var victims []*xmltree.Node
				for _, n := range nodes {
					if n != doc.Root && n.Kind == xmltree.Element {
						victims = append(victims, n)
					}
				}
				if len(victims) == 0 {
					continue
				}
				v := victims[next(uint32(len(victims)))]
				v.Parent.RemoveChild(v)
				asg.RemoveNode(v)
			}
			if err := asg.Check(doc); err != nil {
				t.Logf("after op %d: %v", op, err)
				return false
			}
			if !equivalentToFresh(t, doc, asg, ks) {
				t.Logf("after op %d: diverged from fresh derivation", op)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Incremental insertion must not move any pre-existing interval —
// that is the whole point (no index-table re-issue for survivors).
func TestIncrementalInsertLeavesNeighborsUntouched(t *testing.T) {
	ks := cryptoprim.MustKeySet("incr-neighbors")
	doc := xmltree.MustParse("<r><a/><b/><c/></r>")
	asg := Assign(doc, ks)
	before := map[*xmltree.Node]Interval{}
	for n, iv := range asg {
		before[n] = iv
	}

	c := xmltree.NewElement("x")
	insertAt(doc.Root, c, 1) // between <a/> and <b/>
	incr, err := asg.InsertChild(doc.Root, c, ks)
	if err != nil {
		t.Fatal(err)
	}
	if !incr {
		t.Fatal("first insertion into a fresh gap fell back to re-derivation")
	}
	for n, iv := range before {
		if asg[n] != iv {
			t.Fatalf("insertion moved %s: %v -> %v", n.Path(), iv, asg[n])
		}
	}
	if err := asg.Check(doc); err != nil {
		t.Fatal(err)
	}
}

// Hammering one gap must eventually exhaust its float64 headroom and
// trigger the re-derivation fallback — and the assignment must be
// valid both before and after that cliff.
func TestIncrementalInsertExhaustsHeadroom(t *testing.T) {
	ks := cryptoprim.MustKeySet("incr-exhaust")
	doc := xmltree.MustParse("<r><a><b/></a></r>")
	asg := Assign(doc, ks)
	// Squeeze a gap whose lower bound is non-zero (inside <a>), so
	// float64 absorption — Lo + d rounding back to Lo — is reachable
	// in tens of insertions rather than hundreds (a gap anchored at
	// exactly 0.0 can shrink into denormals for ~500 rounds).
	parent := doc.Root.Children[0]

	fallbacks, incremental := 0, 0
	for i := 0; i < 200; i++ {
		c := xmltree.NewElement("z")
		insertAt(parent, c, 0) // always squeeze the leftmost gap
		incr, err := asg.InsertChild(parent, c, ks)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if incr {
			incremental++
		} else {
			fallbacks++
		}
		if err := asg.Check(doc); err != nil {
			t.Fatalf("after insert %d (incr=%v): %v", i, incr, err)
		}
	}
	if fallbacks == 0 {
		t.Fatal("200 same-gap insertions never exhausted the headroom")
	}
	if incremental == 0 {
		t.Fatal("no insertion used the gap headroom")
	}
	t.Logf("incremental=%d fallbacks=%d", incremental, fallbacks)
}

// Deletion frees the subtree's intervals without disturbing anything
// else, and the freed range is reusable headroom.
func TestRemoveNodeFreesSubtree(t *testing.T) {
	ks := cryptoprim.MustKeySet("incr-remove")
	doc := xmltree.MustParse("<r><a><b/><c/></a><d/></r>")
	asg := Assign(doc, ks)
	a := doc.Root.Children[0]
	d := doc.Root.Children[1]
	dIv := asg[d]
	removed := append([]*xmltree.Node{a}, a.Descendants()...)

	doc.Root.RemoveChild(a)
	asg.RemoveNode(a)
	for _, n := range removed {
		if _, ok := asg[n]; ok {
			t.Fatalf("removed node %s still assigned", n.Tag)
		}
	}
	if asg[d] != dIv {
		t.Fatalf("removal moved sibling d: %v -> %v", dIv, asg[d])
	}
	if err := asg.Check(doc); err != nil {
		t.Fatal(err)
	}

	// The freed range is available again: a new child carves into it.
	c := xmltree.NewElement("e")
	insertAt(doc.Root, c, 0)
	incr, err := asg.InsertChild(doc.Root, c, ks)
	if err != nil {
		t.Fatal(err)
	}
	if !incr {
		t.Fatal("insertion into a freed gap fell back")
	}
	if err := asg.Check(doc); err != nil {
		t.Fatal(err)
	}
}
