// Package dsi implements the paper's discontinuous structural
// interval index (§5.1): every element and attribute node is
// assigned a subinterval of its parent's interval with random gaps
// on both sides (Figure 3), so that — unlike the classical
// continuous interval scheme — grouping adjacent same-tag intervals
// in the index table leaves the server unable to tell how many nodes
// an interval represents or whether grouping happened at all.
//
// The package also builds the two metadata tables placed on the
// server (§5.1.1): the DSI index table (tag, encrypted when the node
// is encrypted, → grouped intervals) and the encryption block table
// (representative interval → block ID), and provides the interval
// forest used to compute structural joins on the server.
package dsi

import (
	"fmt"
	"sort"
)

// Interval is a DSI index entry [Lo, Hi] ⊂ [0, 1]. Intervals of a
// document form a laminar family: two intervals are either disjoint
// or one strictly contains the other.
type Interval struct {
	Lo, Hi float64
}

func (iv Interval) String() string { return fmt.Sprintf("[%.9f, %.9f]", iv.Lo, iv.Hi) }

// Valid reports Lo < Hi within the unit interval.
func (iv Interval) Valid() bool { return 0 <= iv.Lo && iv.Lo < iv.Hi && iv.Hi <= 1 }

// StrictlyContains reports that o lies strictly inside iv.
func (iv Interval) StrictlyContains(o Interval) bool {
	return iv.Lo < o.Lo && o.Hi < iv.Hi
}

// Contains reports o ⊆ iv (equality allowed).
func (iv Interval) Contains(o Interval) bool {
	return iv.Lo <= o.Lo && o.Hi <= iv.Hi
}

// Equal reports exact equality.
func (iv Interval) Equal(o Interval) bool { return iv == o }

// Before reports that iv ends before o starts (document order for
// disjoint intervals; implements the following axis).
func (iv Interval) Before(o Interval) bool { return iv.Hi < o.Lo }

// Related reports laminar overlap: equal, containing or contained.
// In a laminar family this is the only alternative to disjointness.
func (iv Interval) Related(o Interval) bool {
	return iv.Contains(o) || o.Contains(iv)
}

// Merge returns the interval spanning a run of grouped siblings:
// lower bound of the leftmost, upper bound of the rightmost (§5.1.1).
func Merge(ivs []Interval) Interval {
	out := ivs[0]
	for _, iv := range ivs[1:] {
		if iv.Lo < out.Lo {
			out.Lo = iv.Lo
		}
		if iv.Hi > out.Hi {
			out.Hi = iv.Hi
		}
	}
	return out
}

// SortIntervals orders intervals by (Lo asc, Hi desc) so a container
// precedes everything it contains; the order is also document order
// for disjoint intervals.
func SortIntervals(ivs []Interval) {
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Lo != ivs[j].Lo {
			return ivs[i].Lo < ivs[j].Lo
		}
		return ivs[i].Hi > ivs[j].Hi
	})
}

// Within returns the subslice of the Lo-sorted list ivs that lies
// strictly inside ctx. In a laminar family an interval whose lower
// bound falls inside ctx is entirely inside ctx, so a binary search
// on Lo suffices — this is what makes the server's structural joins
// O(log n + answer) instead of a scan.
func Within(ivs []Interval, ctx Interval) []Interval {
	lo := sort.Search(len(ivs), func(i int) bool { return ivs[i].Lo > ctx.Lo })
	hi := sort.Search(len(ivs), func(i int) bool { return ivs[i].Lo >= ctx.Hi })
	return ivs[lo:hi]
}
