package dsi

import "sort"

// Batched structural joins over sorted interval lists — the
// "standard structural join algorithms" the paper's server runs
// (§6.2, citing Al-Khalifa et al.'s sort-merge joins). Where the
// per-context probe costs O(|ctx| · log n), these merge the whole
// context set against a label's candidate list in one pass:
// O(|ctx| + |cand| + answer).

// Outermost returns the maximal intervals of a sorted laminar list:
// every input interval is contained in exactly one output interval,
// and the outputs are disjoint and ascending. Containment in the
// input set is then equivalent to containment in one of the outputs.
func Outermost(ivs []Interval) []Interval {
	var out []Interval
	for _, iv := range ivs {
		if len(out) > 0 && out[len(out)-1].Contains(iv) {
			continue
		}
		out = append(out, iv)
	}
	return out
}

// DescendantJoin returns the candidates strictly inside at least one
// context interval. Both lists must be sorted (SortIntervals order);
// the result preserves candidate order. This is the batched form of
// the descendant axis.
func DescendantJoin(ctxs, cands []Interval) []Interval {
	anc := Outermost(ctxs)
	var out []Interval
	i := 0
	for _, c := range cands {
		for i < len(anc) && anc[i].Hi <= c.Lo {
			i++
		}
		if i < len(anc) && anc[i].Lo < c.Lo && c.Hi < anc[i].Hi {
			out = append(out, c)
		}
	}
	return out
}

// ChildJoin returns the candidates whose forest parent is one of the
// context intervals. cands must be sorted; ctxs may be in any order.
func ChildJoin(f *Forest, ctxs, cands []Interval) []Interval {
	inCtx := make(map[Interval]bool, len(ctxs))
	for _, c := range ctxs {
		inCtx[c] = true
	}
	var out []Interval
	for _, c := range cands {
		if p, ok := f.ParentOf(c); ok && inCtx[p] {
			out = append(out, c)
		}
	}
	return out
}

// SortedByLo reports whether the list is in SortIntervals order;
// join inputs are expected to satisfy it (debug helper for tests).
func SortedByLo(ivs []Interval) bool {
	return sort.SliceIsSorted(ivs, func(i, j int) bool {
		if ivs[i].Lo != ivs[j].Lo {
			return ivs[i].Lo < ivs[j].Lo
		}
		return ivs[i].Hi > ivs[j].Hi
	})
}
