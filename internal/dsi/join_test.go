package dsi

import (
	"testing"
	"testing/quick"

	"repro/internal/cryptoprim"
)

func TestOutermost(t *testing.T) {
	ivs := []Interval{
		{Lo: 0.1, Hi: 0.9},
		{Lo: 0.2, Hi: 0.3}, // inside first
		{Lo: 0.4, Hi: 0.5}, // inside first
		{Lo: 0.91, Hi: 0.95},
	}
	out := Outermost(ivs)
	if len(out) != 2 || out[0] != ivs[0] || out[1] != ivs[3] {
		t.Errorf("Outermost = %v", out)
	}
	if got := Outermost(nil); got != nil {
		t.Errorf("Outermost(nil) = %v", got)
	}
}

func TestDescendantJoinMatchesPerContext(t *testing.T) {
	d := genDoc(7)
	ks := cryptoprim.MustKeySet("join")
	md := BuildMetadata(d, nil, ks)
	all := md.Table.AllIntervals()
	// Contexts: every interval of one tag; candidates: all intervals.
	for tag := range md.Table.ByTag {
		ctxs := md.Table.Lookup(tag)
		got := DescendantJoin(ctxs, all)
		// Reference: per-context Within, deduped in order.
		seen := map[Interval]bool{}
		var want []Interval
		for _, c := range all {
			for _, ctx := range ctxs {
				if ctx.StrictlyContains(c) && !seen[c] {
					seen[c] = true
					want = append(want, c)
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("tag %s: join %d vs reference %d", tag, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("tag %s: element %d differs", tag, i)
			}
		}
	}
}

func TestChildJoinMatchesForest(t *testing.T) {
	d := genDoc(9)
	ks := cryptoprim.MustKeySet("join2")
	md := BuildMetadata(d, nil, ks)
	f := BuildForest(md.Table)
	all := md.Table.AllIntervals()
	for tag := range md.Table.ByTag {
		ctxs := md.Table.Lookup(tag)
		got := ChildJoin(f, ctxs, all)
		var want []Interval
		for _, c := range all {
			if p, ok := f.ParentOf(c); ok {
				for _, ctx := range ctxs {
					if p.Equal(ctx) {
						want = append(want, c)
						break
					}
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("tag %s: child join %d vs reference %d", tag, len(got), len(want))
		}
	}
}

// Property: on random documents, DescendantJoin equals the
// brute-force containment filter for random context subsets.
func TestQuickDescendantJoin(t *testing.T) {
	ks := cryptoprim.MustKeySet("join-quick")
	f := func(seed uint32, pick uint8) bool {
		d := genDoc(seed)
		md := BuildMetadata(d, nil, ks)
		all := md.Table.AllIntervals()
		if len(all) == 0 {
			return true
		}
		// Random sorted context subset.
		var ctxs []Interval
		for i, iv := range all {
			if (uint32(pick)+uint32(i))%3 == 0 {
				ctxs = append(ctxs, iv)
			}
		}
		got := DescendantJoin(ctxs, all)
		count := 0
		for _, c := range all {
			for _, ctx := range ctxs {
				if ctx.StrictlyContains(c) {
					count++
					break
				}
			}
		}
		return len(got) == count && SortedByLo(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
