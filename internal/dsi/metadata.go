package dsi

import (
	"sort"

	"repro/internal/cryptoprim"
	"repro/internal/xmltree"
)

// Table is the DSI index table (§5.1.1): the mapping from tags — in
// encrypted form when the node lies in an encryption block — to
// their DSI index entries, with runs of adjacent same-tag nodes of
// the same block grouped into a single interval so the server cannot
// count them.
type Table struct {
	ByTag map[string][]Interval
}

// BlockTable is the encryption block table (§5.1.1): representative
// interval (the interval of the block's subtree root) to block ID.
type BlockTable struct {
	// Reps[i] is the representative interval of block ID i.
	Reps []Interval
}

// BlockIDFor returns the ID of the block whose representative
// interval is related (in the laminar sense) to iv and is the
// tightest such: the block that physically contains the node the
// interval denotes. Returns -1 when the interval lies outside every
// block, i.e. the node is stored in plaintext.
func (bt *BlockTable) BlockIDFor(iv Interval) int {
	best := -1
	for id, rep := range bt.Reps {
		if rep.Contains(iv) {
			if best < 0 || bt.Reps[best].Contains(rep) {
				best = id
			}
		}
	}
	return best
}

// TagLabel returns the label under which a node's intervals are
// stored in the DSI table: the Vernam-encrypted tag when the node is
// inside an encryption block, the plaintext tag otherwise.
// Attribute tags carry their "@" prefix into encryption so that
// elements and attributes never collide.
func TagLabel(n *xmltree.Node, encrypted bool, keys *cryptoprim.KeySet) string {
	tag := n.Tag
	if n.Kind == xmltree.Attribute {
		tag = "@" + n.Tag
	}
	if encrypted {
		return keys.EncryptTag(tag)
	}
	return tag
}

// Metadata bundles everything the client uploads alongside the
// encrypted document: both tables plus the node-level bookkeeping
// the client (not the server) retains for assembling the upload.
type Metadata struct {
	Table  *Table
	Blocks *BlockTable
	// NodeBlock maps each document node to the ID of the block that
	// contains it, or -1 for plaintext nodes. Client-side only.
	NodeBlock map[*xmltree.Node]int
	// Assignment is the full per-node interval map. Client-side only.
	Assignment Assignment
}

// BuildMetadata assigns DSI intervals and constructs the server
// metadata for a document encrypted with the given block roots.
// blockRoots must be non-nested and in document order (as produced
// by package scheme).
func BuildMetadata(doc *xmltree.Document, blockRoots []*xmltree.Node, keys *cryptoprim.KeySet) *Metadata {
	asg := Assign(doc, keys)
	nodeBlock := map[*xmltree.Node]int{}
	for _, n := range doc.Nodes() {
		nodeBlock[n] = -1
	}
	bt := &BlockTable{}
	for id, root := range blockRoots {
		root.Walk(func(n *xmltree.Node) bool {
			nodeBlock[n] = id
			return true
		})
		bt.Reps = append(bt.Reps, asg[root])
		_ = id
	}

	table := &Table{ByTag: map[string][]Interval{}}
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		children := indexableChildren(n)
		for i := 0; i < len(children); {
			c := children[i]
			bid := nodeBlock[c]
			label := TagLabel(c, bid >= 0, keys)
			// Group a maximal run of adjacent same-tag children
			// encrypted in the same block (§5.1.1).
			j := i + 1
			if bid >= 0 {
				for j < len(children) &&
					children[j].Kind == c.Kind &&
					children[j].Tag == c.Tag &&
					nodeBlock[children[j]] == bid {
					j++
				}
			}
			run := make([]Interval, 0, j-i)
			for k := i; k < j; k++ {
				run = append(run, asg[children[k]])
			}
			table.ByTag[label] = append(table.ByTag[label], Merge(run))
			for k := i; k < j; k++ {
				walk(children[k])
			}
			i = j
		}
	}
	if doc.Root != nil {
		rootLabel := TagLabel(doc.Root, nodeBlock[doc.Root] >= 0, keys)
		table.ByTag[rootLabel] = append(table.ByTag[rootLabel], asg[doc.Root])
		walk(doc.Root)
	}
	for _, ivs := range table.ByTag {
		SortIntervals(ivs)
	}
	return &Metadata{Table: table, Blocks: bt, NodeBlock: nodeBlock, Assignment: asg}
}

// Lookup returns the index entries for a tag label, nil when absent.
func (t *Table) Lookup(label string) []Interval { return t.ByTag[label] }

// AllIntervals returns every interval in the table, sorted so
// containers precede content; this is the server's complete
// structural view of the hosted document.
func (t *Table) AllIntervals() []Interval {
	var out []Interval
	for _, ivs := range t.ByTag {
		out = append(out, ivs...)
	}
	SortIntervals(out)
	return out
}

// NumEntries returns the number of (tag, interval) entries.
func (t *Table) NumEntries() int {
	n := 0
	for _, ivs := range t.ByTag {
		n += len(ivs)
	}
	return n
}

// Forest is the laminar forest the server reconstructs from the DSI
// table intervals; it supports the structural joins of §6.2 (child
// via the paper's desc-with-no-intermediate characterization).
type Forest struct {
	items   []forestItem
	byStart map[Interval]int
}

type forestItem struct {
	iv     Interval
	parent int // index into items, -1 for roots
}

// BuildForest indexes the laminar family of table intervals.
func BuildForest(t *Table) *Forest {
	ivs := t.AllIntervals()
	f := &Forest{byStart: make(map[Interval]int, len(ivs))}
	var stack []int
	for _, iv := range ivs {
		if _, dup := f.byStart[iv]; dup {
			continue // identical interval listed once
		}
		for len(stack) > 0 && !f.items[stack[len(stack)-1]].iv.StrictlyContains(iv) {
			stack = stack[:len(stack)-1]
		}
		parent := -1
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		f.items = append(f.items, forestItem{iv: iv, parent: parent})
		f.byStart[iv] = len(f.items) - 1
		stack = append(stack, len(f.items)-1)
	}
	return f
}

// ParentOf returns the tightest interval strictly containing iv.
func (f *Forest) ParentOf(iv Interval) (Interval, bool) {
	i, ok := f.byStart[iv]
	if !ok || f.items[i].parent < 0 {
		return Interval{}, false
	}
	return f.items[f.items[i].parent].iv, true
}

// IsDesc reports the descendant relation: b strictly inside a.
func (f *Forest) IsDesc(a, b Interval) bool { return a.StrictlyContains(b) }

// IsChild implements the paper's child characterization: desc(a, b)
// with no table interval strictly between them.
func (f *Forest) IsChild(a, b Interval) bool {
	p, ok := f.ParentOf(b)
	return ok && p.Equal(a)
}

// AreSiblings reports that a and b are disjoint and share a parent.
func (f *Forest) AreSiblings(a, b Interval) bool {
	if a.Related(b) {
		return false
	}
	pa, oka := f.ParentOf(a)
	pb, okb := f.ParentOf(b)
	return oka && okb && pa.Equal(pb)
}

// FollowingSibling reports that b is a sibling of a occurring after it.
func (f *Forest) FollowingSibling(a, b Interval) bool {
	return f.AreSiblings(a, b) && a.Before(b)
}

// Intervals returns the distinct intervals of the forest, sorted.
func (f *Forest) Intervals() []Interval {
	out := make([]Interval, len(f.items))
	for i, it := range f.items {
		out[i] = it.iv
	}
	return out
}

// Size returns the number of distinct intervals.
func (f *Forest) Size() int { return len(f.items) }

// SortedReps returns block representative intervals in document order.
func (bt *BlockTable) SortedReps() []Interval {
	out := append([]Interval(nil), bt.Reps...)
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	return out
}
