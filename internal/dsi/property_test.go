package dsi

import (
	"testing"
	"testing/quick"

	"repro/internal/cryptoprim"
)

// familyOf assigns a random document and returns its intervals in
// SortIntervals order — a laminar family, per TestQuickLaminar below,
// which is the precondition Within's binary search rests on.
func familyOf(seed uint32, ks *cryptoprim.KeySet) []Interval {
	asg := Assign(genDoc(seed), ks)
	ivs := make([]Interval, 0, len(asg))
	for _, iv := range asg {
		ivs = append(ivs, iv)
	}
	SortIntervals(ivs)
	return ivs
}

// Property: SortIntervals yields (Lo asc, Hi desc) order — containers
// before their contents — and is a permutation of its input.
func TestQuickSortIntervals(t *testing.T) {
	ks := cryptoprim.MustKeySet("quick-sort")
	f := func(seed uint32) bool {
		asg := Assign(genDoc(seed), ks)
		var in []Interval
		for _, iv := range asg {
			in = append(in, iv) // map iteration: a fresh permutation each run
		}
		counts := map[Interval]int{}
		for _, iv := range in {
			counts[iv]++
		}
		SortIntervals(in)
		for i := 1; i < len(in); i++ {
			a, b := in[i-1], in[i]
			if a.Lo > b.Lo || (a.Lo == b.Lo && a.Hi < b.Hi) {
				t.Logf("order violated at %d: %v then %v", i, a, b)
				return false
			}
		}
		for _, iv := range in {
			counts[iv]--
		}
		for iv, n := range counts {
			if n != 0 {
				t.Logf("multiset changed: %v count %d", iv, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: assigned intervals form a laminar family — every pair is
// related (one contains the other) or strictly disjoint with a gap.
// This is the structural fact Within's binary search and the forest
// construction both depend on.
func TestQuickLaminar(t *testing.T) {
	ks := cryptoprim.MustKeySet("quick-laminar")
	f := func(seed uint32) bool {
		ivs := familyOf(seed, ks)
		for i := 0; i < len(ivs); i++ {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				if !a.Related(b) && !a.Before(b) && !b.Before(a) {
					t.Logf("non-laminar pair: %v, %v", a, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: on a Lo-sorted laminar family, Within agrees with the
// naive O(n) strict-containment filter for every context interval in
// the family — the binary search never clips or over-reaches.
func TestQuickWithin(t *testing.T) {
	ks := cryptoprim.MustKeySet("quick-within")
	f := func(seed uint32) bool {
		ivs := familyOf(seed, ks)
		for _, ctx := range ivs {
			got := Within(ivs, ctx)
			var want []Interval
			for _, iv := range ivs {
				if ctx.StrictlyContains(iv) {
					want = append(want, iv)
				}
			}
			if len(got) != len(want) {
				t.Logf("ctx %v: Within %d, naive %d", ctx, len(got), len(want))
				return false
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Logf("ctx %v: Within[%d]=%v, naive %v", ctx, i, got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
