// Package faultfs is the filesystem seam under the durable-storage
// stack (internal/walog, internal/blockstore, internal/remote's
// persistence). Production code runs on OS, a thin veneer over the
// os package; tests run on Faulty, which wraps OS with the failure
// modes real disks exhibit under power loss and exhaustion:
//
//   - torn writes: a crash cuts an in-flight write mid-way, leaving a
//     partial record (optionally with a garbled final byte, the way a
//     half-programmed sector reads back);
//   - lost unsynced data: anything written after the last successful
//     Sync is discarded at crash;
//   - lost directory entries: a created or renamed file whose parent
//     directory was never fsynced vanishes (or reverts) at crash —
//     the classic "rename is not durable without a dir fsync";
//   - fsync lies: Sync returns success without making anything
//     durable (firmware write caches, virtio defaults);
//   - ENOSPC: writes fail — possibly part-way through — once a byte
//     budget is exhausted;
//   - crash-at-offset kills: the process "dies" after a configured
//     number of bytes reach the disk, failing every later operation.
//
// Faulty operates on a real directory: after Crash + Reopen the
// on-disk state is exactly what a machine would find after power
// loss, so recovery code under test reads real files, not mocks.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// FS is the slice of filesystem the durability stack needs. All
// paths are interpreted as the os package would.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// OpenFile opens path with os.OpenFile semantics for writing
	// (reads go through ReadFile; the stack never mixes the two on
	// one handle).
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	ReadFile(path string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	RemoveAll(path string) error
	ReadDir(path string) ([]os.DirEntry, error)
	Stat(path string) (os.FileInfo, error)
	// SyncDir fsyncs a directory, making its entries (creations,
	// renames, removals) durable.
	SyncDir(path string) error
}

// File is a writable file handle.
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Name() string
}

// OS is the production FS: the os package, plus directory fsync.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

func (OS) ReadFile(path string) ([]byte, error)       { return os.ReadFile(path) }
func (OS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (OS) Remove(path string) error                   { return os.Remove(path) }
func (OS) RemoveAll(path string) error                { return os.RemoveAll(path) }
func (OS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }
func (OS) Stat(path string) (os.FileInfo, error)      { return os.Stat(path) }

// SyncDir opens the directory and fsyncs it — the only portable way
// to make renames and creations durable on POSIX filesystems.
func (OS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ErrCrashed is returned by every operation on a Faulty filesystem
// between Crash (or a triggered crash-at-offset kill) and Reopen —
// the process this FS belonged to is dead.
var ErrCrashed = errors.New("faultfs: filesystem crashed")

// Faulty wraps the real filesystem with injectable faults. Safe for
// concurrent use.
type Faulty struct {
	mu   sync.Mutex
	os   OS
	rng  *rand.Rand
	seed int64

	crashed  bool
	lieSync  bool
	tornTail bool

	// writeBudget < 0 disables the ENOSPC injection; otherwise every
	// written byte decrements it and a write that would cross zero is
	// cut short with ENOSPC.
	writeBudget int64
	// crashAfter < 0 disables the kill trigger; otherwise the
	// filesystem crashes the instant total writes reach it, tearing
	// the write in flight.
	crashAfter   int64
	totalWritten int64

	// files tracks durability state of every path written since the
	// last Reopen; untracked files predate this "boot" and are fully
	// durable.
	files map[string]*fstate
	// renames are entry-level changes not yet covered by a parent
	// directory fsync, applied in order and undone in reverse at
	// crash.
	renames []renameUndo
}

type fstate struct {
	size    int64 // current real length
	durable int64 // length that survives a crash
	// born marks a file created since Reopen whose directory entry
	// has not been fsynced: it vanishes entirely at crash.
	born bool
}

type renameUndo struct {
	dir      string // parent directory whose fsync makes this durable
	old, new string
	// oldData is the source file's content at rename time (restored
	// under the old name at crash — the old entry may survive).
	oldData []byte
	// prevTarget is the clobbered target's content when the target
	// existed and was durable; nil otherwise.
	prevTarget []byte
	hadTarget  bool
	oldWasBorn bool
	oldDurable int64
}

// NewFaulty wraps the real filesystem with fault injection.
// Torn-tail simulation (a crash keeping a random prefix of unsynced
// bytes, with the last kept byte possibly garbled) is on by default.
func NewFaulty(seed int64) *Faulty {
	return &Faulty{
		os:          OS{},
		rng:         rand.New(rand.NewSource(seed)),
		seed:        seed,
		tornTail:    true,
		writeBudget: -1,
		crashAfter:  -1,
		files:       map[string]*fstate{},
	}
}

// LieOnSync makes Sync and SyncDir report success without making
// anything durable — the firmware-write-cache failure mode.
func (f *Faulty) LieOnSync(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lieSync = on
}

// TornTails controls whether crashes keep a garbled partial tail of
// unsynced data (true, the default) or cut cleanly at the last
// synced byte.
func (f *Faulty) TornTails(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tornTail = on
}

// SetWriteBudget arms the ENOSPC injection: after n more written
// bytes, writes fail with syscall.ENOSPC (cut short mid-write, the
// way a full disk actually fails). n < 0 disarms it.
func (f *Faulty) SetWriteBudget(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget = n
}

// CrashAfterWrites arms the kill trigger: the filesystem crashes as
// soon as n more bytes have been written, tearing the write in
// flight. n < 0 disarms it.
func (f *Faulty) CrashAfterWrites(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n < 0 {
		f.crashAfter = -1
		return
	}
	f.crashAfter = f.totalWritten + n
}

// Crashed reports whether the filesystem is currently dead.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Crash simulates power loss: every byte written since the last
// successful Sync is lost (with an optional torn tail), entries
// never covered by a directory fsync vanish or revert, and every
// subsequent operation fails with ErrCrashed until Reopen.
func (f *Faulty) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashLocked()
}

func (f *Faulty) crashLocked() {
	if f.crashed {
		return
	}
	f.crashed = true
	// Data-level damage first (births vanish, unsynced tails tear),
	// then entry-level rename undos — the other order would let a
	// born-entry removal clobber a just-restored rename target.
	for path, st := range f.files {
		if st.born {
			os.Remove(path)
			continue
		}
		if st.durable >= st.size {
			continue
		}
		keep := st.durable
		if f.tornTail && st.size > st.durable {
			// A prefix of the unsynced tail may have reached the
			// platter; its last byte may be half-programmed.
			keep += f.rng.Int63n(st.size - st.durable + 1)
		}
		fh, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			continue
		}
		fh.Truncate(keep)
		if f.tornTail && keep > st.durable && f.rng.Intn(2) == 0 {
			var b [1]byte
			if _, err := fh.ReadAt(b[:], keep-1); err == nil {
				b[0] ^= 0xFF
				fh.WriteAt(b[:], keep-1)
			}
		}
		fh.Close()
	}
	f.files = map[string]*fstate{}
	// Undo entry-level changes newest-first: a rename chain undoes
	// back to the last durable arrangement.
	for i := len(f.renames) - 1; i >= 0; i-- {
		r := f.renames[i]
		os.Remove(r.new)
		if r.hadTarget {
			os.WriteFile(r.new, r.prevTarget, 0o644)
		}
		if !r.oldWasBorn {
			data := r.oldData
			if r.oldDurable < int64(len(data)) {
				// Only the source's durable prefix survives under the
				// restored old name.
				data = data[:r.oldDurable]
			}
			os.WriteFile(r.old, data, 0o644)
		}
	}
	f.renames = nil
}

// Reopen brings the filesystem back after a crash — the next
// process's boot. All surviving on-disk state is durable; tracking
// starts over. Fault arming (budgets, triggers, sync lies) is
// cleared.
func (f *Faulty) Reopen() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.crashed {
		// Crash first so "reopen without crash" cannot silently keep
		// unsynced data alive across what tests treat as a reboot.
		f.crashLocked()
	}
	f.crashed = false
	f.lieSync = false
	f.writeBudget = -1
	f.crashAfter = -1
	f.files = map[string]*fstate{}
	f.renames = nil
}

func (f *Faulty) state(path string) *fstate {
	path = filepath.Clean(path)
	st, ok := f.files[path]
	if !ok {
		st = &fstate{}
		if fi, err := os.Stat(path); err == nil {
			// Pre-existing file: everything on disk predates this
			// boot and is durable.
			st.size, st.durable = fi.Size(), fi.Size()
		} else {
			st.born = true
		}
		f.files[path] = st
	}
	return st
}

func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	// Directory creations are modeled as immediately durable: the
	// interesting fault surface is file data and entries, and the
	// stack re-creates directories idempotently at boot anyway.
	return f.os.MkdirAll(path, perm)
}

func (f *Faulty) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	// Establish tracking before the open can create the file, so a
	// fresh file is correctly "born" (gone at crash unless its
	// directory is fsynced).
	st := f.state(path)
	fh, err := f.os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	if flag&os.O_TRUNC != 0 {
		st.size, st.durable = 0, 0
	}
	return &faultyFile{f: f, fh: fh, path: filepath.Clean(path)}, nil
}

func (f *Faulty) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	return f.os.ReadFile(path)
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	undo := renameUndo{dir: filepath.Dir(newpath), old: oldpath, new: newpath}
	if data, err := os.ReadFile(oldpath); err == nil {
		undo.oldData = data
	}
	ost := f.state(oldpath)
	undo.oldWasBorn, undo.oldDurable = ost.born, ost.durable
	if prev, err := os.ReadFile(newpath); err == nil {
		tst := f.state(newpath)
		if !tst.born {
			undo.hadTarget = true
			if tst.durable < int64(len(prev)) {
				undo.prevTarget = prev[:tst.durable]
			} else {
				undo.prevTarget = prev
			}
		}
	}
	if err := f.os.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.renames = append(f.renames, undo)
	// The new entry inherits the source's content durability (the
	// bytes were synced or not independent of the name), but the
	// entry itself is born: it needs a directory fsync to survive.
	nst := &fstate{size: ost.size, durable: ost.durable, born: true}
	f.files[newpath] = nst
	delete(f.files, oldpath)
	return nil
}

func (f *Faulty) Remove(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	err := f.os.Remove(path)
	if err == nil {
		delete(f.files, filepath.Clean(path))
	}
	return err
}

func (f *Faulty) RemoveAll(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	err := f.os.RemoveAll(path)
	if err == nil {
		clean := filepath.Clean(path)
		for p := range f.files {
			if p == clean || isUnder(p, clean) {
				delete(f.files, p)
			}
		}
	}
	return err
}

func isUnder(p, dir string) bool {
	rel, err := filepath.Rel(dir, p)
	return err == nil && rel != ".." && !filepath.IsAbs(rel) &&
		(len(rel) < 3 || rel[:3] != ".."+string(filepath.Separator))
}

func (f *Faulty) ReadDir(path string) ([]os.DirEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	return f.os.ReadDir(path)
}

func (f *Faulty) Stat(path string) (os.FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	return f.os.Stat(path)
}

func (f *Faulty) SyncDir(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	if f.lieSync {
		return nil
	}
	dir := filepath.Clean(path)
	// Entries in this directory become durable: births stick, pending
	// renames under it are committed.
	for p, st := range f.files {
		if filepath.Dir(p) == dir {
			st.born = false
		}
	}
	kept := f.renames[:0]
	for _, r := range f.renames {
		if r.dir != dir {
			kept = append(kept, r)
		}
	}
	f.renames = kept
	return f.os.SyncDir(path)
}

type faultyFile struct {
	f    *Faulty
	fh   File
	path string
}

func (ff *faultyFile) Name() string { return ff.path }

func (ff *faultyFile) Write(p []byte) (int, error) {
	f := ff.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	n := len(p)
	var after error
	if f.writeBudget >= 0 && int64(n) > f.writeBudget {
		n = int(f.writeBudget)
		after = &os.PathError{Op: "write", Path: ff.path, Err: syscall.ENOSPC}
	}
	if f.crashAfter >= 0 && f.totalWritten+int64(n) >= f.crashAfter {
		n = int(f.crashAfter - f.totalWritten)
		after = ErrCrashed
	}
	wrote := 0
	var werr error
	if n > 0 {
		wrote, werr = ff.fh.Write(p[:n])
	}
	f.totalWritten += int64(wrote)
	if f.writeBudget >= 0 {
		f.writeBudget -= int64(wrote)
	}
	f.state(ff.path).size += int64(wrote)
	if errors.Is(after, ErrCrashed) {
		f.crashLocked()
	}
	if werr != nil {
		return wrote, werr
	}
	if after != nil {
		return wrote, after
	}
	return wrote, nil
}

func (ff *faultyFile) Sync() error {
	f := ff.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	if f.lieSync {
		return nil
	}
	if err := ff.fh.Sync(); err != nil {
		return err
	}
	st := f.state(ff.path)
	st.durable = st.size
	return nil
}

func (ff *faultyFile) Truncate(size int64) error {
	f := ff.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	if err := ff.fh.Truncate(size); err != nil {
		return err
	}
	st := f.state(ff.path)
	st.size = size
	if st.durable > size {
		st.durable = size
	}
	return nil
}

func (ff *faultyFile) Close() error {
	// Closing never syncs — exactly like the real thing.
	return ff.fh.Close()
}

// String describes the armed faults (test logging).
func (f *Faulty) String() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return fmt.Sprintf("faultfs(seed=%d crashed=%v lieSync=%v budget=%d crashAfter=%d written=%d)",
		f.seed, f.crashed, f.lieSync, f.writeBudget, f.crashAfter, f.totalWritten)
}
