package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func writeAll(t *testing.T, fs FS, path string, data []byte, sync bool) {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %s: %v", path, err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

func TestUnsyncedDataLostAtCrash(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaulty(1)
	fs.TornTails(false)
	p := filepath.Join(dir, "a")

	f, _ := fs.OpenFile(p, os.O_CREATE|os.O_WRONLY, 0o644)
	f.Write([]byte("durable"))
	f.Sync()
	f.Write([]byte(" and lost"))
	f.Close()
	fs.SyncDir(dir)

	fs.Crash()
	fs.Reopen()
	got, err := fs.ReadFile(p)
	if err != nil {
		t.Fatalf("read after crash: %v", err)
	}
	if string(got) != "durable" {
		t.Fatalf("after crash got %q, want %q", got, "durable")
	}
}

func TestTornTailKeepsPartialPrefix(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaulty(7) // torn tails on by default
	p := filepath.Join(dir, "a")

	f, _ := fs.OpenFile(p, os.O_CREATE|os.O_WRONLY, 0o644)
	f.Write([]byte("SYNCED"))
	f.Sync()
	f.Write(make([]byte, 1024))
	f.Close()
	fs.SyncDir(dir)

	fs.Crash()
	fs.Reopen()
	got, _ := fs.ReadFile(p)
	if len(got) < 6 || len(got) > 6+1024 {
		t.Fatalf("torn length %d out of range [6, 1030]", len(got))
	}
	if string(got[:6]) != "SYNCED" {
		t.Fatalf("synced prefix damaged: %q", got[:6])
	}
}

func TestUnsyncedDirEntryVanishes(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaulty(2)
	p := filepath.Join(dir, "ghost")
	writeAll(t, fs, p, []byte("x"), true) // file synced, dir NOT

	fs.Crash()
	fs.Reopen()
	if _, err := fs.Stat(p); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("file without dir fsync should vanish at crash, stat err = %v", err)
	}
}

func TestSyncedDirEntrySurvives(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaulty(3)
	p := filepath.Join(dir, "kept")
	writeAll(t, fs, p, []byte("x"), true)
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}

	fs.Crash()
	fs.Reopen()
	if _, err := fs.Stat(p); err != nil {
		t.Fatalf("dir-synced file lost at crash: %v", err)
	}
}

func TestRenameUndoneWithoutDirSync(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaulty(4)
	oldp, newp := filepath.Join(dir, "old"), filepath.Join(dir, "new")
	writeAll(t, fs, oldp, []byte("payload"), true)
	fs.SyncDir(dir)
	writeAll(t, fs, newp, []byte("previous"), true)
	fs.SyncDir(dir)

	// Replace new with old, but crash before the dir fsync commits it.
	if err := fs.Rename(oldp, newp); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	fs.Reopen()

	got, err := fs.ReadFile(newp)
	if err != nil || string(got) != "previous" {
		t.Fatalf("target should revert to pre-rename content, got %q err=%v", got, err)
	}
}

func TestRenameDurableAfterDirSync(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaulty(5)
	oldp, newp := filepath.Join(dir, "old"), filepath.Join(dir, "new")
	writeAll(t, fs, oldp, []byte("payload"), true)
	fs.SyncDir(dir)

	if err := fs.Rename(oldp, newp); err != nil {
		t.Fatal(err)
	}
	fs.SyncDir(dir)
	fs.Crash()
	fs.Reopen()

	got, err := fs.ReadFile(newp)
	if err != nil || string(got) != "payload" {
		t.Fatalf("dir-synced rename lost: got %q err=%v", got, err)
	}
	if _, err := fs.Stat(oldp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("old name should be gone after committed rename, err=%v", err)
	}
}

func TestLieOnSyncLosesData(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaulty(6)
	fs.TornTails(false)
	fs.LieOnSync(true)
	p := filepath.Join(dir, "a")
	writeAll(t, fs, p, []byte("acked but gone"), true)
	fs.SyncDir(dir)

	fs.Crash()
	fs.Reopen()
	if _, err := fs.Stat(p); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("lying fsync should have made nothing durable; stat err = %v", err)
	}
}

func TestWriteBudgetENOSPC(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaulty(8)
	fs.SetWriteBudget(4)
	f, _ := fs.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	n, err := f.Write([]byte("123456"))
	if n != 4 {
		t.Fatalf("short write wrote %d, want 4", n)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	// Sticky: the disk stays full.
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("second write should still be ENOSPC, got %v", err)
	}
	fs.SetWriteBudget(-1)
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

func TestCrashAfterWritesTearsInFlight(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaulty(9)
	fs.TornTails(false)
	p := filepath.Join(dir, "a")
	f, _ := fs.OpenFile(p, os.O_CREATE|os.O_WRONLY, 0o644)
	f.Write([]byte("ok"))
	f.Sync()
	fs.SyncDir(dir)

	fs.CrashAfterWrites(3)
	_, err := f.Write([]byte("doomed"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed mid-write, got %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("fs should be crashed")
	}
	// Everything fails while dead.
	if _, err := fs.ReadFile(p); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read while crashed: %v", err)
	}
	fs.Reopen()
	got, _ := fs.ReadFile(p)
	if string(got) != "ok" {
		t.Fatalf("after reopen got %q, want %q", got, "ok")
	}
}

func TestPreexistingFilesAreDurable(t *testing.T) {
	dir := t.TempDir()
	// Written by a "previous process" through plain os.
	p := filepath.Join(dir, "old")
	if err := os.WriteFile(p, []byte("ancient"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := NewFaulty(10)
	fs.Crash()
	fs.Reopen()
	got, err := fs.ReadFile(p)
	if err != nil || string(got) != "ancient" {
		t.Fatalf("pre-existing file must survive: %q %v", got, err)
	}
}

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fs OS
	p := filepath.Join(dir, "a")
	f, err := fs.OpenFile(p, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(p)
	if err != nil || string(got) != "hi" {
		t.Fatalf("got %q err=%v", got, err)
	}
	if err := fs.Rename(p, filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "b" {
		t.Fatalf("dir listing: %v %v", ents, err)
	}
}
