// Package gencache is the cross-query caching primitive of the
// system: a bounded LRU whose entire contents are keyed under one
// (epoch, generation) pair — the server's boot nonce and its
// monotonic db generation counter, bumped by every applied update.
//
// The contract that makes cross-request caching safe here is
// wholesale invalidation: a cache never holds entries from two
// generations at once. Every Get/Put carries the generation the
// caller observed; the first access under a new generation clears
// the cache before anything is served, so a cached value can never
// outlive the database state it was computed from. Two policies
// cover the two trust directions:
//
//   - Monotonic (server side): the generation only moves forward
//     under the server's own write lock. An access tagged with an
//     older generation is a late-running reader from before an
//     update; it is answered with a miss and its inserts are
//     dropped, so a slow pre-update query can never re-seed the
//     cache with pre-update results.
//
//   - Adopt (client side): the pair identifies a *remote* server's
//     state, and a restart or rollback may legitimately move it
//     backwards (a fresh epoch) — the client must drop everything
//     it decrypted against the previous incarnation rather than
//     serve stale plaintext. Any change of the pair, in either
//     direction, clears the cache and adopts the new pair.
package gencache

import (
	"container/list"
	"expvar"
	"fmt"
	"sync"
)

// Policy selects how a cache reacts to a change of the (epoch,
// generation) pair. See the package comment.
type Policy int

const (
	// Monotonic trusts the generation to only grow (server side,
	// under the db write lock): larger pairs invalidate, smaller
	// ones are rejected as stale readers.
	Monotonic Policy = iota
	// Adopt treats any change of the pair as a new world (client
	// side, observing a possibly restarted remote server).
	Adopt
)

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"` // wholesale clears on generation change
	Rejected      uint64 `json:"rejected"`      // stale-generation accesses refused (Monotonic)
	Entries       int    `json:"entries"`
	Bytes         int    `json:"bytes"`
}

// Cache is the generation-keyed bounded LRU. Safe for concurrent
// use. Values are stored as-is; callers that cache shared byte
// slices must treat them as immutable for the generation's lifetime
// (the same discipline the server already applies to hosted block
// ciphertexts).
type Cache struct {
	mu         sync.Mutex
	policy     Policy
	maxEntries int
	maxBytes   int

	epoch, gen uint64
	curBytes   int
	order      *list.List // front = most recently used; holds *entry
	byKey      map[string]*list.Element

	hits, misses, evictions, invalidations, rejected uint64
}

type entry struct {
	key  string
	val  any
	size int
}

// New builds a cache bounded to maxEntries entries and maxBytes
// total accounted size. Non-positive limits default to 1024 entries
// and 64 MiB.
func New(policy Policy, maxEntries, maxBytes int) *Cache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &Cache{
		policy:     policy,
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		order:      list.New(),
		byKey:      map[string]*list.Element{},
	}
}

// admit reconciles the caller's observed (epoch, gen) pair with the
// cache's, clearing on invalidation. It reports whether the caller
// may touch the cache at all. Caller holds mu.
func (c *Cache) admit(epoch, gen uint64) bool {
	if epoch == c.epoch && gen == c.gen {
		return true
	}
	if c.policy == Monotonic && epoch == c.epoch && gen < c.gen {
		// A reader that started before the last update: its view of
		// the db is gone; serving or storing under it would mix
		// generations.
		c.rejected++
		return false
	}
	// New generation (or, under Adopt, any change at all — including
	// a rollback): the cached state is unsalvageable.
	if c.order.Len() > 0 {
		c.invalidations++
	}
	c.order.Init()
	c.byKey = map[string]*list.Element{}
	c.curBytes = 0
	c.epoch, c.gen = epoch, gen
	return true
}

// Get returns the value cached under key for the given (epoch, gen)
// pair, if the pair is current and the key present.
func (c *Cache) Get(epoch, gen uint64, key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.admit(epoch, gen) {
		return nil, false
	}
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores val (with an accounted size) under key for the given
// (epoch, gen) pair, evicting least-recently-used entries to stay
// within bounds. Values larger than the whole byte budget, and
// inserts tagged with a stale generation, are dropped.
func (c *Cache) Put(epoch, gen uint64, key string, val any, size int) {
	if size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.admit(epoch, gen) {
		return
	}
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*entry)
		c.curBytes += size - ent.size
		ent.val, ent.size = val, size
		c.order.MoveToFront(el)
	} else {
		c.byKey[key] = c.order.PushFront(&entry{key: key, val: val, size: size})
		c.curBytes += size
	}
	for c.order.Len() > c.maxEntries || c.curBytes > c.maxBytes {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		ent := oldest.Value.(*entry)
		c.order.Remove(oldest)
		delete(c.byKey, ent.key)
		c.curBytes -= ent.size
		c.evictions++
	}
}

// Generation returns the (epoch, generation) pair the current
// contents belong to.
func (c *Cache) Generation() (epoch, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch, c.gen
}

// Clear drops every entry without touching the generation pair
// (benchmarks use it to re-measure the cold path).
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.byKey = map[string]*list.Element{}
	c.curBytes = 0
}

// Stats returns a counter snapshot.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Rejected:      c.rejected,
		Entries:       c.order.Len(),
		Bytes:         c.curBytes,
	}
}

// --- expvar export ---

var (
	pubMu  sync.Mutex
	pubs   = map[string]func() Stats{}
	pubSet = map[string]bool{}
)

// Publish exposes a stats source under /debug/vars as an expvar Func
// named name. Unlike expvar.Publish, re-publishing the same name
// replaces the source instead of panicking, so servers hosting
// several databases (and tests) can re-register freely.
func Publish(name string, stats func() Stats) {
	pubMu.Lock()
	defer pubMu.Unlock()
	pubs[name] = stats
	if !pubSet[name] {
		pubSet[name] = true
		n := name
		expvar.Publish(n, expvar.Func(func() any {
			pubMu.Lock()
			fn := pubs[n]
			pubMu.Unlock()
			if fn == nil {
				return nil
			}
			return fn()
		}))
	}
}

// String renders stats compactly for logs.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d invalidations=%d rejected=%d entries=%d bytes=%d",
		s.Hits, s.Misses, s.Evictions, s.Invalidations, s.Rejected, s.Entries, s.Bytes)
}
