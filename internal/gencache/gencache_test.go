package gencache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestBasicGetPut(t *testing.T) {
	c := New(Monotonic, 4, 1<<20)
	if _, ok := c.Get(0, 1, "a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(0, 1, "a", "va", 2)
	v, ok := c.Get(0, 1, "a")
	if !ok || v.(string) != "va" {
		t.Fatalf("Get(a) = %v, %v; want va, true", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEntryBoundEvictsLRU(t *testing.T) {
	c := New(Monotonic, 2, 1<<20)
	c.Put(0, 1, "a", 1, 1)
	c.Put(0, 1, "b", 2, 1)
	c.Get(0, 1, "a") // a now most recent
	c.Put(0, 1, "c", 3, 1)
	if _, ok := c.Get(0, 1, "b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if _, ok := c.Get(0, 1, "a"); !ok {
		t.Error("a should have survived")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestByteBound(t *testing.T) {
	c := New(Monotonic, 100, 10)
	c.Put(0, 1, "a", nil, 6)
	c.Put(0, 1, "b", nil, 6) // over budget: a evicted
	if _, ok := c.Get(0, 1, "a"); ok {
		t.Error("a should have been evicted by the byte bound")
	}
	c.Put(0, 1, "huge", nil, 11) // larger than whole budget: dropped
	if _, ok := c.Get(0, 1, "huge"); ok {
		t.Error("oversized value must not be cached")
	}
}

// TestMonotonicInvalidation: a generation bump wipes the cache
// before anything is served, and late accesses tagged with the old
// generation are refused in both directions.
func TestMonotonicInvalidation(t *testing.T) {
	c := New(Monotonic, 16, 1<<20)
	c.Put(0, 1, "k", "gen1", 4)

	// New generation: wholesale clear.
	if _, ok := c.Get(0, 2, "k"); ok {
		t.Fatal("generation bump must invalidate")
	}
	c.Put(0, 2, "k", "gen2", 4)

	// A straggler still at gen 1 gets neither hit nor insert rights.
	if _, ok := c.Get(0, 1, "k"); ok {
		t.Fatal("stale-generation Get must miss")
	}
	c.Put(0, 1, "k", "stale", 5)
	v, ok := c.Get(0, 2, "k")
	if !ok || v.(string) != "gen2" {
		t.Fatalf("stale Put must not overwrite: got %v, %v", v, ok)
	}
	if st := c.Stats(); st.Rejected != 2 || st.Invalidations != 1 {
		t.Errorf("stats %+v: want 2 rejections, 1 invalidation", st)
	}
}

// TestAdoptRollback: under the Adopt policy a *smaller* pair (server
// restart / rollback) also clears the cache — the client must drop
// plaintext decrypted against the previous incarnation.
func TestAdoptRollback(t *testing.T) {
	c := New(Adopt, 16, 1<<20)
	c.Put(7, 9, "k", "new-world", 1)
	if _, ok := c.Get(7, 3, "k"); ok {
		t.Fatal("rollback must invalidate under Adopt")
	}
	c.Put(7, 3, "k", "old-world", 1)
	if v, ok := c.Get(7, 3, "k"); !ok || v.(string) != "old-world" {
		t.Fatalf("Adopt must accept the rolled-back generation: %v, %v", v, ok)
	}
	// A different epoch with the same generation is a different
	// server incarnation entirely.
	if _, ok := c.Get(8, 3, "k"); ok {
		t.Fatal("epoch change must invalidate under Adopt")
	}
}

// TestConcurrentStress hammers one cache with parallel readers and
// an updater that keeps bumping the generation, under -race. Each
// value encodes the generation it was stored under; a reader that
// ever gets a hit whose value names a different generation than the
// key it asked with has seen a torn (cross-generation) read.
func TestConcurrentStress(t *testing.T) {
	c := New(Monotonic, 64, 1<<20)
	var gen atomic.Uint64
	gen.Store(1)
	stop := make(chan struct{})

	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			last := uint64(0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				g := gen.Load()
				if g < last {
					t.Errorf("reader %d: generation went backwards: %d after %d", r, g, last)
					return
				}
				last = g
				key := fmt.Sprintf("k%d", i%32)
				if v, ok := c.Get(0, g, key); ok {
					if v.(uint64) > g {
						// A cached value from generation v > g can only
						// be served to a reader asking at g if entries
						// survived an invalidation boundary.
						t.Errorf("reader %d: value from gen %d served at gen %d", r, v.(uint64), g)
						return
					}
				} else {
					c.Put(0, g, key, g, 8)
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			gen.Add(1)
		}
	}()

	// Let the readers observe the moving generation, then stop.
	for gen.Load() < 201 {
	}
	close(stop)
	wg.Wait()
}

func TestClearKeepsGeneration(t *testing.T) {
	c := New(Monotonic, 16, 1<<20)
	c.Put(3, 5, "k", 1, 1)
	c.Clear()
	if _, ok := c.Get(3, 5, "k"); ok {
		t.Fatal("Clear must drop entries")
	}
	if e, g := c.Generation(); e != 3 || g != 5 {
		t.Fatalf("Clear must keep the generation pair, got (%d,%d)", e, g)
	}
}

func TestPublishReplacesWithoutPanic(t *testing.T) {
	c1 := New(Monotonic, 4, 100)
	c2 := New(Monotonic, 4, 100)
	Publish("gencache_test_stats", c1.Stats)
	Publish("gencache_test_stats", c2.Stats) // must not panic
}
