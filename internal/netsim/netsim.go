// Package netsim models the client–server link of the paper's
// experimental setup (§7.1): a 100 Mbps network between one
// 8-processor server and one single-processor client. Since this
// reproduction runs both roles in one process, transmission time is
// computed deterministically from the byte volume, which is exactly
// what the paper's accounting needs (it reports transmission as a
// separate, negligible-at-100Mbps component in §7.2).
package netsim

import "time"

// Link describes a simulated network link.
type Link struct {
	// BandwidthMbps is the link bandwidth in megabits per second.
	BandwidthMbps float64
	// LatencyMs is the one-way latency added per transfer.
	LatencyMs float64
}

// Paper is the setup of §7.1: 100 Mbps LAN, sub-millisecond latency.
var Paper = Link{BandwidthMbps: 100, LatencyMs: 0.2}

// WAN is a wide-area alternative used by the ablation benches:
// 20 Mbps with 20 ms latency, where shipping the whole database
// (naive/top) hurts far more.
var WAN = Link{BandwidthMbps: 20, LatencyMs: 20}

// TransferTime returns the simulated time to move n bytes.
func (l Link) TransferTime(n int) time.Duration {
	if l.BandwidthMbps <= 0 {
		return 0
	}
	seconds := float64(n*8)/(l.BandwidthMbps*1e6) + l.LatencyMs/1e3
	return time.Duration(seconds * float64(time.Second))
}
