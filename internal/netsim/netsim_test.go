package netsim

import (
	"testing"
	"time"
)

func TestTransferTimePaperLink(t *testing.T) {
	// 100 Mbps: 12.5 MB/s; 1 MB should take ~80 ms + 0.2 ms latency.
	d := Paper.TransferTime(1_000_000)
	if d < 75*time.Millisecond || d > 90*time.Millisecond {
		t.Errorf("1MB over 100Mbps = %v", d)
	}
	// Zero bytes: latency only.
	if d := Paper.TransferTime(0); d < 100*time.Microsecond || d > time.Millisecond {
		t.Errorf("latency-only transfer = %v", d)
	}
}

func TestTransferTimeScalesLinearly(t *testing.T) {
	d1 := Paper.TransferTime(1_000_000)
	d2 := Paper.TransferTime(2_000_000)
	// Subtract latency before comparing slopes.
	lat := Paper.TransferTime(0)
	if (d2-lat) < 19*(d1-lat)/10 || (d2-lat) > 21*(d1-lat)/10 {
		t.Errorf("not linear: %v vs %v", d1, d2)
	}
}

func TestWANSlower(t *testing.T) {
	if WAN.TransferTime(1_000_000) <= Paper.TransferTime(1_000_000) {
		t.Errorf("WAN should be slower than the paper's LAN")
	}
}

func TestZeroBandwidth(t *testing.T) {
	l := Link{}
	if l.TransferTime(1000) != 0 {
		t.Errorf("zero-bandwidth link should report 0")
	}
}
