// Package opess implements the paper's order-preserving encryption
// with splitting and scaling (§5.2.1, "OPESS"): the transform the
// client applies to leaf values before placing them in the server's
// B-tree value index.
//
// Splitting defeats the frequency-based attack on the index: the
// occurrences of each distinct plaintext value are partitioned into
// chunks of sizes m−1, m and m+1 (for the largest workable m), and
// each chunk is mapped to its own ciphertext value, so the observed
// ciphertext frequency distribution is nearly flat regardless of the
// input skew (Figure 6). Chunk ciphertexts are produced by
// displacing the plaintext by cumulative random fractions of the
// inter-value gap δ and applying order-preserving encryption, which
// guarantees property (*): ciphertexts of different plaintexts never
// straddle, so range queries remain answerable (Figure 7a).
//
// Scaling defeats the residual attack of summing adjacent ciphertext
// frequencies until they match a known plaintext frequency: each
// value's index entries are replicated by a secret per-value factor
// in [1, 10], destroying the total-count invariant.
//
// Note on δ: the paper's text sets δ = max gap between consecutive
// plaintext values, but property (*) requires the displacement
// (which can approach δ) to stay below EVERY gap; we therefore use
// the minimum gap, which is what the paper's 23→32 worked example
// effectively assumes.
package opess

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/btree"
	"repro/internal/cryptoprim"
	"repro/internal/xpath"
)

// Attribute is the OPESS transformer for one indexed leaf tag. It is
// client-side state: the server sees only the resulting ciphertext
// values and index entries.
type Attribute struct {
	Tag     string
	Numeric bool

	// M is the middle chunk size: chunks are M-1, M, M+1.
	M int
	// K is the number of split positions (distinct displacement
	// sums), i.e. the max number of ciphertext values any single
	// plaintext value maps to.
	K int
	// W holds the K random displacement weights, ascending, each in
	// (0, 1/(K+1)); chunk n of a value v is displaced to
	// v + (w1+...+wn)·δ.
	W []float64
	// Delta is the minimum gap between consecutive distinct
	// plaintext values (in mapped numeric space).
	Delta float64

	values []string           // distinct plaintext values, ascending
	num    map[string]float64 // plaintext value -> mapped numeric
	chunks map[string][]int   // plaintext value -> chunk sizes
	scale  map[string]int     // plaintext value -> scale factor 1..10
	ope    *cryptoprim.OPE
}

// Build analyzes the exact occurrence-frequency distribution of a
// leaf tag (the same knowledge the attacker is assumed to hold) and
// constructs its OPESS transformer in ciphertext band 0.
func Build(tag string, freq map[string]int, keys *cryptoprim.KeySet) (*Attribute, error) {
	return BuildBand(tag, freq, keys, 0)
}

// BuildBand is Build with an explicit ciphertext band: the client
// assigns one band per indexed attribute so that attributes sharing
// the server's B-tree never interleave (range windows and MIN/MAX
// probes stay attribute-precise).
func BuildBand(tag string, freq map[string]int, keys *cryptoprim.KeySet, band uint8) (*Attribute, error) {
	if len(freq) == 0 {
		return nil, fmt.Errorf("opess: attribute %q has no values", tag)
	}
	a := &Attribute{
		Tag:    tag,
		num:    map[string]float64{},
		chunks: map[string][]int{},
		scale:  map[string]int{},
		ope:    cryptoprim.NewOPEBand(keys, 6, band),
	}
	for v, n := range freq {
		if n <= 0 {
			return nil, fmt.Errorf("opess: value %q has nonpositive frequency %d", v, n)
		}
		a.values = append(a.values, v)
	}

	// Numeric when every value parses as a float; otherwise the
	// categorical domain is mapped to 1..k by rank (the client keeps
	// the mapping, per §5.2.1).
	a.Numeric = true
	for _, v := range a.values {
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			a.Numeric = false
			break
		}
	}
	if a.Numeric {
		sort.Slice(a.values, func(i, j int) bool {
			fi, _ := strconv.ParseFloat(a.values[i], 64)
			fj, _ := strconv.ParseFloat(a.values[j], 64)
			return fi < fj
		})
		for _, v := range a.values {
			f, _ := strconv.ParseFloat(v, 64)
			a.num[v] = f
		}
	} else {
		sort.Strings(a.values)
		for i, v := range a.values {
			a.num[v] = float64(i + 1)
		}
	}

	// δ = minimum gap between consecutive mapped values.
	a.Delta = 1
	for i := 1; i < len(a.values); i++ {
		gap := a.num[a.values[i]] - a.num[a.values[i-1]]
		if gap <= 0 {
			return nil, fmt.Errorf("opess: duplicate mapped values %q, %q", a.values[i-1], a.values[i])
		}
		if i == 1 || gap < a.Delta {
			a.Delta = gap
		}
	}

	a.M = chooseM(freq)
	maxChunks := 0
	hasSingleton := false
	for _, v := range a.values {
		n := freq[v]
		if n == 1 {
			// §5.2.1: a value with a single occurrence is split into
			// M ciphertext values, all standing for that occurrence.
			a.chunks[v] = singletonChunks(a.M)
			hasSingleton = true
		} else {
			cs, err := decompose(n, a.M)
			if err != nil {
				return nil, err
			}
			a.chunks[v] = cs
		}
		if len(a.chunks[v]) > maxChunks {
			maxChunks = len(a.chunks[v])
		}
	}
	a.K = maxChunks
	if hasSingleton && a.M > a.K {
		a.K = a.M
	}

	// K random weights in (0, 1/(K+1)), ascending, keyed per tag.
	for j := 0; j < a.K; j++ {
		r := keys.OPESSRand(tag, "w", j)
		a.W = append(a.W, (0.05+0.9*r)/float64(a.K+1))
	}
	sort.Float64s(a.W)

	// Per-value integer scale factor in [1, 10].
	for i, v := range a.values {
		a.scale[v] = 1 + int(keys.OPESSRand(tag, "scale", i)*10)
		if a.scale[v] > 10 {
			a.scale[v] = 10
		}
	}
	return a, nil
}

// chooseM picks the maximum middle chunk size m >= 3 such that every
// frequency greater than 1 is expressible as a non-negative integer
// combination of m-1, m, m+1; (2,3,4) always works (§5.2.1).
func chooseM(freq map[string]int) int {
	minN := 0
	for _, n := range freq {
		if n > 1 && (minN == 0 || n < minN) {
			minN = n
		}
	}
	if minN == 0 {
		return 3 // only singletons
	}
	for m := minN + 1; m >= 3; m-- {
		ok := true
		for _, n := range freq {
			if n > 1 && !representable(n, m) {
				ok = false
				break
			}
		}
		if ok {
			return m
		}
	}
	return 3
}

// representable reports whether n = a(m-1) + b·m + c(m+1) has a
// solution in non-negative integers: some chunk count t satisfies
// t(m-1) <= n <= t(m+1).
func representable(n, m int) bool {
	for t := (n + m) / (m + 1); t*(m-1) <= n; t++ {
		if t >= 1 && t*(m-1) <= n && n <= t*(m+1) {
			return true
		}
	}
	return false
}

// decompose splits n occurrences into the fewest chunks of sizes
// m-1, m, m+1.
func decompose(n, m int) ([]int, error) {
	for t := (n + m) / (m + 1); t*(m-1) <= n; t++ {
		if t < 1 || n < t*(m-1) || n > t*(m+1) {
			continue
		}
		r := n - t*m
		chunks := make([]int, t)
		for i := range chunks {
			chunks[i] = m
		}
		switch {
		case r > 0:
			for i := 0; i < r; i++ {
				chunks[i] = m + 1
			}
		case r < 0:
			for i := 0; i < -r; i++ {
				chunks[i] = m - 1
			}
		}
		return chunks, nil
	}
	return nil, fmt.Errorf("opess: %d occurrences not representable with chunks (%d,%d,%d)", n, m-1, m, m+1)
}

func singletonChunks(m int) []int {
	cs := make([]int, m)
	for i := range cs {
		cs[i] = 1
	}
	return cs
}

// Values returns the distinct plaintext values in ascending order.
func (a *Attribute) Values() []string { return a.values }

// NumDistinctCiphertexts returns the total number of distinct
// ciphertext values this attribute maps to (the "n" of Theorem 5.2,
// versus k = len(Values())).
func (a *Attribute) NumDistinctCiphertexts() int {
	total := 0
	for _, cs := range a.chunks {
		total += len(cs)
	}
	return total
}

// ScaleOf exposes the secret scale factor of a value; used by tests
// and the attack simulator's "insider" checks.
func (a *Attribute) ScaleOf(v string) int { return a.scale[v] }

// ChunksOf exposes the chunk decomposition of a value.
func (a *Attribute) ChunksOf(v string) []int { return a.chunks[v] }

// mapped returns the numeric image of a plaintext literal, which may
// be absent from the known domain: numeric literals parse directly;
// unknown categorical literals map between the ranks of their
// lexicographic neighbors.
func (a *Attribute) mapped(lit string) (float64, error) {
	if a.Numeric {
		f, err := strconv.ParseFloat(lit, 64)
		if err != nil {
			return 0, fmt.Errorf("opess: non-numeric literal %q for numeric attribute %s", lit, a.Tag)
		}
		return f, nil
	}
	if f, ok := a.num[lit]; ok {
		return f, nil
	}
	i := sort.SearchStrings(a.values, lit)
	return float64(i) + 0.5, nil // between rank i and i+1
}

// cumW returns w1 + ... + wn.
func (a *Attribute) cumW(n int) float64 {
	s := 0.0
	for j := 0; j < n && j < len(a.W); j++ {
		s += a.W[j]
	}
	return s
}

// CipherValues returns the ordered ciphertext values the plaintext
// value v splits into: chunk n maps to E(v + (w1+...+wn)·δ).
func (a *Attribute) CipherValues(v string) ([]uint64, error) {
	cs, ok := a.chunks[v]
	if !ok {
		return nil, fmt.Errorf("opess: value %q not in the domain of %s", v, a.Tag)
	}
	base, err := a.mapped(v)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(cs))
	for n := range cs {
		c, err := a.ope.Encrypt(base + a.cumW(n+1)*a.Delta)
		if err != nil {
			return nil, err
		}
		out[n] = c
	}
	return out, nil
}

// IndexEntries maps the occurrences of value v — given as the block
// IDs containing them, in document order — to B-tree entries:
// occurrences are dealt to chunks in order, and every entry is
// replicated by the value's secret scale factor.
func (a *Attribute) IndexEntries(v string, blockIDs []int) ([]btree.Entry, error) {
	cs, ok := a.chunks[v]
	if !ok {
		return nil, fmt.Errorf("opess: value %q not in the domain of %s", v, a.Tag)
	}
	ciphers, err := a.CipherValues(v)
	if err != nil {
		return nil, err
	}
	want := 0
	singleton := len(cs) > 0 && cs[0] == 1 && len(blockIDs) == 1
	if singleton {
		want = 1
	} else {
		for _, c := range cs {
			want += c
		}
	}
	if len(blockIDs) != want {
		return nil, fmt.Errorf("opess: %s=%q has %d occurrences, expected %d", a.Tag, v, len(blockIDs), want)
	}
	s := a.scale[v]
	var out []btree.Entry
	if singleton {
		// One occurrence split across M ciphertext values, each
		// pointing at the same block.
		for _, c := range ciphers {
			for r := 0; r < s; r++ {
				out = append(out, btree.Entry{Key: c, BlockID: blockIDs[0]})
			}
		}
		return out, nil
	}
	pos := 0
	for i, size := range cs {
		for j := 0; j < size; j++ {
			for r := 0; r < s; r++ {
				out = append(out, btree.Entry{Key: ciphers[i], BlockID: blockIDs[pos]})
			}
			pos++
		}
	}
	return out, nil
}

// Range is an inclusive ciphertext range on the value index.
type Range struct {
	Lo, Hi uint64
}

// Empty reports an unsatisfiable range.
func (r Range) Empty() bool { return r.Lo > r.Hi }

// Band returns the OPESS band of a value-index ciphertext key: the
// top byte, assigned one per indexed attribute (BuildBand) so that
// attributes sharing the index never interleave. The server-side
// synopsis histograms index occupancy per band under this function,
// and the update pipeline's band drops select entries by it — one
// definition keeps every consumer on the same currency.
func Band(key uint64) uint8 { return uint8(key >> 56) }

// Bands returns the inclusive span of bands the range touches. A
// translated comparison never crosses its attribute's band (ranges
// clamp to BandRange), so Lo==Hi in practice; the span form keeps
// occupancy estimates conservative for hand-built ranges.
func (r Range) Bands() (lo, hi uint8) { return Band(r.Lo), Band(r.Hi) }

// TranslateRange implements Figure 7(a): it rewrites a comparison
// "value op literal" into ciphertext ranges for the server's B-tree.
// Equality and inequality bounds account for splitting: a value v's
// ciphertexts all lie in [E(v + w1·δ), E(v + (Σw)·δ)]. OpNe yields
// two ranges; every other operator yields one.
//
// A non-numeric literal against a numeric attribute cannot be placed
// in the order-preserving domain: equality then matches nothing, and
// every other operator falls back to the whole band (possible-match
// semantics; the client's post-processing compares exactly).
func (a *Attribute) TranslateRange(op xpath.Op, lit string) ([]Range, error) {
	base, err := a.mapped(lit)
	if err != nil {
		bandLo, bandHi := a.ope.BandRange()
		if op == xpath.OpEq {
			return []Range{{Lo: 1, Hi: 0}}, nil // unsatisfiable
		}
		return []Range{{Lo: bandLo, Hi: bandHi}}, nil
	}
	loCipher, err := a.ope.Encrypt(base + a.cumW(1)*a.Delta)
	if err != nil {
		return nil, err
	}
	hiCipher, err := a.ope.Encrypt(base + a.cumW(a.K)*a.Delta)
	if err != nil {
		return nil, err
	}
	// Open-ended bounds clamp to the attribute's band so the range
	// never spills into another attribute's entries.
	bandLo, bandHi := a.ope.BandRange()
	switch op {
	case xpath.OpEq:
		return []Range{{loCipher, hiCipher}}, nil
	case xpath.OpNe:
		return []Range{{bandLo, loCipher - 1}, {hiCipher + 1, bandHi}}, nil
	case xpath.OpLt:
		return []Range{{bandLo, loCipher - 1}}, nil
	case xpath.OpLe:
		return []Range{{bandLo, hiCipher}}, nil
	case xpath.OpGt:
		return []Range{{hiCipher + 1, bandHi}}, nil
	case xpath.OpGe:
		return []Range{{loCipher, bandHi}}, nil
	default:
		return nil, fmt.Errorf("opess: unsupported operator %v", op)
	}
}
