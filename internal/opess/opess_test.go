package opess

import (
	"testing"
	"testing/quick"

	"repro/internal/cryptoprim"
	"repro/internal/xpath"
)

func keys() *cryptoprim.KeySet { return cryptoprim.MustKeySet("opess-test") }

// fig6Freq is the skewed input distribution of Figure 6(a): six
// distinct values with occurrence counts between 9 and 38.
var fig6Freq = map[string]int{
	"1001": 21, "932": 8, "23": 26, "77": 7, "90": 34, "12": 13,
}

func TestRepresentable(t *testing.T) {
	cases := []struct {
		n, m int
		want bool
	}{
		{7, 5, false}, // gap: 4,5,6 then 8..
		{8, 5, true},
		{4, 5, true},
		{6, 5, true},
		{3, 3, true},
		{2, 3, true},
		{5, 3, true},
		{34, 7, true}, // paper: 34 = 1*6 + 4*7
		{1, 3, false},
	}
	for _, c := range cases {
		if got := representable(c.n, c.m); got != c.want {
			t.Errorf("representable(%d, %d) = %v, want %v", c.n, c.m, got, c.want)
		}
	}
}

func TestDecompose(t *testing.T) {
	for _, c := range []struct{ n, m int }{
		{34, 7}, {8, 5}, {2, 3}, {100, 7}, {23, 3},
	} {
		cs, err := decompose(c.n, c.m)
		if err != nil {
			t.Fatalf("decompose(%d, %d): %v", c.n, c.m, err)
		}
		sum := 0
		for _, s := range cs {
			if s < c.m-1 || s > c.m+1 {
				t.Errorf("decompose(%d, %d): chunk %d outside [m-1, m+1]", c.n, c.m, s)
			}
			sum += s
		}
		if sum != c.n {
			t.Errorf("decompose(%d, %d) sums to %d", c.n, c.m, sum)
		}
	}
	if _, err := decompose(7, 5); err == nil {
		t.Errorf("decompose(7,5) should fail")
	}
}

func TestChooseM(t *testing.T) {
	// All counts large and divisible: max m bounded by min count + 1.
	m := chooseM(map[string]int{"a": 6, "b": 12})
	if m < 3 || m > 7 {
		t.Errorf("chooseM = %d out of bounds", m)
	}
	for _, n := range []int{6, 12} {
		if !representable(n, m) {
			t.Errorf("chosen m=%d cannot represent %d", m, n)
		}
	}
	// Only singletons: default 3.
	if m := chooseM(map[string]int{"a": 1}); m != 3 {
		t.Errorf("singleton-only m = %d, want 3", m)
	}
	// chooseM must be maximal: for counts {6,7,8} m=7 works (6=6,
	// 7=7, 8=8) and no larger m does (m-1 <= 6 forces m <= 7).
	if m := chooseM(map[string]int{"a": 6, "b": 7, "c": 8}); m != 7 {
		t.Errorf("chooseM({6,7,8}) = %d, want 7", m)
	}
}

func TestBuildFig6Flattens(t *testing.T) {
	a, err := Build("val", fig6Freq, keys())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Figure 6(b): every ciphertext frequency is m-1, m, or m+1.
	for v, n := range fig6Freq {
		cs := a.ChunksOf(v)
		sum := 0
		for _, c := range cs {
			if c < a.M-1 || c > a.M+1 {
				t.Errorf("value %s chunk %d outside [%d, %d]", v, c, a.M-1, a.M+1)
			}
			sum += c
		}
		if sum != n {
			t.Errorf("value %s chunks sum to %d, want %d", v, sum, n)
		}
	}
	// The flat distribution has max/min frequency ratio <= (m+1)/(m-1).
	if a.M < 3 {
		t.Errorf("M = %d", a.M)
	}
}

func TestCipherValuesOrderedAndDisjoint(t *testing.T) {
	a, err := Build("val", fig6Freq, keys())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Property (*): all ciphertexts of v_i are strictly below all
	// ciphertexts of v_{i+1}.
	var prevMax uint64
	for i, v := range a.Values() {
		cs, err := a.CipherValues(v)
		if err != nil {
			t.Fatalf("CipherValues(%s): %v", v, err)
		}
		for j := 1; j < len(cs); j++ {
			if cs[j-1] >= cs[j] {
				t.Errorf("value %s: chunk ciphertexts not increasing", v)
			}
		}
		if i > 0 && cs[0] <= prevMax {
			t.Errorf("straddle: %s ciphertext %d <= previous max %d", v, cs[0], prevMax)
		}
		prevMax = cs[len(cs)-1]
	}
}

func TestCipherValuesDeterministic(t *testing.T) {
	a1, _ := Build("val", fig6Freq, keys())
	a2, _ := Build("val", fig6Freq, keys())
	for _, v := range a1.Values() {
		c1, _ := a1.CipherValues(v)
		c2, _ := a2.CipherValues(v)
		if len(c1) != len(c2) {
			t.Fatalf("nondeterministic chunk count for %s", v)
		}
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("nondeterministic cipher for %s", v)
			}
		}
	}
	// Different key, different ciphertexts.
	a3, _ := Build("val", fig6Freq, cryptoprim.MustKeySet("other"))
	c1, _ := a1.CipherValues("23")
	c3, _ := a3.CipherValues("23")
	if c1[0] == c3[0] {
		t.Errorf("ciphertext independent of key")
	}
}

func TestIndexEntries(t *testing.T) {
	a, err := Build("val", map[string]int{"10": 5, "20": 2}, keys())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	blocks := []int{100, 101, 102, 103, 104}
	es, err := a.IndexEntries("10", blocks)
	if err != nil {
		t.Fatalf("IndexEntries: %v", err)
	}
	s := a.ScaleOf("10")
	if s < 1 || s > 10 {
		t.Fatalf("scale = %d", s)
	}
	if len(es) != 5*s {
		t.Errorf("entries = %d, want occurrences 5 x scale %d", len(es), s)
	}
	// Every block appears exactly scale times.
	cnt := map[int]int{}
	for _, e := range es {
		cnt[e.BlockID]++
	}
	for _, b := range blocks {
		if cnt[b] != s {
			t.Errorf("block %d appears %d times, want %d", b, cnt[b], s)
		}
	}
	// Occurrence count mismatch is rejected.
	if _, err := a.IndexEntries("10", []int{1, 2}); err == nil {
		t.Errorf("wrong occurrence count accepted")
	}
	if _, err := a.IndexEntries("99", blocks); err == nil {
		t.Errorf("unknown value accepted")
	}
}

func TestSingletonSplitIntoM(t *testing.T) {
	a, err := Build("val", map[string]int{"5": 1, "9": 4}, keys())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cs, _ := a.CipherValues("5")
	if len(cs) != a.M {
		t.Errorf("singleton splits into %d ciphertexts, want M=%d", len(cs), a.M)
	}
	es, err := a.IndexEntries("5", []int{42})
	if err != nil {
		t.Fatalf("IndexEntries singleton: %v", err)
	}
	if len(es) != a.M*a.ScaleOf("5") {
		t.Errorf("singleton entries = %d, want M*scale = %d", len(es), a.M*a.ScaleOf("5"))
	}
	for _, e := range es {
		if e.BlockID != 42 {
			t.Errorf("singleton entry points at block %d", e.BlockID)
		}
	}
}

func TestTranslateRangeEquality(t *testing.T) {
	a, _ := Build("val", fig6Freq, keys())
	for _, v := range a.Values() {
		rs, err := a.TranslateRange(xpath.OpEq, v)
		if err != nil {
			t.Fatalf("TranslateRange: %v", err)
		}
		if len(rs) != 1 {
			t.Fatalf("equality -> %d ranges", len(rs))
		}
		ciphers, _ := a.CipherValues(v)
		for _, c := range ciphers {
			if c < rs[0].Lo || c > rs[0].Hi {
				t.Errorf("cipher of %s outside its equality range", v)
			}
		}
		// No other value's ciphertexts fall in the range.
		for _, o := range a.Values() {
			if o == v {
				continue
			}
			for _, c := range mustCiphers(t, a, o) {
				if c >= rs[0].Lo && c <= rs[0].Hi {
					t.Errorf("cipher of %s inside equality range of %s", o, v)
				}
			}
		}
	}
}

func mustCiphers(t *testing.T, a *Attribute, v string) []uint64 {
	t.Helper()
	cs, err := a.CipherValues(v)
	if err != nil {
		t.Fatalf("CipherValues(%s): %v", v, err)
	}
	return cs
}

func TestTranslateRangeInequalities(t *testing.T) {
	a, _ := Build("val", fig6Freq, keys())
	// Values sorted numerically: 12, 23, 77, 90, 932, 1001.
	inRange := func(rs []Range, c uint64) bool {
		for _, r := range rs {
			if c >= r.Lo && c <= r.Hi {
				return true
			}
		}
		return false
	}
	check := func(op xpath.Op, lit string, holds func(v string) bool) {
		rs, err := a.TranslateRange(op, lit)
		if err != nil {
			t.Fatalf("TranslateRange(%v, %s): %v", op, lit, err)
		}
		for _, v := range a.Values() {
			for _, c := range mustCiphers(t, a, v) {
				if got := inRange(rs, c); got != holds(v) {
					t.Errorf("op %v lit %s value %s: inRange=%v want %v", op, lit, v, got, holds(v))
				}
			}
		}
	}
	check(xpath.OpLt, "77", func(v string) bool { return v == "12" || v == "23" })
	check(xpath.OpLe, "77", func(v string) bool { return v == "12" || v == "23" || v == "77" })
	check(xpath.OpGt, "77", func(v string) bool { return v == "90" || v == "932" || v == "1001" })
	check(xpath.OpGe, "77", func(v string) bool { return v != "12" && v != "23" })
	check(xpath.OpNe, "77", func(v string) bool { return v != "77" })
	// Literal between two domain values.
	check(xpath.OpGt, "50", func(v string) bool { return v != "12" && v != "23" })
	check(xpath.OpEq, "50", func(v string) bool { return false })
}

func TestCategoricalDomain(t *testing.T) {
	freq := map[string]int{"diarrhea": 2, "leukemia": 1, "flu": 3}
	a, err := Build("disease", freq, keys())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if a.Numeric {
		t.Fatalf("disease should be categorical")
	}
	// Order is lexicographic: diarrhea < flu < leukemia.
	vs := a.Values()
	if vs[0] != "diarrhea" || vs[1] != "flu" || vs[2] != "leukemia" {
		t.Fatalf("values = %v", vs)
	}
	// Equality ranges separate values.
	rd, _ := a.TranslateRange(xpath.OpEq, "diarrhea")
	rl, _ := a.TranslateRange(xpath.OpEq, "leukemia")
	if rd[0].Hi >= rl[0].Lo {
		t.Errorf("categorical ranges overlap")
	}
	// Unknown literal: empty match but valid range.
	ru, err := a.TranslateRange(xpath.OpEq, "gout")
	if err != nil {
		t.Fatalf("unknown literal: %v", err)
	}
	for _, v := range vs {
		for _, c := range mustCiphers(t, a, v) {
			if c >= ru[0].Lo && c <= ru[0].Hi {
				t.Errorf("unknown literal range matches %s", v)
			}
		}
	}
}

func TestNumDistinctCiphertexts(t *testing.T) {
	a, _ := Build("val", fig6Freq, keys())
	n := a.NumDistinctCiphertexts()
	if n <= len(a.Values()) {
		t.Errorf("splitting should expand the domain: n=%d k=%d", n, len(a.Values()))
	}
	total := 0
	for _, v := range a.Values() {
		total += len(a.ChunksOf(v))
	}
	if n != total {
		t.Errorf("NumDistinctCiphertexts = %d, want %d", n, total)
	}
}

func TestBandsDisjoint(t *testing.T) {
	// Two attributes in different bands must occupy disjoint
	// ciphertext windows, even with identical value domains.
	ks := keys()
	freq := map[string]int{"10": 5, "20": 5}
	a1, err := BuildBand("attr1", freq, ks, 1)
	if err != nil {
		t.Fatalf("BuildBand: %v", err)
	}
	a2, err := BuildBand("attr2", freq, ks, 2)
	if err != nil {
		t.Fatalf("BuildBand: %v", err)
	}
	var max1, min2 uint64 = 0, ^uint64(0)
	for _, v := range a1.Values() {
		for _, c := range mustCiphers(t, a1, v) {
			if c > max1 {
				max1 = c
			}
		}
	}
	for _, v := range a2.Values() {
		for _, c := range mustCiphers(t, a2, v) {
			if c < min2 {
				min2 = c
			}
		}
	}
	if max1 >= min2 {
		t.Errorf("bands interleave: max(band1)=%d >= min(band2)=%d", max1, min2)
	}
	// Open-ended ranges stay inside the attribute's own band.
	rs, err := a1.TranslateRange(xpath.OpGt, "10")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Hi >= min2 {
			t.Errorf("band-1 range [%d, %d] reaches into band 2 (starts %d)", r.Lo, r.Hi, min2)
		}
	}
	rs, err = a2.TranslateRange(xpath.OpLt, "20")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Lo <= max1 {
			t.Errorf("band-2 range [%d, %d] reaches into band 1 (ends %d)", r.Lo, r.Hi, max1)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("empty", map[string]int{}, keys()); err == nil {
		t.Errorf("empty domain accepted")
	}
	if _, err := Build("bad", map[string]int{"x": 0}, keys()); err == nil {
		t.Errorf("zero frequency accepted")
	}
}

// Property: for random frequency maps, splitting preserves the total
// occurrence count (Σn_i = Σf_j, the invariant scaling then breaks),
// chunk sizes stay within [M-1, M+1] (or 1 for singletons), and
// ciphertexts never straddle.
func TestQuickSplitInvariants(t *testing.T) {
	ks := keys()
	f := func(seed uint32) bool {
		s := seed
		next := func(n uint32) uint32 {
			s = s*1664525 + 1013904223
			return (s >> 16) % n
		}
		freq := map[string]int{}
		k := int(next(8)) + 1
		for i := 0; i < k; i++ {
			freq[string(rune('a'+i))] = int(next(40)) + 1
		}
		a, err := Build("q", freq, ks)
		if err != nil {
			t.Logf("Build: %v", err)
			return false
		}
		var prevMax uint64
		first := true
		for _, v := range a.Values() {
			sum := 0
			for _, c := range a.ChunksOf(v) {
				sum += c
			}
			want := freq[v]
			if want == 1 {
				if len(a.ChunksOf(v)) != a.M {
					return false
				}
			} else if sum != want {
				return false
			}
			cs, err := a.CipherValues(v)
			if err != nil {
				return false
			}
			if !first && cs[0] <= prevMax {
				return false
			}
			first = false
			prevMax = cs[len(cs)-1]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
