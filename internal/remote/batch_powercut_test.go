package remote

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// TestPowercutBatchAtomicity crashes the durable service around the
// group commit of whole update batches: every cycle, K concurrent
// writers to disjoint leaf families coalesce into exactly one SXB1
// frame (batch size K, a generous timer), and a power cut armed at a
// random write offset lands before, inside, or after that batch's WAL
// append + fsync. Invariants, checked every cycle:
//
//   - batch atomicity: after recovery (before any reconciliation) the
//     server holds either every member's new value or every member's
//     old value — a torn WAL tail drops the whole batch record, never
//     part of it, so no partial generation can exist;
//   - ack after fsync: a batch whose callers saw success is durable —
//     the post-recovery probe must show every member applied;
//   - no falsely acked caller: members of a crashed flush all come
//     back ErrUpdatePending (never a silent success), and one
//     Reconcile settles the whole batch.
func TestPowercutBatchAtomicity(t *testing.T) {
	cycles := powercutCycles(t)
	const (
		families        = 3
		leavesPerFamily = 2
	)
	dir := t.TempDir()
	fs := faultfs.NewFaulty(20260809)
	fs.TornTails(true)
	opts := PersistOptions{FS: fs, CheckpointEvery: 3}

	var xml string
	var familySCs []string
	xml = "<db>"
	for w := 0; w < families; w++ {
		xml += fmt.Sprintf("<grp><name>g%d</name>", w)
		for i := 0; i < leavesPerFamily; i++ {
			xml += fmt.Sprintf("<v%d>init</v%d>", w, w)
		}
		xml += "</grp>"
		familySCs = append(familySCs, fmt.Sprintf("//v%d", w))
	}
	xml += "</db>"
	doc, err := xmltree.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Host(doc, familySCs, core.SchemeOpt, []byte("batch-powercut"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Batch fills at exactly the writer count, so each cycle's updates
	// travel as one frame; the long timer never fires first.
	sys.EnableUpdateBatching(families, time.Second)

	svc, err := NewPersistentServiceOpts(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	newClient := func(ts *httptest.Server) *Client {
		return Dial(ts.URL, "fam").
			WithHTTPClient(ts.Client()).
			WithRetry(NoRetry).
			WithVerifier(sys.Verifier())
	}
	if err := newClient(ts).Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatalf("baseline upload: %v", err)
	}
	sys.UseBackend(newClient(ts))

	// probeFamily reads a family's served values straight off the
	// recovered server — translated and decrypted with the owner's
	// tables but WITHOUT the verifier gate, so it can observe the
	// server state while an ambiguous batch still blocks verified
	// queries. Tag-only queries don't touch the value bands a pending
	// batch may have rewritten client-side.
	probeFamily := func(ts *httptest.Server, w int) ([]string, error) {
		probe := Dial(ts.URL, "fam").WithHTTPClient(ts.Client()).WithRetry(NoRetry)
		path, err := xpath.Parse(fmt.Sprintf("//v%d", w))
		if err != nil {
			return nil, err
		}
		qs, err := sys.Client.Translate(path)
		if err != nil {
			return nil, err
		}
		ans, err := probe.Execute(context.Background(), qs)
		if err != nil {
			return nil, err
		}
		blocks, err := sys.Client.DecryptBlocks(ans)
		if err != nil {
			return nil, err
		}
		res, err := sys.Client.PostProcessFull(path, ans, blocks)
		if err != nil {
			return nil, err
		}
		var out []string
		for _, n := range res.Nodes {
			out = append(out, n.LeafValue())
		}
		return out, nil
	}

	expected := make([]string, families)
	for w := range expected {
		expected[w] = "init"
	}
	ackedCycles, pendingCycles, replayed, dropped := 0, 0, 0, 0
	for cycle := 0; cycle < cycles; cycle++ {
		newVals := make([]string, families)
		errs := make([]error, families)
		for w := range newVals {
			newVals[w] = fmt.Sprintf("c%d-w%d", cycle, w)
		}

		fs.CrashAfterWrites(int64(20 + (cycle*997)%2500))
		var wg sync.WaitGroup
		for w := 0; w < families; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				_, _, errs[w] = sys.UpdateLeafValuesTimed(
					context.Background(), fmt.Sprintf("//v%d", w), newVals[w])
			}(w)
		}
		wg.Wait()

		// One frame, one outcome: the whole batch acked or the whole
		// batch went ambiguous. A member reporting definite success
		// while a sibling is pending would be a falsely acked caller.
		acked, pending := 0, 0
		for w, err := range errs {
			switch {
			case err == nil:
				acked++
			case errors.Is(err, core.ErrUpdatePending):
				pending++
			default:
				t.Fatalf("cycle %d: writer %d: unexpected update error: %v", cycle, w, err)
			}
		}
		if acked != 0 && pending != 0 {
			t.Fatalf("cycle %d: split batch outcome: %d acked, %d pending", cycle, acked, pending)
		}
		if acked == families {
			ackedCycles++
		} else {
			pendingCycles++
		}

		if !fs.Crashed() {
			fs.Crash()
		}
		ts.Close()
		svc.Close()
		fs.Reopen()

		svc, err = NewPersistentServiceOpts(dir, opts)
		if err != nil {
			t.Fatalf("cycle %d: recovery failed hard: %v", cycle, err)
		}
		if q := svc.Quarantined(); len(q) != 0 {
			t.Fatalf("cycle %d: clean power cut produced quarantine: %+v", cycle, q)
		}
		ts = httptest.NewServer(svc)
		sys.UseBackend(newClient(ts))

		// Atomicity probe, before reconciliation: every family is
		// wholly old or wholly new, and all families agree — the WAL
		// replayed the batch record completely or dropped it
		// completely.
		applied := 0
		for w := 0; w < families; w++ {
			vals, err := probeFamily(ts, w)
			if err != nil {
				t.Fatalf("cycle %d: probe family %d: %v", cycle, w, err)
			}
			if len(vals) != leavesPerFamily {
				t.Fatalf("cycle %d: probe family %d: %d leaves, want %d", cycle, w, len(vals), leavesPerFamily)
			}
			for _, v := range vals[1:] {
				if v != vals[0] {
					t.Fatalf("cycle %d: family %d torn within one member: %q vs %q", cycle, w, vals[0], v)
				}
			}
			switch vals[0] {
			case newVals[w]:
				applied++
			case expected[w]:
			default:
				t.Fatalf("cycle %d: family %d holds %q, which is neither pre-batch %q nor post-batch %q",
					cycle, w, vals[0], expected[w], newVals[w])
			}
		}
		if applied != 0 && applied != families {
			t.Fatalf("cycle %d: partial batch survived recovery: %d of %d members applied", cycle, applied, families)
		}
		if acked == families && applied != families {
			t.Fatalf("cycle %d: acked batch not durable: %d of %d members applied after the cut", cycle, applied, families)
		}
		if applied == families {
			replayed++
		} else {
			dropped++
		}

		// Settle the at-most-one ambiguous batch; afterwards every
		// member is committed and the verified path serves it.
		if sys.UpdatePending() {
			if _, err := sys.Reconcile(context.Background()); err != nil {
				t.Fatalf("cycle %d: reconcile: %v", cycle, err)
			}
		}
		copy(expected, newVals)
		for w := 0; w < families; w++ {
			nodes, _, _, err := sys.Query(fmt.Sprintf("//v%d", w))
			if err != nil {
				t.Fatalf("cycle %d: verified query of family %d after recovery: %v", cycle, w, err)
			}
			if len(nodes) != leavesPerFamily {
				t.Fatalf("cycle %d: family %d: %d leaves, want %d", cycle, w, len(nodes), leavesPerFamily)
			}
			for _, n := range nodes {
				if n.LeafValue() != expected[w] {
					t.Fatalf("cycle %d: family %d: acked value lost: %q want %q",
						cycle, w, n.LeafValue(), expected[w])
				}
			}
		}
	}
	ts.Close()
	svc.Close()
	t.Logf("batch powercut: %d cycles, all group commits atomic (%d acked, %d ambiguous; %d batches durable at recovery, %d wholly absent)",
		cycles, ackedCycles, pendingCycles, replayed, dropped)
}
