package remote

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
	"repro/internal/xmltree"
)

// hostHospital uploads the hospital database to svc over httptest and
// returns the owner system plus a dialed client.
func hostHospital(t *testing.T, svc *Service) (*core.System, *httptest.Server, *Client) {
	t.Helper()
	doc, err := xmltree.ParseString(hospitalXML)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("batch-test"))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	cl := Dial(ts.URL, "hospital").WithHTTPClient(ts.Client())
	if err := cl.Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatal(err)
	}
	return sys, ts, cl
}

// blockUpdate replaces block 0's ciphertext (transport-level tests
// don't decrypt afterwards, so any bytes do).
func blockUpdate(id uint64, ct ...byte) *wire.Update {
	return &wire.Update{RequestID: id, Blocks: []wire.BlockUpdate{{ID: 0, Ciphertext: ct}}}
}

func (s *Service) hospital(t *testing.T) *hosted {
	t.Helper()
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := s.dbs["hospital"]
	if h == nil {
		t.Fatal("hospital not hosted")
	}
	return h
}

func TestRemoteBatchFrame(t *testing.T) {
	svc := NewService()
	_, _, cl := hostHospital(t, svc)
	h := svc.hospital(t)
	gen0 := h.srv.Generation()

	b := &wire.UpdateBatch{
		RequestID: 77,
		Updates:   []*wire.Update{blockUpdate(1, 9, 9), blockUpdate(2, 8, 8, 8)},
	}
	if err := cl.ApplyUpdateBatch(context.Background(), b); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if got := h.srv.Generation(); got != gen0+1 {
		t.Fatalf("batch of 2 bumped generation %d times, want 1", got-gen0)
	}
	if h.updBatches.Load() != 1 || h.updBatched.Load() != 2 {
		t.Fatalf("batch counters: batches=%d batched=%d", h.updBatches.Load(), h.updBatched.Load())
	}

	// A retry of the whole batch dedups at the batch level.
	if err := cl.ApplyUpdateBatch(context.Background(), b); err != nil {
		t.Fatalf("batch retry: %v", err)
	}
	if svc.DedupHits() != 1 {
		t.Fatalf("dedup hits = %d after batch retry", svc.DedupHits())
	}
	// A single-update retry of a member dedups too.
	if err := cl.ApplyUpdate(context.Background(), blockUpdate(1, 9, 9)); err != nil {
		t.Fatalf("member retry: %v", err)
	}
	if svc.DedupHits() != 2 {
		t.Fatalf("dedup hits = %d after member retry", svc.DedupHits())
	}
	if got := h.srv.Generation(); got != gen0+1 {
		t.Fatalf("retries moved the generation to %d", got)
	}
}

func TestUpdateCoalescingBySize(t *testing.T) {
	// maxWait is deliberately huge: only the size trigger may flush,
	// which proves the four concurrent requests really shared one
	// group commit.
	svc := NewService().WithUpdateBatching(4, time.Minute)
	_, _, cl := hostHospital(t, svc)
	h := svc.hospital(t)
	gen0 := h.srv.Generation()

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = cl.ApplyUpdate(context.Background(), blockUpdate(uint64(100+i), byte(i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	if got := h.srv.Generation(); got != gen0+1 {
		t.Fatalf("4 coalesced updates bumped generation %d times, want 1", got-gen0)
	}
	if h.updBatches.Load() != 1 || h.updBatched.Load() != 4 || h.updFlushSize.Load() != 1 {
		t.Fatalf("counters: batches=%d batched=%d bySize=%d",
			h.updBatches.Load(), h.updBatched.Load(), h.updFlushSize.Load())
	}
	if h.updMaxBatch.Load() != 4 {
		t.Fatalf("maxBatch = %d", h.updMaxBatch.Load())
	}
	if h.updEnqueueNs.Load() <= 0 || h.updApplyNs.Load() <= 0 {
		t.Fatal("batching timings not recorded")
	}
}

func TestUpdateCoalescingByTimer(t *testing.T) {
	// Queue far larger than the traffic: only the timer can flush.
	svc := NewService().WithUpdateBatching(64, 5*time.Millisecond)
	_, _, cl := hostHospital(t, svc)
	h := svc.hospital(t)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = cl.ApplyUpdate(context.Background(), blockUpdate(uint64(200+i), byte(i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	if h.updFlushTime.Load() == 0 {
		t.Fatal("no timer-triggered flush")
	}
	if h.updSingles.Load() != 0 {
		t.Fatalf("%d updates bypassed the coalescer", h.updSingles.Load())
	}
	if got := h.updBatched.Load(); got != 2 {
		t.Fatalf("batched = %d, want 2", got)
	}
}

func TestCoalescingFallbackIsolatesBadMember(t *testing.T) {
	svc := NewService().WithUpdateBatching(2, time.Minute)
	_, _, cl := hostHospital(t, svc)
	h := svc.hospital(t)
	gen0 := h.srv.Generation()

	cl.WithRetry(NoRetry)
	bad := &wire.Update{RequestID: 301, Blocks: []wire.BlockUpdate{{ID: 1 << 20, Ciphertext: []byte{1}}}}
	good := blockUpdate(302, 5, 5)
	var wg sync.WaitGroup
	var badErr, goodErr error
	wg.Add(2)
	go func() { defer wg.Done(); badErr = cl.ApplyUpdate(context.Background(), bad) }()
	go func() { defer wg.Done(); goodErr = cl.ApplyUpdate(context.Background(), good) }()
	wg.Wait()

	// The malformed member rejects alone; its co-batched neighbor
	// commits through the one-at-a-time fallback.
	if badErr == nil {
		t.Fatal("out-of-range update acknowledged")
	}
	if goodErr != nil {
		t.Fatalf("good update rejected alongside the bad one: %v", goodErr)
	}
	if got := h.srv.Generation(); got != gen0+1 {
		t.Fatalf("generation moved %d, want 1 (good member only)", got-gen0)
	}
	if h.updSingles.Load() != 1 {
		t.Fatalf("fallback singles = %d, want 1", h.updSingles.Load())
	}
	if h.updBatches.Load() != 0 {
		t.Fatalf("failed batch counted as committed: %d", h.updBatches.Load())
	}
}

func TestBatchRecordReplaysAtomically(t *testing.T) {
	dir := t.TempDir()
	svc, err := NewPersistentService(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts, cl := hostHospital(t, svc)
	h := svc.hospital(t)

	b := &wire.UpdateBatch{
		RequestID: 401,
		Updates: []*wire.Update{
			{RequestID: 402, Blocks: []wire.BlockUpdate{{ID: 0, Ciphertext: []byte{1, 2, 3}}}},
			{RequestID: 403, Blocks: []wire.BlockUpdate{{ID: 1, Ciphertext: []byte{4, 5}}}},
			{RequestID: 404, Blocks: []wire.BlockUpdate{{ID: 0, Ciphertext: []byte{6, 7, 8}}}},
		},
	}
	if err := cl.ApplyUpdateBatch(context.Background(), b); err != nil {
		t.Fatalf("batch: %v", err)
	}
	wantGen := h.srv.Generation()
	ts.Close()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the batch record — one WAL record for all three members
	// — replays as one unit at its original generation.
	svc2, err := NewPersistentService(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if q := svc2.Quarantined(); len(q) != 0 {
		t.Fatalf("quarantined on reload: %+v", q)
	}
	h2 := svc2.hospital(t)
	if got := h2.srv.Generation(); got != wantGen {
		t.Fatalf("recovered generation %d, want %d", got, wantGen)
	}
	rec := svc2.Recoveries()["hospital"]
	if rec.Replayed != 1 {
		t.Fatalf("replayed %d records, want 1 (the batch)", rec.Replayed)
	}
	if got := h2.srv.CurrentDB().Blocks[0]; len(got) != 3 || got[0] != 6 {
		t.Fatalf("block 0 after replay = %v (later member must win)", got)
	}
	if got := h2.srv.CurrentDB().Blocks[1]; len(got) != 2 || got[0] != 4 {
		t.Fatalf("block 1 after replay = %v", got)
	}
	// The dedup table is re-armed for the batch AND its members.
	for _, id := range []uint64{401, 402, 403, 404} {
		if !h2.seen[id] {
			t.Fatalf("request id %d not re-armed after replay", id)
		}
	}
}

func TestCoalescedUpdatesAreDurable(t *testing.T) {
	dir := t.TempDir()
	svc, err := NewPersistentService(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc.WithUpdateBatching(4, time.Minute)
	_, ts, cl := hostHospital(t, svc)
	h := svc.hospital(t)

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = cl.ApplyUpdate(context.Background(), blockUpdate(uint64(500+i), byte(10+i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	wantGen := h.srv.Generation()
	lastCT := append([]byte(nil), h.srv.CurrentDB().Blocks[0]...)
	ts.Close()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	svc2, err := NewPersistentService(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	h2 := svc2.hospital(t)
	if got := h2.srv.Generation(); got != wantGen {
		t.Fatalf("recovered generation %d, want %d", got, wantGen)
	}
	if rec := svc2.Recoveries()["hospital"]; rec.Replayed != 1 {
		t.Fatalf("replayed %d records, want 1 (one record per group commit)", rec.Replayed)
	}
	if got := h2.srv.CurrentDB().Blocks[0]; string(got) != string(lastCT) {
		t.Fatalf("block 0 after replay = %v, want %v", got, lastCT)
	}
	for i := 0; i < 4; i++ {
		if !h2.seen[uint64(500+i)] {
			t.Fatalf("member id %d not re-armed", 500+i)
		}
	}
}
