package remote

import (
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/walog"
	"repro/internal/wire"
)

// Server-side group commit for the update endpoint. Concurrent
// single-update POSTs enqueue into a per-database queue; the request
// that fills the queue to the configured size — or a timer armed by
// the first request — flushes the whole queue as ONE
// server.ApplyUpdateBatch call (one write-lock acquisition, one
// incremental Merkle advance, one generation bump) followed by ONE
// WAL record and group fsync. Every enqueued caller blocks until its
// batch is durable and then receives its own outcome, so the
// ack-after-fsync contract is exactly that of the one-at-a-time path.
// See WithUpdateBatching.

// defaultUpdateMaxWait bounds how long the first update of a batch
// waits for company before the batch flushes anyway. Small: it is
// pure added latency when the system is idle.
const defaultUpdateMaxWait = 2 * time.Millisecond

// updateBatching is the service-level configuration (nil = off).
type updateBatching struct {
	size    int
	maxWait time.Duration
}

// updateResult is what a queued caller gets back: the apply outcome
// of its own update and the persistence outcome of its batch.
type updateResult struct {
	applyErr   error
	persistErr error
}

// queuedUpdate is one caller waiting in the coalescing queue.
type queuedUpdate struct {
	raw  []byte // the SXU frame as the client sent it (fallback WAL payload)
	upd  *wire.Update
	done chan updateResult // buffered(1); exactly one result is ever sent
}

// updateQueue is the per-database coalescing state, embedded in
// hosted. Its mutex orders enqueues and flush hand-offs only; it is
// never held across apply or fsync.
type updateQueue struct {
	mu      sync.Mutex
	pending []*queuedUpdate
	timer   *time.Timer
}

// takeLocked steals the pending batch and disarms the flush timer.
// Caller holds q.mu. A timer that already fired finds the queue empty
// and does nothing.
func (q *updateQueue) takeLocked() []*queuedUpdate {
	if q.timer != nil {
		q.timer.Stop()
		q.timer = nil
	}
	batch := q.pending
	q.pending = nil
	return batch
}

// enqueueUpdate queues one rootless update for group commit and
// blocks until its batch is applied and durable (bounded by maxWait
// plus one apply and one fsync — which is why the caller's context is
// not consulted here). The filling request flushes inline; otherwise
// the first request of a batch arms the timer that will.
func (s *Service) enqueueUpdate(h *hosted, raw []byte, upd *wire.Update) (applyErr, persistErr error) {
	cfg := s.batching
	qu := &queuedUpdate{raw: raw, upd: upd, done: make(chan updateResult, 1)}
	q := &h.updQ
	t0 := time.Now()
	q.mu.Lock()
	q.pending = append(q.pending, qu)
	if len(q.pending) >= cfg.size {
		batch := q.takeLocked()
		q.mu.Unlock()
		h.updFlushSize.Add(1)
		s.flushUpdates(h, batch)
	} else {
		if len(q.pending) == 1 {
			// Brownout L1 ("lean"): shrink the coalescing wait to a
			// quarter, trading fsync amortization for latency the
			// moment the service is under pressure.
			maxWait := cfg.maxWait
			if s.adm().Level() >= admission.LevelLean {
				if maxWait /= 4; maxWait < 100*time.Microsecond {
					maxWait = 100 * time.Microsecond
				}
			}
			q.timer = time.AfterFunc(maxWait, func() {
				q.mu.Lock()
				batch := q.takeLocked()
				q.mu.Unlock()
				if len(batch) == 0 {
					return // a size-triggered flush got here first
				}
				h.updFlushTime.Add(1)
				s.flushUpdates(h, batch)
			})
		}
		q.mu.Unlock()
	}
	res := <-qu.done
	h.updEnqueueNs.Add(int64(time.Since(t0)))
	return res.applyErr, res.persistErr
}

// flushUpdates commits one coalesced batch: dedup-filter, one atomic
// batch apply, one WAL record, one group fsync, then per-caller
// delivery. On a batch apply failure it falls back to applying the
// members one at a time, so one malformed update rejects alone
// instead of poisoning its co-batched neighbors.
func (s *Service) flushUpdates(h *hosted, batch []*queuedUpdate) {
	h.mu.Lock()
	var fresh []*queuedUpdate
	var dups []*queuedUpdate
	for _, qu := range batch {
		if qu.upd.RequestID != 0 && h.seen[qu.upd.RequestID] {
			dups = append(dups, qu)
		} else {
			fresh = append(fresh, qu)
		}
	}
	if len(dups) > 0 {
		s.dedupHits.Add(int64(len(dups)))
	}
	if len(fresh) == 0 {
		h.mu.Unlock()
		deliver(dups, updateResult{})
		return
	}
	us := make([]*wire.Update, len(fresh))
	for i, qu := range fresh {
		us[i] = qu.upd
	}
	t0 := time.Now()
	err := h.srv.ApplyUpdateBatch(us)
	h.updApplyNs.Add(int64(time.Since(t0)))
	if err != nil {
		// Still holding h.mu; flushIndividually releases it.
		s.flushIndividually(h, fresh)
		deliver(dups, updateResult{})
		return
	}
	h.noteBatch(len(us))
	var persistErr error
	var tk *walog.Ticket
	if h.dur != nil {
		// The WAL payload is a server-assembled SXB1 frame over the
		// members (batch request ID zero: nothing ever retries this
		// frame as a whole), so recovery replays the group exactly as
		// it committed — atomically, under one generation.
		payload, merr := wire.MarshalUpdateBatch(&wire.UpdateBatch{Updates: us})
		if merr != nil {
			persistErr = merr
		} else {
			tk, persistErr = s.stageDurable(h, recUpdateBatch, payload, us)
		}
	}
	h.mu.Unlock()
	if persistErr == nil {
		t1 := time.Now()
		persistErr = s.ensureDurable(h, tk)
		h.updFsyncNs.Add(int64(time.Since(t1)))
	}
	if persistErr == nil {
		h.mu.Lock()
		for _, u := range us {
			if u.RequestID != 0 {
				h.rememberLocked(u.RequestID)
			}
		}
		h.mu.Unlock()
	}
	deliver(fresh, updateResult{persistErr: persistErr})
	deliver(dups, updateResult{})
}

// flushIndividually is the fallback when a batch apply rejects:
// members re-apply one at a time, each staging its own legacy WAL
// record, so the callers see exactly the outcomes sequential POSTs
// would have produced. Called holding h.mu; releases it.
func (s *Service) flushIndividually(h *hosted, batch []*queuedUpdate) {
	results := make([]updateResult, len(batch))
	tickets := make([]*walog.Ticket, len(batch))
	for i, qu := range batch {
		err := h.srv.ApplyUpdate(qu.upd)
		results[i].applyErr = err
		if err == nil {
			h.updSingles.Add(1)
			if h.dur != nil {
				tickets[i], results[i].persistErr = s.stageDurable(h, recUpdate, qu.raw, []*wire.Update{qu.upd})
			}
		}
	}
	h.mu.Unlock()
	for i, qu := range batch {
		if results[i].applyErr == nil && results[i].persistErr == nil {
			results[i].persistErr = s.ensureDurable(h, tickets[i])
		}
		if results[i].applyErr == nil && results[i].persistErr == nil && qu.upd.RequestID != 0 {
			h.mu.Lock()
			h.rememberLocked(qu.upd.RequestID)
			h.mu.Unlock()
		}
		qu.done <- results[i]
	}
}

// deliver sends one shared result to every queued caller.
func deliver(qs []*queuedUpdate, res updateResult) {
	for _, qu := range qs {
		qu.done <- res
	}
}
