package remote

import (
	"context"
	"sync"
	"time"
)

// Circuit breaker for the client transport. After a run of
// consecutive operation failures the breaker opens and calls fail
// fast with ErrCircuitOpen instead of hammering a dead service.
// Once the cooldown elapses the breaker half-opens: the next call
// sends a single probe to the service's /healthz endpoint, and the
// breaker closes (healthy) or re-opens (still down) on the result.

// BreakerConfig configures the client's circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failed
	// operations (after retries) that trips the breaker. <= 0
	// disables the breaker.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before a probe is
	// allowed.
	Cooldown time.Duration
	// ProbeTimeout bounds the /healthz probe (default 2 s).
	ProbeTimeout time.Duration
}

// DefaultBreakerConfig trips after 5 consecutive failures and probes
// after a 1 s cooldown.
var DefaultBreakerConfig = BreakerConfig{
	FailureThreshold: 5,
	Cooldown:         time.Second,
	ProbeTimeout:     2 * time.Second,
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

type breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for tests

	mu          sync.Mutex
	state       breakerState
	consecutive int
	openedAt    time.Time
}

func newBreaker(cfg BreakerConfig) *breaker {
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	return &breaker{cfg: cfg, now: time.Now}
}

// allow decides whether an operation may proceed. It returns
// (true, false) to proceed normally, (true, true) when the caller
// holds the half-open probe slot (it must report the probe outcome
// via record), and (false, _) to fail fast.
func (b *breaker) allow() (proceed, probing bool) {
	if b == nil {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = breakerHalfOpen
			return true, true // this caller probes
		}
		return false, false
	default: // half-open: another caller is already probing
		return false, false
	}
}

// trip forces the breaker open immediately, regardless of the
// consecutive-failure count. Integrity failures use it: a server
// that just served a tampered answer is byzantine, and routing more
// traffic to it until the threshold accumulates helps nobody.
func (b *breaker) trip() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.state = breakerOpen
	b.openedAt = b.now()
	b.mu.Unlock()
}

// record feeds an operation (or probe) outcome back into the state
// machine.
func (b *breaker) record(ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = breakerClosed
		b.consecutive = 0
		return
	}
	switch b.state {
	case breakerHalfOpen:
		// Probe failed: back to open, restart the cooldown.
		b.state = breakerOpen
		b.openedAt = b.now()
	default:
		b.consecutive++
		if b.cfg.FailureThreshold > 0 && b.consecutive >= b.cfg.FailureThreshold {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
	}
}

// preflight gates one client operation on the breaker: fail fast
// while open, and when half-open, probe /healthz before letting the
// operation through.
func (c *Client) preflight(ctx context.Context) error {
	proceed, probing := c.breaker.allow()
	if !proceed {
		return ErrCircuitOpen
	}
	if !probing {
		return nil
	}
	pctx, cancel := context.WithTimeout(ctx, c.breaker.cfg.ProbeTimeout)
	err := c.Ping(pctx)
	cancel()
	c.breaker.record(err == nil)
	if err != nil {
		return ErrCircuitOpen
	}
	return nil
}
