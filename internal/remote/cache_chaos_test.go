package remote

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/xmltree"
)

// TestBlockCacheNeverServesOrStoresStale pins the two cache/breaker
// interaction invariants down under an injected outage:
//
//  1. a block-cache hit is never served with Unverified set — hits
//     only happen on live, integrity-checked answers;
//  2. a stale fallback answer is never inserted into the block cache
//     — the degraded path neither reads nor feeds it, so a later
//     recovery resumes from exactly the plaintexts the last verified
//     generation left behind.
//
// The breaker flips open mid-sequence (threshold 1, injected 503),
// the query degrades to the stale cache, and the block cache's
// counters must not move at all while degraded.
func TestBlockCacheNeverServesOrStoresStale(t *testing.T) {
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("cache-chaos"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	if err := sys.EnableIntegrity(); err != nil {
		t.Fatalf("EnableIntegrity: %v", err)
	}
	sys.EnableStaleFallback(16, 1<<20)
	sys.EnableBlockCache(64, 1<<20)

	svc := NewService()
	var failing atomic.Bool
	mux := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() && r.URL.Path != "/healthz" {
			http.Error(w, "injected outage", http.StatusServiceUnavailable)
			return
		}
		svc.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cl := Dial(ts.URL, "hospital").
		WithHTTPClient(ts.Client()).
		WithRetry(NoRetry).
		WithBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: 30 * time.Millisecond, ProbeTimeout: time.Second})
	if err := cl.Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	sys.UseBackend(cl)

	const q = "//patient[.//disease='leukemia']/pname"

	// Phase 1: cold verified query seeds the block cache.
	_, _, cold, err := sys.Query(q)
	if err != nil {
		t.Fatalf("cold query: %v", err)
	}
	if cold.Stale || cold.Unverified {
		t.Fatalf("cold answer marked stale=%v unverified=%v", cold.Stale, cold.Unverified)
	}
	if cold.BlockCacheMisses == 0 {
		t.Fatalf("cold query decrypted no blocks — test needs a block-shipping query")
	}
	if cold.Generation == 0 || cold.Epoch == 0 {
		t.Fatalf("remote answer did not echo the generation (epoch=%d gen=%d)", cold.Epoch, cold.Generation)
	}

	// Phase 2: warm verified query — hits, and invariant (1): a hit is
	// never Unverified.
	nodes, _, warm, err := sys.Query(q)
	if err != nil {
		t.Fatalf("warm query: %v", err)
	}
	if warm.BlockCacheHits != cold.BlockCacheMisses || warm.BlockCacheMisses != 0 {
		t.Fatalf("warm query hits=%d misses=%d, want %d/0", warm.BlockCacheHits, warm.BlockCacheMisses, cold.BlockCacheMisses)
	}
	if warm.Unverified || warm.Stale {
		t.Fatalf("block-cache hit served with stale=%v unverified=%v", warm.Stale, warm.Unverified)
	}
	if len(nodes) != 1 || nodes[0].LeafValue() != "Matt" {
		t.Fatalf("warm answer: %v", core.ResultStrings(nodes))
	}
	quiet := sys.BlockCacheStats()

	// Phase 3: outage. The first failure trips the breaker
	// (threshold 1); this query and the next degrade to the stale
	// cache. Neither may touch the block cache.
	failing.Store(true)
	for i := 0; i < 2; i++ {
		nodes, _, tm, err := sys.Query(q)
		if err != nil {
			t.Fatalf("degraded query %d: %v", i, err)
		}
		if !tm.Stale || !tm.Unverified {
			t.Fatalf("degraded query %d not marked: stale=%v unverified=%v", i, tm.Stale, tm.Unverified)
		}
		if len(nodes) != 1 || nodes[0].LeafValue() != "Matt" {
			t.Fatalf("degraded answer %d: %v", i, core.ResultStrings(nodes))
		}
		if tm.BlockCacheHits != 0 || tm.BlockCacheMisses != 0 {
			t.Errorf("degraded query %d touched the block cache: hits=%d misses=%d",
				i, tm.BlockCacheHits, tm.BlockCacheMisses)
		}
		if tm.Generation != 0 {
			t.Errorf("degraded query %d echoes generation %d; stale freshness is unknown, want 0", i, tm.Generation)
		}
	}
	// Invariant (2): the whole degraded phase left the cache
	// untouched — no hit, no miss, no insertion, no eviction.
	if got := sys.BlockCacheStats(); got != quiet {
		t.Errorf("block cache moved while degraded:\n before %+v\n after  %+v", quiet, got)
	}

	// Phase 4: recovery. Heal, wait out the cooldown; the live path
	// resumes from the still-valid cached plaintexts (same epoch and
	// generation), verified again.
	failing.Store(false)
	time.Sleep(40 * time.Millisecond)
	_, _, rec, err := sys.Query(q)
	if err != nil {
		t.Fatalf("post-recovery query: %v", err)
	}
	if rec.Stale || rec.Unverified {
		t.Fatalf("post-recovery answer marked stale=%v unverified=%v", rec.Stale, rec.Unverified)
	}
	if rec.BlockCacheHits == 0 || rec.BlockCacheMisses != 0 {
		t.Errorf("post-recovery query hits=%d misses=%d, want all hits (cache should have survived the outage)",
			rec.BlockCacheHits, rec.BlockCacheMisses)
	}
	if rec.Generation != cold.Generation || rec.Epoch != cold.Epoch {
		t.Errorf("generation moved across the outage without an update: %d:%d -> %d:%d",
			cold.Epoch, cold.Generation, rec.Epoch, rec.Generation)
	}
}
