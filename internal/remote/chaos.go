package remote

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Fault injection for the client/server transport. A deterministic,
// seeded fault source drives two harnesses:
//
//   - a client-side http.RoundTripper wrapper injecting latency,
//     connection-level failures and damaged response bodies, and
//   - a server-side middleware injecting latency, 5xx (after the
//     handler ran — modelling "work done, ack lost") and truncated
//     responses.
//
// The chaos test suite uses both to prove that under double-digit
// fault rates every operation either succeeds or fails with a typed
// error — never a torn result, never a panic.

// FaultConfig sets per-request injection rates, each in [0, 1].
type FaultConfig struct {
	// Seed makes the injection sequence deterministic.
	Seed int64
	// LatencyRate injects Latency of extra delay.
	LatencyRate float64
	Latency     time.Duration
	// DropRate fails the request at connection level before it
	// reaches the server (client side only).
	DropRate float64
	// TruncateRate cuts the response body short, as a mid-body
	// connection reset.
	TruncateRate float64
	// CorruptRate flips bytes in the response body.
	CorruptRate float64
	// ErrorRate replaces the response with a 503 (server side only).
	ErrorRate float64
}

// FaultCounts reports how many faults of each kind actually fired.
type FaultCounts struct {
	Latency, Drop, Truncate, Corrupt, Error int
}

// Total sums all injected faults.
func (c FaultCounts) Total() int {
	return c.Latency + c.Drop + c.Truncate + c.Corrupt + c.Error
}

// faultSource is the shared seeded randomness + accounting.
type faultSource struct {
	mu     sync.Mutex
	rng    *rand.Rand
	counts FaultCounts
}

func newFaultSource(seed int64) *faultSource {
	return &faultSource{rng: rand.New(rand.NewSource(seed))}
}

func (f *faultSource) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	f.mu.Lock()
	hit := f.rng.Float64() < rate
	f.mu.Unlock()
	return hit
}

// errInjectedReset is the synthetic connection-level failure; it
// reaches the caller wrapped in *url.Error, like a real reset.
var errInjectedReset = errors.New("injected: connection reset by peer")

// FaultRoundTripper wraps an http.RoundTripper with fault injection.
type FaultRoundTripper struct {
	base http.RoundTripper
	cfg  FaultConfig
	src  *faultSource
}

// NewFaultRoundTripper builds a faulty transport over base
// (http.DefaultTransport when base is nil).
func NewFaultRoundTripper(base http.RoundTripper, cfg FaultConfig) *FaultRoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &FaultRoundTripper{base: base, cfg: cfg, src: newFaultSource(cfg.Seed)}
}

// Counts returns how many faults have been injected so far.
func (f *FaultRoundTripper) Counts() FaultCounts {
	f.src.mu.Lock()
	defer f.src.mu.Unlock()
	return f.src.counts
}

// RoundTrip implements http.RoundTripper.
func (f *FaultRoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.src.roll(f.cfg.LatencyRate) {
		f.count(func(c *FaultCounts) { c.Latency++ })
		t := time.NewTimer(f.cfg.Latency)
		select {
		case <-req.Context().Done():
			t.Stop()
			return nil, req.Context().Err()
		case <-t.C:
		}
	}
	if f.src.roll(f.cfg.DropRate) {
		f.count(func(c *FaultCounts) { c.Drop++ })
		// Drain the body so the connection is reusable, like a real
		// transport would after a write error.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, errInjectedReset
	}
	resp, err := f.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if f.src.roll(f.cfg.TruncateRate) {
		f.count(func(c *FaultCounts) { c.Truncate++ })
		resp.Body = truncateBody(resp.Body)
	} else if f.src.roll(f.cfg.CorruptRate) {
		f.count(func(c *FaultCounts) { c.Corrupt++ })
		resp.Body = f.corruptBody(resp.Body)
	}
	return resp, nil
}

func (f *FaultRoundTripper) count(fn func(*FaultCounts)) {
	f.src.mu.Lock()
	fn(&f.src.counts)
	f.src.mu.Unlock()
}

// truncateBody reads the full body but delivers only the first half,
// then fails the read like a reset connection.
func truncateBody(body io.ReadCloser) io.ReadCloser {
	data, _ := io.ReadAll(body)
	body.Close()
	return &tornReader{data: data[:len(data)/2]}
}

// corruptBody flips a byte somewhere in the body.
func (f *FaultRoundTripper) corruptBody(body io.ReadCloser) io.ReadCloser {
	data, _ := io.ReadAll(body)
	body.Close()
	if len(data) > 0 {
		f.src.mu.Lock()
		i := f.src.rng.Intn(len(data))
		f.src.mu.Unlock()
		data[i] ^= 0xFF
	}
	return io.NopCloser(bytes.NewReader(data))
}

// tornReader yields its data then fails with io.ErrUnexpectedEOF,
// the way a reset mid-body surfaces to the reader.
type tornReader struct {
	data []byte
	off  int
}

func (t *tornReader) Read(p []byte) (int, error) {
	if t.off >= len(t.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, t.data[t.off:])
	t.off += n
	return n, nil
}

func (t *tornReader) Close() error { return nil }

// ChaosHandler wraps an http.Handler with server-side fault
// injection. Responses are buffered so faults can be decided after
// the handler ran: an injected 503 models a server that did the work
// but whose acknowledgment was lost — exactly the case the client's
// request-ID dedup exists for.
type ChaosHandler struct {
	next http.Handler
	cfg  FaultConfig
	src  *faultSource
}

// NewChaosHandler wraps next with fault injection.
func NewChaosHandler(next http.Handler, cfg FaultConfig) *ChaosHandler {
	return &ChaosHandler{next: next, cfg: cfg, src: newFaultSource(cfg.Seed)}
}

// Counts returns how many faults have been injected so far.
func (c *ChaosHandler) Counts() FaultCounts {
	c.src.mu.Lock()
	defer c.src.mu.Unlock()
	return c.src.counts
}

// ServeHTTP implements http.Handler.
func (c *ChaosHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if c.src.roll(c.cfg.LatencyRate) {
		c.countSrv(func(fc *FaultCounts) { fc.Latency++ })
		t := time.NewTimer(c.cfg.Latency)
		select {
		case <-r.Context().Done():
			t.Stop()
			return
		case <-t.C:
		}
	}
	rec := &bufferedResponse{header: http.Header{}, code: http.StatusOK}
	c.next.ServeHTTP(rec, r)

	if c.src.roll(c.cfg.ErrorRate) {
		c.countSrv(func(fc *FaultCounts) { fc.Error++ })
		http.Error(w, "injected: service unavailable", http.StatusServiceUnavailable)
		return
	}
	body := rec.body.Bytes()
	if c.src.roll(c.cfg.CorruptRate) && len(body) > 0 {
		c.countSrv(func(fc *FaultCounts) { fc.Corrupt++ })
		body = bytes.Clone(body)
		c.src.mu.Lock()
		body[c.src.rng.Intn(len(body))] ^= 0xFF
		c.src.mu.Unlock()
	}
	truncate := c.src.roll(c.cfg.TruncateRate) && len(body) > 1
	if truncate {
		c.countSrv(func(fc *FaultCounts) { fc.Truncate++ })
	}
	for k, vs := range rec.header {
		w.Header()[k] = vs
	}
	// Declare the full length even when truncating: the Go server
	// aborts the connection on the shortfall, which the client sees
	// as a torn read.
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	w.WriteHeader(rec.code)
	if truncate {
		w.Write(body[:len(body)/2])
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler) // slam the connection shut
	}
	w.Write(body)
}

func (c *ChaosHandler) countSrv(fn func(*FaultCounts)) {
	c.src.mu.Lock()
	fn(&c.src.counts)
	c.src.mu.Unlock()
}

// bufferedResponse captures a handler's response for post-hoc fault
// decisions.
type bufferedResponse struct {
	header http.Header
	body   bytes.Buffer
	code   int
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) { b.code = code }

func (b *bufferedResponse) Write(p []byte) (int, error) { return b.body.Write(p) }
