package remote

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// The chaos suite: drive the full client/server path through
// deterministic fault injection on both sides of the wire and prove
// that no combination of dropped connections, torn bodies, damaged
// bytes and injected 5xx ever produces a wrong answer, a torn
// result, or a panic — only success or a typed error.

// chaosSystem hosts the hospital database behind a chaos-wrapped
// service and points a fault-injecting client at it.
func chaosSystem(t *testing.T, serverCfg, clientCfg FaultConfig, retry RetryPolicy) (*core.System, *Client, *ChaosHandler, *FaultRoundTripper, *Service) {
	t.Helper()
	doc, err := xmltree.ParseString(hospitalXML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("chaos-test"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	svc := NewService()
	chaos := NewChaosHandler(svc, serverCfg)
	ts := httptest.NewServer(chaos)
	t.Cleanup(ts.Close)
	frt := NewFaultRoundTripper(ts.Client().Transport, clientCfg)
	cl := Dial(ts.URL, "hospital").
		WithHTTPClient(&http.Client{Transport: frt}).
		WithRetry(retry).
		WithBreaker(BreakerConfig{}). // breaker off: tested separately
		withJitterSeed(7)
	// Upload through the faulty transport too: retries must get the
	// idempotent PUT through.
	if err := cl.Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatalf("Upload through chaos: %v", err)
	}
	sys.UseBackend(cl)
	return sys, cl, chaos, frt, svc
}

// typedError checks that err belongs to the transport's declared
// failure vocabulary; anything else (in particular a raw string
// error from a torn parse) fails the test.
func typedError(t *testing.T, op string, err error) {
	t.Helper()
	var se *StatusError
	var ue *url.Error
	switch {
	case errors.As(err, &se):
	case errors.As(err, &ue):
	case errors.Is(err, ErrCircuitOpen):
	case errors.Is(err, ErrChecksum):
	case errors.Is(err, io.ErrUnexpectedEOF):
	case errors.Is(err, context.DeadlineExceeded):
	case errors.Is(err, context.Canceled):
	default:
		t.Errorf("%s: untyped error %T: %v", op, err, err)
	}
}

var chaosQueries = []string{
	"//patient/pname",
	"//patient[.//disease='diarrhea']/SSN",
	"//patient[age>36]",
	"//treat[disease='leukemia']/doctor",
	"//insurance/@coverage",
}

// TestChaosQueriesNeverTorn runs 150 queries under ~20% combined
// injected fault rate. Every query must either return exactly the
// plaintext-equivalent answer or a typed error.
func TestChaosQueriesNeverTorn(t *testing.T) {
	sys, _, chaos, frt, _ := chaosSystem(t,
		FaultConfig{Seed: 1, ErrorRate: 0.05, TruncateRate: 0.05, CorruptRate: 0.05},
		FaultConfig{Seed: 2, DropRate: 0.05, LatencyRate: 0.05, Latency: time.Millisecond},
		RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.5},
	)
	doc, _ := xmltree.ParseString(hospitalXML)
	want := map[string][]string{}
	for _, q := range chaosQueries {
		w := core.ResultStrings(xpath.Evaluate(doc, xpath.MustParse(q)))
		sort.Strings(w)
		want[q] = w
	}

	succeeded, failed := 0, 0
	for i := 0; i < 150; i++ {
		q := chaosQueries[i%len(chaosQueries)]
		nodes, _, _, err := sys.Query(q)
		if err != nil {
			typedError(t, q, err)
			failed++
			continue
		}
		got := core.ResultStrings(nodes)
		sort.Strings(got)
		if !reflect.DeepEqual(got, want[q]) {
			t.Fatalf("torn result for %s under chaos:\n got  %v\n want %v", q, got, want[q])
		}
		succeeded++
	}
	if succeeded == 0 {
		t.Fatalf("no query survived the chaos (failed=%d)", failed)
	}
	injected := chaos.Counts().Total() + frt.Counts().Total()
	if injected < 15 {
		t.Fatalf("chaos injected only %d faults across 150 queries; harness not biting", injected)
	}
	t.Logf("chaos: %d ok, %d typed failures, %d faults injected (server %+v, client %+v)",
		succeeded, failed, injected, chaos.Counts(), frt.Counts())
}

// TestChaosConcurrent hammers the faulty transport from many
// goroutines — the suite's -race workout for breaker, rng, dedup
// and cache locking.
func TestChaosConcurrent(t *testing.T) {
	sys, _, _, _, _ := chaosSystem(t,
		FaultConfig{Seed: 3, ErrorRate: 0.1, TruncateRate: 0.05},
		FaultConfig{Seed: 4, DropRate: 0.05},
		RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Multiplier: 2, Jitter: 0.5},
	)
	var wg sync.WaitGroup
	var untyped atomic.Int32
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				q := chaosQueries[(g+i)%len(chaosQueries)]
				if _, _, _, err := sys.Query(q); err != nil {
					var se *StatusError
					var ue *url.Error
					if !errors.As(err, &se) && !errors.As(err, &ue) &&
						!errors.Is(err, ErrChecksum) && !errors.Is(err, io.ErrUnexpectedEOF) &&
						!errors.Is(err, context.DeadlineExceeded) {
						untyped.Add(1)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := untyped.Load(); n > 0 {
		t.Errorf("%d untyped errors under concurrent chaos", n)
	}
}

// TestChaosUpdateDedup drops the acknowledgment of the first update
// (the server applies it, the client sees a 503): the retry must be
// answered from the request-ID dedup table, not re-applied, and the
// final state must be consistent.
func TestChaosUpdateDedup(t *testing.T) {
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("dedup-test"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	svc := NewService()
	var dropNext atomic.Bool
	mux := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/db/hospital/update" && dropNext.CompareAndSwap(true, false) {
			// Let the service apply the update, then lose the ack.
			rec := &bufferedResponse{header: http.Header{}, code: http.StatusOK}
			svc.ServeHTTP(rec, r)
			http.Error(w, "injected: ack lost", http.StatusServiceUnavailable)
			return
		}
		svc.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	cl := Dial(ts.URL, "hospital").
		WithHTTPClient(ts.Client()).
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Multiplier: 2})
	if err := cl.Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	sys.UseBackend(cl)

	dropNext.Store(true)
	n, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", "cholera")
	if err != nil {
		t.Fatalf("update through lost ack: %v", err)
	}
	if n != 1 {
		t.Fatalf("updated %d values", n)
	}
	if got := svc.DedupHits(); got != 1 {
		t.Errorf("dedup hits = %d, want 1 (retry must be answered from the table)", got)
	}
	nodes, _, _, err := sys.Query("//patient[.//disease='cholera']/pname")
	if err != nil {
		t.Fatalf("post-update query: %v", err)
	}
	if len(nodes) != 1 || nodes[0].LeafValue() != "Matt" {
		t.Errorf("state after deduplicated retry: %v", core.ResultStrings(nodes))
	}
}

// TestBreakerTripHalfOpenRecovery walks the breaker through its full
// life cycle: consecutive failures trip it, while open the client
// fails fast without touching the service, and after the cooldown a
// /healthz probe closes it again.
func TestBreakerTripHalfOpenRecovery(t *testing.T) {
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("breaker-test"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	svc := NewService()
	var failing atomic.Bool
	var hits, healthProbes atomic.Int32
	mux := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			hits.Add(1)
			http.Error(w, "injected outage", http.StatusServiceUnavailable)
			return
		}
		if r.URL.Path == "/healthz" {
			healthProbes.Add(1)
		}
		svc.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	cl := Dial(ts.URL, "hospital").
		WithHTTPClient(ts.Client()).
		WithRetry(NoRetry).
		WithBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: 30 * time.Millisecond, ProbeTimeout: time.Second})
	if err := cl.Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	sys.UseBackend(cl)

	// Healthy baseline.
	if _, _, _, err := sys.Query("//patient/pname"); err != nil {
		t.Fatalf("baseline query: %v", err)
	}

	// Outage: three consecutive failures trip the breaker.
	failing.Store(true)
	for i := 0; i < 3; i++ {
		_, _, _, err := sys.Query("//patient/pname")
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
			t.Fatalf("outage query %d: want 503 StatusError, got %v", i, err)
		}
	}
	before := hits.Load()
	if _, _, _, err := sys.Query("//patient/pname"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("tripped breaker: want ErrCircuitOpen, got %v", err)
	}
	if hits.Load() != before {
		t.Errorf("open breaker still sent %d requests to the dead service", hits.Load()-before)
	}

	// Recovery: heal the service, wait out the cooldown; the next
	// call must probe /healthz, close the breaker and succeed.
	failing.Store(false)
	time.Sleep(40 * time.Millisecond)
	nodes, _, _, err := sys.Query("//patient/pname")
	if err != nil {
		t.Fatalf("post-recovery query: %v", err)
	}
	if len(nodes) != 2 {
		t.Errorf("post-recovery results: %v", core.ResultStrings(nodes))
	}
	if healthProbes.Load() == 0 {
		t.Errorf("breaker recovered without a /healthz probe")
	}
}

// TestBreakerStaysOpenWhileUnhealthy: a failed probe re-opens the
// breaker and restarts the cooldown.
func TestBreakerStaysOpenWhileUnhealthy(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	cl := Dial(ts.URL, "db").
		WithHTTPClient(ts.Client()).
		WithRetry(NoRetry).
		WithBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: 20 * time.Millisecond, ProbeTimeout: time.Second})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := cl.Execute(ctx, &wire.Query{}); err == nil {
			t.Fatal("dead service succeeded")
		}
	}
	if _, err := cl.Execute(ctx, &wire.Query{}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
	time.Sleep(30 * time.Millisecond)
	// Cooldown elapsed but the service is still down: the probe
	// fails and the call is rejected without reaching the query
	// endpoint.
	before := hits.Load()
	if _, err := cl.Execute(ctx, &wire.Query{}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen after failed probe, got %v", err)
	}
	if hits.Load() != before+1 { // exactly the probe, not the query
		t.Errorf("failed probe cost %d requests, want 1", hits.Load()-before)
	}
}

// TestDeadlineExceededOnHungServer proves a hung server cannot block
// the client past its deadline: the context bound is honored and
// surfaces as context.DeadlineExceeded.
func TestDeadlineExceededOnHungServer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server notices the client hanging up
		// (net/http only watches the connection once the body is
		// consumed), then hang until the client gives up.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	defer ts.Close()
	cl := Dial(ts.URL, "db").
		WithHTTPClient(ts.Client()).
		WithRetry(NoRetry).
		WithBreaker(BreakerConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.Execute(ctx, &wire.Query{})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("hung server blocked the client for %v past a 100ms deadline", elapsed)
	}
}

// smallWriteBufListener shrinks the kernel write buffer of every
// accepted connection, so a stalled reader backs up onto the server's
// write path after a few KiB instead of after megabytes of kernel
// buffering — making the slow-loris scenario reproducible at test
// sizes.
type smallWriteBufListener struct{ net.Listener }

func (l smallWriteBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if tc, ok := c.(*net.TCPConn); err == nil && ok {
		tc.SetWriteBuffer(4 << 10)
	}
	return c, err
}

// TestSlowLorisStreamCutOff: a client that requests a streamed SXS1
// answer and then stops draining the socket must not pin a worker —
// the per-flush write deadline trips, the stream encoder unwinds on
// the sticky write error, and the handler returns within the deadline
// bound instead of blocking until the peer goes away.
func TestSlowLorisStreamCutOff(t *testing.T) {
	// A document big enough that the streamed answer cannot fit in the
	// (deliberately shrunken) socket buffers.
	var b strings.Builder
	b.WriteString("<hospital>")
	filler := strings.Repeat("flu", 700) // ~2 KiB per patient
	for i := 0; i < 128; i++ {
		fmt.Fprintf(&b, "<patient><pname>P%d</pname><SSN>%d</SSN><treat><disease>%s%d</disease><doctor>D%d</doctor></treat><age>%d</age></patient>",
			i, 100000+i, filler, i, i, 20+i%60)
	}
	b.WriteString("</hospital>")
	doc, err := xmltree.ParseString(b.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sys, err := core.Host(doc, []string{"//patient:(/pname, /SSN)", "//treat:(/disease, /doctor)"},
		core.SchemeOpt, []byte("loris-test"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}

	const writeTimeout = 150 * time.Millisecond
	svc := NewService().WithStreamCutoff(1).WithWriteTimeout(writeTimeout)
	var frameMu sync.Mutex
	var frame []byte
	handlerDone := make(chan struct{})
	wrapper := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		loris := r.Header.Get("X-Loris") != ""
		if strings.HasSuffix(r.URL.Path, "/query") && !loris {
			data, _ := io.ReadAll(r.Body)
			r.Body.Close()
			frameMu.Lock()
			frame = append(frame[:0], data...)
			frameMu.Unlock()
			r.Body = io.NopCloser(bytes.NewReader(data))
		}
		svc.ServeHTTP(w, r)
		if loris {
			close(handlerDone)
		}
	})
	ts := httptest.NewUnstartedServer(wrapper)
	ts.Listener = smallWriteBufListener{ts.Listener}
	ts.Start()
	t.Cleanup(ts.Close)

	cl := Dial(ts.URL, "big").WithHTTPClient(ts.Client()).WithStreaming(true)
	if err := cl.Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	sys.UseBackend(cl)
	// One healthy streamed run: captures the query frame and proves
	// the answer is big enough that a stalled reader must block the
	// server's writes (otherwise this test is vacuous).
	_, _, tm, err := sys.Query("//patient")
	if err != nil {
		t.Fatalf("healthy streamed query: %v", err)
	}
	if !tm.Streamed {
		t.Fatalf("healthy query did not stream")
	}
	if tm.AnswerBytes < 128<<10 {
		t.Fatalf("answer only %d bytes; too small to overwhelm socket buffers", tm.AnswerBytes)
	}
	frameMu.Lock()
	raw := append([]byte(nil), frame...)
	frameMu.Unlock()
	if len(raw) == 0 {
		t.Fatal("no query frame captured")
	}

	// The slow loris: send the same query over a raw connection with a
	// tiny receive buffer, read a sip of the stream, then stall with
	// the connection held open.
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetReadBuffer(4 << 10)
	}
	fmt.Fprintf(conn, "POST /db/big/query HTTP/1.1\r\nHost: loris\r\n%s: %s\r\nX-Loris: 1\r\nContent-Length: %d\r\n\r\n",
		acceptStreamHeader, streamProto, len(raw))
	if _, err := conn.Write(raw); err != nil {
		t.Fatalf("write frame: %v", err)
	}
	sip := make([]byte, 1024)
	if _, err := io.ReadFull(conn, sip); err != nil {
		t.Fatalf("read first KiB of stream: %v", err)
	}
	stall := time.Now()
	// ...and never read again. The handler must come back on its own.
	select {
	case <-handlerDone:
		if el := time.Since(stall); el > 10*writeTimeout {
			t.Errorf("worker pinned %v past the stall (write deadline %v)", el, writeTimeout)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("slow reader pinned the stream worker; write deadline never freed it")
	}
}

// TestPerAttemptTimeoutRetries: a per-attempt timeout on a hung
// server burns through the retry budget (each attempt is cut off)
// and still honors the overall deadline.
func TestPerAttemptTimeoutRetries(t *testing.T) {
	var attempts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	defer ts.Close()
	cl := Dial(ts.URL, "db").
		WithHTTPClient(ts.Client()).
		WithTimeout(30 * time.Millisecond).
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Multiplier: 2}).
		WithBreaker(BreakerConfig{})
	start := time.Now()
	_, err := cl.Execute(context.Background(), &wire.Query{})
	if err == nil {
		t.Fatal("hung server succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want per-attempt DeadlineExceeded, got %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("per-attempt timeout drove %d attempts, want 3", got)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Errorf("three 30ms attempts took %v", e)
	}
}

// faultyQuerySystem uploads through a clean client, then swaps in a
// transport that injects the given fault on every response — for the
// deterministic corruption/truncation tests.
func faultyQuerySystem(t *testing.T, clientCfg FaultConfig) *core.System {
	t.Helper()
	doc, err := xmltree.ParseString(hospitalXML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("fault-test"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	ts := httptest.NewServer(NewService())
	t.Cleanup(ts.Close)
	clean := Dial(ts.URL, "hospital").WithHTTPClient(ts.Client())
	if err := clean.Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	cl := Dial(ts.URL, "hospital").
		WithHTTPClient(&http.Client{Transport: NewFaultRoundTripper(ts.Client().Transport, clientCfg)}).
		WithRetry(NoRetry).
		WithBreaker(BreakerConfig{})
	sys.UseBackend(cl)
	return sys
}

// TestChecksumDetectsCorruption: a response body damaged in flight
// is caught by the integrity checksum, never parsed into an answer.
func TestChecksumDetectsCorruption(t *testing.T) {
	sys := faultyQuerySystem(t, FaultConfig{Seed: 6, CorruptRate: 1})
	_, _, _, err := sys.Query("//patient/pname")
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("want ErrChecksum for corrupted body, got %v", err)
	}
}

// TestTruncationSurfacesTornRead: a body cut mid-flight surfaces as
// a typed torn-read error, never a partial answer.
func TestTruncationSurfacesTornRead(t *testing.T) {
	sys := faultyQuerySystem(t, FaultConfig{Seed: 8, TruncateRate: 1})
	_, _, _, err := sys.Query("//patient/pname")
	if err == nil {
		t.Fatal("truncated response parsed as a full answer")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrChecksum) {
		t.Fatalf("want torn-read error, got %T: %v", err, err)
	}
}

// TestRetryRecoversFromTransientResets: N connection-level failures
// followed by a healthy transport must succeed within the retry
// budget, and fail without one.
func TestRetryRecoversFromTransientResets(t *testing.T) {
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("retry-test"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	ts := httptest.NewServer(NewService())
	defer ts.Close()

	mk := func(failures int, p RetryPolicy) *Client {
		frt := &failNTransport{base: ts.Client().Transport}
		frt.remaining.Store(int32(failures))
		return Dial(ts.URL, "hospital").
			WithHTTPClient(&http.Client{Transport: frt}).
			WithRetry(p).
			WithBreaker(BreakerConfig{})
	}

	// Two resets, three attempts: succeeds.
	cl := mk(2, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Multiplier: 2})
	if err := cl.Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatalf("upload with retries: %v", err)
	}

	// Two resets, no retries: fails with a transport error.
	cl = mk(2, NoRetry)
	err = cl.ApplyUpdate(context.Background(), &wire.Update{})
	var ue *url.Error
	if !errors.As(err, &ue) {
		t.Fatalf("want transport error without retries, got %v", err)
	}
}

// failNTransport fails the first N round trips at connection level.
type failNTransport struct {
	base      http.RoundTripper
	remaining atomic.Int32
}

func (f *failNTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.remaining.Add(-1) >= 0 {
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, errInjectedReset
	}
	return f.base.RoundTrip(req)
}

// TestStatusErrorShape: a 4xx comes back as a *StatusError carrying
// the code and (capped) body, and is not retried.
func TestStatusErrorShape(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "no such database", http.StatusNotFound)
	}))
	defer ts.Close()
	cl := Dial(ts.URL, "ghost").
		WithHTTPClient(ts.Client()).
		WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}).
		WithBreaker(BreakerConfig{})
	_, err := cl.Execute(context.Background(), &wire.Query{})
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("want *StatusError, got %T: %v", err, err)
	}
	if se.Code != http.StatusNotFound || se.Body != "no such database" {
		t.Errorf("StatusError = %+v", se)
	}
	if se.Temporary() {
		t.Errorf("404 classified as temporary")
	}
	if hits.Load() != 1 {
		t.Errorf("permanent 404 was attempted %d times, want 1", hits.Load())
	}
}
