package remote

import (
	"sync"
	"testing"
)

// TestConcurrentQueriesAndUpdates hammers one hosted database with
// parallel queries while updates rotate a value, verifying the
// service's locking: every query must succeed and return one of the
// two valid states, never a torn mix.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	sys, _ := remoteSystem(t)

	const readers = 8
	const queriesPerReader = 20
	var wg sync.WaitGroup
	errs := make(chan error, readers*queriesPerReader+10)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queriesPerReader; i++ {
				// Read-only path: concurrent Execute on the service.
				nodes, _, _, err := sys.Query("//patient/SSN")
				if err != nil {
					errs <- err
					return
				}
				if len(nodes) != 2 {
					errs <- errShape{len(nodes)}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent query: %v", err)
	}

	// Sequential update storm against the same service (updates take
	// the write lock; queries interleaved between them must stay
	// consistent).
	vals := []string{"measles", "mumps", "rubella"}
	for i := 0; i < 6; i++ {
		if _, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", vals[i%len(vals)]); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		nodes, _, _, err := sys.Query("//patient[.//disease='" + vals[i%len(vals)] + "']/pname")
		if err != nil {
			t.Fatalf("post-update query %d: %v", i, err)
		}
		if len(nodes) != 1 || nodes[0].LeafValue() != "Matt" {
			t.Fatalf("update %d not visible", i)
		}
	}
}

type errShape struct{ n int }

func (e errShape) Error() string { return "unexpected result count" }
