package remote

import (
	"os"
	"path/filepath"
	"time"

	"repro/internal/blockstore"
	"repro/internal/faultfs"
	"repro/internal/walog"
	"repro/internal/wire"
)

// Durable update path. An acknowledged update is durable the moment
// the client sees 200: the raw update frame is appended to the
// database's write-ahead log and group-fsynced before the request ID
// enters the dedup table or the response goes out. Checkpoints — a
// full snapshot (metadata) plus the dirty blocks (block store) — run
// every checkpointEvery updates and truncate the log; recovery
// (persist.go) replays whatever the log holds past the last
// checkpoint. See DESIGN.md, "Durability model".

// WAL record types. recUpdate carries one raw wire.Update frame
// exactly as the client sent it; recUpdateBatch carries a raw SXB1
// batch frame (wire.UpdateBatch) — one record per committed batch, so
// a group of updates that committed as one generation replays as one
// atomic unit or not at all.
const (
	recUpdate      byte = 1
	recUpdateBatch byte = 2
)

// defaultCheckpointEvery bounds how many WAL records accumulate
// before a checkpoint truncates the log. Small enough that recovery
// replay stays cheap, large enough that the whole-metadata snapshot
// write is amortized across many cheap WAL appends.
const defaultCheckpointEvery = 64

// Sidecar directory extensions: dir/<name>.sxdb (snapshot) is
// accompanied by dir/<name>.wal/ (log segments) and
// dir/<name>.blocks/ (block store).
const (
	walDirExt = ".wal"
	blkDirExt = ".blocks"
)

// PersistOptions tunes the durable engine of a persistent service.
// The zero value selects production defaults.
type PersistOptions struct {
	// FS is the filesystem seam; nil means the real one (fault
	// injection tests substitute faultfs.Faulty).
	FS faultfs.FS
	// WALGroupWait is the group-commit window: how long a WAL fsync
	// leader waits to absorb concurrent appends into one fsync. Zero
	// syncs immediately (lowest latency, one fsync per update).
	WALGroupWait time.Duration
	// CheckpointEvery is how many updates ride the WAL before a full
	// checkpoint truncates it; 0 selects defaultCheckpointEvery.
	CheckpointEvery int
	// WALSegmentBytes is the log rotation threshold; 0 selects the
	// walog default (4 MiB).
	WALSegmentBytes int64
}

// durable is the per-database persistence state, guarded by the
// hosted struct's mu like everything else on the update path.
type durable struct {
	name   string
	wal    *walog.Log // nil while unrecoverably degraded
	blocks blockstore.Store
	// dirty is the set of block IDs changed since the last
	// checkpoint; a checkpoint writes exactly these to the block
	// store.
	dirty map[int]struct{}
	// sinceCheckpoint counts WAL records since the last checkpoint.
	sinceCheckpoint int
	// degraded is set when the WAL cannot accept records (fsync
	// failure poisoned it, disk full, reopen failed): every update
	// then pays for a full checkpoint, which is slower but just as
	// durable. A successful checkpoint that reopens the log heals it.
	degraded bool
}

// RecoveryStats describes what recovery did for one database at
// startup, surfaced through the stats endpoint.
type RecoveryStats struct {
	// SnapshotGen is the generation the durable snapshot captured;
	// RecoveredGen is the generation after WAL replay.
	SnapshotGen  uint64 `json:"snapshotGen"`
	RecoveredGen uint64 `json:"recoveredGen"`
	// Replayed counts WAL records re-applied on top of the snapshot.
	Replayed int `json:"replayed"`
	// TornTail and TruncatedBytes report a partially written final
	// record discarded from the log (the expected signature of a
	// crash mid-append).
	TornTail       bool  `json:"tornTail"`
	TruncatedBytes int64 `json:"truncatedBytes"`
	// RootChecked reports that the recovered state was cross-checked
	// against an owner-signed Merkle root (the snapshot's, or the
	// last replayed update's).
	RootChecked bool `json:"rootChecked"`
	// LegacyFile marks a database loaded from a whole-file SXDB1
	// image written before the snapshot+WAL format existed.
	LegacyFile bool `json:"legacyFile,omitempty"`
}

// fs resolves the service's filesystem seam.
func (s *Service) fs() faultfs.FS {
	if s.pfs == nil {
		return faultfs.OS{}
	}
	return s.pfs
}

func (s *Service) walOpts() walog.Options {
	return walog.Options{FS: s.fs(), GroupWait: s.walGroupWait, SegmentBytes: s.walSegBytes}
}

func (s *Service) checkpointThreshold() int {
	if s.checkpointEvery > 0 {
		return s.checkpointEvery
	}
	return defaultCheckpointEvery
}

func (s *Service) walDir(name string) string {
	return filepath.Join(s.persistDir, name+walDirExt)
}

func (s *Service) blkDir(name string) string {
	return filepath.Join(s.persistDir, name+blkDirExt)
}

// openDurable creates the persistence state for a freshly uploaded
// database: empty WAL, empty block store. fresh removes whatever
// sidecars a previous incarnation of the name left behind, so a
// re-upload cannot inherit stale blocks or replayable records.
func (s *Service) openDurable(name string, fresh bool) (*durable, error) {
	fsys := s.fs()
	if fresh {
		if err := fsys.RemoveAll(s.walDir(name)); err != nil {
			return nil, newPersistError(name, "clear wal", err)
		}
		if err := fsys.RemoveAll(s.blkDir(name)); err != nil {
			return nil, newPersistError(name, "clear blocks", err)
		}
	}
	bs, err := blockstore.Open(s.blkDir(name), fsys)
	if err != nil {
		return nil, newPersistError(name, "open blocks", err)
	}
	wal, _, err := walog.Open(s.walDir(name), s.walOpts())
	if err != nil {
		return nil, newPersistError(name, "open wal", err)
	}
	return &durable{name: name, wal: wal, blocks: bs, dirty: map[int]struct{}{}}, nil
}

// walSize reports the log's current size in bytes (0 when degraded
// without a log).
func (d *durable) walSize() int64 {
	if d.wal == nil {
		return 0
	}
	return d.wal.Size()
}

// close releases the WAL's file handle (re-upload of the same name,
// quarantine, service shutdown).
func (d *durable) close() {
	if d.wal != nil {
		d.wal.Close()
	}
}

// stageDurable records an applied update (or update batch) in the
// WAL. Called under h.mu immediately after the apply succeeded, so
// records enter the log in commit order. One batch is ONE record —
// one CRC frame, one group fsync, one atomic replay unit. It returns
// a ticket whose Wait blocks until the record's group fsync — the
// caller waits *outside* h.mu so one update's fsync doesn't serialize
// the next update's apply. A nil ticket with nil error means the
// update is already durable (a checkpoint ran instead of, or in
// addition to, the append).
func (s *Service) stageDurable(h *hosted, typ byte, raw []byte, us []*wire.Update) (*walog.Ticket, error) {
	d := h.dur
	var tk *walog.Ticket
	if d.wal != nil && !d.degraded {
		var err error
		tk, err = d.wal.Append(walog.Record{
			Epoch:   h.srv.Epoch(),
			Gen:     h.srv.Generation(),
			Type:    typ,
			Payload: raw,
		})
		if err != nil {
			d.degraded = true
			tk = nil
		}
	}
	for _, upd := range us {
		for _, b := range upd.Blocks {
			d.dirty[b.ID] = struct{}{}
		}
	}
	d.sinceCheckpoint++
	if d.degraded || d.wal == nil || d.sinceCheckpoint >= s.checkpointThreshold() {
		// Either the WAL can't carry this update (degraded: the
		// checkpoint IS the durability) or it's time to truncate the
		// log anyway. The snapshot covers the update, so the WAL
		// ticket is moot.
		if err := s.checkpointLocked(h); err != nil {
			return nil, err
		}
		return nil, nil
	}
	return tk, nil
}

// ensureDurable waits for the update's WAL fsync. On fsync failure
// the log is poisoned; the fallback is a full checkpoint, which makes
// the update durable through the snapshot instead. Returns nil iff
// the update is durably on disk one way or the other.
func (s *Service) ensureDurable(h *hosted, tk *walog.Ticket) error {
	if tk == nil {
		return nil
	}
	if err := tk.Wait(); err == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dur.degraded = true
	return s.checkpointLocked(h)
}

// checkpointLocked writes the database's full durable image — dirty
// blocks to the block store, then metadata snapshot (generation +
// Merkle root + elided-block SXDB frame) atomically over the .sxdb
// file — and truncates the WAL. Called under h.mu. On success the
// WAL is empty and the dirty set cleared; a WAL that cannot be
// truncated or reopened leaves the database degraded (every
// subsequent update checkpoints) without failing the update, because
// the snapshot already made the state durable.
func (s *Service) checkpointLocked(h *hosted) error {
	d := h.dur
	// Pin the server's committed snapshot: under MVCC the upload-time
	// db object goes stale the moment the first copy-on-write update
	// commits, so the checkpoint must read the current generation's
	// view. h.mu (held here) excludes the update paths, so the db,
	// root and generation below describe one committed state.
	db := h.srv.CurrentDB()
	if len(d.dirty) > 0 {
		batch := make(map[int][]byte, len(d.dirty))
		for id := range d.dirty {
			if id >= 0 && id < len(db.Blocks) {
				batch[id] = db.Blocks[id]
			}
		}
		if err := d.blocks.PutBatch(batch); err != nil {
			return newPersistError(d.name, "checkpoint blocks", err)
		}
	}
	root, err := h.srv.AuthRoot()
	if err != nil {
		return newPersistError(d.name, "checkpoint root", err)
	}
	snap, err := wire.MarshalSnapshot(db, h.srv.Generation(), root[:])
	if err != nil {
		return newPersistError(d.name, "checkpoint snapshot", err)
	}
	if err := s.writeDBFile(d.name, appendChecksum(snap)); err != nil {
		return err
	}
	// The snapshot is durable: the update this checkpoint covers is
	// safe regardless of what happens to the log below.
	d.dirty = map[int]struct{}{}
	d.sinceCheckpoint = 0
	d.degraded = !s.resetWAL(d)
	return nil
}

// resetWAL empties the log after a checkpoint, replacing it wholesale
// when the old one is poisoned. Reports whether the database has a
// working log again.
func (s *Service) resetWAL(d *durable) bool {
	if d.wal != nil && d.wal.Err() == nil {
		if d.wal.Reset() == nil {
			return true
		}
	}
	if d.wal != nil {
		d.wal.Close()
		d.wal = nil
	}
	if err := s.fs().RemoveAll(s.walDir(d.name)); err != nil {
		return false
	}
	wal, _, err := walog.Open(s.walDir(d.name), s.walOpts())
	if err != nil {
		return false
	}
	d.wal = wal
	return true
}

// writeDBFile replaces dir/<name>.sxdb with payload, surviving a
// crash at any point: write to a temp file, fsync it, rename over
// the target, fsync the directory. Without the first fsync the
// rename can land before the data (a crash then serves garbage);
// without the second the rename itself can vanish.
func (s *Service) writeDBFile(name string, payload []byte) error {
	fsys := s.fs()
	final := filepath.Join(s.persistDir, name+dbFileExt)
	tmp := final + tmpSuffix
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return newPersistError(name, "snapshot create", err)
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return newPersistError(name, "snapshot write", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return newPersistError(name, "snapshot sync", err)
	}
	if err := f.Close(); err != nil {
		return newPersistError(name, "snapshot close", err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		return newPersistError(name, "snapshot rename", err)
	}
	if err := fsys.SyncDir(s.persistDir); err != nil {
		return newPersistError(name, "snapshot dir sync", err)
	}
	return nil
}

// Close releases every hosted database's WAL handle. The service
// must not take further requests.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, h := range s.dbs {
		if h.dur != nil {
			h.dur.close()
		}
	}
	return nil
}
