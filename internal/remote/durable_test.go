package remote

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/wire"
	"repro/internal/xmltree"
)

// Fault-matrix tests for the durable engine: each injected disk
// failure mode (torn write, fsync lie, ENOSPC/short write, crash at
// offset) has a dedicated test proving it is either survived without
// acknowledged-update loss or detected and surfaced as a typed
// error — never silent corruption.

// persistOptsSystem hosts hospitalXML on a persistent service with
// explicit options, returning the owner system, the service, and the
// test server (not auto-closed).
func persistOptsSystem(t *testing.T, dir, name string, opts PersistOptions) (*core.System, *Service, *httptest.Server) {
	t.Helper()
	svc, err := NewPersistentServiceOpts(dir, opts)
	if err != nil {
		t.Fatalf("NewPersistentServiceOpts: %v", err)
	}
	ts := httptest.NewServer(svc)
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("durable-"+name))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	cl := Dial(ts.URL, name).WithHTTPClient(ts.Client())
	if err := cl.Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	sys.UseBackend(cl)
	return sys, svc, ts
}

// reopenService restarts the service over the same directory and
// points sys at it.
func reopenService(t *testing.T, sys *core.System, dir, name string, opts PersistOptions) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := NewPersistentServiceOpts(dir, opts)
	if err != nil {
		t.Fatalf("reopen service: %v", err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	sys.UseBackend(Dial(ts.URL, name).WithHTTPClient(ts.Client()))
	return svc, ts
}

// queryDisease returns the disease of Matt's record, the value the
// tests update.
func queryDisease(t *testing.T, sys *core.System) string {
	t.Helper()
	nodes, _, _, err := sys.Query("//patient[pname='Matt']//disease")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(nodes) != 1 {
		t.Fatalf("query returned %d nodes", len(nodes))
	}
	return nodes[0].LeafValue()
}

// TestUpdateRidesWALNotSnapshot: between checkpoints an update's only
// durable trace is its WAL record; a restart (no crash, no explicit
// close) must replay it.
func TestUpdateRidesWALNotSnapshot(t *testing.T) {
	dir := t.TempDir()
	opts := PersistOptions{CheckpointEvery: 1000}
	sys, _, ts := persistOptsSystem(t, dir, "hospital", opts)
	snapBefore, err := os.ReadFile(filepath.Join(dir, "hospital"+dbFileExt))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", "cholera"); err != nil {
		t.Fatalf("update: %v", err)
	}
	ts.Close()
	// The snapshot did not move — the update lives in the WAL alone.
	snapAfter, _ := os.ReadFile(filepath.Join(dir, "hospital"+dbFileExt))
	if len(snapBefore) != len(snapAfter) {
		t.Fatalf("snapshot rewritten by a WAL-path update (%d -> %d bytes)", len(snapBefore), len(snapAfter))
	}
	svc2, _ := reopenService(t, sys, dir, "hospital", opts)
	if got := queryDisease(t, sys); got != "cholera" {
		t.Errorf("acked update lost: disease = %q", got)
	}
	rec := svc2.Recoveries()["hospital"]
	if rec.Replayed < 1 {
		t.Errorf("recovery stats claim %d replayed records", rec.Replayed)
	}
	if rec.RecoveredGen <= rec.SnapshotGen {
		t.Errorf("recovery did not advance the generation: %+v", rec)
	}
}

// TestCrashKeepsAckedUpdate: a power cut right after the update was
// acknowledged — everything unsynced torn away, including a possible
// partial record after the acked one — must recover the acked state.
func TestCrashKeepsAckedUpdate(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.NewFaulty(7)
	fs.TornTails(true)
	opts := PersistOptions{FS: fs, CheckpointEvery: 1000}
	sys, _, ts := persistOptsSystem(t, dir, "hospital", opts)
	if _, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", "cholera"); err != nil {
		t.Fatalf("update: %v", err)
	}
	fs.Crash()
	ts.Close()
	fs.Reopen()

	svc2, _ := reopenService(t, sys, dir, "hospital", opts)
	if q := svc2.Quarantined(); len(q) != 0 {
		t.Fatalf("clean crash quarantined %v", q)
	}
	if got := queryDisease(t, sys); got != "cholera" {
		t.Errorf("acked update lost to crash: disease = %q", got)
	}
}

// TestTornWALTailTruncated: a record torn mid-append (the process
// died inside Write) is the expected crash signature — recovery must
// truncate it away, report it, and serve the prior acked state.
func TestTornWALTailTruncated(t *testing.T) {
	dir := t.TempDir()
	opts := PersistOptions{CheckpointEvery: 1000}
	sys, _, ts := persistOptsSystem(t, dir, "hospital", opts)
	if _, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", "cholera"); err != nil {
		t.Fatalf("update: %v", err)
	}
	ts.Close()

	// Append half a record frame to the last WAL segment by hand.
	segs, err := filepath.Glob(filepath.Join(dir, "hospital"+walDirExt, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible frame prefix: huge length, then nothing.
	if _, err := f.Write([]byte{0x00, 0x00, 0x30, 0x39, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	svc2, _ := reopenService(t, sys, dir, "hospital", opts)
	if q := svc2.Quarantined(); len(q) != 0 {
		t.Fatalf("torn tail quarantined the database: %v", q)
	}
	rec := svc2.Recoveries()["hospital"]
	if !rec.TornTail || rec.TruncatedBytes == 0 {
		t.Errorf("torn tail not reported: %+v", rec)
	}
	if got := queryDisease(t, sys); got != "cholera" {
		t.Errorf("acked update lost to torn tail: disease = %q", got)
	}
}

// TestFsyncLieNeverCorrupts: a disk that acknowledges Sync without
// persisting (firmware write cache) can lose acknowledged updates at
// power cut — no software can prevent that — but recovery must still
// come back to a consistent earlier state, never to garbage and never
// to quarantine.
func TestFsyncLieNeverCorrupts(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.NewFaulty(11)
	opts := PersistOptions{FS: fs, CheckpointEvery: 1000}
	sys, _, ts := persistOptsSystem(t, dir, "hospital", opts)

	// The upload's checkpoint was honest; the update's WAL fsync lies.
	fs.LieOnSync(true)
	if _, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", "cholera"); err != nil {
		t.Fatalf("update: %v", err)
	}
	fs.Crash()
	ts.Close()
	fs.Reopen()
	fs.LieOnSync(false)

	svc2, _ := reopenService(t, sys, dir, "hospital", opts)
	if q := svc2.Quarantined(); len(q) != 0 {
		t.Fatalf("fsync lie produced quarantine (corruption): %v", q)
	}
	// The update is gone — the disk lied — but the pre-update state
	// serves cleanly at the generation the last honest fsync captured.
	s := svc2.dbs["hospital"]
	if s == nil {
		t.Fatal("database did not survive fsync-lie crash at all")
	}
	if gen := s.srv.Generation(); gen != 1 {
		t.Errorf("generation %d survived a lying fsync; want the upload state (1)", gen)
	}
}

// TestENOSPCSurfacesDiskFull: storage exhaustion mid-update must
// surface as a typed disk-full failure (HTTP 507, ErrDiskFull
// server-side), leave the previous durable state intact, and heal
// once space returns.
func TestENOSPCSurfacesDiskFull(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.NewFaulty(13)
	opts := PersistOptions{FS: fs, CheckpointEvery: 1000}
	sys, svc, ts := persistOptsSystem(t, dir, "hospital", opts)
	defer ts.Close()

	fs.SetWriteBudget(64) // room for almost nothing
	_, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", "cholera")
	if err == nil {
		t.Fatal("update on a full disk succeeded")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusInsufficientStorage {
		t.Errorf("disk-full update error = %v; want HTTP 507", err)
	}
	// The client was told the update failed ambiguously (5xx): it
	// stashes it for reconciliation rather than assuming either way.
	if !sys.UpdatePending() {
		t.Error("ambiguous disk-full failure did not leave a pending update")
	}

	h := svc.dbs["hospital"]
	if n := h.diskFullFailures.Load(); n == 0 {
		t.Error("disk-full failure not counted as such")
	}

	// Space returns: reconciliation resends under the same request ID
	// and the update lands durably.
	fs.SetWriteBudget(-1)
	if _, err := sys.Reconcile(context.Background()); err != nil {
		t.Fatalf("Reconcile after space freed: %v", err)
	}
	ts.Close()
	reopenService(t, sys, dir, "hospital", opts)
	if got := queryDisease(t, sys); got != "cholera" {
		t.Errorf("reconciled update not durable: disease = %q", got)
	}
}

// TestShortWriteDetected: a write cut short by exhaustion mid-record
// must not be mistaken for a valid record on recovery — the torn
// bytes are truncated and the prior state serves.
func TestShortWriteDetected(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.NewFaulty(17)
	opts := PersistOptions{FS: fs, CheckpointEvery: 1000}
	sys, _, ts := persistOptsSystem(t, dir, "hospital", opts)
	if _, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", "cholera"); err != nil {
		t.Fatalf("update: %v", err)
	}
	// The next update's WAL append is cut part-way: a short write.
	fs.SetWriteBudget(32)
	if _, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", "plague"); err == nil {
		t.Fatal("short-written update acknowledged")
	}
	fs.Crash()
	ts.Close()
	fs.Reopen()
	fs.SetWriteBudget(-1)

	svc2, _ := reopenService(t, sys, dir, "hospital", opts)
	if q := svc2.Quarantined(); len(q) != 0 {
		t.Fatalf("short write quarantined the database: %v", q)
	}
	s := svc2.dbs["hospital"]
	if s == nil {
		t.Fatal("database lost to a short write")
	}
	// The acked update survived; the short-written one did not become
	// a phantom record.
	if gen := s.srv.Generation(); gen != 2 {
		t.Errorf("recovered generation %d; want 2 (upload + one acked update)", gen)
	}
}

// TestSnapshotRootMismatchQuarantined: a snapshot whose checksum is
// intact but whose state does not hash to its recorded Merkle root —
// a forged or mispatched file — must be quarantined, never served.
func TestSnapshotRootMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	opts := PersistOptions{}
	sys, _, ts := persistOptsSystem(t, dir, "hospital", opts)
	_ = sys
	ts.Close()

	path := filepath.Join(dir, "hospital"+dbFileExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := splitChecksum(data)
	if err != nil {
		t.Fatal(err)
	}
	db, gen, root, err := wire.UnmarshalSnapshot(body)
	if err != nil {
		t.Fatal(err)
	}
	root[0] ^= 0x01 // forge the trust anchor
	forged, err := wire.MarshalSnapshot(db, gen, root)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, appendChecksum(forged), 0o644); err != nil {
		t.Fatal(err)
	}

	svc2, err := NewPersistentServiceOpts(dir, opts)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	q := svc2.Quarantined()
	if len(q) != 1 {
		t.Fatalf("forged root not quarantined: %v", q)
	}
	if svc2.dbs["hospital"] != nil {
		t.Fatal("state failing its root cross-check was served")
	}
}

// TestPersistFailureNotDedupAckedWAL: an update whose durability step
// failed must not be dedup-acknowledged on retry — the server has to
// re-apply and re-persist it, or the client would believe durable
// what never reached disk.
func TestPersistFailureNotDedupAckedWAL(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.NewFaulty(19)
	opts := PersistOptions{FS: fs, CheckpointEvery: 1000}
	sys, svc, ts := persistOptsSystem(t, dir, "hospital", opts)
	defer ts.Close()

	fs.SetWriteBudget(16)
	if _, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", "cholera"); err == nil {
		t.Fatal("update with failing persistence acknowledged")
	}
	fs.SetWriteBudget(-1)
	if _, err := sys.Reconcile(context.Background()); err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	if n := svc.DedupHits(); n != 0 {
		t.Errorf("retry of a never-persisted update dedup-acked (%d hits)", n)
	}
	ts.Close()
	reopenService(t, sys, dir, "hospital", opts)
	if got := queryDisease(t, sys); got != "cholera" {
		t.Errorf("retried update not durable: disease = %q", got)
	}
}
