package remote

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"syscall"
	"time"

	"repro/internal/authtree"
)

// Typed transport errors. Every failure the remote path can produce
// surfaces as (or wraps) one of the types in this file, so callers
// and the retry policy can branch on the failure class instead of
// string-matching.

// maxErrBody caps how much of an error response body is read and
// retained; the rest is discarded so a hostile or broken server
// cannot make error handling allocate without bound.
const maxErrBody = 8 << 10 // 8 KiB

// StatusError is a non-2xx HTTP response from the service: the
// status code plus the (truncated) response body.
type StatusError struct {
	Op     string // which client operation failed
	Code   int    // HTTP status code
	Status string // full status line, e.g. "503 Service Unavailable"
	Body   string // response body, truncated to maxErrBody
	// RetryAfter is the server's computed backoff hint (the
	// Retry-After header on sheds), zero when the response carried
	// none. The retry loop waits at least this long before the next
	// attempt.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("remote: %s: %s: %s", e.Op, e.Status, e.Body)
}

// Temporary reports whether the failure class is worth retrying:
// server-side errors and throttling, not client mistakes. 504 is the
// exception among 5xx: it means the caller's own deadline budget
// cannot cover the expected service time, and every retry arrives
// with strictly less budget — hopeless by construction.
func (e *StatusError) Temporary() bool {
	if e.Code == http.StatusGatewayTimeout {
		return false
	}
	return e.Code >= 500 || e.Code == http.StatusTooManyRequests
}

// httpError drains at most maxErrBody bytes of the response body
// into a *StatusError.
func httpError(op string, resp *http.Response) *StatusError {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrBody))
	return &StatusError{
		Op:     op,
		Code:   resp.StatusCode,
		Status: resp.Status,
		Body:   strings.TrimSpace(string(body)),
	}
}

// ErrDiskFull marks a persist failure caused by storage exhaustion
// (ENOSPC, short write) rather than damage: the hosted state on disk
// is stale but intact, and the condition clears when space does.
// Match with errors.Is; the concrete error is a *PersistError.
var ErrDiskFull = errors.New("remote: persist failed: disk full")

// PersistError is a durability failure on the server's persist path
// (WAL append, checkpoint, snapshot write). DiskFull distinguishes
// storage exhaustion — degraded but recoverable, the update is
// re-sendable once space clears — from everything else, so operators
// and the stats endpoint can tell a full disk from corruption.
type PersistError struct {
	DB       string // database name
	Op       string // which persist step failed
	DiskFull bool
	Err      error
}

func (e *PersistError) Error() string {
	if e.DiskFull {
		return fmt.Sprintf("remote: persist %s for %q: disk full: %v", e.Op, e.DB, e.Err)
	}
	return fmt.Sprintf("remote: persist %s for %q: %v", e.Op, e.DB, e.Err)
}

func (e *PersistError) Unwrap() error { return e.Err }

// Is lets errors.Is(err, ErrDiskFull) match disk-full persist errors.
func (e *PersistError) Is(target error) bool { return target == ErrDiskFull && e.DiskFull }

// newPersistError wraps a persist-path failure, classifying storage
// exhaustion by its underlying errno.
func newPersistError(db, op string, err error) *PersistError {
	return &PersistError{
		DB: db, Op: op, Err: err,
		DiskFull: errors.Is(err, syscall.ENOSPC) || errors.Is(err, io.ErrShortWrite),
	}
}

// ErrCircuitOpen is returned without touching the network while the
// client's circuit breaker is open (the service failed repeatedly
// and the cooldown has not produced a healthy probe yet).
var ErrCircuitOpen = errors.New("remote: circuit breaker open")

// ErrChecksum reports a response body whose integrity checksum did
// not match — the bytes were damaged in flight. It is retryable.
var ErrChecksum = errors.New("remote: response checksum mismatch")

// ErrResponseTooLarge reports a response body that kept going past
// the client's configured size cap (WithMaxResponseBytes). It is not
// retryable: a server that answers with an oversized body will do so
// again.
var ErrResponseTooLarge = errors.New("remote: response exceeds configured size cap")

// retryable classifies an attempt error: true for failure classes
// where a fresh attempt can plausibly succeed (connect-level
// failures, torn reads, 5xx), false for context cancellation,
// marshalling problems and definitive HTTP answers (4xx).
func retryable(err error) bool {
	if err == nil {
		return false
	}
	// A canceled or expired context is the caller's decision to stop.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// A verification failure is terminal: the bytes arrived intact
	// (the checksum matched) but do not hash to the committed state.
	// Retrying a byzantine server cannot succeed — and each retry
	// would hand it another oracle query — so fail immediately.
	if errors.Is(err, authtree.ErrTampered) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Temporary()
	}
	if errors.Is(err, ErrCircuitOpen) {
		return false // the breaker already decided; retrying defeats it
	}
	if errors.Is(err, ErrResponseTooLarge) {
		return false // deterministic: the same answer will overflow again
	}
	if errors.Is(err, ErrChecksum) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return true // torn read
	}
	// Everything else that reaches here came from the transport
	// (*url.Error wrapping dial/reset/refused errors): retryable.
	return true
}
