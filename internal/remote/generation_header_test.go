package remote

import (
	"bytes"
	"testing"

	"repro/internal/wire"
	"repro/internal/xpath"
)

func TestQueryEchoesGenerationHeader(t *testing.T) {
	sys, ts := remoteSystem(t)
	q, err := sys.Client.Translate(xpath.MustParse("//patient[age>30]/pname"))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := wire.MarshalQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/db/hospital/query", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	hdr := resp.Header.Get("X-DB-Generation")
	t.Logf("X-DB-Generation: %q status=%d", hdr, resp.StatusCode)
	if hdr == "" {
		t.Fatal("missing X-DB-Generation header")
	}
}
