package remote

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/xmltree"
)

// persistDB hosts hospitalXML under name in a fresh persistent
// service rooted at dir, so the durable *.sxdb file exists when it
// returns.
func persistDB(t *testing.T, dir, name string) *core.System {
	t.Helper()
	svc, err := NewPersistentService(dir)
	if err != nil {
		t.Fatalf("NewPersistentService: %v", err)
	}
	ts := httptest.NewServer(svc)
	defer ts.Close()
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("quarantine-"+name))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	cl := Dial(ts.URL, name).WithHTTPClient(ts.Client())
	if err := cl.Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	return sys
}

// TestBitFlipQuarantined: a single flipped bit anywhere in a
// persisted file — including the opaque ciphertext regions whose
// decode would happily accept garbage — must fail the SHA-256
// trailer check at reload. The rotten file is quarantined, not
// served, and not fatal: the healthy database beside it loads.
func TestBitFlipQuarantined(t *testing.T) {
	dir := t.TempDir()
	persistDB(t, dir, "rotten")
	healthy := persistDB(t, dir, "healthy")

	// Flip one bit in the middle of the file: deep inside block
	// ciphertext, where no structural decode check can notice.
	path := filepath.Join(dir, "rotten"+dbFileExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	svc, err := NewPersistentService(dir)
	if err != nil {
		t.Fatalf("reload with corrupt file must not be fatal: %v", err)
	}
	q := svc.Quarantined()
	if len(q) != 1 || q[0].File != "rotten"+dbFileExt {
		t.Fatalf("quarantined = %+v, want exactly rotten%s", q, dbFileExt)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, "rotten"+dbFileExt)); err != nil {
		t.Errorf("corrupt file not moved to quarantine: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt file still in serving directory")
	}

	ts := httptest.NewServer(svc)
	defer ts.Close()
	// The corrupt database refuses to serve: it was never loaded.
	resp, err := ts.Client().Get(ts.URL + "/db/rotten/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("quarantined database answered %d, want 404", resp.StatusCode)
	}
	// The healthy one is unaffected.
	healthy.UseBackend(Dial(ts.URL, "healthy").WithHTTPClient(ts.Client()))
	nodes, _, _, err := healthy.Query("//patient/pname")
	if err != nil {
		t.Fatalf("healthy database lost to neighbor's corruption: %v", err)
	}
	if len(nodes) != 2 {
		t.Errorf("healthy database returned %d patients, want 2", len(nodes))
	}
}

// TestTruncationQuarantined: a file torn short (losing its trailer
// and part of its body) must also be quarantined — the decode error
// path, as opposed to the checksum-mismatch path.
func TestTruncationQuarantined(t *testing.T) {
	dir := t.TempDir()
	persistDB(t, dir, "torn")
	path := filepath.Join(dir, "torn"+dbFileExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	svc, err := NewPersistentService(dir)
	if err != nil {
		t.Fatalf("reload with truncated file must not be fatal: %v", err)
	}
	if q := svc.Quarantined(); len(q) != 1 {
		t.Fatalf("quarantined = %+v, want one record", q)
	}
}

// TestLegacyFileWithoutTrailerLoads: files persisted before the
// checksum trailer existed have no "SXCK" suffix; they must still
// load (their decode is the only check available).
func TestLegacyFileWithoutTrailerLoads(t *testing.T) {
	dir := t.TempDir()
	sys := persistDB(t, dir, "legacy")
	path := filepath.Join(dir, "legacy"+dbFileExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := splitChecksum(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == len(data) {
		t.Fatal("persisted file has no trailer; test premise broken")
	}
	// Rewrite the file as a pre-trailer version would have.
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	svc, err := NewPersistentService(dir)
	if err != nil {
		t.Fatalf("legacy file rejected: %v", err)
	}
	if q := svc.Quarantined(); len(q) != 0 {
		t.Fatalf("legacy file quarantined: %+v", q)
	}
	ts := httptest.NewServer(svc)
	defer ts.Close()
	sys.UseBackend(Dial(ts.URL, "legacy").WithHTTPClient(ts.Client()))
	if _, _, _, err := sys.Query("//patient/pname"); err != nil {
		t.Errorf("query against reloaded legacy file: %v", err)
	}
}

// TestPersistFailureNotDedupAcked is the regression test for the
// update durability ordering: when applying an update succeeds but
// persisting it fails, the request ID must NOT enter the dedup
// table. The client's retry (same request ID) must be re-applied and
// re-persisted — a dedup ack would leave the client believing the
// update durable while the disk still holds the old state.
func TestPersistFailureNotDedupAcked(t *testing.T) {
	dir := t.TempDir()
	svc, err := NewPersistentService(dir)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("durability-test"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}

	// Middleware that sabotages persistence for exactly the first
	// update: a directory squatting on the tmp path makes the
	// WriteFile inside persist fail after the update has been applied
	// in memory.
	blocker := filepath.Join(dir, "hospital"+dbFileExt+tmpSuffix)
	var sabotaged atomic.Bool
	mux := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/db/hospital/update" && sabotaged.CompareAndSwap(false, true) {
			if err := os.Mkdir(blocker, 0o755); err != nil {
				t.Errorf("sabotage: %v", err)
			}
			svc.ServeHTTP(w, r)
			os.Remove(blocker)
			return
		}
		svc.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	cl := Dial(ts.URL, "hospital").
		WithHTTPClient(ts.Client()).
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Multiplier: 2})
	if err := cl.Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	sys.UseBackend(cl)

	// The first attempt applies in memory, fails to persist, and
	// returns 500 (retryable). The client retries with the same
	// request ID; the retry must go through the full apply+persist
	// path again, not the dedup fast path.
	n, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", "cholera")
	if err != nil {
		t.Fatalf("update through persist failure: %v", err)
	}
	if n != 1 {
		t.Fatalf("updated %d values, want 1", n)
	}
	if !sabotaged.Load() {
		t.Fatal("sabotage never fired; test exercised nothing")
	}
	if got := svc.DedupHits(); got != 0 {
		t.Errorf("dedup hits = %d, want 0: a failed persist must not be dedup-acked", got)
	}

	// The durable file must hold the post-update state: a fresh
	// service from the same directory serves the updated value.
	svc2, err := NewPersistentService(dir)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	ts2 := httptest.NewServer(svc2)
	defer ts2.Close()
	sys.UseBackend(Dial(ts2.URL, "hospital").WithHTTPClient(ts2.Client()))
	nodes, _, _, err := sys.Query("//patient[.//disease='cholera']/pname")
	if err != nil {
		t.Fatalf("post-restart query: %v", err)
	}
	if len(nodes) != 1 || nodes[0].LeafValue() != "Matt" {
		t.Errorf("update lost across restart after persist failure: %v", core.ResultStrings(nodes))
	}
}
