package remote

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/wire"
	"repro/internal/xmltree"
)

// Overload-protection tests: deadline propagation and rejection,
// brownout degradation levels over real HTTP, per-tenant quotas, and
// the client side of the shed protocol (Retry-After honoring).

// overloadSystem hosts the hospital DB on a service built by
// configure and returns the owner system plus the raw test server.
func overloadSystem(t *testing.T, configure func(*Service) *Service) (*core.System, *Client, *httptest.Server, *Service) {
	t.Helper()
	doc, err := xmltree.ParseString(hospitalXML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("overload-test"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	svc := NewService()
	if configure != nil {
		svc = configure(svc)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	cl := Dial(ts.URL, "hospital").WithHTTPClient(ts.Client())
	if err := cl.Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	sys.UseBackend(cl)
	return sys, cl, ts, svc
}

// TestDeadlineRejectOnArrival: a caller whose propagated budget cannot
// cover the service's expected latency is turned away with 504 before
// any work starts — and the client does not retry, because every retry
// would arrive with strictly less budget.
func TestDeadlineRejectOnArrival(t *testing.T) {
	var attempts atomic.Int32
	_, _, ts, svc := overloadSystem(t, nil)
	// Count extreme attempts through a wrapper client transport — the
	// service itself is already running, so count on the client side.
	cl := Dial(ts.URL, "hospital").
		WithHTTPClient(&http.Client{Transport: countingTransport{ts.Client().Transport, &attempts}}).
		WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Multiplier: 2})

	// The service expects ~300ms per request; give it a 100ms budget.
	svc.Admission().SeedExpectedLatency(300 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, _, _, err := cl.Extreme(ctx, 1, 2, false)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusGatewayTimeout {
		t.Fatalf("infeasible deadline: err = %v, want 504", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("504 was retried: %d attempts, want 1 (each retry has less budget)", got)
	}
	if se.Temporary() {
		t.Errorf("504 classified as temporary")
	}

	// A budget that covers the expectation sails through.
	attempts.Store(0)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if _, _, _, err := cl.Extreme(ctx2, 1, 2, false); err != nil {
		t.Fatalf("feasible deadline rejected: %v", err)
	}
	if svc.Admission().Snapshot().RejectedDeadline == 0 {
		t.Errorf("deadline shed not counted in the snapshot")
	}
}

// countingTransport counts round trips (per-attempt, not per-op).
type countingTransport struct {
	rt http.RoundTripper
	n  *atomic.Int32
}

func (c countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	c.n.Add(1)
	rt := c.rt
	if rt == nil {
		rt = http.DefaultTransport
	}
	return rt.RoundTrip(r)
}

// TestDeadlineCancelsQueuedWork: a request admitted after its
// propagated deadline passed (it sat behind a saturated gate) is
// abandoned by the execution pipeline, answered 504 — the worker never
// computes an answer nobody reads.
func TestDeadlineCancelsQueuedWork(t *testing.T) {
	_, _, ts, svc := overloadSystem(t, func(s *Service) *Service {
		return s.WithAdmission(admission.Config{MaxCost: 1, QueueWait: 5 * time.Second})
	})
	// Occupy the gate's only cost unit.
	tk, rej := svc.Admission().Admit(context.Background(), admission.Request{Cost: 1})
	if rej != nil {
		t.Fatalf("saturating admit rejected: %+v", rej)
	}

	frame, err := wire.MarshalQuery(&wire.Query{})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		code int
		body string
	}
	done := make(chan result, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/db/hospital/query", bytes.NewReader(frame))
		req.Header.Set(wire.HeaderDeadlineMS, "50") // expires while queued
		resp, err := ts.Client().Do(req)
		if err != nil {
			done <- result{-1, err.Error()}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		done <- result{resp.StatusCode, string(body)}
	}()

	// Hold capacity well past the request's 50ms budget, then free it:
	// the waiter is admitted with an already-expired deadline.
	time.Sleep(200 * time.Millisecond)
	tk.Done()
	select {
	case res := <-done:
		if res.code != http.StatusGatewayTimeout {
			t.Fatalf("expired-in-queue request: %d %q, want 504", res.code, res.body)
		}
		if !strings.Contains(res.body, "deadline") {
			t.Errorf("504 body does not name the deadline: %q", res.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never answered")
	}
}

// brownoutSystem is overloadSystem with the brownout controller on and
// its evaluation window pushed out so a forced level stays put, plus
// integrity verification so the degraded path's proofs are checked.
func brownoutSystem(t *testing.T) (*core.System, *Client, *httptest.Server, *Service) {
	sys, cl, ts, svc := overloadSystem(t, func(s *Service) *Service {
		return s.WithAdmission(admission.Config{
			Brownout:       true,
			BrownoutConfig: admission.BrownoutConfig{Window: time.Hour},
		})
	})
	if err := sys.EnableIntegrity(); err != nil {
		t.Fatalf("EnableIntegrity: %v", err)
	}
	cl.WithVerifier(sys.Verifier()).WithRetry(NoRetry)
	return sys, cl, ts, svc
}

// TestBrownoutCachedOnlyServing: at L2 the service answers only from
// the generation-tagged answer cache — warm queries still come back
// complete, verified, and marked degraded; cold queries shed with a
// Retry-After. Integrity is never relaxed: the cached answer carries
// the same Merkle proof a live execution produced.
func TestBrownoutCachedOnlyServing(t *testing.T) {
	sys, _, _, svc := brownoutSystem(t)

	// Warm the answer cache at full service.
	const warm = "//patient/pname"
	nodes, _, tm, err := sys.Query(warm)
	if err != nil {
		t.Fatalf("warm query: %v", err)
	}
	if tm.Degraded || tm.BrownoutLevel != 0 {
		t.Fatalf("full-service answer marked degraded: %+v", tm)
	}
	want := core.ResultStrings(nodes)
	sort.Strings(want)

	svc.Admission().ForceBrownoutLevel(admission.LevelCachedOnly)

	// The warm query is served from the cache, verified, and flagged.
	nodes, _, tm, err = sys.Query(warm)
	if err != nil {
		t.Fatalf("cached query under brownout: %v", err)
	}
	got := core.ResultStrings(nodes)
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("degraded answer %v != full-service answer %v", got, want)
	}
	if !tm.Degraded {
		t.Errorf("cache-served answer not marked degraded")
	}
	if tm.BrownoutLevel != admission.LevelCachedOnly {
		t.Errorf("answer reports brownout level %d, want %d", tm.BrownoutLevel, admission.LevelCachedOnly)
	}

	// A cold query sheds with a computed Retry-After.
	_, _, _, err = sys.Query("//treat/doctor")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("cold query under L2: err = %v, want 503", err)
	}
	if !strings.Contains(se.Body, "cached answers only") {
		t.Errorf("shed body: %q", se.Body)
	}
	if se.RetryAfter < time.Second {
		t.Errorf("shed Retry-After = %v, want >= 1s floor", se.RetryAfter)
	}
	if svc.Admission().Snapshot().DegradedServed == 0 {
		t.Errorf("degraded serving not counted")
	}

	// Back at L0 the cold query executes normally again.
	svc.Admission().ForceBrownoutLevel(admission.LevelFull)
	if _, _, _, err := sys.Query("//treat/doctor"); err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
}

// TestBrownoutCriticalClassFilter: at L3 only the interactive class is
// admitted at all — aggregates and updates shed before touching the
// database, and interactive queries still get cache-only service.
func TestBrownoutCriticalClassFilter(t *testing.T) {
	sys, _, ts, svc := brownoutSystem(t)
	const warm = "//patient/pname"
	if _, _, _, err := sys.Query(warm); err != nil {
		t.Fatalf("warm query: %v", err)
	}
	svc.Admission().ForceBrownoutLevel(admission.LevelCritical)

	// Aggregate-class extreme probe: shed by the class filter.
	resp, err := ts.Client().Get(ts.URL + "/db/hospital/extreme?lo=1&hi=2&max=0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("aggregate under L3: %d %q, want 503", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "interactive") {
		t.Errorf("class-filter body: %q", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("class-filter shed carries no Retry-After")
	}

	// Background update: shed before a byte of body is parsed.
	resp, err = ts.Client().Post(ts.URL+"/db/hospital/update", "application/octet-stream", strings.NewReader("ignored"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("update under L3: %d %q, want 503", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deferring") {
		t.Errorf("update shed body: %q", body)
	}

	// Interactive warm query: cache-only service still answers it.
	_, _, tm, err := sys.Query(warm)
	if err != nil {
		t.Fatalf("interactive warm query under L3: %v", err)
	}
	if !tm.Degraded || tm.BrownoutLevel != admission.LevelCritical {
		t.Errorf("L3 cached answer flags: %+v", tm)
	}
}

// TestTenantQuota: per-tenant token buckets bound each client ID
// separately — one tenant exhausting its budget gets 429 with a
// Retry-After while another tenant's requests keep flowing.
func TestTenantQuota(t *testing.T) {
	_, _, ts, svc := overloadSystem(t, func(s *Service) *Service {
		return s.WithAdmission(admission.Config{TenantRate: 1, TenantBurst: 2})
	})
	ctx := context.Background()
	greedy := Dial(ts.URL, "hospital").WithHTTPClient(ts.Client()).WithRetry(NoRetry).WithTenant("greedy")
	polite := Dial(ts.URL, "hospital").WithHTTPClient(ts.Client()).WithRetry(NoRetry).WithTenant("polite")

	// Burst of 2 is fine; the third request overdraws the bucket.
	for i := 0; i < 2; i++ {
		if _, _, _, err := greedy.Extreme(ctx, 1, 2, false); err != nil {
			t.Fatalf("in-quota probe %d: %v", i, err)
		}
	}
	_, _, _, err := greedy.Extreme(ctx, 1, 2, false)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota probe: err = %v, want 429", err)
	}
	if se.RetryAfter < time.Second {
		t.Errorf("quota 429 Retry-After = %v, want >= 1s", se.RetryAfter)
	}

	// The other tenant is untouched by the greedy one's exhaustion.
	if _, _, _, err := polite.Extreme(ctx, 1, 2, false); err != nil {
		t.Fatalf("other tenant blocked: %v", err)
	}
	if svc.Admission().Snapshot().RejectedTenant == 0 {
		t.Errorf("tenant shed not counted")
	}
}

// TestClientHonorsRetryAfter: the retry loop waits at least the
// server's Retry-After hint before the next attempt, and gives up
// without sleeping when the hint exceeds the caller's remaining
// deadline.
func TestClientHonorsRetryAfter(t *testing.T) {
	var stamps []time.Time
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		stamps = append(stamps, time.Now())
		mu.Unlock()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "shed", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	cl := Dial(ts.URL, "db").
		WithHTTPClient(ts.Client()).
		WithRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Multiplier: 1}).
		WithBreaker(BreakerConfig{})
	_, err := cl.Execute(context.Background(), &wire.Query{})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503", err)
	}
	mu.Lock()
	n, gap := len(stamps), time.Duration(0)
	if n == 2 {
		gap = stamps[1].Sub(stamps[0])
	}
	mu.Unlock()
	if n != 2 {
		t.Fatalf("%d attempts, want 2", n)
	}
	if gap < 900*time.Millisecond {
		t.Errorf("retry after %v, want >= ~1s (the server's hint, not the 1ms policy delay)", gap)
	}

	// Hint beyond the caller's deadline: stop immediately, zero sleeps.
	mu.Lock()
	stamps = nil
	mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cl.Execute(ctx, &wire.Query{})
	if err == nil {
		t.Fatal("shed server succeeded")
	}
	if el := time.Since(start); el > 250*time.Millisecond {
		t.Errorf("client slept %v toward a hint its deadline cannot cover", el)
	}
	mu.Lock()
	n = len(stamps)
	mu.Unlock()
	if n != 1 {
		t.Errorf("%d attempts, want 1 (hint exceeds remaining budget)", n)
	}
}

// captureFrame records the last /query request body flowing through.
type captureFrame struct {
	svc   http.Handler
	mu    sync.Mutex
	frame []byte
}

func (c *captureFrame) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasSuffix(r.URL.Path, "/query") {
		data, _ := io.ReadAll(r.Body)
		r.Body.Close()
		c.mu.Lock()
		c.frame = append(c.frame[:0], data...)
		c.mu.Unlock()
		r.Body = io.NopCloser(bytes.NewReader(data))
	}
	c.svc.ServeHTTP(w, r)
}

func (c *captureFrame) lastFrame() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.frame...)
}

// TestOverloadSmoke is the short open-loop overload check wired into
// `make check`: a burst against a saturated one-unit gate must shed
// with Retry-After rather than queue without bound, every success must
// still be integrity-checksummed, and once the pressure lifts the
// service serves normally with sane counters.
func TestOverloadSmoke(t *testing.T) {
	doc, err := xmltree.ParseString(hospitalXML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("smoke-test"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	svc := NewService().WithAdmission(admission.Config{
		MaxCost:   1,
		MaxQueue:  4,
		QueueWait: 50 * time.Millisecond,
		Brownout:  true,
	})
	cap := &captureFrame{svc: svc}
	ts := httptest.NewServer(cap)
	t.Cleanup(ts.Close)
	cl := Dial(ts.URL, "hospital").WithHTTPClient(ts.Client())
	if err := cl.Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	sys.UseBackend(cl)
	if _, _, _, err := sys.Query("//patient/pname"); err != nil {
		t.Fatalf("seed query: %v", err)
	}
	frame := cap.lastFrame()
	if len(frame) == 0 {
		t.Fatal("no query frame captured; smoke test is vacuous")
	}

	// Saturate the single cost unit, then fire an open-loop burst:
	// every request launches regardless of how the previous one fared.
	tk, rej := svc.Admission().Admit(context.Background(), admission.Request{Cost: 1})
	if rej != nil {
		t.Fatalf("saturating admit rejected: %+v", rej)
	}
	const burst = 24
	codes := make(chan int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/db/hospital/query", bytes.NewReader(frame))
			req.Header.Set(wire.HeaderPriority, []string{"interactive", "aggregate", "background"}[i%3])
			req.Header.Set(wire.HeaderClientID, fmt.Sprintf("smoke-%d", i%4))
			resp, err := ts.Client().Do(req)
			if err != nil {
				codes <- -1
				return
			}
			if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
				t.Errorf("shed without Retry-After")
			}
			if resp.StatusCode == http.StatusOK && resp.Header.Get(checksumHeader) == "" {
				t.Errorf("success without integrity checksum")
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}(i)
	}
	wg.Wait()
	close(codes)
	shed := 0
	for code := range codes {
		switch code {
		case http.StatusOK, http.StatusServiceUnavailable:
			if code == http.StatusServiceUnavailable {
				shed++
			}
		default:
			t.Errorf("unexpected status under overload: %d", code)
		}
	}
	if shed == 0 {
		t.Errorf("saturated gate shed nothing across %d open-loop arrivals", burst)
	}

	// Pressure lifts: capacity frees, the next request serves, and the
	// brownout controller settles back at L0 within one window.
	tk.Done()
	if _, _, _, err := sys.Query("//patient/pname"); err != nil {
		t.Fatalf("query after overload: %v", err)
	}
	svc.Admission().Tick()
	if lvl := svc.Admission().Level(); lvl != admission.LevelFull {
		t.Errorf("brownout level %d after recovery, want 0", lvl)
	}
	st := svc.Admission().Snapshot()
	if st.Rejected < int64(shed) {
		t.Errorf("snapshot rejected %d < observed sheds %d", st.Rejected, shed)
	}
	var admitted int64
	for _, v := range st.Admitted {
		admitted += v
	}
	if admitted == 0 {
		t.Errorf("no admits counted")
	}
}
