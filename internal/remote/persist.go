package remote

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/server"
	"repro/internal/wire"
)

// Disk persistence: a Service configured with a directory writes
// every uploaded database (and every applied update) as a wire-format
// file, and reloads them on startup — the hosting provider surviving
// a restart without ever holding a key.
//
// Corruption tolerance: each file carries a SHA-256 trailer
// (data || "SXCK" || digest), so a bit-flip anywhere — including the
// opaque ciphertext regions a structural decode would accept — is
// caught at load. A file that fails its checksum or decode is moved
// to dir/quarantine/ and recorded, and startup continues with the
// remaining databases: one rotten file must not take down (or worse,
// silently poison) the whole host.

// dbFileExt is the on-disk extension for hosted databases;
// tmpSuffix marks an in-progress write before its atomic rename;
// quarantineDir is where corrupt files are moved on load.
const (
	dbFileExt     = ".sxdb"
	tmpSuffix     = ".tmp"
	quarantineDir = "quarantine"
)

// trailerMagic separates the database bytes from their checksum.
var trailerMagic = []byte("SXCK")

// appendChecksum wraps wire bytes in the on-disk trailer format.
func appendChecksum(data []byte) []byte {
	sum := sha256.Sum256(data)
	out := make([]byte, 0, len(data)+len(trailerMagic)+len(sum))
	out = append(out, data...)
	out = append(out, trailerMagic...)
	return append(out, sum[:]...)
}

// splitChecksum validates and strips the trailer. Files without a
// trailer (written before checksumming existed) pass through
// unchanged — their decode is the only check available.
func splitChecksum(data []byte) ([]byte, error) {
	tlen := len(trailerMagic) + sha256.Size
	if len(data) < tlen || !bytes.Equal(data[len(data)-tlen:len(data)-sha256.Size], trailerMagic) {
		return data, nil // legacy file, no trailer
	}
	body := data[:len(data)-tlen]
	want := data[len(data)-sha256.Size:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], want) {
		return nil, fmt.Errorf("checksum mismatch (stored %x, computed %x)", want[:8], sum[:8])
	}
	return body, nil
}

// QuarantineRecord describes one corrupt database file that was set
// aside at startup.
type QuarantineRecord struct {
	File   string // original file name
	Moved  string // path the file was moved to
	Reason string
}

// Quarantined reports the files set aside by NewPersistentService
// because they failed their checksum or decode.
func (s *Service) Quarantined() []QuarantineRecord {
	return append([]QuarantineRecord(nil), s.quarantined...)
}

// NewPersistentService loads every *.sxdb file in dir (creating the
// directory if needed) and persists subsequent uploads and updates
// there. Corrupt files are quarantined (see Quarantined), not fatal.
func NewPersistentService(dir string) (*Service, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("remote: create %s: %w", dir, err)
	}
	s := NewService()
	s.persistDir = dir
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("remote: read %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		// A leftover *.sxdb.tmp is a write that crashed before its
		// atomic rename: the durable state is still in the *.sxdb
		// file, so the partial write is garbage — remove it.
		if strings.HasSuffix(e.Name(), dbFileExt+tmpSuffix) {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, fmt.Errorf("remote: clean %s: %w", e.Name(), err)
			}
			continue
		}
		if !strings.HasSuffix(e.Name(), dbFileExt) {
			continue
		}
		name := strings.TrimSuffix(e.Name(), dbFileExt)
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("remote: load %s: %w", e.Name(), err)
		}
		db, loadErr := decodeDBFile(data)
		if loadErr != nil {
			moved, qErr := s.quarantine(path, e.Name(), loadErr)
			if qErr != nil {
				return nil, qErr
			}
			s.quarantined = append(s.quarantined, QuarantineRecord{
				File: e.Name(), Moved: moved, Reason: loadErr.Error(),
			})
			continue
		}
		s.dbs[name] = newHosted(server.New(db), db)
	}
	return s, nil
}

// decodeDBFile checks the trailer (when present) and decodes the
// wire bytes.
func decodeDBFile(data []byte) (*wire.HostedDB, error) {
	body, err := splitChecksum(data)
	if err != nil {
		return nil, err
	}
	return wire.UnmarshalDB(body)
}

// quarantine moves a corrupt database file into dir/quarantine/,
// returning the destination path.
func (s *Service) quarantine(path, name string, cause error) (string, error) {
	qdir := filepath.Join(s.persistDir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return "", fmt.Errorf("remote: quarantine %s: %w (while handling: %v)", name, err, cause)
	}
	dest := filepath.Join(qdir, name)
	if err := os.Rename(path, dest); err != nil {
		return "", fmt.Errorf("remote: quarantine %s: %w (while handling: %v)", name, err, cause)
	}
	return dest, nil
}

// persist writes one database atomically (write + rename), with the
// integrity trailer.
func (s *Service) persist(name string, db *wire.HostedDB) error {
	if s.persistDir == "" {
		return nil
	}
	if strings.ContainsAny(name, "/\\.") {
		return fmt.Errorf("remote: database name %q not filesystem-safe", name)
	}
	data, err := wire.MarshalDB(db)
	if err != nil {
		return err
	}
	final := filepath.Join(s.persistDir, name+dbFileExt)
	tmp := final + tmpSuffix
	if err := os.WriteFile(tmp, appendChecksum(data), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}
