package remote

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/server"
	"repro/internal/wire"
)

// Disk persistence: a Service configured with a directory writes
// every uploaded database (and every applied update) as a wire-format
// file, and reloads them on startup — the hosting provider surviving
// a restart without ever holding a key.

// dbFileExt is the on-disk extension for hosted databases;
// tmpSuffix marks an in-progress write before its atomic rename.
const (
	dbFileExt = ".sxdb"
	tmpSuffix = ".tmp"
)

// NewPersistentService loads every *.sxdb file in dir (creating the
// directory if needed) and persists subsequent uploads and updates
// there.
func NewPersistentService(dir string) (*Service, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("remote: create %s: %w", dir, err)
	}
	s := NewService()
	s.persistDir = dir
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("remote: read %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		// A leftover *.sxdb.tmp is a write that crashed before its
		// atomic rename: the durable state is still in the *.sxdb
		// file, so the partial write is garbage — remove it.
		if strings.HasSuffix(e.Name(), dbFileExt+tmpSuffix) {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, fmt.Errorf("remote: clean %s: %w", e.Name(), err)
			}
			continue
		}
		if !strings.HasSuffix(e.Name(), dbFileExt) {
			continue
		}
		name := strings.TrimSuffix(e.Name(), dbFileExt)
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("remote: load %s: %w", e.Name(), err)
		}
		db, err := wire.UnmarshalDB(data)
		if err != nil {
			return nil, fmt.Errorf("remote: load %s: %w", e.Name(), err)
		}
		s.dbs[name] = &hosted{srv: server.New(db), db: db}
	}
	return s, nil
}

// persist writes one database atomically (write + rename).
func (s *Service) persist(name string, db *wire.HostedDB) error {
	if s.persistDir == "" {
		return nil
	}
	if strings.ContainsAny(name, "/\\.") {
		return fmt.Errorf("remote: database name %q not filesystem-safe", name)
	}
	data, err := wire.MarshalDB(db)
	if err != nil {
		return err
	}
	final := filepath.Join(s.persistDir, name+dbFileExt)
	tmp := final + tmpSuffix
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}
