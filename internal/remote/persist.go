package remote

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/blockstore"
	"repro/internal/server"
	"repro/internal/walog"
	"repro/internal/wire"
)

// Disk persistence and recovery: a Service configured with a
// directory keeps each hosted database as a checksummed metadata
// snapshot (dir/<name>.sxdb), a block store (dir/<name>.blocks/) and
// a write-ahead log (dir/<name>.wal/) — the hosting provider
// surviving a crash at any instruction without ever holding a key.
//
// Recovery, per database, at startup:
//
//  1. Load the snapshot; verify its SHA-256 trailer; fill its elided
//     block ciphertexts from the block store (every block frame
//     carries its own CRC).
//  2. Open the WAL. A torn final record — the signature of a crash
//     mid-append — is truncated away; damage anywhere else is
//     corruption and quarantines the database.
//  3. Replay the records past the snapshot's generation, in order,
//     re-committing each update at the generation it originally
//     acknowledged and re-arming the request-ID dedup table.
//  4. Cross-check the recovered state against an owner-signed Merkle
//     root (the last replayed update's NewRoot, or the snapshot's
//     when the log was empty). A state that fails the check is
//     quarantined, never served.
//
// Corruption tolerance: a database that fails any step is moved —
// snapshot and sidecars — to dir/quarantine/ and recorded, and
// startup continues with the remaining databases: one rotten file
// must not take down (or worse, silently poison) the whole host.

// dbFileExt is the on-disk extension for hosted databases;
// tmpSuffix marks an in-progress write before its atomic rename;
// quarantineDir is where corrupt files are moved on load.
const (
	dbFileExt     = ".sxdb"
	tmpSuffix     = ".tmp"
	quarantineDir = "quarantine"
)

// trailerMagic separates the database bytes from their checksum.
var trailerMagic = []byte("SXCK")

// appendChecksum wraps wire bytes in the on-disk trailer format.
func appendChecksum(data []byte) []byte {
	sum := sha256.Sum256(data)
	out := make([]byte, 0, len(data)+len(trailerMagic)+len(sum))
	out = append(out, data...)
	out = append(out, trailerMagic...)
	return append(out, sum[:]...)
}

// splitChecksum validates and strips the trailer. Files without a
// trailer (written before checksumming existed) pass through
// unchanged — their decode is the only check available.
func splitChecksum(data []byte) ([]byte, error) {
	tlen := len(trailerMagic) + sha256.Size
	if len(data) < tlen || !bytes.Equal(data[len(data)-tlen:len(data)-sha256.Size], trailerMagic) {
		return data, nil // legacy file, no trailer
	}
	body := data[:len(data)-tlen]
	want := data[len(data)-sha256.Size:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], want) {
		return nil, fmt.Errorf("checksum mismatch (stored %x, computed %x)", want[:8], sum[:8])
	}
	return body, nil
}

// QuarantineRecord describes one corrupt database that was set aside
// at startup.
type QuarantineRecord struct {
	File   string // original file name
	Moved  string // path the snapshot file was moved to
	Reason string
}

// Quarantined reports the databases set aside by recovery because
// they failed a checksum, a decode, or the Merkle-root cross-check.
func (s *Service) Quarantined() []QuarantineRecord {
	return append([]QuarantineRecord(nil), s.quarantined...)
}

// Recoveries reports, per database, what recovery did at startup.
func (s *Service) Recoveries() map[string]RecoveryStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := map[string]RecoveryStats{}
	for name, h := range s.dbs {
		if h.recovery != nil {
			out[name] = *h.recovery
		}
	}
	return out
}

// NewPersistentService loads every *.sxdb database in dir (creating
// the directory if needed) with default PersistOptions, and persists
// subsequent uploads and updates there. Corrupt databases are
// quarantined (see Quarantined), not fatal.
func NewPersistentService(dir string) (*Service, error) {
	return NewPersistentServiceOpts(dir, PersistOptions{})
}

// NewPersistentServiceOpts is NewPersistentService with explicit
// durability tuning (WAL group-commit window, checkpoint interval,
// filesystem seam).
func NewPersistentServiceOpts(dir string, opts PersistOptions) (*Service, error) {
	s := NewService()
	s.persistDir = dir
	s.pfs = opts.FS
	s.walGroupWait = opts.WALGroupWait
	s.checkpointEvery = opts.CheckpointEvery
	s.walSegBytes = opts.WALSegmentBytes
	fsys := s.fs()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("remote: create %s: %w", dir, err)
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("remote: read %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		// A leftover *.sxdb.tmp is a snapshot write that crashed
		// before its atomic rename: the durable state is still in the
		// *.sxdb file, so the partial write is garbage — remove it.
		if strings.HasSuffix(e.Name(), dbFileExt+tmpSuffix) {
			if err := fsys.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, fmt.Errorf("remote: clean %s: %w", e.Name(), err)
			}
			continue
		}
		if !strings.HasSuffix(e.Name(), dbFileExt) {
			continue
		}
		if err := s.loadDB(e.Name()); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// loadDB recovers one database from its on-disk trio (snapshot, block
// store, WAL). Corruption quarantines the database and returns nil —
// recovery of the remaining databases continues; only filesystem-level
// failures (unreadable directory, failed rename) are returned.
func (s *Service) loadDB(fileName string) error {
	name := strings.TrimSuffix(fileName, dbFileExt)
	path := filepath.Join(s.persistDir, fileName)
	fsys := s.fs()
	fail := func(cause error) error {
		moved, qErr := s.quarantineDB(path, fileName, cause)
		if qErr != nil {
			return qErr
		}
		s.quarantined = append(s.quarantined, QuarantineRecord{
			File: fileName, Moved: moved, Reason: cause.Error(),
		})
		return nil
	}

	data, err := fsys.ReadFile(path)
	if err != nil {
		return fmt.Errorf("remote: load %s: %w", fileName, err)
	}
	body, err := splitChecksum(data)
	if err != nil {
		return fail(err)
	}

	var (
		db       *wire.HostedDB
		snapGen  uint64
		snapRoot []byte
		legacy   bool
	)
	bs, err := blockstore.Open(s.blkDir(name), fsys)
	if err != nil {
		return fail(err)
	}
	if wire.IsSnapshot(body) {
		db, snapGen, snapRoot, err = wire.UnmarshalSnapshot(body)
		if err != nil {
			return fail(err)
		}
		all, err := bs.LoadAll()
		if err != nil {
			return fail(err)
		}
		for i := range db.Blocks {
			ct, ok := all[i]
			if !ok {
				return fail(fmt.Errorf("block %d missing from block store", i))
			}
			db.Blocks[i] = ct
		}
	} else {
		// Legacy whole-file SXDB1 image: the file is the complete
		// state at generation 1 (pre-WAL services rewrote it on every
		// update, so nothing can be newer).
		db, err = wire.UnmarshalDB(body)
		if err != nil {
			return fail(err)
		}
		snapGen, legacy = 1, true
	}

	wal, rep, err := walog.Open(s.walDir(name), s.walOpts())
	if err != nil {
		if errors.Is(err, walog.ErrCorrupt) {
			return fail(err)
		}
		return fmt.Errorf("remote: open wal for %s: %w", fileName, err)
	}

	srv := server.New(db)
	srv.RestoreGeneration(snapGen)
	h := newHosted(srv)
	s.applyPlannerMode(h)
	dirty := map[int]struct{}{}
	replayed, rootChecked := 0, false
	var replayErr error
	for i, rec := range rep.Records {
		// Decode the record into the batch it commits: a legacy record
		// is a batch of one; a batch record replays all-or-nothing,
		// exactly as it originally acknowledged.
		var us []*wire.Update
		var batchID uint64
		switch rec.Type {
		case recUpdate:
			upd, err := wire.UnmarshalUpdate(rec.Payload)
			if err != nil {
				replayErr = fmt.Errorf("wal record %d: %w", i, err)
			} else {
				us = []*wire.Update{upd}
			}
		case recUpdateBatch:
			b, err := wire.UnmarshalUpdateBatch(rec.Payload)
			if err != nil {
				replayErr = fmt.Errorf("wal record %d: %w", i, err)
			} else {
				us, batchID = b.Updates, b.RequestID
			}
		default:
			replayErr = fmt.Errorf("wal record %d has unknown type %d", i, rec.Type)
		}
		if replayErr != nil {
			break
		}
		if rec.Gen <= snapGen {
			continue // already captured by the snapshot
		}
		// Intermediate roots need not be re-verified — only the final
		// state is served — so strip them and let the batch apply's own
		// cross-check validate the very last update's NewRoot against
		// the fully recovered state.
		final := i == len(rep.Records)-1
		for j, upd := range us {
			if !final || j != len(us)-1 {
				upd.NewRoot = nil
			} else if len(upd.NewRoot) > 0 {
				rootChecked = true
			}
		}
		if err := srv.ApplyUpdateBatch(us); err != nil {
			replayErr = fmt.Errorf("wal record %d (gen %d): %w", i, rec.Gen, err)
			break
		}
		if got := srv.Generation(); got != rec.Gen {
			replayErr = fmt.Errorf("wal generation gap: record %d claims gen %d, replay reached %d", i, rec.Gen, got)
			break
		}
		if batchID != 0 {
			h.rememberLocked(batchID)
		}
		for _, upd := range us {
			for _, b := range upd.Blocks {
				dirty[b.ID] = struct{}{}
			}
			if upd.RequestID != 0 {
				h.rememberLocked(upd.RequestID)
			}
		}
		replayed++
	}
	if replayErr != nil {
		wal.Close()
		return fail(replayErr)
	}
	if replayed == 0 && len(snapRoot) > 0 {
		// Nothing replayed on top: the state must hash to exactly the
		// root the snapshot committed to.
		root, err := srv.AuthRoot()
		if err != nil {
			wal.Close()
			return fail(fmt.Errorf("recovered state root: %w", err))
		}
		if !bytes.Equal(root[:], snapRoot) {
			wal.Close()
			return fail(fmt.Errorf("recovered state root %x does not match snapshot root %x", root[:8], snapRoot[:8]))
		}
		rootChecked = true
	}

	h.dur = &durable{
		name: name, wal: wal, blocks: bs,
		dirty: dirty, sinceCheckpoint: replayed,
	}
	h.recovery = &RecoveryStats{
		SnapshotGen:    snapGen,
		RecoveredGen:   srv.Generation(),
		Replayed:       replayed,
		TornTail:       rep.TornTail,
		TruncatedBytes: rep.TruncatedBytes,
		RootChecked:    rootChecked,
		LegacyFile:     legacy,
	}
	s.dbs[name] = h
	return nil
}

// quarantineDB moves a corrupt database — snapshot file plus its WAL
// and block-store sidecars — into dir/quarantine/, returning the
// snapshot's destination path. Destinations are made unique with a
// ".N" suffix so a database quarantined twice (reload after re-host)
// never silently overwrites the earlier corpse.
func (s *Service) quarantineDB(path, fileName string, cause error) (string, error) {
	fsys := s.fs()
	qdir := filepath.Join(s.persistDir, quarantineDir)
	if err := fsys.MkdirAll(qdir, 0o755); err != nil {
		return "", fmt.Errorf("remote: quarantine %s: %w (while handling: %v)", fileName, err, cause)
	}
	dest := filepath.Join(qdir, fileName)
	suffix := ""
	for i := 1; ; i++ {
		if _, err := fsys.Stat(dest); errors.Is(err, os.ErrNotExist) {
			break
		}
		suffix = fmt.Sprintf(".%d", i)
		dest = filepath.Join(qdir, fileName+suffix)
	}
	if err := fsys.Rename(path, dest); err != nil {
		return "", fmt.Errorf("remote: quarantine %s: %w (while handling: %v)", fileName, err, cause)
	}
	// Sidecars ride along under the same suffix, so the corpse stays
	// analyzable as a unit and a re-hosted database starts clean.
	name := strings.TrimSuffix(fileName, dbFileExt)
	for _, ext := range []string{walDirExt, blkDirExt} {
		side := filepath.Join(s.persistDir, name+ext)
		if _, err := fsys.Stat(side); err == nil {
			if err := fsys.Rename(side, filepath.Join(qdir, name+ext+suffix)); err != nil {
				return "", fmt.Errorf("remote: quarantine %s sidecar %s: %w (while handling: %v)", fileName, ext, err, cause)
			}
		}
	}
	if err := fsys.SyncDir(s.persistDir); err != nil {
		return "", fmt.Errorf("remote: quarantine %s: sync dir: %w", fileName, err)
	}
	if err := fsys.SyncDir(qdir); err != nil {
		return "", fmt.Errorf("remote: quarantine %s: sync quarantine dir: %w", fileName, err)
	}
	return dest, nil
}
