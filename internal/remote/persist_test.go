package remote

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/xmltree"
)

func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	// First service instance: upload, update, stop.
	svc1, err := NewPersistentService(dir)
	if err != nil {
		t.Fatalf("NewPersistentService: %v", err)
	}
	ts1 := httptest.NewServer(svc1)
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("persist-test"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	cl := Dial(ts1.URL, "hospital").WithHTTPClient(ts1.Client())
	if err := cl.Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	sys.UseBackend(cl)
	if _, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", "cholera"); err != nil {
		t.Fatalf("update: %v", err)
	}
	ts1.Close()

	// The database file exists on disk.
	if _, err := os.Stat(filepath.Join(dir, "hospital"+dbFileExt)); err != nil {
		t.Fatalf("persisted file missing: %v", err)
	}

	// Second instance: reload from disk, query without re-upload; the
	// update must have survived.
	svc2, err := NewPersistentService(dir)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	ts2 := httptest.NewServer(svc2)
	defer ts2.Close()
	sys.UseBackend(Dial(ts2.URL, "hospital").WithHTTPClient(ts2.Client()))
	nodes, _, _, err := sys.Query("//patient[.//disease='cholera']/pname")
	if err != nil {
		t.Fatalf("post-restart query: %v", err)
	}
	if len(nodes) != 1 || nodes[0].LeafValue() != "Matt" {
		t.Errorf("update lost across restart: %v", core.ResultStrings(nodes))
	}
}

func TestPersistRejectsUnsafeNames(t *testing.T) {
	dir := t.TempDir()
	svc, err := NewPersistentService(dir)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, _ := core.Host(doc, scs, core.SchemeOpt, []byte("unsafe"))
	ts := httptest.NewServer(svc)
	defer ts.Close()
	cl := Dial(ts.URL, "..%2Fescape").WithHTTPClient(ts.Client())
	if err := cl.Upload(context.Background(), sys.HostedDB); err == nil {
		t.Errorf("path-traversal name accepted")
	}
	// Nothing outside the directory was written.
	entries, _ := os.ReadDir(filepath.Dir(dir))
	for _, e := range entries {
		if filepath.Ext(e.Name()) == dbFileExt {
			t.Errorf("stray persisted file %s", e.Name())
		}
	}
}

// TestReloadCleansCrashedWrite: a leftover *.sxdb.tmp from a write
// that crashed before its atomic rename must be ignored on reload —
// the durable *.sxdb is authoritative — and removed from the
// directory so it cannot accumulate.
func TestReloadCleansCrashedWrite(t *testing.T) {
	dir := t.TempDir()
	svc1, err := NewPersistentService(dir)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("crash-test"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	ts := httptest.NewServer(svc1)
	cl := Dial(ts.URL, "hospital").WithHTTPClient(ts.Client())
	if err := cl.Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	ts.Close()

	// Simulate a crash mid-persist: garbage in the tmp file, durable
	// state intact.
	tmp := filepath.Join(dir, "hospital"+dbFileExt+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("partial write cut short by a cra"), 0o644); err != nil {
		t.Fatal(err)
	}

	svc2, err := NewPersistentService(dir)
	if err != nil {
		t.Fatalf("reload with leftover tmp file: %v", err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("crashed tmp file still present after reload")
	}
	// The durable state still serves queries.
	ts2 := httptest.NewServer(svc2)
	defer ts2.Close()
	sys.UseBackend(Dial(ts2.URL, "hospital").WithHTTPClient(ts2.Client()))
	nodes, _, _, err := sys.Query("//patient/pname")
	if err != nil {
		t.Fatalf("query after crash recovery: %v", err)
	}
	if len(nodes) != 2 {
		t.Errorf("crash recovery lost data: %v", core.ResultStrings(nodes))
	}
}

// TestPartialWriteKeepsLastDurableState: if persisting an update is
// torn mid-write (tmp written, rename never happens), a restart must
// come back with the previous durable state — not the torn one, and
// not nothing.
func TestPartialWriteKeepsLastDurableState(t *testing.T) {
	dir := t.TempDir()
	svc1, err := NewPersistentService(dir)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("torn-test"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	ts := httptest.NewServer(svc1)
	cl := Dial(ts.URL, "hospital").WithHTTPClient(ts.Client())
	if err := cl.Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	sys.UseBackend(cl)
	if _, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", "cholera"); err != nil {
		t.Fatalf("update: %v", err)
	}
	ts.Close()

	// Tear the *next* write: truncate a copy of the durable file into
	// the tmp slot, as if the process died between WriteFile and
	// Rename while persisting a second update.
	durable := filepath.Join(dir, "hospital"+dbFileExt)
	data, err := os.ReadFile(durable)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(durable+tmpSuffix, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	svc2, err := NewPersistentService(dir)
	if err != nil {
		t.Fatalf("reload after torn write: %v", err)
	}
	ts2 := httptest.NewServer(svc2)
	defer ts2.Close()
	sys.UseBackend(Dial(ts2.URL, "hospital").WithHTTPClient(ts2.Client()))
	nodes, _, _, err := sys.Query("//patient[.//disease='cholera']/pname")
	if err != nil {
		t.Fatalf("query after torn write: %v", err)
	}
	if len(nodes) != 1 || nodes[0].LeafValue() != "Matt" {
		t.Errorf("last durable state lost to a torn write: %v", core.ResultStrings(nodes))
	}
}
