package remote

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/xmltree"
)

func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	// First service instance: upload, update, stop.
	svc1, err := NewPersistentService(dir)
	if err != nil {
		t.Fatalf("NewPersistentService: %v", err)
	}
	ts1 := httptest.NewServer(svc1)
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("persist-test"))
	if err != nil {
		t.Fatalf("Host: %v", err)
	}
	cl := Dial(ts1.URL, "hospital").WithHTTPClient(ts1.Client())
	if err := cl.Upload(sys.HostedDB); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	sys.UseBackend(cl)
	if _, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", "cholera"); err != nil {
		t.Fatalf("update: %v", err)
	}
	ts1.Close()

	// The database file exists on disk.
	if _, err := os.Stat(filepath.Join(dir, "hospital"+dbFileExt)); err != nil {
		t.Fatalf("persisted file missing: %v", err)
	}

	// Second instance: reload from disk, query without re-upload; the
	// update must have survived.
	svc2, err := NewPersistentService(dir)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	ts2 := httptest.NewServer(svc2)
	defer ts2.Close()
	sys.UseBackend(Dial(ts2.URL, "hospital").WithHTTPClient(ts2.Client()))
	nodes, _, _, err := sys.Query("//patient[.//disease='cholera']/pname")
	if err != nil {
		t.Fatalf("post-restart query: %v", err)
	}
	if len(nodes) != 1 || nodes[0].LeafValue() != "Matt" {
		t.Errorf("update lost across restart: %v", core.ResultStrings(nodes))
	}
}

func TestPersistRejectsUnsafeNames(t *testing.T) {
	dir := t.TempDir()
	svc, err := NewPersistentService(dir)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, _ := core.Host(doc, scs, core.SchemeOpt, []byte("unsafe"))
	ts := httptest.NewServer(svc)
	defer ts.Close()
	cl := Dial(ts.URL, "..%2Fescape").WithHTTPClient(ts.Client())
	if err := cl.Upload(sys.HostedDB); err == nil {
		t.Errorf("path-traversal name accepted")
	}
	// Nothing outside the directory was written.
	entries, _ := os.ReadDir(filepath.Dir(dir))
	for _, e := range entries {
		if filepath.Ext(e.Name()) == dbFileExt {
			t.Errorf("stray persisted file %s", e.Name())
		}
	}
}
