package remote

import (
	"context"
	"math/rand"
	"time"
)

// RetryPolicy configures how the client re-attempts failed remote
// operations: exponential backoff with jitter under a total time
// budget.
//
// Idempotency: queries, aggregates and stats are read-only and retry
// freely. Uploads are full-state PUTs (replaying the same bytes is a
// no-op), and updates carry a request ID the server deduplicates
// (see wire.Update.RequestID), so both also retry safely — a retry
// of an update the server already applied is acknowledged without
// being applied twice.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, including the
	// first; values <= 1 disable retries.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each
	// further attempt multiplies it by Multiplier, capped at
	// MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter is the fraction of each delay randomized away, in
	// [0, 1]: delay is scaled by a uniform factor in
	// [1-Jitter, 1]. Jitter decorrelates clients hammering a
	// recovering server.
	Jitter float64
	// Budget bounds the total wall time across all attempts and
	// backoffs; 0 means no budget (the context deadline still
	// applies).
	Budget time.Duration
}

// DefaultRetryPolicy is the policy Dial installs: four attempts,
// 50 ms initial backoff doubling to at most 2 s, half-jittered,
// under a 15 s budget.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 4,
	BaseDelay:   50 * time.Millisecond,
	MaxDelay:    2 * time.Second,
	Multiplier:  2,
	Jitter:      0.5,
	Budget:      15 * time.Second,
}

// NoRetry disables retries entirely.
var NoRetry = RetryPolicy{MaxAttempts: 1}

// delay computes the backoff before attempt n (n=1 is the first
// retry). rng may be nil for an unjittered delay.
func (p RetryPolicy) delay(n int, rng *rand.Rand) time.Duration {
	d := float64(p.BaseDelay)
	mult := p.Multiplier
	if mult <= 0 {
		mult = 1
	}
	for i := 1; i < n; i++ {
		d *= mult
		if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && rng != nil {
		d *= 1 - p.Jitter*rng.Float64()
	}
	return time.Duration(d)
}

// sleep waits for d or until ctx is done, returning ctx.Err() in the
// latter case.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
