package remote

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/xmltree"
)

// The powercut soak: hundreds of kill/recover cycles against a
// mixed reader/writer workload on a fault-injecting filesystem with
// torn tails enabled. Invariants, checked every cycle:
//
//   - zero acknowledged-update loss: after recovery (plus owner-side
//     reconciliation of at most one in-flight ambiguous update), the
//     served value equals the last value the owner considers applied;
//   - zero unverifiable serves: the owner runs with integrity enabled
//     and a transport-installed verifier, so any answer that reaches
//     an assertion has already passed its Merkle check — recovery to
//     a state off the commitment chain would surface as ErrTampered
//     or a quarantine, both of which fail the cycle;
//   - corruption is never silently absorbed: a quarantine during the
//     soak (where every crash is a clean power cut) fails the test.
//
// Cycle count: 200 by default (the acceptance floor), 20 under
// -short, overridable with POWERCUT_CYCLES (the make powercut target
// raises it).

func powercutCycles(t *testing.T) int {
	if env := os.Getenv("POWERCUT_CYCLES"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 1 {
			t.Fatalf("POWERCUT_CYCLES=%q invalid", env)
		}
		return n
	}
	if testing.Short() {
		return 20
	}
	return 200
}

func TestPowercutSoak(t *testing.T) {
	cycles := powercutCycles(t)
	dir := t.TempDir()
	fs := faultfs.NewFaulty(20260808)
	fs.TornTails(true)
	// A small checkpoint interval keeps both paths (WAL append and
	// checkpoint write) under fire every few cycles.
	opts := PersistOptions{FS: fs, CheckpointEvery: 3}

	doc, err := xmltree.ParseString(hospitalXML)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("powercut"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableIntegrity(); err != nil {
		t.Fatal(err)
	}

	// The initial upload happens with no crash armed, so there is a
	// durable baseline; every later cycle crashes at a random write.
	svc, err := NewPersistentServiceOpts(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	newClient := func(ts *httptest.Server) *Client {
		return Dial(ts.URL, "hospital").
			WithHTTPClient(ts.Client()).
			WithRetry(NoRetry).
			WithVerifier(sys.Verifier())
	}
	if err := newClient(ts).Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatalf("baseline upload: %v", err)
	}
	sys.UseBackend(newClient(ts))

	expected := "leukemia" // Matt's disease in hospitalXML
	seq := 0
	for cycle := 0; cycle < cycles; cycle++ {
		// Concurrent readers run the verified query path during the
		// writer's updates; their errors (crashes, tamper refusals
		// while an update is pending) are expected — a wrong *served*
		// value is not, and the verifier turns those into errors.
		stop := make(chan struct{})
		var readers sync.WaitGroup
		for r := 0; r < 2; r++ {
			readers.Add(1)
			go func() {
				defer readers.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					_, _, _, _ = sys.Query("//patient/pname")
				}
			}()
		}

		// Arm the power cut at a random write offset, then drive
		// updates until it fires. At most one update can end up
		// ambiguous (the System refuses further ones until Reconcile),
		// so remember which value it carried.
		fs.CrashAfterWrites(int64(50 + (cycle*997)%4000))
		pendingVal := ""
		for i := 0; i < 6 && !fs.Crashed() && !sys.UpdatePending(); i++ {
			seq++
			val := fmt.Sprintf("cholera-%d", seq)
			_, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", val)
			switch {
			case err == nil:
				expected = val
			case errors.Is(err, core.ErrUpdatePending):
				// Ambiguous: resolved by Reconcile after recovery.
				pendingVal = val
			default:
				t.Fatalf("cycle %d: unexpected update error: %v", cycle, err)
			}
		}
		close(stop)
		readers.Wait()
		if !fs.Crashed() {
			fs.Crash() // the workload outran the trigger: cut now
		}
		ts.Close()
		svc.Close() // release WAL handles of the dead incarnation
		fs.Reopen()

		// Recover.
		svc, err = NewPersistentServiceOpts(dir, opts)
		if err != nil {
			t.Fatalf("cycle %d: recovery failed hard: %v", cycle, err)
		}
		if q := svc.Quarantined(); len(q) != 0 {
			t.Fatalf("cycle %d: clean power cut produced quarantine: %+v", cycle, q)
		}
		ts = httptest.NewServer(svc)
		sys.UseBackend(newClient(ts))

		// Settle the at-most-one ambiguous update. A definite
		// rejection here would mean the server lost the dedup memory
		// AND the re-apply failed — with idempotent updates that is a
		// correctness bug, so it fails the cycle.
		if sys.UpdatePending() {
			if _, err := sys.Reconcile(context.Background()); err != nil {
				t.Fatalf("cycle %d: reconcile: %v", cycle, err)
			}
			if pendingVal == "" {
				t.Fatalf("cycle %d: pending update with no recorded value", cycle)
			}
			expected = pendingVal
		}

		// Zero acknowledged-update loss, through the verified path.
		nodes, _, _, err := sys.Query("//patient[pname='Matt']//disease")
		if err != nil {
			t.Fatalf("cycle %d: verified query after recovery: %v", cycle, err)
		}
		if len(nodes) != 1 || nodes[0].LeafValue() != expected {
			got := ""
			if len(nodes) == 1 {
				got = nodes[0].LeafValue()
			}
			t.Fatalf("cycle %d: acked update lost: disease=%q want %q", cycle, got, expected)
		}
	}
	ts.Close()

	rec := svc.Recoveries()["hospital"]
	t.Logf("soak done: %d cycles, final recovery %+v", cycles, rec)
}
