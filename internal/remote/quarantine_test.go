package remote

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/xmltree"
)

// corruptDB flips a bit in the middle of name's snapshot file.
func corruptDB(t *testing.T, dir, name string) {
	t.Helper()
	path := filepath.Join(dir, name+dbFileExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestQuarantineUniqueDestinations: the same database name
// quarantined twice (corrupt, re-host, corrupt again) must produce
// two distinct corpses — the second must not silently overwrite the
// first — and each QuarantineRecord must point at a file that exists.
func TestQuarantineUniqueDestinations(t *testing.T) {
	dir := t.TempDir()
	persistDB(t, dir, "rotten")
	corruptDB(t, dir, "rotten")

	svc1, err := NewPersistentService(dir)
	if err != nil {
		t.Fatal(err)
	}
	q1 := svc1.Quarantined()
	if len(q1) != 1 {
		t.Fatalf("first corruption: %d quarantined", len(q1))
	}

	// Re-host the same name, then corrupt the fresh copy too.
	persistDB(t, dir, "rotten")
	corruptDB(t, dir, "rotten")
	svc2, err := NewPersistentService(dir)
	if err != nil {
		t.Fatal(err)
	}
	q2 := svc2.Quarantined()
	if len(q2) != 1 {
		t.Fatalf("second corruption: %d quarantined", len(q2))
	}
	if q1[0].Moved == q2[0].Moved {
		t.Fatalf("second corpse overwrote the first at %s", q1[0].Moved)
	}
	for _, rec := range []QuarantineRecord{q1[0], q2[0]} {
		if _, err := os.Stat(rec.Moved); err != nil {
			t.Errorf("QuarantineRecord.Moved=%s does not exist: %v", rec.Moved, err)
		}
		if rec.File != "rotten"+dbFileExt || rec.Reason == "" {
			t.Errorf("inaccurate record: %+v", rec)
		}
	}
}

// TestQuarantinedDBNotResurrected: once quarantined, a database must
// stay gone across further reloads — leftover sidecars (WAL, block
// store) must not re-materialize it, and the reload must not
// re-quarantine phantom files.
func TestQuarantinedDBNotResurrected(t *testing.T) {
	dir := t.TempDir()
	persistDB(t, dir, "rotten")
	corruptDB(t, dir, "rotten")

	svc1, err := NewPersistentService(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(svc1.Quarantined()) != 1 {
		t.Fatalf("setup: quarantine did not trigger")
	}
	// Sidecars went with the corpse: nothing of the database remains
	// in the data directory.
	for _, ext := range []string{dbFileExt, walDirExt, blkDirExt} {
		if _, err := os.Stat(filepath.Join(dir, "rotten"+ext)); !os.IsNotExist(err) {
			t.Errorf("quarantine left %s behind (err=%v)", "rotten"+ext, err)
		}
	}

	svc2, err := NewPersistentService(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(svc2.Quarantined()) != 0 {
		t.Errorf("second reload re-quarantined: %v", svc2.Quarantined())
	}
	ts := httptest.NewServer(svc2)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/db/rotten/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("quarantined database resurrected: stats status %d", resp.StatusCode)
	}
}

// TestRehostAfterQuarantinePersists: uploading a fresh copy under a
// quarantined name must work, persist durably, and leave the corpse
// in quarantine untouched.
func TestRehostAfterQuarantinePersists(t *testing.T) {
	dir := t.TempDir()
	persistDB(t, dir, "hospital")
	corruptDB(t, dir, "hospital")
	svc1, err := NewPersistentService(dir)
	if err != nil {
		t.Fatal(err)
	}
	q := svc1.Quarantined()
	if len(q) != 1 {
		t.Fatalf("setup: quarantine did not trigger")
	}
	corpse := q[0].Moved

	// Re-host under the same name on the same service, update, stop.
	ts := httptest.NewServer(svc1)
	doc, _ := xmltree.ParseString(hospitalXML)
	sys, err := core.Host(doc, scs, core.SchemeOpt, []byte("rehost"))
	if err != nil {
		t.Fatal(err)
	}
	cl := Dial(ts.URL, "hospital").WithHTTPClient(ts.Client())
	if err := cl.Upload(context.Background(), sys.HostedDB); err != nil {
		t.Fatalf("re-upload under quarantined name: %v", err)
	}
	sys.UseBackend(cl)
	if _, err := sys.UpdateLeafValues("//patient[pname='Matt']//disease", "cholera"); err != nil {
		t.Fatalf("update: %v", err)
	}
	ts.Close()

	// Restart: the re-hosted state (with its update) survives, the
	// corpse is still where quarantine put it.
	svc2, err := NewPersistentService(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(svc2.Quarantined()) != 0 {
		t.Fatalf("re-hosted database quarantined on reload: %v", svc2.Quarantined())
	}
	ts2 := httptest.NewServer(svc2)
	defer ts2.Close()
	sys.UseBackend(Dial(ts2.URL, "hospital").WithHTTPClient(ts2.Client()))
	nodes, _, _, err := sys.Query("//patient[.//disease='cholera']/pname")
	if err != nil {
		t.Fatalf("post-restart query: %v", err)
	}
	if len(nodes) != 1 || nodes[0].LeafValue() != "Matt" {
		t.Errorf("re-hosted update lost: %v", core.ResultStrings(nodes))
	}
	if _, err := os.Stat(corpse); err != nil {
		t.Errorf("corpse vanished from quarantine: %v", err)
	}
}
