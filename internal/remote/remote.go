// Package remote runs the paper's client/server split over a real
// network: the untrusted server becomes an HTTP service hosting
// uploaded databases, and the owner's client talks to it through a
// core.Backend implementation. Only wire-format bytes cross the
// connection — exactly the information the security analysis already
// assumes the server sees.
//
// The transport is hardened for the failures real deployments see:
// every client operation takes a context.Context (deadline +
// cancellation), failed attempts are retried under a configurable
// exponential-backoff policy (see RetryPolicy for the idempotency
// reasoning), a circuit breaker fails fast while the service is down
// and half-opens on a /healthz probe, response bodies carry an
// integrity checksum so damaged bytes are detected and retried, and
// updates carry request IDs the server deduplicates so a retried
// update is never applied twice. See the chaos test suite and the
// README's "Failure semantics" section.
//
// Endpoints (all bodies are the binary wire formats of
// internal/wire):
//
//	PUT  /db/{name}            upload a hosted database
//	POST /db/{name}/query      translated query -> answer
//	GET  /db/{name}/extreme    ?lo=..&hi=..&max=0|1 -> block id + bytes
//	POST /db/{name}/update     owner-signed update (see wire.Update)
//	GET  /db/{name}/stats      JSON statistics
//	GET  /healthz              liveness
package remote

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/authtree"
	"repro/internal/faultfs"
	"repro/internal/gencache"
	"repro/internal/server"
	"repro/internal/walog"
	"repro/internal/wire"
)

// maxUpload caps request bodies (default 1 GiB).
const maxUpload = 1 << 30

// checksumHeader carries a hex SHA-256 of the response body on the
// binary endpoints, so the client can tell damaged bytes from real
// ones and retry instead of failing on (or worse, accepting) a torn
// read.
const checksumHeader = "X-Body-Sha256"

// generationHeader carries the serving database's "epoch:generation"
// pair on query responses — the same values the SXA3 answer frame
// echoes in-band. Observability only; clients key their caches off
// the in-band copy, which is covered by the body checksum.
const generationHeader = "X-DB-Generation"

// dedupWindow bounds the per-database set of remembered update
// request IDs (oldest forgotten first).
const dedupWindow = 4096

// acceptStreamHeader is the request header a client sends to
// advertise that it can decode chunked SXS1 answers; its value names
// the protocol version. A server that doesn't understand the header
// ignores it and answers with the envelope, so negotiation degrades
// to the legacy format in both directions.
const acceptStreamHeader = "X-Accept-Stream"

// streamProto is the one streaming protocol version this build
// speaks.
const streamProto = "sxs1"

// streamContentType marks a chunked SXS1 response body. Integrity for
// streamed bodies rides in the stream trailer (a running SHA-256 the
// decoder verifies), not in the X-Body-Sha256 header — a whole-body
// checksum cannot be sent before a body that is produced
// incrementally.
const streamContentType = "application/x-secxml-stream"

// defaultStreamCutoff is the answer size (its envelope encoding, in
// bytes) below which the service answers with the envelope even for
// stream-capable clients: for small answers the envelope's single
// write beats the chunked framing, and nothing meaningful can overlap
// anyway.
const defaultStreamCutoff = 64 << 10

// Service is the HTTP-facing untrusted server. It can host several
// databases, keyed by name.
type Service struct {
	mu  sync.RWMutex
	dbs map[string]*hosted
	// persistDir, when set, mirrors every hosted database to disk
	// (see NewPersistentService).
	persistDir string
	// pfs is the filesystem seam for the durable engine; nil means
	// the real filesystem (see PersistOptions.FS).
	pfs faultfs.FS
	// walGroupWait, checkpointEvery and walSegBytes tune the durable
	// engine (see PersistOptions); zero values select defaults.
	walGroupWait    time.Duration
	checkpointEvery int
	walSegBytes     int64
	// dedupHits counts update requests answered from the dedup table
	// instead of being re-applied (observability + tests).
	dedupHits atomic.Int64
	// admCfg + admv are the overload-protection layer: cost-aware
	// admission, per-tenant quotas, deadline feasibility and the
	// brownout controller (see WithAdmission; WithMaxInFlight and
	// WithQueueWait remain as the legacy unit-cost configuration).
	// admv is never nil — the zero config admits everything and only
	// keeps counters — so handlers call it unconditionally. It is an
	// atomic pointer so the controller can be swapped on a live
	// service (operator retuning, test harnesses resetting state
	// between phases); tickets keep a reference to the controller
	// that admitted them, so in-flight requests release correctly
	// across a swap.
	admCfg admission.Config
	admv   atomic.Pointer[admission.Controller]
	// writeTimeout bounds each flush stride of a streamed answer: a
	// reader that stops draining (slow loris) trips the connection's
	// write deadline instead of pinning the worker. Zero selects
	// defaultWriteTimeout; negative disables the deadline.
	writeTimeout time.Duration
	// quarantined records corrupt database files set aside at load
	// (see NewPersistentService); written once at startup, read-only
	// afterwards.
	quarantined []QuarantineRecord
	// streamCutoff is the answer size at which query responses switch
	// from the envelope to the chunked stream for clients that
	// advertise support; 0 selects defaultStreamCutoff, negative
	// disables streaming (see WithStreamCutoff).
	streamCutoff int
	// batching, when non-nil, coalesces concurrent single-update
	// requests into server-side group commits (see
	// WithUpdateBatching).
	batching *updateBatching
	// plannerMode, when non-empty, forces every hosted server's
	// twig-vs-pairwise planner strategy (see WithPlannerStrategy and
	// server.ForceStrategy) — a debugging and benchmarking control.
	plannerMode string
}

type hosted struct {
	// mu serializes updates to this database (dedup check + apply +
	// persist act as one step). Queries do NOT take it: the server
	// publishes MVCC snapshots internally, so reads pin a generation
	// and run lock-free against concurrent updates. The current
	// generation's database view is h.srv.CurrentDB() — there is no
	// cached db object here because the upload-time one goes stale
	// the moment the first copy-on-write update commits.
	mu  sync.Mutex
	srv *server.Server
	// seen is the request-ID dedup table: IDs of updates already
	// applied, so a retry of a lost acknowledgment is answered
	// without re-applying. Guarded by mu.
	seen      map[uint64]bool
	seenOrder []uint64

	// dur is the persistence state of this database (nil when the
	// service is memory-only). Guarded by mu like the dedup table.
	dur *durable
	// recovery describes what startup recovery did for this database;
	// written once before the service takes traffic, read-only after.
	recovery *RecoveryStats
	// persistFailures counts updates whose durability step failed
	// (the client got a 5xx and will retry); diskFullFailures is the
	// subset caused by storage exhaustion rather than damage.
	persistFailures  atomic.Int64
	diskFullFailures atomic.Int64

	// Streamed-answer counters for this database, surfaced by the
	// stats endpoint: how many query answers went out as chunked
	// streams, and the total bytes and chunks they carried.
	streamAnswers atomic.Int64
	streamBytes   atomic.Int64
	streamChunks  atomic.Int64

	// updQ is the group-commit coalescer for single-update requests
	// (active only when the service enables batching; see batcher.go).
	updQ updateQueue
	// Update-pipeline counters, surfaced by the stats endpoint.
	// updBatches counts committed group commits, updBatched the
	// updates they carried, updSingles updates that went through the
	// one-at-a-time path (legacy frames, root-bearing updates, batch
	// apply fallback), updMaxBatch the largest batch committed.
	// updFlushSize/updFlushTimer split flushes by trigger.
	// updEnqueueNs/updApplyNs/updFsyncNs are cumulative: time callers
	// spent waiting in the queue, time in ApplyUpdateBatch, and time
	// waiting on the batch's group fsync.
	updBatches   atomic.Int64
	updBatched   atomic.Int64
	updSingles   atomic.Int64
	updMaxBatch  atomic.Int64
	updFlushSize atomic.Int64
	updFlushTime atomic.Int64
	updEnqueueNs atomic.Int64
	updApplyNs   atomic.Int64
	updFsyncNs   atomic.Int64
}

func newHosted(srv *server.Server) *hosted {
	return &hosted{srv: srv, seen: map[uint64]bool{}}
}

// rememberLocked enters a request ID into the dedup table, evicting
// the oldest entry past the window. Caller holds h.mu (or, during
// recovery, is the only goroutine that can see h).
func (h *hosted) rememberLocked(id uint64) {
	h.seen[id] = true
	h.seenOrder = append(h.seenOrder, id)
	if len(h.seenOrder) > dedupWindow {
		delete(h.seen, h.seenOrder[0])
		h.seenOrder = h.seenOrder[1:]
	}
}

// NewService returns an empty service.
func NewService() *Service {
	s := &Service{dbs: map[string]*hosted{}}
	s.rebuildAdm()
	return s
}

// WithPlannerStrategy forces the query planner strategy ("auto",
// "twig" or "pairwise") on every database the service hosts now or
// later — answers are byte-identical under every mode, so this only
// redirects which execution path produces them (the -planner debug
// flag of cmd/xserve). Returns an error on an unknown mode.
func (s *Service) WithPlannerStrategy(mode string) (*Service, error) {
	if mode == "" {
		mode = "auto"
	}
	if err := validatePlannerMode(mode); err != nil {
		return s, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plannerMode = mode
	for _, h := range s.dbs {
		h.srv.ForceStrategy(mode)
	}
	return s, nil
}

func validatePlannerMode(mode string) error {
	switch mode {
	case "auto", server.StrategyTwig, server.StrategyPairwise:
		return nil
	}
	return fmt.Errorf("remote: unknown planner strategy %q", mode)
}

// applyPlannerMode applies the service-wide forced strategy to a
// freshly hosted server (upload, local registration, disk load).
func (s *Service) applyPlannerMode(h *hosted) {
	if s.plannerMode != "" && s.plannerMode != "auto" {
		h.srv.ForceStrategy(s.plannerMode)
	}
}

// rebuildAdm reconstitutes the admission controller from the current
// config, wiring brownout transitions into the service log. Called by
// the With* configuration methods, before traffic.
func (s *Service) rebuildAdm() {
	cfg := s.admCfg
	if cfg.Brownout {
		user := cfg.BrownoutConfig.OnTransition
		cfg.BrownoutConfig.OnTransition = func(from, to int) {
			log.Printf("remote: brownout %s -> %s", admission.LevelName(from), admission.LevelName(to))
			if user != nil {
				user(from, to)
			}
		}
	}
	s.admv.Store(admission.New(cfg))
}

// adm returns the current admission controller (never nil).
func (s *Service) adm() *admission.Controller { return s.admv.Load() }

// WithMaxInFlight bounds the number of query/extreme requests the
// service executes at once to n; further requests queue until a slot
// frees or their own context expires, at which point they are turned
// away with 503. n <= 0 removes the bound. With the server-side
// matcher itself fanning out across GOMAXPROCS workers per query
// (internal/server), the bound keeps p concurrent clients from
// oversubscribing the host with p×GOMAXPROCS runnable goroutines.
// This is the legacy unit-cost spelling of WithAdmission: each
// request costs one unit against a capacity of n. Call before serving
// traffic; returns s for chaining.
func (s *Service) WithMaxInFlight(n int) *Service {
	if n <= 0 {
		s.admCfg.MaxCost = 0
	} else {
		s.admCfg.MaxCost = int64(n)
	}
	s.rebuildAdm()
	return s
}

// defaultQueueWait is how long a request queues for an execution
// slot before the service sheds it with 503 (overridable with
// WithQueueWait). Bounded so a saturated service degrades into fast,
// retryable rejections instead of an unbounded backlog.
const defaultQueueWait = 2 * time.Second

// WithQueueWait bounds how long a request may wait for an execution
// slot before being shed with 503. Only meaningful together with a
// gate (WithMaxInFlight or WithAdmission). Returns s for chaining.
func (s *Service) WithQueueWait(d time.Duration) *Service {
	s.admCfg.QueueWait = d
	s.rebuildAdm()
	return s
}

// WithAdmission installs the full overload-protection configuration:
// cost-aware gating (capacity in predicted-blocks-touched units),
// per-tenant token buckets, deadline feasibility rejection and the
// brownout controller. It subsumes WithMaxInFlight/WithQueueWait —
// last caller wins. Call before serving traffic; returns s for
// chaining.
func (s *Service) WithAdmission(cfg admission.Config) *Service {
	s.admCfg = cfg
	s.rebuildAdm()
	return s
}

// Admission exposes the service's admission controller (stats,
// brownout level, test hooks).
func (s *Service) Admission() *admission.Controller { return s.adm() }

// defaultWriteTimeout bounds one flush stride of a streamed answer.
// Generous: it only needs to be shorter than "forever" to unpin
// workers from dead peers.
const defaultWriteTimeout = 30 * time.Second

// WithWriteTimeout bounds how long one flush stride of a streamed
// answer may block on the connection before the write deadline trips
// and the stream is abandoned (the decoder on a live client sees a
// torn body and retries). Zero restores the default (30s); negative
// disables the deadline. Returns s for chaining.
func (s *Service) WithWriteTimeout(d time.Duration) *Service {
	s.writeTimeout = d
	return s
}

// writeTimeoutBounds resolves the configured stream write timeout; ok
// is false when disabled.
func (s *Service) writeTimeoutBounds() (time.Duration, bool) {
	switch {
	case s.writeTimeout < 0:
		return 0, false
	case s.writeTimeout == 0:
		return defaultWriteTimeout, true
	default:
		return s.writeTimeout, true
	}
}

// Rejected reports how many requests were shed with 503 because no
// execution slot freed up within the queue-wait bound.
func (s *Service) Rejected() int { return int(s.adm().QueueRejected()) }

// WithStreamCutoff sets the answer size (envelope bytes) at which
// query responses to stream-capable clients switch from the
// monolithic envelope to the chunked SXS1 stream. Zero restores the
// default (64 KiB); a negative value disables streaming entirely, so
// every client gets the envelope regardless of what it advertises.
// Returns s for chaining.
func (s *Service) WithStreamCutoff(n int) *Service {
	s.streamCutoff = n
	return s
}

// WithUpdateBatching turns on server-side group commit for the update
// endpoint: concurrent single-update requests enqueue into a
// per-database coalescer that flushes when size updates are pending
// or maxWait has elapsed since the first, whichever comes first. One
// flush applies the whole batch atomically (one write-lock
// acquisition, one incremental Merkle advance, one generation bump)
// and stages ONE WAL record covering every member, so the group
// fsync is amortized across the batch. Each caller still gets its own
// acknowledgment, and the ack-after-fsync ordering is unchanged: no
// caller sees 200 before the batch is durable. size <= 1 disables
// batching. Call before serving traffic; returns s for chaining.
func (s *Service) WithUpdateBatching(size int, maxWait time.Duration) *Service {
	if size <= 1 {
		s.batching = nil
	} else {
		if maxWait <= 0 {
			maxWait = defaultUpdateMaxWait
		}
		s.batching = &updateBatching{size: size, maxWait: maxWait}
	}
	return s
}

// streamCutoffBytes resolves the configured cutoff; ok is false when
// streaming is disabled.
func (s *Service) streamCutoffBytes() (int, bool) {
	switch {
	case s.streamCutoff < 0:
		return 0, false
	case s.streamCutoff == 0:
		return defaultStreamCutoff, true
	default:
		return s.streamCutoff, true
	}
}

// requestMeta reads the overload-protocol headers off one arrival:
// priority class (def when absent), tenant, and the relative deadline
// budget turned into an absolute deadline against this host's clock.
func requestMeta(r *http.Request, def admission.Priority) admission.Request {
	req := admission.Request{
		Priority: admission.ParsePriority(r.Header.Get(wire.HeaderPriority), def),
		Cost:     1,
		Tenant:   r.Header.Get(wire.HeaderClientID),
	}
	if ms := r.Header.Get(wire.HeaderDeadlineMS); ms != "" {
		if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
			req.Deadline = time.Now().Add(time.Duration(v) * time.Millisecond)
		}
	}
	return req
}

// shed writes one admission rejection, carrying the computed
// Retry-After (whole seconds, at least 1) on the shed statuses a
// client should back off from.
func shed(w http.ResponseWriter, rej *admission.Rejection) {
	if rej.RetryAfter > 0 {
		secs := int(rej.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	http.Error(w, rej.Reason, rej.Status)
}

// admit runs one query/extreme arrival through the admission
// controller. On nil the rejection has been written; otherwise the
// caller must Done() the ticket.
func (s *Service) admit(w http.ResponseWriter, r *http.Request, req admission.Request) *admission.Ticket {
	tk, rej := s.adm().Admit(r.Context(), req)
	if rej != nil {
		shed(w, rej)
		return nil
	}
	return tk
}

// execCtx derives the execution context for an admitted request: the
// caller's connection context bounded by its propagated deadline, so
// in-flight work is cancelled the moment the caller's budget runs out.
func execCtx(r *http.Request, req admission.Request) (context.Context, context.CancelFunc) {
	if req.Deadline.IsZero() {
		return r.Context(), func() {}
	}
	return context.WithDeadline(r.Context(), req.Deadline)
}

// DedupHits reports how many update requests were answered from the
// request-ID dedup table rather than re-applied.
func (s *Service) DedupHits() int { return int(s.dedupHits.Load()) }

// ServeHTTP implements http.Handler.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
		return
	}
	rest, ok := strings.CutPrefix(r.URL.Path, "/db/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	name, action, _ := strings.Cut(rest, "/")
	if name == "" {
		http.Error(w, "missing database name", http.StatusBadRequest)
		return
	}
	switch {
	case action == "" && r.Method == http.MethodPut:
		s.handleUpload(w, r, name)
	case action == "query" && r.Method == http.MethodPost:
		s.withDB(w, name, func(h *hosted) { s.handleQuery(w, r, h) })
	case action == "extreme" && r.Method == http.MethodGet:
		s.withDB(w, name, func(h *hosted) { s.handleExtreme(w, r, h) })
	case action == "update" && r.Method == http.MethodPost:
		s.withDB(w, name, func(h *hosted) { s.handleUpdate(w, r, name, h) })
	case action == "stats" && r.Method == http.MethodGet:
		s.withDB(w, name, func(h *hosted) { s.handleStats(w, h) })
	default:
		http.Error(w, "unknown endpoint or method", http.StatusMethodNotAllowed)
	}
}

func (s *Service) withDB(w http.ResponseWriter, name string, fn func(*hosted)) {
	s.mu.RLock()
	h := s.dbs[name]
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "no such database", http.StatusNotFound)
		return
	}
	fn(h)
}

// writeChecksummed sends a binary payload with its integrity header.
func writeChecksummed(w http.ResponseWriter, payload []byte) {
	sum := sha256.Sum256(payload)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(checksumHeader, hex.EncodeToString(sum[:]))
	w.Write(payload)
}

// canceled reports (and answers) a request whose client already gave
// up, so handlers skip work the caller will never see. 499 matches
// nginx's "client closed request".
func canceled(w http.ResponseWriter, r *http.Request) bool {
	if err := r.Context().Err(); err != nil {
		http.Error(w, "client canceled request", 499)
		return true
	}
	return false
}

func (s *Service) handleUpload(w http.ResponseWriter, r *http.Request, name string) {
	// An unsafe name is a permanent client error; reject it before
	// hosting so the client doesn't retry a hopeless upload.
	if s.persistDir != "" && strings.ContainsAny(name, "/\\.") {
		http.Error(w, fmt.Sprintf("database name %q not filesystem-safe", name), http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxUpload))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	db, err := wire.UnmarshalDB(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if canceled(w, r) {
		return
	}
	h := newHosted(server.New(db))
	s.mu.Lock()
	s.applyPlannerMode(h)
	old := s.dbs[name]
	s.dbs[name] = h
	s.mu.Unlock()
	if old != nil && old.dur != nil {
		old.dur.close()
	}
	if s.persistDir != "" {
		if err := s.persistUpload(name, h); err != nil {
			h.persistFailures.Add(1)
			http.Error(w, err.Error(), persistStatus(err, &h.diskFullFailures))
			return
		}
	}
	w.WriteHeader(http.StatusCreated)
}

// persistUpload makes a freshly uploaded database durable: fresh
// sidecars (a previous incarnation's WAL and blocks are garbage for
// the new state), every block dirty, one full checkpoint.
func (s *Service) persistUpload(name string, h *hosted) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	dur, err := s.openDurable(name, true)
	if err != nil {
		return err
	}
	for id := range h.srv.CurrentDB().Blocks {
		dur.dirty[id] = struct{}{}
	}
	h.dur = dur
	return s.checkpointLocked(h)
}

// persistStatus maps a durability failure to its HTTP status: 507 for
// storage exhaustion (degraded, retryable once space clears), 500 for
// everything else. Both are >= 500, so the client's retry policy
// treats them as temporary. Bumps the disk-full counter on the way.
func persistStatus(err error, diskFull *atomic.Int64) int {
	if errors.Is(err, ErrDiskFull) {
		diskFull.Add(1)
		return http.StatusInsufficientStorage
	}
	return http.StatusInternalServerError
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request, h *hosted) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxUpload))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !wire.IsQueryFrame(data) {
		http.Error(w, "not a query frame", http.StatusBadRequest)
		return
	}
	if canceled(w, r) {
		return
	}
	req := requestMeta(r, admission.Interactive)
	if s.adm().CostAware() {
		req.Cost = h.srv.EstimateFrameCost(data)
	}
	// Brownout L2 and above: serve from the generation-tagged answer
	// cache only. A cached answer is bit-identical to what a live
	// execution at this generation produced (proofs included — the
	// cache key covers the WantProof bit), so degraded service never
	// relaxes integrity; it only narrows which queries get answered.
	// Cold queries shed; at L3 lower classes shed before the cache is
	// even consulted.
	if lvl := s.adm().Level(); lvl >= admission.LevelCachedOnly {
		s.adm().Pulse()
		if lvl >= admission.LevelCritical && req.Priority < admission.Interactive {
			s.adm().NoteBrownoutShed()
			shed(w, &admission.Rejection{
				Status:     http.StatusServiceUnavailable,
				Reason:     "brownout: admitting " + admission.Interactive.String() + " requests only",
				RetryAfter: s.adm().RetryAfter(),
			})
			return
		}
		if ans, ok := h.srv.CachedAnswer(data); ok {
			s.adm().NoteDegraded()
			w.Header().Set(wire.HeaderBrownoutLevel, strconv.Itoa(lvl))
			w.Header().Set(wire.HeaderDegraded, "cached")
			setPlanHeaders(w, ans)
			out, err := wire.MarshalAnswer(ans)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set(generationHeader, fmt.Sprintf("%d:%d", ans.Epoch, ans.Generation))
			writeChecksummed(w, out)
			return
		}
		s.adm().NoteBrownoutShed()
		shed(w, &admission.Rejection{
			Status:     http.StatusServiceUnavailable,
			Reason:     "brownout: serving cached answers only",
			RetryAfter: s.adm().RetryAfter(),
		})
		return
	}
	tk := s.admit(w, r, req)
	if tk == nil {
		return
	}
	defer tk.Done()
	ctx, cancel := execCtx(r, req)
	defer cancel()
	// No hosted-level lock: the server's own read lock lets queries
	// run concurrently and orders them against updates. The raw frame
	// goes straight to the server: its fingerprint keys the compiled
	// plan and answer caches, so a repeated query skips even the
	// parse.
	ans, err := h.srv.ExecuteFrameCtx(ctx, data)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			// The propagated caller deadline passed mid-execution; the
			// pipeline abandoned the answer between stages.
			http.Error(w, "caller deadline exceeded during execution", http.StatusGatewayTimeout)
		case errors.Is(err, context.Canceled):
			http.Error(w, "client canceled request", 499)
		default:
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		}
		return
	}
	if lvl := s.adm().Level(); lvl > admission.LevelFull {
		w.Header().Set(wire.HeaderBrownoutLevel, strconv.Itoa(lvl))
	}
	setPlanHeaders(w, ans)
	if s.streamQuery(w, r, h, ans) {
		return
	}
	out, err := wire.MarshalAnswer(ans)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// Echo the db generation out-of-band too (the answer frame
	// carries it in-band), so operators and proxies can observe cache
	// epochs without decoding frames.
	w.Header().Set(generationHeader, fmt.Sprintf("%d:%d", ans.Epoch, ans.Generation))
	writeChecksummed(w, out)
}

// streamQuery sends ans as a chunked SXS1 body when the client
// advertised stream support, streaming is enabled, the answer is
// large enough to be worth it, and the connection can flush
// incrementally. It reports whether it handled the response; false
// means the caller should answer with the envelope. The generation
// header is set either way; the body checksum header is not — for a
// streamed body, integrity rides in the stream trailer.
func (s *Service) streamQuery(w http.ResponseWriter, r *http.Request, h *hosted, ans *wire.Answer) bool {
	cutoff, enabled := s.streamCutoffBytes()
	if !enabled || r.Header.Get(acceptStreamHeader) != streamProto {
		return false
	}
	// Brownout L1 ("lean"): streaming only pays for itself on large
	// answers, and each stream holds a flusher and buffer for its whole
	// transfer; under pressure, quadruple the cutoff so mid-size
	// answers take the single-write envelope instead.
	if s.adm().Level() >= admission.LevelLean {
		cutoff *= 4
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush || ans.ByteSize() < cutoff {
		return false
	}
	w.Header().Set("Content-Type", streamContentType)
	w.Header().Set(generationHeader, fmt.Sprintf("%d:%d", ans.Epoch, ans.Generation))
	// The encoder's own writes are small (tags, varints); batch them
	// so each flush stride costs one chunk, not dozens of tiny ones.
	// Each flush stride re-arms the connection's write deadline: a
	// peer that stops draining (slow loris) trips the deadline, the
	// bufio writer goes sticky-errored, and the encoder unwinds — the
	// worker is freed instead of being pinned on a dead socket.
	rc := http.NewResponseController(w)
	wt, bounded := s.writeTimeoutBounds()
	bw := bufio.NewWriterSize(w, 32<<10)
	flush := func() {
		if bounded {
			rc.SetWriteDeadline(time.Now().Add(wt))
		}
		bw.Flush()
		fl.Flush()
	}
	n, chunks, err := wire.EncodeStreamAnswer(bw, ans, flush)
	// A mid-stream write error means the peer is gone; the torn body
	// is exactly what the decoder reports as retryable, and there is
	// no channel left to say more. Count what actually went out.
	_ = err
	h.streamAnswers.Add(1)
	h.streamBytes.Add(int64(n))
	h.streamChunks.Add(int64(chunks))
	return true
}

func (s *Service) handleExtreme(w http.ResponseWriter, r *http.Request, h *hosted) {
	lo, err1 := strconv.ParseUint(r.URL.Query().Get("lo"), 10, 64)
	hi, err2 := strconv.ParseUint(r.URL.Query().Get("hi"), 10, 64)
	if err1 != nil || err2 != nil {
		http.Error(w, "lo and hi must be uint64", http.StatusBadRequest)
		return
	}
	max := r.URL.Query().Get("max") == "1"
	if canceled(w, r) {
		return
	}
	// Extreme probes drive aggregates: their default class sits below
	// interactive queries, so a browned-out service sheds them first.
	tk := s.admit(w, r, requestMeta(r, admission.Aggregate))
	if tk == nil {
		return
	}
	defer tk.Done()
	if r.URL.Query().Get("proof") == "1" {
		// Proof mode always answers 200: emptiness is a verifiable
		// claim (the authenticated buckets are empty), not a 404.
		res, err := h.srv.ExtremeProof(lo, hi, max)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeChecksummed(w, encodeExtremeResult(res))
		return
	}
	bid, ct, found, err := h.srv.Extreme(lo, hi, max)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !found {
		http.Error(w, "no entries in range", http.StatusNotFound)
		return
	}
	payload := make([]byte, 8+len(ct))
	binary.BigEndian.PutUint64(payload[:8], uint64(bid))
	copy(payload[8:], ct)
	writeChecksummed(w, payload)
}

// encodeExtremeResult frames a proof-mode extreme response:
// [1 found] [8 block id] [4 proof len] [proof] [block bytes].
func encodeExtremeResult(res *wire.ExtremeResult) []byte {
	out := make([]byte, 13, 13+len(res.Proof)+len(res.Block))
	if res.Found {
		out[0] = 1
	}
	binary.BigEndian.PutUint64(out[1:9], uint64(res.BlockID))
	binary.BigEndian.PutUint32(out[9:13], uint32(len(res.Proof)))
	out = append(out, res.Proof...)
	return append(out, res.Block...)
}

// decodeExtremeResult reverses encodeExtremeResult.
func decodeExtremeResult(body []byte) (*wire.ExtremeResult, error) {
	if len(body) < 13 {
		return nil, fmt.Errorf("short extreme-proof response: %w", io.ErrUnexpectedEOF)
	}
	plen := binary.BigEndian.Uint32(body[9:13])
	if uint64(13)+uint64(plen) > uint64(len(body)) {
		return nil, fmt.Errorf("extreme-proof length overruns body: %w", io.ErrUnexpectedEOF)
	}
	res := &wire.ExtremeResult{
		Found:   body[0] == 1,
		BlockID: int(binary.BigEndian.Uint64(body[1:9])),
		Proof:   body[13 : 13+plen],
	}
	if rest := body[13+plen:]; len(rest) > 0 {
		res.Block = rest
	}
	return res, nil
}

func (s *Service) handleUpdate(w http.ResponseWriter, r *http.Request, name string, h *hosted) {
	// Updates never take the query gate (they serialize on the hosted
	// lock and must not compete with reads for cost units), but they
	// do honor the overload protocol: background-class work sheds
	// under deep brownout — applying updates would invalidate the very
	// answer cache L2 serves from — and an already-dead caller
	// deadline is turned away before any byte of body is read.
	s.adm().Pulse()
	req := requestMeta(r, admission.Background)
	if lvl := s.adm().Level(); lvl >= admission.LevelCachedOnly && req.Priority < admission.Interactive {
		s.adm().NoteBrownoutShed()
		shed(w, &admission.Rejection{
			Status:     http.StatusServiceUnavailable,
			Reason:     "brownout: deferring " + req.Priority.String() + " updates",
			RetryAfter: s.adm().RetryAfter(),
		})
		return
	}
	if !req.Deadline.IsZero() && time.Until(req.Deadline) <= 0 {
		s.adm().NoteDeadlineShed()
		http.Error(w, "caller deadline already passed", http.StatusGatewayTimeout)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxUpload))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if wire.IsUpdateBatchFrame(data) {
		// Client-assembled SXB1 batch: apply as one atomic group
		// commit regardless of the service's coalescing setting.
		b, err := wire.UnmarshalUpdateBatch(data)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if canceled(w, r) {
			return
		}
		s.applyBatchFrame(w, h, data, b)
		return
	}
	upd, err := wire.UnmarshalUpdate(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if canceled(w, r) {
		return
	}
	if s.batching != nil && len(upd.NewRoot) == 0 {
		// Coalesce concurrent rootless updates into a group commit.
		// Root-bearing updates stay on the one-at-a-time path: their
		// root describes the state after exactly this update, which a
		// batch with interleaved members would never expose.
		applyErr, persistErr := s.enqueueUpdate(h, data, upd)
		s.answerUpdate(w, h, applyErr, persistErr)
		return
	}
	h.mu.Lock()
	if upd.RequestID != 0 && h.seen[upd.RequestID] {
		// A retry of an update we already applied: acknowledge
		// without re-applying.
		h.mu.Unlock()
		s.dedupHits.Add(1)
		w.WriteHeader(http.StatusOK)
		return
	}
	err = h.srv.ApplyUpdate(upd)
	var persistErr error
	var tk *walog.Ticket
	if err == nil {
		h.updSingles.Add(1)
		if h.dur != nil {
			// Stage the WAL record while still holding the update lock, so
			// records enter the log in commit order; the fsync wait happens
			// outside the lock so one update's disk latency doesn't
			// serialize the next update's apply.
			tk, persistErr = s.stageDurable(h, recUpdate, data, []*wire.Update{upd})
		}
	}
	h.mu.Unlock()
	if err == nil && persistErr == nil {
		persistErr = s.ensureDurable(h, tk)
	}
	// Durability ordering: the request ID enters the dedup table only
	// after the update is durable (WAL fsynced or checkpoint written).
	// Recording it before would let a failed persist + client retry be
	// dedup-acked without re-persisting — the client believes the
	// update durable while the disk still holds the old state.
	// (Updates are idempotent — whole-band index replacement, same
	// ciphertexts — so the retry's re-apply is harmless.)
	if err == nil && persistErr == nil && upd.RequestID != 0 {
		h.mu.Lock()
		h.rememberLocked(upd.RequestID)
		h.mu.Unlock()
	}
	s.answerUpdate(w, h, err, persistErr)
}

// answerUpdate maps an update's (apply, persist) outcome onto the
// HTTP response, shared by the inline, coalesced and batch-frame
// paths.
func (s *Service) answerUpdate(w http.ResponseWriter, h *hosted, applyErr, persistErr error) {
	if applyErr != nil {
		http.Error(w, applyErr.Error(), http.StatusUnprocessableEntity)
		return
	}
	if persistErr != nil {
		h.persistFailures.Add(1)
		http.Error(w, persistErr.Error(), persistStatus(persistErr, &h.diskFullFailures))
		return
	}
	w.WriteHeader(http.StatusOK)
}

// noteBatch records a committed group commit of n updates in the
// stats counters.
func (h *hosted) noteBatch(n int) {
	h.updBatches.Add(1)
	h.updBatched.Add(int64(n))
	for {
		cur := h.updMaxBatch.Load()
		if int64(n) <= cur || h.updMaxBatch.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// applyBatchFrame applies a client-assembled SXB1 batch: one atomic
// server apply (single generation bump, single incremental Merkle
// advance), ONE WAL record carrying the client's exact frame bytes,
// one group fsync. Dedup runs at the batch level — the batch request
// ID is what a retry of this POST re-presents — and member IDs are
// remembered too, so a later single-update retry of a member is also
// dedup-acked. All IDs enter the table only after durability, exactly
// like the single path.
func (s *Service) applyBatchFrame(w http.ResponseWriter, h *hosted, raw []byte, b *wire.UpdateBatch) {
	h.mu.Lock()
	if b.RequestID != 0 && h.seen[b.RequestID] {
		h.mu.Unlock()
		s.dedupHits.Add(1)
		w.WriteHeader(http.StatusOK)
		return
	}
	t0 := time.Now()
	err := h.srv.ApplyUpdateBatch(b.Updates)
	h.updApplyNs.Add(int64(time.Since(t0)))
	var persistErr error
	var tk *walog.Ticket
	if err == nil {
		h.noteBatch(len(b.Updates))
		if h.dur != nil {
			tk, persistErr = s.stageDurable(h, recUpdateBatch, raw, b.Updates)
		}
	}
	h.mu.Unlock()
	if err == nil && persistErr == nil {
		t1 := time.Now()
		persistErr = s.ensureDurable(h, tk)
		h.updFsyncNs.Add(int64(time.Since(t1)))
	}
	if err == nil && persistErr == nil {
		h.mu.Lock()
		if b.RequestID != 0 {
			h.rememberLocked(b.RequestID)
		}
		for _, u := range b.Updates {
			if u.RequestID != 0 {
				h.rememberLocked(u.RequestID)
			}
		}
		h.mu.Unlock()
	}
	s.answerUpdate(w, h, err, persistErr)
}

// setPlanHeaders echoes the planner's chosen strategy and cost
// estimate out-of-band: answer bytes are strategy-independent by the
// planner's contract, so observability rides in headers, not frames.
func setPlanHeaders(w http.ResponseWriter, ans *wire.Answer) {
	if ans.PlanStrategy != "" {
		w.Header().Set(wire.HeaderPlanStrategy, ans.PlanStrategy)
		w.Header().Set(wire.HeaderPlanCost, strconv.FormatInt(ans.PlanCost, 10))
	}
}

func (s *Service) handleStats(w http.ResponseWriter, h *hosted) {
	// Stats polls advance the brownout window too, so the level keeps
	// stepping down while an operator watches a drained service.
	s.adm().Pulse()
	stats := map[string]any{
		"overload":     s.adm().Snapshot(),
		"blocks":       h.srv.NumBlocks(),
		"indexEntries": h.srv.IndexSize(),
		"indexHeight":  h.srv.IndexHeight(),
		"generation":   h.srv.Generation(),
		"caches":       h.srv.CacheStats(),
		"planner":      h.srv.PlannerStats(),
		"synopsis":     h.srv.Synopsis(),
		"stream": map[string]int64{
			"answers": h.streamAnswers.Load(),
			"bytes":   h.streamBytes.Load(),
			"chunks":  h.streamChunks.Load(),
		},
		"updates": map[string]int64{
			"batches":      h.updBatches.Load(),
			"batched":      h.updBatched.Load(),
			"singles":      h.updSingles.Load(),
			"maxBatch":     h.updMaxBatch.Load(),
			"flushBySize":  h.updFlushSize.Load(),
			"flushByTimer": h.updFlushTime.Load(),
			"enqueueNs":    h.updEnqueueNs.Load(),
			"applyNs":      h.updApplyNs.Load(),
			"fsyncNs":      h.updFsyncNs.Load(),
		},
	}
	if h.dur != nil {
		h.mu.Lock()
		dur := map[string]any{
			"degraded":        h.dur.degraded,
			"walBytes":        h.dur.walSize(),
			"sinceCheckpoint": h.dur.sinceCheckpoint,
			"dirtyBlocks":     len(h.dur.dirty),
			"persistFailures": h.persistFailures.Load(),
			"diskFull":        h.diskFullFailures.Load(),
		}
		if h.dur.wal != nil {
			// Group-commit amortization in one number: acknowledged
			// records over fsyncs actually performed.
			dur["walSyncs"] = h.dur.wal.Syncs()
		}
		stats["durability"] = dur
		h.mu.Unlock()
	}
	if h.recovery != nil {
		stats["recovery"] = *h.recovery
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(stats)
}

// CacheStats snapshots the cross-query cache counters of every
// hosted database, keyed by database name then cache name (cmd/xserve
// publishes this via expvar under /debug/vars).
func (s *Service) CacheStats() map[string]map[string]gencache.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]map[string]gencache.Stats, len(s.dbs))
	for name, h := range s.dbs {
		out[name] = h.srv.CacheStats()
	}
	return out
}

// RegisterLocal hosts a database in the service without going over
// the network, round-tripping through the wire format so exactly the
// uploadable bytes are served (used by cmd/xserve's demo mode).
func (s *Service) registerLocal(name string, db *wire.HostedDB) error {
	data, err := wire.MarshalDB(db)
	if err != nil {
		return err
	}
	decoded, err := wire.UnmarshalDB(data)
	if err != nil {
		return err
	}
	s.mu.Lock()
	h := newHosted(server.New(decoded))
	s.applyPlannerMode(h)
	s.dbs[name] = h
	s.mu.Unlock()
	return nil
}

// RegisterLocal is the exported form of registerLocal.
func RegisterLocal(s *Service, name string, db *wire.HostedDB) error {
	return s.registerLocal(name, db)
}

// Client is the owner-side transport: a core.Backend whose calls
// travel over HTTP to a Service, with per-attempt timeouts, retries
// and a circuit breaker.
type Client struct {
	base string // e.g. http://host:8080
	name string
	http *http.Client

	retry   RetryPolicy
	timeout time.Duration // per-attempt bound; 0 = none
	breaker *breaker      // nil = disabled

	// acceptStream advertises SXS1 stream support on queries (see
	// WithStreaming); the server still decides per answer.
	acceptStream bool
	// tenant, when set, names this client on every request (the
	// X-Client-ID header) so the service's per-tenant quotas meter it
	// separately from the shared anonymous bucket (see WithTenant).
	tenant string
	// maxResp caps how many response-body bytes any operation will
	// read; 0 selects the maxUpload default (see WithMaxResponseBytes).
	maxResp int64

	// verifier, when set via WithVerifier, checks every answer and
	// extreme result against the owner's Merkle root inside the
	// attempt — before the retry policy classifies the error — so a
	// tampered response fails immediately (no retry, breaker tripped)
	// rather than being mistaken for a transient fault.
	verifier wire.Verifier

	rngMu sync.Mutex
	rng   *rand.Rand // backoff jitter
}

// Dial points a client at a service's database. It does not touch
// the network until the first call. The returned client retries
// under DefaultRetryPolicy with DefaultBreakerConfig; use the With*
// methods to reconfigure (WithRetry(NoRetry) restores the old
// fail-on-first-error behavior).
func Dial(baseURL, name string) *Client {
	return &Client{
		base:    strings.TrimRight(baseURL, "/"),
		name:    name,
		http:    http.DefaultClient,
		retry:   DefaultRetryPolicy,
		breaker: newBreaker(DefaultBreakerConfig),
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// TLS configuration, test transports).
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.http = hc
	return c
}

// WithRetry replaces the retry policy.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	c.retry = p
	return c
}

// WithTimeout bounds each individual attempt (the retry budget and
// the caller's context bound the whole operation).
func (c *Client) WithTimeout(d time.Duration) *Client {
	c.timeout = d
	return c
}

// WithBreaker replaces the circuit breaker configuration; a zero
// FailureThreshold disables the breaker.
func (c *Client) WithBreaker(cfg BreakerConfig) *Client {
	if cfg.FailureThreshold <= 0 {
		c.breaker = nil
	} else {
		c.breaker = newBreaker(cfg)
	}
	return c
}

// WithStreaming advertises (or stops advertising) chunked-answer
// support on query requests. A streaming-capable server answers
// large queries with the SXS1 chunked format, which the client
// decodes incrementally — and hands to a wire.BlockSink when the
// query came through ExecuteStream — instead of buffering the whole
// envelope first. Servers that predate the protocol ignore the
// advertisement, so this is always safe to enable.
func (c *Client) WithStreaming(on bool) *Client {
	c.acceptStream = on
	return c
}

// WithTenant names this client for the service's per-tenant quotas:
// every request carries the ID in X-Client-ID. An empty ID shares the
// anonymous bucket with every other unnamed client.
func (c *Client) WithTenant(id string) *Client {
	c.tenant = id
	return c
}

// stampOverloadHeaders attaches the overload-protocol request headers:
// the remaining deadline budget (relative milliseconds, so clock skew
// between the hosts cannot corrupt it), the priority class when the
// calling operation stamped one on the context, and the tenant ID.
func (c *Client) stampOverloadHeaders(req *http.Request, ctx context.Context) {
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1 // expired budgets still propagate; the server rejects them
		}
		req.Header.Set(wire.HeaderDeadlineMS, strconv.FormatInt(ms, 10))
	}
	if pri, ok := admission.PriorityFromContext(ctx); ok {
		req.Header.Set(wire.HeaderPriority, pri.String())
	}
	if c.tenant != "" {
		req.Header.Set(wire.HeaderClientID, c.tenant)
	}
}

// WithMaxResponseBytes caps how many response-body bytes the client
// will read on any operation (answers, extreme probes, streams); a
// body that would exceed the cap surfaces as ErrResponseTooLarge
// instead of being read without bound. n <= 0 restores the default
// (1 GiB).
func (c *Client) WithMaxResponseBytes(n int64) *Client {
	c.maxResp = n
	return c
}

// respLimit resolves the response-body cap.
func (c *Client) respLimit() int64 {
	if c.maxResp > 0 {
		return c.maxResp
	}
	return maxUpload
}

// WithVerifier installs the owner's integrity verifier: every query
// answer and extreme result is checked against its Merkle root
// before being returned. The instance is shared with core.System
// (typically its live verifier ring), so owner updates (which
// advance the root) are visible here without re-dialing.
func (c *Client) WithVerifier(v wire.Verifier) *Client {
	c.verifier = v
	return c
}

// withJitterSeed pins the backoff jitter source (tests).
func (c *Client) withJitterSeed(seed int64) *Client {
	c.rng = rand.New(rand.NewSource(seed))
	return c
}

func (c *Client) url(action string) string {
	u := c.base + "/db/" + c.name
	if action != "" {
		u += "/" + action
	}
	return u
}

// do runs one logical operation through the breaker and the retry
// loop. attempt is called with a per-attempt context and must be
// safe to call again after a failure.
func (c *Client) do(ctx context.Context, op string, attempt func(ctx context.Context) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := c.preflight(ctx); err != nil {
		return err
	}
	if c.retry.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.retry.Budget)
		defer cancel()
	}
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			c.rngMu.Lock()
			d := c.retry.delay(i, c.rng)
			c.rngMu.Unlock()
			// A shed server said when it expects capacity (computed
			// from its queue drain rate): waiting less than that only
			// donates another rejection to its load. Honor the larger
			// of the hint and our own backoff — but never a hint the
			// remaining retry budget or caller deadline cannot cover;
			// then the operation is out of time and retrying is noise.
			var se *StatusError
			if errors.As(err, &se) && se.RetryAfter > d {
				d = se.RetryAfter
			}
			if dl, ok := ctx.Deadline(); ok && d >= time.Until(dl) {
				break
			}
			if sleepErr := sleep(ctx, d); sleepErr != nil {
				break // budget or caller deadline exhausted mid-backoff
			}
		}
		actx := ctx
		var cancel context.CancelFunc
		if c.timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, c.timeout)
		}
		err = attempt(actx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			c.breaker.record(true)
			return nil
		}
		if ctx.Err() != nil {
			break // the operation as a whole is out of time
		}
		// A deadline here is the per-attempt timeout (the parent is
		// alive): a slow attempt, worth retrying.
		if !retryable(err) && !isDeadline(err) {
			break
		}
	}
	c.breaker.record(false)
	if errors.Is(err, authtree.ErrTampered) {
		// A byzantine server is worse than a dead one: open the
		// breaker now instead of waiting for the failure threshold.
		c.breaker.trip()
	}
	if err == nil {
		err = ctx.Err()
	}
	var se *StatusError
	if errors.As(err, &se) {
		return err // already carries op + status + body
	}
	return fmt.Errorf("remote: %s: %w", op, err)
}

func isDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded)
}

// request performs one HTTP exchange: build, send, read the capped
// body, verify the integrity checksum when present. It returns the
// status code, body and response headers; err covers transport, read
// and checksum failures only (non-2xx statuses are the caller's to
// interpret).
func (c *Client) request(ctx context.Context, method, url string, payload []byte) (int, []byte, http.Header, error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return 0, nil, nil, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	c.stampOverloadHeaders(req, ctx)
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		// Error bodies are only ever quoted in a StatusError: don't
		// let a hostile server feed us more than we would keep.
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxErrBody))
		return resp.StatusCode, data, resp.Header, err
	}
	data, err := readChecksummedBody(resp, c.respLimit())
	return resp.StatusCode, data, resp.Header, err
}

// readChecksummedBody reads a success body, bounded by limit (beyond
// which ErrResponseTooLarge surfaces instead of an unbounded read),
// and verifies the body-checksum header when the server sent one.
func readChecksummedBody(resp *http.Response, limit int64) ([]byte, error) {
	data, err := io.ReadAll(&cappedReader{r: resp.Body, n: limit})
	if err != nil {
		return nil, err
	}
	if want := resp.Header.Get(checksumHeader); want != "" {
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != want {
			return nil, ErrChecksum
		}
	}
	return data, nil
}

// cappedReader reads at most n bytes from r; a body that keeps going
// past the cap surfaces as ErrResponseTooLarge (a body ending exactly
// at the cap still reads its clean EOF).
type cappedReader struct {
	r io.Reader
	n int64
}

func (c *cappedReader) Read(p []byte) (int, error) {
	if c.n <= 0 {
		var tiny [1]byte
		n, err := c.r.Read(tiny[:])
		if n > 0 {
			return 0, ErrResponseTooLarge
		}
		if err == nil {
			err = ErrResponseTooLarge
		}
		return 0, err
	}
	if int64(len(p)) > c.n {
		p = p[:c.n]
	}
	n, err := c.r.Read(p)
	c.n -= int64(n)
	return n, err
}

// countingReader counts the bytes read through it (stream transfer
// accounting).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func statusError(op string, code int, body []byte, hdr http.Header) *StatusError {
	b := body
	if len(b) > maxErrBody {
		b = b[:maxErrBody]
	}
	se := &StatusError{
		Op:     op,
		Code:   code,
		Status: fmt.Sprintf("%d %s", code, http.StatusText(code)),
		Body:   strings.TrimSpace(string(b)),
	}
	// A server shed carries its computed backoff hint; surface it so
	// the retry loop can honor it (delta-seconds form only — this
	// protocol never sends the HTTP-date form).
	if hdr != nil {
		if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err == nil && secs > 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return se
}

// Ping checks the service's liveness endpoint. It bypasses retry and
// breaker (it is what the breaker's half-open probe calls).
func (c *Client) Ping(ctx context.Context) error {
	status, body, hdr, err := c.request(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("remote: ping: %w", err)
	}
	if status != http.StatusOK {
		return statusError("ping", status, body, hdr)
	}
	return nil
}

// Upload sends a hosted database to the service. Uploads are
// idempotent full-state PUTs, so they retry like reads.
func (c *Client) Upload(ctx context.Context, db *wire.HostedDB) error {
	data, err := wire.MarshalDB(db)
	if err != nil {
		return err
	}
	return c.do(ctx, "upload", func(ctx context.Context) error {
		status, body, hdr, err := c.request(ctx, http.MethodPut, c.url(""), data)
		if err != nil {
			return err
		}
		if status != http.StatusCreated {
			return statusError("upload", status, body, hdr)
		}
		return nil
	})
}

// Execute implements core.Backend over HTTP.
func (c *Client) Execute(ctx context.Context, q *wire.Query) (*wire.Answer, error) {
	ans, _, err := c.executeQuery(ctx, q, nil)
	return ans, err
}

// ExecuteStream implements core.StreamBackend over HTTP: when the
// server answers with the chunked SXS1 format, every block ciphertext
// is handed to sink the moment its frame decodes — while later chunks
// are still on the wire — and the returned stats describe the
// transfer. Envelope answers (a legacy server, a small answer below
// the server's cutoff, streaming not advertised) return nil stats and
// never touch the sink.
//
// Retry semantics are those of Execute: a stream that dies mid-body
// surfaces as a torn read and the whole attempt is retried — sink
// gets a fresh Reset and the caller never sees a truncated answer. A
// verification failure (WithVerifier) is terminal, exactly as on the
// envelope path.
func (c *Client) ExecuteStream(ctx context.Context, q *wire.Query, sink wire.BlockSink) (*wire.Answer, *wire.StreamStats, error) {
	return c.executeQuery(ctx, q, sink)
}

func (c *Client) executeQuery(ctx context.Context, q *wire.Query, sink wire.BlockSink) (*wire.Answer, *wire.StreamStats, error) {
	data, err := wire.MarshalQuery(q)
	if err != nil {
		return nil, nil, err
	}
	var ans *wire.Answer
	var stats *wire.StreamStats
	err = c.do(ctx, "query", func(ctx context.Context) error {
		a, st, err := c.queryAttempt(ctx, data, sink)
		if err != nil {
			return err
		}
		if c.verifier != nil {
			if vErr := c.verifier.VerifyAnswer(a); vErr != nil {
				return vErr
			}
		}
		ans, stats = a, st
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return ans, stats, nil
}

// queryAttempt performs one query exchange and decodes whichever
// response format the server chose: the chunked stream (decoded
// incrementally, blocks forwarded to sink) or the checksummed
// envelope.
func (c *Client) queryAttempt(ctx context.Context, payload []byte, sink wire.BlockSink) (*wire.Answer, *wire.StreamStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("query"), bytes.NewReader(payload))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if c.acceptStream {
		req.Header.Set(acceptStreamHeader, streamProto)
	}
	c.stampOverloadHeaders(req, ctx)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrBody))
		return nil, nil, statusError("query", resp.StatusCode, body, resp.Header)
	}
	// Surface degraded-mode response markers to the caller (core fills
	// its Timings from the context carrier) — observability only, the
	// answer itself verifies exactly like a full-service one.
	if meta := admission.ResponseMetaFromContext(ctx); meta != nil {
		if lvl := resp.Header.Get(wire.HeaderBrownoutLevel); lvl != "" {
			if v, err := strconv.Atoi(lvl); err == nil {
				meta.BrownoutLevel = v
			}
		}
		meta.Degraded = resp.Header.Get(wire.HeaderDegraded) != ""
	}
	if resp.Header.Get("Content-Type") != streamContentType {
		body, err := readChecksummedBody(resp, c.respLimit())
		if err != nil {
			return nil, nil, err
		}
		a, err := wire.UnmarshalAnswer(body)
		if err != nil {
			return nil, nil, err
		}
		readPlanHeaders(resp, a)
		return a, nil, nil
	}
	// Streamed answer: every attempt starts the sink over, so a retry
	// after a torn stream can never leave a previous attempt's blocks
	// mingled with this one's.
	if sink != nil {
		sink.Reset()
	}
	cr := &countingReader{r: &cappedReader{r: resp.Body, n: c.respLimit()}}
	var sinkFn func(int, []byte)
	if sink != nil {
		sinkFn = sink.Block
	}
	a, err := wire.DecodeStreamAnswer(cr, sinkFn)
	if err != nil {
		return nil, nil, err
	}
	readPlanHeaders(resp, a)
	return a, &wire.StreamStats{
		Bytes:  int(cr.n),
		Chunks: len(a.Fragments) + len(a.Blocks) + 1,
	}, nil
}

// readPlanHeaders copies the service's out-of-band planner report
// into the decoded answer (the fields never marshal; on the remote
// path they ride the X-Plan-* headers instead).
func readPlanHeaders(resp *http.Response, a *wire.Answer) {
	if strat := resp.Header.Get(wire.HeaderPlanStrategy); strat != "" {
		a.PlanStrategy = strat
		if c, err := strconv.ParseInt(resp.Header.Get(wire.HeaderPlanCost), 10, 64); err == nil {
			a.PlanCost = c
		}
	}
}

// Extreme implements core.Backend over HTTP.
func (c *Client) Extreme(ctx context.Context, lo, hi uint64, max bool) (int, []byte, bool, error) {
	m := "0"
	if max {
		m = "1"
	}
	url := fmt.Sprintf("%s?lo=%d&hi=%d&max=%s", c.url("extreme"), lo, hi, m)
	var (
		bid   int
		block []byte
		found bool
	)
	err := c.do(ctx, "extreme", func(ctx context.Context) error {
		status, body, hdr, err := c.request(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		switch {
		case status == http.StatusNotFound:
			found = false
			return nil
		case status != http.StatusOK:
			return statusError("extreme", status, body, hdr)
		}
		if len(body) < 8 {
			return fmt.Errorf("short extreme response: %w", io.ErrUnexpectedEOF)
		}
		bid = int(binary.BigEndian.Uint64(body[:8]))
		block = body[8:]
		found = true
		return nil
	})
	if err != nil {
		return 0, nil, false, err
	}
	return bid, block, found, nil
}

// ExtremeProof implements core.ProofBackend over HTTP: the probe
// result carries the server's Merkle verification object, and when a
// verifier is installed the result (including emptiness) is checked
// before being returned.
func (c *Client) ExtremeProof(ctx context.Context, lo, hi uint64, max bool) (*wire.ExtremeResult, error) {
	m := "0"
	if max {
		m = "1"
	}
	url := fmt.Sprintf("%s?lo=%d&hi=%d&max=%s&proof=1", c.url("extreme"), lo, hi, m)
	var res *wire.ExtremeResult
	err := c.do(ctx, "extreme", func(ctx context.Context) error {
		status, body, hdr, err := c.request(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return statusError("extreme", status, body, hdr)
		}
		r, err := decodeExtremeResult(body)
		if err != nil {
			return err
		}
		if c.verifier != nil {
			if vErr := c.verifier.VerifyExtreme(lo, hi, max, r.Found, r.BlockID, r.Block, r.Proof); vErr != nil {
				return vErr
			}
		}
		res = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ApplyUpdate implements core.Backend over HTTP: it sends an owner
// update to the service. A zero RequestID is replaced with a fresh
// random one so retries of this call are deduplicated server-side.
func (c *Client) ApplyUpdate(ctx context.Context, upd *wire.Update) error {
	if upd.RequestID == 0 {
		upd.RequestID = wire.NewRequestID()
	}
	data, err := wire.MarshalUpdate(upd)
	if err != nil {
		return err
	}
	return c.do(ctx, "update", func(ctx context.Context) error {
		status, body, hdr, err := c.request(ctx, http.MethodPost, c.url("update"), data)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return statusError("update", status, body, hdr)
		}
		return nil
	})
}

// ApplyUpdateBatch implements core.BatchBackend over HTTP: it sends a
// group of owner updates as one SXB1 frame the service applies
// atomically — one generation bump, one incremental Merkle advance,
// one WAL record and group fsync for the whole batch. A zero batch
// request ID (and zero member IDs) are replaced with fresh random
// ones so retries of this call are deduplicated server-side at the
// batch level.
func (c *Client) ApplyUpdateBatch(ctx context.Context, b *wire.UpdateBatch) error {
	if b.RequestID == 0 {
		b.RequestID = wire.NewRequestID()
	}
	for _, u := range b.Updates {
		if u.RequestID == 0 {
			u.RequestID = wire.NewRequestID()
		}
	}
	data, err := wire.MarshalUpdateBatch(b)
	if err != nil {
		return err
	}
	return c.do(ctx, "update", func(ctx context.Context) error {
		status, body, hdr, err := c.request(ctx, http.MethodPost, c.url("update"), data)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return statusError("update", status, body, hdr)
		}
		return nil
	})
}
