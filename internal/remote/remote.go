// Package remote runs the paper's client/server split over a real
// network: the untrusted server becomes an HTTP service hosting
// uploaded databases, and the owner's client talks to it through a
// core.Backend implementation. Only wire-format bytes cross the
// connection — exactly the information the security analysis already
// assumes the server sees.
//
// Endpoints (all bodies are the binary wire formats of
// internal/wire):
//
//	PUT  /db/{name}            upload a hosted database
//	POST /db/{name}/query      translated query -> answer
//	GET  /db/{name}/extreme    ?lo=..&hi=..&max=0|1 -> block id + bytes
//	POST /db/{name}/update     owner-signed update (see wire.Update)
//	GET  /db/{name}/stats      JSON statistics
//	GET  /healthz              liveness
package remote

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/server"
	"repro/internal/wire"
)

// maxUpload caps request bodies (default 1 GiB).
const maxUpload = 1 << 30

// Service is the HTTP-facing untrusted server. It can host several
// databases, keyed by name.
type Service struct {
	mu  sync.RWMutex
	dbs map[string]*hosted
	// persistDir, when set, mirrors every hosted database to disk
	// (see NewPersistentService).
	persistDir string
}

type hosted struct {
	mu  sync.RWMutex // guards srv replacement on update
	srv *server.Server
	db  *wire.HostedDB
}

// NewService returns an empty service.
func NewService() *Service {
	return &Service{dbs: map[string]*hosted{}}
}

// ServeHTTP implements http.Handler.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
		return
	}
	rest, ok := strings.CutPrefix(r.URL.Path, "/db/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	name, action, _ := strings.Cut(rest, "/")
	if name == "" {
		http.Error(w, "missing database name", http.StatusBadRequest)
		return
	}
	switch {
	case action == "" && r.Method == http.MethodPut:
		s.handleUpload(w, r, name)
	case action == "query" && r.Method == http.MethodPost:
		s.withDB(w, name, func(h *hosted) { s.handleQuery(w, r, h) })
	case action == "extreme" && r.Method == http.MethodGet:
		s.withDB(w, name, func(h *hosted) { s.handleExtreme(w, r, h) })
	case action == "update" && r.Method == http.MethodPost:
		s.withDB(w, name, func(h *hosted) { s.handleUpdate(w, r, name, h) })
	case action == "stats" && r.Method == http.MethodGet:
		s.withDB(w, name, func(h *hosted) { s.handleStats(w, h) })
	default:
		http.Error(w, "unknown endpoint or method", http.StatusMethodNotAllowed)
	}
}

func (s *Service) withDB(w http.ResponseWriter, name string, fn func(*hosted)) {
	s.mu.RLock()
	h := s.dbs[name]
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "no such database", http.StatusNotFound)
		return
	}
	fn(h)
}

func (s *Service) handleUpload(w http.ResponseWriter, r *http.Request, name string) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxUpload))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	db, err := wire.UnmarshalDB(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.dbs[name] = &hosted{srv: server.New(db), db: db}
	s.mu.Unlock()
	if err := s.persist(name, db); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request, h *hosted) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxUpload))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q, err := wire.UnmarshalQuery(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h.mu.RLock()
	ans, err := h.srv.Execute(q)
	h.mu.RUnlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	out, err := wire.MarshalAnswer(ans)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(out)
}

func (s *Service) handleExtreme(w http.ResponseWriter, r *http.Request, h *hosted) {
	lo, err1 := strconv.ParseUint(r.URL.Query().Get("lo"), 10, 64)
	hi, err2 := strconv.ParseUint(r.URL.Query().Get("hi"), 10, 64)
	if err1 != nil || err2 != nil {
		http.Error(w, "lo and hi must be uint64", http.StatusBadRequest)
		return
	}
	max := r.URL.Query().Get("max") == "1"
	h.mu.RLock()
	bid, ct, found, err := h.srv.Extreme(lo, hi, max)
	h.mu.RUnlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !found {
		http.Error(w, "no entries in range", http.StatusNotFound)
		return
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(bid))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(hdr[:])
	w.Write(ct)
}

func (s *Service) handleUpdate(w http.ResponseWriter, r *http.Request, name string, h *hosted) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxUpload))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	upd, err := wire.UnmarshalUpdate(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h.mu.Lock()
	err = h.srv.ApplyUpdate(upd)
	h.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if err := s.persist(name, h.db); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (s *Service) handleStats(w http.ResponseWriter, h *hosted) {
	h.mu.RLock()
	stats := map[string]int{
		"blocks":       h.srv.NumBlocks(),
		"indexEntries": h.srv.IndexSize(),
		"indexHeight":  h.srv.IndexHeight(),
	}
	h.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(stats)
}

// RegisterLocal hosts a database in the service without going over
// the network, round-tripping through the wire format so exactly the
// uploadable bytes are served (used by cmd/xserve's demo mode).
func (s *Service) registerLocal(name string, db *wire.HostedDB) error {
	data, err := wire.MarshalDB(db)
	if err != nil {
		return err
	}
	decoded, err := wire.UnmarshalDB(data)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.dbs[name] = &hosted{srv: server.New(decoded), db: decoded}
	s.mu.Unlock()
	return nil
}

// RegisterLocal is the exported form of registerLocal.
func RegisterLocal(s *Service, name string, db *wire.HostedDB) error {
	return s.registerLocal(name, db)
}

// Client is the owner-side transport: a core.Backend whose calls
// travel over HTTP to a Service.
type Client struct {
	base string // e.g. http://host:8080
	name string
	http *http.Client
}

// Dial points a client at a service's database. It does not touch
// the network until the first call.
func Dial(baseURL, name string) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), name: name, http: http.DefaultClient}
}

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// TLS configuration, test transports).
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.http = hc
	return c
}

func (c *Client) url(action string) string {
	u := c.base + "/db/" + c.name
	if action != "" {
		u += "/" + action
	}
	return u
}

// Upload sends a hosted database to the service.
func (c *Client) Upload(db *wire.HostedDB) error {
	data, err := wire.MarshalDB(db)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, c.url(""), strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("remote: upload: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return httpError("upload", resp)
	}
	return nil
}

// Execute implements core.Backend over HTTP.
func (c *Client) Execute(q *wire.Query) (*wire.Answer, error) {
	data, err := wire.MarshalQuery(q)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(c.url("query"), "application/octet-stream", strings.NewReader(string(data)))
	if err != nil {
		return nil, fmt.Errorf("remote: query: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("query", resp)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxUpload))
	if err != nil {
		return nil, err
	}
	return wire.UnmarshalAnswer(body)
}

// Extreme implements core.Backend over HTTP.
func (c *Client) Extreme(lo, hi uint64, max bool) (int, []byte, bool, error) {
	m := "0"
	if max {
		m = "1"
	}
	resp, err := c.http.Get(fmt.Sprintf("%s?lo=%d&hi=%d&max=%s", c.url("extreme"), lo, hi, m))
	if err != nil {
		return 0, nil, false, fmt.Errorf("remote: extreme: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return 0, nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return 0, nil, false, httpError("extreme", resp)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxUpload))
	if err != nil {
		return 0, nil, false, err
	}
	if len(body) < 8 {
		return 0, nil, false, fmt.Errorf("remote: short extreme response")
	}
	return int(binary.BigEndian.Uint64(body[:8])), body[8:], true, nil
}

// ApplyUpdate implements core.Backend over HTTP: it sends an owner
// update to the service.
func (c *Client) ApplyUpdate(upd *wire.Update) error {
	data, err := wire.MarshalUpdate(upd)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.url("update"), "application/octet-stream", strings.NewReader(string(data)))
	if err != nil {
		return fmt.Errorf("remote: update: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("update", resp)
	}
	return nil
}

func httpError(op string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
	return fmt.Errorf("remote: %s: %s: %s", op, resp.Status, strings.TrimSpace(string(body)))
}
